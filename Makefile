# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench repro repro-full examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

repro:
	dune exec bin/repro.exe -- all --out results

repro-full:
	dune exec bin/repro.exe -- all --full --out results-full

examples:
	dune exec examples/quickstart.exe
	dune exec examples/custom_cca.exe
	dune exec examples/ne_prediction.exe
	dune exec examples/buffer_sizing.exe
	dune exec examples/trace_dynamics.exe

doc:
	dune build @doc

clean:
	dune clean
