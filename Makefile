# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint check bench repro repro-full examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# Repo-specific static checks: the parsetree rules R1-R7 (determinism,
# serialization, unit hygiene) plus the typedtree suite A0-A3 (zero-alloc
# hot paths, Domain safety, interprocedural determinism) driven by
# tool/simlint/hotpaths.sexp; see DESIGN.md "Static analysis". Needs the
# .cmt files, so it builds first; LINT_REPORT.json is the machine-readable
# copy CI uploads.
lint: build
	dune exec tool/simlint/simlint.exe -- --cmt _build/default \
	  --manifest tool/simlint/hotpaths.sexp --json LINT_REPORT.json \
	  lib bin bench test examples tool

# CI entrypoint: build, run the full test suite, the lint pass and the
# allocation gates (deterministic Gc.minor_words budgets per hot kernel),
# then smoke-test the parallel executor, result cache and event tracing end to
# end — the quick fig03 CSV must match the committed golden copy
# byte-for-byte (the simulator is deterministic; any diff is a semantics
# change and must be reviewed by re-blessing test/golden/fig03_quick.csv),
# a second cached run of fig03 must re-simulate nothing, and a traced run
# must leave one .jsonl per simulated config. The fluidgrid CSV is produced
# twice — batched (default --batch 8) and unbatched (--batch 1) — and both
# must match the golden copy: batched evaluation is exact (DESIGN.md §15).
CHECK_CACHE := $(or $(TMPDIR),/tmp)/bbr-equilibrium-check-cache
CHECK_TRACE := $(or $(TMPDIR),/tmp)/bbr-equilibrium-check-trace
CHECK_OUT := $(or $(TMPDIR),/tmp)/bbr-equilibrium-check-out
check: build test lint
	dune exec bench/main.exe -- --alloc-gate
	rm -rf "$(CHECK_CACHE)" "$(CHECK_TRACE)" "$(CHECK_OUT)"
	dune exec bin/repro.exe -- run fig03 --jobs 2 --cache "$(CHECK_CACHE)" \
	  --out "$(CHECK_OUT)"
	cmp test/golden/fig03_quick.csv "$(CHECK_OUT)/fig03.csv"
	dune exec bin/repro.exe -- run fig03 --jobs 2 --cache "$(CHECK_CACHE)" \
	  | tee /dev/stderr | grep -q "; 0 simulated"
	dune exec bin/repro.exe -- run fig03 --jobs 2 --trace "$(CHECK_TRACE)" \
	  | tee /dev/stderr | grep -q "fig03 trace: traces="
	ls "$(CHECK_TRACE)"/*.jsonl > /dev/null
	ls "$(CHECK_TRACE)"/*.metrics > /dev/null
	dune exec bin/repro.exe -- run fig01 --jobs 2 --cache "$(CHECK_CACHE)" \
	  --out "$(CHECK_OUT)"
	cmp test/golden/fig01_quick.csv "$(CHECK_OUT)/fig01.csv"
	dune exec bin/repro.exe -- run fig05 --jobs 2 --cache "$(CHECK_CACHE)" \
	  --out "$(CHECK_OUT)"
	cmp test/golden/fig05_quick.csv "$(CHECK_OUT)/fig05.csv"
	dune exec bin/repro.exe -- run fluidgrid --jobs 2 --cache "$(CHECK_CACHE)" \
	  --out "$(CHECK_OUT)"
	cmp test/golden/fluidgrid_quick.csv "$(CHECK_OUT)/fluidgrid.csv"
	dune exec bin/repro.exe -- run fluidgrid --jobs 2 --batch 1 \
	  --out "$(CHECK_OUT)"
	cmp test/golden/fluidgrid_quick.csv "$(CHECK_OUT)/fluidgrid.csv"
	dune exec bin/repro.exe -- evolve --jobs 2 --cache "$(CHECK_CACHE)" \
	  --out "$(CHECK_OUT)"
	cmp test/golden/evolve_quick.csv "$(CHECK_OUT)/evolve.csv"
	dune exec bin/repro.exe -- run ext-short --jobs 2 --out "$(CHECK_OUT)"
	cmp test/golden/ext_short_quick.csv "$(CHECK_OUT)/ext-short.csv"
	dune exec bin/repro.exe -- run workload --jobs 1 --out "$(CHECK_OUT)"
	cmp test/golden/workload_quick.csv "$(CHECK_OUT)/workload.csv"
	dune exec bin/repro.exe -- run workload --jobs 4 --out "$(CHECK_OUT)"
	cmp test/golden/workload_quick.csv "$(CHECK_OUT)/workload.csv"
	dune exec bin/repro.exe -- fuzz --count 60 --seed 1 --jobs 2 \
	  --replay-out "$(CHECK_OUT)/fuzz-failure.scenario"
	dune exec bin/repro.exe -- fuzz --backend fluid --count 25 --seed 1 \
	  --jobs 2 --replay-out "$(CHECK_OUT)/fuzz-failure.scenario"
	dune exec bin/repro.exe -- fuzz --backend ode --count 25 --seed 1 \
	  --jobs 2 --replay-out "$(CHECK_OUT)/fuzz-failure.scenario"
	rm -rf "$(CHECK_CACHE)" "$(CHECK_TRACE)" "$(CHECK_OUT)"
	@echo "check: OK"

bench:
	dune exec bench/main.exe

repro:
	dune exec bin/repro.exe -- all --out results

repro-full:
	dune exec bin/repro.exe -- all --full --out results-full

examples:
	dune exec examples/quickstart.exe
	dune exec examples/custom_cca.exe
	dune exec examples/ne_prediction.exe
	dune exec examples/buffer_sizing.exe
	dune exec examples/trace_dynamics.exe

doc:
	dune build @doc

clean:
	dune clean
