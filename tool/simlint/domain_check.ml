(* A2 — Domain-safety detector.

   Mutable state shared between the Domains that [Exec] spawns is how
   [--jobs N] runs silently diverge from sequential ones. This pass makes
   the contract checkable: every *toplevel* binding whose type is mutable
   (ref / array / bytes / Hashtbl / Queue / Stack / Buffer, or any repo
   record with a [mutable] field, at any nesting depth) is a mutable
   root; every function handed to a spawn API ([Domain.spawn] and the
   [Exec] wrappers, per the manifest's [spawn_apis]) is a spawn root. A
   mutable root reachable from a spawn root is a finding unless it is

   - allowlisted in the manifest's [domain_safe] section with a reason
     (e.g. [Registry.table]: populated at module init, read-only after), or
   - carries [@simlint.domain_ok "reason"] at its definition.

   [Atomic.t] / [Mutex.t] / [Condition.t] / semaphores are sanctioned by
   construction and never roots. *)

let violation ~file ~line message =
  { Lint.rule = "A2"; file; line; col = 0; message }

let check graph (manifest : Manifest.t) =
  let roots = Callgraph.SS.elements graph.Callgraph.spawn_roots in
  let parents = Callgraph.reachable_with_parents graph roots in
  let findings = ref [] in
  List.iter
    (fun id ->
      match Callgraph.find_node graph id with
      | Some n
        when n.toplevel
             && Hashtbl.mem parents id
             && Option.is_none n.domain_ok
             && not (List.mem_assoc id manifest.domain_safe) -> (
        match n.binding_type with
        | Some ty
          when Callgraph.type_is_mutable graph ~unit:n.unit_short ty ->
          let via = String.concat " -> " (Callgraph.chain parents id) in
          findings :=
            violation ~file:n.file ~line:n.line
              (Printf.sprintf
                 "toplevel mutable state %s is reachable from a \
                  Domain-spawned closure [%s]; make it Domain-local, guard \
                  it, or allowlist it in hotpaths.sexp (domain_safe) with a \
                  reason"
                 id via)
            :: !findings
        | _ -> ())
      | _ -> ())
    (Callgraph.node_ids graph);
  List.sort Lint.compare_violation !findings
