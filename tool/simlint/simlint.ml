(* CLI driver: [simlint DIR...] lints every .ml under the given roots
   (default: lib bin bench test) and exits non-zero on any violation. *)

module Lint = Simlint_core.Lint

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> default_roots
    | roots -> roots
  in
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "simlint: no such file or directory: %s\n" root;
        exit 2
      end)
    roots;
  let n_files, violations = Lint.lint_paths roots in
  List.iter (fun v -> Format.printf "%a@." Lint.pp v) violations;
  match violations with
  | [] ->
    Format.printf "simlint: OK (%d files, 0 violations)@." n_files;
    exit 0
  | vs ->
    Format.printf "simlint: %d violation%s in %d files@." (List.length vs)
      (if List.length vs = 1 then "" else "s")
      n_files;
    exit 1
