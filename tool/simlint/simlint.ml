(* CLI driver.

     simlint [--cmt DIR]... [--manifest FILE] [--json FILE] [ROOT]...

   Two layers run in one invocation:

   - the parsetree rules R1-R7 over every .ml under the source ROOTs
     (default: lib bin bench test examples tool), exactly as before;
   - when at least one [--cmt DIR] is given, the typedtree suite: load
     every .cmt under the dirs, build the cross-module call graph, and run
     A1 (zero-alloc hot paths), A2 (Domain safety) and A3 (interprocedural
     determinism) against the manifest (default
     tool/simlint/hotpaths.sexp), plus A0 (reasonless suppressions).

   [--json FILE] additionally writes the combined violation list as a
   machine-readable report (the LINT_REPORT.json CI artifact). Exits
   non-zero on any violation. *)

module Lint = Simlint_core.Lint
module Manifest = Simlint_core.Manifest
module Cmt_load = Simlint_core.Cmt_load
module Callgraph = Simlint_core.Callgraph
module Alloc_check = Simlint_core.Alloc_check
module Domain_check = Simlint_core.Domain_check
module Taint = Simlint_core.Taint
module Report = Simlint_core.Report

let default_roots = [ "lib"; "bin"; "bench"; "test"; "examples"; "tool" ]
let default_manifest = "tool/simlint/hotpaths.sexp"

let usage () =
  prerr_endline
    "usage: simlint [--cmt DIR]... [--manifest FILE] [--json FILE] [ROOT]...";
  exit 2

let () =
  let cmt_dirs = ref [] in
  let manifest_path = ref None in
  let json_path = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--cmt" :: dir :: rest ->
      cmt_dirs := dir :: !cmt_dirs;
      parse rest
    | "--manifest" :: file :: rest ->
      manifest_path := Some file;
      parse rest
    | "--json" :: file :: rest ->
      json_path := Some file;
      parse rest
    | ("--cmt" | "--manifest" | "--json") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | root :: rest ->
      roots := root :: !roots;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with [] -> default_roots | roots -> roots
  in
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "simlint: no such file or directory: %s\n" root;
        exit 2
      end)
    roots;
  let n_files, parse_violations = Lint.lint_paths roots in
  let typed_violations =
    match List.rev !cmt_dirs with
    | [] -> []
    | dirs -> (
      match
        let manifest =
          Manifest.load
            (match !manifest_path with
            | Some f -> f
            | None -> default_manifest)
        in
        let units = Cmt_load.load_dirs dirs in
        (manifest, units)
      with
      | exception Manifest.Parse_error msg ->
        Printf.eprintf "simlint: manifest error: %s\n" msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "simlint: %s\n" msg;
        exit 2
      | manifest, [] ->
        ignore manifest;
        Printf.eprintf
          "simlint: no .cmt files under %s — run `dune build @all` first\n"
          (String.concat " " dirs);
        exit 2
      | manifest, units ->
        let graph =
          Callgraph.build ~spawn_apis:manifest.Manifest.spawn_apis units
        in
        Alloc_check.check graph manifest
        @ Domain_check.check graph manifest
        @ Taint.check graph manifest
        @ Report.bad_suppressions graph)
  in
  let violations =
    List.sort Lint.compare_violation (parse_violations @ typed_violations)
  in
  List.iter (fun v -> Format.printf "%a@." Lint.pp v) violations;
  Option.iter (fun path -> Report.write_json path violations) !json_path;
  match violations with
  | [] ->
    Format.printf "simlint: OK (%d files, 0 violations)@." n_files;
    exit 0
  | vs ->
    Format.printf "simlint: %d violation%s in %d files@." (List.length vs)
      (if List.length vs = 1 then "" else "s")
      n_files;
    exit 1
