(* A3 — interprocedural determinism.

   R1 already rejects writing [Random.float] or [Hashtbl.iter] in repo
   sources, but only syntactically and per file: a helper three modules
   away that folds over a hash table still poisons every cached trial
   that transitively calls it — and R1's comment suppression
   ([(* simlint: allow R1 *)]) vouches only for the file it sits in, not
   for the callers. This pass propagates over the call graph instead: a
   node is *directly tainted* when its external references include a
   nondeterminism source (Stdlib [Random], hash-iteration order,
   wall-clock, filesystem order); a determinism root from the manifest
   ([determinism_roots]: the cached-trial and replay entry points) is
   flagged when it can reach a tainted node.

   Sanctioned escapes: the repo's [Rng] unit wraps a seeded splitmix PRNG
   — it is the *approved* randomness and never taints; a binding carrying
   [@simlint.taint_ok "reason"] neither taints directly nor propagates
   taint from below (the author vouches for everything it calls — e.g.
   [Registry.names] sorts the fold's result, making the order canonical
   again). *)

let exact_sources =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "Sys.time"; "Sys.readdir"; "Unix.gettimeofday";
    "Unix.time"; "Unix.times"; "Unix.opendir"; "Unix.readdir";
  ]

let prefix_sources = [ "Random." ]

let is_source name =
  List.mem name exact_sources
  || List.exists
       (fun p ->
         String.length name >= String.length p
         && String.equal (String.sub name 0 (String.length p)) p)
       prefix_sources

(* The seeded-PRNG wrapper: its Random usage is the sanctioned one. *)
let sanctioned_units = [ "Rng" ]

let violation ~file ~line ~col message =
  { Lint.rule = "A3"; file; line; col; message }

let node_sources (n : Callgraph.node) =
  Callgraph.SS.elements (Callgraph.SS.filter is_source n.ext_refs)

let check graph (manifest : Manifest.t) =
  let missing =
    List.filter
      (fun r -> Option.is_none (Callgraph.find_node graph r))
      manifest.determinism_roots
  in
  let missing_vs =
    List.map
      (fun r ->
        violation ~file:"tool/simlint/hotpaths.sexp" ~line:0 ~col:0
          (Printf.sprintf
             "determinism_roots entry %s matches no node in the call graph \
              (typo or renamed function?)"
             r))
      missing
  in
  let stop (n : Callgraph.node) = Option.is_some n.taint_ok in
  let parents =
    Callgraph.reachable_with_parents ~stop graph manifest.determinism_roots
  in
  let findings = ref [] in
  List.iter
    (fun id ->
      match Callgraph.find_node graph id with
      | Some n
        when Hashtbl.mem parents id
             && Option.is_none n.taint_ok
             && not (List.mem n.unit_short sanctioned_units) ->
        List.iter
          (fun src ->
            let file, line, col =
              match Callgraph.ext_loc n src with
              | Some (loc : Location.t) ->
                ( loc.loc_start.pos_fname,
                  loc.loc_start.pos_lnum,
                  loc.loc_start.pos_cnum - loc.loc_start.pos_bol )
              | None -> (n.file, n.line, 0)
            in
            let via = String.concat " -> " (Callgraph.chain parents id) in
            findings :=
              violation ~file ~line ~col
                (Printf.sprintf
                   "nondeterminism source %s reaches determinism root via \
                    [%s]; sort/seed it, or vouch for it with \
                    [@simlint.taint_ok \"reason\"]"
                   src via)
              :: !findings)
          (node_sources n)
      | _ -> ())
    (Callgraph.node_ids graph);
  missing_vs @ List.sort Lint.compare_violation !findings
