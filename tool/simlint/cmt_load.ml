(* Loads the [.cmt] files dune leaves under [_build/default] and exposes
   their typedtrees.

   A [.cmt] is a marshalled snapshot of the typechecked implementation
   (written because dune passes [-bin-annot]); reading one needs no
   environment setup, just [Cmt_format.read_cmt] from the same compiler
   version that produced it — which holds here because the linter is built
   by the same switch as the tree it analyzes.

   Units are keyed by their short name: dune wraps library modules as
   [Lib__Module] ([Sim_engine__Event_queue]), and the part after the last
   [__] is the name the rest of the suite (and the manifest) uses
   ([Event_queue]). Wrapper/alias units ([Sim_engine], [Cca], ...) load too
   — they carry no value bindings but their names anchor path
   canonicalization in {!Callgraph}. *)

type unit_info = {
  short : string;  (* Event_queue *)
  source : string;  (* lib/engine/event_queue.ml as recorded at build time *)
  structure : Typedtree.structure;
}

let short_of_modname modname =
  let n = String.length modname in
  let rec last_sep i found =
    if i + 1 >= n then found
    else if modname.[i] = '_' && modname.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) found
  in
  match last_sep 0 None with
  | Some start -> String.sub modname start (n - start)
  | None -> modname

(* Fixture modules intentionally violate the rules; the tree-wide analysis
   must never load them (tests load them explicitly via [load_file]). *)
let is_fixture_source source =
  let parts = String.split_on_char '/' source in
  List.mem "lint_fixtures" parts

let load_file path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation structure; cmt_modname; cmt_sourcefile; _ } ->
    let source =
      match cmt_sourcefile with Some s -> s | None -> path
    in
    Some { short = short_of_modname cmt_modname; source; structure }
  | _ -> None
  | exception _ -> None

let rec cmt_files acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> cmt_files acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Loads every implementation cmt under [roots], first occurrence of a
   short name wins (dune emits each unit's cmt once, so duplicates only
   arise when byte and native object dirs are both given). *)
let load_dirs roots =
  let files = List.fold_left cmt_files [] roots |> List.sort compare in
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun path ->
      match load_file path with
      | Some u when (not (is_fixture_source u.source)) && not (Hashtbl.mem seen u.short) ->
        Hashtbl.replace seen u.short ();
        Some u
      | Some _ | None -> None)
    files
