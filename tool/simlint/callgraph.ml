(* Cross-module call graph over the typedtrees loaded by {!Cmt_load}.

   The graph's nodes are *named code regions*, not modules: every toplevel
   value binding (at any submodule depth), every local [let]-bound
   function, every function literal bound to a record field (the CCA
   closure-record idiom: [on_ack = ...]), and every function literal
   passed to a spawn API. A node's id is canonical —
   [Unit.Submodule.name] with [Unit] the defining compilation unit's short
   name — which is also the naming scheme of the manifest
   ([tool/simlint/hotpaths.sexp]).

   One walk per unit collects everything the three analysis passes
   consume:

   - [callees]: ids of repo values the node's body references. References,
     not just calls — a function stored in a record or passed as a
     callback can run wherever the record goes, so reachability must
     follow it.
   - [ext_refs]: canonical names of external (non-repo) values referenced,
     with one witness location each — the taint pass matches its
     nondeterminism sources against these.
   - [allocs]: every potentially-allocating construct with a location and
     a description. Collected unconditionally; the A1 pass filters by
     reachability from the manifest's hot entry points.
   - spawn roots: functions handed to [Domain.spawn] (or the [Exec] APIs
     that wrap it), the A2 pass's starting set.
   - suppression attributes: [@simlint.alloc_ok "reason"] spans an
     expression subtree or a whole binding; [@simlint.taint_ok] /
     [@simlint.domain_ok] apply to bindings. A suppression without a
     reason is itself a finding.

   Path canonicalization: typedtree paths arrive as
   [Sim_engine.Event_queue.pop], [Sim_engine__Event_queue.pop] or — via a
   local [module E = Tcpflow.Experiment] alias — [E.run]. All collapse to
   [Event_queue.pop]/[Experiment.run] by (1) resolving local module
   aliases recorded during the walk and (2) anchoring on the right-most
   path segment whose dune-unwrapped name ([Lib__Mod] -> [Mod]) is a known
   compilation unit. Heads that are persistent idents but match no repo
   unit are externals ([Stdlib.ref] -> [ref], [Stdlib__Hashtbl.fold] ->
   [Hashtbl.fold]). *)

module SS = Set.Make (String)

type alloc = { aloc : Location.t; what : string }

type node = {
  id : string;
  unit_short : string;
  file : string;
  line : int;
  is_fun : bool;  (* body runs per call (vs once at module init) *)
  toplevel : bool;  (* a module-level binding (A2 mutable-root candidate) *)
  def_loc : Location.t;
  binding_type : Types.type_expr option;
  mutable callees : SS.t;
  mutable ext_refs : SS.t;
  mutable ext_locs : (string * Location.t) list;
  mutable allocs : alloc list;
  mutable bad_suppressions : Location.t list;
  mutable alloc_ok : string option;
  mutable taint_ok : string option;
  mutable domain_ok : string option;
  mutable spawn_root : bool;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  units : SS.t;  (* short names of loaded compilation units *)
  arities : (string, int) Hashtbl.t;  (* canonical id -> syntactic arity *)
  mutable mutable_types : SS.t;  (* canonical names of records w/ mutable fields *)
  mutable spawn_roots : SS.t;  (* ids of functions handed to spawn APIs *)
}

let find_node t id = Hashtbl.find_opt t.nodes id

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] (* simlint: allow R1 *)
  |> List.sort compare

(* ---------- small location helpers ---------- *)

let loc_file (loc : Location.t) = loc.loc_start.pos_fname
let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

(* ---------- attributes ---------- *)

let attr_reason (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ },
                _ );
          _;
        };
      ]
    when String.length reason > 0 ->
    Some reason
  | _ -> None

(* [Some (Some reason)] when present with a reason, [Some None] when
   present but reasonless (a finding), [None] when absent. *)
let find_simlint_attr name (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (attr : Parsetree.attribute) ->
      if String.equal attr.attr_name.txt ("simlint." ^ name) then
        Some (attr_reason attr)
      else acc)
    None attrs

(* ---------- path canonicalization ---------- *)

let rec path_parts = function
  | Path.Pident id -> Some ([ Ident.name id ], id)
  | Path.Pdot (p, s) -> (
    match path_parts p with
    | Some (parts, head) -> Some (parts @ [ s ], head)
    | None -> None)
  | Path.Papply _ | Path.Pextra_ty _ -> None

let short_seg = Cmt_load.short_of_modname

let normalize_external parts =
  let parts = List.map short_seg parts in
  match parts with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

type resolved =
  | Internal of string list  (* canonical id parts, unit first *)
  | External of string list
  | LocalValue of Ident.t  (* an unqualified local/toplevel value *)
  | LocalModulePath of string list  (* submodule path within this unit *)

let drop_to parts anchor =
  let arr = Array.of_list parts in
  let n = Array.length arr in
  short_seg arr.(anchor)
  :: Array.to_list (Array.sub arr (anchor + 1) (n - anchor - 1))

(* Classifies a value path whose head is a global (cross-unit) ident: the
   right-most non-final segment naming a repo unit anchors the canonical
   id (the final segment is the value name, never the anchor). *)
let classify_global units parts =
  let arr = Array.of_list parts in
  let n = Array.length arr in
  let anchor = ref (-1) in
  for i = 0 to n - 2 do
    if SS.mem (short_seg arr.(i)) units then anchor := i
  done;
  if !anchor >= 0 then Internal (drop_to parts !anchor)
  else External (normalize_external parts)

(* Module paths differ: the final segment may itself be the unit
   ([Sim_engine.Event_queue] canonicalizes to [Event_queue]). *)
let classify_global_module units parts =
  let arr = Array.of_list parts in
  let n = Array.length arr in
  let anchor = ref (-1) in
  for i = 0 to n - 1 do
    if SS.mem (short_seg arr.(i)) units then anchor := i
  done;
  if !anchor >= 0 then Internal (drop_to parts !anchor)
  else External (normalize_external parts)

type unit_ctx = {
  unit : string;
  graph : t;
  spawn_apis : string list;
  (* Ident.unique_name -> canonical id, for every named binding seen. *)
  ident_nodes : (string, string) Hashtbl.t;
  (* Ident.unique_name of a local module alias -> its resolution. *)
  aliases : (string, resolved) Hashtbl.t;
}

let resolve_with ctx classify local path =
  match path_parts path with
  | None -> None
  | Some (parts, head) ->
    if Ident.global head then Some (classify ctx.graph.units parts)
    else begin
      match (Hashtbl.find_opt ctx.aliases (Ident.unique_name head), parts) with
      | Some (Internal base), _ :: rest -> Some (Internal (base @ rest))
      | Some (External base), _ :: rest -> Some (External (base @ rest))
      | Some (LocalModulePath base), _ :: rest ->
        Some (Internal ((ctx.unit :: base) @ rest))
      | Some (LocalValue _), _ | Some _, [] | None, [] -> None
      | None, parts -> local parts head
    end

(* Value paths: an unqualified local head is a value ident; a qualified
   one goes through an unaliased local submodule, anchored on this unit. *)
let resolve_path ctx path =
  resolve_with ctx classify_global
    (fun parts head ->
      match parts with
      | [ _ ] -> Some (LocalValue head)
      | _ :: rest -> Some (Internal (ctx.unit :: Ident.name head :: rest))
      | [] -> None)
    path

(* Module paths: an unaliased local head names a submodule of this unit. *)
let resolve_module_path ctx path =
  resolve_with ctx classify_global_module
    (fun parts _head -> Some (LocalModulePath parts))
    path

let id_of_parts parts = String.concat "." parts

(* ---------- node management ---------- *)

let get_node graph ~id ~unit_short ~loc ~is_fun ~toplevel ~binding_type =
  match Hashtbl.find_opt graph.nodes id with
  | Some n -> n
  | None ->
    let n =
      {
        id;
        unit_short;
        file = loc_file loc;
        line = loc_line loc;
        is_fun;
        toplevel;
        def_loc = loc;
        binding_type;
        callees = SS.empty;
        ext_refs = SS.empty;
        ext_locs = [];
        allocs = [];
        bad_suppressions = [];
        alloc_ok = None;
        taint_ok = None;
        domain_ok = None;
        spawn_root = false;
      }
    in
    Hashtbl.replace graph.nodes id n;
    n

let add_edge (n : node) id = n.callees <- SS.add id n.callees

let add_ext (n : node) name loc =
  if not (SS.mem name n.ext_refs) then begin
    n.ext_refs <- SS.add name n.ext_refs;
    n.ext_locs <- (name, loc) :: n.ext_locs
  end

let ext_loc (n : node) name = List.assoc_opt name n.ext_locs

(* ---------- allocation classification ---------- *)

(* External functions that allocate on every (successful) call. Curated
   for constructs that plausibly appear on simulator hot paths; failure
   helpers ([invalid_arg], [failwith], [raise]) are deliberately absent —
   allocating on the error path is fine. *)
let allocating_modules =
  [ "Printf"; "Format"; "Scanf"; "Marshal"; "Digest"; "Seq"; "Str";
    "Filename" ]

let allocating_values =
  [
    "ref"; "^"; "@"; "string_of_int"; "string_of_float"; "float_of_string";
    "Float.to_string"; "Int.to_string";
    "List.map"; "List.mapi"; "List.init"; "List.append"; "List.rev";
    "List.rev_append"; "List.rev_map"; "List.concat"; "List.concat_map";
    "List.flatten"; "List.filter"; "List.filter_map"; "List.partition";
    "List.split"; "List.combine"; "List.sort"; "List.stable_sort";
    "List.fast_sort"; "List.sort_uniq"; "List.merge"; "List.of_seq";
    "List.to_seq"; "List.cons";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.make_matrix";
    "Array.append"; "Array.concat"; "Array.sub"; "Array.copy"; "Array.map";
    "Array.mapi"; "Array.to_list"; "Array.of_list"; "Array.to_seq";
    "Array.of_seq"; "Array.split"; "Array.combine";
    "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.trim"; "String.escaped"; "String.uppercase_ascii";
    "String.lowercase_ascii"; "String.capitalize_ascii";
    "String.uncapitalize_ascii";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.sub"; "Bytes.copy";
    "Bytes.extend"; "Bytes.concat"; "Bytes.cat"; "Bytes.of_string";
    "Bytes.to_string"; "Bytes.sub_string";
    "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes"; "Buffer.sub";
    "Buffer.add_string"; "Buffer.add_char";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.add"; "Hashtbl.replace";
    "Hashtbl.of_seq";
    "Queue.create"; "Queue.add"; "Queue.push"; "Queue.copy";
    "Stack.create"; "Stack.push"; "Stack.copy";
    "Option.some"; "Option.map"; "Option.bind"; "Option.join";
    "Option.to_list"; "Option.to_seq";
    "Result.ok"; "Result.error"; "Result.map"; "Result.bind"; "Result.join";
  ]

let is_allocating_external name =
  List.mem name allocating_values
  ||
  match String.index_opt name '.' with
  | Some i -> List.mem (String.sub name 0 i) allocating_modules
  | None -> false

(* Statically-constant expressions are lifted to static data by the
   compiler and cost nothing at run time. *)
let rec is_static_const (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, { cstr_arity = 0; _ }, []) -> true
  | Texp_construct (_, { cstr_tag = Cstr_block _; _ }, args) ->
    List.for_all is_static_const args
  | Texp_tuple es -> List.for_all is_static_const es
  | _ -> false

let rec is_arrow ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (ty, _) -> is_arrow ty
  | _ -> false

(* Length of a type scheme's declared arrow spine — the best arity guess
   for values we did not see defined (externals, stored closures). *)
let rec spine_len ty =
  match Types.get_desc ty with
  | Tarrow (_, _, rest, _) -> 1 + spine_len rest
  | Tpoly (ty, _) -> spine_len ty
  | _ -> 0

(* The elaborated default of an optional parameter:
   [let eps = match *opt* with Some v -> v | None -> default]. *)
let is_optional_default (vb : Typedtree.value_binding) =
  match vb.vb_expr.exp_desc with
  | Texp_match ({ exp_desc = Texp_ident (Path.Pident i, _, _); _ }, _, _) ->
    String.equal (Ident.name i) "*opt*"
  | _ -> false

(* Number of parameters a function literal binds before its body — the
   same outer chain [walk_function_body] strips, looking through the
   [let]s that optional-argument defaults insert between parameters.
   Distinguishes [let f t () = ...] (arity 2; [f t] builds a closure)
   from [let f t = ... stored_closure] (arity 1; [f t] allocates
   nothing). *)
let rec syntactic_arity (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
    1 + syntactic_arity c_rhs
  | Texp_function _ -> 1
  | Texp_let (Nonrecursive, [ vb ], body) when is_optional_default vb ->
    syntactic_arity body
  | _ -> 0

let is_exn_type ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> String.equal (Path.name p) "exn"
  | _ -> false

let is_float_type ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

let is_bare_var ty =
  match Types.get_desc ty with Tvar _ | Tunivar _ -> true | _ -> false

(* Compiler [%]-primitives ([=], [<], [Array.get], ...) are specialized
   at a call site whose types are known — a float comparison or flat
   float-array read compiles to the unboxed instruction, so the
   polymorphic-instantiation boxing check must not fire on them. (The
   genuinely allocating primitive, [ref]/[%makemutable], is caught by the
   allocating-externals list instead.) *)
let is_compiler_primitive (vd : Types.value_description) =
  match vd.val_kind with
  | Val_prim p ->
    String.length p.Primitive.prim_name > 0 && p.Primitive.prim_name.[0] = '%'
  | _ -> false

(* Walks a polymorphic value's declared arrow spine alongside its use-site
   instantiation: an argument (or result) position that the scheme leaves
   generic but the call instantiates at [float] passes that float boxed —
   the classic way a "zero-alloc" path silently regains a box per call
   ([Stdlib.max], [compare], [Hashtbl.replace] with float data, ...). *)
let float_boxing_positions ~scheme ~concrete ~n_args =
  let scheme =
    match Types.get_desc scheme with Tpoly (ty, _) -> ty | _ -> scheme
  in
  let rec go scheme concrete i acc =
    if i >= n_args then
      if is_bare_var scheme && is_float_type concrete then `Ret :: acc else acc
    else
      match (Types.get_desc scheme, Types.get_desc concrete) with
      | Tarrow (_, s_arg, s_rest, _), Tarrow (_, c_arg, c_rest, _) ->
        let acc =
          if is_bare_var s_arg && is_float_type c_arg then `Arg i :: acc
          else acc
        in
        go s_rest c_rest (i + 1) acc
      | _ -> acc
  in
  List.rev (go scheme concrete 0 [])

(* ---------- mutability of a binding's type (A2) ---------- *)

let mutable_builtins =
  [ "ref"; "array"; "bytes"; "Bytes.t"; "Hashtbl.t"; "Queue.t"; "Stack.t";
    "Buffer.t" ]

(* Domain-safe by construction; sharing them across Domains is the point. *)
let sanctioned_builtins =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t";
    "Semaphore.Binary.t"; "Domain.t" ]

let rec type_is_mutable graph ~unit ?(depth = 0) ty =
  if depth > 6 then false
  else
    let deeper t = type_is_mutable graph ~unit ~depth:(depth + 1) t in
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> (
      match path_parts p with
      | None -> false
      | Some (parts, head) ->
        let canon =
          if Ident.global head then
            match classify_global graph.units parts with
            | Internal ps -> `In (id_of_parts ps)
            | External ps -> `Ex (id_of_parts ps)
            | LocalValue _ | LocalModulePath _ -> `Ex (id_of_parts parts)
          else `In (id_of_parts (unit :: parts))
        in
        match canon with
        | `Ex name ->
          if List.mem name mutable_builtins then true
          else if List.mem name sanctioned_builtins then false
          else List.exists deeper args
        | `In name -> SS.mem name graph.mutable_types || List.exists deeper args)
    | Ttuple ts -> List.exists deeper ts
    | Tpoly (ty, _) -> deeper ty
    | Tarrow _ -> false
    | _ -> false

(* ---------- the walk ---------- *)

(* Mutable walk state: the node owning the code being visited, and whether
   an enclosing [@simlint.alloc_ok] suppresses allocation recording. *)
type walk_state = { mutable cur : node; mutable suppress : int }

let record_alloc st loc what =
  if st.suppress = 0 then
    st.cur.allocs <- { aloc = loc; what } :: st.cur.allocs

let record_ref ctx st path loc =
  match resolve_path ctx path with
  | Some (Internal parts) -> add_edge st.cur (id_of_parts parts)
  | Some (External parts) -> add_ext st.cur (id_of_parts parts) loc
  | Some (LocalValue id) -> (
    match Hashtbl.find_opt ctx.ident_nodes (Ident.unique_name id) with
    | Some node_id -> add_edge st.cur node_id
    | None -> () (* parameter or plain local binding: intra-node data flow *))
  | Some (LocalModulePath _) | None -> ()

let canonical_of_path ctx path =
  match resolve_path ctx path with
  | Some (Internal parts) | Some (External parts) -> Some (id_of_parts parts)
  | _ -> None

(* ---------- compiler-eliminated local refs ---------- *)

let is_prim_named names (vd : Types.value_description) =
  match vd.val_kind with
  | Val_prim p -> List.mem p.Primitive.prim_name names
  | _ -> false

let is_makemutable = is_prim_named [ "%makemutable" ]
let is_ref_op = is_prim_named [ "%field0"; "%setfield0"; "%incr"; "%decr" ]

(* [let i = ref e in ...] where [i] is only ever dereferenced or assigned
   ([!], [:=], [incr], [decr]) in the same function: [Simplif.eliminate_ref]
   compiles the cell away into a mutable variable — no allocation. Any
   other use (passed along, returned, captured by a closure) keeps the
   heap cell and the finding. *)
let ref_binding (vb : Typedtree.value_binding) =
  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
  | ( Tpat_var (id, _),
      Texp_apply
        ( { exp_desc = Texp_ident (_, _, vd); _ },
          [ (_, Some payload) ] ) )
    when is_makemutable vd ->
    Some (id, payload)
  | _ -> None

exception Ref_escapes

let ref_is_eliminated id body =
  let fun_depth = ref 0 in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident i, _, _) when Ident.same i id -> raise Ref_escapes
    | Texp_apply
        ( { exp_desc = Texp_ident (_, _, vd); _ },
          (_, Some { exp_desc = Texp_ident (Path.Pident i, _, _); _ }) :: rest )
      when Ident.same i id ->
      if !fun_depth > 0 || not (is_ref_op vd) then raise Ref_escapes;
      List.iter (fun (_, a) -> Option.iter (self.expr self) a) rest
    | Texp_function _ ->
      incr fun_depth;
      Tast_iterator.default_iterator.expr self e;
      decr fun_depth
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  match iter.expr iter body with
  | () -> true
  | exception Ref_escapes -> false

let rec walk_expr ctx st (e : Typedtree.expression) =
  match find_simlint_attr "alloc_ok" e.exp_attributes with
  | Some None ->
    st.cur.bad_suppressions <- e.exp_loc :: st.cur.bad_suppressions;
    walk_expr_inner ctx st e
  | Some (Some _) ->
    st.suppress <- st.suppress + 1;
    walk_expr_inner ctx st e;
    st.suppress <- st.suppress - 1
  | None -> walk_expr_inner ctx st e

and walk_expr_inner ctx st (e : Typedtree.expression) =
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident (path, lid, _) -> record_ref ctx st path lid.loc
  | Texp_let (_, vbs, body) ->
    let vbs =
      List.filter
        (fun vb ->
          match ref_binding vb with
          | Some (id, payload) when ref_is_eliminated id body ->
            walk_expr ctx st payload;
            false
          | _ -> true)
        vbs
    in
    walk_local_bindings ctx st vbs;
    walk_expr ctx st body
  | Texp_function _ ->
    (* One record for the whole curried chain: [fun i x -> ...] is a
       single runtime closure, not one per parameter. *)
    record_alloc st loc "closure construction";
    walk_function_body ctx st e
  | Texp_apply (f, args) ->
    walk_apply ctx st e f args;
    walk_expr ctx st f;
    (* Arguments of a raising call ([invalid_arg (sprintf ...)]) only
       evaluate on the error path; allocating there is fine. *)
    let raising =
      match f.Typedtree.exp_desc with
      | Texp_ident (path, _, _) -> (
        match canonical_of_path ctx path with
        | Some ("raise" | "raise_notrace" | "invalid_arg" | "failwith") ->
          is_external ctx path
        | _ -> false)
      | _ -> false
    in
    if raising then st.suppress <- st.suppress + 1;
    List.iter (fun (_, a) -> Option.iter (walk_expr ctx st) a) args;
    if raising then st.suppress <- st.suppress - 1
  | Texp_tuple es ->
    if not (List.for_all is_static_const es) then
      record_alloc st loc "tuple construction";
    List.iter (walk_expr ctx st) es
  | Texp_construct (_, cstr, args) ->
    (match cstr.cstr_tag with
    | Cstr_block _ when not (List.for_all is_static_const args) ->
      if not (is_exn_type e.exp_type) then
        record_alloc st loc
          (Printf.sprintf "%s constructor application" cstr.cstr_name)
    | Cstr_extension _ when not (is_exn_type e.exp_type) ->
      record_alloc st loc
        (Printf.sprintf "%s extension-constructor application" cstr.cstr_name)
    | _ -> ());
    List.iter (walk_expr ctx st) args
  | Texp_variant (_, arg) ->
    (match arg with
    | Some a when not (is_static_const a) ->
      record_alloc st loc "polymorphic-variant construction"
    | _ -> ());
    Option.iter (walk_expr ctx st) arg
  | Texp_record { fields; extended_expression; _ } ->
    record_alloc st loc "record construction";
    Option.iter (walk_expr ctx st) extended_expression;
    Array.iter
      (fun ((label : Types.label_description), def) ->
        match def with
        | Typedtree.Kept _ -> ()
        | Typedtree.Overridden (_, fe) -> (
          match fe.Typedtree.exp_desc with
          | Texp_function _ ->
            (* The CCA closure-record idiom: the field's function literal
               becomes its own node, so manifest entries like [Bbr.on_ack]
               can name it. The closure allocation itself was recorded
               above (the record build). *)
            walk_field_closure ctx st label.lbl_name fe
          | _ -> walk_expr ctx st fe))
      fields
  | Texp_array es ->
    if es <> [] then record_alloc st loc "array literal";
    List.iter (walk_expr ctx st) es
  | Texp_lazy body ->
    record_alloc st loc "lazy suspension";
    walk_expr ctx st body
  | Texp_letop { let_; ands; body; _ } ->
    record_alloc st loc "binding-operator (let*) application";
    walk_expr ctx st let_.bop_exp;
    List.iter
      (fun (a : Typedtree.binding_op) -> walk_expr ctx st a.bop_exp)
      ands;
    Option.iter (walk_expr ctx st) body.c_guard;
    walk_expr ctx st body.c_rhs
  | Texp_pack _ -> record_alloc st loc "first-class module packing"
  | Texp_object _ -> record_alloc st loc "object construction"
  | Texp_match (scrut, cases, _) ->
    (* [match (a, b) with ...] never builds the tuple: the pattern-match
       compiler reads the components directly. *)
    (match scrut.exp_desc with
    | Texp_tuple es -> List.iter (walk_expr ctx st) es
    | _ -> walk_expr ctx st scrut);
    List.iter
      (fun (c : Typedtree.computation Typedtree.case) ->
        Option.iter (walk_expr ctx st) c.c_guard;
        walk_expr ctx st c.c_rhs)
      cases
  | Texp_try (body, cases) ->
    walk_expr ctx st body;
    walk_cases ctx st cases
  | Texp_field (r, _, _) -> walk_expr ctx st r
  | Texp_setfield (r, _, _, v) ->
    walk_expr ctx st r;
    walk_expr ctx st v
  | Texp_ifthenelse (c, t, f) ->
    walk_expr ctx st c;
    walk_expr ctx st t;
    Option.iter (walk_expr ctx st) f
  | Texp_sequence (a, b) ->
    walk_expr ctx st a;
    walk_expr ctx st b
  | Texp_while (c, b) ->
    walk_expr ctx st c;
    walk_expr ctx st b
  | Texp_for (_, _, lo, hi, _, b) ->
    walk_expr ctx st lo;
    walk_expr ctx st hi;
    walk_expr ctx st b
  | Texp_assert (cond, _) -> walk_expr ctx st cond
  | Texp_open (_, body) -> walk_expr ctx st body
  | Texp_letmodule (_, _, _, _, body) -> walk_expr ctx st body
  | Texp_letexception (_, body) -> walk_expr ctx st body
  | Texp_send (o, _) -> walk_expr ctx st o
  | Texp_setinstvar (_, _, _, v) -> walk_expr ctx st v
  | Texp_constant _ | Texp_unreachable | Texp_extension_constructor _
  | Texp_new _ | Texp_instvar _ | Texp_override _ ->
    ()

and walk_cases ctx st cases =
  List.iter
    (fun (c : Typedtree.value Typedtree.case) ->
      Option.iter (walk_expr ctx st) c.c_guard;
      walk_expr ctx st c.c_rhs)
    cases

(* Local [let] bindings: a binding whose RHS is a function literal becomes
   its own node (named helpers show up in the manifest and in witness
   chains), and its construction is an allocation in the enclosing
   function — a closure is built each time control passes the [let]. *)
and walk_local_bindings ctx st vbs =
  let function_binding (vb : Typedtree.value_binding) =
    match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
    | Tpat_var (id, _), Texp_function _ -> Some id
    | _ -> None
  in
  (* Register the names first so [let rec] bodies resolve their siblings. *)
  List.iter
    (fun vb ->
      match function_binding vb with
      | Some id ->
        let node_id = ctx.unit ^ "." ^ Ident.name id in
        Hashtbl.replace ctx.ident_nodes (Ident.unique_name id) node_id;
        Hashtbl.replace ctx.graph.arities node_id
          (syntactic_arity vb.vb_expr)
      | None -> ())
    vbs;
  List.iter
    (fun (vb : Typedtree.value_binding) ->
      match function_binding vb with
      | Some id ->
        let node_id = ctx.unit ^ "." ^ Ident.name id in
        record_alloc st vb.vb_loc
          (Printf.sprintf "local function %s (closure per call)"
             (Ident.name id));
        add_edge st.cur node_id;
        walk_named_function ctx ~id:node_id ~loc:vb.vb_loc
          ~attrs:vb.vb_attributes vb.vb_expr
      | None -> walk_expr ctx st vb.vb_expr)
    vbs

(* Walks a function literal as its own node, stripping the outer parameter
   chain (the literal itself is the function being defined; only what its
   body does per call counts). *)
and walk_named_function ctx ~id ~loc ~attrs (fe : Typedtree.expression) =
  let n =
    get_node ctx.graph ~id ~unit_short:ctx.unit ~loc ~is_fun:true
      ~toplevel:false ~binding_type:(Some fe.exp_type)
  in
  apply_binding_attrs n (attrs @ fe.exp_attributes);
  let st' = { cur = n; suppress = (if Option.is_some n.alloc_ok then 1 else 0) } in
  walk_function_body ctx st' fe

and walk_function_body ctx st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
    walk_function_body ctx st c_rhs
  | Texp_function { cases; _ } -> walk_cases ctx st cases
  (* Optional-argument elaboration inserts [let x = match *opt* with ...]
     between parameters. [Simplif.split_default_wrapper] compiles the
     whole chain as one multi-parameter function for full applications,
     so the parameter chain continues below the default binding. *)
  | Texp_let (Nonrecursive, [ vb ], body) when is_optional_default vb ->
    walk_expr ctx st vb.vb_expr;
    walk_function_body ctx st body
  | _ -> walk_expr ctx st e

and walk_field_closure ctx st label fe =
  let id = ctx.unit ^ "." ^ label in
  add_edge st.cur id;
  walk_named_function ctx ~id ~loc:fe.Typedtree.exp_loc ~attrs:[] fe

and apply_binding_attrs n attrs =
  let set get set_f name =
    match find_simlint_attr name attrs with
    | Some (Some reason) -> if Option.is_none (get n) then set_f n reason
    | Some None -> n.bad_suppressions <- n.def_loc :: n.bad_suppressions
    | None -> ()
  in
  set (fun n -> n.alloc_ok) (fun n r -> n.alloc_ok <- Some r) "alloc_ok";
  set (fun n -> n.taint_ok) (fun n r -> n.taint_ok <- Some r) "taint_ok";
  set (fun n -> n.domain_ok) (fun n r -> n.domain_ok <- Some r) "domain_ok"

(* Application sites: partial application, allocating externals, float
   boxing through polymorphic instantiation, and spawn-API arguments. *)
and walk_apply ctx st (e : Typedtree.expression) f args =
  let loc = e.exp_loc in
  (* An arrow-typed application result only means a wrapper closure when
     fewer arguments were passed than the callee binds: a fully-applied
     call returning a *stored* closure ([take_head], [Array.get] on a
     closure array) allocates nothing. Prefer the definition's syntactic
     arity; fall back to the declared type's spine for externals. *)
  let declared_arity =
    match f.Typedtree.exp_desc with
    | Texp_ident (path, _, vd) -> (
      match vd.Types.val_kind with
      | Types.Val_prim p -> Some p.Primitive.prim_arity
      | _ -> (
        let of_canon name =
          match Hashtbl.find_opt ctx.graph.arities name with
          | Some a -> Some a
          | None -> Some (spine_len vd.Types.val_type)
        in
        match resolve_path ctx path with
        | Some (Internal parts) -> of_canon (id_of_parts parts)
        | Some (External _) -> Some (spine_len vd.Types.val_type)
        | Some (LocalValue id) -> (
          match Hashtbl.find_opt ctx.ident_nodes (Ident.unique_name id) with
          | Some node_id -> of_canon node_id
          | None -> Some (spine_len vd.Types.val_type))
        | Some (LocalModulePath _) | None -> None))
    | _ -> None
  in
  if List.exists (fun (_, a) -> Option.is_none a) args then
    record_alloc st loc "partial application (labelled argument omitted)"
  else if
    is_arrow e.exp_type
    && (match declared_arity with
       | Some a -> List.length args < a
       | None -> true)
  then record_alloc st loc "partial application (result is a closure)";
  match f.Typedtree.exp_desc with
  | Texp_ident (path, _, vd) -> (
    let canon = canonical_of_path ctx path in
    (match canon with
    | Some name when is_allocating_external name && is_external ctx path ->
      record_alloc st loc (Printf.sprintf "call to allocating %s" name)
    | _ -> ());
    (match
       if is_compiler_primitive vd then []
       else
         float_boxing_positions ~scheme:vd.Types.val_type
           ~concrete:f.Typedtree.exp_type ~n_args:(List.length args)
     with
    | [] -> ()
    | hits ->
      let name = match canon with Some n -> n | None -> Path.name path in
      List.iter
        (fun hit ->
          match hit with
          | `Arg i ->
            record_alloc st loc
              (Printf.sprintf
                 "polymorphic call to %s boxes a float (argument %d)" name
                 (i + 1))
          | `Ret ->
            record_alloc st loc
              (Printf.sprintf "polymorphic call to %s returns a boxed float"
                 name))
        hits);
    match canon with
    | Some name when List.mem name ctx.spawn_apis ->
      List.iter (fun (_, a) -> Option.iter (spawn_argument ctx st) a) args
    | _ -> ())
  | _ -> ()

(* A function-typed argument handed to a spawn API runs on another Domain:
   resolve it to a node (or wrap a literal in a synthetic node) and mark
   it as a root for the A2 reachability pass. *)
and spawn_argument ctx st (arg : Typedtree.expression) =
  if is_arrow arg.exp_type then begin
    let graph = ctx.graph in
    let mark id = graph.spawn_roots <- SS.add id graph.spawn_roots in
    let mark_path path =
      match resolve_path ctx path with
      | Some (Internal parts) -> mark (id_of_parts parts)
      | Some (LocalValue id) -> (
        match Hashtbl.find_opt ctx.ident_nodes (Ident.unique_name id) with
        | Some node_id -> mark node_id
        | None -> mark st.cur.id)
      | _ -> mark st.cur.id
    in
    match arg.exp_desc with
    | Texp_ident (path, _, _) -> mark_path path
    | Texp_function _ ->
      let id = Printf.sprintf "%s.<fun:%d>" ctx.unit (loc_line arg.exp_loc) in
      add_edge st.cur id;
      mark id;
      walk_named_function ctx ~id ~loc:arg.exp_loc ~attrs:[] arg
    | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, _) ->
      mark_path path
    | _ -> mark st.cur.id
  end

and is_external ctx path =
  match resolve_path ctx path with Some (External _) -> true | _ -> false

(* ---------- structure walk ---------- *)

let pattern_idents pat =
  let acc = ref [] in
  let rec go : type k. k Typedtree.general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> acc := id :: !acc
    | Tpat_alias (p, id, _) ->
      acc := id :: !acc;
      go p
    | Tpat_tuple ps -> List.iter go ps
    | Tpat_construct (_, _, ps, _) -> List.iter go ps
    | Tpat_record (fields, _) -> List.iter (fun (_, _, p) -> go p) fields
    | Tpat_array ps -> List.iter go ps
    | Tpat_or (a, b, _) ->
      go a;
      go b
    | Tpat_lazy p -> go p
    | Tpat_variant (_, p, _) -> Option.iter go p
    | Tpat_value p -> go (p :> Typedtree.value Typedtree.general_pattern)
    | Tpat_exception p -> go p
    | Tpat_any | Tpat_constant _ -> ()
  in
  go pat;
  List.rev !acc

let node_id_of ctx subpath name =
  String.concat "." ((ctx.unit :: List.rev subpath) @ [ name ])

let rec unwrap_module (m : Typedtree.module_expr) =
  match m.mod_desc with
  | Tmod_constraint (m, _, _, _) -> unwrap_module m
  | _ -> m

(* Pre-pass: registers every toplevel binder (so in-unit forward and
   submodule references resolve to precise node ids) and collects the
   canonical names of record types with mutable fields (A2 consults them
   across units). *)
let rec register_structure ctx subpath (str : Typedtree.structure) =
  List.iter (register_item ctx subpath) str.str_items

and register_item ctx subpath (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        List.iter
          (fun id ->
            Hashtbl.replace ctx.ident_nodes (Ident.unique_name id)
              (node_id_of ctx subpath (Ident.name id)))
          (pattern_idents vb.vb_pat);
        match (vb.vb_pat.pat_desc, syntactic_arity vb.vb_expr) with
        | Tpat_var (id, _), arity when arity > 0 ->
          Hashtbl.replace ctx.graph.arities
            (node_id_of ctx subpath (Ident.name id))
            arity
        | _ -> ())
      vbs
  | Tstr_type (_, decls) ->
    List.iter
      (fun (d : Typedtree.type_declaration) ->
        match d.typ_kind with
        | Ttype_record lds
          when List.exists
                 (fun (ld : Typedtree.label_declaration) ->
                   ld.ld_mutable = Asttypes.Mutable)
                 lds ->
          ctx.graph.mutable_types <-
            SS.add
              (node_id_of ctx subpath d.typ_name.txt)
              ctx.graph.mutable_types
        | _ -> ())
      decls
  | Tstr_module mb -> register_module ctx subpath mb
  | Tstr_recmodule mbs -> List.iter (register_module ctx subpath) mbs
  | Tstr_include incl -> (
    match (unwrap_module incl.incl_mod).mod_desc with
    | Tmod_structure s -> register_structure ctx subpath s
    | _ -> ())
  | _ -> ()

and register_module ctx subpath (mb : Typedtree.module_binding) =
  match (unwrap_module mb.mb_expr).mod_desc with
  | Tmod_structure s -> (
    match mb.mb_name.txt with
    | Some name -> register_structure ctx (name :: subpath) s
    | None -> ())
  | Tmod_ident (p, _) -> (
    match (mb.mb_id, resolve_module_path ctx p) with
    | Some id, Some resolved ->
      Hashtbl.replace ctx.aliases (Ident.unique_name id) resolved
    | _ -> ())
  | _ -> ()

(* Body pass. *)
let init_node ctx loc =
  get_node ctx.graph
    ~id:(ctx.unit ^ ".<init>")
    ~unit_short:ctx.unit ~loc ~is_fun:false ~toplevel:true ~binding_type:None

let rec walk_structure ctx subpath (str : Typedtree.structure) =
  List.iter (walk_item ctx subpath) str.str_items

and walk_item ctx subpath (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) -> List.iter (walk_toplevel_binding ctx subpath) vbs
  | Tstr_eval (e, _) ->
    let st = { cur = init_node ctx item.str_loc; suppress = 0 } in
    walk_expr ctx st e
  | Tstr_module mb -> walk_module ctx subpath mb
  | Tstr_recmodule mbs -> List.iter (walk_module ctx subpath) mbs
  | Tstr_include incl -> (
    match (unwrap_module incl.incl_mod).mod_desc with
    | Tmod_structure s -> walk_structure ctx subpath s
    | _ -> ())
  | _ -> ()

and walk_module ctx subpath (mb : Typedtree.module_binding) =
  match (unwrap_module mb.mb_expr).mod_desc with
  | Tmod_structure s -> (
    match mb.mb_name.txt with
    | Some name -> walk_structure ctx (name :: subpath) s
    | None -> ())
  | _ -> () (* aliases were registered in the pre-pass *)

and walk_toplevel_binding ctx subpath (vb : Typedtree.value_binding) =
  match pattern_idents vb.vb_pat with
  | [] ->
    (* [let () = ...]: module-init code. *)
    let st = { cur = init_node ctx vb.vb_loc; suppress = 0 } in
    walk_expr ctx st vb.vb_expr
  | first :: rest ->
    let is_fun =
      match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false
    in
    let node_id = node_id_of ctx subpath (Ident.name first) in
    let n =
      get_node ctx.graph ~id:node_id ~unit_short:ctx.unit ~loc:vb.vb_loc
        ~is_fun ~toplevel:true ~binding_type:(Some vb.vb_pat.pat_type)
    in
    apply_binding_attrs n (vb.vb_attributes @ vb.vb_expr.exp_attributes);
    let st = { cur = n; suppress = (if Option.is_some n.alloc_ok then 1 else 0) } in
    if is_fun then walk_function_body ctx st vb.vb_expr
    else walk_expr ctx st vb.vb_expr;
    (* Destructuring bindings ([let a, b = ...]): the extra names become
       thin nodes pointing at the walked one so references to any of them
       reach its callees. *)
    List.iter
      (fun id ->
        let extra =
          get_node ctx.graph
            ~id:(node_id_of ctx subpath (Ident.name id))
            ~unit_short:ctx.unit ~loc:vb.vb_loc ~is_fun:false ~toplevel:true
            ~binding_type:(Some vb.vb_pat.pat_type)
        in
        add_edge extra node_id)
      rest

(* ---------- build & queries ---------- *)

let build ~spawn_apis (units : Cmt_load.unit_info list) =
  let unit_set =
    List.fold_left
      (fun s (u : Cmt_load.unit_info) -> SS.add u.short s)
      SS.empty units
  in
  let graph =
    {
      nodes = Hashtbl.create 512;
      units = unit_set;
      arities = Hashtbl.create 512;
      mutable_types = SS.empty;
      spawn_roots = SS.empty;
    }
  in
  (* Register every unit before walking any: the body pass consults
     cross-unit facts (arities, mutable record types) in both
     directions. *)
  let ctxs =
    List.map
      (fun (u : Cmt_load.unit_info) ->
        ( u,
          {
            unit = u.short;
            graph;
            spawn_apis;
            ident_nodes = Hashtbl.create 64;
            aliases = Hashtbl.create 16;
          } ))
      units
  in
  List.iter (fun (u, ctx) -> register_structure ctx [] u.Cmt_load.structure) ctxs;
  List.iter (fun (u, ctx) -> walk_structure ctx [] u.Cmt_load.structure) ctxs;
  SS.iter
    (fun id ->
      match find_node graph id with
      | Some n -> n.spawn_root <- true
      | None -> ())
    graph.spawn_roots;
  graph

(* BFS over [callees] from [roots]. Returns id -> parent id (roots map to
   themselves); [stop] prunes expansion below vetted nodes. *)
let reachable_with_parents ?(stop = fun _ -> false) t roots =
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if (not (Hashtbl.mem parent r)) && Hashtbl.mem t.nodes r then begin
        Hashtbl.replace parent r r;
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match find_node t id with
    | None -> ()
    | Some n ->
      if not (stop n) then
        SS.iter
          (fun c ->
            if not (Hashtbl.mem parent c) then begin
              Hashtbl.replace parent c id;
              if Hashtbl.mem t.nodes c then Queue.add c queue
            end)
          n.callees
  done;
  parent

(* Root-to-node witness chain from a parent map. *)
let chain parents id =
  let rec go id acc =
    if List.mem id acc then id :: acc
    else
      match Hashtbl.find_opt parents id with
      | Some p when not (String.equal p id) -> go p (id :: acc)
      | _ -> id :: acc
  in
  go id []
