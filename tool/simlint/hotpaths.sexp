; Analysis manifest for the simlint typedtree passes (see DESIGN.md §12).
;
; Names are canonical call-graph node ids: the defining compilation
; unit's short name, then any submodule path, then the value name —
; independent of dune's Lib__Module wrapping and of local aliases.

((hot_paths
  ; Event core: the pooled-heap settle/take cycle and the calendar lanes.
  (Event_queue.add
   Event_queue.pop
   Event_queue.settle
   Event_queue.head_time_unsafe
   Event_queue.take_head
   Lane.push
   Lane.fire_head
   Sim.select
   Sim.run
   ; Packet cycle: droptail enqueue/dequeue and the sender's per-packet
   ; and per-ACK work (pool recycle, RTO bookkeeping, CCA callback).
   Droptail_queue.enqueue
   Droptail_queue.dequeue_exn
   Sender.on_ack_packet
   Sender.seg
   Sender.order_push
   Sender.order_pop
   ; Lifecycle churn steady state: slot release and rebind run once per
   ; transfer and must reuse the slot's containers (annotated exceptions
   ; only). [Churn.arrive] is deliberately absent: its pool-miss branch
   ; allocates a fresh slot (Sender.create), the cold half by design.
   Sender.rebind
   Churn.on_slot_complete
   ; Shared CCA machinery.
   Windowed_filter.Max_rounds.update
   Windowed_filter.Min_time.update
   ; Per-ACK CCA paths (closure-record fields resolve to Unit.on_ack).
   Reno.on_ack
   Cubic.on_ack
   Bbr.on_ack
   Bbr2.on_ack
   Copa.on_ack
   Vegas.on_ack
   Vivace.on_ack
   ; Fluid/ODE batched step kernels (see DESIGN.md §15): the fused
   ; per-spec fluid loop, its cold out-of-line helpers, the ODE stage
   ; derivative cycle, and the shared queue fixed point.
   Fluid_sim.run_spec
   Fluid_sim.update_btlbw
   Fluid_sim.apply_losses
   Fluid_sim.cubic_backoff
   Ode_model.compute_rates
   Ode_model.deriv
   Ode_model.rk4_step
   Ode_model.clamp_state
   Ode_model.step_error
   Queue_fixpoint.solve
   ; Adoption-dynamics generation kernel.
   Evolve.step_into))

 (spawn_apis (Domain.spawn Exec.map Exec.map_list))

 (domain_safe
  ; name must be a call-graph node id; reason is mandatory.
  ((Registry.table
    "populated once by module-init register calls, read-only afterwards")
   (Packet.dummy
    "pool placeholder that never enters the network; workers only read it")))

 (determinism_roots
  ; Entry points whose results are cached content-addressed (Exec.Cache)
  ; or replayed byte-for-byte (fuzz corpus): any transitive
  ; nondeterminism breaks cache hits and replays.
  (Experiment.run
   Runs.eval
   Fuzz.run_scenario
   Fuzz.campaign
   Fuzz.replay)))
