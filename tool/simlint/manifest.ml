(* The analysis manifest ([tool/simlint/hotpaths.sexp]): the one file that
   names which functions the typedtree passes treat as entry points and
   which shared structures are vetted.

   Format — a single top-level alist of sections, each a list:

     ((hot_paths (Event_queue.pop Sim.run ...))          ; A1 entry points
      (spawn_apis (Domain.spawn Exec.map Exec.map_list)) ; A2 spawn surface
      (domain_safe ((Registry.table "reason") ...))      ; A2 allowlist
      (determinism_roots (Experiment.run Runs.eval ...))); A3 entry points

   Names are canonical node ids as produced by {!Callgraph}: the defining
   compilation unit's short name, any submodule path, then the value name
   ([Event_queue.pop], [Windowed_filter.Max_rounds.update]). Every
   [domain_safe] entry must carry a reason string; an entry without one is
   rejected so the allowlist stays auditable.

   The parser is a deliberately small hand-rolled sexp reader (atoms,
   quoted strings, [;] line comments) so the tool keeps its
   compiler-libs-only dependency footprint. *)

type t = {
  hot_paths : string list;
  spawn_apis : string list;
  domain_safe : (string * string) list;  (* node id, reason *)
  determinism_roots : string list;
}

let empty =
  { hot_paths = []; spawn_apis = []; domain_safe = []; determinism_roots = [] }

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let parse_sexps source =
  let n = String.length source in
  let pos = ref 0 in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !pos < n && source.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 32 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char buf c;
          advance ()
        | None -> raise (Parse_error "unterminated escape"));
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    String.sub source start (!pos - start)
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unclosed list")
        | Some _ ->
          items := read_sexp () :: !items;
          go ()
      in
      go ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected )")
    | Some '"' -> Atom (read_string ())
    | Some _ -> Atom (read_atom ())
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (read_sexp () :: acc)
  in
  top []

let atom_of = function
  | Atom a -> a
  | List _ -> raise (Parse_error "expected an atom")

let names_of = function
  | List items -> List.map atom_of items
  | Atom _ -> raise (Parse_error "expected a list of names")

let allow_entry_of = function
  | List [ Atom name; Atom reason ] when String.length reason > 0 ->
    (name, reason)
  | List [ Atom name ] | List [ Atom name; Atom "" ] ->
    raise
      (Parse_error
         (Printf.sprintf "domain_safe entry %s has no reason; every allowlist \
                          entry must say why it is safe" name))
  | _ -> raise (Parse_error "malformed domain_safe entry: want (name \"reason\")")

let of_string source =
  let sections =
    match parse_sexps source with
    | [ List sections ] -> sections
    | [] -> []
    | _ -> raise (Parse_error "manifest must be a single top-level alist")
  in
  List.fold_left
    (fun t section ->
      match section with
      | List (Atom "hot_paths" :: [ body ]) ->
        { t with hot_paths = names_of body }
      | List (Atom "spawn_apis" :: [ body ]) ->
        { t with spawn_apis = names_of body }
      | List (Atom "determinism_roots" :: [ body ]) ->
        { t with determinism_roots = names_of body }
      | List (Atom "domain_safe" :: [ List entries ]) ->
        { t with domain_safe = List.map allow_entry_of entries }
      | List (Atom key :: _) ->
        raise (Parse_error (Printf.sprintf "unknown manifest section %s" key))
      | _ -> raise (Parse_error "malformed manifest section"))
    empty sections

let load path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string source
