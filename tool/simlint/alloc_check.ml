(* A1 — zero-alloc hot-path verifier.

   The manifest's [hot_paths] section names the entry points whose
   BENCH_micro.json / BENCH_fluid.json numbers depend on not touching the
   minor heap per operation. This pass computes everything reachable from
   those entries over the call graph and reports every allocating
   construct {!Callgraph} recorded inside a reachable *function* body.

   Non-function nodes (toplevel constants, pre-built records) are
   reachable but not scanned: they run once at module init, where
   allocation is fine. Suppression is [@simlint.alloc_ok "reason"] on the
   offending expression or the whole binding; the walk already honoured
   those, so this pass only filters and formats. *)

let violation ~file ~line ~col message =
  { Lint.rule = "A1"; file; line; col; message }

let of_loc ~id ~via (a : Callgraph.alloc) =
  let loc = a.aloc in
  violation ~file:loc.loc_start.pos_fname ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    (Printf.sprintf "%s on hot path [%s]: %s" id via a.what)

let check graph (manifest : Manifest.t) =
  let missing =
    List.filter
      (fun r -> Option.is_none (Callgraph.find_node graph r))
      manifest.hot_paths
  in
  let missing_vs =
    List.map
      (fun r ->
        violation ~file:"tool/simlint/hotpaths.sexp" ~line:0 ~col:0
          (Printf.sprintf
             "hot_paths entry %s matches no node in the call graph (typo or \
              renamed function?)"
             r))
      missing
  in
  let parents = Callgraph.reachable_with_parents graph manifest.hot_paths in
  let findings = ref [] in
  List.iter
    (fun id ->
      match (Hashtbl.find_opt parents id, Callgraph.find_node graph id) with
      | Some _, Some n when n.is_fun && n.allocs <> [] ->
        let via = String.concat " -> " (Callgraph.chain parents id) in
        List.iter
          (fun a -> findings := of_loc ~id ~via a :: !findings)
          n.allocs
      | _ -> ())
    (Callgraph.node_ids graph);
  missing_vs @ List.sort Lint.compare_violation !findings
