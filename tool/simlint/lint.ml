(* Repo-specific lint pass over OCaml sources, built on compiler-libs.

   The simulator's results are only trustworthy if every run is
   bit-reproducible (the Exec cache and the Domain-parallel executor both
   assume it) and every quantity carries the unit its consumer expects.
   This pass rejects the constructs that historically break those two
   properties. Rules:

   R1 determinism — [Stdlib.Random], hash/iteration-order-dependent
      [Hashtbl] operations ([hash], [iter], [fold], [to_seq], ...) and
      wall-clock reads ([Unix.gettimeofday], [Unix.time], [Sys.time])
      anywhere except [lib/engine/rng.ml], the one sanctioned randomness
      source.
   R2 serialization — [Marshal] outside [lib/engine/exec.ml]: marshalled
      bytes are the cache's content address, so ad-hoc marshalling
      elsewhere silently couples unrelated code to the cache format.
   R3 [Obj.magic] anywhere.
   R4 float [=] / [<>] against a float literal: exact comparison is almost
      always a tolerance bug; use the [Sim_engine.Stats] epsilon helpers.
   R5 raw [Experiment] config record literals: only the labelled builder
      [Tcpflow.Experiment.config] validates its inputs, so construction
      must go through it (record literals are fine in the defining module).
   R6 [=] / [<>] where an operand is [None] or [Some _]: structural
      comparison descends into the payload, and several of our options
      hold values containing closures ([Sim.handle], receiver callbacks) —
      [compare] raises on those at runtime. Pattern match or use
      [Option.is_none] / [Option.is_some].
   R7 [Sim.schedule] / [Sim.schedule_at] with a callback that captures a
      packet: each such event boxes a closure (and pins the packet) on the
      hot path. Packets belong on a calendar lane ([Sim.schedule_packet]),
      which passes the payload as an argument to a callback registered
      once. Syntactic heuristic: the function-literal callback reads a
      [Packet]-qualified record field or mentions a free variable named
      [packet]/[pkt]; names bound inside the callback don't count.

   A violation is suppressed by [(* simlint: allow R<n> *)] on the same
   line or the line directly above it. *)

type violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_violation a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let pp ppf v =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

(* ---------- path classification ---------- *)

let normalize path = String.split_on_char '/' path |> List.filter (( <> ) "")

let has_suffix ~suffix path =
  let p = normalize path and s = normalize suffix in
  let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
  let lp = List.length p and ls = List.length s in
  lp >= ls && drop (lp - ls) p = s

let is_rng_home path = has_suffix ~suffix:"lib/engine/rng.ml" path
let is_exec_home path = has_suffix ~suffix:"lib/engine/exec.ml" path
let is_experiment_home path = has_suffix ~suffix:"lib/tcpflow/experiment.ml" path

(* ---------- suppression comments ---------- *)

let contains_at ~sub s i =
  i + String.length sub <= String.length s
  && String.sub s i (String.length sub) = sub

let find_sub ~sub s =
  let n = String.length s in
  let rec go i = if i > n then None else if contains_at ~sub s i then Some i else go (i + 1) in
  go 0

(* Rule names ([R] followed by digits) mentioned after "simlint: allow" on
   the line, if any. *)
let allowed_rules_of_line line =
  match find_sub ~sub:"simlint" line with
  | None -> []
  | Some i -> (
    let rest = String.sub line i (String.length line - i) in
    match find_sub ~sub:"allow" rest with
    | None -> []
    | Some j ->
      let tail = String.sub rest j (String.length rest - j) in
      let rules = ref [] in
      let n = String.length tail in
      let k = ref 0 in
      while !k < n do
        if
          tail.[!k] = 'R'
          && !k + 1 < n
          && tail.[!k + 1] >= '0'
          && tail.[!k + 1] <= '9'
        then begin
          let stop = ref (!k + 1) in
          while !stop < n && tail.[!stop] >= '0' && tail.[!stop] <= '9' do
            incr stop
          done;
          rules := String.sub tail !k (!stop - !k) :: !rules;
          k := !stop
        end
        else incr k
      done;
      !rules)

(* Maps line number -> rules allowed there. *)
let allowances source =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match allowed_rules_of_line line with
      | [] -> ()
      | rules -> Hashtbl.replace tbl (i + 1) rules)
    (String.split_on_char '\n' source);
  tbl

let suppressed allow ~rule ~line =
  let at l =
    match Hashtbl.find_opt allow l with
    | Some rules -> List.mem rule rules
    | None -> false
  in
  at line || at (line - 1)

(* ---------- AST checks ---------- *)

let flatten_longident lid =
  let parts = Longident.flatten lid in
  match parts with "Stdlib" :: rest -> rest | parts -> parts

let dotted lid = String.concat "." (flatten_longident lid)

(* Hashtbl operations whose behaviour depends on the (unspecified) hash
   order; lookups and updates are fine. *)
let order_dependent_hashtbl =
  [ "hash"; "seeded_hash"; "hash_param"; "seeded_hash_param"; "iter"; "fold";
    "filter_map_inplace"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let r1_message lid =
  let path = flatten_longident lid in
  match path with
  | "Random" :: _ ->
    Some
      (Printf.sprintf
         "nondeterministic source %s; derive randomness from Sim_engine.Rng \
          (seeded, splittable)"
         (dotted lid))
  | [ "Hashtbl"; op ] when List.mem op order_dependent_hashtbl ->
    Some
      (Printf.sprintf
         "Hashtbl.%s depends on hash order; iterate over sorted keys (or a \
          list) instead"
         op)
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    Some
      (Printf.sprintf
         "wall-clock read %s makes runs irreproducible; simulated time lives \
          in Sim_engine.Sim.now"
         (dotted lid))
  | _ -> None

let is_float_literal expr =
  let open Parsetree in
  let rec go e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_float _) -> true
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~+."); _ }; _ },
          [ (_, arg) ] ) ->
      go arg
    | _ -> false
  in
  go expr

let is_option_construct expr =
  let open Parsetree in
  match expr.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("None" | "Some"); _ }, _) -> true
  | _ -> false

(* Record literals that spell out an Experiment config by hand: any field
   qualified through an [Experiment] module, or the unqualified field set
   characteristic of [Tcpflow.Experiment.config]. Functional updates
   ([{ c with ... }]) start from an already-validated value and are fine. *)
let is_experiment_record fields =
  let field_lids = List.map (fun (lid, _) -> lid.Asttypes.txt) fields in
  let qualified =
    List.exists
      (fun lid -> List.mem "Experiment" (Longident.flatten lid))
      field_lids
  in
  let names =
    List.filter_map
      (fun lid ->
        match Longident.flatten lid with
        | [] -> None
        | parts -> Some (List.nth parts (List.length parts - 1)))
      field_lids
  in
  qualified || (List.mem "rate_bps" names && List.mem "flows" names)

(* R7 helpers: recognize timer-scheduling calls and packet-capturing
   callbacks. *)
let is_sim_schedule lid =
  match flatten_longident lid with
  | [ "Sim"; ("schedule" | "schedule_at") ]
  | [ "Sim_engine"; "Sim"; ("schedule" | "schedule_at") ] -> true
  | _ -> false

let packet_var_names = [ "packet"; "pkt" ]

(* Scans a callback expression for packet evidence: a [Packet]-qualified
   field read, or an occurrence of a conventional packet variable name that
   no pattern inside the callback binds (so it must be captured). Binding
   anywhere inside the callback shadows the name — a deliberate
   over-approximation that keeps the heuristic free of scope tracking. *)
let callback_captures_packet callback =
  let open Parsetree in
  let bound = Hashtbl.create 8 in
  let field_hit = ref false in
  let free_candidates = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
            Hashtbl.replace bound txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident name; _ }
            when List.mem name packet_var_names ->
            free_candidates := name :: !free_candidates
          | Pexp_field (_, { txt; _ })
            when List.mem "Packet" (Longident.flatten txt) ->
            field_hit := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter callback;
  !field_hit
  || List.exists (fun name -> not (Hashtbl.mem bound name)) !free_candidates

let check_file ~path source ast =
  let allow = allowances source in
  let violations = ref [] in
  let report ~loc ~rule message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    if not (suppressed allow ~rule ~line) then
      violations := { rule; file = path; line; col; message } :: !violations
  in
  let in_rng = is_rng_home path
  and in_exec = is_exec_home path
  and in_experiment = is_experiment_home path in
  let check_ident ~loc lid =
    let name = dotted lid in
    (if not in_rng then
       match r1_message lid with
       | Some msg -> report ~loc ~rule:"R1" msg
       | None -> ());
    (if (not in_exec) && String.length name >= 8 && String.sub name 0 8 = "Marshal."
     then
       report ~loc ~rule:"R2"
         (name
        ^ " outside the Exec result cache; route serialization through \
           Sim_engine.Exec"));
    if name = "Obj.magic" then
      report ~loc ~rule:"R3" "Obj.magic defeats the type system"
  in
  let open Parsetree in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident ~loc txt
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] )
            when is_float_literal a || is_float_literal b ->
            report ~loc:e.pexp_loc ~rule:"R4"
              (Printf.sprintf
                 "exact float comparison (%s) against a literal; use \
                  Sim_engine.Stats.approx_eq / is_zero"
                 op)
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] )
            when is_option_construct a || is_option_construct b ->
            report ~loc:e.pexp_loc ~rule:"R6"
              (Printf.sprintf
                 "structural %s against an option constructor; options can \
                  hold closures (e.g. Sim.handle) where compare raises — \
                  pattern match or use Option.is_none / Option.is_some"
                 op)
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = flid; _ }; _ }, args)
            when is_sim_schedule flid ->
            List.iter
              (fun (_, (arg : expression)) ->
                match arg.pexp_desc with
                | Pexp_fun _ | Pexp_function _ ->
                  if callback_captures_packet arg then
                    report ~loc:arg.pexp_loc ~rule:"R7"
                      "timer callback captures a packet; deliver it on a \
                       calendar lane (Sim.schedule_packet) so the payload \
                       rides as an argument instead of a per-event closure"
                | _ -> ())
              args
          | Pexp_record (fields, None)
            when (not in_experiment) && is_experiment_record fields ->
            report ~loc:e.pexp_loc ~rule:"R5"
              "raw Experiment config record literal; use the validating \
               builder Tcpflow.Experiment.config"
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter ast;
  List.sort compare_violation !violations

(* ---------- entry points ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse failures surface as a single PARSE violation so a broken file can
   never pass the linter. *)
let parse_error ~path exn =
  let loc, msg =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
      (err.Location.main.Location.loc, "does not parse as OCaml")
    | _ -> (Location.in_file path, Printexc.to_string exn)
  in
  [
    {
      rule = "PARSE";
      file = path;
      line = loc.Location.loc_start.Lexing.pos_lnum;
      col = 0;
      message = msg;
    };
  ]

(* Lint [source] as if it lived at [path] (used by the fixture tests). *)
let lint_source ~path source =
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    Parse.implementation lexbuf
  with
  | ast -> check_file ~path source ast
  | exception exn -> parse_error ~path exn

let lint_file path =
  let source = read_file path in
  match Pparse.parse_implementation ~tool_name:"simlint" path with
  | ast -> check_file ~path source ast
  | exception exn -> parse_error ~path exn

(* Fixture snippets under [lint_fixtures/] intentionally violate the rules
   (they are the linter's own test data), so the tree walker skips them. *)
let skipped_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let rec ml_files acc path =
  if Sys.is_directory path then
    if List.mem (Filename.basename path) skipped_dirs then acc
    else
      Sys.readdir path |> Array.to_list |> List.sort compare
      |> List.fold_left (fun acc f -> ml_files acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files = List.fold_left ml_files [] paths |> List.sort compare in
  (List.length files, List.concat_map lint_file files)
