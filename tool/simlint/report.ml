(* Machine-readable output and cross-pass hygiene findings.

   [write_json] serializes the full violation list as a flat array of
   {rule, file, line, col, message} objects — the artifact CI uploads as
   LINT_REPORT.json so regressions are diffable across runs without
   scraping the human-readable log.

   [bad_suppressions] turns every reasonless [@simlint.*] attribute the
   walk recorded into an A0 violation: the escape hatches stay auditable
   only if each one says why. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path (violations : Lint.violation list) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[";
      List.iteri
        (fun i (v : Lint.violation) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc
            "\n  {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": \
             %d, \"message\": \"%s\"}"
            (json_escape v.rule) (json_escape v.file) v.line v.col
            (json_escape v.message))
        violations;
      output_string oc "\n]\n")

let bad_suppressions graph =
  List.concat_map
    (fun id ->
      match Callgraph.find_node graph id with
      | Some n ->
        List.map
          (fun (loc : Location.t) ->
            {
              Lint.rule = "A0";
              file = loc.loc_start.pos_fname;
              line = loc.loc_start.pos_lnum;
              col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              message =
                Printf.sprintf
                  "[@simlint.*] suppression on %s has no reason string; \
                   every suppression must say why it is safe"
                  id;
            })
          n.bad_suppressions
      | None -> [])
    (Callgraph.node_ids graph)
  |> List.sort Lint.compare_violation
