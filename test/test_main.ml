let () =
  Alcotest.run "bbr_equilibrium"
    [
      ("engine.units", Test_units.tests);
      ("engine.rng", Test_rng.tests);
      ("engine.event_queue", Test_event_queue.tests);
      ("engine.sim", Test_sim.tests);
      ("engine.scheduler_diff", Test_scheduler_diff.tests);
      ("engine.timeseries", Test_timeseries.tests);
      ("engine.stats", Test_stats.tests);
      ("engine.exec", Test_exec.tests);
      ("engine.trace", Test_trace.tests);
      ("netsim", Test_netsim.tests);
      ("cca.windowed_filter", Test_windowed_filter.tests);
      ("cca.reno", Test_reno.tests);
      ("cca.cubic", Test_cubic.tests);
      ("cca.bbr", Test_bbr.tests);
      ("cca.bbr2", Test_bbr2.tests);
      ("cca.copa", Test_copa.tests);
      ("cca.vivace", Test_vivace.tests);
      ("cca.registry", Test_registry.tests);
      ("tcpflow.sender", Test_sender.tests);
      ("tcpflow.experiment", Test_experiment.tests);
      ("model", Test_model.tests);
      ("game", Test_game.tests);
      ("fluid", Test_fluid.tests);
      ("experiments", Test_experiments.tests);
      ("extensions", Test_extensions.tests);
      ("tcpflow.flow_trace", Test_flow_trace.tests);
      ("cca.vegas", Test_vegas.tests);
      ("invariants", Test_invariants.tests);
      ("details", Test_details.tests);
      ("lint", Test_lint.tests);
    ]
