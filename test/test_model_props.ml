(* QCheck properties for the analytical model (lib/model): randomized
   parameter sweeps over the paper's validity range (1 BDP <= B <= 100 BDP)
   checking the structural facts the figures rely on — shares are physical,
   BBR loses ground as buffers deepen, and the multi-flow synch/de-synch
   interval is a real interval. *)

module Params = Ccmodel.Params
module Two_flow = Ccmodel.Two_flow
module Multi_flow = Ccmodel.Multi_flow

(* mbps, buffer_bdp, rtt_ms over the model's validity range. *)
let params_gen =
  QCheck.Gen.(
    map3
      (fun mbps buffer_bdp rtt_ms -> (mbps, buffer_bdp, rtt_ms))
      (float_range 5.0 1000.0) (float_range 1.0 100.0) (float_range 5.0 200.0))

let params_arb =
  QCheck.make params_gen ~print:(fun (m, b, r) ->
      Printf.sprintf "mbps=%g buffer=%gbdp rtt=%gms" m b r)

let prop_shares_physical =
  QCheck.Test.make ~name:"two-flow shares >= 0 and sum <= capacity" ~count:200
    params_arb
    (fun (mbps, buffer_bdp, rtt_ms) ->
      let p = Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let s = Two_flow.solve p in
      let capacity_bits = mbps *. 1e6 in
      s.Two_flow.cubic_bandwidth_bps >= -1e-6
      && s.Two_flow.bbr_bandwidth_bps >= -1e-6
      && s.Two_flow.cubic_bandwidth_bps +. s.Two_flow.bbr_bandwidth_bps
         <= capacity_bits *. (1.0 +. 1e-9))

let prop_bbr_share_monotone =
  (* Deeper buffers help CUBIC (Fig. 2): BBR's share never increases in B. *)
  let gen =
    QCheck.Gen.(
      map2
        (fun (mbps, b1, rtt_ms) b2 -> (mbps, rtt_ms, b1, b2))
        params_gen (float_range 1.0 100.0))
  in
  QCheck.Test.make ~name:"bbr share non-increasing in buffer depth" ~count:200
    (QCheck.make gen ~print:(fun (m, r, b1, b2) ->
         Printf.sprintf "mbps=%g rtt=%gms b1=%g b2=%g" m r b1 b2))
    (fun (mbps, rtt_ms, b1, b2) ->
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      let share b =
        Two_flow.bbr_share (Params.of_paper_units ~mbps ~buffer_bdp:b ~rtt_ms)
      in
      share lo >= share hi -. 1e-6)

let prop_interval_ordered =
  let gen =
    QCheck.Gen.(
      map3
        (fun (mbps, buffer_bdp, rtt_ms) n_cubic n_bbr ->
          (mbps, buffer_bdp, rtt_ms, n_cubic, n_bbr))
        params_gen (int_range 1 30) (int_range 1 30))
  in
  QCheck.Test.make
    ~name:"multi-flow synch bound <= de-synch bound" ~count:200
    (QCheck.make gen ~print:(fun (m, b, r, nc, nb) ->
         Printf.sprintf "mbps=%g buffer=%gbdp rtt=%gms n_cubic=%d n_bbr=%d" m b
           r nc nb))
    (fun (mbps, buffer_bdp, rtt_ms, n_cubic, n_bbr) ->
      let p = Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let i = Multi_flow.per_flow_bbr_interval p ~n_cubic ~n_bbr in
      Float.is_finite i.Multi_flow.lower_bbr_per_flow_bps
      && Float.is_finite i.Multi_flow.upper_bbr_per_flow_bps
      && i.Multi_flow.lower_bbr_per_flow_bps >= -1e-6
      && i.Multi_flow.lower_bbr_per_flow_bps
         <= i.Multi_flow.upper_bbr_per_flow_bps +. 1e-6)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_shares_physical; prop_bbr_share_monotone; prop_interval_ordered ]
