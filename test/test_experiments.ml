open Experiments

(* --- Common --- *)

let test_catalog_complete () =
  let ids = Catalog.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    [ "table1"; "fig01"; "fig03"; "fig04"; "fig05"; "fig06"; "fig07";
      "fig08"; "fig09"; "fig10"; "fig11"; "fig12"; "evolve"; "fluidgrid";
      "workload"; "ext-red"; "ext-utility"; "ext-short"; "ext-internals";
      "ext-2flow" ];
  Alcotest.(check int) "20 artifacts" 20 (List.length ids);
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_catalog_find () =
  Alcotest.(check bool) "find fig03" true (Option.is_some (Catalog.find "fig03"));
  Alcotest.(check bool) "find missing" true (Option.is_none (Catalog.find "fig99"))

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Common.cell 3.14159);
  Alcotest.(check string) "nan" "-" (Common.cell nan);
  Alcotest.(check string) "int" "42" (Common.cell_int 42)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Common.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Common.mean []))

let test_grids () =
  let quick = Common.buffer_grid Common.Quick ~max:30.0 in
  Alcotest.(check bool) "quick nonempty" true (List.length quick >= 5);
  Alcotest.(check bool) "bounded" true (List.for_all (fun b -> b <= 30.0) quick);
  let full = Common.buffer_grid Common.Full ~max:30.0 in
  Alcotest.(check bool) "full finer" true
    (List.length full > List.length quick);
  let counts = Common.count_grid Common.Quick ~n:10 in
  Alcotest.(check bool) "contains endpoints" true
    (List.mem 0 counts && List.mem 10 counts);
  Alcotest.(check int) "full counts" 11
    (List.length (Common.count_grid Common.Full ~n:10))

let test_csv () =
  let table =
    {
      Common.id = "t";
      title = "x";
      header = [ "a"; "b" ];
      rows = [ [ "1"; "va,l" ]; [ "2"; "w" ] ];
      notes = [];
    }
  in
  let csv = Common.csv_of_table table in
  Alcotest.(check string) "escaped csv" "a,b\n1,\"va,l\"\n2,w\n" csv

let test_write_csv () =
  let dir = Filename.temp_file "repro" "" in
  Sys.remove dir;
  let table =
    { Common.id = "unit"; title = "t"; header = [ "x" ]; rows = [ [ "1" ] ];
      notes = [] }
  in
  let path = Common.write_csv ~dir table in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Sys.remove path;
  Sys.rmdir dir

let test_print_table_no_exn () =
  let table =
    { Common.id = "unit"; title = "t"; header = [ "col" ];
      rows = [ [ "value" ] ]; notes = [ "note" ] }
  in
  let rendered = Format.asprintf "%a" Common.print_table table in
  Alcotest.(check bool) "rendered" true (String.length rendered > 0)

(* --- Ne_search --- *)

let test_memoize () =
  let calls = ref 0 in
  let f =
    Ne_search.memoize (fun k ->
        incr calls;
        (float_of_int k, float_of_int k))
  in
  ignore (f 3);
  ignore (f 3);
  ignore (f 4);
  Alcotest.(check int) "two evaluations" 2 !calls

let synthetic_payoff k =
  (* u_cubic rises, u_bbr falls; fair share 10 crossed at k = 8. *)
  (6.0 +. (0.5 *. float_of_int k), 18.0 -. float_of_int k)

let test_observed_equilibria_finds_crossing () =
  let ne =
    Ne_search.observed_equilibria ~n:20 ~fair_bps:10.0
      ~payoff:synthetic_payoff ~window:3 ()
  in
  Alcotest.(check bool) "found" true (ne <> []);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "near crossing (%d)" k)
        true
        (k >= 5 && k <= 11))
    ne

let test_observed_equilibria_all_bbr () =
  (* BBR always above fair share: NE at k = n. *)
  let payoff k = (1.0, 50.0 -. float_of_int k) in
  let ne =
    Ne_search.observed_equilibria ~n:10 ~fair_bps:10.0 ~payoff ~window:2 ()
  in
  Alcotest.(check (list int)) "all-bbr" [ 10 ] ne

let test_observed_equilibria_all_cubic () =
  (* BBR never reaches fair share and CUBIC always better: NE at k = 0. *)
  let payoff _ = (9.0, 5.0) in
  let ne =
    Ne_search.observed_equilibria ~n:10 ~fair_bps:10.0 ~payoff ~window:2 ()
  in
  Alcotest.(check bool) "contains all-cubic" true (List.mem 0 ne)

let test_backend_payoff () =
  let rtt = Sim_engine.Units.ms 40.0 in
  let capacity_bps = Sim_engine.Units.mbps 50.0 in
  let spec =
    Sim_backend.spec ~rate_bps:capacity_bps
      ~buffer_bytes:
        (Sim_engine.Units.scale 5.0
           (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt))
      ~duration:(Sim_engine.Units.seconds 20.0)
      ~warmup:(Sim_engine.Units.seconds 5.0)
      [ { Sim_backend.cca = "cubic"; rtt } ]
  in
  List.iter
    (fun backend ->
      let payoff =
        Ne_search.backend_payoff ~backend ~spec ~other:"bbr" ~rtt ~n:4 ()
      in
      let u_cubic, u_bbr = payoff 2 in
      let label s = Sim_backend.name backend ^ " " ^ s in
      Alcotest.(check bool)
        (label "both positive") true
        (u_cubic > 0.0 && u_bbr > 0.0);
      Alcotest.(check bool)
        (label "bounded by capacity") true
        (u_cubic < (capacity_bps :> float) && u_bbr < (capacity_bps :> float)))
    [ Sim_backend.fluid; Sim_backend.ode ]

(* --- Model-only figure drivers (fast) --- *)

let test_table1_driver () =
  let t = Table1.run Common.quick in
  Alcotest.(check int) "14 rows" 14 (List.length t.Common.rows);
  Alcotest.(check string) "id" "table1" t.Common.id

let test_fig06_driver () =
  let t = Fig06.run Common.quick in
  Alcotest.(check int) "10 rows" 10 (List.length t.Common.rows);
  Alcotest.(check bool) "has NE note" true (t.Common.notes <> [])

let test_fig06_points_monotone () =
  let points = Fig06.points () in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "per-flow decreasing" true
        (b.Fig06.bbr_per_flow_sync_bps
        <= a.Fig06.bbr_per_flow_sync_bps +. 1.0);
      pairwise rest
    | _ -> ()
  in
  (* Ignore the all-BBR endpoint, which snaps to fair share by definition. *)
  pairwise (List.filter (fun p -> p.Fig06.n_bbr < 10) points)

let test_runs_config () =
  let config =
    Runs.config ~mode:Common.Quick ~mbps:100.0 ~rtt_ms:40.0 ~buffer_bdp:5.0
      ~flows:[ Tcpflow.Experiment.flow_config "cubic" ]
      ~seed:7 ()
  in
  Alcotest.(check (float 1.0)) "rate" 100e6
    (config.Tcpflow.Experiment.rate_bps :> float);
  Alcotest.(check int) "buffer 5 bdp" 2_500_000
    config.Tcpflow.Experiment.buffer_bytes;
  Alcotest.(check int) "seed" 7 config.Tcpflow.Experiment.seed

let test_fig09_helpers () =
  Alcotest.(check string) "observed fmt" "3/5"
    (Fig09.string_of_observed [ 3; 5 ]);
  Alcotest.(check string) "empty" "-" (Fig09.string_of_observed []);
  Alcotest.(check int) "quick flows" 20 (Fig09.flows_of_mode Common.Quick);
  Alcotest.(check int) "full flows" 50 (Fig09.flows_of_mode Common.Full)

let test_fig10_threshold_profile () =
  Alcotest.(check (array int)) "0 cubic" [| 10; 10; 10 |]
    (Fig10.threshold_profile 0);
  Alcotest.(check (array int)) "15 cubic: shortest groups first"
    [| 0; 5; 10 |] (Fig10.threshold_profile 15);
  Alcotest.(check (array int)) "all cubic" [| 0; 0; 0 |]
    (Fig10.threshold_profile 30)

(* --- Fig10 best-response convergence flag --- *)

let test_fig10_br_converges_on_dominant () =
  (* CUBIC dominant in group 0, BBR dominant in group 1: best response
     walks straight to the threshold profile and reports convergence. *)
  let payoffs =
    {
      Ccgame.Grouped_game.u_cubic =
        (fun ~group ~counts:_ -> if group = 0 then 10.0 else 1.0);
      u_bbr = (fun ~group ~counts:_ -> if group = 0 then 1.0 else 10.0);
    }
  in
  let counts, converged =
    Fig10.best_response_fixpoint ~sizes:[| 2; 2 |] ~payoffs ~start:[| 2; 0 |]
      ()
  in
  Alcotest.(check bool) "converged" true converged;
  Alcotest.(check (array int)) "threshold NE" [| 0; 2 |] counts

let test_fig10_br_detects_cycle () =
  (* Matching pennies over two one-flow groups: group 0 wants to match
     group 1's CCA, group 1 wants to mismatch. Best response chases its
     tail forever (00 -> 01 -> 11 -> 10 -> 00 ...), which the pre-fix code
     silently reported as a fixpoint when the step cap fired. *)
  let payoffs =
    {
      Ccgame.Grouped_game.u_cubic =
        (fun ~group ~counts ->
          if group = 0 then if counts.(1) = 0 then 1.0 else 0.0
          else if counts.(0) = 1 then 1.0
          else 0.0);
      u_bbr =
        (fun ~group ~counts ->
          if group = 0 then if counts.(1) = 1 then 1.0 else 0.0
          else if counts.(0) = 0 then 1.0
          else 0.0);
    }
  in
  let counts, converged =
    Fig10.best_response_fixpoint ~max_steps:40 ~sizes:[| 1; 1 |] ~payoffs
      ~start:[| 0; 0 |] ()
  in
  Alcotest.(check bool) "non-convergence detected" false converged;
  Array.iter
    (fun k ->
      Alcotest.(check bool) "terminal counts in range" true (k >= 0 && k <= 1))
    counts;
  (* And no profile of the cycle passes the NE check, so find_ne-style
     callers must not fall back to the capped terminal. *)
  Alcotest.(check (list (array int))) "no NE exists" []
    (Ccgame.Grouped_game.equilibria ~sizes:[| 1; 1 |] payoffs)

(* --- Runs.run_specs_memo --- *)

let test_run_specs_memo_dedupes () =
  let rtt = Sim_engine.Units.ms 40.0 in
  let capacity_bps = Sim_engine.Units.mbps 50.0 in
  let spec cca =
    Sim_backend.spec ~rate_bps:capacity_bps
      ~buffer_bytes:
        (Sim_engine.Units.scale 2.0
           (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt))
      ~duration:(Sim_engine.Units.seconds 10.0)
      ~warmup:(Sim_engine.Units.seconds 2.0)
      [ { Sim_backend.cca; rtt } ]
  in
  let memo = Runs.memo () in
  (* batch:1 so jobs_executed counts specs, making the dedup visible;
     batching (batch > 1) merges misses into chunks and is covered by
     test_batch.ml. *)
  let ctx = Common.ctx ~batch:1 Common.Quick in
  let before = (Sim_engine.Exec.counters ()).jobs_executed in
  let outcomes =
    Runs.run_specs_memo ~memo ctx Sim_backend.ode
      [ spec "cubic"; spec "bbr"; spec "cubic" ]
  in
  let first_batch = (Sim_engine.Exec.counters ()).jobs_executed - before in
  Alcotest.(check int) "order-preserving length" 3 (List.length outcomes);
  Alcotest.(check int) "duplicates run once" 2 first_batch;
  Alcotest.(check bool) "repeats share the outcome" true
    (List.nth outcomes 0 = List.nth outcomes 2);
  let again = Runs.run_specs_memo ~memo ctx Sim_backend.ode [ spec "bbr" ] in
  let second_batch =
    (Sim_engine.Exec.counters ()).jobs_executed - before - first_batch
  in
  Alcotest.(check int) "memo hit runs nothing" 0 second_batch;
  Alcotest.(check bool) "memo returns the same outcome" true
    (List.nth outcomes 1 = List.hd again)

(* --- the evolve driver --- *)

let test_adoption_jobs_deterministic () =
  (* The acceptance property of the sharding design: trajectories are
     byte-identical for any --jobs. Tiny grid (ODE backend, no packet
     spot checks, few generations) to keep the two runs fast. *)
  let table jobs =
    Common.csv_of_table
      (Adoption.run_with ~backend:Sim_backend.ode ~spot_checks:0
         ~max_generations:6
         (Common.ctx ~jobs Common.Quick))
  in
  Alcotest.(check string) "byte-identical across jobs" (table 1) (table 3)

let test_fig12_regimes () =
  Alcotest.(check string) "shallow" "shallow"
    (Fig12.regime_name Ccmodel.Two_flow.Shallow);
  Alcotest.(check string) "valid" "cwnd-limited"
    (Fig12.regime_name Ccmodel.Two_flow.Valid);
  Alcotest.(check string) "deep" "not-cwnd-limited"
    (Fig12.regime_name Ccmodel.Two_flow.Ultra_deep)

let tests =
  [
    Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
    Alcotest.test_case "catalog find" `Quick test_catalog_find;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "grids" `Quick test_grids;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "write csv" `Quick test_write_csv;
    Alcotest.test_case "print table" `Quick test_print_table_no_exn;
    Alcotest.test_case "memoize" `Quick test_memoize;
    Alcotest.test_case "NE search crossing" `Quick
      test_observed_equilibria_finds_crossing;
    Alcotest.test_case "NE search all-bbr" `Quick
      test_observed_equilibria_all_bbr;
    Alcotest.test_case "NE search all-cubic" `Quick
      test_observed_equilibria_all_cubic;
    Alcotest.test_case "backend payoff" `Quick test_backend_payoff;
    Alcotest.test_case "table1 driver" `Quick test_table1_driver;
    Alcotest.test_case "fig06 driver" `Quick test_fig06_driver;
    Alcotest.test_case "fig06 monotone" `Quick test_fig06_points_monotone;
    Alcotest.test_case "runs config" `Quick test_runs_config;
    Alcotest.test_case "fig09 helpers" `Quick test_fig09_helpers;
    Alcotest.test_case "fig10 threshold" `Quick test_fig10_threshold_profile;
    Alcotest.test_case "fig10 BR converges" `Quick
      test_fig10_br_converges_on_dominant;
    Alcotest.test_case "fig10 BR cycle detected" `Quick
      test_fig10_br_detects_cycle;
    Alcotest.test_case "run_specs_memo dedupes" `Quick
      test_run_specs_memo_dedupes;
    Alcotest.test_case "evolve jobs-deterministic" `Quick
      test_adoption_jobs_deterministic;
    Alcotest.test_case "fig12 regimes" `Quick test_fig12_regimes;
  ]
