let mss = 1500

let make () =
  Cca.Bbr.make ~mss ~rng:(Sim_engine.Rng.create 1) ()

(* Drive the flow at a steady delivery rate so the state machine advances:
   [rate] bytes/s, [rtt] seconds, rounds advance per call batch. *)
let drive cc ~rounds ~rate ~rtt ~start_now ~start_round =
  Cca_driver.feed_rounds cc ~rounds ~per_round:10 ~rtt ~rate ~start_now
    ~start_round

let test_starts_in_startup () =
  let cc = make () in
  Alcotest.(check string) "startup" "Startup" (cc.Cca.Cc_types.state ())

let test_startup_exits_on_plateau () =
  let cc = make () in
  (* constant delivery rate -> bandwidth plateau -> Drain then ProbeBW *)
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  let state = cc.Cca.Cc_types.state () in
  Alcotest.(check bool)
    (Printf.sprintf "left startup (%s)" state)
    true
    (state = "Drain" || state = "ProbeBW")

let test_reaches_probe_bw () =
  let cc = make () in
  (* After the plateau, low inflight lets Drain finish. *)
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:11 ());
  Alcotest.(check string) "probe bw" "ProbeBW" (cc.Cca.Cc_types.state ())

let test_cwnd_is_2bdp_in_probe_bw () =
  let cc = make () in
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:11 ());
  (* btlbw = 1e6 B/s, rtprop = 0.04 -> BDP = 40 kB -> cwnd = 80 kB *)
  Alcotest.(check (float 2000.0)) "2x BDP" 80_000.0
    (cc.Cca.Cc_types.cwnd_bytes ())

let test_pacing_rate_follows_btlbw () =
  let cc = make () in
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:11 ());
  let rate = cc.Cca.Cc_types.pacing_rate () in
  if Float.is_nan rate then Alcotest.fail "expected pacing"
  else
    (* gain cycling: rate in [0.75, 1.25] x btlbw *)
    Alcotest.(check bool)
      (Printf.sprintf "pacing %f" rate)
      true
      (rate >= 0.74e6 && rate <= 1.26e6)

let test_loss_agnostic () =
  let cc = make () in
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  let before = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:1.0 ());
  Alcotest.(check (float 0.0)) "unchanged by loss" before
    (cc.Cca.Cc_types.cwnd_bytes ())

let test_probe_rtt_after_10s () =
  let cc = make () in
  let now, round =
    drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0
  in
  (* Keep RTT samples slightly above the initial minimum for > 10 s. *)
  let _ =
    drive cc ~rounds:260 ~rate:1e6 ~rtt:0.05 ~start_now:now ~start_round:round
  in
  Alcotest.(check string) "probe rtt" "ProbeRTT" (cc.Cca.Cc_types.state ())

let test_probe_rtt_cwnd_floor () =
  let cc = make () in
  let now, round =
    drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0
  in
  let _ =
    drive cc ~rounds:260 ~rate:1e6 ~rtt:0.05 ~start_now:now ~start_round:round
  in
  Alcotest.(check (float 0.0)) "4 mss during probe" 6000.0
    (cc.Cca.Cc_types.cwnd_bytes ())

let test_probe_rtt_exits () =
  let cc = make () in
  let now, round =
    drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0
  in
  let now, round =
    drive cc ~rounds:260 ~rate:1e6 ~rtt:0.05 ~start_now:now ~start_round:round
  in
  Alcotest.(check string) "in probe rtt" "ProbeRTT" (cc.Cca.Cc_types.state ());
  (* Deliver low-inflight ACKs over > 200 ms so ProbeRTT can complete. *)
  let t = ref now and r = ref round in
  for _ = 1 to 10 do
    t := !t +. 0.05;
    incr r;
    cc.Cca.Cc_types.on_ack
      (Cca_driver.ack ~now:!t ~rtt:0.041 ~rate:1e6 ~inflight:3000 ~round:!r
         ~round_start:true ())
  done;
  Alcotest.(check string) "back to probe bw" "ProbeBW" (cc.Cca.Cc_types.state ())

let test_rtprop_adopts_on_expiry () =
  (* After ProbeRTT, the rtprop estimate should reflect recent (larger)
     samples rather than the stale minimum: cwnd grows accordingly. *)
  let cc = make () in
  let now, round =
    drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0
  in
  let now, round =
    drive cc ~rounds:260 ~rate:1e6 ~rtt:0.08 ~start_now:now ~start_round:round
  in
  let t = ref now and r = ref round in
  for _ = 1 to 10 do
    t := !t +. 0.08;
    incr r;
    cc.Cca.Cc_types.on_ack
      (Cca_driver.ack ~now:!t ~rtt:0.08 ~rate:1e6 ~inflight:3000 ~round:!r
         ~round_start:true ())
  done;
  (* cwnd should now be ~2 x 1e6 x 0.08 = 160 kB, not 80 kB *)
  Alcotest.(check bool)
    (Printf.sprintf "cwnd reflects new rtprop (%.0f)"
       (cc.Cca.Cc_types.cwnd_bytes ()))
    true
    (cc.Cca.Cc_types.cwnd_bytes () > 120_000.0)

let test_app_limited_samples_only_raise () =
  let cc = make () in
  let _ = drive cc ~rounds:10 ~rate:1e6 ~rtt:0.04 ~start_now:0.0 ~start_round:0 in
  let before = cc.Cca.Cc_types.cwnd_bytes () in
  (* A low app-limited sample must not shrink the bandwidth estimate. *)
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e3 ~app_limited:true
       ~inflight:1500 ~round:11 ());
  Alcotest.(check bool) "not reduced" true
    (cc.Cca.Cc_types.cwnd_bytes () >= before *. 0.99)

let test_mode_of_alias () =
  let cc = make () in
  Alcotest.(check string) "alias" (cc.Cca.Cc_types.state ())
    (Cca.Bbr.mode_of cc)

let tests =
  [
    Alcotest.test_case "starts in Startup" `Quick test_starts_in_startup;
    Alcotest.test_case "startup exit on plateau" `Quick
      test_startup_exits_on_plateau;
    Alcotest.test_case "reaches ProbeBW" `Quick test_reaches_probe_bw;
    Alcotest.test_case "cwnd = 2xBDP" `Quick test_cwnd_is_2bdp_in_probe_bw;
    Alcotest.test_case "pacing follows btlbw" `Quick
      test_pacing_rate_follows_btlbw;
    Alcotest.test_case "loss agnostic" `Quick test_loss_agnostic;
    Alcotest.test_case "ProbeRTT after 10s" `Quick test_probe_rtt_after_10s;
    Alcotest.test_case "ProbeRTT cwnd floor" `Quick test_probe_rtt_cwnd_floor;
    Alcotest.test_case "ProbeRTT exits" `Quick test_probe_rtt_exits;
    Alcotest.test_case "rtprop adoption" `Quick test_rtprop_adopts_on_expiry;
    Alcotest.test_case "app-limited samples" `Quick
      test_app_limited_samples_only_raise;
    Alcotest.test_case "mode_of" `Quick test_mode_of_alias;
  ]
