(* The workload generators: analytic means vs sampled means, tail behavior,
   inter-arrival distribution shape, schedule determinism, and the seed-split
   independence that keeps arrivals decoupled from sender randomness. *)

module Rng = Sim_engine.Rng
module Dist = Workload.Dist
module Arrival = Workload.Arrival
module Schedule = Workload.Schedule

let sample_mean dist ~seed ~n =
  let rng = Rng.create seed in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. float_of_int (Dist.sample dist rng)
  done;
  !acc /. float_of_int n

(* --- size distributions --- *)

let test_dist_means () =
  List.iter
    (fun (name, dist, tol) ->
      let mean = Dist.mean_bytes dist in
      let got = sample_mean dist ~seed:42 ~n:20_000 in
      let rel = Float.abs (got -. mean) /. mean in
      if rel > tol then
        Alcotest.failf "%s: sample mean %.0f vs analytic %.0f (rel %.3f > %.3f)"
          name got mean rel tol)
    [
      ("fixed", Dist.Fixed 30_000, 1e-9);
      ("uniform", Dist.Uniform { lo_bytes = 100_000; hi_bytes = 500_000 }, 0.01);
      ("lognormal", Dist.Lognormal { mu = log 30_000.0; sigma = 1.0 }, 0.05);
      (* Pareto alpha 1.3: infinite variance, the sample mean converges
         slowly — a loose tolerance is the honest one. *)
      ("pareto", Dist.Pareto { xm_bytes = 300_000.0; alpha = 1.3 }, 0.35);
      ("web", Dist.web_objects, 0.25);
    ]

let test_dist_bounds () =
  let rng = Rng.create 7 in
  let dist = Dist.Uniform { lo_bytes = 100; hi_bytes = 200 } in
  for _ = 1 to 1000 do
    let s = Dist.sample dist rng in
    if s < 100 || s >= 200 then Alcotest.failf "uniform sample %d out of range" s
  done;
  let pareto = Dist.Pareto { xm_bytes = 5_000.0; alpha = 2.0 } in
  for _ = 1 to 1000 do
    let s = Dist.sample pareto rng in
    if s < 5_000 then Alcotest.failf "pareto sample %d below scale" s
  done

let test_dist_tail_heavier_than_body () =
  (* The web mixture must actually produce its heavy tail: with 5% Pareto
     weight above 300 kB, 20k samples see hundreds of tail draws. *)
  let rng = Rng.create 3 in
  let n = 20_000 in
  let tail = ref 0 in
  for _ = 1 to n do
    if Dist.sample Dist.web_objects rng >= 300_000 then incr tail
  done;
  let frac = float_of_int !tail /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "tail fraction %.3f in [0.03, 0.12]" frac)
    true
    (frac >= 0.03 && frac <= 0.12)

let test_dist_validate_rejects () =
  List.iter
    (fun (name, dist) ->
      match Dist.validate dist with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "%s: expected Invalid_argument" name)
    [
      ("fixed zero", Dist.Fixed 0);
      ("uniform inverted", Dist.Uniform { lo_bytes = 10; hi_bytes = 10 });
      ("pareto alpha", Dist.Pareto { xm_bytes = 100.0; alpha = 1.0 });
      ("lognormal sigma", Dist.Lognormal { mu = 1.0; sigma = -1.0 });
    ]

let test_dist_string_roundtrip () =
  List.iter
    (fun dist ->
      match Dist.of_string (Dist.to_string dist) with
      | Some d ->
        Alcotest.(check string) "round-trips" (Dist.to_string dist)
          (Dist.to_string d)
      | None -> Alcotest.failf "parse failed: %s" (Dist.to_string dist))
    [
      Dist.Fixed 30_000;
      Dist.Uniform { lo_bytes = 100_000; hi_bytes = 500_000 };
      Dist.Lognormal { mu = log 30_000.0; sigma = 1.0 };
      Dist.Pareto { xm_bytes = 300_000.0; alpha = 1.3 };
      Dist.web_objects;
    ]

(* --- arrival processes --- *)

(* A KS-style check on Poisson inter-arrival gaps: the empirical CDF of
   exponential gaps must stay within a generous band of the analytic CDF.
   With n = 10_000 the 1% KS critical value is ~0.0163; 0.03 leaves slack
   while still failing for any wrong distribution shape. *)
let test_poisson_gaps_exponential () =
  let rate = 50.0 in
  let arrival = Arrival.Poisson { rate_per_s = rate } in
  let rng = Rng.create 11 in
  let n = 10_000 in
  let gaps = Array.init n (fun _ -> Arrival.next_gap arrival rng) in
  Array.sort compare gaps;
  let worst = ref 0.0 in
  Array.iteri
    (fun i g ->
      let empirical = float_of_int (i + 1) /. float_of_int n in
      let analytic = 1.0 -. exp (-.rate *. g) in
      let d = Float.abs (empirical -. analytic) in
      if d > !worst then worst := d)
    gaps;
  Alcotest.(check bool)
    (Printf.sprintf "KS distance %.4f < 0.03" !worst)
    true (!worst < 0.03)

let test_arrival_means () =
  List.iter
    (fun (name, arrival, tol) ->
      let mean = Arrival.mean_gap_s arrival in
      let rng = Rng.create 19 in
      let n = 20_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. Arrival.next_gap arrival rng
      done;
      let got = !acc /. float_of_int n in
      let rel = Float.abs (got -. mean) /. mean in
      if rel > tol then
        Alcotest.failf "%s: sample mean gap %.5f vs %.5f (rel %.3f)" name got
          mean rel)
    [
      ("poisson", Arrival.Poisson { rate_per_s = 20.0 }, 0.02);
      ("pareto gaps", Arrival.Pareto_gaps { mean_gap_s = 0.05; alpha = 1.5 }, 0.35);
    ]

let test_poisson_of_load () =
  let a =
    Arrival.poisson_of_load ~load:0.5 ~rate_bps:100e6 ~mean_size_bytes:125_000.0
  in
  (* 0.5 * 100e6 bits/s / (8 * 125_000 bits per flow) = 50 flows/s *)
  match a with
  | Arrival.Poisson { rate_per_s } ->
    Alcotest.(check (float 1e-9)) "rate" 50.0 rate_per_s
  | _ -> Alcotest.fail "expected Poisson"

(* --- schedules --- *)

let web_schedule ~seed =
  Schedule.generate_seeded
    ~arrival:(Arrival.Poisson { rate_per_s = 40.0 })
    ~sizes:Dist.web_objects ~horizon_s:10.0 ~seed ()

let test_schedule_deterministic () =
  let a = web_schedule ~seed:5 and b = web_schedule ~seed:5 in
  Alcotest.(check string) "byte-identical for one seed" (Schedule.to_string a)
    (Schedule.to_string b);
  let c = web_schedule ~seed:6 in
  Alcotest.(check bool) "different seed, different schedule" false
    (String.equal (Schedule.to_string a) (Schedule.to_string c))

let test_schedule_sorted_within_horizon () =
  let s = web_schedule ~seed:5 in
  Alcotest.(check bool) "non-empty" true (Schedule.count s > 0);
  Array.iteri
    (fun i it ->
      if it.Schedule.arrival_s < 0.0 || it.Schedule.arrival_s >= 10.0 then
        Alcotest.failf "arrival %f outside horizon" it.Schedule.arrival_s;
      if it.Schedule.size_bytes <= 0 then
        Alcotest.failf "non-positive size %d" it.Schedule.size_bytes;
      if i > 0 && s.(i - 1).Schedule.arrival_s > it.Schedule.arrival_s then
        Alcotest.fail "arrivals not sorted")
    s

(* Seed-split independence: the arrival instants of a schedule must not
   depend on the size distribution (and vice versa), because [generate]
   splits one sub-stream per axis. *)
let test_schedule_axes_independent () =
  let gen sizes =
    Schedule.generate
      ~arrival:(Arrival.Poisson { rate_per_s = 40.0 })
      ~sizes ~horizon_s:10.0 ~rng:(Rng.create 5) ()
  in
  let a = gen (Dist.Fixed 10_000) in
  let b = gen Dist.web_objects in
  Alcotest.(check int) "same arrival count" (Schedule.count a)
    (Schedule.count b);
  Array.iteri
    (fun i it ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "arrival %d unchanged" i)
        it.Schedule.arrival_s
        b.(i).Schedule.arrival_s)
    a

let test_patterns () =
  let arrival = Arrival.Poisson { rate_per_s = 5.0 } in
  let sizes = Dist.Fixed 20_000 in
  let rr =
    Schedule.generate
      ~pattern:(Schedule.Request_response { request_bytes = 400; think_s = 0.1 })
      ~arrival ~sizes ~horizon_s:20.0 ~rng:(Rng.create 9) ()
  in
  Alcotest.(check bool) "request-response has requests" true
    (Array.exists (fun it -> it.Schedule.size_bytes = 400) rr);
  Alcotest.(check bool) "request-response has responses" true
    (Array.exists (fun it -> it.Schedule.size_bytes = 20_000) rr);
  let dash =
    Schedule.generate
      ~pattern:(Schedule.Dash { segments = 4; gap_s = 0.5 })
      ~arrival ~sizes ~horizon_s:20.0 ~rng:(Rng.create 9) ()
  in
  (* Every DASH session multiplies the arrival into up to [segments]
     transfers; with a 20 s horizon most sessions are complete. *)
  Alcotest.(check bool) "dash expands sessions" true
    (Schedule.count dash > Schedule.count rr / 2);
  Array.iteri
    (fun i it ->
      if i > 0 && dash.(i - 1).Schedule.arrival_s > it.Schedule.arrival_s then
        Alcotest.fail "dash arrivals not sorted")
    dash

let test_offered_load () =
  let s = web_schedule ~seed:5 in
  let rate_bps = 50e6 in
  let load = Schedule.offered_load s ~rate_bps ~horizon_s:10.0 in
  let expect =
    8.0 *. float_of_int (Schedule.total_bytes s) /. 10.0 /. rate_bps
  in
  Alcotest.(check (float 1e-9)) "load is scheduled bits over capacity" expect
    load

(* --- QCheck properties --- *)

let prop_schedule_deterministic =
  QCheck.Test.make ~name:"schedule byte-identical for a fixed seed" ~count:30
    QCheck.(pair (int_bound 1000) (int_range 1 50))
    (fun (seed, rate) ->
      let gen () =
        Schedule.generate_seeded
          ~arrival:(Arrival.Poisson { rate_per_s = float_of_int rate })
          ~sizes:Dist.web_objects ~horizon_s:5.0 ~seed ()
      in
      String.equal (Schedule.to_string (gen ())) (Schedule.to_string (gen ())))

let prop_mean_size_tolerance =
  QCheck.Test.make ~name:"lognormal sample mean tracks analytic mean" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 10 200))
    (fun (seed, mean_kb) ->
      let mu = log (float_of_int mean_kb *. 1000.0) -. 0.5 in
      let dist = Dist.Lognormal { mu; sigma = 1.0 } in
      let mean = Dist.mean_bytes dist in
      let got = sample_mean dist ~seed ~n:4_000 in
      Float.abs (got -. mean) /. mean < 0.2)

let tests =
  [
    Alcotest.test_case "size dist means" `Quick test_dist_means;
    Alcotest.test_case "size dist bounds" `Quick test_dist_bounds;
    Alcotest.test_case "web mixture tail" `Quick test_dist_tail_heavier_than_body;
    Alcotest.test_case "dist validate rejects" `Quick test_dist_validate_rejects;
    Alcotest.test_case "dist string round-trip" `Quick test_dist_string_roundtrip;
    Alcotest.test_case "poisson gaps exponential (KS)" `Quick
      test_poisson_gaps_exponential;
    Alcotest.test_case "arrival mean gaps" `Quick test_arrival_means;
    Alcotest.test_case "poisson_of_load" `Quick test_poisson_of_load;
    Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "schedule sorted, within horizon" `Quick
      test_schedule_sorted_within_horizon;
    Alcotest.test_case "arrival/size axes independent" `Quick
      test_schedule_axes_independent;
    Alcotest.test_case "request-response and dash patterns" `Quick test_patterns;
    Alcotest.test_case "offered load" `Quick test_offered_load;
    QCheck_alcotest.to_alcotest prop_schedule_deterministic;
    QCheck_alcotest.to_alcotest prop_mean_size_tolerance;
  ]
