open Ccgame

(* --- Normal_form --- *)

(* Prisoner's dilemma: strategies 0=cooperate, 1=defect. Unique NE: both
   defect. *)
let prisoners_dilemma =
  let payoff profile player =
    match (profile.(player), profile.(1 - player)) with
    | 0, 0 -> 3.0
    | 0, _ -> 0.0
    | 1, 0 -> 5.0
    | _, _ -> 1.0
  in
  Normal_form.create ~n_players:2 ~n_strategies:2 ~payoff

let test_pd_equilibrium () =
  let ne = Normal_form.pure_equilibria prisoners_dilemma in
  Alcotest.(check int) "unique NE" 1 (List.length ne);
  Alcotest.(check (array int)) "both defect" [| 1; 1 |] (List.hd ne)

let test_pd_is_nash () =
  Alcotest.(check bool) "defect-defect" true
    (Normal_form.is_nash prisoners_dilemma [| 1; 1 |]);
  Alcotest.(check bool) "cooperate-cooperate is not" false
    (Normal_form.is_nash prisoners_dilemma [| 0; 0 |])

let test_pd_best_response () =
  Alcotest.(check int) "defect vs cooperator" 1
    (Normal_form.best_response prisoners_dilemma [| 0; 0 |] ~player:0)

(* Matching pennies has no pure NE. *)
let matching_pennies =
  let payoff profile player =
    let same = profile.(0) = profile.(1) in
    if (player = 0 && same) || (player = 1 && not same) then 1.0 else -1.0
  in
  Normal_form.create ~n_players:2 ~n_strategies:2 ~payoff

let test_matching_pennies_no_pure_ne () =
  Alcotest.(check int) "no pure NE" 0
    (List.length (Normal_form.pure_equilibria matching_pennies))

let test_coordination_two_ne () =
  (* Pure coordination: payoff 1 when matching, 0 otherwise -> 2 pure NE. *)
  let game =
    Normal_form.create ~n_players:2 ~n_strategies:2 ~payoff:(fun profile _ ->
        if profile.(0) = profile.(1) then 1.0 else 0.0)
  in
  Alcotest.(check int) "two NE" 2 (List.length (Normal_form.pure_equilibria game))

let test_three_player_game () =
  (* Everyone prefers strategy 1 regardless (dominant): unique NE all-1. *)
  let game =
    Normal_form.create ~n_players:3 ~n_strategies:2 ~payoff:(fun profile p ->
        float_of_int profile.(p))
  in
  let ne = Normal_form.pure_equilibria game in
  Alcotest.(check int) "unique" 1 (List.length ne);
  Alcotest.(check (array int)) "all defect" [| 1; 1; 1 |] (List.hd ne)

let test_memoization_consistent () =
  let calls = ref 0 in
  let game =
    Normal_form.create ~n_players:2 ~n_strategies:2 ~payoff:(fun _ _ ->
        incr calls;
        1.0)
  in
  ignore (Normal_form.payoff game [| 0; 0 |] 0);
  ignore (Normal_form.payoff game [| 0; 0 |] 1);
  ignore (Normal_form.payoff game [| 0; 0 |] 0);
  Alcotest.(check int) "profile evaluated once (both players)" 2 !calls

(* --- Symmetric_game --- *)

(* The paper's shape: u_bbr decreasing in k crossing the fair share, u_cubic
   increasing. Fair share 10; crossing at k*=4. *)
let paper_like =
  {
    Symmetric_game.u_cubic = (fun k -> 6.0 +. float_of_int k);
    u_bbr = (fun k -> 18.0 -. (2.0 *. float_of_int k));
  }

let test_symmetric_ne () =
  let ne = Symmetric_game.equilibria ~n:10 paper_like in
  (* k=4: u_bbr 4 = 10 >= u_cubic 3 = 9; u_cubic 4 = 10 >= u_bbr 5 = 8 ✓ *)
  Alcotest.(check bool) "4 is NE" true (List.mem 4 ne);
  Alcotest.(check bool) "0 is not NE (switching pays)" false (List.mem 0 ne);
  Alcotest.(check bool) "10 is not NE" false (List.mem 10 ne)

let test_symmetric_cubic_counts () =
  let cubic = Symmetric_game.equilibria_cubic_counts ~n:10 paper_like in
  Alcotest.(check bool) "6 cubic at NE" true (List.mem 6 cubic)

let test_symmetric_all_bbr_ne () =
  (* BBR dominates at every mix: the unique NE is all-BBR (paper case 1). *)
  let game =
    {
      Symmetric_game.u_cubic = (fun _ -> 1.0);
      u_bbr = (fun _ -> 5.0);
    }
  in
  Alcotest.(check (list int)) "all-BBR" [ 10 ]
    (Symmetric_game.equilibria ~n:10 game)

let test_symmetric_epsilon_widens () =
  let strict = Symmetric_game.equilibria ~n:10 paper_like in
  let loose = Symmetric_game.equilibria ~epsilon:0.2 ~n:10 paper_like in
  Alcotest.(check bool) "epsilon adds neighbours" true
    (List.length loose >= List.length strict)

let test_symmetric_validation () =
  match Symmetric_game.is_equilibrium ~n:10 paper_like 11 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range should raise"

let test_of_samples () =
  let u_cubic = [| 1.0; 2.0; 3.0 |] and u_bbr = [| nan; 5.0; 1.0 |] in
  let game = Symmetric_game.of_samples ~u_cubic ~u_bbr in
  Alcotest.(check (float 0.0)) "lookup" 5.0 (game.Symmetric_game.u_bbr 1);
  match Symmetric_game.of_samples ~u_cubic ~u_bbr:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch should raise"

(* --- Tolerance --- *)

let test_tolerance_basic () =
  Alcotest.(check bool) "equal passes" true
    (Tolerance.no_gain ~epsilon:0.05 1.0 1.0);
  Alcotest.(check bool) "within relative slack" true
    (Tolerance.no_gain ~epsilon:0.05 0.96 1.0);
  Alcotest.(check bool) "beyond relative slack" false
    (Tolerance.no_gain ~epsilon:0.05 0.90 1.0);
  Alcotest.(check bool) "strict by default" false
    (Tolerance.no_gain 0.999_999 1.0)

let test_tolerance_zero_target () =
  (* The old relative-only form degenerated at target ~ 0: the slack
     vanished and any negative noise registered as a profitable
     deviation. [abs_tol] is the fix. *)
  Alcotest.(check bool) "relative slack still vanishes at zero" false
    (Tolerance.no_gain ~epsilon:0.1 (-1e-9) 0.0);
  Alcotest.(check bool) "abs_tol absorbs noise at zero" true
    (Tolerance.no_gain ~epsilon:0.1 ~abs_tol:1e-6 (-1e-9) 0.0);
  Alcotest.(check bool) "abs_tol is a bound, not a blank check" false
    (Tolerance.no_gain ~epsilon:0.1 ~abs_tol:1e-6 (-1.0) 0.0)

let test_tolerance_negative_target () =
  (* The old form's [target *. (1 -. epsilon)] moved the threshold the
     wrong way for negative targets: even [current = target] failed. The
     magnitude-based slack keeps the direction right. *)
  Alcotest.(check bool) "equal negative payoffs pass" true
    (Tolerance.no_gain ~epsilon:0.05 (-10.0) (-10.0));
  Alcotest.(check bool) "slightly below within slack" true
    (Tolerance.no_gain ~epsilon:0.05 (-10.4) (-10.0));
  Alcotest.(check bool) "well below fails" false
    (Tolerance.no_gain ~epsilon:0.05 (-12.0) (-10.0))

let test_tolerance_always_passes_when_no_gain () =
  List.iter
    (fun (current, target) ->
      Alcotest.(check bool)
        (Printf.sprintf "%g vs %g" current target)
        true
        (Tolerance.no_gain current target))
    [ (1.0, 1.0); (0.0, 0.0); (-5.0, -5.0); (3.0, 2.0); (-1.0, -2.0) ]

let test_tolerance_nan_fails () =
  (* NaN payoffs (empty-group means) must read as "cannot certify". *)
  Alcotest.(check bool) "nan current" false
    (Tolerance.no_gain ~epsilon:0.1 nan 1.0);
  Alcotest.(check bool) "nan target" false
    (Tolerance.no_gain ~epsilon:0.1 1.0 nan)

let test_tolerance_validation () =
  match Tolerance.no_gain ~epsilon:(-0.1) 1.0 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative epsilon should raise"

let test_cubic_counts_ordering () =
  (* Contract locked by the rev_map simplification: increasing CUBIC
     counts, one per equilibrium. Widen epsilon so several NE exist and
     the ordering claim is non-trivial. *)
  let counts =
    Symmetric_game.equilibria_cubic_counts ~epsilon:0.3 ~n:10 paper_like
  in
  Alcotest.(check bool) "several NE" true (List.length counts > 1);
  Alcotest.(check (list int)) "increasing order" (List.sort compare counts)
    counts;
  Alcotest.(check (list int)) "complements of the BBR counts"
    (List.sort compare
       (List.map (fun k -> 10 - k)
          (Symmetric_game.equilibria ~epsilon:0.3 ~n:10 paper_like)))
    counts

(* --- Grouped_game --- *)

(* Two groups of 2; BBR always better in group 1, CUBIC always better in
   group 0: unique NE = (0 BBR in g0, all BBR in g1). *)
let grouped =
  {
    Grouped_game.u_cubic =
      (fun ~group ~counts:_ -> if group = 0 then 10.0 else 1.0);
    u_bbr = (fun ~group ~counts:_ -> if group = 0 then 1.0 else 10.0);
  }

let test_grouped_ne () =
  let ne = Grouped_game.equilibria ~sizes:[| 2; 2 |] grouped in
  Alcotest.(check int) "unique" 1 (List.length ne);
  Alcotest.(check (array int)) "threshold NE" [| 0; 2 |] (List.hd ne)

let test_grouped_is_equilibrium () =
  Alcotest.(check bool) "0,2 NE" true
    (Grouped_game.is_equilibrium ~sizes:[| 2; 2 |] grouped [| 0; 2 |]);
  Alcotest.(check bool) "2,0 not NE" false
    (Grouped_game.is_equilibrium ~sizes:[| 2; 2 |] grouped [| 2; 0 |])

let test_grouped_total_cubic () =
  Alcotest.(check int) "total cubic" 2
    (Grouped_game.total_cubic ~sizes:[| 2; 2 |] [| 0; 2 |])

let test_grouped_validation () =
  (match Grouped_game.is_equilibrium ~sizes:[| 2 |] grouped [| 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch should raise");
  match Grouped_game.is_equilibrium ~sizes:[| 2; 2 |] grouped [| 3; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "count out of range should raise"

let prop_symmetric_ne_exists_for_monotone =
  (* The paper's Fig. 6 argument: decreasing u_bbr, increasing u_cubic with
     a crossing implies at least one NE among 0..n. *)
  QCheck.Test.make ~name:"monotone crossing games have an NE" ~count:200
    QCheck.(pair (float_range 1.0 50.0) (float_range 0.1 5.0))
    (fun (start, slope) ->
      let game =
        {
          Symmetric_game.u_cubic = (fun k -> 1.0 +. (0.3 *. float_of_int k));
          u_bbr = (fun k -> start -. (slope *. float_of_int k));
        }
      in
      Symmetric_game.equilibria ~n:20 game <> [])

let tests =
  [
    Alcotest.test_case "PD equilibrium" `Quick test_pd_equilibrium;
    Alcotest.test_case "PD is_nash" `Quick test_pd_is_nash;
    Alcotest.test_case "PD best response" `Quick test_pd_best_response;
    Alcotest.test_case "matching pennies" `Quick
      test_matching_pennies_no_pure_ne;
    Alcotest.test_case "coordination" `Quick test_coordination_two_ne;
    Alcotest.test_case "three players" `Quick test_three_player_game;
    Alcotest.test_case "memoization" `Quick test_memoization_consistent;
    Alcotest.test_case "symmetric NE" `Quick test_symmetric_ne;
    Alcotest.test_case "cubic counts" `Quick test_symmetric_cubic_counts;
    Alcotest.test_case "all-BBR NE" `Quick test_symmetric_all_bbr_ne;
    Alcotest.test_case "epsilon widens" `Quick test_symmetric_epsilon_widens;
    Alcotest.test_case "symmetric validation" `Quick test_symmetric_validation;
    Alcotest.test_case "of_samples" `Quick test_of_samples;
    Alcotest.test_case "tolerance basic" `Quick test_tolerance_basic;
    Alcotest.test_case "tolerance zero target" `Quick
      test_tolerance_zero_target;
    Alcotest.test_case "tolerance negative target" `Quick
      test_tolerance_negative_target;
    Alcotest.test_case "tolerance no-gain passes" `Quick
      test_tolerance_always_passes_when_no_gain;
    Alcotest.test_case "tolerance nan" `Quick test_tolerance_nan_fails;
    Alcotest.test_case "tolerance validation" `Quick test_tolerance_validation;
    Alcotest.test_case "cubic counts ordering" `Quick
      test_cubic_counts_ordering;
    Alcotest.test_case "grouped NE" `Quick test_grouped_ne;
    Alcotest.test_case "grouped is_equilibrium" `Quick
      test_grouped_is_equilibrium;
    Alcotest.test_case "grouped total cubic" `Quick test_grouped_total_cubic;
    Alcotest.test_case "grouped validation" `Quick test_grouped_validation;
    QCheck_alcotest.to_alcotest prop_symmetric_ne_exists_for_monotone;
  ]
