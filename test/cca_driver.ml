(* Synthetic ACK/loss drivers for unit-testing congestion-control modules
   without the full transport. *)

open Cca.Cc_types

let ack ?(now = 0.0) ?(rtt = 0.04) ?(acked = 1500) ?(delivered = 0.0)
    ?(rate = 0.0) ?(app_limited = false) ?(inflight = 15000) ?(round = 0)
    ?(round_start = false) () =
  {
    f = { now; rtt_sample = rtt; delivered; delivery_rate = rate };
    acked_bytes = acked;
    rate_app_limited = app_limited;
    inflight_bytes = inflight;
    round;
    round_start;
  }

let loss ?(now = 0.0) ?(lost = 1500) ?(inflight = 15000) ?(timeout = false) () =
  { now; lost_bytes = lost; inflight_bytes = inflight; via_timeout = timeout }

(* Feed [n] ACKs of one MSS each, one round per [per_round] ACKs, advancing
   time by [rtt] per round. Returns the final (now, round). *)
let feed_rounds (cc : t) ~rounds ~per_round ~rtt ~rate ~start_now ~start_round
    =
  let now = ref start_now and round = ref start_round in
  for _ = 1 to rounds do
    incr round;
    now := !now +. rtt;
    for i = 0 to per_round - 1 do
      cc.on_ack
        (ack ~now:!now ~rtt ~rate ~round:!round ~round_start:(i = 0)
           ~inflight:(per_round * 1500) ())
    done
  done;
  (!now, !round)
