let mss = 1500

let make ?params () = Cca.Vegas.make ?params ~mss ()

let test_slow_start_half_rate () =
  let cc = make () in
  (* 10 ACKs of one MSS: Vegas slow start adds acked/2. *)
  for _ = 1 to 10 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~rtt:0.04 ())
  done;
  Alcotest.(check (float 1.0)) "x1.5" 22500.0 (cc.Cca.Cc_types.cwnd_bytes ())

let steady cc =
  (* Leave slow start via a loss. *)
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ())

let test_increases_when_queue_empty () =
  let cc = make () in
  steady cc;
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  (* rtt == base rtt: diff = 0 < alpha -> +1 MSS per round. *)
  for round = 1 to 5 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:(0.04 *. float_of_int round) ~rtt:0.04 ~round ())
  done;
  Alcotest.(check (float 1.0)) "+5 mss" (w0 +. 7500.0)
    (cc.Cca.Cc_types.cwnd_bytes ())

let test_decreases_when_queue_deep () =
  let cc = make () in
  steady cc;
  (* Establish base rtt low, then present a much larger srtt: for cwnd
     around 5 pkts and rtt 4x base, diff ~ cwnd x 0.75 > beta. *)
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:0.0 ~rtt:0.04 ~round:1 ());
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  let now = ref 0.0 in
  for round = 2 to 40 do
    now := !now +. 0.16;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.16 ~round ())
  done;
  Alcotest.(check bool) "shrank" true (cc.Cca.Cc_types.cwnd_bytes () < w0)

let test_fast_retransmit_quarter () =
  let cc = make () in
  for _ = 1 to 30 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~rtt:0.04 ())
  done;
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
  Alcotest.(check (float 1.0)) "0.75x" (0.75 *. w0)
    (cc.Cca.Cc_types.cwnd_bytes ())

let test_timeout_collapse () =
  let cc = make () in
  for _ = 1 to 30 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~rtt:0.04 ())
  done;
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~timeout:true ());
  Alcotest.(check (float 0.0)) "floor" 3000.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_loses_to_cubic () =
  (* The classic result (and why the paper's lineage replaced Vegas):
     a buffer-filler starves Vegas. *)
  let rate_bps = Sim_engine.Units.mbps 20.0 in
  let config =
    Tcpflow.Experiment.config
      ~warmup:(Sim_engine.Units.seconds 5.0)
      ~rate_bps
      ~buffer_bytes:
        (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps
           ~rtt:(Sim_engine.Units.ms 20.0) ~bdp:5.0)
      ~duration:(Sim_engine.Units.seconds 15.0)
      [
        Tcpflow.Experiment.flow_config ~base_rtt:(Sim_engine.Units.ms 20.0)
          "cubic";
        Tcpflow.Experiment.flow_config ~base_rtt:(Sim_engine.Units.ms 20.0)
          "vegas";
      ]
  in
  let r = Tcpflow.Experiment.run config in
  let cubic = Tcpflow.Experiment.mean_throughput_of_cca r "cubic" in
  let vegas = Tcpflow.Experiment.mean_throughput_of_cca r "vegas" in
  Alcotest.(check bool)
    (Printf.sprintf "cubic starves vegas (%.1f vs %.1f Mbps)" (cubic /. 1e6)
       (vegas /. 1e6))
    true
    (cubic > 3.0 *. vegas)

let tests =
  [
    Alcotest.test_case "slow start" `Quick test_slow_start_half_rate;
    Alcotest.test_case "additive increase" `Quick
      test_increases_when_queue_empty;
    Alcotest.test_case "decrease on queue" `Quick
      test_decreases_when_queue_deep;
    Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_quarter;
    Alcotest.test_case "timeout collapse" `Quick test_timeout_collapse;
    Alcotest.test_case "loses to cubic" `Quick test_loses_to_cubic;
  ]
