(* The invariant auditor, exercised on synthetic event streams: each test
   hand-builds a minimal record sequence that violates exactly one law (or
   none) and checks the auditor's verdict, invariant id and first-violation
   ordering. *)

module Tr = Sim_engine.Trace
module Audit = Sim_check.Audit

let rec_ time flow event = { Tr.time; flow; event }
let send ?(t = 0.0) ?(flow = 0) ?(size = 1500) ?(retransmit = false) seq =
  rec_ t flow (Tr.Send { seq; size; retransmit })

let ack ?(t = 0.0) ?(flow = 0) ?(rtt = 0.02) ?(delivered = 0.0) ~inflight seq =
  rec_ t flow
    (Tr.Ack { seq; rtt_sample = rtt; delivered_bytes = delivered;
              inflight_bytes = inflight })

let feed audit records = List.iter (Audit.observe audit) records

let check_first name audit expected =
  match Audit.first_violation audit with
  | None -> Alcotest.failf "%s: expected a %S violation, got none" name expected
  | Some v ->
    Alcotest.(check string) (name ^ " invariant") expected v.Audit.invariant

let check_ok name audit =
  (match Audit.first_violation audit with
  | Some v ->
    Alcotest.failf "%s: unexpected violation %s" name
      (Audit.violation_to_string v)
  | None -> ());
  Alcotest.(check bool) (name ^ " ok") true (Audit.ok audit)

(* A consistent finalize for a stream with [sends] transmissions, all
   delivered and acknowledged. *)
let all_delivered ~time ~sends =
  {
    Audit.fin_time = time;
    fin_busy_seconds = 0.0;
    fin_queue_bytes = 0;
    fin_queue_packets = 0;
    fin_link_busy = false;
    fin_tx_slack_seconds = 0.0012;
    fin_enqueued_packets = sends;
    fin_dropped_packets = 0;
    fin_delivered_packets = sends;
    fin_inflight_bytes = [ (0, 0) ];
    fin_completed_flows = None;
  }

let test_catalogue () =
  let names = Audit.invariant_names () in
  Alcotest.(check bool) "non-empty" true (List.length names > 20);
  Alcotest.(check (list string)) "sorted, unique" (List.sort_uniq compare names)
    names;
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " catalogued") true (List.mem key names))
    [ "inflight-mismatch"; "time-monotone"; "queue-overflow";
      "sender-self-check"; "link-busy-bound"; "completion-count";
      "fct-positive"; "lifecycle-event-after-complete";
      "lifecycle-event-before-start"; "lifecycle-restart" ]

let test_clean_stream () =
  let audit = Audit.create () in
  feed audit
    [
      send ~t:0.0 0;
      send ~t:0.001 1;
      ack ~t:0.02 ~delivered:1500.0 ~inflight:1500 0;
      ack ~t:0.021 ~delivered:3000.0 ~inflight:0 1;
    ];
  Alcotest.(check int) "records" 4 (Audit.records_seen audit)

let test_clean_send_ack_cycle () =
  let audit = Audit.create () in
  feed audit
    [
      send ~t:0.0 0;
      send ~t:0.001 1;
      ack ~t:0.020 ~delivered:1500.0 ~inflight:1500 0;
      ack ~t:0.021 ~delivered:3000.0 ~inflight:0 1;
    ];
  Audit.finalize audit (all_delivered ~time:0.021 ~sends:2);
  check_ok "clean cycle" audit

let test_time_monotone () =
  let audit = Audit.create () in
  feed audit [ send ~t:1.0 0; send ~t:0.5 1 ];
  check_first "regression" audit "time-monotone";
  let audit = Audit.create () in
  feed audit [ send ~t:nan 0 ];
  check_first "nan time" audit "time-monotone"

let test_inflight_mismatch () =
  let audit = Audit.create () in
  feed audit [ send 0; ack ~t:0.02 ~inflight:1 0 ];
  check_first "mismatch" audit "inflight-mismatch"

let test_ack_unknown_seq () =
  let audit = Audit.create () in
  feed audit [ ack ~t:0.02 ~inflight:0 7 ];
  check_first "unknown" audit "ack-unknown-seq"

let test_send_after_ack () =
  let audit = Audit.create () in
  feed audit
    [ send 0; ack ~t:0.02 ~inflight:0 0; send ~t:0.03 ~retransmit:true 0 ];
  check_first "send after ack" audit "send-after-ack"

let test_loss_events () =
  let audit = Audit.create () in
  feed audit
    [ send 0; ack ~t:0.02 ~inflight:0 0;
      rec_ 0.03 0 (Tr.Seg_lost { seq = 0; via_timeout = false }) ];
  check_first "loss after ack" audit "loss-after-ack";
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 0 (Tr.Seg_lost { seq = 3; via_timeout = false }) ];
  check_first "loss unknown" audit "loss-unknown-seq"

(* A RACK loss retires one MSS of the outstanding copies; the subsequent
   first-delivery ACK retires whatever remains of that seq. *)
let test_rack_loss_accounting () =
  let audit = Audit.create () in
  feed audit
    [
      send 0;
      send ~t:0.01 ~retransmit:true 0;
      (* two copies of seq 0 in flight: 3000 bytes *)
      rec_ 0.02 0 (Tr.Seg_lost { seq = 0; via_timeout = false });
      (* one copy retired: 1500 left *)
      ack ~t:0.03 ~delivered:1500.0 ~inflight:0 0;
    ];
  check_ok "rack accounting" audit

(* An RTO zeroes every outstanding copy; later ACKs of those seqs retire
   nothing. *)
let test_rto_zeroes_everything () =
  let audit = Audit.create () in
  feed audit
    [
      send 0;
      send ~t:0.001 1;
      rec_ 0.2 0 (Tr.Rto_fire { interval = 0.2; backoff = 0; lost_segments = 2 });
      send ~t:0.21 ~retransmit:true 0;
      ack ~t:0.23 ~delivered:1500.0 ~inflight:0 0;
    ];
  check_ok "rto accounting" audit

let test_rto_interval () =
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 (Tr.Rto_fire { interval = 61.0; backoff = 0; lost_segments = 0 }) ];
  check_first "over cap" audit "rto-interval";
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 (Tr.Rto_fire { interval = 0.0; backoff = 0; lost_segments = 0 }) ];
  check_first "zero" audit "rto-interval"

let test_recovery_alternation () =
  let enter = Tr.Recovery_enter { via_timeout = false; lost_bytes = 1500 } in
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 0 enter; rec_ 0.1 0 enter ];
  check_first "reenter" audit "recovery-reenter";
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 0 Tr.Recovery_exit ];
  check_first "exit idle" audit "recovery-exit-idle";
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 enter; rec_ 0.1 0 Tr.Recovery_exit; rec_ 0.2 0 enter ];
  check_ok "alternating" audit

let test_cc_state_chain () =
  let change from_state to_state =
    Tr.Cc_state_change { from_state; to_state }
  in
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 (change "Startup" "Drain"); rec_ 0.1 0 (change "Drain" "ProbeBW") ];
  check_ok "chained" audit;
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 (change "Startup" "Drain"); rec_ 0.1 0 (change "Startup" "ProbeBW") ];
  check_first "broken chain" audit "cc-state-chain"

let cc_sample ?(cwnd = 30000.0) ?(inflight = 0) ?pacing ?(delivered = 0.0) () =
  Tr.Cc_sample
    {
      cwnd_bytes = cwnd;
      inflight_bytes = inflight;
      pacing_rate = pacing;
      delivered_bytes = delivered;
      cc_state = "ProbeBW";
    }

let test_cc_sample_checks () =
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 0 (cc_sample ~cwnd:nan ()) ];
  check_first "nan cwnd" audit "cwnd-positive";
  let audit = Audit.create ~cwnd_ceiling_bytes:1e4 () in
  feed audit [ rec_ 0.0 0 (cc_sample ~cwnd:2e4 ()) ];
  check_first "cwnd ceiling" audit "cwnd-ceiling";
  let audit = Audit.create ~pacing_ceiling_bps:1e6 () in
  feed audit [ rec_ 0.0 0 (cc_sample ~pacing:2e6 ()) ];
  check_first "pacing ceiling" audit "pacing-ceiling";
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 0 (cc_sample ~pacing:(-1.0) ()) ];
  check_first "negative pacing" audit "pacing-positive";
  let audit = Audit.create () in
  feed audit
    [ rec_ 0.0 0 (cc_sample ~delivered:3000.0 ());
      rec_ 0.1 0 (cc_sample ~delivered:1500.0 ()) ];
  check_first "delivered rewind" audit "delivered-monotone"

let queue_sample queue_bytes queue_packets =
  Tr.Queue_sample { queue_bytes; queue_packets }

let test_queue_checks () =
  let audit = Audit.create ~queue_capacity_bytes:10_000 () in
  feed audit [ rec_ 0.0 Tr.link_scope (queue_sample 10_001 7) ];
  check_first "overflow" audit "queue-overflow";
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 Tr.link_scope (queue_sample (-1) 0) ];
  check_first "negative" audit "queue-negative";
  let audit = Audit.create () in
  feed audit [ rec_ 0.0 Tr.link_scope (queue_sample 1500 0) ];
  check_first "empty mismatch" audit "queue-empty-consistency";
  let audit = Audit.create ~queue_capacity_bytes:10_000 () in
  feed audit [ rec_ 0.0 Tr.link_scope (queue_sample 9_000 6) ];
  check_ok "within capacity" audit

let test_drop_checks () =
  let drop ?(early = false) queue_bytes =
    Tr.Drop { seq = 0; size = 1500; early; queue_bytes }
  in
  (* A tail drop with room left is a contradiction. *)
  let audit = Audit.create ~queue_capacity_bytes:10_000 () in
  feed audit [ send 0; rec_ 0.0 0 (drop 1500) ];
  check_first "below capacity" audit "drop-below-capacity";
  (* A forced tail drop at a full queue is fine. *)
  let audit = Audit.create ~queue_capacity_bytes:10_000 () in
  feed audit [ send 0; rec_ 0.0 0 (drop 9_500) ];
  check_ok "forced drop" audit;
  (* RED's early drop needs no overflow. *)
  let audit = Audit.create ~queue_capacity_bytes:10_000 () in
  feed audit [ send 0; rec_ 0.0 0 (drop ~early:true 1500) ];
  check_ok "early drop" audit

let test_conservation () =
  let audit = Audit.create () in
  feed audit
    [ send 0;
      ack ~t:0.02 ~delivered:1500.0 ~inflight:0 0;
      rec_ 0.03 0 (Tr.Drop { seq = 1; size = 1500; early = false; queue_bytes = 0 }) ];
  check_first "acks + drops > sends" audit "conservation"

(* --- Flow-lifecycle invariants --- *)

let flow_start ?(t = 0.0) ?(flow = 0) ?(size = 1500) () =
  rec_ t flow (Tr.Flow_start { size_limit_bytes = size })

let flow_complete ?(t = 0.1) ?(flow = 0) ?(fct = 0.1) ?(size = 1500) () =
  rec_ t flow (Tr.Flow_complete { fct; size_bytes = size })

(* One complete transfer: activation, one segment, its ACK, completion. *)
let one_transfer =
  [
    flow_start ();
    send ~t:0.01 0;
    ack ~t:0.03 ~delivered:1500.0 ~inflight:0 0;
    flow_complete ~t:0.03 ~fct:0.03 ();
  ]

let test_lifecycle_clean_transfer () =
  let audit = Audit.create ~lifecycle:true () in
  feed audit one_transfer;
  Audit.finalize audit
    { (all_delivered ~time:0.03 ~sends:1) with
      Audit.fin_completed_flows = Some 1 };
  check_ok "clean transfer" audit

let test_lifecycle_event_after_complete () =
  let audit = Audit.create () in
  feed audit (one_transfer @ [ send ~t:0.05 1 ]);
  (* Unconditional: the stream declared itself lifecycle-aware with its
     Flow_complete, no [lifecycle] flag needed. *)
  check_first "send after complete" audit "lifecycle-event-after-complete";
  let audit = Audit.create () in
  feed audit (one_transfer @ [ flow_complete ~t:0.05 () ]);
  check_first "double complete" audit "lifecycle-event-after-complete"

let test_lifecycle_drop_after_complete_ok () =
  (* Drops are queue-side: a duplicate copy of a completed flow's segment
     can still be sitting in the bottleneck when the tail-drop hits it. *)
  let audit = Audit.create ~lifecycle:true () in
  feed audit
    (one_transfer
    @ [ rec_ 0.05 0
          (Tr.Drop { seq = 0; size = 1500; early = false; queue_bytes = 0 }) ]);
  (match Audit.first_violation audit with
  | Some v when String.equal v.Audit.invariant "lifecycle-event-after-complete"
    ->
    Alcotest.fail "drop after completion wrongly treated as sender-side"
  | _ -> ())

let test_lifecycle_event_before_start () =
  let audit = Audit.create ~lifecycle:true () in
  feed audit [ send 0 ];
  check_first "send before start" audit "lifecycle-event-before-start";
  let audit = Audit.create ~lifecycle:true () in
  feed audit [ flow_complete () ];
  check_first "complete before start" audit "lifecycle-event-before-start";
  (* Legacy mode: streams without Flow_start stay legal. *)
  let audit = Audit.create () in
  feed audit [ send 0; ack ~t:0.02 ~delivered:1500.0 ~inflight:0 0 ];
  check_ok "legacy stream" audit

let test_lifecycle_restart () =
  let audit = Audit.create ~lifecycle:true () in
  feed audit (one_transfer @ [ flow_start ~t:0.05 () ]);
  check_first "flow id reuse" audit "lifecycle-restart"

let test_fct_positive () =
  let audit = Audit.create ~lifecycle:true () in
  feed audit [ flow_start (); flow_complete ~fct:0.0 () ];
  check_first "zero fct" audit "fct-positive";
  let audit = Audit.create ~lifecycle:true () in
  feed audit [ flow_start (); flow_complete ~fct:nan () ];
  check_first "nan fct" audit "fct-positive"

let test_completion_count () =
  let audit = Audit.create ~lifecycle:true () in
  feed audit one_transfer;
  Audit.finalize audit
    { (all_delivered ~time:0.03 ~sends:1) with
      Audit.fin_completed_flows = Some 2 };
  check_first "count mismatch" audit "completion-count";
  (* [None] opts out: streams without a lifecycle layer don't count. *)
  let audit = Audit.create ~lifecycle:true () in
  feed audit one_transfer;
  Audit.finalize audit (all_delivered ~time:0.03 ~sends:1);
  check_ok "opt-out" audit

let test_finalize_busy_bound () =
  let base = all_delivered ~time:1.0 ~sends:0 in
  let base = { base with Audit.fin_inflight_bytes = [] } in
  (* Idle link: busy time beyond wall time is a hard violation. *)
  let audit = Audit.create () in
  Audit.finalize audit { base with Audit.fin_busy_seconds = 1.0008 };
  check_first "idle overshoot" audit "link-busy-bound";
  (* A packet mid-service may carry the counter one serialization past. *)
  let busy_final busy_seconds =
    {
      base with
      Audit.fin_busy_seconds = busy_seconds;
      fin_link_busy = true;
      fin_enqueued_packets = 1;
      fin_delivered_packets = 0;
      fin_inflight_bytes = [ (0, 1500) ];
    }
  in
  let audit = Audit.create () in
  feed audit [ send 0 ];
  Audit.finalize audit (busy_final 1.0008);
  check_ok "in-service slack" audit;
  (* ... but not more than one serialization time. *)
  let audit = Audit.create () in
  feed audit [ send 0 ];
  Audit.finalize audit (busy_final 1.01);
  check_first "slack exceeded" audit "link-busy-bound"

let test_finalize_conservation () =
  let audit = Audit.create () in
  feed audit [ send 0; send ~t:0.001 1 ];
  let base = all_delivered ~time:1.0 ~sends:2 in
  Audit.finalize audit
    { base with Audit.fin_enqueued_packets = 1; fin_inflight_bytes = [] };
  check_first "missing packet" audit "bottleneck-conservation";
  let audit = Audit.create () in
  feed audit [ send 0 ];
  Audit.finalize audit
    {
      (all_delivered ~time:1.0 ~sends:1) with
      Audit.fin_delivered_packets = 0;
      fin_inflight_bytes = [];
    };
  check_first "lost in queue" audit "queue-conservation"

let test_finalize_inflight () =
  let audit = Audit.create () in
  feed audit [ send 0 ];
  Audit.finalize audit
    {
      (all_delivered ~time:1.0 ~sends:1) with
      Audit.fin_delivered_packets = 0;
      fin_link_busy = true;
      fin_inflight_bytes = [ (0, 0) ] (* sender claims 0; stream says 1500 *);
    };
  check_first "final inflight" audit "final-inflight"

let test_first_violation_order_and_cap () =
  let audit = Audit.create ~max_violations:2 () in
  feed audit
    [
      ack ~t:0.0 ~inflight:0 0 (* ack-unknown-seq *);
      ack ~t:0.1 ~inflight:5 1 (* another, plus mismatch *);
      ack ~t:0.2 ~inflight:9 2;
    ];
  (match Audit.first_violation audit with
  | Some v ->
    Alcotest.(check string) "first is first" "ack-unknown-seq" v.Audit.invariant;
    Alcotest.(check int) "at record 0" 0 v.Audit.v_index
  | None -> Alcotest.fail "expected violations");
  Alcotest.(check int) "capped" 2 (List.length (Audit.violations audit))

let test_attach_close () =
  let hub = Tr.create ~ring_capacity:16 () in
  let audit = Audit.create () in
  Audit.attach audit hub;
  Tr.emit hub ~time:0.0 ~flow:0 (Tr.Send { seq = 0; size = 1500; retransmit = false });
  Alcotest.(check int) "observed via hub" 1 (Audit.records_seen audit);
  Alcotest.(check bool) "not closed yet" false (Audit.stream_closed audit);
  Tr.close hub;
  Alcotest.(check bool) "closed" true (Audit.stream_closed audit)

let tests =
  [
    Alcotest.test_case "invariant catalogue" `Quick test_catalogue;
    Alcotest.test_case "record counting" `Quick test_clean_stream;
    Alcotest.test_case "clean send/ack cycle" `Quick test_clean_send_ack_cycle;
    Alcotest.test_case "time monotone" `Quick test_time_monotone;
    Alcotest.test_case "inflight mismatch" `Quick test_inflight_mismatch;
    Alcotest.test_case "ack unknown seq" `Quick test_ack_unknown_seq;
    Alcotest.test_case "send after ack" `Quick test_send_after_ack;
    Alcotest.test_case "loss events" `Quick test_loss_events;
    Alcotest.test_case "rack loss accounting" `Quick test_rack_loss_accounting;
    Alcotest.test_case "rto zeroes everything" `Quick test_rto_zeroes_everything;
    Alcotest.test_case "rto interval" `Quick test_rto_interval;
    Alcotest.test_case "recovery alternation" `Quick test_recovery_alternation;
    Alcotest.test_case "cc state chain" `Quick test_cc_state_chain;
    Alcotest.test_case "cc sample checks" `Quick test_cc_sample_checks;
    Alcotest.test_case "queue checks" `Quick test_queue_checks;
    Alcotest.test_case "drop checks" `Quick test_drop_checks;
    Alcotest.test_case "conservation" `Quick test_conservation;
    Alcotest.test_case "lifecycle clean transfer" `Quick
      test_lifecycle_clean_transfer;
    Alcotest.test_case "lifecycle after-complete" `Quick
      test_lifecycle_event_after_complete;
    Alcotest.test_case "lifecycle drop exemption" `Quick
      test_lifecycle_drop_after_complete_ok;
    Alcotest.test_case "lifecycle before-start" `Quick
      test_lifecycle_event_before_start;
    Alcotest.test_case "lifecycle restart" `Quick test_lifecycle_restart;
    Alcotest.test_case "fct positive" `Quick test_fct_positive;
    Alcotest.test_case "completion count" `Quick test_completion_count;
    Alcotest.test_case "finalize busy bound" `Quick test_finalize_busy_bound;
    Alcotest.test_case "finalize conservation" `Quick test_finalize_conservation;
    Alcotest.test_case "finalize inflight" `Quick test_finalize_inflight;
    Alcotest.test_case "first violation + cap" `Quick
      test_first_violation_order_and_cap;
    Alcotest.test_case "attach / close" `Quick test_attach_close;
  ]
