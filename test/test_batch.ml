(* Batched-vs-sequential parity for {!Sim_backend.run_batch}.

   The batched steppers (DESIGN.md §15) promise [run_batch specs =
   Array.map run specs] down to the byte. These tests hold every backend
   to that — including the packet backend's sequential fallback — and
   then to the two structural invariances that make shape-grouped
   dispatch in {!Runs.run_specs} safe: permuting a batch permutes the
   outcomes, and splitting a batch at any boundary changes nothing.

   Also here: the LRU memo behind {!Runs.run_specs_memo} (bounded cap,
   eviction counter, cap-independent results). *)

open Experiments
module Units = Sim_engine.Units
module B = Sim_backend

let mk_spec ?warmup ~mbps ~rtt_ms ~buffer_bdp ~duration ~seed ccas =
  let rate_bps = Units.mbps mbps in
  let rtt = Units.ms rtt_ms in
  B.spec ?warmup ~seed ~rate_bps
    ~buffer_bytes:(Units.scale buffer_bdp (Units.bdp_bytes ~rate_bps ~rtt))
    ~duration:(Units.seconds duration)
    (List.map (fun cca -> { B.cca; rtt }) ccas)

(* Byte-level equality is the contract under test, so these tests marshal
   directly rather than through the Exec cache. *)
let bytes v = Marshal.to_string v [] (* simlint: allow R2 *)

(* The differential-grid cells, scaled per backend: the analytic pair
   reuses the calibrated 2-flow cells, the packet simulator gets short
   horizons so the sequential fallback stays cheap. *)
let grid_specs backend =
  let duration, warmup =
    if String.equal (B.name backend) "packet" then (5.0, Units.seconds 1.0)
    else (20.0, Units.seconds 5.0)
  in
  let singles =
    List.map
      (fun cca ->
        mk_spec ~warmup ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:1.0 ~duration
          ~seed:1 [ cca ])
      Fluidsim.Fluid_sim.supported_ccas
  in
  let pairs =
    List.concat_map
      (fun buffer_bdp ->
        List.map
          (fun ccas ->
            mk_spec ~warmup ~mbps:100.0 ~rtt_ms:40.0 ~buffer_bdp ~duration
              ~seed:1 ccas)
          [ [ "cubic"; "bbr" ]; [ "cubic"; "bbr2" ] ])
      [ 1.0; 10.0 ]
  in
  Array.of_list (singles @ pairs)

let test_grid_parity () =
  List.iter
    (fun backend ->
      let specs = grid_specs backend in
      let sequential = Array.map (B.run backend) specs in
      let batched = B.run_batch backend specs in
      Array.iteri
        (fun i seq ->
          Alcotest.(check bool)
            (Printf.sprintf "%s cell %d batched = sequential" (B.name backend)
               i)
            true
            (String.equal (bytes seq) (bytes batched.(i))))
        sequential)
    B.all

let test_empty_batch () =
  List.iter
    (fun backend ->
      Alcotest.(check int)
        (Printf.sprintf "%s empty batch" (B.name backend))
        0
        (Array.length (B.run_batch backend [||])))
    B.all

(* An invalid spec must come back as its [Error] in place, without
   perturbing the valid specs batched around it. *)
let test_error_slots () =
  let good ~seed =
    mk_spec ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:1.0 ~duration:10.0 ~seed
      [ "cubic" ]
  in
  let bad =
    mk_spec ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:1.0 ~duration:10.0 ~seed:1
      [ "reno" ]
  in
  List.iter
    (fun backend ->
      let specs = [| good ~seed:1; bad; good ~seed:2 |] in
      let results = B.run_batch backend specs in
      (match results.(1) with
      | Error (B.Unsupported_cca { cca = "reno"; _ }) -> ()
      | Error e ->
          Alcotest.failf "%s: unexpected error %s" (B.name backend)
            (Format.asprintf "%a" B.pp_error e)
      | Ok _ -> Alcotest.failf "%s: reno accepted" (B.name backend));
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "%s slot %d matches sequential" (B.name backend) i)
            true
            (String.equal
               (bytes (B.run backend specs.(i)))
               (bytes results.(i))))
        [ 0; 2 ];
      match B.run_batch_exn backend specs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: run_batch_exn did not raise" (B.name backend))
    [ B.fluid; B.ode ]

(* --- QCheck structural invariances (fluid backend: fast, exercises the
   real batched stepper rather than the sequential fallback) --------- *)

(* A small pool of distinct, quick fluid specs to draw batches from. *)
let spec_pool =
  let cells =
    [
      ([ "cubic" ], 1.0);
      ([ "bbr" ], 1.0);
      ([ "bbr2" ], 2.0);
      ([ "cubic"; "bbr" ], 1.0);
      ([ "cubic"; "bbr" ], 10.0);
      ([ "cubic"; "bbr2" ], 0.5);
      ([ "cubic"; "cubic" ], 4.0);
      ([ "bbr"; "bbr" ], 2.0);
    ]
  in
  Array.of_list
    (List.map
       (fun (ccas, buffer_bdp) ->
         mk_spec ~warmup:(Units.seconds 2.0) ~mbps:50.0 ~rtt_ms:40.0
           ~buffer_bdp ~duration:8.0 ~seed:1 ccas)
       cells)

let batch_gen =
  QCheck.Gen.(
    list_size (int_range 1 10) (int_range 0 (Array.length spec_pool - 1))
    >|= fun idxs -> Array.of_list (List.map (Array.get spec_pool) idxs))

let batch_arb =
  QCheck.make batch_gen ~print:(fun specs ->
      String.concat ";"
        (Array.to_list
           (Array.map
              (fun (s : B.spec) ->
                String.concat "+" (List.map (fun f -> f.B.cca) s.B.flows))
              specs)))

let permutation_of rng n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Sim_engine.Rng.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let prop_permutation_invariant =
  QCheck.Test.make ~name:"permuting a batch permutes the outcomes" ~count:20
    batch_arb (fun specs ->
      let n = Array.length specs in
      let base = B.run_batch B.fluid specs in
      let p = permutation_of (Sim_engine.Rng.create (n + 7)) n in
      let permuted = B.run_batch B.fluid (Array.map (Array.get specs) p) in
      Array.for_all
        (fun i -> String.equal (bytes base.(p.(i))) (bytes permuted.(i)))
        (Array.init n Fun.id))

let prop_split_invariant =
  QCheck.Test.make ~name:"splitting a batch never changes outcomes" ~count:20
    batch_arb (fun specs ->
      let n = Array.length specs in
      let whole = B.run_batch B.fluid specs in
      let k = n / 2 in
      let left = B.run_batch B.fluid (Array.sub specs 0 k) in
      let right = B.run_batch B.fluid (Array.sub specs k (n - k)) in
      String.equal (bytes whole) (bytes (Array.append left right)))

(* --- run_specs: byte-identical across jobs and batch settings ------- *)

let test_run_specs_invariant () =
  let specs = Array.to_list (grid_specs B.fluid) in
  let run ~jobs ~batch =
    bytes (Runs.run_specs (Common.ctx ~jobs ~batch Common.Quick) B.fluid specs)
  in
  let reference = run ~jobs:1 ~batch:1 in
  List.iter
    (fun (jobs, batch) ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d batch %d = sequential" jobs batch)
        true
        (String.equal reference (run ~jobs ~batch)))
    [ (1, 3); (1, 8); (3, 1); (3, 8) ]

(* --- LRU memo ------------------------------------------------------- *)

let test_memo_cap_validation () =
  match Runs.memo ~cap:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "memo ~cap:0 accepted"

let test_memo_eviction () =
  let ctx = Common.ctx ~batch:1 Common.Quick in
  let specs =
    List.map
      (fun seed ->
        mk_spec ~mbps:50.0 ~rtt_ms:40.0
          ~buffer_bdp:(float_of_int seed)
          ~duration:8.0 ~seed [ "cubic" ])
      [ 1; 2; 3 ]
  in
  let expected = bytes (Runs.run_specs ctx B.fluid specs) in
  let memo = Runs.memo ~cap:2 () in
  let before = (Sim_engine.Exec.counters ()).memo_evictions in
  (* Three distinct outcomes through a 2-slot memo: at least one entry
     must be evicted, and a second pass (re-missing whatever was
     evicted) must still return the same bytes. *)
  let first = bytes (Runs.run_specs_memo ~memo ctx B.fluid specs) in
  let second = bytes (Runs.run_specs_memo ~memo ctx B.fluid specs) in
  let after = (Sim_engine.Exec.counters ()).memo_evictions in
  Alcotest.(check bool) "evictions counted" true (after > before);
  Alcotest.(check bool) "first pass correct" true (String.equal expected first);
  Alcotest.(check bool)
    "second pass correct despite evictions" true
    (String.equal expected second)

let test_memo_results_cap_independent () =
  let ctx = Common.ctx Common.Quick in
  let specs =
    List.map
      (fun seed ->
        mk_spec ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:2.0 ~duration:8.0 ~seed
          [ "bbr" ])
      [ 1; 2; 3; 1; 2 ]
  in
  let run cap =
    bytes (Runs.run_specs_memo ~memo:(Runs.memo ~cap ()) ctx B.fluid specs)
  in
  let unbounded = run 4096 in
  List.iter
    (fun cap ->
      Alcotest.(check bool)
        (Printf.sprintf "cap %d = cap 4096" cap)
        true
        (String.equal unbounded (run cap)))
    [ 1; 2 ]

let tests =
  [
    Alcotest.test_case "grid parity, all backends" `Slow test_grid_parity;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "error slots preserved in place" `Quick test_error_slots;
    QCheck_alcotest.to_alcotest prop_permutation_invariant;
    QCheck_alcotest.to_alcotest prop_split_invariant;
    Alcotest.test_case "run_specs invariant under jobs x batch" `Quick
      test_run_specs_invariant;
    Alcotest.test_case "memo cap validation" `Quick test_memo_cap_validation;
    Alcotest.test_case "memo eviction counted, results intact" `Quick
      test_memo_eviction;
    Alcotest.test_case "memo results cap-independent" `Quick
      test_memo_results_cap_independent;
  ]
