let rng () = Sim_engine.Rng.create 1

let test_builtins_present () =
  let names = Cca.Registry.names () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (List.mem name names))
    [ "reno"; "cubic"; "bbr"; "bbr2"; "copa"; "vegas"; "vivace" ]

let test_create_builtin () =
  let cc = Cca.Registry.create "cubic" ~mss:1500 ~rng:(rng ()) in
  Alcotest.(check string) "name" "cubic" cc.Cca.Cc_types.name

let test_unknown_raises () =
  match Cca.Registry.create "quic-magic" ~mss:1500 ~rng:(rng ()) with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions name" true
      (String.length msg > 0
      && String.length msg > String.length "Registry.create")
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_register_custom () =
  Cca.Registry.register "test-fixed" (fun ~mss ~rng:_ ->
      {
        Cca.Cc_types.name = "test-fixed";
        on_ack = ignore;
        on_loss = ignore;
        on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
        cwnd_bytes = (fun () -> float_of_int (10 * mss));
        pacing_rate = (fun () -> nan);
        state = (fun () -> "Fixed");
      });
  let cc = Cca.Registry.create "test-fixed" ~mss:1500 ~rng:(rng ()) in
  Alcotest.(check (float 0.0)) "fixed window" 15000.0
    (cc.Cca.Cc_types.cwnd_bytes ());
  Alcotest.(check bool) "listed" true
    (List.mem "test-fixed" (Cca.Registry.names ()))

let test_find () =
  Alcotest.(check bool) "find bbr" true (Option.is_some (Cca.Registry.find "bbr"));
  Alcotest.(check bool) "find missing" true
    (Option.is_none (Cca.Registry.find "missing-cca"))

let test_instances_independent () =
  let a = Cca.Registry.create "reno" ~mss:1500 ~rng:(rng ()) in
  let b = Cca.Registry.create "reno" ~mss:1500 ~rng:(rng ()) in
  a.Cca.Cc_types.on_loss
    { Cca.Cc_types.now = 0.0; lost_bytes = 1500; inflight_bytes = 0;
      via_timeout = false };
  Alcotest.(check bool) "b unaffected by a's loss" true
    (b.Cca.Cc_types.cwnd_bytes () > a.Cca.Cc_types.cwnd_bytes ())

let tests =
  [
    Alcotest.test_case "builtins present" `Quick test_builtins_present;
    Alcotest.test_case "create builtin" `Quick test_create_builtin;
    Alcotest.test_case "unknown raises" `Quick test_unknown_raises;
    Alcotest.test_case "register custom" `Quick test_register_custom;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "instances independent" `Quick
      test_instances_independent;
  ]
