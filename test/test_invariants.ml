(* Randomized end-to-end invariants: whatever the CCA mix, buffer depth and
   duration, the transport and network must satisfy conservation and
   sanity properties. These are the deepest property tests in the suite —
   each case is a complete packet-level simulation. *)

module E = Tcpflow.Experiment
module Units = Sim_engine.Units

let cca_gen =
  QCheck.Gen.oneofl [ "cubic"; "bbr"; "bbr2"; "reno"; "copa"; "vegas"; "vivace" ]

let scenario_gen =
  QCheck.Gen.(
    let* n_flows = int_range 1 4 in
    let* ccas = list_repeat n_flows cca_gen in
    let* buffer_bdp = float_range 0.5 8.0 in
    let* mbps = float_range 5.0 30.0 in
    let* rtt_ms = float_range 10.0 60.0 in
    let* seed = int_range 1 1000 in
    return (ccas, buffer_bdp, mbps, rtt_ms, seed))

let scenario_arb =
  QCheck.make scenario_gen ~print:(fun (ccas, bdp, mbps, rtt, seed) ->
      Printf.sprintf "[%s] bdp=%.2f mbps=%.1f rtt=%.1f seed=%d"
        (String.concat ";" ccas) bdp mbps rtt seed)

let run_scenario (ccas, buffer_bdp, mbps, rtt_ms, seed) =
  let rate_bps = Units.mbps mbps in
  let rtt = Units.ms rtt_ms in
  E.run
    (E.config ~warmup:(Units.seconds 2.0) ~seed ~rate_bps
       ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
       ~duration:(Units.seconds 6.0)
       (List.map (fun cca -> E.flow_config ~base_rtt:rtt cca) ccas))

let prop_throughput_conservation =
  QCheck.Test.make ~name:"sum of goodputs <= capacity" ~count:25 scenario_arb
    (fun ((_, _, mbps, _, _) as scenario) ->
      let r = run_scenario scenario in
      let total =
        List.fold_left (fun acc f -> acc +. f.E.throughput_bps) 0.0 r.E.per_flow
      in
      total <= (Units.mbps mbps :> float) *. 1.02)

let prop_min_rtt_at_least_base =
  QCheck.Test.make ~name:"measured min RTT >= base RTT" ~count:25 scenario_arb
    (fun scenario ->
      let r = run_scenario scenario in
      List.for_all
        (fun f ->
          Float.is_nan f.E.flow_min_rtt
          || f.E.flow_min_rtt = infinity
          || f.E.flow_min_rtt >= f.E.flow_rtt -. 1e-9)
        r.E.per_flow)

let prop_queuing_delay_bounded =
  QCheck.Test.make ~name:"queuing delay <= buffer drain time" ~count:25
    scenario_arb
    (fun ((_, buffer_bdp, _, rtt_ms, _) as scenario) ->
      let r = run_scenario scenario in
      (* drain time = B/C = buffer_bdp x rtt *)
      r.E.queuing_delay <= (buffer_bdp *. rtt_ms /. 1e3) +. 1e-6)

let prop_utilization_in_unit =
  QCheck.Test.make ~name:"utilization in [0, 1]" ~count:25 scenario_arb
    (fun scenario ->
      let r = run_scenario scenario in
      r.E.utilization >= 0.0 && r.E.utilization <= 1.000001)

let prop_deterministic_replay =
  QCheck.Test.make ~name:"same seed, same result" ~count:10 scenario_arb
    (fun scenario ->
      let a = run_scenario scenario and b = run_scenario scenario in
      List.for_all2
        (fun x y -> x.E.throughput_bps = y.E.throughput_bps)
        a.E.per_flow b.E.per_flow)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_throughput_conservation;
      prop_min_rtt_at_least_base;
      prop_queuing_delay_bounded;
      prop_utilization_in_unit;
      prop_deterministic_replay;
    ]
