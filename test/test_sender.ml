(* Integration tests of the transport layer over small simulated networks. *)

module Sim = Sim_engine.Sim
module Units = Sim_engine.Units

let setup ~rate_mbps ~rtt ~buffer_bdp ~ccas =
  let sim = Sim.create ~seed:11 () in
  let rate_bps = Units.mbps rate_mbps in
  let rtt = Units.seconds rtt in
  let buffer_bytes =
    max Units.mss
      (Units.bytes_to_int
         (Units.scale buffer_bdp (Units.bdp_bytes ~rate_bps ~rtt)))
  in
  let specs =
    List.mapi (fun i _ -> { Netsim.Dumbbell.flow = i; base_rtt = rtt }) ccas
  in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes ~flows:specs ()
  in
  let senders =
    List.mapi
      (fun i name ->
        let rng = Sim_engine.Rng.split (Sim.rng sim) in
        let cc = Cca.Registry.create name ~mss:Units.mss ~rng in
        Tcpflow.Sender.create ~net ~flow:i ~cc ())
      ccas
  in
  (sim, net, senders)

let test_single_flow_fills_link () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "cubic" ] in
  Sim.run ~until:10.0 sim;
  let sender = List.hd senders in
  let goodput =
    Tcpflow.Sender.delivered_bytes sender *. 8.0 /. 10.0 /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "goodput ~10 Mbps (%.2f)" goodput)
    true
    (goodput > 8.5 && goodput < 10.5)

let test_goodput_bounded_by_capacity () =
  let sim, _, senders =
    setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:3.0 ~ccas:[ "cubic"; "bbr" ]
  in
  Sim.run ~until:10.0 sim;
  let total =
    List.fold_left
      (fun acc sender -> acc +. Tcpflow.Sender.delivered_bytes sender)
      0.0 senders
  in
  Alcotest.(check bool) "sum <= capacity" true
    (total *. 8.0 /. 10.0 <= 10.0e6 *. 1.02)

let test_min_rtt_matches_base () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "cubic" ] in
  Sim.run ~until:5.0 sim;
  let sender = List.hd senders in
  (* min RTT = base rtt + one serialization time (1.2 ms at 10 Mbps). *)
  let expected =
    0.02
    +. (Units.transmission_time ~rate_bps:(Units.mbps 10.0) ~bytes:Units.mss
         :> float)
  in
  Alcotest.(check (float 2e-3)) "min rtt" expected
    (Tcpflow.Sender.min_rtt_observed sender)

let test_losses_detected_and_retransmitted () =
  (* A 1-BDP buffer with CUBIC guarantees drops; retransmissions must keep
     delivery contiguous (delivered grows far past the buffer size). *)
  let sim, net, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:1.0 ~ccas:[ "cubic" ] in
  Sim.run ~until:10.0 sim;
  let sender = List.hd senders in
  Alcotest.(check bool) "drops occurred" true
    (Netsim.Droptail_queue.drops (Netsim.Dumbbell.queue net) > 0);
  Alcotest.(check bool) "losses detected" true
    (Tcpflow.Sender.lost_segments sender > 0);
  Alcotest.(check bool) "retransmissions sent" true
    (Tcpflow.Sender.retransmitted_segments sender > 0);
  Alcotest.(check bool) "goodput continued" true
    (Tcpflow.Sender.delivered_bytes sender > 1e6)

let test_rounds_advance () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "cubic" ] in
  Sim.run ~until:2.0 sim;
  let sender = List.hd senders in
  (* ~2s / ~25ms inflated RTT: tens of rounds. *)
  Alcotest.(check bool) "rounds counted" true (Tcpflow.Sender.rounds sender > 20)

let test_srtt_sane () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "cubic" ] in
  Sim.run ~until:5.0 sim;
  let sender = List.hd senders in
  let srtt = Tcpflow.Sender.srtt sender in
  (* Queue holds at most 2 BDP: RTT in [base, base + 2 x 20ms + tx]. *)
  Alcotest.(check bool)
    (Printf.sprintf "srtt in range (%.3f)" srtt)
    true
    (srtt >= 0.02 && srtt <= 0.08)

let test_inflight_bounded_by_cwnd () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "bbr" ] in
  let sender = List.hd senders in
  let violations = ref 0 in
  let rec check () =
    let cwnd = (Tcpflow.Sender.cc sender).Cca.Cc_types.cwnd_bytes () in
    if float_of_int (Tcpflow.Sender.inflight_bytes sender) > cwnd +. 1500.0
    then incr violations;
    ignore (Sim.schedule sim ~delay:0.01 check)
  in
  check ();
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "inflight <= cwnd (+1 pkt)" 0 !violations

let test_deterministic_given_seed () =
  let run () =
    let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "cubic"; "bbr" ] in
    Sim.run ~until:5.0 sim;
    List.map Tcpflow.Sender.delivered_bytes senders
  in
  Alcotest.(check (list (float 0.0))) "identical replay" (run ()) (run ())

let test_bbr_flow_works_alone () =
  let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ "bbr" ] in
  Sim.run ~until:10.0 sim;
  let goodput =
    Tcpflow.Sender.delivered_bytes (List.hd senders) *. 8.0 /. 10.0 /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "bbr alone ~10 Mbps (%.2f)" goodput)
    true
    (goodput > 8.0 && goodput < 10.5)

let test_reno_and_vivace_work () =
  List.iter
    (fun name ->
      let sim, _, senders = setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:2.0 ~ccas:[ name ] in
      Sim.run ~until:8.0 sim;
      let goodput =
        Tcpflow.Sender.delivered_bytes (List.hd senders) *. 8.0 /. 8.0 /. 1e6
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s alone gets >60%% of link (%.2f)" name goodput)
        true (goodput > 6.0))
    [ "reno"; "vivace"; "copa" ]

let test_start_time_honored () =
  let sim = Sim.create ~seed:3 () in
  let rate_bps = Units.mbps 10.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ] ()
  in
  let cc = Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1) in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc ~start_time:(Units.seconds 2.0) () in
  Sim.run ~until:1.9 sim;
  Alcotest.(check (float 0.0)) "nothing before start" 0.0
    (Tcpflow.Sender.delivered_bytes sender);
  Sim.run ~until:4.0 sim;
  Alcotest.(check bool) "data after start" true
    (Tcpflow.Sender.delivered_bytes sender > 0.0)

(* Regression: rto_interval used to return a constant, so a dead path
   retransmitted at a fixed cadence forever. Black-holing the receiver must
   produce exponentially backed-off RTO firings; restoring it must reset
   the backoff on the first ACK. *)
let test_rto_exponential_backoff () =
  let sim = Sim.create ~seed:5 () in
  let rate_bps = Units.mbps 10.0 in
  let rtt = Units.seconds 0.02 in
  let hub = Sim_engine.Trace.create () in
  let rto_fires = ref [] in
  Sim_engine.Trace.subscribe hub (fun r ->
      match r.Sim_engine.Trace.event with
      | Sim_engine.Trace.Rto_fire { interval; backoff; _ } ->
        rto_fires := (interval, backoff) :: !rto_fires
      | _ -> ());
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = rtt } ] ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss
      ~rng:(Sim_engine.Rng.split (Sim.rng sim))
  in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc ~trace:hub () in
  Sim.run ~until:1.0 sim;
  Alcotest.(check int) "no backoff while healthy" 0
    (Tcpflow.Sender.rto_backoff sender);
  (* Black-hole the flow: its packets vanish at the receiver, so no ACKs. *)
  let receiver =
    match Netsim.Dumbbell.receiver net ~flow:0 with
    | Some r -> r
    | None -> Alcotest.fail "receiver installed at create time"
  in
  Netsim.Dumbbell.set_receiver net ~flow:0 (fun _ -> ());
  Sim.run ~until:12.0 sim;
  let fires = List.rev !rto_fires in
  Alcotest.(check bool)
    (Printf.sprintf "several RTO firings (%d)" (List.length fires))
    true
    (List.length fires >= 3);
  Alcotest.(check bool) "backoff grew" true
    (Tcpflow.Sender.rto_backoff sender >= 3);
  List.iteri
    (fun i (_, backoff) ->
      Alcotest.(check int) "backoff stages count up" i backoff)
    fires;
  (* No ACK arrives between firings, so srtt is frozen (Karn) and each
     interval is exactly double the previous one until the 60 s cap. *)
  let rec doubled = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      (b >= 60.0 || abs_float (b -. (2.0 *. a)) < 1e-9) && doubled rest
    | _ -> true
  in
  Alcotest.(check bool) "intervals double" true (doubled fires);
  Netsim.Dumbbell.set_receiver net ~flow:0 receiver;
  let delivered_before = Tcpflow.Sender.delivered_bytes sender in
  Sim.run ~until:80.0 sim;
  Alcotest.(check int) "backoff reset by ACK" 0
    (Tcpflow.Sender.rto_backoff sender);
  Alcotest.(check bool) "flow recovered" true
    (Tcpflow.Sender.delivered_bytes sender > delivered_before)

(* Regression: inflight_bytes drifted after an RTO (the timeout zeroed it,
   then late ACKs decremented it again). The per-segment accounting must
   stay exact through loss, timeout, and the late ACKs that follow. *)
let test_inflight_accounting_exact () =
  let sim, net, senders =
    setup ~rate_mbps:10.0 ~rtt:0.02 ~buffer_bdp:1.0 ~ccas:[ "cubic" ]
  in
  let sender = List.hd senders in
  let rec audit () =
    Tcpflow.Sender.check_inflight_invariant sender;
    ignore (Sim.schedule sim ~delay:0.01 audit)
  in
  audit ();
  Sim.run ~until:2.0 sim;
  (* Force an RTO with ACKs still in flight, then let them land. *)
  let receiver =
    match Netsim.Dumbbell.receiver net ~flow:0 with
    | Some r -> r
    | None -> Alcotest.fail "receiver installed at create time"
  in
  Netsim.Dumbbell.set_receiver net ~flow:0 (fun _ -> ());
  Sim.run ~until:6.0 sim;
  Netsim.Dumbbell.set_receiver net ~flow:0 receiver;
  Sim.run ~until:10.0 sim;
  Alcotest.(check bool) "losses exercised" true
    (Tcpflow.Sender.lost_segments sender > 0);
  Tcpflow.Sender.check_inflight_invariant sender

let test_inflight_zero_when_completed () =
  let sim = Sim.create ~seed:9 () in
  let rate_bps = Units.mbps 10.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:20_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ] ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss
      ~rng:(Sim_engine.Rng.split (Sim.rng sim))
  in
  let sender =
    Tcpflow.Sender.create ~net ~flow:0 ~cc ~data_limit_bytes:300_000 ()
  in
  Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "flow completed" true (Tcpflow.Sender.completed sender);
  Tcpflow.Sender.check_inflight_invariant sender;
  Alcotest.(check int) "nothing left in flight" 0
    (Tcpflow.Sender.inflight_bytes sender)

let tests =
  [
    Alcotest.test_case "single flow fills link" `Quick
      test_single_flow_fills_link;
    Alcotest.test_case "goodput bounded" `Quick test_goodput_bounded_by_capacity;
    Alcotest.test_case "min rtt" `Quick test_min_rtt_matches_base;
    Alcotest.test_case "loss recovery" `Quick
      test_losses_detected_and_retransmitted;
    Alcotest.test_case "rounds advance" `Quick test_rounds_advance;
    Alcotest.test_case "srtt sane" `Quick test_srtt_sane;
    Alcotest.test_case "inflight <= cwnd" `Quick test_inflight_bounded_by_cwnd;
    Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
    Alcotest.test_case "bbr alone" `Quick test_bbr_flow_works_alone;
    Alcotest.test_case "other ccas alone" `Quick test_reno_and_vivace_work;
    Alcotest.test_case "start time" `Quick test_start_time_honored;
    Alcotest.test_case "rto exponential backoff" `Quick
      test_rto_exponential_backoff;
    Alcotest.test_case "inflight accounting exact" `Quick
      test_inflight_accounting_exact;
    Alcotest.test_case "inflight zero at completion" `Quick
      test_inflight_zero_when_completed;
  ]
