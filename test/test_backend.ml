(* Tests for the unified backend API ({!Sim_backend}): registry lookup,
   typed validation errors, digest semantics (stable per backend+spec,
   distinct across backends and across specs), and the outcome helpers
   shared by the differential tests and [repro compare]. *)

module U = Sim_engine.Units
module B = Sim_backend

let mk_spec ?(ccas = [ "cubic"; "bbr" ]) () =
  let rate_bps = U.mbps 50.0 in
  let rtt = U.ms 40.0 in
  B.spec ~warmup:(U.seconds 2.0) ~seed:7 ~rate_bps
    ~buffer_bytes:(U.bdp_bytes ~rate_bps ~rtt)
    ~duration:(U.seconds 8.0)
    (List.map (fun cca -> { B.cca; rtt }) ccas)

let test_registry () =
  Alcotest.(check (list string))
    "names" [ "packet"; "fluid"; "ode" ] (B.names ());
  List.iter
    (fun backend ->
      match B.find (B.name backend) with
      | Ok b -> Alcotest.(check string) "find roundtrip" (B.name backend) (B.name b)
      | Error _ -> Alcotest.failf "find %S failed" (B.name backend))
    B.all;
  (match B.find "heun" with
  | Error (B.Unknown_backend { name; known }) ->
      Alcotest.(check string) "unknown name echoed" "heun" name;
      Alcotest.(check (list string)) "known list" (B.names ()) known
  | Ok _ | Error _ -> Alcotest.fail "find \"heun\" should be Unknown_backend");
  match B.find_exn "heun" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find_exn \"heun\" should raise"

let test_supports () =
  (* The packet simulator covers the whole CCA registry; the analytic
     backends model only the paper's three. *)
  List.iter
    (fun cca ->
      Alcotest.(check bool) ("packet " ^ cca) true (B.supports B.packet cca);
      Alcotest.(check bool) ("fluid " ^ cca) true (B.supports B.fluid cca);
      Alcotest.(check bool) ("ode " ^ cca) true (B.supports B.ode cca))
    [ "cubic"; "bbr"; "bbr2" ];
  Alcotest.(check bool) "packet reno" true (B.supports B.packet "reno");
  Alcotest.(check bool) "fluid reno" false (B.supports B.fluid "reno");
  Alcotest.(check bool) "ode reno" false (B.supports B.ode "reno")

let test_validate () =
  List.iter
    (fun backend ->
      (match B.validate backend (mk_spec ()) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s rejects a valid spec: %s" (B.name backend)
            (Format.asprintf "%a" B.pp_error e));
      match B.validate backend { (mk_spec ()) with B.flows = [] } with
      | Error (B.Invalid_spec _) -> ()
      | Ok () | Error _ ->
          Alcotest.failf "%s: empty flow list should be Invalid_spec"
            (B.name backend))
    B.all;
  match B.validate B.fluid (mk_spec ~ccas:[ "cubic"; "reno" ] ()) with
  | Error (B.Unsupported_cca { backend; cca; supported }) ->
      Alcotest.(check string) "backend" "fluid" backend;
      Alcotest.(check string) "cca" "reno" cca;
      Alcotest.(check bool) "supported list names cubic" true
        (List.mem "cubic" supported)
  | Ok () | Error _ -> Alcotest.fail "fluid+reno should be Unsupported_cca"

let test_digests () =
  let spec = mk_spec () in
  List.iter
    (fun backend ->
      Alcotest.(check string)
        (B.name backend ^ " digest stable")
        (B.digest backend spec) (B.digest backend spec))
    B.all;
  let digests = List.map (fun b -> B.digest b spec) B.all in
  Alcotest.(check int)
    "digests distinct across backends"
    (List.length B.all)
    (List.length (List.sort_uniq compare digests));
  let bumped = { spec with B.duration = U.seconds 9.0 } in
  List.iter
    (fun backend ->
      if String.equal (B.digest backend spec) (B.digest backend bumped) then
        Alcotest.failf "%s digest ignores the spec" (B.name backend))
    B.all

let test_run_and_helpers () =
  let spec = mk_spec () in
  let o = B.run_exn B.fluid spec in
  Alcotest.(check (array string))
    "cca order preserved" [| "cubic"; "bbr" |] o.B.per_flow_cca;
  let total = Array.fold_left ( +. ) 0.0 o.B.per_flow_bps in
  Alcotest.(check bool)
    "utilization consistent with per-flow sum" true
    (Float.abs ((total /. 50e6) -. o.B.utilization) < 1e-9);
  Alcotest.(check bool)
    "aggregate = sum over kind" true
    (Float.abs
       (B.aggregate_bps_of_cca o "cubic"
       +. B.aggregate_bps_of_cca o "bbr"
       -. total)
    < 1e-6);
  Alcotest.(check bool)
    "mean of absent cca is nan" true
    (Float.is_nan (B.mean_bps_of_cca o "bbr2"));
  (match B.run B.ode (mk_spec ~ccas:[ "vegas" ] ()) with
  | Error (B.Unsupported_cca _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ode+vegas should be Unsupported_cca");
  match B.run_exn B.ode (mk_spec ~ccas:[ "vegas" ] ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run_exn on unsupported CCA should raise"

let test_determinism () =
  let spec = mk_spec () in
  List.iter
    (fun backend ->
      let a = B.run_exn backend spec and b = B.run_exn backend spec in
      Alcotest.(check bool)
        (B.name backend ^ " reproducible")
        true
        (a.B.per_flow_bps = b.B.per_flow_bps
        && a.B.loss_events = b.B.loss_events))
    B.all

let tests =
  [
    Alcotest.test_case "registry lookup" `Quick test_registry;
    Alcotest.test_case "per-backend CCA support" `Quick test_supports;
    Alcotest.test_case "typed validation errors" `Quick test_validate;
    Alcotest.test_case "digest semantics" `Quick test_digests;
    Alcotest.test_case "run and outcome helpers" `Quick test_run_and_helpers;
    Alcotest.test_case "outcomes reproducible" `Quick test_determinism;
  ]
