(* Differential test for the event core: the pooled heap plus calendar
   lanes must pop events in exactly the order a naive sorted-list scheduler
   would — (time, seq) lexicographic, where seq is drawn from the shared
   counter in schedule-call order.

   The reference model mirrors every [Sim.schedule] / [Sim.schedule_packet]
   call with its own (time, seq, id) record and sorts at the end; the real
   simulator records the ids its callbacks fire. Lane pushes use random
   delays on shared lanes, so FIFO violations (and the heap-fallback path)
   occur constantly; cancels target random handles including stale ones, so
   slot reuse under the stamp discipline is exercised too. *)

open Sim_engine

type ref_event = {
  r_time : float;
  r_seq : int;
  r_id : int;
  mutable r_cancelled : bool;
}

(* Deterministic LCG: simlint R1 bans [Random] and the op stream must be
   reproducible across runs anyway. *)
let make_lcg seed =
  let st = ref (seed land 0x3FFFFFFFFFFF) in
  fun bound ->
    st := ((!st * 25214903917) + 11) land 0x3FFFFFFFFFFF;
    !st mod bound

let run_differential ~seed ~rounds ~ops_per_round ~n_lanes =
  let rand = make_lcg seed in
  let sim = Sim.create () in
  let fired = ref [] in
  let fired_ids = Hashtbl.create 256 in
  let record id =
    fired := id :: !fired;
    Hashtbl.replace fired_ids id ()
  in
  let lanes = Array.init n_lanes (fun _ -> Sim.lane sim ~dummy:(-1) ~deliver:record) in
  let reference = ref [] in
  let seq_counter = ref 0 in
  let next_id = ref 0 in
  let handles = ref [] in
  let n_handles = ref 0 in
  for _round = 1 to rounds do
    let now = Sim.now sim in
    for _op = 1 to ops_per_round do
      let delay = float_of_int (rand 2000) /. 1000.0 in
      match rand 10 with
      | 0 | 1 | 2 | 3 ->
        (* Heap-scheduled timer. *)
        let id = !next_id in
        incr next_id;
        let entry =
          { r_time = now +. delay; r_seq = !seq_counter; r_id = id;
            r_cancelled = false }
        in
        incr seq_counter;
        let h = Sim.schedule sim ~delay (fun () -> record id) in
        reference := entry :: !reference;
        handles := (h, entry) :: !handles;
        incr n_handles
      | 4 | 5 | 6 | 7 ->
        (* Lane delivery; random delays on a shared lane frequently violate
           FIFO and take the heap-fallback path. Either way one seq is
           drawn, so the reference is substrate-agnostic. *)
        let id = !next_id in
        incr next_id;
        let entry =
          { r_time = now +. delay; r_seq = !seq_counter; r_id = id;
            r_cancelled = false }
        in
        incr seq_counter;
        Sim.schedule_packet sim lanes.(rand n_lanes) ~delay id;
        reference := entry :: !reference
      | _ -> (
        (* Cancel a random handle — possibly one whose event already fired
           (stale; must no-op even if the pool slot was reused). *)
        match !handles with
        | [] -> ()
        | hs ->
          let h, entry = List.nth hs (rand !n_handles) in
          Sim.cancel sim h;
          if (not entry.r_cancelled) && not (Hashtbl.mem fired_ids entry.r_id)
          then entry.r_cancelled <- true)
    done;
    Sim.run ~until:(now +. 0.5) sim
  done;
  Sim.run sim;
  let expected =
    !reference
    |> List.filter (fun e -> not e.r_cancelled)
    |> List.sort (fun a b ->
           match Float.compare a.r_time b.r_time with
           | 0 -> Int.compare a.r_seq b.r_seq
           | c -> c)
    |> List.map (fun e -> e.r_id)
  in
  let actual = List.rev !fired in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: event count" seed)
    (List.length expected) (List.length actual);
  if expected <> actual then begin
    let rec first_diff i = function
      | e :: es, a :: as_ ->
        if e <> a then
          Alcotest.failf "seed %d: divergence at pop %d: expected id %d, got %d"
            seed i e a
        else first_diff (i + 1) (es, as_)
      | _ -> Alcotest.failf "seed %d: pop streams differ in length" seed
    in
    first_diff 0 (expected, actual)
  end

let test_differential () =
  List.iter
    (fun seed -> run_differential ~seed ~rounds:40 ~ops_per_round:30 ~n_lanes:4)
    [ 1; 7; 42; 1234; 99991 ]

let test_differential_single_lane () =
  (* One shared lane maximizes FIFO violations, so the heap-fallback path
     carries most of the lane traffic. *)
  List.iter
    (fun seed -> run_differential ~seed ~rounds:25 ~ops_per_round:40 ~n_lanes:1)
    [ 3; 17; 2026 ]

let tests =
  [
    Alcotest.test_case "heap + lanes match sorted-list reference" `Quick
      test_differential;
    Alcotest.test_case "single-lane stream matches reference" `Quick
      test_differential_single_lane;
  ]
