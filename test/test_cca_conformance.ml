(* The CCA conformance matrix: every algorithm in the registry is pushed
   through the same adversarial scenarios (a loss burst, an RTT step,
   app-limited idling) via the synthetic Cca_driver, and must keep its
   window finite, positive and above the conventional floor, with a pacing
   rate that is either nan (ACK-clocked) or strictly positive. BBR-family
   algorithms must additionally visit ProbeRTT once their RTprop estimate
   ages out. *)

open Cca.Cc_types

let mss = 1500

(* The built-ins; custom registrations from other test modules (alcotest
   runs suites in one process) are excluded deliberately. *)
let conformance_names =
  [ "reno"; "cubic"; "bbr"; "bbr2"; "copa"; "vegas"; "vivace" ]

let make name =
  Cca.Registry.create name ~mss ~rng:(Sim_engine.Rng.create 77)

let check_sane name (cc : t) ~context =
  let cwnd = cc.cwnd_bytes () in
  if not (Float.is_finite cwnd) then
    Alcotest.failf "%s: non-finite cwnd %g %s" name cwnd context;
  if cwnd < float_of_int (2 * mss) -. 1e-6 then
    Alcotest.failf "%s: cwnd %g below the 2-MSS floor %s" name cwnd context;
  let pacing = cc.pacing_rate () in
  if (not (Float.is_nan pacing)) && pacing <= 0.0 then
    Alcotest.failf "%s: pacing rate %g not positive %s" name pacing context

(* Grow for a while, hit a burst of losses, then recover. *)
let scenario_loss_burst name =
  let cc = make name in
  let now, round =
    Cca_driver.feed_rounds cc ~rounds:20 ~per_round:10 ~rtt:0.04 ~rate:2e6
      ~start_now:0.0 ~start_round:0
  in
  check_sane name cc ~context:"after growth";
  let after_growth = cc.cwnd_bytes () in
  for i = 0 to 4 do
    cc.on_loss
      (Cca_driver.loss
         ~now:(now +. (0.001 *. float_of_int i))
         ~inflight:(10 * mss) ())
  done;
  check_sane name cc ~context:"after loss burst";
  let after_loss = cc.cwnd_bytes () in
  if after_loss > after_growth +. 1e-6 then
    Alcotest.failf "%s: loss burst grew cwnd %g -> %g" name after_growth
      after_loss;
  let _ =
    Cca_driver.feed_rounds cc ~rounds:50 ~per_round:10 ~rtt:0.04 ~rate:2e6
      ~start_now:(now +. 0.01) ~start_round:round
  in
  check_sane name cc ~context:"after recovery";
  (* Recovery must not wedge the window: window-based CCAs re-grow from the
     trough; rate-based ones (vivace) converge toward the observed delivery
     rate, which may sit somewhat below the trough — but a collapse to half
     of it means the burst broke the algorithm. *)
  if cc.cwnd_bytes () < (0.5 *. after_loss) -. 1e-6 then
    Alcotest.failf "%s: window wedged after loss burst (%g -> %g)" name
      after_loss (cc.cwnd_bytes ())

(* A sudden 5x RTT increase (path change / bufferbloat) must not produce
   NaN or a collapse below the floor. *)
let scenario_rtt_step name =
  let cc = make name in
  let now, round =
    Cca_driver.feed_rounds cc ~rounds:20 ~per_round:10 ~rtt:0.04 ~rate:2e6
      ~start_now:0.0 ~start_round:0
  in
  check_sane name cc ~context:"before rtt step";
  let _ =
    Cca_driver.feed_rounds cc ~rounds:20 ~per_round:10 ~rtt:0.2 ~rate:2e6
      ~start_now:now ~start_round:round
  in
  check_sane name cc ~context:"after rtt step"

(* App-limited idling: tiny ACK volume, rate samples flagged app-limited.
   The window must stay sane and the flags must not poison rate state. *)
let scenario_app_limited_idle name =
  let cc = make name in
  let now, _ =
    Cca_driver.feed_rounds cc ~rounds:10 ~per_round:10 ~rtt:0.04 ~rate:2e6
      ~start_now:0.0 ~start_round:0
  in
  for i = 1 to 50 do
    cc.on_ack
      (Cca_driver.ack
         ~now:(now +. (0.04 *. float_of_int i))
         ~acked:100 ~rate:1e4 ~app_limited:true ~inflight:200
         ~round:(10 + i) ~round_start:true ())
  done;
  check_sane name cc ~context:"after app-limited idle"

let test_matrix () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (List.mem name (Cca.Registry.names ()));
      scenario_loss_burst name;
      scenario_rtt_step name;
      scenario_app_limited_idle name)
    conformance_names

(* BBR-family: RTprop expires after ~10 s of samples above the minimum, so
   a long steady drive must pass through ProbeRTT at least once. *)
let test_probe_rtt_entered () =
  List.iter
    (fun name ->
      let cc = make name in
      let now, round =
        Cca_driver.feed_rounds cc ~rounds:10 ~per_round:10 ~rtt:0.04 ~rate:2e6
          ~start_now:0.0 ~start_round:0
      in
      let seen = ref false in
      let now = ref now and round = ref round in
      for _ = 1 to 300 do
        incr round;
        now := !now +. 0.05;
        for i = 0 to 9 do
          cc.on_ack
            (Cca_driver.ack ~now:!now ~rtt:0.05 ~rate:2e6 ~round:!round
               ~round_start:(i = 0) ~inflight:(10 * mss) ())
        done;
        if String.equal (cc.state ()) "ProbeRTT" then seen := true
      done;
      Alcotest.(check bool) (name ^ " visited ProbeRTT") true !seen)
    [ "bbr"; "bbr2" ]

let tests =
  [
    Alcotest.test_case "conformance matrix" `Quick test_matrix;
    Alcotest.test_case "bbr family enters ProbeRTT" `Quick
      test_probe_rtt_entered;
  ]
