open Netsim
module Sim = Sim_engine.Sim

let mk_packet ?(flow = 0) ?(seq = 0) ?(size = 1500) () =
  Packet.make ~flow ~seq ~size ~retransmit:false ~sent_time:0.0 ~delivered:0.0
    ~delivered_time:0.0 ~app_limited:false

(* --- Droptail_queue --- *)

let test_fifo_order () =
  let q = Droptail_queue.create ~capacity_bytes:10_000 () in
  for seq = 0 to 4 do
    match Droptail_queue.enqueue q (mk_packet ~seq ()) with
    | Droptail_queue.Enqueued -> ()
    | Droptail_queue.Dropped -> Alcotest.fail "unexpected drop"
  done;
  for seq = 0 to 4 do
    match Droptail_queue.dequeue q with
    | Some p -> Alcotest.(check int) "fifo" seq p.Packet.seq
    | None -> Alcotest.fail "missing packet"
  done

let test_capacity_drop () =
  let q = Droptail_queue.create ~capacity_bytes:3000 () in
  Alcotest.(check bool) "first fits" true
    (Droptail_queue.enqueue q (mk_packet ()) = Droptail_queue.Enqueued);
  Alcotest.(check bool) "second fits" true
    (Droptail_queue.enqueue q (mk_packet ()) = Droptail_queue.Enqueued);
  Alcotest.(check bool) "third dropped" true
    (Droptail_queue.enqueue q (mk_packet ()) = Droptail_queue.Dropped);
  Alcotest.(check int) "drop count" 1 (Droptail_queue.drops q);
  Alcotest.(check int) "dropped bytes" 1500 (Droptail_queue.dropped_bytes q)

let test_occupancy_accounting () =
  let q = Droptail_queue.create ~capacity_bytes:100_000 () in
  ignore (Droptail_queue.enqueue q (mk_packet ~flow:0 ~size:1000 ()));
  ignore (Droptail_queue.enqueue q (mk_packet ~flow:1 ~size:2000 ()));
  ignore (Droptail_queue.enqueue q (mk_packet ~flow:0 ~size:500 ()));
  Alcotest.(check int) "total" 3500 (Droptail_queue.occupancy_bytes q);
  Alcotest.(check int) "flow 0" 1500 (Droptail_queue.occupancy_of_flow q 0);
  Alcotest.(check int) "flow 1" 2000 (Droptail_queue.occupancy_of_flow q 1);
  Alcotest.(check int) "class" 1500
    (Droptail_queue.occupancy_of_flows q (fun f -> f = 0));
  ignore (Droptail_queue.dequeue q);
  Alcotest.(check int) "flow 0 after dequeue" 500
    (Droptail_queue.occupancy_of_flow q 0)

let test_drop_hook () =
  let q = Droptail_queue.create ~capacity_bytes:1500 () in
  let dropped = ref [] in
  Droptail_queue.set_drop_hook q (fun ~early:_ p ->
      dropped := p.Packet.seq :: !dropped);
  ignore (Droptail_queue.enqueue q (mk_packet ~seq:1 ()));
  ignore (Droptail_queue.enqueue q (mk_packet ~seq:2 ()));
  Alcotest.(check (list int)) "hook saw seq 2" [ 2 ] !dropped

let test_empty_queue () =
  let q = Droptail_queue.create ~capacity_bytes:1500 () in
  Alcotest.(check bool) "is_empty" true (Droptail_queue.is_empty q);
  Alcotest.(check bool) "dequeue none" true (Option.is_none (Droptail_queue.dequeue q))

let prop_byte_conservation =
  QCheck.Test.make ~name:"enqueued = dequeued + dropped + queued" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (int_range 100 3000))
    (fun sizes ->
      let q = Droptail_queue.create ~capacity_bytes:10_000 () in
      let enqueued = ref 0 in
      List.iteri
        (fun seq size ->
          match Droptail_queue.enqueue q (mk_packet ~seq ~size ()) with
          | Droptail_queue.Enqueued -> enqueued := !enqueued + size
          | Droptail_queue.Dropped -> ())
        sizes;
      let dequeued = ref 0 in
      (* dequeue half *)
      for _ = 1 to List.length sizes / 2 do
        match Droptail_queue.dequeue q with
        | Some p -> dequeued := !dequeued + p.Packet.size
        | None -> ()
      done;
      !enqueued = !dequeued + Droptail_queue.occupancy_bytes q)

(* --- Link --- *)

let test_link_serialization () =
  let sim = Sim.create () in
  let q = Droptail_queue.create ~capacity_bytes:1_000_000 () in
  let delivered = ref [] in
  let link =
    Link.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~queue:q ~deliver:(fun p ->
        delivered := (Sim.now sim, p.Packet.seq) :: !delivered)
  in
  for seq = 0 to 2 do
    ignore (Droptail_queue.enqueue q (mk_packet ~seq ()))
  done;
  Link.kick link;
  Sim.run sim;
  (* 1500 B at 12 Mbps = 1 ms per packet *)
  match List.rev !delivered with
  | [ (t1, 0); (t2, 1); (t3, 2) ] ->
    Alcotest.(check (float 1e-9)) "1st at 1ms" 0.001 t1;
    Alcotest.(check (float 1e-9)) "2nd at 2ms" 0.002 t2;
    Alcotest.(check (float 1e-9)) "3rd at 3ms" 0.003 t3
  | _ -> Alcotest.fail "wrong delivery sequence"

let test_link_counters () =
  let sim = Sim.create () in
  let q = Droptail_queue.create ~capacity_bytes:1_000_000 () in
  let link = Link.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~queue:q ~deliver:ignore in
  for seq = 0 to 4 do
    ignore (Droptail_queue.enqueue q (mk_packet ~seq ()))
  done;
  Link.kick link;
  Sim.run sim;
  Alcotest.(check int) "packets" 5 (Link.delivered_packets link);
  Alcotest.(check int) "bytes" 7500 (Link.delivered_bytes link);
  Alcotest.(check (float 1e-9)) "busy seconds" 0.005 ((Link.busy_seconds link :> float));
  Alcotest.(check bool) "idle at end" false (Link.busy link)

let test_link_kick_idempotent () =
  let sim = Sim.create () in
  let q = Droptail_queue.create ~capacity_bytes:1_000_000 () in
  let count = ref 0 in
  let link = Link.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~queue:q ~deliver:(fun _ -> incr count) in
  ignore (Droptail_queue.enqueue q (mk_packet ()));
  Link.kick link;
  Link.kick link;
  Link.kick link;
  Sim.run sim;
  Alcotest.(check int) "delivered once" 1 !count

(* --- Pipe --- *)

let test_pipe_delay () =
  let sim = Sim.create () in
  let arrival = ref nan in
  let pipe =
    Pipe.create ~sim
      ~delay_of:(fun _ -> 0.02)
      ~deliver:(fun _ -> arrival := Sim.now sim)
  in
  Pipe.send pipe (mk_packet ());
  Alcotest.(check int) "in flight" 1 (Pipe.in_flight pipe);
  Sim.run sim;
  Alcotest.(check (float 1e-12)) "arrives after delay" 0.02 !arrival;
  Alcotest.(check int) "none in flight" 0 (Pipe.in_flight pipe)

let test_pipe_per_flow_delay () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let pipe =
    Pipe.create ~sim
      ~delay_of:(fun p -> if p.Packet.flow = 0 then 0.01 else 0.03)
      ~deliver:(fun p -> arrivals := (p.Packet.flow, Sim.now sim) :: !arrivals)
  in
  Pipe.send pipe (mk_packet ~flow:1 ());
  Pipe.send pipe (mk_packet ~flow:0 ());
  Sim.run sim;
  Alcotest.(check (list (pair int (float 1e-12))))
    "per-flow delays"
    [ (0, 0.01); (1, 0.03) ]
    (List.rev !arrivals)

(* --- Dumbbell --- *)

let test_dumbbell_end_to_end () =
  let sim = Sim.create () in
  let net =
    Dumbbell.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~buffer_bytes:1_000_000
      ~flows:[ { Dumbbell.flow = 0; base_rtt = Sim_engine.Units.ms 40.0 } ] ()
  in
  let arrival = ref nan in
  Dumbbell.set_receiver net ~flow:0 (fun _ -> arrival := Sim.now sim);
  ignore (Dumbbell.send net (mk_packet ()));
  Sim.run sim;
  (* serialization 1 ms + one-way 20 ms *)
  Alcotest.(check (float 1e-9)) "arrival time" 0.021 !arrival;
  Alcotest.(check (float 1e-9)) "reverse delay" 0.02
    ((Dumbbell.reverse_delay net ~flow:0 :> float))

let test_dumbbell_orphan () =
  let sim = Sim.create () in
  let net =
    Dumbbell.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~buffer_bytes:1_000_000
      ~flows:[ { Dumbbell.flow = 0; base_rtt = Sim_engine.Units.ms 40.0 } ] ()
  in
  ignore (Dumbbell.send net (mk_packet ~flow:7 ()));
  Sim.run sim;
  Alcotest.(check int) "orphaned" 1 (Dumbbell.orphaned net)

let test_dumbbell_rtt_lookup () =
  let sim = Sim.create () in
  let net =
    Dumbbell.create ~sim ~rate_bps:(Sim_engine.Units.bps 12e6) ~buffer_bytes:1_000_000
      ~flows:
        [
          { Dumbbell.flow = 0; base_rtt = Sim_engine.Units.ms 40.0 };
          { Dumbbell.flow = 1; base_rtt = Sim_engine.Units.ms 80.0 };
        ]
      ()
  in
  Alcotest.(check (float 0.0)) "flow 0" 0.04 ((Dumbbell.base_rtt_of net 0 :> float));
  Alcotest.(check (float 0.0)) "flow 1" 0.08 ((Dumbbell.base_rtt_of net 1 :> float));
  match Dumbbell.base_rtt_of net 9 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

(* --- Sampler --- *)

let test_sampler_series () =
  let sim = Sim.create () in
  let q = Droptail_queue.create ~capacity_bytes:1_000_000 () in
  let sampler =
    Netsim.Sampler.create ~sim ~queue:q ~period:0.01
      ~flow_classes:[ ("even", fun f -> f mod 2 = 0) ]
      ()
  in
  ignore (Droptail_queue.enqueue q (mk_packet ~flow:0 ~size:1000 ()));
  ignore (Droptail_queue.enqueue q (mk_packet ~flow:1 ~size:500 ()));
  Sim.run ~until:0.05 sim;
  Netsim.Sampler.stop sampler;
  let total = Netsim.Sampler.total sampler in
  Alcotest.(check bool) "sampled" true (Sim_engine.Timeseries.length total >= 5);
  Alcotest.(check (float 0.0)) "total occupancy" 1500.0
    (Sim_engine.Timeseries.max_value total ());
  let even = Netsim.Sampler.class_series sampler "even" in
  Alcotest.(check (float 0.0)) "class occupancy" 1000.0
    (Sim_engine.Timeseries.max_value even ());
  match Netsim.Sampler.class_series sampler "odd" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown class should raise"

let test_sampler_queuing_delay () =
  let sim = Sim.create () in
  let q = Droptail_queue.create ~capacity_bytes:1_000_000 () in
  ignore (Droptail_queue.enqueue q (mk_packet ~size:12500 ()));
  let sampler = Netsim.Sampler.create ~sim ~queue:q ~period:0.01 () in
  Sim.run ~until:0.1 sim;
  Netsim.Sampler.stop sampler;
  (* 12500 B at 1 Mbps(bytes: 125000 B/s) -> 0.1 s *)
  Alcotest.(check (float 1e-3)) "queuing delay" 0.1
    (Netsim.Sampler.queuing_delay sampler ~rate_bps:1e6 ~from_:0.0 ~until:0.1)

let tests =
  [
    Alcotest.test_case "droptail FIFO" `Quick test_fifo_order;
    Alcotest.test_case "droptail capacity" `Quick test_capacity_drop;
    Alcotest.test_case "droptail occupancy" `Quick test_occupancy_accounting;
    Alcotest.test_case "droptail drop hook" `Quick test_drop_hook;
    Alcotest.test_case "droptail empty" `Quick test_empty_queue;
    QCheck_alcotest.to_alcotest prop_byte_conservation;
    Alcotest.test_case "link serialization" `Quick test_link_serialization;
    Alcotest.test_case "link counters" `Quick test_link_counters;
    Alcotest.test_case "link kick idempotent" `Quick test_link_kick_idempotent;
    Alcotest.test_case "pipe delay" `Quick test_pipe_delay;
    Alcotest.test_case "pipe per-flow delay" `Quick test_pipe_per_flow_delay;
    Alcotest.test_case "dumbbell end-to-end" `Quick test_dumbbell_end_to_end;
    Alcotest.test_case "dumbbell orphan" `Quick test_dumbbell_orphan;
    Alcotest.test_case "dumbbell rtt lookup" `Quick test_dumbbell_rtt_lookup;
    Alcotest.test_case "sampler series" `Quick test_sampler_series;
    Alcotest.test_case "sampler queuing delay" `Quick test_sampler_queuing_delay;
  ]
