open Ccmodel

let params ?(mbps = 50.0) ?(bdp = 10.0) ?(rtt_ms = 40.0) () =
  Params.of_paper_units ~mbps ~buffer_bdp:bdp ~rtt_ms

(* --- Params --- *)

let test_params_units () =
  let p = params () in
  Alcotest.(check (float 1e-6)) "capacity bytes/s" 6.25e6 p.Params.capacity;
  Alcotest.(check (float 1e-6)) "rtt" 0.04 p.Params.rtt;
  Alcotest.(check (float 1e-3)) "buffer bdp" 10.0 (Params.buffer_in_bdp p);
  Alcotest.(check (float 1e-6)) "bdp bytes" 250_000.0 (Params.bdp_bytes p);
  Alcotest.(check (float 1e-6)) "capacity mbps" 50.0 (Params.capacity_mbps p)

let test_params_validation () =
  match Params.make
          ~capacity_bps:(Sim_engine.Units.bps 0.0)
          ~buffer_bytes:(Sim_engine.Units.bytes 1.0)
          ~rtt:(Sim_engine.Units.seconds 0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity should raise"

(* --- Solver --- *)

let test_bisect_linear () =
  let root = Solver.bisect ~f:(fun x -> x -. 3.0) ~lo:0.0 ~hi:10.0 () in
  Alcotest.(check (float 1e-6)) "root" 3.0 root

let test_bisect_decreasing () =
  let root = Solver.bisect ~f:(fun x -> 5.0 -. x) ~lo:0.0 ~hi:10.0 () in
  Alcotest.(check (float 1e-6)) "root" 5.0 root

let test_bisect_endpoint_root () =
  Alcotest.(check (float 0.0)) "lo root" 0.0
    (Solver.bisect ~f:(fun x -> x) ~lo:0.0 ~hi:1.0 ())

let test_bisect_same_sign () =
  match Solver.bisect ~f:(fun _ -> 1.0) ~lo:0.0 ~hi:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "same sign should raise"

let test_find_crossing () =
  let f k = 10.0 -. float_of_int k in
  (match Solver.find_crossing ~f ~lo:1 ~hi:20 with
  | Some (9, 10) | Some (10, 11) -> ()
  | Some (a, b) -> Alcotest.failf "wrong crossing (%d,%d)" a b
  | None -> Alcotest.fail "expected crossing");
  Alcotest.(check bool) "no crossing" true
    (Option.is_none (Solver.find_crossing ~f:(fun _ -> 1.0) ~lo:0 ~hi:5))

let prop_bisect_finds_root =
  QCheck.Test.make ~name:"bisect residual small at root" ~count:200
    QCheck.(float_range 0.1 99.9)
    (fun r ->
      let f x = (x -. r) *. (x +. 200.0) in
      let root = Solver.bisect ~f ~lo:0.0 ~hi:100.0 () in
      Float.abs (root -. r) < 1e-5)

(* --- Ware baseline --- *)

let test_ware_shallow_high () =
  (* At 1 BDP, Ware predicts BBR takes nearly everything. *)
  let frac =
    Ware.bbr_fraction ~params:(params ~bdp:1.0 ()) ~n_bbr:1 ~duration:(Sim_engine.Units.seconds 120.0)
  in
  Alcotest.(check bool) (Printf.sprintf "high (%f)" frac) true (frac > 0.8)

let test_ware_decreasing_in_buffer () =
  let frac bdp =
    Ware.bbr_fraction ~params:(params ~bdp ()) ~n_bbr:1 ~duration:(Sim_engine.Units.seconds 120.0)
  in
  Alcotest.(check bool) "decreasing" true
    (frac 2.0 > frac 10.0 && frac 10.0 > frac 40.0)

let test_ware_floor_half () =
  (* Key property the paper criticizes: Ware's prediction never approaches
     the low shares actually measured in deep buffers (~0.5 minus the
     ProbeRTT duty cycle). *)
  let frac =
    Ware.bbr_fraction ~params:(params ~bdp:50.0 ()) ~n_bbr:1 ~duration:(Sim_engine.Units.seconds 120.0)
  in
  Alcotest.(check bool) (Printf.sprintf "about half (%f)" frac) true
    (frac > 0.35)

let test_ware_validation () =
  (match Ware.bbr_fraction ~params:(params ()) ~n_bbr:0 ~duration:(Sim_engine.Units.seconds 120.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n_bbr 0 should raise");
  match Ware.bbr_fraction ~params:(params ()) ~n_bbr:1 ~duration:(Sim_engine.Units.seconds 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duration 0 should raise"

(* --- Two-flow model --- *)

let test_two_flow_conservation () =
  let s = Two_flow.solve (params ()) in
  Alcotest.(check (float 1.0)) "lambda_c + lambda_b = C" 50e6
    (s.cubic_bandwidth_bps +. s.bbr_bandwidth_bps)

let test_two_flow_bcmin () =
  (* b_cmin = (B - BDP)/2 = (2.5 MB - 0.25 MB)/2 = 1.125 MB. *)
  let s = Two_flow.solve (params ()) in
  Alcotest.(check (float 1.0)) "b_cmin" 1_125_000.0 s.cubic_min_buffer_bytes

let test_two_flow_bb_in_buffer () =
  let p = params () in
  let s = Two_flow.solve p in
  Alcotest.(check bool) "0 < b_b < B" true
    (s.bbr_buffer_bytes > 0.0 && s.bbr_buffer_bytes < p.Params.buffer)

let test_two_flow_decreasing_in_buffer () =
  let share bdp = Two_flow.bbr_share (params ~bdp ()) in
  Alcotest.(check bool) "monotone decline" true
    (share 2.0 > share 5.0 && share 5.0 > share 20.0)

let test_two_flow_shallow_regime () =
  let s = Two_flow.solve (params ~bdp:0.5 ()) in
  Alcotest.(check bool) "shallow flag" true (s.regime = Two_flow.Shallow);
  (* Sub-BDP buffers are outside the model's assumptions; the clamp follows
     the paper's empirical observation that BBR starves CUBIC there. *)
  Alcotest.(check (float 1.0)) "bbr takes the link" 50e6 s.bbr_bandwidth_bps

let test_two_flow_ultra_deep_regime () =
  let s = Two_flow.solve (params ~bdp:150.0 ()) in
  Alcotest.(check bool) "deep flag" true (s.regime = Two_flow.Ultra_deep)

let test_two_flow_scale_free () =
  (* The share depends only on the buffer in BDP units, not C or RTT. *)
  let a = Two_flow.bbr_share (params ~mbps:50.0 ~rtt_ms:40.0 ()) in
  let b = Two_flow.bbr_share (params ~mbps:100.0 ~rtt_ms:80.0 ()) in
  Alcotest.(check (float 1e-9)) "scale-free" a b

let test_two_flow_gamma_direction () =
  (* Larger gamma (de-synchronized CUBIC) -> more BBR bandwidth. *)
  let p = params () in
  let sync = (Two_flow.solve ~gamma:0.7 p).bbr_bandwidth_bps in
  let desync = (Two_flow.solve ~gamma:0.97 p).bbr_bandwidth_bps in
  Alcotest.(check bool) "desync favours BBR" true (desync > sync)

let test_two_flow_gamma_validation () =
  match Two_flow.solve ~gamma:1.5 (params ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gamma > 1 should raise"

let test_two_flow_known_value () =
  (* Fixed regression anchor: 50 Mbps, 40 ms, 10 BDP -> ~17.1 Mbps for BBR
     (validated against the packet-level simulator within ~16%). *)
  let s = Two_flow.solve (params ()) in
  Alcotest.(check (float 0.5)) "anchor" 17.09
    (Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps s.bbr_bandwidth_bps))

let prop_two_flow_share_in_unit =
  QCheck.Test.make ~name:"bbr share in [0,1]" ~count:200
    QCheck.(triple (float_range 1.0 500.0) (float_range 0.6 120.0)
              (float_range 5.0 200.0))
    (fun (mbps, bdp, rtt_ms) ->
      let share = Two_flow.bbr_share (params ~mbps ~bdp ~rtt_ms ()) in
      share >= 0.0 && share <= 1.0)

let test_predicted_queuing_delay () =
  (* With the full-buffer approximation, Qd = B/C for buffers > 1 BDP. *)
  let qd = Two_flow.predicted_queuing_delay (params ~bdp:10.0 ()) in
  Alcotest.(check (float 1e-9)) "10 BDP -> 400 ms" 0.4 qd;
  let shallow = Two_flow.predicted_queuing_delay (params ~bdp:0.5 ()) in
  Alcotest.(check (float 1e-9)) "shallow -> B/C" 0.02 shallow

(* --- Multi-flow model --- *)

let test_gamma_values () =
  Alcotest.(check (float 0.0)) "sync" 0.7
    (Multi_flow.gamma Multi_flow.Synchronized ~n_cubic:10);
  Alcotest.(check (float 1e-9)) "desync" 0.97
    (Multi_flow.gamma Multi_flow.Desynchronized ~n_cubic:10);
  Alcotest.(check (float 1e-9)) "desync nc=1" 0.7
    (Multi_flow.gamma Multi_flow.Desynchronized ~n_cubic:1)

let test_multi_flow_conservation () =
  let p = params ~mbps:100.0 () in
  let pr = Multi_flow.predict p ~n_cubic:5 ~n_bbr:5 ~sync:Multi_flow.Synchronized in
  Alcotest.(check (float 1.0)) "aggregate sum" 100e6
    (pr.aggregate_cubic_bps +. pr.aggregate_bbr_bps);
  Alcotest.(check (float 1.0)) "per-flow x count" pr.aggregate_bbr_bps
    (pr.per_flow_bbr_bps *. 5.0)

let test_multi_flow_degenerate () =
  let p = params ~mbps:100.0 () in
  let all_cubic = Multi_flow.predict p ~n_cubic:10 ~n_bbr:0 ~sync:Multi_flow.Synchronized in
  Alcotest.(check (float 1.0)) "all-cubic fair" 10e6 all_cubic.per_flow_cubic_bps;
  Alcotest.(check bool) "bbr nan" true (Float.is_nan all_cubic.per_flow_bbr_bps);
  let all_bbr = Multi_flow.predict p ~n_cubic:0 ~n_bbr:10 ~sync:Multi_flow.Synchronized in
  Alcotest.(check (float 1.0)) "all-bbr fair" 10e6 all_bbr.per_flow_bbr_bps

let test_multi_flow_interval_order () =
  let p = params ~mbps:100.0 () in
  let iv = Multi_flow.per_flow_bbr_interval p ~n_cubic:7 ~n_bbr:3 in
  Alcotest.(check bool) "lower <= upper" true
    (iv.lower_bbr_per_flow_bps <= iv.upper_bbr_per_flow_bps)

let test_multi_flow_diminishing () =
  (* Per-flow BBR throughput decreases as the BBR count grows. *)
  let p = params ~mbps:100.0 ~bdp:3.0 () in
  let per_flow k =
    (Multi_flow.predict p ~n_cubic:(10 - k) ~n_bbr:k
       ~sync:Multi_flow.Synchronized)
      .per_flow_bbr_bps
  in
  Alcotest.(check bool) "diminishing returns" true
    (per_flow 1 > per_flow 3 && per_flow 3 > per_flow 8)

let test_multi_flow_validation () =
  match Multi_flow.predict (params ()) ~n_cubic:0 ~n_bbr:0 ~sync:Multi_flow.Synchronized with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no flows should raise"

(* --- NE predictor --- *)

let test_ne_advantage_sign () =
  let p = params ~mbps:100.0 ~bdp:5.0 () in
  (* One BBR among 9 CUBIC: big advantage. *)
  Alcotest.(check bool) "positive at k=1" true
    (Ne.bbr_per_flow_advantage p ~n:10 ~n_bbr:1 ~sync:Multi_flow.Synchronized
     > 0.0);
  Alcotest.(check bool) "negative at k=9" true
    (Ne.bbr_per_flow_advantage p ~n:10 ~n_bbr:9 ~sync:Multi_flow.Synchronized
     < 0.0)

let test_ne_equilibrium_in_range () =
  let p = params ~mbps:100.0 ~bdp:5.0 () in
  let nb = Ne.equilibrium_bbr_flows p ~n:10 ~sync:Multi_flow.Synchronized in
  Alcotest.(check bool) (Printf.sprintf "in (0, 10) (%f)" nb) true
    (nb > 0.0 && nb <= 10.0)

let test_ne_region_monotone_in_buffer () =
  (* Deeper buffers -> more CUBIC flows at the NE (paper Fig. 9 trend). *)
  let cubic_at bdp =
    (Ne.nash_region (params ~mbps:100.0 ~bdp ()) ~n:50).cubic_at_ne_sync
  in
  Alcotest.(check bool) "more cubic in deeper buffers" true
    (cubic_at 2.0 < cubic_at 10.0 && cubic_at 10.0 <= cubic_at 40.0)

let test_ne_region_scale_free () =
  let region mbps rtt_ms =
    (Ne.nash_region (params ~mbps ~bdp:10.0 ~rtt_ms ()) ~n:50).cubic_at_ne_sync
  in
  Alcotest.(check (float 1e-6)) "same across C and RTT" (region 50.0 20.0)
    (region 100.0 80.0)

let test_ne_region_sync_vs_desync () =
  (* Sync bound: BBR weaker -> NE has more CUBIC flows. *)
  let r = Ne.nash_region (params ~mbps:100.0 ~bdp:10.0 ()) ~n:50 in
  Alcotest.(check bool) "sync has more cubic" true
    (r.cubic_at_ne_sync >= r.cubic_at_ne_desync)

let prop_ne_in_bounds =
  QCheck.Test.make ~name:"NE cubic count in [0,n]" ~count:100
    QCheck.(pair (float_range 1.1 60.0) (int_range 2 100))
    (fun (bdp, n) ->
      let r = Ne.nash_region (params ~mbps:100.0 ~bdp ()) ~n in
      r.cubic_at_ne_sync >= 0.0
      && r.cubic_at_ne_sync <= float_of_int n
      && r.cubic_at_ne_desync >= 0.0
      && r.cubic_at_ne_desync <= float_of_int n)

(* --- Notation --- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_notation_table () =
  Alcotest.(check int) "14 entries" 14 (List.length Notation.table);
  let rendered = Format.asprintf "%a" Notation.pp_table () in
  Alcotest.(check bool) "mentions b_cmin" true (contains rendered "b_cmin")

let tests =
  [
    Alcotest.test_case "params units" `Quick test_params_units;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
    Alcotest.test_case "bisect decreasing" `Quick test_bisect_decreasing;
    Alcotest.test_case "bisect endpoint" `Quick test_bisect_endpoint_root;
    Alcotest.test_case "bisect same sign" `Quick test_bisect_same_sign;
    Alcotest.test_case "find crossing" `Quick test_find_crossing;
    QCheck_alcotest.to_alcotest prop_bisect_finds_root;
    Alcotest.test_case "ware shallow" `Quick test_ware_shallow_high;
    Alcotest.test_case "ware decreasing" `Quick test_ware_decreasing_in_buffer;
    Alcotest.test_case "ware half floor" `Quick test_ware_floor_half;
    Alcotest.test_case "ware validation" `Quick test_ware_validation;
    Alcotest.test_case "two-flow conservation" `Quick
      test_two_flow_conservation;
    Alcotest.test_case "two-flow b_cmin" `Quick test_two_flow_bcmin;
    Alcotest.test_case "two-flow b_b range" `Quick test_two_flow_bb_in_buffer;
    Alcotest.test_case "two-flow decreasing" `Quick
      test_two_flow_decreasing_in_buffer;
    Alcotest.test_case "shallow regime" `Quick test_two_flow_shallow_regime;
    Alcotest.test_case "ultra-deep regime" `Quick
      test_two_flow_ultra_deep_regime;
    Alcotest.test_case "scale-free" `Quick test_two_flow_scale_free;
    Alcotest.test_case "gamma direction" `Quick test_two_flow_gamma_direction;
    Alcotest.test_case "gamma validation" `Quick test_two_flow_gamma_validation;
    Alcotest.test_case "known value anchor" `Quick test_two_flow_known_value;
    Alcotest.test_case "predicted queuing delay" `Quick
      test_predicted_queuing_delay;
    QCheck_alcotest.to_alcotest prop_two_flow_share_in_unit;
    Alcotest.test_case "gamma values" `Quick test_gamma_values;
    Alcotest.test_case "multi-flow conservation" `Quick
      test_multi_flow_conservation;
    Alcotest.test_case "multi-flow degenerate" `Quick
      test_multi_flow_degenerate;
    Alcotest.test_case "interval order" `Quick test_multi_flow_interval_order;
    Alcotest.test_case "diminishing returns" `Quick
      test_multi_flow_diminishing;
    Alcotest.test_case "multi-flow validation" `Quick
      test_multi_flow_validation;
    Alcotest.test_case "NE advantage sign" `Quick test_ne_advantage_sign;
    Alcotest.test_case "NE in range" `Quick test_ne_equilibrium_in_range;
    Alcotest.test_case "NE monotone in buffer" `Quick
      test_ne_region_monotone_in_buffer;
    Alcotest.test_case "NE scale-free" `Quick test_ne_region_scale_free;
    Alcotest.test_case "NE sync vs desync" `Quick
      test_ne_region_sync_vs_desync;
    QCheck_alcotest.to_alcotest prop_ne_in_bounds;
    Alcotest.test_case "notation table" `Quick test_notation_table;
  ]
