(* Flow-lifecycle battery: slot-pooled churn over the dumbbell — completion
   events with positive FCTs, sender-slot reuse, mid-sim attach/detach, and
   a fully traced churn run replayed through the lifecycle auditor. *)

module Sim = Sim_engine.Sim
module Units = Sim_engine.Units
module Tr = Sim_engine.Trace
module E = Tcpflow.Experiment
module Churn = Tcpflow.Churn
module Audit = Sim_check.Audit

let item arrival_s size_bytes = { Workload.Schedule.arrival_s; size_bytes }

(* One churn population on an otherwise idle 10 Mbps / 20 ms dumbbell. *)
let churn_setup ?(buffer_bytes = 100_000) ?trace schedule =
  let sim = Sim.create ~seed:5 () in
  let net =
    Netsim.Dumbbell.create ?trace ~sim ~rate_bps:(Units.mbps 10.0)
      ~buffer_bytes ~flows:[] ()
  in
  let churn =
    Churn.create ?trace ~net ~base_flow:0 ~cca:"cubic"
      ~base_rtt:(Units.ms 20.0) ~schedule ()
  in
  (sim, net, churn)

let test_completion_positive_fct () =
  let schedule = [| item 0.1 40_000; item 0.2 80_000; item 0.35 25_000 |] in
  let sim, _net, churn = churn_setup schedule in
  Sim.run ~until:20.0 sim;
  Alcotest.(check int) "all arrived" 3 (Churn.arrived churn);
  Alcotest.(check int) "all completed" 3 (Churn.completed churn);
  Alcotest.(check int) "none active" 0 (Churn.active churn);
  Array.iter
    (fun fct ->
      Alcotest.(check bool) "fct finite" true (Float.is_finite fct);
      Alcotest.(check bool) "fct positive" true (fct > 0.0))
    (Churn.fcts churn);
  (* Transfers round up to whole segments: 27 + 54 + 17 segments. *)
  Alcotest.(check (float 1.0)) "delivered everything" 147_000.0
    (Churn.delivered_bytes churn)

let test_slot_reuse_sequential () =
  (* Arrivals spaced far apart: each transfer finishes before the next is
     born, so one physical slot serves the entire population. *)
  let schedule =
    Array.init 5 (fun i -> item (2.0 *. float_of_int i) 30_000)
  in
  let sim, _net, churn = churn_setup schedule in
  Sim.run ~until:30.0 sim;
  Alcotest.(check int) "all completed" 5 (Churn.completed churn);
  Alcotest.(check int) "one slot reused throughout" 1
    (Churn.slots_created churn)

let test_slot_pool_bounded_by_concurrency () =
  (* A burst of simultaneous arrivals needs one slot each, but the pool
     never exceeds peak concurrency even across many transfers. *)
  let schedule =
    Array.init 12 (fun i -> item (0.5 *. float_of_int (i / 3)) 20_000)
  in
  let sim, _net, churn = churn_setup schedule in
  Sim.run ~until:30.0 sim;
  Alcotest.(check int) "all completed" 12 (Churn.completed churn);
  Alcotest.(check bool) "slots below population" true
    (Churn.slots_created churn < Churn.arrived churn)

let test_flow_ids_never_reused () =
  let schedule = Array.init 4 (fun i -> item (float_of_int i) 15_000) in
  let sim, _net, churn = churn_setup schedule in
  Sim.run ~until:20.0 sim;
  for i = 0 to 3 do
    Alcotest.(check int) "flow id = base + item" i
      (Churn.flow_of_item churn i);
    Alcotest.(check int) "item of flow" i (Churn.item_of_flow churn ~flow:i);
    Alcotest.(check bool) "is churn flow" true
      (Churn.is_churn_flow churn ~flow:i)
  done;
  Alcotest.(check bool) "unknown flow" false
    (Churn.is_churn_flow churn ~flow:99)

let test_dumbbell_attach_detach () =
  let sim = Sim.create ~seed:1 () in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps:(Units.mbps 10.0)
      ~buffer_bytes:50_000 ~flows:[] ()
  in
  Alcotest.(check bool) "unknown before attach" false
    (Netsim.Dumbbell.known_flow net ~flow:7);
  Netsim.Dumbbell.add_flow net ~flow:7 ~base_rtt:(Units.ms 30.0);
  Alcotest.(check bool) "known after attach" true
    (Netsim.Dumbbell.known_flow net ~flow:7);
  Alcotest.(check (float 1e-12)) "rtt registered" 0.030
    (Netsim.Dumbbell.base_rtt_of net 7 :> float);
  (* Re-registration updates the RTT in place. *)
  Netsim.Dumbbell.add_flow net ~flow:7 ~base_rtt:(Units.ms 50.0);
  Alcotest.(check (float 1e-12)) "rtt updated" 0.050
    (Netsim.Dumbbell.base_rtt_of net 7 :> float);
  Netsim.Dumbbell.remove_flow net ~flow:7;
  Alcotest.(check bool) "unknown after detach" false
    (Netsim.Dumbbell.known_flow net ~flow:7)

let test_dumbbell_orphans_detached_flow () =
  (* A packet in flight when its flow detaches is counted and discarded,
     not delivered to a stale receiver. *)
  let sim = Sim.create ~seed:1 () in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps:(Units.mbps 10.0)
      ~buffer_bytes:50_000 ~flows:[] ()
  in
  Netsim.Dumbbell.add_flow net ~flow:3 ~base_rtt:(Units.ms 20.0);
  let delivered = ref 0 in
  Netsim.Dumbbell.set_receiver net ~flow:3 (fun _ -> incr delivered);
  let pkt =
    Netsim.Packet.make ~flow:3 ~seq:0 ~size:1500 ~retransmit:false
      ~sent_time:0.0 ~delivered:0.0 ~delivered_time:0.0 ~app_limited:false
  in
  ignore (Netsim.Dumbbell.send net pkt);
  Netsim.Dumbbell.remove_flow net ~flow:3;
  Sim.run ~until:1.0 sim;
  Alcotest.(check int) "not delivered" 0 !delivered;
  Alcotest.(check int) "orphaned" 1 (Netsim.Dumbbell.orphaned net)

let test_rebind_requires_finished_tenant () =
  let sim = Sim.create ~seed:2 () in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps:(Units.mbps 10.0)
      ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ]
      ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1)
  in
  let sender =
    Tcpflow.Sender.create ~net ~flow:0 ~cc ~data_limit_bytes:500_000 ()
  in
  Sim.run ~until:0.05 sim;
  Alcotest.(check bool) "tenant still running" false
    (Tcpflow.Sender.finished sender);
  Netsim.Dumbbell.add_flow net ~flow:1 ~base_rtt:(Units.ms 20.0);
  (match
     Tcpflow.Sender.rebind sender ~flow:1 ~cc ~data_limit_bytes:1000 ()
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rebind of a live slot should raise")

let test_teardown_cuts_active_flows () =
  (* A transfer far larger than the horizon can drain: teardown must cancel
     it, leave its FCT nan, and let the sim drain to empty. *)
  let schedule = [| item 0.1 20_000; item 0.2 50_000_000 |] in
  let sim, _net, churn = churn_setup schedule in
  Sim.run ~until:3.0 sim;
  Alcotest.(check int) "short one done" 1 (Churn.completed churn);
  Alcotest.(check int) "long one active" 1 (Churn.active churn);
  Churn.teardown churn;
  Sim.run ~until:10.0 sim;
  Alcotest.(check int) "no completion after teardown" 1
    (Churn.completed churn);
  Alcotest.(check bool) "cut flow keeps nan fct" true
    (Float.is_nan (Churn.fcts churn).(1));
  Alcotest.(check int) "sim drained" 0 (Sim.pending_events sim)

(* Full experiment: static long flows + workload churn, every event traced
   and replayed through the lifecycle auditor. Zero violations expected. *)
let test_traced_churn_run_audits_clean () =
  let rate_bps = Units.mbps 20.0 in
  let mean_size = 60_000.0 in
  let cfg =
    E.config ~seed:9 ~warmup:(Units.seconds 0.5) ~rate_bps
      ~buffer_bytes:
        (E.buffer_bytes_of_bdp ~rate_bps ~rtt:(Units.ms 20.0) ~bdp:3.0)
      ~duration:(Units.seconds 4.0)
      ~workload:
        {
          E.wl_arrival =
            Workload.Arrival.poisson_of_load ~load:0.3
              ~rate_bps:(rate_bps :> float) ~mean_size_bytes:mean_size;
          wl_sizes =
            Workload.Dist.Uniform { lo_bytes = 30_000; hi_bytes = 90_000 };
          wl_cca = "cubic";
          wl_rtt = Units.ms 20.0;
        }
      [
        E.flow_config ~base_rtt:(Units.ms 20.0) "cubic";
        E.flow_config ~base_rtt:(Units.ms 20.0) "bbr";
      ]
  in
  let hub = Tr.create ~ring_capacity:256 () in
  let audit =
    Audit.create ~queue_capacity_bytes:cfg.E.buffer_bytes ~lifecycle:true ()
  in
  Audit.attach audit hub;
  let live = E.setup ~trace:hub cfg in
  let sim = E.live_sim live in
  let net = E.live_net live in
  Sim.run ~until:(cfg.E.duration :> float) sim;
  let result = E.finish live in
  Tr.close hub;
  let queue = Netsim.Dumbbell.queue net in
  let link = Netsim.Dumbbell.link net in
  Audit.finalize audit
    {
      Audit.fin_time = Sim.now sim;
      fin_busy_seconds = (Netsim.Link.busy_seconds link :> float);
      fin_queue_bytes = Netsim.Droptail_queue.occupancy_bytes queue;
      fin_queue_packets = Netsim.Droptail_queue.length queue;
      fin_link_busy = Netsim.Link.busy link;
      fin_tx_slack_seconds = 1500.0 *. 8.0 /. (rate_bps :> float);
      fin_enqueued_packets = Netsim.Droptail_queue.enqueued_packets queue;
      fin_dropped_packets = Netsim.Droptail_queue.drops queue;
      fin_delivered_packets = Netsim.Link.delivered_packets link;
      fin_inflight_bytes =
        Array.to_list
          (Array.map
             (fun s ->
               (Tcpflow.Sender.flow s, Tcpflow.Sender.inflight_bytes s))
             (E.live_senders live));
      fin_completed_flows =
        Option.map Tcpflow.Churn.completed (E.live_churn live);
    };
  (match Audit.first_violation audit with
  | None -> ()
  | Some v -> Alcotest.fail (Audit.violation_to_string v));
  Alcotest.(check bool) "some short flows arrived" true
    (result.E.workload_arrived > 0);
  Alcotest.(check bool) "some short flows completed" true
    (result.E.workload_completed > 0);
  List.iter
    (fun c ->
      Alcotest.(check bool) "completion fct positive" true (c.E.cp_fct > 0.0))
    result.E.completions

let test_completions_match_schedule_on_long_horizon () =
  (* Light load and a horizon with plenty of slack: every scheduled
     transfer must complete and report back through the result record. *)
  let rate_bps = Units.mbps 10.0 in
  let cfg =
    E.config ~seed:4 ~rate_bps ~buffer_bytes:50_000
      ~duration:(Units.seconds 12.0)
      ~workload:
        {
          E.wl_arrival = Workload.Arrival.Poisson { rate_per_s = 2.0 };
          wl_sizes = Workload.Dist.Fixed 20_000;
          wl_cca = "reno";
          wl_rtt = Units.ms 20.0;
        }
      [ E.flow_config ~base_rtt:(Units.ms 20.0) "reno" ]
  in
  let live = E.setup cfg in
  let sim = E.live_sim live in
  (* Stop arrivals well before the end so stragglers can drain. *)
  Sim.run ~until:12.0 sim;
  let result = E.finish live in
  let churn = Option.get (E.live_churn live) in
  let within_slack =
    Array.for_all
      (fun it -> it.Workload.Schedule.arrival_s < 9.0)
      (Churn.schedule churn)
  in
  if within_slack then
    Alcotest.(check int) "every arrival completed"
      result.E.workload_arrived result.E.workload_completed;
  Alcotest.(check int) "one completion record per finish"
    result.E.workload_completed
    (List.length result.E.completions)

let tests =
  [
    Alcotest.test_case "completion + positive fct" `Quick
      test_completion_positive_fct;
    Alcotest.test_case "slot reuse (sequential)" `Quick
      test_slot_reuse_sequential;
    Alcotest.test_case "slot pool bounded" `Quick
      test_slot_pool_bounded_by_concurrency;
    Alcotest.test_case "flow ids monotone" `Quick test_flow_ids_never_reused;
    Alcotest.test_case "dumbbell attach/detach" `Quick
      test_dumbbell_attach_detach;
    Alcotest.test_case "dumbbell orphans" `Quick
      test_dumbbell_orphans_detached_flow;
    Alcotest.test_case "rebind guard" `Quick
      test_rebind_requires_finished_tenant;
    Alcotest.test_case "teardown" `Quick test_teardown_cuts_active_flows;
    Alcotest.test_case "traced churn audits clean" `Quick
      test_traced_churn_run_audits_clean;
    Alcotest.test_case "long-horizon completions" `Quick
      test_completions_match_schedule_on_long_horizon;
  ]
