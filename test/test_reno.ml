let mss = 1500

let test_initial_window () =
  let cc = Cca.Reno.make ~mss () in
  Alcotest.(check (float 0.0)) "10 mss" 15000.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_slow_start_doubles () =
  let cc = Cca.Reno.make ~mss () in
  (* 10 ACKs of one MSS each: slow start adds acked bytes. *)
  for _ = 1 to 10 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  Alcotest.(check (float 0.0)) "doubled" 30000.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_fast_retransmit_halves () =
  let cc = Cca.Reno.make ~mss () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
  Alcotest.(check (float 0.0)) "halved" 7500.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_congestion_avoidance_linear () =
  let cc = Cca.Reno.make ~mss () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
  (* now in CA at 7500 B; one window of ACKs adds ~1 MSS *)
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  let acks = int_of_float (w0 /. float_of_int mss) in
  for _ = 1 to acks do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  let w1 = cc.Cca.Cc_types.cwnd_bytes () in
  Alcotest.(check bool)
    (Printf.sprintf "grew ~1 mss (%.0f -> %.0f)" w0 w1)
    true
    (w1 -. w0 > 0.8 *. float_of_int mss && w1 -. w0 < 1.2 *. float_of_int mss)

let test_timeout_collapses () =
  let cc = Cca.Reno.make ~mss () in
  for _ = 1 to 50 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~timeout:true ());
  Alcotest.(check bool) "collapsed to ~1-2 mss" true
    (cc.Cca.Cc_types.cwnd_bytes () <= 2.0 *. float_of_int mss)

let test_floor () =
  let cc = Cca.Reno.make ~mss () in
  for _ = 1 to 20 do
    cc.Cca.Cc_types.on_loss (Cca_driver.loss ())
  done;
  Alcotest.(check bool) "never below 2 mss" true
    (cc.Cca.Cc_types.cwnd_bytes () >= 2.0 *. float_of_int mss)

let test_state_names () =
  let cc = Cca.Reno.make ~mss () in
  Alcotest.(check string) "slow start" "SlowStart" (cc.Cca.Cc_types.state ());
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
  Alcotest.(check string) "cong avoid" "CongAvoid" (cc.Cca.Cc_types.state ())

let test_no_pacing () =
  let cc = Cca.Reno.make ~mss () in
  Alcotest.(check bool) "ack clocked" true
    (Float.is_nan (cc.Cca.Cc_types.pacing_rate ()))

let tests =
  [
    Alcotest.test_case "initial window" `Quick test_initial_window;
    Alcotest.test_case "slow start doubles" `Quick test_slow_start_doubles;
    Alcotest.test_case "fast retransmit halves" `Quick
      test_fast_retransmit_halves;
    Alcotest.test_case "CA linear growth" `Quick
      test_congestion_avoidance_linear;
    Alcotest.test_case "timeout collapse" `Quick test_timeout_collapses;
    Alcotest.test_case "window floor" `Quick test_floor;
    Alcotest.test_case "state names" `Quick test_state_names;
    Alcotest.test_case "no pacing" `Quick test_no_pacing;
  ]
