(* Fixture: rule R6 (structural =/<> against an option constructor). *)

let waiting handle = handle = None

let armed handle = handle <> None

let fired outcome = outcome = Some ()

let fine handle = match handle with None -> true | Some _ -> false
