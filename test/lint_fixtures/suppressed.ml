(* Fixture: every violation below carries an allow comment — same line or
   the line directly above — so the linter must report nothing. *)

let jitter () = Random.float 1.0 (* simlint: allow R1 *)

(* simlint: allow R2 *)
let digest v = Marshal.to_string v []

let is_idle rate = rate = 0.0 (* simlint: allow R4 *)

let unarmed handle = handle = None (* simlint: allow R6 *)

(* simlint: allow R7 *)
let requeue sim packet = ignore (Sim.schedule sim ~delay:0.1 (fun () -> push packet))
