(* Fixture: rule R4 (exact float =/<> against a literal). *)

let is_idle rate = rate = 0.0

let not_unity gain = gain <> 1.0

let negated x = -0.5 = x
