(* Fixture: a well-behaved module; the linter must report nothing. Keyed
   lookups and updates on Hashtbl are fine (only iteration order-dependent
   operations trip R1), as are float comparisons against variables. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let lookup tbl k = Hashtbl.find_opt tbl k

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let same_rate a b = a = b
