(* Fixture: every definition below trips rule R1 (determinism). *)

let jitter () = Random.float 1.0

let dump tbl = Hashtbl.iter (fun _ _ -> ()) tbl

let stamp () = Unix.gettimeofday ()
