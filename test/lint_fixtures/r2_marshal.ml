(* Fixture: rule R2 (Marshal outside the Exec result cache). *)

let digest v = Digest.string (Marshal.to_string v [])
