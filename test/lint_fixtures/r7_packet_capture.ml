(* Fixture: rule R7 (Sim.schedule / schedule_at callback capturing a packet). *)

let resend sim packet = ignore (Sim.schedule sim ~delay:0.1 (fun () -> deliver packet))

let resend_at sim pkt = ignore (Sim.schedule_at sim ~time:1.0 (fun () -> deliver pkt))

let by_field sim p = ignore (Sim.schedule sim ~delay:0.1 (fun () -> consume p.Packet.seq))

let qualified sim packet =
  ignore (Sim_engine.Sim.schedule sim ~delay:0.2 (fun () -> deliver packet))

(* Clean: the lane API passes the packet as an argument, no closure. *)
let fine_lane sim lane p = Sim.schedule_packet sim lane ~delay:0.1 p

(* Clean: a plain timer with no packet in sight. *)
let fine_timer sim cb = ignore (Sim.schedule sim ~delay:0.1 cb)

(* Clean: [packet] is bound inside the callback, not captured. *)
let fine_bound sim ps =
  ignore (Sim.schedule sim ~delay:0.1 (fun () -> List.iter (fun packet -> consume packet) ps))
