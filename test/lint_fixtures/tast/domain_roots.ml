(* A2 fixture: [bump] runs on a spawned Domain (the packet-level [Exec]
   wrappers are thin layers over [Domain.spawn], which is what the
   synthetic manifest lists as the spawn API) and touches three pieces of
   toplevel state:

   - [hits], a bare ref: the finding;
   - [table], a Hashtbl: allowlisted in the manifest's [domain_safe];
   - [calls], an [Atomic.t]: sanctioned by construction, never a root. *)

let hits = ref 0
let table : (int, int) Hashtbl.t = Hashtbl.create 8
let calls = Atomic.make 0

let bump () =
  incr hits;
  Hashtbl.replace table (Atomic.get calls) !hits;
  Atomic.incr calls

let run () = Domain.join (Domain.spawn bump)
