(* A3 fixture: a hash-iteration order dependence two calls away from the
   determinism root. [run] -> [middle] -> [helper] where only [helper]
   touches [Hashtbl.fold]; the finding must surface at the fold even
   though the root never mentions it. The vouched chain is identical but
   its helper carries [@simlint.taint_ok] with a reason, so the taint
   stops there and [run_vouched] stays clean. *)

let helper tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
let middle tbl = helper tbl + 1
let run tbl = middle tbl

let[@simlint.taint_ok "fixture: the fold result is a sum, order-free"]
    helper_vouched tbl =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let run_vouched tbl = helper_vouched tbl
