(* A1 fixture: a miniature event queue whose hot entry points deliberately
   allocate. Compiled at test run time with [ocamlc -bin-annot] and
   analysed against a synthetic manifest (see test_lint.ml, which asserts
   findings by line — keep the two in sync when editing).

   Cases:
   - [pop] builds an option cell per call (the acceptance case);
   - [smaller] passes floats to an accidentally-polymorphic helper, so the
     call boxes both arguments;
   - [scale] builds a closure per call;
   - [pop_opt] is [pop] with a reasoned [@simlint.alloc_ok] and must be
     silent;
   - [bad_suppression] carries a reasonless attribute and must be A0;
   - [head_unsafe] allocates nothing and must never be reported. *)

type t = { mutable len : int; xs : float array }

let create n = { len = 0; xs = Array.make n 0.0 }

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.xs.(t.len)
  end

let lt a b = a < b
let smaller t v = if lt t.xs.(0) v then t.xs.(0) else v
let scale t k = Array.iteri (fun i x -> t.xs.(i) <- k *. x) t.xs

let[@simlint.alloc_ok "fixture: the option box is this API's product"] pop_opt
    t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.xs.(t.len)
  end

let[@simlint.alloc_ok] bad_suppression t = Some t.len
let head_unsafe t = t.xs.(t.len - 1)
