(* Fixture: rule R5 (raw Experiment config record literal bypassing the
   validating builder). Both the module-qualified and the bare-field
   spellings must be caught. *)

let qualified =
  { Tcpflow.Experiment.rate_bps = 1e7; duration = 10.0 }

let unqualified = { rate_bps = 1e7; flows = [ "bbr"; "cubic" ] }
