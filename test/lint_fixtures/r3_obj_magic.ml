(* Fixture: rule R3 (Obj.magic). *)

let coerce x = Obj.magic x
