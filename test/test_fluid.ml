module F = Fluidsim.Fluid_sim

let config ?(n_cubic = 1) ?(n_bbr = 1) ?(kind = F.Bbr) ?(bdp = 5.0)
    ?(mbps = 50.0) ?(rtt = 0.04) ?(duration = 30.0) ?(sync = F.Synchronized)
    () =
  let capacity_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.seconds rtt in
  let duration = Sim_engine.Units.seconds duration in
  {
    F.default_config with
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale bdp
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows =
      List.init n_cubic (fun _ -> { F.kind = F.Cubic; rtt })
      @ List.init n_bbr (fun _ -> { F.kind; rtt });
    sync;
    duration;
    warmup = Sim_engine.Units.scale (1.0 /. 3.0) duration;
  }

let test_all_cubic_fills_link () =
  let r = F.run (config ~n_cubic:4 ~n_bbr:0 ()) in
  let total = Array.fold_left ( +. ) 0.0 r.F.per_flow_bps in
  Alcotest.(check bool)
    (Printf.sprintf "total ~50 Mbps (%.1f)" (total /. 1e6))
    true
    (total > 45e6 && total < 51e6)

let test_all_bbr_fills_link () =
  let r = F.run (config ~n_cubic:0 ~n_bbr:4 ()) in
  let total = Array.fold_left ( +. ) 0.0 r.F.per_flow_bps in
  Alcotest.(check bool)
    (Printf.sprintf "total ~50 Mbps (%.1f)" (total /. 1e6))
    true
    (total > 40e6 && total < 51e6)

let test_throughput_conservation () =
  let r = F.run (config ~n_cubic:3 ~n_bbr:3 ()) in
  let total = Array.fold_left ( +. ) 0.0 r.F.per_flow_bps in
  Alcotest.(check bool) "sum <= capacity" true (total <= 50e6 *. 1.01)

let test_queue_bounded_by_buffer () =
  let cfg = config ~n_cubic:2 ~n_bbr:2 ~bdp:3.0 () in
  let r = F.run cfg in
  Alcotest.(check bool) "mean queue <= buffer" true
    (r.F.mean_queue_bytes <= (cfg.F.buffer_bytes :> float) +. 1.0);
  Alcotest.(check bool) "delay consistent" true
    (Float.abs
       (r.F.mean_queuing_delay
       -. (r.F.mean_queue_bytes /. Sim_engine.Units.bytes_per_sec cfg.F.capacity_bps))
    < 1e-9)

let test_kind_helpers () =
  let r = F.run (config ~n_cubic:2 ~n_bbr:2 ()) in
  let cubic = F.mean_bps_of_kind r F.Cubic in
  let agg = F.aggregate_bps_of_kind r F.Cubic in
  Alcotest.(check (float 1.0)) "aggregate = 2 x mean" (2.0 *. cubic) agg;
  Alcotest.(check bool) "missing kind nan" true
    (Float.is_nan (F.mean_bps_of_kind r F.Bbr2))

let test_deterministic () =
  let r1 = F.run (config ()) and r2 = F.run (config ()) in
  Alcotest.(check (array (float 0.0))) "replay identical" r1.F.per_flow_bps
    r2.F.per_flow_bps

let test_seed_matters () =
  let r1 = F.run (config ()) in
  let r2 = F.run { (config ()) with F.seed = 99 } in
  Alcotest.(check bool) "different seeds differ" true
    (r1.F.per_flow_bps <> r2.F.per_flow_bps)

let test_losses_occur () =
  let r = F.run (config ~bdp:2.0 ()) in
  Alcotest.(check bool) "loss events" true (r.F.loss_events > 0)

let test_bbr_share_declines_with_buffer () =
  let share bdp =
    let r = F.run (config ~bdp ~duration:60.0 ()) in
    F.mean_bps_of_kind r F.Bbr
  in
  Alcotest.(check bool) "shallow > deep" true (share 2.0 > share 25.0)

let test_trace_collection () =
  let r =
    F.run
      {
        (config ()) with
        F.trace_period = Sim_engine.Units.seconds 0.5;
        duration = Sim_engine.Units.seconds 10.0;
        warmup = Sim_engine.Units.seconds 3.0;
      }
  in
  Alcotest.(check bool) "trace samples" true (List.length r.F.trace >= 15);
  List.iter
    (fun s ->
      Alcotest.(check int) "w per flow" 2 (Array.length s.F.t_w);
      Alcotest.(check bool) "queue >= 0" true (s.F.t_queue >= 0.0))
    r.F.trace

let test_no_trace_by_default () =
  let r = F.run (config ~duration:5.0 ()) in
  Alcotest.(check int) "no trace" 0 (List.length r.F.trace)

let test_sync_modes_run () =
  List.iter
    (fun sync ->
      let r = F.run (config ~n_cubic:4 ~n_bbr:4 ~sync ~duration:20.0 ()) in
      let total = Array.fold_left ( +. ) 0.0 r.F.per_flow_bps in
      Alcotest.(check bool) "throughput positive" true (total > 10e6))
    [ F.Synchronized; F.Desynchronized; F.Stochastic 0.3 ]

let test_bbr2_gentler_than_bbr () =
  let mean kind =
    let r =
      F.run (config ~n_cubic:3 ~n_bbr:3 ~kind ~bdp:8.0 ~duration:60.0 ())
    in
    F.mean_bps_of_kind r kind
  in
  (* BBRv2's loss-clamped in-flight bound should not beat BBRv1. *)
  Alcotest.(check bool) "bbr2 <= bbr x 1.2" true
    (mean F.Bbr2 <= 1.2 *. mean F.Bbr)

let test_validation () =
  (match F.run { (config ()) with F.dt = Sim_engine.Units.seconds 0.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dt 0 should raise");
  (match F.run { (config ()) with F.flows = [] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no flows should raise");
  match F.run { (config ()) with F.warmup = Sim_engine.Units.seconds 100.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "warmup >= duration should raise"

let test_multi_rtt_short_flow_advantage_cubic () =
  (* All-CUBIC with mixed RTTs: the shorter-RTT flow should win. *)
  let capacity_bps = Sim_engine.Units.mbps 50.0 in
  let cfg =
    {
      F.default_config with
      capacity_bps;
      buffer_bytes =
        Sim_engine.Units.scale 5.0
          (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps
             ~rtt:(Sim_engine.Units.ms 10.0));
      flows =
        [
          { F.kind = F.Cubic; rtt = Sim_engine.Units.ms 10.0 };
          { F.kind = F.Cubic; rtt = Sim_engine.Units.ms 50.0 };
        ];
      duration = Sim_engine.Units.seconds 40.0;
      warmup = Sim_engine.Units.seconds 10.0;
    }
  in
  let r = F.run cfg in
  Alcotest.(check bool) "short RTT wins" true
    (r.F.per_flow_bps.(0) > r.F.per_flow_bps.(1))

let tests =
  [
    Alcotest.test_case "all-cubic fills link" `Quick test_all_cubic_fills_link;
    Alcotest.test_case "all-bbr fills link" `Quick test_all_bbr_fills_link;
    Alcotest.test_case "conservation" `Quick test_throughput_conservation;
    Alcotest.test_case "queue bounded" `Quick test_queue_bounded_by_buffer;
    Alcotest.test_case "kind helpers" `Quick test_kind_helpers;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed matters" `Quick test_seed_matters;
    Alcotest.test_case "losses occur" `Quick test_losses_occur;
    Alcotest.test_case "bbr declines with buffer" `Quick
      test_bbr_share_declines_with_buffer;
    Alcotest.test_case "trace collection" `Quick test_trace_collection;
    Alcotest.test_case "no trace by default" `Quick test_no_trace_by_default;
    Alcotest.test_case "sync modes run" `Quick test_sync_modes_run;
    Alcotest.test_case "bbr2 gentler" `Quick test_bbr2_gentler_than_bbr;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "multi-rtt cubic" `Quick
      test_multi_rtt_short_flow_advantage_cubic;
  ]
