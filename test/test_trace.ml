(* The telemetry layer: ring-buffer semantics, deterministic serialization,
   agreement between the event stream and the sender's own counters, and
   byte-identical trace files regardless of invocation or worker count. *)

module Sim = Sim_engine.Sim
module Units = Sim_engine.Units
module Trace = Sim_engine.Trace
module E = Tcpflow.Experiment

let record ~time ~flow event = { Trace.time; flow; event }

let test_ring_buffer () =
  let hub = Trace.create ~ring_capacity:4 () in
  for i = 0 to 9 do
    Trace.emit hub ~time:(float_of_int i) ~flow:0
      (Trace.Send { seq = i; size = 1500; retransmit = false })
  done;
  Alcotest.(check int) "emitted" 10 (Trace.emitted hub);
  Alcotest.(check int) "overwritten" 6 (Trace.overwritten hub);
  let seqs =
    List.map
      (fun r ->
        match r.Trace.event with Trace.Send { seq; _ } -> seq | _ -> -1)
      (Trace.records hub)
  in
  Alcotest.(check (list int)) "last four, in order" [ 6; 7; 8; 9 ] seqs

let test_sinks_see_everything () =
  let hub = Trace.create ~ring_capacity:2 () in
  let seen = ref 0 in
  Trace.subscribe hub (fun _ -> incr seen);
  for i = 0 to 9 do
    Trace.emit hub ~time:0.0 ~flow:0
      (Trace.Send { seq = i; size = 1500; retransmit = false })
  done;
  Alcotest.(check int) "sink count unaffected by ring size" 10 !seen

let test_serialization_deterministic () =
  let r =
    record ~time:1.25 ~flow:3
      (Trace.Ack
         { seq = 7; rtt_sample = 0.04; delivered_bytes = 1.5e4;
           inflight_bytes = 3000 })
  in
  Alcotest.(check string) "jsonl"
    "{\"t\":1.25,\"flow\":3,\"ev\":\"ack\",\"seq\":7,\"rtt\":0.04,\"delivered\":15000,\"inflight\":3000}"
    (Trace.to_jsonl r);
  Alcotest.(check string) "csv"
    "1.25,3,ack,seq=7;rtt=0.04;delivered=15000;inflight=3000"
    (Trace.to_csv_row r);
  let q = record ~time:0.5 ~flow:Trace.link_scope
      (Trace.Queue_sample { queue_bytes = 4500; queue_packets = 3 })
  in
  Alcotest.(check string) "link scope"
    "{\"t\":0.5,\"flow\":-1,\"ev\":\"queue_sample\",\"queue_bytes\":4500,\"queue_packets\":3}"
    (Trace.to_jsonl q)

(* One CUBIC flow through a 1-BDP bottleneck: enough drops to exercise
   every loss path. The stream's event counts must agree exactly with the
   sender's own counters and the queue's drop counter. *)
let traced_lossy_run () =
  let sim = Sim.create ~seed:11 () in
  let rate_bps = Units.mbps 10.0 in
  let rtt = Units.seconds 0.02 in
  let buffer_bytes =
    max Units.mss
      (Units.bytes_to_int (Units.scale 1.0 (Units.bdp_bytes ~rate_bps ~rtt)))
  in
  let hub = Trace.create () in
  let all = ref [] in
  Trace.subscribe hub (fun r -> all := r :: !all);
  let net =
    Netsim.Dumbbell.create ~trace:hub ~sim ~rate_bps ~buffer_bytes
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = rtt } ] ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss
      ~rng:(Sim_engine.Rng.split (Sim.rng sim))
  in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc ~trace:hub () in
  Sim.run ~until:10.0 sim;
  (net, sender, List.rev !all)

let count p records = List.length (List.filter p records)

let test_events_match_counters () =
  let net, sender, records = traced_lossy_run () in
  let retx =
    count
      (fun r ->
        match r.Trace.event with
        | Trace.Send { retransmit = true; _ } -> true
        | _ -> false)
      records
  in
  let losses =
    count
      (fun r ->
        match r.Trace.event with Trace.Seg_lost _ -> true | _ -> false)
      records
  in
  let drops =
    count
      (fun r -> match r.Trace.event with Trace.Drop _ -> true | _ -> false)
      records
  in
  let recoveries =
    count
      (fun r ->
        match r.Trace.event with Trace.Recovery_enter _ -> true | _ -> false)
      records
  in
  Alcotest.(check bool) "losses occurred" true (losses > 0);
  Alcotest.(check int) "retransmit events = counter"
    (Tcpflow.Sender.retransmitted_segments sender)
    retx;
  Alcotest.(check int) "seg_lost events = counter"
    (Tcpflow.Sender.lost_segments sender)
    losses;
  Alcotest.(check int) "drop events = queue drops"
    (Netsim.Droptail_queue.drops (Netsim.Dumbbell.queue net))
    drops;
  Alcotest.(check bool) "recovery entered" true (recoveries > 0)

let test_event_times_monotone () =
  let _, _, records = traced_lossy_run () in
  let rec ok = function
    | a :: (b :: _ as rest) -> a.Trace.time <= b.Trace.time && ok rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing timestamps" true (ok records)

(* Two seeded flows through the experiment runner: the Metrics rollup of
   each flow's Cc_sample events must reproduce Flow_trace.state_occupancy
   exactly (same counts, same sort). *)
let test_metrics_agree_with_flow_trace () =
  let sim = Sim.create ~seed:7 () in
  let rate_bps = Units.mbps 10.0 in
  let rtt = Units.seconds 0.02 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:50_000
      ~flows:
        [
          { Netsim.Dumbbell.flow = 0; base_rtt = rtt };
          { Netsim.Dumbbell.flow = 1; base_rtt = rtt };
        ]
      ()
  in
  let hub = Trace.create () in
  let all = ref [] in
  Trace.subscribe hub (fun r -> all := r :: !all);
  let tracers =
    List.map
      (fun (flow, name) ->
        let cc =
          Cca.Registry.create name ~mss:Units.mss
            ~rng:(Sim_engine.Rng.split (Sim.rng sim))
        in
        let sender = Tcpflow.Sender.create ~net ~flow ~cc ~trace:hub () in
        (flow, Tcpflow.Flow_trace.attach ~trace:hub ~sim ~sender ~period:0.01 ()))
      [ (0, "cubic"); (1, "bbr") ]
  in
  Sim.run ~until:5.0 sim;
  List.iter
    (fun (flow, tracer) ->
      let mine =
        List.filter (fun r -> r.Trace.flow = flow) (List.rev !all)
      in
      let summary = Trace.Metrics.of_records mine in
      Alcotest.(check (list (pair string (float 0.0))))
        (Printf.sprintf "flow %d occupancy" flow)
        (Tcpflow.Flow_trace.state_occupancy tracer)
        summary.Trace.Metrics.state_occupancy)
    tracers

(* Trace files written through Runs.eval must be byte-identical across
   invocations and worker counts: same names, same contents. *)
let eval_traced ~jobs configs =
  let dir = Filename.temp_file "trace" "" in
  Sys.remove dir;
  let ctx =
    Experiments.Common.ctx ~jobs ~trace_dir:dir Experiments.Common.Quick
  in
  ignore (Experiments.Runs.eval ctx configs);
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  let contents =
    List.map
      (fun f ->
        let ic = open_in_bin (Filename.concat dir f) in
        let s =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Sys.remove (Filename.concat dir f);
        (f, s))
      files
  in
  Sys.rmdir dir;
  contents

let test_trace_files_deterministic () =
  let configs =
    List.map
      (fun seed ->
        Experiments.Runs.config ~mode:Experiments.Common.Quick
          ~duration:(Units.seconds 2.0) ~warmup:(Units.seconds 0.5) ~mbps:10.0
          ~rtt_ms:20.0 ~buffer_bdp:2.0
          ~flows:[ E.flow_config "cubic"; E.flow_config "bbr" ]
          ~seed ())
      [ 1; 2 ]
  in
  let sequential = eval_traced ~jobs:1 configs in
  let again = eval_traced ~jobs:1 configs in
  let parallel = eval_traced ~jobs:4 configs in
  Alcotest.(check int) "two jsonl + two metrics" 4 (List.length sequential);
  Alcotest.(check (list (pair string string)))
    "repeat invocation identical" sequential again;
  Alcotest.(check (list (pair string string)))
    "jobs=4 identical to jobs=1" sequential parallel

let test_metrics_summary_line () =
  let records =
    [
      record ~time:0.0 ~flow:0
        (Trace.Send { seq = 0; size = 1500; retransmit = false });
      record ~time:0.1 ~flow:0
        (Trace.Send { seq = 0; size = 1500; retransmit = true });
      record ~time:0.2 ~flow:0
        (Trace.Seg_lost { seq = 0; via_timeout = false });
      record ~time:0.3 ~flow:Trace.link_scope
        (Trace.Queue_sample { queue_bytes = 12500; queue_packets = 9 });
    ]
  in
  let s = Trace.Metrics.of_records ~rate_bps:1e6 records in
  Alcotest.(check int) "sends" 2 s.Trace.Metrics.sends;
  Alcotest.(check int) "retransmits" 1 s.Trace.Metrics.retransmits;
  Alcotest.(check (float 1e-9)) "retransmit rate" 0.5
    s.Trace.Metrics.retransmit_rate;
  (* 12500 B at 1 Mbps = 0.1 s of queue delay, at every quantile. *)
  List.iter
    (fun (_, v) -> Alcotest.(check (float 1e-9)) "queue delay" 0.1 v)
    s.Trace.Metrics.queue_delay_quantiles;
  let line = Trace.Metrics.summary_line s in
  let contains sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "line mentions sends=2" true (contains "sends=2");
  Alcotest.(check bool) "line mentions p99" true
    (contains "p99_queue_delay=0.1")

let tests =
  [
    Alcotest.test_case "ring buffer wraps" `Quick test_ring_buffer;
    Alcotest.test_case "sinks see everything" `Quick test_sinks_see_everything;
    Alcotest.test_case "serialization" `Quick test_serialization_deterministic;
    Alcotest.test_case "events match counters" `Quick
      test_events_match_counters;
    Alcotest.test_case "event times monotone" `Quick test_event_times_monotone;
    Alcotest.test_case "metrics = flow_trace occupancy" `Quick
      test_metrics_agree_with_flow_trace;
    Alcotest.test_case "trace files deterministic" `Quick
      test_trace_files_deterministic;
    Alcotest.test_case "metrics summary" `Quick test_metrics_summary_line;
  ]
