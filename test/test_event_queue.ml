open Sim_engine

let test_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option (float 0.0))) "no peek" None (Event_queue.peek_time q);
  Alcotest.(check bool) "no pop" true (Option.is_none (Event_queue.pop q))

let test_ordering () =
  let q = Event_queue.create () in
  let order = ref [] in
  let add time tag =
    ignore (Event_queue.add q ~time (fun () -> order := tag :: !order))
  in
  add 3.0 "c";
  add 1.0 "a";
  add 2.0 "b";
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
      f ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.rev !order)

let test_fifo_ties () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Event_queue.add q ~time:1.0 (fun () -> order := i :: !order))
  done;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
      f ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ties fire in insertion order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.add q ~time:1.0 (fun () -> fired := true) in
  ignore (Event_queue.add q ~time:2.0 ignore);
  Event_queue.cancel q h;
  Alcotest.(check bool) "cancelled flag" true (Event_queue.is_cancelled q h);
  (match Event_queue.pop q with
  | Some (t, _) -> Alcotest.(check (float 1e-9)) "skips cancelled" 2.0 t
  | None -> Alcotest.fail "expected an event");
  Alcotest.(check bool) "cancelled never fires" false !fired

let test_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1.0 ignore in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  Alcotest.(check int) "size 0" 0 (Event_queue.size q)

let test_size () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~time:1.0 ignore in
  ignore (Event_queue.add q ~time:2.0 ignore);
  Alcotest.(check int) "two live" 2 (Event_queue.size q);
  Event_queue.cancel q h1;
  Alcotest.(check int) "one live after cancel" 1 (Event_queue.size q)

let test_peek_does_not_remove () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:5.0 ignore);
  Alcotest.(check (option (float 1e-9))) "peek" (Some 5.0)
    (Event_queue.peek_time q);
  Alcotest.(check (option (float 1e-9))) "peek again" (Some 5.0)
    (Event_queue.peek_time q);
  Alcotest.(check int) "still there" 1 (Event_queue.size q)

let test_growth () =
  (* Exceed the initial capacity of 64. *)
  let q = Event_queue.create () in
  for i = 0 to 999 do
    ignore (Event_queue.add q ~time:(float_of_int (999 - i)) ignore)
  done;
  Alcotest.(check int) "all queued" 1000 (Event_queue.size q);
  let prev = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, _) ->
      if t < !prev then Alcotest.fail "out of order";
      prev := t;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all popped" 1000 !count

(* [size] is maintained incrementally (length minus cancelled); it must
   agree with an externally tracked brute-force count across any interleaved
   add/cancel/pop sequence, including through compaction. A local LCG keeps
   the op stream deterministic. *)
let test_size_brute_force () =
  let q = Event_queue.create () in
  let st = ref 0x9E3779B9 in
  let next () =
    st := ((!st * 25214903917) + 11) land 0x3FFFFFFFFFFF;
    !st
  in
  let handles = ref [] in
  let count = ref 0 in
  for i = 0 to 4999 do
    (match next () mod 5 with
    | 0 | 1 | 2 ->
      let time = float_of_int (next () mod 1000) /. 16.0 in
      let h = Event_queue.add q ~time ignore in
      handles := h :: !handles;
      incr count
    | 3 -> (
      match !handles with
      | [] -> ()
      | hs ->
        (* May pick a stale handle (popped or already cancelled): cancelling
           it must be a no-op and must not disturb the count. *)
        let h = List.nth hs (next () mod List.length hs) in
        if not (Event_queue.is_cancelled q h) then begin
          Event_queue.cancel q h;
          decr count
        end
        else Event_queue.cancel q h)
    | _ -> (
      match Event_queue.pop q with
      | Some _ -> decr count
      | None -> ()));
    if Event_queue.size q <> !count then
      Alcotest.failf "after op %d: size %d, brute-force count %d" i
        (Event_queue.size q) !count
  done;
  Alcotest.(check int) "final size" !count (Event_queue.size q)

let prop_pops_sorted =
  QCheck.Test.make ~name:"pops are sorted" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 200) (float_range 0.0 100.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:t ignore)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_cancel_subset =
  QCheck.Test.make ~name:"cancelling a subset removes exactly it" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (float_range 0.0 10.0) bool))
    (fun entries ->
      let q = Event_queue.create () in
      let kept = ref 0 in
      List.iter
        (fun (t, keep) ->
          let h = Event_queue.add q ~time:t ignore in
          if keep then incr kept else Event_queue.cancel q h)
        entries;
      let rec drain n =
        match Event_queue.pop q with Some _ -> drain (n + 1) | None -> n
      in
      drain 0 = !kept)

let tests =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "size with cancellations" `Quick test_size;
    Alcotest.test_case "peek non-destructive" `Quick test_peek_does_not_remove;
    Alcotest.test_case "heap growth" `Quick test_growth;
    Alcotest.test_case "size agrees with brute force" `Quick
      test_size_brute_force;
    QCheck_alcotest.to_alcotest prop_pops_sorted;
    QCheck_alcotest.to_alcotest prop_cancel_subset;
  ]
