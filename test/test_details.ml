(* Focused corner-case tests that deepen coverage of behaviours the broader
   suites exercise only implicitly. *)

let mss = 1500

(* --- BBR gain cycling --- *)

let test_bbr_gain_cycle_phases () =
  let cc = Cca.Bbr.make ~mss ~rng:(Sim_engine.Rng.create 3) () in
  let _ =
    Cca_driver.feed_rounds cc ~rounds:10 ~per_round:10 ~rtt:0.04 ~rate:1e6
      ~start_now:0.0 ~start_round:0
  in
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:11 ());
  Alcotest.(check string) "probe bw" "ProbeBW" (cc.Cca.Cc_types.state ());
  (* Walk many rounds and collect pacing gains; the 8-phase cycle must show
     both the 1.25 up-probe and the 0.75 drain. *)
  let gains = Hashtbl.create 4 in
  let now = ref 1.0 and round = ref 11 in
  for _ = 1 to 40 do
    now := !now +. 0.05;
    incr round;
    cc.Cca.Cc_types.on_ack
      (Cca_driver.ack ~now:!now ~rtt:0.04 ~rate:1e6 ~inflight:90000
         ~round:!round ~round_start:true ());
    let rate = cc.Cca.Cc_types.pacing_rate () in
    if not (Float.is_nan rate) then
      Hashtbl.replace gains (Float.round (rate /. 1e4)) true
  done;
  (* rates are gain x btlbw(1e6): expect keys near 125, 75 and 100. *)
  Alcotest.(check bool) "up-probe seen" true (Hashtbl.mem gains 125.0);
  Alcotest.(check bool) "drain phase seen" true (Hashtbl.mem gains 75.0);
  Alcotest.(check bool) "cruise seen" true (Hashtbl.mem gains 100.0)

let test_bbr_drain_gain_below_one () =
  let cc = Cca.Bbr.make ~mss ~rng:(Sim_engine.Rng.create 3) () in
  (* Reach the bandwidth plateau with in-flight well above one BDP
     (40 kB at 1e6 B/s x 40 ms) so Drain cannot exit immediately. *)
  let _ =
    Cca_driver.feed_rounds cc ~rounds:10 ~per_round:40 ~rtt:0.04 ~rate:1e6
      ~start_now:0.0 ~start_round:0
  in
  Alcotest.(check string) "drain" "Drain" (cc.Cca.Cc_types.state ());
  let rate = cc.Cca.Cc_types.pacing_rate () in
  if Float.is_nan rate then Alcotest.fail "expected pacing"
  else Alcotest.(check bool) "pacing < btlbw" true (rate < 1e6)

(* --- CUBIC epoch restart --- *)

let test_cubic_new_wmax_after_higher_loss () =
  let cc = Cca.Cubic.make ~mss () in
  for _ = 1 to 100 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:1.0 ());
  let after_first = cc.Cca.Cc_types.cwnd_bytes () in
  (* Grow well past the old W_max, then lose again: the new back-off target
     must reflect the higher peak. *)
  let now = ref 1.0 and round = ref 0 in
  for _ = 1 to 400 do
    now := !now +. 0.04;
    incr round;
    for _ = 1 to 10 do
      cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~round:!round ())
    done
  done;
  let peak = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:!now ());
  let after_second = cc.Cca.Cc_types.cwnd_bytes () in
  Alcotest.(check bool) "peak grew" true (peak > after_first);
  Alcotest.(check (float 1.0)) "0.7 x new peak" (0.7 *. peak) after_second

(* --- Ware model: N dependence --- *)

let test_ware_more_bbr_flows_higher_share () =
  let params =
    Ccmodel.Params.of_paper_units ~mbps:100.0 ~buffer_bdp:10.0 ~rtt_ms:40.0
  in
  let f n =
    Ccmodel.Ware.bbr_fraction ~params ~n_bbr:n
      ~duration:(Sim_engine.Units.seconds 120.0)
  in
  Alcotest.(check bool) "increasing in N" true (f 10 > f 1)

(* --- NE predictor: all-BBR case --- *)

let test_ne_all_bbr_when_buffer_tiny () =
  (* At ~1 BDP the model starves CUBIC, so BBR keeps its advantage at every
     mix and the NE is all-BBR (paper's Case 1). *)
  let params =
    Ccmodel.Params.of_paper_units ~mbps:100.0 ~buffer_bdp:1.0 ~rtt_ms:40.0
  in
  let nb =
    Ccmodel.Ne.equilibrium_bbr_flows params ~n:10
      ~sync:Ccmodel.Multi_flow.Synchronized
  in
  Alcotest.(check (float 0.0)) "all BBR" 10.0 nb

(* --- Multi-flow degenerates to two-flow --- *)

let test_multi_flow_one_cubic_bounds_coincide () =
  (* With N_c = 1 the de-synchronized gamma equals 0.7, so both bounds
     collapse onto the 2-flow model. *)
  let params =
    Ccmodel.Params.of_paper_units ~mbps:50.0 ~buffer_bdp:10.0 ~rtt_ms:40.0
  in
  let iv = Ccmodel.Multi_flow.per_flow_bbr_interval params ~n_cubic:1 ~n_bbr:1 in
  Alcotest.(check (float 1e-6)) "bounds equal" iv.lower_bbr_per_flow_bps
    iv.upper_bbr_per_flow_bps;
  let two = (Ccmodel.Two_flow.solve params).bbr_bandwidth_bps in
  Alcotest.(check (float 1e-6)) "equals 2-flow model" two
    iv.lower_bbr_per_flow_bps

(* --- Best-response tie-breaking --- *)

let test_best_response_tie_smallest_index () =
  let game =
    Ccgame.Normal_form.create ~n_players:2 ~n_strategies:2
      ~payoff:(fun _ _ -> 1.0)
  in
  Alcotest.(check int) "ties pick 0" 0
    (Ccgame.Normal_form.best_response game [| 1; 1 |] ~player:0)

(* --- Sender: Vegas and Copa through the full stack under RED --- *)

let test_delay_based_ccas_under_red () =
  List.iter
    (fun cca ->
      let rate_bps = Sim_engine.Units.mbps 10.0 in
      let r =
        Tcpflow.Experiment.run
          (Tcpflow.Experiment.config ~aqm:Tcpflow.Experiment.Red_default
             ~warmup:(Sim_engine.Units.seconds 2.0) ~rate_bps
             ~buffer_bytes:
               (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps
                  ~rtt:(Sim_engine.Units.ms 20.0) ~bdp:4.0)
             ~duration:(Sim_engine.Units.seconds 8.0)
             [
               Tcpflow.Experiment.flow_config
                 ~base_rtt:(Sim_engine.Units.ms 20.0) cca;
             ])
      in
      let goodput = Tcpflow.Experiment.mean_throughput_of_cca r cca in
      Alcotest.(check bool)
        (Printf.sprintf "%s alone under RED > 5 Mbps (%.1f)" cca
           (goodput /. 1e6))
        true (goodput > 5e6))
    [ "vegas"; "copa"; "cubic" ]

(* --- Fluid trace sanity --- *)

let test_fluid_trace_bbr_fields () =
  let module F = Fluidsim.Fluid_sim in
  let capacity_bps = Sim_engine.Units.mbps 50.0 in
  let r =
    F.run
      {
        F.default_config with
        capacity_bps;
        buffer_bytes =
          Sim_engine.Units.scale 5.0
            (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps
               ~rtt:(Sim_engine.Units.ms 40.0));
        flows =
          [
            { F.kind = F.Cubic; rtt = Sim_engine.Units.ms 40.0 };
            { F.kind = F.Bbr; rtt = Sim_engine.Units.ms 40.0 };
          ];
        duration = Sim_engine.Units.seconds 20.0;
        warmup = Sim_engine.Units.seconds 5.0;
        trace_period = Sim_engine.Units.seconds 1.0;
      }
  in
  List.iter
    (fun s ->
      (* BBR's rtprop estimate must never fall below the base RTT. *)
      Alcotest.(check bool) "rtprop >= base rtt" true
        (s.F.t_rtprop.(1) >= 0.04 -. 1e-12);
      Alcotest.(check bool) "btlbw bounded by capacity x2" true
        (s.F.t_btlbw.(1) <= 2.0 *. Sim_engine.Units.bytes_per_sec capacity_bps))
    r.F.trace

(* --- Stats edge: percentile of singleton --- *)

let test_percentile_singleton () =
  Alcotest.(check (float 0.0)) "p37 of singleton" 5.0
    (Sim_engine.Stats.percentile [ 5.0 ] ~p:37.0)

let tests =
  [
    Alcotest.test_case "bbr gain cycle" `Quick test_bbr_gain_cycle_phases;
    Alcotest.test_case "bbr drain gain" `Quick test_bbr_drain_gain_below_one;
    Alcotest.test_case "cubic new wmax" `Quick
      test_cubic_new_wmax_after_higher_loss;
    Alcotest.test_case "ware N dependence" `Quick
      test_ware_more_bbr_flows_higher_share;
    Alcotest.test_case "NE all-bbr tiny buffer" `Quick
      test_ne_all_bbr_when_buffer_tiny;
    Alcotest.test_case "multi-flow degenerate" `Quick
      test_multi_flow_one_cubic_bounds_coincide;
    Alcotest.test_case "best-response ties" `Quick
      test_best_response_tie_smallest_index;
    Alcotest.test_case "delay CCAs under RED" `Quick
      test_delay_based_ccas_under_red;
    Alcotest.test_case "fluid trace bbr fields" `Quick
      test_fluid_trace_bbr_fields;
    Alcotest.test_case "percentile singleton" `Quick test_percentile_singleton;
  ]
