(* The scenario fuzzer end to end: generator determinism, replay-file
   round-trips, shrinking, and the acceptance property — an intentionally
   broken inflight accounting (injected as a stream fault) is caught by the
   auditor, shrinks to a tiny scenario, and replays deterministically. *)

module Scenario = Sim_check.Scenario
module Fuzz = Sim_check.Fuzz

let scenario_eq = Alcotest.testable (Fmt.of_to_string Scenario.to_string) ( = )

let small_scenario =
  {
    Scenario.seed = 11;
    mbps = 10.0;
    buffer_bdp = 1.0;
    base_rtt_ms = 20.0;
    duration_s = 1.0;
    aqm = Scenario.Tail;
    flows =
      [ { Scenario.f_cca = "reno"; f_rtt_ms = 20.0; f_start_s = 0.0 } ];
    workload = None;
  }

let churn_scenario =
  {
    small_scenario with
    Scenario.duration_s = 2.0;
    workload =
      Some
        {
          Scenario.w_kind = Scenario.Poisson_arrivals;
          w_load = 0.2;
          w_mean_kb = 50.0;
        };
  }

let test_generator_deterministic () =
  let a = Scenario.generate_batch ~seed:42 ~count:8 () in
  let b = Scenario.generate_batch ~seed:42 ~count:8 () in
  Alcotest.(check (list scenario_eq)) "same seed, same batch" a b;
  let c = Scenario.generate_batch ~seed:43 ~count:8 () in
  Alcotest.(check bool) "different seed, different batch" false (a = c)

let test_generator_bounds () =
  List.iter
    (fun (s : Scenario.t) ->
      Alcotest.(check bool) "flows" true
        (List.length s.flows >= 1 && List.length s.flows <= 5);
      Alcotest.(check bool) "duration" true
        (s.duration_s >= 3.0 && s.duration_s <= 8.0);
      Alcotest.(check bool) "bandwidth" true (s.mbps >= 5.0 && s.mbps <= 50.0);
      List.iter
        (fun (f : Scenario.flow) ->
          Alcotest.(check bool) (f.f_cca ^ " registered") true
            (List.mem f.f_cca (Cca.Registry.names ())))
        s.flows)
    (Scenario.generate_batch ~seed:7 ~count:32 ())

let test_roundtrip () =
  List.iter
    (fun s ->
      match Scenario.of_string (Scenario.to_string s) with
      | Ok s' -> Alcotest.(check scenario_eq) "round-trips" s s'
      | Error e -> Alcotest.failf "parse failed: %s" e)
    (small_scenario :: Scenario.generate_batch ~seed:5 ~count:16 ())

let test_of_string_rejects () =
  List.iter
    (fun (name, text) ->
      match Scenario.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: expected a parse error" name)
    [
      ("empty", "");
      ("bad header", "not a scenario\nseed 1\n");
      ("no flows", "sim_check scenario v1\nseed 1\nmbps 10.0000\n");
      ( "bad cca",
        Scenario.to_string
          {
            small_scenario with
            Scenario.flows =
              [ { Scenario.f_cca = "nope"; f_rtt_ms = 20.0; f_start_s = 0.0 } ];
          } );
    ]

let test_shrink_candidates_simpler () =
  let s = List.hd (Scenario.generate_batch ~seed:9 ~count:1 ()) in
  let candidates = Scenario.shrink_candidates s in
  Alcotest.(check bool) "has candidates" true (List.length candidates > 0);
  List.iter
    (fun (c : Scenario.t) ->
      Alcotest.(check bool) "differs from parent" false (c = s);
      Alcotest.(check bool) "never grows flows" true
        (List.length c.flows <= List.length s.flows))
    candidates

let test_clean_run_passes () =
  match Fuzz.run_scenario small_scenario with
  | Fuzz.Pass -> ()
  | o -> Alcotest.failf "clean scenario failed: %s" (Fuzz.outcome_to_string o)

(* A churn scenario runs the whole lifecycle machinery (slot reuse, mid-sim
   attach/detach, completion events) under the auditor's lifecycle checks —
   a clean pass means every invariant held on a real open-loop stream. *)
let test_clean_churn_run_passes () =
  match Fuzz.run_scenario churn_scenario with
  | Fuzz.Pass -> ()
  | o -> Alcotest.failf "churn scenario failed: %s" (Fuzz.outcome_to_string o)

let test_workload_roundtrip_and_shrink () =
  (match Scenario.of_string (Scenario.to_string churn_scenario) with
  | Ok s' -> Alcotest.(check scenario_eq) "round-trips" churn_scenario s'
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let candidates = Scenario.shrink_candidates churn_scenario in
  Alcotest.(check bool) "leads with dropping the workload" true
    (match candidates with
    | first :: _ -> Option.is_none first.Scenario.workload
    | [] -> false);
  Alcotest.(check bool) "offers a halved load" true
    (List.exists
       (fun (c : Scenario.t) ->
         match c.Scenario.workload with
         | Some w -> w.Scenario.w_load < 0.2
         | None -> false)
       candidates)

let test_run_deterministic () =
  let fault = Option.get (Fuzz.fault_named "inflight") in
  let a = Fuzz.run_scenario ~fault small_scenario in
  let b = Fuzz.run_scenario ~fault small_scenario in
  Alcotest.(check string) "same verdict" (Fuzz.outcome_to_string a)
    (Fuzz.outcome_to_string b)

(* The acceptance property: broken inflight accounting is caught, shrinks
   to a <= 2-flow scenario, and the saved replay reproduces the identical
   violation. *)
let test_fault_caught_shrunk_replayed () =
  let fault = Option.get (Fuzz.fault_named "inflight") in
  let c = Fuzz.campaign ~fault ~count:3 ~seed:7 () in
  Alcotest.(check int) "every case caught" 3 (List.length c.Fuzz.failures);
  let first = List.hd c.Fuzz.failures in
  (match first.Fuzz.case_outcome with
  | Fuzz.Violation v ->
    Alcotest.(check string) "the right invariant" "inflight-mismatch"
      v.Sim_check.Audit.invariant
  | o -> Alcotest.failf "expected a violation, got %s" (Fuzz.outcome_to_string o));
  let shrunk = Fuzz.shrink ~fault first.Fuzz.case_scenario in
  Alcotest.(check bool) "shrinks to <= 2 flows" true
    (List.length shrunk.Scenario.flows <= 2);
  let path = Filename.temp_file "fuzz_replay" ".scenario" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scenario.save ~path shrunk;
      match (Fuzz.replay ~fault path, Fuzz.run_scenario ~fault shrunk) with
      | Ok (loaded, replayed), direct ->
        Alcotest.(check scenario_eq) "file preserves scenario" shrunk loaded;
        Alcotest.(check string) "replay = direct run"
          (Fuzz.outcome_to_string direct)
          (Fuzz.outcome_to_string replayed);
        (match replayed with
        | Fuzz.Violation _ -> ()
        | o ->
          Alcotest.failf "replay no longer fails: %s" (Fuzz.outcome_to_string o))
      | Error e, _ -> Alcotest.failf "replay failed to load: %s" e)

let test_clean_campaign () =
  let c = Fuzz.campaign ~count:4 ~seed:3 () in
  Alcotest.(check int) "total" 4 c.Fuzz.total;
  Alcotest.(check int) "all passed" 4 c.Fuzz.passed;
  Alcotest.(check (list Alcotest.reject)) "no failures" [] c.Fuzz.failures

let test_campaign_jobs_invariant () =
  let fault = Option.get (Fuzz.fault_named "delivered-rewind") in
  let seq = Fuzz.campaign ~fault ~count:4 ~seed:13 () in
  let par = Fuzz.campaign ~fault ~jobs:4 ~count:4 ~seed:13 () in
  Alcotest.(check int) "same verdicts" seq.Fuzz.passed par.Fuzz.passed;
  Alcotest.(check (list int)) "same failing cases"
    (List.map (fun f -> f.Fuzz.case_index) seq.Fuzz.failures)
    (List.map (fun f -> f.Fuzz.case_index) par.Fuzz.failures)

(* --- analytic-backend fuzzing ---------------------------------------- *)

let test_generator_cca_filter () =
  let ccas = [ "cubic"; "bbr" ] in
  List.iter
    (fun (s : Scenario.t) ->
      List.iter
        (fun (f : Scenario.flow) ->
          Alcotest.(check bool) (f.Scenario.f_cca ^ " allowed") true
            (List.mem f.Scenario.f_cca ccas))
        s.Scenario.flows)
    (Scenario.generate_batch ~ccas ~seed:21 ~count:24 ())

let test_backend_clean_campaign () =
  List.iter
    (fun backend ->
      let c =
        Fuzz.backend_campaign ~backend ~jobs:2 ~count:6 ~seed:3 ()
      in
      Alcotest.(check int) (Sim_backend.name backend ^ " total") 6 c.Fuzz.total;
      List.iter
        (fun f ->
          Alcotest.failf "%s case %d: %s" (Sim_backend.name backend)
            f.Fuzz.case_index
            (Fuzz.outcome_to_string f.Fuzz.case_outcome))
        c.Fuzz.failures)
    [ Sim_backend.fluid; Sim_backend.ode ]

let test_backend_run_deterministic () =
  let s =
    List.hd
      (Scenario.generate_batch ~ccas:[ "cubic"; "bbr"; "bbr2" ] ~seed:5
         ~count:1 ())
  in
  let a = Fuzz.run_scenario_backend ~backend:Sim_backend.ode s in
  let b = Fuzz.run_scenario_backend ~backend:Sim_backend.ode s in
  Alcotest.(check string) "same verdict" (Fuzz.outcome_to_string a)
    (Fuzz.outcome_to_string b)

let test_backend_unsupported_cca_is_crash () =
  (* [small_scenario] runs reno, which the analytic backends reject. *)
  match Fuzz.run_scenario_backend ~backend:Sim_backend.fluid small_scenario with
  | Fuzz.Crash _ -> ()
  | o ->
    Alcotest.failf "expected a crash on reno, got %s"
      (Fuzz.outcome_to_string o)

let test_backend_shrink_keeps_passing_scenario () =
  let s =
    List.hd
      (Scenario.generate_batch ~ccas:[ "cubic"; "bbr"; "bbr2" ] ~seed:17
         ~count:1 ())
  in
  Alcotest.(check scenario_eq) "no shrink on a passing scenario" s
    (Fuzz.shrink_backend ~backend:Sim_backend.fluid s)

let tests =
  [
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generator bounds" `Quick test_generator_bounds;
    Alcotest.test_case "replay file round-trip" `Quick test_roundtrip;
    Alcotest.test_case "of_string rejects junk" `Quick test_of_string_rejects;
    Alcotest.test_case "shrink candidates simpler" `Quick
      test_shrink_candidates_simpler;
    Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
    Alcotest.test_case "clean churn run passes" `Quick
      test_clean_churn_run_passes;
    Alcotest.test_case "workload round-trip and shrink" `Quick
      test_workload_roundtrip_and_shrink;
    Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "fault caught, shrunk, replayed" `Slow
      test_fault_caught_shrunk_replayed;
    Alcotest.test_case "clean campaign" `Slow test_clean_campaign;
    Alcotest.test_case "campaign jobs-invariant" `Slow
      test_campaign_jobs_invariant;
    Alcotest.test_case "generator CCA filter" `Quick test_generator_cca_filter;
    Alcotest.test_case "backend campaigns clean" `Slow
      test_backend_clean_campaign;
    Alcotest.test_case "backend run deterministic" `Quick
      test_backend_run_deterministic;
    Alcotest.test_case "backend rejects unsupported CCA as crash" `Quick
      test_backend_unsupported_cca_is_crash;
    Alcotest.test_case "backend shrink keeps passing scenario" `Quick
      test_backend_shrink_keeps_passing_scenario;
  ]
