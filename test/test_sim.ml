open Sim_engine

let test_initial_time () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Sim.now sim)

let test_schedule_and_run () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := ("b", Sim.now sim) :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := ("a", Sim.now sim) :: !log));
  Sim.run sim;
  match List.rev !log with
  | [ ("a", t1); ("b", t2) ] ->
    Alcotest.(check (float 1e-12)) "first at 1" 1.0 t1;
    Alcotest.(check (float 1e-12)) "second at 2" 2.0 t2
  | _ -> Alcotest.fail "wrong event sequence"

let test_nested_scheduling () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         fired := 1 :: !fired;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> fired := 2 :: !fired))));
  Sim.run sim;
  Alcotest.(check (list int)) "nested fires" [ 1; 2 ] (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock at 1.5" 1.5 (Sim.now sim)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> incr fired));
  Sim.run ~until:2.0 sim;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 1e-12)) "clock clamped to limit" 2.0 (Sim.now sim)

let test_run_until_idle_clock () =
  let sim = Sim.create () in
  Sim.run ~until:10.0 sim;
  Alcotest.(check (float 1e-12)) "idle clock advances to limit" 10.0
    (Sim.now sim)

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1.0) ignore))

let test_past_schedule_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:5.0 ignore);
  Sim.run sim;
  match Sim.schedule_at sim ~time:1.0 ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_cancel_via_sim () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired

let test_pending_events () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1.0 ignore);
  ignore (Sim.schedule sim ~delay:2.0 ignore);
  Alcotest.(check int) "two pending" 2 (Sim.pending_events sim);
  Sim.run sim;
  Alcotest.(check int) "none pending" 0 (Sim.pending_events sim)

let test_seeded_rng () =
  let sim1 = Sim.create ~seed:5 () and sim2 = Sim.create ~seed:5 () in
  Alcotest.(check int64) "same rng stream"
    (Rng.int64 (Sim.rng sim1))
    (Rng.int64 (Sim.rng sim2))

let test_resume_run () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> incr fired));
  Sim.run ~until:2.0 sim;
  Alcotest.(check int) "one fired" 1 !fired;
  Sim.run ~until:4.0 sim;
  Alcotest.(check int) "both fired after resume" 2 !fired

let tests =
  [
    Alcotest.test_case "initial time" `Quick test_initial_time;
    Alcotest.test_case "schedule and run" `Quick test_schedule_and_run;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "idle clock advance" `Quick test_run_until_idle_clock;
    Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
    Alcotest.test_case "past schedule" `Quick test_past_schedule_rejected;
    Alcotest.test_case "cancel" `Quick test_cancel_via_sim;
    Alcotest.test_case "pending events" `Quick test_pending_events;
    Alcotest.test_case "seeded rng" `Quick test_seeded_rng;
    Alcotest.test_case "resume run" `Quick test_resume_run;
  ]
