(* Tests for the extension features: RED AQM, data-limited (short) flows,
   and the extension experiment helpers. *)

module Sim = Sim_engine.Sim
module Units = Sim_engine.Units
module Q = Netsim.Droptail_queue

let mk_packet ?(flow = 0) ?(seq = 0) ?(size = 1500) () =
  Netsim.Packet.make ~flow ~seq ~size ~retransmit:false ~sent_time:0.0
    ~delivered:0.0 ~delivered_time:0.0 ~app_limited:false

(* --- RED policy --- *)

let red_policy ?(min_th = 10_000.0) ?(max_th = 30_000.0) ?(max_p = 0.5)
    ?(weight = 0.5) () =
  Q.Red
    {
      min_threshold = min_th;
      max_threshold = max_th;
      max_p;
      weight;
      rng = Sim_engine.Rng.create 7;
    }

let test_red_no_drop_below_min () =
  let q = Q.create ~policy:(red_policy ()) ~capacity_bytes:100_000 () in
  (* 6 packets = 9000 B, below min_th even instantaneously. *)
  for seq = 0 to 5 do
    match Q.enqueue q (mk_packet ~seq ()) with
    | Q.Enqueued -> ()
    | Q.Dropped -> Alcotest.fail "drop below min threshold"
  done;
  Alcotest.(check int) "no early drops" 0 (Q.early_drops q)

let test_red_drops_early_above_min () =
  let q = Q.create ~policy:(red_policy ()) ~capacity_bytes:1_000_000 () in
  (* Push far beyond max_th without draining; with weight 0.5 the EWMA
     tracks quickly and early drops must appear well before the 1 MB
     capacity. *)
  for seq = 0 to 199 do
    ignore (Q.enqueue q (mk_packet ~seq ()))
  done;
  Alcotest.(check bool) "early drops happened" true (Q.early_drops q > 0);
  Alcotest.(check bool) "queue never filled" true
    (Q.occupancy_bytes q < 1_000_000)

let test_red_tail_drop_still_applies () =
  let q = Q.create ~policy:(red_policy ~max_p:0.01 ~min_th:1e9 ~max_th:2e9 ())
      ~capacity_bytes:3000 ()
  in
  (* Thresholds so high RED never fires: capacity still enforced. *)
  ignore (Q.enqueue q (mk_packet ~seq:0 ()));
  ignore (Q.enqueue q (mk_packet ~seq:1 ()));
  Alcotest.(check bool) "tail drop" true
    (Q.enqueue q (mk_packet ~seq:2 ()) = Q.Dropped);
  Alcotest.(check int) "not an early drop" 0 (Q.early_drops q)

let test_red_average_tracks () =
  let q = Q.create ~policy:(red_policy ~weight:1.0 ()) ~capacity_bytes:100_000 () in
  ignore (Q.enqueue q (mk_packet ~seq:0 ()));
  ignore (Q.enqueue q (mk_packet ~seq:1 ()));
  (* weight 1.0: avg equals the instantaneous occupancy before the last
     arrival. *)
  Alcotest.(check (float 1.0)) "ewma" 1500.0 (Q.average_queue_bytes q)

let test_red_param_validation () =
  match
    Q.create ~policy:(red_policy ~min_th:10.0 ~max_th:5.0 ())
      ~capacity_bytes:1000 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_th <= min_th should raise"

let test_red_defaults_shape () =
  match Q.red_defaults ~rng:(Sim_engine.Rng.create 1) ~capacity_bytes:100_000 with
  | Q.Red { min_threshold; max_threshold; max_p; _ } ->
    Alcotest.(check (float 1.0)) "min" 25_000.0 min_threshold;
    Alcotest.(check (float 1.0)) "max" 75_000.0 max_threshold;
    Alcotest.(check (float 0.0)) "max_p" 0.1 max_p
  | Q.Tail_drop -> Alcotest.fail "expected RED"

let test_red_experiment_runs () =
  let rate_bps = Units.mbps 20.0 in
  let config =
    Tcpflow.Experiment.config ~aqm:Tcpflow.Experiment.Red_default
      ~warmup:(Units.seconds 3.0) ~rate_bps
      ~buffer_bytes:
        (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt:(Units.ms 20.0)
           ~bdp:5.0)
      ~duration:(Units.seconds 10.0)
      [
        Tcpflow.Experiment.flow_config ~base_rtt:(Units.ms 20.0) "cubic";
        Tcpflow.Experiment.flow_config ~base_rtt:(Units.ms 20.0) "bbr";
      ]
  in
  let red = Tcpflow.Experiment.run config in
  let droptail =
    Tcpflow.Experiment.run { config with aqm = Tcpflow.Experiment.Tail_drop }
  in
  Alcotest.(check bool) "red utilizes link" true (red.utilization > 0.7);
  Alcotest.(check bool) "red keeps shorter queue" true
    (red.queuing_delay <= droptail.queuing_delay +. 1e-3)

(* --- Data-limited flows --- *)

let short_flow_setup ~data_limit_bytes =
  let sim = Sim.create ~seed:2 () in
  let rate_bps = Units.mbps 10.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ]
      ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1)
  in
  let sender =
    Tcpflow.Sender.create ~net ~flow:0 ~cc ~data_limit_bytes ()
  in
  (sim, sender)

let test_short_flow_completes () =
  let sim, sender = short_flow_setup ~data_limit_bytes:150_000 in
  Sim.run ~until:5.0 sim;
  Alcotest.(check bool) "completed" true (Tcpflow.Sender.completed sender);
  Alcotest.(check (float 1500.0)) "delivered exactly the limit" 150_000.0
    (Tcpflow.Sender.delivered_bytes sender)

let test_short_flow_stops_sending () =
  let sim, sender = short_flow_setup ~data_limit_bytes:30_000 in
  Sim.run ~until:5.0 sim;
  let delivered_at_5 = Tcpflow.Sender.delivered_bytes sender in
  Sim.run ~until:8.0 sim;
  Alcotest.(check (float 0.0)) "no more data after completion" delivered_at_5
    (Tcpflow.Sender.delivered_bytes sender);
  Alcotest.(check int) "sim drains (no RTO respawn)" 0
    (Sim.pending_events sim)

let test_bulk_flow_never_completes () =
  let sim = Sim.create ~seed:2 () in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps:(Units.mbps 10.0)
      ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ]
      ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1)
  in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc () in
  Sim.run ~until:2.0 sim;
  Alcotest.(check bool) "bulk never completes" false
    (Tcpflow.Sender.completed sender)

let test_short_flow_limit_validation () =
  match short_flow_setup ~data_limit_bytes:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limit 0 should raise"

let test_short_flow_with_losses () =
  (* Tiny buffer forces drops; the flow must still complete via
     retransmissions. *)
  let sim = Sim.create ~seed:3 () in
  let rate_bps = Units.mbps 10.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:(3 * Units.mss)
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ]
      ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1)
  in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc ~data_limit_bytes:200_000 () in
  Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "completed despite drops" true
    (Tcpflow.Sender.completed sender)

(* --- Extension drivers (structure-level smoke tests) --- *)

let test_catalog_has_extensions () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (Option.is_some (Experiments.Catalog.find id)))
    [ "ext-red"; "ext-utility"; "ext-short"; "ext-internals"; "ext-2flow" ]

let test_catalog_count () =
  Alcotest.(check int) "20 artifacts" 20
    (List.length (Experiments.Catalog.ids ()))

let tests =
  [
    Alcotest.test_case "RED below min" `Quick test_red_no_drop_below_min;
    Alcotest.test_case "RED early drops" `Quick test_red_drops_early_above_min;
    Alcotest.test_case "RED tail backstop" `Quick
      test_red_tail_drop_still_applies;
    Alcotest.test_case "RED ewma" `Quick test_red_average_tracks;
    Alcotest.test_case "RED validation" `Quick test_red_param_validation;
    Alcotest.test_case "RED defaults" `Quick test_red_defaults_shape;
    Alcotest.test_case "RED experiment" `Quick test_red_experiment_runs;
    Alcotest.test_case "short flow completes" `Quick test_short_flow_completes;
    Alcotest.test_case "short flow stops" `Quick test_short_flow_stops_sending;
    Alcotest.test_case "bulk never completes" `Quick
      test_bulk_flow_never_completes;
    Alcotest.test_case "limit validation" `Quick
      test_short_flow_limit_validation;
    Alcotest.test_case "short flow with losses" `Quick
      test_short_flow_with_losses;
    Alcotest.test_case "catalog extensions" `Quick test_catalog_has_extensions;
    Alcotest.test_case "catalog count" `Quick test_catalog_count;
  ]
