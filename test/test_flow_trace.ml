module Sim = Sim_engine.Sim
module Units = Sim_engine.Units

let setup () =
  let sim = Sim.create ~seed:4 () in
  let rate_bps = Units.mbps 10.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:100_000
      ~flows:[ { Netsim.Dumbbell.flow = 0; base_rtt = Units.ms 20.0 } ]
      ()
  in
  let cc =
    Cca.Registry.create "cubic" ~mss:Units.mss ~rng:(Sim_engine.Rng.create 1)
  in
  let sender = Tcpflow.Sender.create ~net ~flow:0 ~cc () in
  (sim, sender)

let test_samples_collected () =
  let sim, sender = setup () in
  let trace = Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.1 () in
  Sim.run ~until:2.0 sim;
  let samples = Tcpflow.Flow_trace.samples trace in
  Alcotest.(check bool) "about 20 samples" true
    (List.length samples >= 19 && List.length samples <= 22);
  (* chronological order *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Tcpflow.Flow_trace.time <= b.Tcpflow.Flow_trace.time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted samples)

let test_stop () =
  let sim, sender = setup () in
  let trace = Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.1 () in
  Sim.run ~until:1.0 sim;
  Tcpflow.Flow_trace.stop trace;
  let n = List.length (Tcpflow.Flow_trace.samples trace) in
  Sim.run ~until:2.0 sim;
  Alcotest.(check int) "no more samples after stop" n
    (List.length (Tcpflow.Flow_trace.samples trace))

let test_throughput_between () =
  let sim, sender = setup () in
  let trace = Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.05 () in
  Sim.run ~until:5.0 sim;
  let goodput = Tcpflow.Flow_trace.throughput_between trace ~from_:1.0 ~until:5.0 in
  (* Single cubic flow on a 10 Mbps link: near line rate. *)
  Alcotest.(check bool)
    (Printf.sprintf "goodput ~10 Mbps (%.2f)" (goodput /. 1e6))
    true
    (goodput > 8.5e6 && goodput < 10.5e6)

let test_csv_shape () =
  let sim, sender = setup () in
  let trace = Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.1 () in
  Sim.run ~until:1.0 sim;
  let csv = Tcpflow.Flow_trace.to_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check bool) "header + samples" true
    (List.length lines = 1 + List.length (Tcpflow.Flow_trace.samples trace));
  Alcotest.(check string) "header"
    "time,cwnd_bytes,inflight_bytes,pacing_Bps,delivered_bytes,state"
    (List.hd lines)

let test_state_occupancy () =
  let sim, sender = setup () in
  let trace = Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.1 () in
  Sim.run ~until:2.0 sim;
  let occupancy = Tcpflow.Flow_trace.state_occupancy trace in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 occupancy in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 total;
  Alcotest.(check bool) "descending" true
    (match occupancy with
    | (_, a) :: (_, b) :: _ -> a >= b
    | _ -> true)

let test_period_validation () =
  let sim, sender = setup () in
  match Tcpflow.Flow_trace.attach ~sim ~sender ~period:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "period 0 should raise"

let tests =
  [
    Alcotest.test_case "samples collected" `Quick test_samples_collected;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "throughput between" `Quick test_throughput_between;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "state occupancy" `Quick test_state_occupancy;
    Alcotest.test_case "period validation" `Quick test_period_validation;
  ]
