module E = Tcpflow.Experiment
module Units = Sim_engine.Units

let quick_config ?(flows = [ E.flow_config "cubic"; E.flow_config "bbr" ]) () =
  let rate_bps = Units.mbps 20.0 in
  E.config ~warmup:(Units.seconds 2.0) ~rate_bps
    ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt:(Units.ms 40.0) ~bdp:3.0)
    ~duration:(Units.seconds 8.0) flows

let test_utilization_high () =
  let r = E.run (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "utilization (%.2f)" r.E.utilization)
    true (r.E.utilization > 0.9)

let test_throughput_sums_to_capacity () =
  let r = E.run (quick_config ()) in
  let total =
    List.fold_left (fun acc f -> acc +. f.E.throughput_bps) 0.0 r.E.per_flow
  in
  Alcotest.(check bool)
    (Printf.sprintf "sum ~capacity (%.1f Mbps)" (total /. 1e6))
    true
    (total > 0.85 *. 20e6 && total < 1.02 *. 20e6)

let test_per_cca_helpers () =
  let r = E.run (quick_config ()) in
  let cubic = E.throughput_of_cca r "cubic" in
  Alcotest.(check int) "one cubic flow" 1 (List.length cubic);
  Alcotest.(check bool) "mean = value" true
    (E.mean_throughput_of_cca r "cubic" = List.hd cubic);
  Alcotest.(check bool) "aggregate = value" true
    (E.aggregate_throughput_of_cca r "cubic" = List.hd cubic);
  Alcotest.(check bool) "missing cca nan" true
    (Float.is_nan (E.mean_throughput_of_cca r "reno"))

let test_class_occupancy_present () =
  let r = E.run (quick_config ()) in
  let mean name = List.assoc name r.E.class_mean_bytes in
  Alcotest.(check bool) "cubic occupies buffer" true (mean "cubic" > 0.0);
  Alcotest.(check bool) "bbr occupies buffer" true (mean "bbr" > 0.0)

let test_queuing_delay_bounded () =
  let r = E.run (quick_config ()) in
  (* Buffer is 3 BDP = 120 ms of queue at most. *)
  Alcotest.(check bool)
    (Printf.sprintf "qdelay <= 0.125s (%.3f)" r.E.queuing_delay)
    true
    (r.E.queuing_delay >= 0.0 && r.E.queuing_delay <= 0.125)

let test_warmup_validation () =
  let config = { (quick_config ()) with warmup = Units.seconds 9.0 } in
  match E.run config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "warmup >= duration should raise"

let test_buffer_bytes_of_bdp () =
  Alcotest.(check int) "3 bdp at 20 Mbps x 40 ms" 300_000
    (E.buffer_bytes_of_bdp ~rate_bps:(Units.mbps 20.0) ~rtt:(Units.ms 40.0)
       ~bdp:3.0);
  Alcotest.(check int) "floor one mss" Units.mss
    (E.buffer_bytes_of_bdp ~rate_bps:(Units.mbps 1.0) ~rtt:(Units.ms 1.0)
       ~bdp:0.001)

let test_flow_result_metadata () =
  let r = E.run (quick_config ()) in
  let f = List.hd r.E.per_flow in
  Alcotest.(check int) "flow id" 0 f.E.flow_id;
  Alcotest.(check string) "cca" "cubic" f.E.flow_cca;
  Alcotest.(check (float 0.0)) "rtt" 0.04 f.E.flow_rtt

let test_multi_rtt_flows () =
  let flows =
    [
      E.flow_config ~base_rtt:(Units.ms 10.0) "cubic";
      E.flow_config ~base_rtt:(Units.ms 50.0) "cubic";
    ]
  in
  let r = E.run (quick_config ~flows ()) in
  let short = List.nth r.E.per_flow 0 and long = List.nth r.E.per_flow 1 in
  Alcotest.(check bool) "short RTT cubic wins" true
    (short.E.throughput_bps > long.E.throughput_bps);
  Alcotest.(check bool) "short rtt min sane" true
    (short.E.flow_min_rtt >= 0.01 && short.E.flow_min_rtt < 0.02)

let test_deterministic () =
  let r1 = E.run (quick_config ()) and r2 = E.run (quick_config ()) in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 0.0)) "same throughput" a.E.throughput_bps
        b.E.throughput_bps)
    r1.E.per_flow r2.E.per_flow

let tests =
  [
    Alcotest.test_case "utilization" `Quick test_utilization_high;
    Alcotest.test_case "throughput sums" `Quick
      test_throughput_sums_to_capacity;
    Alcotest.test_case "per-cca helpers" `Quick test_per_cca_helpers;
    Alcotest.test_case "class occupancy" `Quick test_class_occupancy_present;
    Alcotest.test_case "queuing delay bound" `Quick test_queuing_delay_bounded;
    Alcotest.test_case "warmup validation" `Quick test_warmup_validation;
    Alcotest.test_case "buffer sizing" `Quick test_buffer_bytes_of_bdp;
    Alcotest.test_case "flow metadata" `Quick test_flow_result_metadata;
    Alcotest.test_case "multi-rtt" `Quick test_multi_rtt_flows;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
