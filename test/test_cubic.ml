let mss = 1500

let make ?params () = Cca.Cubic.make ?params ~mss ()

let test_multiplicative_decrease_factor () =
  Alcotest.(check (float 1e-12)) "0.7"
    0.7
    (Cca.Cubic.multiplicative_decrease Cca.Cubic.default_params)

let test_backoff_to_07 () =
  let cc = make () in
  (* slow start up to ~100 pkts *)
  for _ = 1 to 90 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  let before = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:10.0 ());
  let after = cc.Cca.Cc_types.cwnd_bytes () in
  Alcotest.(check (float 1.0)) "w *= 0.7" (0.7 *. before) after

let test_cubic_recovery_toward_wmax () =
  let cc = make () in
  for _ = 1 to 90 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  let w_max = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:10.0 ());
  (* K = cbrt(W_max(in mss) * 0.3 / 0.4); after K seconds cwnd ~ W_max *)
  let k = Float.cbrt (w_max /. 1500.0 *. 0.3 /. 0.4) in
  let now = ref 10.0 and round = ref 1 in
  while !now < 10.0 +. k +. 0.5 do
    now := !now +. 0.04;
    incr round;
    for _ = 1 to 20 do
      cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~round:!round ())
    done
  done;
  let recovered = cc.Cca.Cc_types.cwnd_bytes () in
  Alcotest.(check bool)
    (Printf.sprintf "recovered to ~W_max (%.0f vs %.0f)" recovered w_max)
    true
    (recovered >= 0.9 *. w_max)

let test_concave_growth_slows_near_wmax () =
  (* Drive a full recovery with window-proportional ACK rates and verify
     the cubic shape: fast growth right after back-off, a plateau around
     t = K (growth near zero), acceleration beyond K. *)
  let cc = make () in
  for _ = 1 to 200 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  let w_max = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:10.0 ());
  let k = Float.cbrt (w_max /. 1500.0 *. 0.3 /. 0.4) in
  let now = ref 10.0 and round = ref 0 in
  let growth_until stop =
    let w0 = cc.Cca.Cc_types.cwnd_bytes () in
    let dt = ref 0.0 in
    while !now < stop do
      now := !now +. 0.04;
      dt := !dt +. 0.04;
      incr round;
      let acks =
        max 1 (int_of_float (cc.Cca.Cc_types.cwnd_bytes () /. 1500.0))
      in
      for _ = 1 to acks do
        cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~round:!round ())
      done
    done;
    (cc.Cca.Cc_types.cwnd_bytes () -. w0) /. !dt
  in
  let early = growth_until (10.0 +. (0.3 *. k)) in
  let plateau = growth_until (10.0 +. (1.1 *. k)) in
  Alcotest.(check bool)
    (Printf.sprintf "plateau slower than early (%.0f vs %.0f B/s)" plateau
       early)
    true
    (plateau < early)

let test_timeout_collapse () =
  let cc = make () in
  for _ = 1 to 100 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~timeout:true ());
  Alcotest.(check bool) "collapsed" true
    (cc.Cca.Cc_types.cwnd_bytes () <= 2.0 *. float_of_int mss)

let test_tcp_friendly_floor () =
  (* With the Reno-tracking region on, sustained CA growth should be at
     least Reno-fast for small windows. *)
  let params = { Cca.Cubic.default_params with tcp_friendly = true } in
  let cc = make ~params () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:0.0 ());
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  let now = ref 0.0 and round = ref 0 in
  for _ = 1 to 25 do
    now := !now +. 0.04;
    incr round;
    let acks = int_of_float (cc.Cca.Cc_types.cwnd_bytes () /. 1500.0) in
    for _ = 1 to acks do
      cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~round:!round ())
    done
  done;
  let w1 = cc.Cca.Cc_types.cwnd_bytes () in
  (* Reno would add ~0.45 mss/rtt (alpha = 3*0.3/1.7 ~ 0.53); cubic's own
     growth near W_max is tiny, so the friendly region should dominate. *)
  Alcotest.(check bool)
    (Printf.sprintf "grew (%.0f -> %.0f)" w0 w1)
    true
    (w1 -. w0 >= 5.0 *. float_of_int mss)

let test_no_pacing () =
  let cc = make () in
  Alcotest.(check bool) "ack clocked" true
    (Float.is_nan (cc.Cca.Cc_types.pacing_rate ()))

let test_k_formula () =
  (* After a loss at W, K should equal cbrt(0.3 W_mss / 0.4): check through
     the recovery time: cwnd(t=K) = W_max. Use W = 100 pkts -> K = cbrt(75)
     ~ 4.217 s. *)
  let cc = make () in
  for _ = 1 to 90 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
  done;
  let w_max = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:0.0 ());
  let k = Float.cbrt (w_max /. 1500.0 *. 0.3 /. 0.4) in
  (* Drive acks sparsely until just before K: window must stay below W_max *)
  let now = ref 0.0 and round = ref 0 in
  while !now < k -. 0.5 do
    now := !now +. 0.04;
    incr round;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~round:!round ())
  done;
  Alcotest.(check bool) "below W_max before K" true
    (cc.Cca.Cc_types.cwnd_bytes () < w_max)

let prop_backoff_factor_in_range =
  QCheck.Test.make ~name:"cubic backoff always to 0.7 (above floor)" ~count:50
    (QCheck.int_range 10 400)
    (fun pkts ->
      let cc = make () in
      for _ = 1 to pkts do
        cc.Cca.Cc_types.on_ack (Cca_driver.ack ())
      done;
      let before = cc.Cca.Cc_types.cwnd_bytes () in
      cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
      let after = cc.Cca.Cc_types.cwnd_bytes () in
      Float.abs (after -. Float.max (0.7 *. before) 3000.0) < 1.0)

let tests =
  [
    Alcotest.test_case "decrease factor" `Quick
      test_multiplicative_decrease_factor;
    Alcotest.test_case "backoff to 0.7" `Quick test_backoff_to_07;
    Alcotest.test_case "recovery toward W_max" `Quick
      test_cubic_recovery_toward_wmax;
    Alcotest.test_case "concave growth" `Quick
      test_concave_growth_slows_near_wmax;
    Alcotest.test_case "timeout collapse" `Quick test_timeout_collapse;
    Alcotest.test_case "tcp-friendly floor" `Quick test_tcp_friendly_floor;
    Alcotest.test_case "no pacing" `Quick test_no_pacing;
    Alcotest.test_case "K formula" `Quick test_k_formula;
    QCheck_alcotest.to_alcotest prop_backoff_factor_in_range;
  ]
