(* The parallel executor and on-disk result cache (Sim_engine.Exec).

   The contract under test is the one the experiment drivers rely on:
   results are bit-identical whatever the jobs count, cache hits skip the
   simulator entirely, any config change (however small) misses, and a
   damaged cache degrades to a live run rather than an error. *)

module Exec = Sim_engine.Exec
module E = Tcpflow.Experiment
module Common = Experiments.Common
module Runs = Experiments.Runs

let fresh_dir () =
  let path = Filename.temp_file "exec_cache" "" in
  Sys.remove path;
  path

let small_config ?(seed = 1) ?(rate_mbps = 10.0) ?aqm
    ?(duration = Sim_engine.Units.seconds 2.0)
    ?(warmup = Sim_engine.Units.seconds 0.5) ?sample_period ?(bdp = 3.0)
    ?(ccas = [ "cubic"; "bbr" ]) () =
  let rate_bps = Sim_engine.Units.mbps rate_mbps in
  E.config ?aqm ~warmup ?sample_period ~seed ~rate_bps
    ~buffer_bytes:
      (E.buffer_bytes_of_bdp ~rate_bps ~rtt:(Sim_engine.Units.ms 20.0) ~bdp)
    ~duration
    (List.map
       (fun cca -> E.flow_config ~base_rtt:(Sim_engine.Units.ms 20.0) cca)
       ccas)

(* --- Exec.map --- *)

let test_map_order () =
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Exec.map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 7 ]

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Exec.map ~jobs:4 (fun i -> i) [||])

let test_map_exception () =
  Alcotest.check_raises "job failure propagates" (Failure "boom") (fun () ->
      ignore
        (Exec.map ~jobs:4
           (fun i -> if i = 13 then failwith "boom" else i)
           (Array.init 40 (fun i -> i))))

let test_invalid_jobs () =
  (* Exec.map clamps oversized/undersized jobs counts; the user-facing
     validation lives in Common.ctx. *)
  Alcotest.(check (array int)) "map clamps jobs" [| 1 |]
    (Exec.map ~jobs:0 (fun i -> i) [| 1 |]);
  match Common.ctx ~jobs:0 Common.Quick with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ctx ~jobs:0 should raise"

(* --- Determinism: jobs must not change results --- *)

(* Results are plain data; marshalling them gives a cheap structural
   fingerprint for whole-value equality checks. The one sanctioned use of
   Marshal outside the Exec cache lives here. *)
let fingerprint (r : E.result) = Marshal.to_string r [] (* simlint: allow R2 *)
let marshal_of_results results = List.map fingerprint results

let test_jobs_determinism () =
  let configs =
    List.concat_map
      (fun seed ->
        [ small_config ~seed (); small_config ~seed ~rate_mbps:16.0 () ])
      [ 1; 2; 3 ]
  in
  let run jobs = Runs.eval (Common.ctx ~jobs Common.Quick) configs in
  let sequential = marshal_of_results (run 1) in
  let parallel = marshal_of_results (run 4) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "config %d identical under jobs=1 and jobs=4" i)
        true (String.equal a b))
    (List.combine sequential parallel)

(* --- Cache semantics --- *)

let test_cache_hit_skips_simulation () =
  let dir = fresh_dir () in
  let ctx = Common.ctx ~cache_dir:dir Common.Quick in
  let configs = [ small_config ~seed:1 (); small_config ~seed:2 () ] in
  let first = Runs.eval ctx configs in
  let before = Exec.counters () in
  let second = Runs.eval ctx configs in
  let after = Exec.counters () in
  Alcotest.(check int) "no new simulations" 0
    (after.jobs_executed - before.jobs_executed);
  Alcotest.(check int) "every config hit" (List.length configs)
    (after.cache_hits - before.cache_hits);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "result %d identical to first run" i)
        true
        (String.equal a b))
    (List.combine (marshal_of_results first) (marshal_of_results second))

let test_cache_dedups_within_batch () =
  let dir = fresh_dir () in
  let ctx = Common.ctx ~cache_dir:dir Common.Quick in
  let config = small_config ~seed:9 () in
  let before = Exec.counters () in
  (match Runs.eval ctx [ config; config; config ] with
  | [ a; b; c ] ->
      Alcotest.(check bool) "duplicates agree" true
        (String.equal (fingerprint a) (fingerprint b)
        && String.equal (fingerprint b) (fingerprint c))
  | _ -> Alcotest.fail "expected 3 results");
  let after = Exec.counters () in
  Alcotest.(check int) "simulated once" 1
    (after.jobs_executed - before.jobs_executed)

let test_digest_sensitive_to_every_field () =
  let digests =
    List.map
      (fun c -> E.digest c)
      [
        small_config ();
        small_config ~seed:2 ();
        small_config ~aqm:E.Red_default ();
        small_config ~rate_mbps:11.0 ();
        small_config ~bdp:4.0 ();
        small_config ~duration:(Sim_engine.Units.seconds 2.5) ();
        small_config ~warmup:(Sim_engine.Units.seconds 0.75) ();
        small_config ~sample_period:(Sim_engine.Units.ms 10.0) ();
        small_config ~ccas:[ "cubic"; "bbr2" ] ();
        small_config ~ccas:[ "cubic"; "bbr"; "bbr" ] ();
      ]
  in
  Alcotest.(check int)
    "every variant digests differently"
    (List.length digests)
    (List.length (List.sort_uniq compare digests))

let test_corrupted_cache_falls_back () =
  let dir = fresh_dir () in
  let ctx = Common.ctx ~cache_dir:dir Common.Quick in
  let configs = [ small_config ~seed:4 (); small_config ~seed:5 () ] in
  let first = Runs.eval ctx configs in
  (* Truncate / garble every cache entry in place. *)
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc "not a marshalled value";
      close_out oc)
    (Sys.readdir dir);
  let before = Exec.counters () in
  let second = Runs.eval ctx configs in
  let after = Exec.counters () in
  Alcotest.(check int) "corrupted entries re-simulated"
    (List.length configs)
    (after.jobs_executed - before.jobs_executed);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "re-simulated result %d matches" i)
        true (String.equal a b))
    (List.combine (marshal_of_results first) (marshal_of_results second));
  (* The rewritten entries must be readable again. *)
  let before = Exec.counters () in
  ignore (Runs.eval ctx configs);
  let after = Exec.counters () in
  Alcotest.(check int) "cache healed" 0
    (after.jobs_executed - before.jobs_executed)

let test_cache_raw_roundtrip () =
  let cache = Exec.Cache.create (fresh_dir ()) in
  Alcotest.(check (option (list int))) "absent" None
    (Exec.Cache.find cache ~key:"missing");
  Exec.Cache.store cache ~key:"xs" [ 1; 2; 3 ];
  Alcotest.(check (option (list int))) "roundtrip" (Some [ 1; 2; 3 ])
    (Exec.Cache.find cache ~key:"xs");
  Exec.Cache.store cache ~key:"xs" [ 9 ];
  Alcotest.(check (option (list int))) "overwrite" (Some [ 9 ])
    (Exec.Cache.find cache ~key:"xs")

let tests =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map on empty input" `Quick test_map_empty;
    Alcotest.test_case "map re-raises job failure" `Quick test_map_exception;
    Alcotest.test_case "invalid jobs counts" `Quick test_invalid_jobs;
    Alcotest.test_case "jobs=1 and jobs=4 bit-identical" `Slow
      test_jobs_determinism;
    Alcotest.test_case "cache hit skips simulation" `Quick
      test_cache_hit_skips_simulation;
    Alcotest.test_case "duplicate configs simulate once" `Quick
      test_cache_dedups_within_batch;
    Alcotest.test_case "digest changes with any field" `Quick
      test_digest_sensitive_to_every_field;
    Alcotest.test_case "corrupted cache falls back to live run" `Quick
      test_corrupted_cache_falls_back;
    Alcotest.test_case "raw cache roundtrip" `Quick test_cache_raw_roundtrip;
  ]
