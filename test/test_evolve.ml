open Ccgame

(* --- dynamics parsing --- *)

let test_dynamics_parse () =
  Alcotest.(check bool) "replicator" true
    (Evolve.dynamics_of_string "replicator" = Ok Evolve.Replicator);
  Alcotest.(check bool) "best-response" true
    (Evolve.dynamics_of_string "best-response" = Ok Evolve.Best_response);
  Alcotest.(check bool) "best_response alias" true
    (Evolve.dynamics_of_string "best_response" = Ok Evolve.Best_response);
  Alcotest.(check bool) "logit default tau" true
    (Evolve.dynamics_of_string "logit"
    = Ok (Evolve.Logit Evolve.default_logit_temperature));
  Alcotest.(check bool) "logit explicit tau" true
    (Evolve.dynamics_of_string "logit:0.5" = Ok (Evolve.Logit 0.5));
  Alcotest.(check bool) "negative tau rejected" true
    (Result.is_error (Evolve.dynamics_of_string "logit:-1"));
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Evolve.dynamics_of_string "nash"))

(* --- advantage normalization --- *)

let test_advantage_of () =
  Alcotest.(check (float 1e-9)) "positive" 0.5
    (Evolve.advantage_of ~ub:2.0 ~uc:1.0);
  Alcotest.(check (float 1e-9)) "negative" (-0.5)
    (Evolve.advantage_of ~ub:1.0 ~uc:2.0);
  Alcotest.(check (float 1e-9)) "nan payoff is zero advantage" 0.0
    (Evolve.advantage_of ~ub:nan ~uc:1.0);
  Alcotest.(check (float 1e-9)) "both zero" 0.0
    (Evolve.advantage_of ~ub:0.0 ~uc:0.0);
  Alcotest.(check (float 1e-9)) "opposite signs saturate" 2.0
    (Evolve.advantage_of ~ub:1.0 ~uc:(-1.0))

(* --- counts/shares bridge --- *)

let test_counts_shares_roundtrip () =
  let sizes = [| 5; 10; 2 |] in
  let counts = [| 0; 7; 2 |] in
  Alcotest.(check (array int)) "roundtrip" counts
    (Evolve.counts_of_shares ~sizes (Evolve.shares_of_counts ~sizes counts));
  Alcotest.(check (array int)) "rounds to nearest" [| 0; 1 |]
    (Evolve.counts_of_shares ~sizes:[| 1; 1 |] [| 0.49; 0.51 |]);
  (match Evolve.shares_of_counts ~sizes:[| 2 |] [| 3 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "count out of range should raise");
  match Evolve.counts_of_shares ~sizes:[| 2 |] [| 0.5; 0.5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch should raise"

(* --- step kernel --- *)

let step dyn ~rate ~adv ~src =
  let dst = Array.make (Array.length src) 0.0 in
  Evolve.step_into dyn ~rate ~adv ~src ~dst;
  dst

let test_replicator_boundaries_absorb () =
  (* s (1 - s) kills the update at both boundaries for any advantage. *)
  let src = [| 0.0; 1.0 |] and adv = [| 2.0; -2.0 |] in
  Alcotest.(check (array (float 0.0))) "absorbing" [| 0.0; 1.0 |]
    (step Evolve.Replicator ~rate:1.0 ~adv ~src)

let test_best_response_full_rate_jumps () =
  let src = [| 0.3; 0.7; 0.4 |] and adv = [| 1.0; -1.0; 0.0 |] in
  Alcotest.(check (array (float 1e-9))) "pure best response" [| 1.0; 0.0; 0.4 |]
    (step Evolve.Best_response ~rate:1.0 ~adv ~src)

let test_logit_targets_interior () =
  (* At temperature tau the target is 1/(1+exp(-a/tau)): strictly interior
     and increasing in the advantage. *)
  let src = [| 0.5; 0.5; 0.5 |] and adv = [| 1.0; -1.0; 0.0 |] in
  let dst = step (Evolve.Logit 0.5) ~rate:1.0 ~adv ~src in
  Alcotest.(check bool) "ordered" true (dst.(1) < dst.(2) && dst.(2) < dst.(0));
  Alcotest.(check (float 1e-9)) "zero advantage is indifferent" 0.5 dst.(2);
  Array.iter
    (fun s -> Alcotest.(check bool) "interior" true (s > 0.0 && s < 1.0))
    dst

let test_step_clamps () =
  (* An out-of-scale advantage cannot push a share outside [0, 1]. *)
  let dst =
    step Evolve.Best_response ~rate:1.0 ~adv:[| 2.0; -2.0 |] ~src:[| 0.9; 0.1 |]
  in
  Array.iter
    (fun s -> Alcotest.(check bool) "in range" true (s >= 0.0 && s <= 1.0))
    dst

let test_step_in_place () =
  let src = [| 0.2; 0.8 |] and adv = [| 1.0; -0.5 |] in
  let expected = step Evolve.Replicator ~rate:0.5 ~adv ~src in
  Evolve.step_into Evolve.Replicator ~rate:0.5 ~adv ~src ~dst:src;
  Alcotest.(check (array (float 1e-12))) "src == dst allowed" expected src

let test_step_validation () =
  (match
     Evolve.step_into Evolve.Replicator ~rate:0.0 ~adv:[| 0.0 |]
       ~src:[| 0.5 |] ~dst:[| 0.0 |]
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rate 0 should raise");
  match
    Evolve.step_into Evolve.Replicator ~rate:0.5 ~adv:[| 0.0 |]
      ~src:[| 0.5; 0.5 |] ~dst:[| 0.0; 0.0 |]
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "length mismatch should raise"

(* --- trajectories --- *)

let dominant_bbr =
  {
    Evolve.u_cubic = (fun ~cls:_ ~shares:_ -> 1.0);
    u_bbr = (fun ~cls:_ ~shares:_ -> 2.0);
  }

let test_run_dominant_fixates () =
  let traj =
    Evolve.run Evolve.Replicator ~rate:1.0 ~max_generations:200 dominant_bbr
      ~init:[| 0.5; 0.2 |]
  in
  let last = Array.length traj.Evolve.states - 1 in
  Alcotest.(check bool) "converged" true (Option.is_some traj.Evolve.converged_at);
  Alcotest.(check bool) "fixated" true (Option.is_some traj.Evolve.fixated_at);
  Array.iter
    (fun s -> Alcotest.(check bool) "all BBR" true (s > 0.99))
    traj.Evolve.states.(last);
  Alcotest.(check (array (float 0.0))) "states.(0) is init" [| 0.5; 0.2 |]
    traj.Evolve.states.(0);
  Alcotest.(check int) "one residual per state" (last + 1)
    (Array.length traj.Evolve.residuals);
  (* Replicator only reaches the boundary asymptotically, so the terminal
     residual still reports the stragglers' switching gain; at the exact
     all-BBR state only BBR members exist and none gains by leaving. *)
  Alcotest.(check (float 0.0)) "exact boundary is rest" 0.0
    (Evolve.residual dominant_bbr [| 1.0; 1.0 |]);
  Alcotest.(check bool) "straggler gain reported" true
    (traj.Evolve.residuals.(last) > 0.4)

let test_run_validates_init () =
  match
    Evolve.run Evolve.Replicator ~rate:0.5 ~max_generations:10 dominant_bbr
      ~init:[| 1.5 |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "init outside [0,1] should raise"

let test_mean_share_weighted () =
  Alcotest.(check (float 1e-9)) "weighted" 0.25
    (Evolve.mean_share ~weights:[| 3.0; 1.0 |] [| 0.0; 1.0 |])

(* --- the equilibrium bridge property --- *)

(* The driver's construction in miniature: tagged-flow payoffs over the
   quantized profile, served from a per-class linear payoff table. *)
let quantized_payoffs ~sizes ~table =
  let u_of (base, slope) s = base +. (slope *. s) in
  let tagged ~pick ~boundary ~delta ~cls ~shares =
    let counts = Evolve.counts_of_shares ~sizes shares in
    if counts.(cls) = boundary cls then counts.(cls) <- counts.(cls) + delta;
    let qs = Evolve.shares_of_counts ~sizes counts in
    u_of (pick table.(cls)) qs.(cls)
  in
  {
    Evolve.u_cubic =
      (fun ~cls ~shares ->
        tagged ~pick:fst ~boundary:(fun c -> sizes.(c)) ~delta:(-1) ~cls
          ~shares);
    u_bbr =
      (fun ~cls ~shares -> tagged ~pick:snd ~boundary:(fun _ -> 0) ~delta:1
          ~cls ~shares);
  }

let grouped_of_table ~sizes ~table =
  let u_of (base, slope) s = base +. (slope *. s) in
  {
    Grouped_game.u_cubic =
      (fun ~group ~counts ->
        u_of (fst table.(group))
          (Evolve.shares_of_counts ~sizes counts).(group));
    u_bbr =
      (fun ~group ~counts ->
        u_of (snd table.(group))
          (Evolve.shares_of_counts ~sizes counts).(group));
  }

(* Rest points of every dynamics on sampled payoff tables are epsilon-Nash
   for the corresponding finite grouped game: the bridge the evolve
   experiment's terminal check relies on. Payoff levels in [8, 16] with
   slopes in [-1, 1] keep the one-flow discretization error well inside
   the epsilon slack, so the implication is non-vacuous whenever the
   trajectory actually settles (residual below 0.05 at the terminal
   state). *)
let prop_rest_points_are_epsilon_nash =
  let gen =
    QCheck.Gen.(
      array_size (return 2)
        (quad (float_range 8.0 16.0) (float_range (-1.0) 1.0)
           (float_range 8.0 16.0)
           (float_range (-1.0) 1.0)))
  in
  QCheck.Test.make ~name:"evolve rest points are epsilon-Nash" ~count:100
    (QCheck.make gen)
    (fun raw ->
      let table =
        Array.map (fun (cb, cs, bb, bs) -> ((cb, cs), (bb, bs))) raw
      in
      let sizes = Array.map (fun _ -> 4) table in
      let payoffs = quantized_payoffs ~sizes ~table in
      let grouped = grouped_of_table ~sizes ~table in
      List.for_all
        (fun (dyn, rate) ->
          let traj =
            Evolve.run dyn ~rate ~max_generations:300 payoffs
              ~init:(Array.map (fun _ -> 0.5) sizes)
          in
          let last = Array.length traj.Evolve.states - 1 in
          let terminal = traj.Evolve.states.(last) in
          let counts = Evolve.counts_of_shares ~sizes terminal in
          (* Judge restness at the quantized profile the grouped check
             sees, so an asymptotic straggler share does not make the
             property vacuous. *)
          let quantized = Evolve.shares_of_counts ~sizes counts in
          Evolve.residual payoffs quantized > 0.05
          || Grouped_game.is_equilibrium ~epsilon:0.1 ~sizes grouped counts)
        [
          (Evolve.Replicator, 1.0);
          (Evolve.Best_response, 0.4);
          (Evolve.Logit 0.1, 0.3);
        ])

(* Deterministic witness that the property's hypothesis is satisfiable:
   a dominant-BBR table fixates and the all-BBR profile is epsilon-Nash. *)
let test_bridge_non_vacuous () =
  let table = [| ((9.0, 0.5), (12.0, -0.5)); ((9.0, 0.5), (12.0, -0.5)) |] in
  let sizes = [| 4; 4 |] in
  let payoffs = quantized_payoffs ~sizes ~table in
  let traj =
    Evolve.run Evolve.Best_response ~rate:0.4 ~max_generations:300 payoffs
      ~init:[| 0.5; 0.5 |]
  in
  let last = Array.length traj.Evolve.states - 1 in
  let counts = Evolve.counts_of_shares ~sizes traj.Evolve.states.(last) in
  let quantized = Evolve.shares_of_counts ~sizes counts in
  Alcotest.(check bool) "settled" true
    (Evolve.residual payoffs quantized <= 0.05);
  Alcotest.(check bool) "epsilon-Nash" true
    (Grouped_game.is_equilibrium ~epsilon:0.1 ~sizes
       (grouped_of_table ~sizes ~table)
       counts)

let tests =
  [
    Alcotest.test_case "dynamics parsing" `Quick test_dynamics_parse;
    Alcotest.test_case "advantage normalization" `Quick test_advantage_of;
    Alcotest.test_case "counts/shares roundtrip" `Quick
      test_counts_shares_roundtrip;
    Alcotest.test_case "replicator boundaries absorb" `Quick
      test_replicator_boundaries_absorb;
    Alcotest.test_case "best-response jumps at rate 1" `Quick
      test_best_response_full_rate_jumps;
    Alcotest.test_case "logit targets interior" `Quick
      test_logit_targets_interior;
    Alcotest.test_case "step clamps" `Quick test_step_clamps;
    Alcotest.test_case "step in place" `Quick test_step_in_place;
    Alcotest.test_case "step validation" `Quick test_step_validation;
    Alcotest.test_case "dominant table fixates" `Quick
      test_run_dominant_fixates;
    Alcotest.test_case "init validation" `Quick test_run_validates_init;
    Alcotest.test_case "weighted mean share" `Quick test_mean_share_weighted;
    Alcotest.test_case "bridge non-vacuous" `Quick test_bridge_non_vacuous;
    QCheck_alcotest.to_alcotest prop_rest_points_are_epsilon_nash;
  ]
