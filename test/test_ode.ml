(* Unit and property tests for the control-theoretic ODE backend
   ({!Fluidsim.Ode_model}).

   The unit half pins the mechanical contract: a lone flow fills the
   link, the fixed-step and adaptive integrators land on the same
   trajectory, bad configs are rejected eagerly, and the stability
   metrics are well-formed. The QCheck half states the model-level
   properties from the paper's analysis in [test/test_model_props.ml]
   style: Jain's index lives in (0, 1], homogeneous mixes always settle
   to a fixed point (the smoothed dynamics cannot sawtooth), and —
   matching the analytic two-flow property — BBR's share against CUBIC
   never (materially) grows as the buffer deepens. *)

module U = Sim_engine.Units
module F = Fluidsim.Fluid_sim
module O = Fluidsim.Ode_model

let cfg ?(duration = 30.0) ?(warmup = 10.0)
    ?(integrator = O.default_config.O.integrator) ~mbps ~rtt_ms ~buffer_bdp
    kinds =
  let rate_bps = U.mbps mbps in
  let rtt = U.ms rtt_ms in
  {
    O.default_config with
    O.capacity_bps = rate_bps;
    buffer_bytes = U.scale buffer_bdp (U.bdp_bytes ~rate_bps ~rtt);
    flows = List.map (fun kind -> { F.kind; rtt }) kinds;
    duration = U.seconds duration;
    warmup = U.seconds warmup;
    integrator;
  }

let kind_name = function
  | F.Cubic -> "cubic"
  | F.Bbr -> "bbr"
  | F.Bbr2 -> "bbr2"

(* --- unit tests ------------------------------------------------------ *)

let test_single_flow_fills_link () =
  List.iter
    (fun kind ->
      let r = O.run (cfg ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:1.0 [ kind ]) in
      let util = Array.fold_left ( +. ) 0.0 r.O.per_flow_bps /. 50e6 in
      if util < 0.97 || util > 1.001 then
        Alcotest.failf "%s alone: utilization %.4f outside [0.97, 1.001]"
          (kind_name kind) util)
    [ F.Cubic; F.Bbr; F.Bbr2 ]

let test_integrators_agree () =
  let mk integrator =
    cfg ~integrator ~mbps:100.0 ~rtt_ms:40.0 ~buffer_bdp:4.0
      [ F.Cubic; F.Bbr ]
  in
  let fixed = O.run (mk (O.Rk4 (U.ms 1.0))) in
  let adaptive = O.run (mk O.default_config.O.integrator) in
  Array.iteri
    (fun i bps ->
      let delta = Float.abs (bps -. adaptive.O.per_flow_bps.(i)) in
      if delta > 0.01 *. 100e6 then
        Alcotest.failf "flow %d: Rk4 %.2f vs Adaptive %.2f Mbps" i (bps /. 1e6)
          (adaptive.O.per_flow_bps.(i) /. 1e6))
    fixed.O.per_flow_bps;
  Alcotest.(check bool)
    "adaptive takes far fewer steps" true
    (adaptive.O.steps * 10 < fixed.O.steps)

let test_validation () =
  let base = cfg ~mbps:50.0 ~rtt_ms:40.0 ~buffer_bdp:1.0 [ F.Cubic ] in
  let expect msg c =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (O.run c))
  in
  expect "Ode_model: no flows" { base with O.flows = [] };
  expect "Ode_model: duration must be > 0"
    { base with O.duration = U.seconds 0.0 };
  expect "Ode_model: need 0 <= warmup < duration"
    { base with O.warmup = base.O.duration };
  expect "Ode_model: capacity must be > 0"
    { base with O.capacity_bps = U.bps 0.0 };
  expect "Ode_model: Rk4 dt must be > 0"
    { base with O.integrator = O.Rk4 (U.seconds 0.0) }

let test_metrics_sanity () =
  let c = O.default_config in
  let r = O.run c in
  let m = r.O.metrics in
  Alcotest.(check bool) "jain in (0,1]" true (m.O.jain_index > 0.0 && m.O.jain_index <= 1.0);
  Alcotest.(check bool)
    "convergence finite and within the run" true
    (Float.is_finite m.O.convergence_time
    && m.O.convergence_time >= 0.0
    && m.O.convergence_time <= U.Raw.to_float c.O.duration);
  Alcotest.(check bool)
    "oscillation finite and non-negative" true
    (Float.is_finite m.O.oscillation_bps && m.O.oscillation_bps >= 0.0);
  Alcotest.(check bool) "steps positive" true (r.O.steps > 0);
  Alcotest.(check bool) "rejections non-negative" true (r.O.rejected_steps >= 0);
  Alcotest.(check bool)
    "expected back-offs non-negative" true
    (r.O.expected_backoffs >= 0.0);
  Alcotest.(check bool)
    "queue within buffer" true
    (r.O.mean_queue_bytes >= 0.0
    && r.O.mean_queue_bytes <= U.Raw.to_float c.O.buffer_bytes);
  Alcotest.(check bool)
    "kind mean for absent kind is nan" true
    (Float.is_nan (O.mean_bps_of_kind r F.Bbr2))

(* --- QCheck properties ----------------------------------------------- *)

(* mbps, rtt_ms, buffer_bdp over the regime the grid calibrates. *)
let params_gen =
  QCheck.Gen.(
    map3
      (fun mbps rtt_ms buffer_bdp -> (mbps, rtt_ms, buffer_bdp))
      (float_range 10.0 100.0) (float_range 10.0 80.0) (float_range 0.5 16.0))

let kinds_gen =
  QCheck.Gen.(list_size (int_range 1 4) (oneofl [ F.Cubic; F.Bbr; F.Bbr2 ]))

let pp_params (m, r, b) = Printf.sprintf "mbps=%g rtt=%gms buffer=%gbdp" m r b

let prop_jain_in_unit_interval =
  let arb =
    QCheck.make
      QCheck.Gen.(pair params_gen kinds_gen)
      ~print:(fun (p, kinds) ->
        Printf.sprintf "%s flows=[%s]" (pp_params p)
          (String.concat ";" (List.map kind_name kinds)))
  in
  QCheck.Test.make ~name:"jain index in (0,1]" ~count:100 arb
    (fun ((mbps, rtt_ms, buffer_bdp), kinds) ->
      let r = O.run (cfg ~mbps ~rtt_ms ~buffer_bdp kinds) in
      let j = r.O.metrics.O.jain_index in
      j > 0.0 && j <= 1.0 +. 1e-9)

let prop_homogeneous_converges =
  (* With identical flows the smoothed dynamics have a symmetric fixed
     point and no mechanism to oscillate around it, so the settling
     detector must fire well inside the horizon. *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair params_gen
          (pair (int_range 1 3) (oneofl [ F.Cubic; F.Bbr; F.Bbr2 ])))
      ~print:(fun (p, (n, kind)) ->
        Printf.sprintf "%s %dx %s" (pp_params p) n (kind_name kind))
  in
  QCheck.Test.make ~name:"homogeneous mixes settle (finite convergence)"
    ~count:100 arb (fun ((mbps, rtt_ms, buffer_bdp), (n, kind)) ->
      let r =
        O.run
          (cfg ~duration:60.0 ~warmup:20.0 ~mbps ~rtt_ms ~buffer_bdp
             (List.init n (fun _ -> kind)))
      in
      Float.is_finite r.O.metrics.O.convergence_time)

let prop_bbr_share_monotone =
  (* The analytic two-flow property ("bbr share non-increasing in buffer
     depth", test_model_props.ml) restated on the ODE backend: deepening
     the buffer never buys BBR more than [eps] additional share against
     CUBIC. The epsilon absorbs sub-0.1% wiggle near the shallow-buffer
     plateau where BBR holds (almost) everything either way. *)
  let eps = 0.01 in
  let arb =
    QCheck.make
      QCheck.Gen.(
        map3
          (fun (m, r, _) b1 b2 -> (m, r, Float.min b1 b2, Float.max b1 b2))
          params_gen (float_range 0.25 32.0) (float_range 0.25 32.0))
      ~print:(fun (m, r, b1, b2) ->
        Printf.sprintf "mbps=%g rtt=%gms buffers=%gbdp<=%gbdp" m r b1 b2)
  in
  QCheck.Test.make ~name:"bbr share non-increasing in buffer depth" ~count:60
    arb (fun (mbps, rtt_ms, b1, b2) ->
      let share buffer_bdp =
        let r =
          O.run
            (cfg ~duration:60.0 ~warmup:20.0 ~mbps ~rtt_ms ~buffer_bdp
               [ F.Cubic; F.Bbr ])
        in
        O.mean_bps_of_kind r F.Bbr /. (mbps *. 1e6)
      in
      share b2 <= share b1 +. eps)

let tests =
  [
    Alcotest.test_case "single flow fills the link" `Quick
      test_single_flow_fills_link;
    Alcotest.test_case "Rk4 and Adaptive integrators agree" `Quick
      test_integrators_agree;
    Alcotest.test_case "config validation" `Quick test_validation;
    Alcotest.test_case "stability metrics sanity" `Quick test_metrics_sanity;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_jain_in_unit_interval;
        prop_homogeneous_converges;
        prop_bbr_share_monotone;
      ]
