open Sim_engine

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs b)

let check_close ?eps msg expected actual =
  if not (close ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_mbps () =
  check_close "50 Mbps" 50e6 (Units.mbps 50.0 :> float);
  check_close "roundtrip" 42.5 (Units.bps_to_mbps (Units.mbps 42.5))

let test_bytes_per_sec () =
  check_close "100 Mbps in bytes/s" 12.5e6
    (Units.bytes_per_sec (Units.mbps 100.0));
  check_close "roundtrip" 1e8
    (Units.bits_per_sec_of_bytes
       ~bytes_per_sec:(Units.bytes_per_sec (Units.bps 1e8))
      :> float)

let test_ms () =
  check_close "40 ms" 0.040 (Units.ms 40.0 :> float);
  check_close "roundtrip" 123.0 (Units.sec_to_ms (Units.ms 123.0))

let test_bdp_bytes () =
  (* 100 Mbps x 40 ms = 4e6 bits = 500 KB *)
  check_close "bdp" 500_000.0
    (Units.bdp_bytes ~rate_bps:(Units.mbps 100.0) ~rtt:(Units.ms 40.0)
      :> float)

let test_bdp_packets () =
  check_close "bdp pkts" (500_000.0 /. 1500.0)
    (Units.bdp_packets ~rate_bps:(Units.mbps 100.0) ~rtt:(Units.ms 40.0))

let test_transmission_time () =
  (* 1500 B at 12 Mbps = 1 ms *)
  check_close "tx time" 0.001
    (Units.transmission_time ~rate_bps:(Units.mbps 12.0) ~bytes:1500 :> float)

let test_mss_positive () = Alcotest.(check bool) "mss" true (Units.mss > 0)

let test_arithmetic () =
  check_close "scale" 0.08 (Units.scale 2.0 (Units.ms 40.0) :> float);
  check_close "add" 0.06 (Units.add (Units.ms 40.0) (Units.ms 20.0) :> float);
  check_close "sub" 0.02 (Units.sub (Units.ms 40.0) (Units.ms 20.0) :> float);
  check_close "ratio" 2.0 (Units.ratio (Units.ms 40.0) (Units.ms 20.0));
  Alcotest.(check int) "bytes_to_int" 1500
    (Units.bytes_to_int (Units.bytes 1500.9))

let test_raw_roundtrip () =
  (* Raw is the one sanctioned way to conjure a quantity from a bare float;
     it must be the identity on the underlying representation. *)
  let q : Units.seconds = Units.Raw.of_float 0.25 in
  check_close "of_float/to_float" 0.25 (Units.Raw.to_float q);
  check_close "coercion agrees" (q :> float) (Units.Raw.to_float q)

let prop_bdp_linear_in_rtt =
  QCheck.Test.make ~name:"bdp linear in rtt" ~count:200
    QCheck.(pair (float_range 1.0 1000.0) (float_range 0.001 1.0))
    (fun (mbps, rtt) ->
      let rate_bps = Units.mbps mbps in
      close
        (2.0
        *. (Units.bdp_bytes ~rate_bps ~rtt:(Units.seconds rtt) :> float))
        (Units.bdp_bytes ~rate_bps ~rtt:(Units.seconds (2.0 *. rtt)) :> float))

let prop_tx_time_additive =
  QCheck.Test.make ~name:"tx time additive in bytes" ~count:200
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let rate_bps = Units.bps 1e7 in
      close
        (Units.transmission_time ~rate_bps ~bytes:(a + b) :> float)
        ((Units.transmission_time ~rate_bps ~bytes:a :> float)
        +. (Units.transmission_time ~rate_bps ~bytes:b :> float)))

let tests =
  [
    Alcotest.test_case "mbps conversions" `Quick test_mbps;
    Alcotest.test_case "bytes/s conversions" `Quick test_bytes_per_sec;
    Alcotest.test_case "ms conversions" `Quick test_ms;
    Alcotest.test_case "bdp in bytes" `Quick test_bdp_bytes;
    Alcotest.test_case "bdp in packets" `Quick test_bdp_packets;
    Alcotest.test_case "transmission time" `Quick test_transmission_time;
    Alcotest.test_case "mss positive" `Quick test_mss_positive;
    Alcotest.test_case "dimension arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "raw escape hatch" `Quick test_raw_roundtrip;
    QCheck_alcotest.to_alcotest prop_bdp_linear_in_rtt;
    QCheck_alcotest.to_alcotest prop_tx_time_additive;
  ]
