(* Differential test: the packet-level simulator against the fluid model on
   a seeded random grid of single-flow scenarios. With one flow there is no
   inter-CCA competition to disagree about, so both simulators must land on
   (near-)full utilization — a cheap, broad cross-check that the two
   implementations describe the same network. *)

module E = Tcpflow.Experiment
module Units = Sim_engine.Units

let fluid_kind = function
  | "cubic" -> Fluidsim.Fluid_sim.Cubic
  | "bbr" -> Fluidsim.Fluid_sim.Bbr
  | "bbr2" -> Fluidsim.Fluid_sim.Bbr2
  | s -> Alcotest.failf "no fluid counterpart for %s" s

let packet_throughput ~cca ~mbps ~rtt_ms ~buffer_bdp ~seed =
  let rate_bps = Units.mbps mbps in
  let rtt = Units.ms rtt_ms in
  let cfg =
    E.config ~seed ~rate_bps
      ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
      ~warmup:(Units.seconds 2.0) ~duration:(Units.seconds 10.0)
      [ E.flow_config ~base_rtt:rtt cca ]
  in
  (List.hd (E.run cfg).E.per_flow).E.throughput_bps

let fluid_throughput ~cca ~mbps ~rtt_ms ~buffer_bdp ~seed =
  let rate_bps = Units.mbps mbps in
  let rtt = Units.ms rtt_ms in
  let cfg =
    {
      Fluidsim.Fluid_sim.default_config with
      capacity_bps = rate_bps;
      buffer_bytes =
        Units.bytes
          (float_of_int (E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp));
      flows = [ { Fluidsim.Fluid_sim.kind = fluid_kind cca; rtt } ];
      duration = Units.seconds 10.0;
      warmup = Units.seconds 2.0;
      seed;
    }
  in
  (Fluidsim.Fluid_sim.run cfg).Fluidsim.Fluid_sim.per_flow_bps.(0)

let test_single_flow_grid () =
  let rng = Sim_engine.Rng.create 2024 in
  for _ = 1 to 6 do
    let ccas = [ "cubic"; "bbr"; "bbr2" ] in
    let cca = List.nth ccas (Sim_engine.Rng.int rng (List.length ccas)) in
    let mbps = Sim_engine.Rng.uniform_in rng ~lo:10.0 ~hi:50.0 in
    let rtt_ms = Sim_engine.Rng.uniform_in rng ~lo:10.0 ~hi:60.0 in
    let buffer_bdp = Sim_engine.Rng.uniform_in rng ~lo:1.0 ~hi:8.0 in
    let seed = 1 + Sim_engine.Rng.int rng 10_000 in
    let packet = packet_throughput ~cca ~mbps ~rtt_ms ~buffer_bdp ~seed in
    let fluid = fluid_throughput ~cca ~mbps ~rtt_ms ~buffer_bdp ~seed in
    let capacity = mbps *. 1e6 in
    let gap = Float.abs (packet -. fluid) /. capacity in
    if gap > 0.2 then
      Alcotest.failf
        "%s @ %.1f Mbps rtt %.1f ms buffer %.1f BDP seed %d: packet %.2f vs \
         fluid %.2f Mbps (gap %.0f%% of capacity)"
        cca mbps rtt_ms buffer_bdp seed (packet /. 1e6) (fluid /. 1e6)
        (100.0 *. gap)
  done

let tests =
  [ Alcotest.test_case "single-flow packet vs fluid" `Slow test_single_flow_grid ]
