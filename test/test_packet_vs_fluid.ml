(* Differential tests across the three simulation backends.

   1. Packet vs fluid on a seeded random grid of single-flow scenarios:
      with one flow there is no inter-CCA competition to disagree about,
      so both simulators must land on (near-)full utilization.
   2. The three-way grid: packet, fluid and ODE run the same
      {!Sim_backend.spec} on single-flow and 2-flow cells, each judged
      against its own tolerance band (the packet simulator is stochastic
      and transient-rich; the analytic backends were calibrated against
      each other, so their bands are tighter). *)

module Units = Sim_engine.Units
module B = Sim_backend

let mk_spec ?warmup ~mbps ~rtt_ms ~buffer_bdp ~duration ~seed ccas =
  let rate_bps = Units.mbps mbps in
  let rtt = Units.ms rtt_ms in
  B.spec ?warmup ~seed ~rate_bps
    ~buffer_bytes:(Units.scale buffer_bdp (Units.bdp_bytes ~rate_bps ~rtt))
    ~duration:(Units.seconds duration)
    (List.map (fun cca -> { B.cca; rtt }) ccas)

let run_bps backend spec =
  let o = B.run_exn backend spec in
  Array.fold_left ( +. ) 0.0 o.B.per_flow_bps

let test_single_flow_grid () =
  let rng = Sim_engine.Rng.create 2024 in
  for _ = 1 to 6 do
    let ccas = Fluidsim.Fluid_sim.supported_ccas in
    let cca = List.nth ccas (Sim_engine.Rng.int rng (List.length ccas)) in
    let mbps = Sim_engine.Rng.uniform_in rng ~lo:10.0 ~hi:50.0 in
    let rtt_ms = Sim_engine.Rng.uniform_in rng ~lo:10.0 ~hi:60.0 in
    let buffer_bdp = Sim_engine.Rng.uniform_in rng ~lo:1.0 ~hi:8.0 in
    let seed = 1 + Sim_engine.Rng.int rng 10_000 in
    let spec =
      mk_spec ~warmup:(Units.seconds 2.0) ~mbps ~rtt_ms ~buffer_bdp
        ~duration:10.0 ~seed [ cca ]
    in
    let packet = run_bps B.packet spec in
    let fluid = run_bps B.fluid spec in
    let capacity = mbps *. 1e6 in
    let gap = Float.abs (packet -. fluid) /. capacity in
    if gap > 0.2 then
      Alcotest.failf
        "%s @ %.1f Mbps rtt %.1f ms buffer %.1f BDP seed %d: packet %.2f vs \
         fluid %.2f Mbps (gap %.0f%% of capacity)"
        cca mbps rtt_ms buffer_bdp seed (packet /. 1e6) (fluid /. 1e6)
        (100.0 *. gap)
  done

(* --- three-way grid -------------------------------------------------- *)

(* Minimum utilization each backend must reach on a lone flow at 1 BDP:
   the packet simulator pays real retransmission and startup costs, the
   fluid model only its loss duty cycle, the ODE none. *)
let single_util_floor backend =
  match B.name backend with
  | "packet" -> 0.80
  | "fluid" -> 0.90
  | _ -> 0.97

let test_three_way_single () =
  List.iter
    (fun cca ->
      let spec =
        mk_spec ~warmup:(Units.seconds 5.0) ~mbps:50.0 ~rtt_ms:40.0
          ~buffer_bdp:1.0 ~duration:20.0 ~seed:1 [ cca ]
      in
      List.iter
        (fun backend ->
          let util = run_bps backend spec /. 50e6 in
          let floor = single_util_floor backend in
          if util < floor || util > 1.01 then
            Alcotest.failf "%s/%s: utilization %.3f outside [%.2f, 1.01]"
              (B.name backend) cca util floor)
        B.all)
    Fluidsim.Fluid_sim.supported_ccas

(* 2-flow cubic-v-bbr cells. The analytic pair is compared on the
   calibrated horizon (60 s / 20 s warm-up) under the calibration bound
   (5% of capacity on kind means). The packet backend runs a shorter
   horizon and is held to coarse, per-cell sanity bands: near-full
   aggregate utilization plus the cell's qualitative share ordering. *)
let test_three_way_two_flow () =
  List.iter
    (fun buffer_bdp ->
      let analytic_spec =
        mk_spec ~warmup:(Units.seconds 20.0) ~mbps:100.0 ~rtt_ms:40.0
          ~buffer_bdp ~duration:60.0 ~seed:1 [ "cubic"; "bbr" ]
      in
      let fo = B.run_exn B.fluid analytic_spec in
      let oo = B.run_exn B.ode analytic_spec in
      List.iter
        (fun cca ->
          let f = B.mean_bps_of_cca fo cca and o = B.mean_bps_of_cca oo cca in
          if Float.abs (f -. o) > 0.05 *. 100e6 then
            Alcotest.failf
              "fluid vs ode, %s @ %.1f BDP: %.2f vs %.2f Mbps (band 5.00)" cca
              buffer_bdp (f /. 1e6) (o /. 1e6))
        [ "cubic"; "bbr" ];
      let packet_spec =
        mk_spec ~warmup:(Units.seconds 10.0) ~mbps:100.0 ~rtt_ms:40.0
          ~buffer_bdp ~duration:30.0 ~seed:1 [ "cubic"; "bbr" ]
      in
      let po = B.run_exn B.packet packet_spec in
      let total = Array.fold_left ( +. ) 0.0 po.B.per_flow_bps in
      if total < 0.90 *. 100e6 || total > 1.01 *. 100e6 then
        Alcotest.failf "packet @ %.1f BDP: aggregate %.2f Mbps not near 100"
          buffer_bdp (total /. 1e6);
      (* Shallow buffer: the paper's headline regime — BBR ignores the
         losses that force CUBIC into constant back-off, so the packet
         simulator gives BBR the dominant share. *)
      if buffer_bdp <= 1.0 then begin
        let pc = B.mean_bps_of_cca po "cubic"
        and pb = B.mean_bps_of_cca po "bbr" in
        if pb <= pc then
          Alcotest.failf
            "packet @ %.1f BDP: expected bbr > cubic, got bbr %.2f vs cubic \
             %.2f Mbps"
            buffer_bdp (pb /. 1e6) (pc /. 1e6)
      end)
    [ 1.0; 10.0 ]

let tests =
  [
    Alcotest.test_case "single-flow packet vs fluid" `Slow test_single_flow_grid;
    Alcotest.test_case "three-way single-flow utilization" `Slow
      test_three_way_single;
    Alcotest.test_case "three-way 2-flow cells" `Slow test_three_way_two_flow;
  ]
