let mss = 1500

let make ?params () =
  Cca.Vivace.make ?params ~mss ~rng:(Sim_engine.Rng.create 1) ()

let test_initial_state () =
  let cc = make () in
  Alcotest.(check string) "starting" "Starting" (cc.Cca.Cc_types.state ());
  let rate = cc.Cca.Cc_types.pacing_rate () in
  if Float.is_nan rate then Alcotest.fail "vivace is rate-based"
  else Alcotest.(check bool) "positive initial rate" true (rate > 0.0)

let rate cc =
  let r = cc.Cca.Cc_types.pacing_rate () in
  if Float.is_nan r then Alcotest.fail "expected rate" else r

let test_starting_doubles_on_good_utility () =
  let cc = make () in
  let r0 = rate cc in
  (* Two healthy MIs: throughput up, no loss, flat RTT. *)
  let now = ref 0.0 in
  for _ = 1 to 40 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:15000 ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rate grew (%.0f -> %.0f)" r0 (rate cc))
    true
    (rate cc > 1.5 *. r0)

let test_loss_reduces_utility_and_rate () =
  let cc = make () in
  (* Grow for a while, then hammer with losses; the controller must back
     off from its peak. *)
  let now = ref 0.0 in
  for _ = 1 to 40 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:15000 ())
  done;
  let peak = rate cc in
  for _ = 1 to 200 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:!now ~lost:30000 ());
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:1500 ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "backed off (%.0f -> %.0f)" peak (rate cc))
    true
    (rate cc < peak)

let test_cwnd_tracks_rate () =
  let cc = make () in
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:0.01 ~rtt:0.04 ~acked:1500 ());
  let cwnd = cc.Cca.Cc_types.cwnd_bytes () in
  let expected = 2.0 *. rate cc *. 0.04 in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd ~ 2 x rate x rtt (%.0f vs %.0f)" cwnd expected)
    true
    (Float.abs (cwnd -. expected) <= Float.max (4.0 *. float_of_int mss) (0.3 *. expected))

let test_probe_phases_alternate () =
  let cc = make () in
  (* Force utility to drop once so we leave Starting. *)
  let now = ref 0.0 in
  for _ = 1 to 40 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:15000 ())
  done;
  for _ = 1 to 100 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:!now ~lost:150000 ());
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:150 ())
  done;
  let state = cc.Cca.Cc_types.state () in
  Alcotest.(check bool)
    (Printf.sprintf "probing (%s)" state)
    true
    (state = "ProbeUp" || state = "ProbeDown")

let test_min_rate_floor () =
  let cc = make () in
  let now = ref 0.0 in
  for _ = 1 to 500 do
    now := !now +. 0.01;
    cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:!now ~lost:150000 ());
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~acked:150 ())
  done;
  Alcotest.(check bool) "rate stays positive" true (rate cc > 0.0)

let test_name () =
  let cc = make () in
  Alcotest.(check string) "name" "vivace" cc.Cca.Cc_types.name

let tests =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "starting doubles" `Quick
      test_starting_doubles_on_good_utility;
    Alcotest.test_case "loss backs off" `Quick
      test_loss_reduces_utility_and_rate;
    Alcotest.test_case "cwnd tracks rate" `Quick test_cwnd_tracks_rate;
    Alcotest.test_case "probe phases" `Quick test_probe_phases_alternate;
    Alcotest.test_case "min rate floor" `Quick test_min_rate_floor;
    Alcotest.test_case "name" `Quick test_name;
  ]
