let mss = 1500

let make ?params () = Cca.Copa.make ?params ~mss ()

let test_slow_start_growth () =
  let cc = make () in
  (* Zero queuing delay: slow start doubles per RTT. *)
  for _ = 1 to 10 do
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~rtt:0.04 ())
  done;
  Alcotest.(check (float 0.0)) "doubled" 30000.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_queue_exits_slow_start () =
  let cc = make () in
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:0.0 ~rtt:0.04 ());
  (* Sustained bloated RTT samples (queuing delay) must end slow start once
     the old low sample leaves the srtt/2 standing window. *)
  let now = ref 0.0 in
  for _ = 1 to 10 do
    now := !now +. 0.1;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.10 ())
  done;
  Alcotest.(check string) "steady" "Steady" (cc.Cca.Cc_types.state ())

let test_decreases_under_large_queue () =
  let cc = make () in
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:0.0 ~rtt:0.04 ());
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  (* Sustained 200 ms of queuing delay: target rate tiny -> shrink. *)
  let now = ref 0.0 and round = ref 0 in
  for _ = 1 to 30 do
    now := !now +. 0.24;
    incr round;
    for _ = 1 to 5 do
      cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.24 ~round:!round ())
    done
  done;
  Alcotest.(check bool) "shrank" true (cc.Cca.Cc_types.cwnd_bytes () < w0)

let test_floor () =
  let cc = make () in
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:0.0 ~rtt:0.04 ());
  let now = ref 0.0 and round = ref 0 in
  for _ = 1 to 200 do
    now := !now +. 0.3;
    incr round;
    cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.3 ~round:!round ())
  done;
  Alcotest.(check bool) "floor 2 mss" true
    (cc.Cca.Cc_types.cwnd_bytes () >= 2.0 *. float_of_int mss)

let test_step_capped_at_acked () =
  (* Even with an absurd velocity the per-ACK change is bounded by the acked
     bytes, so cwnd can at most double per RTT. Rounds and ACK counts are
     bounded to keep the doubling from exploding the test itself. *)
  let cc = make () in
  let now = ref 0.0 and round = ref 0 in
  for _ = 1 to 12 do
    now := !now +. 0.04;
    incr round;
    let w0 = cc.Cca.Cc_types.cwnd_bytes () in
    let acks = min 1000 (max 1 (int_of_float (w0 /. 1500.0))) in
    for _ = 1 to acks do
      cc.Cca.Cc_types.on_ack (Cca_driver.ack ~now:!now ~rtt:0.04 ~round:!round ())
    done;
    let w1 = cc.Cca.Cc_types.cwnd_bytes () in
    if w1 > 2.0 *. w0 +. 1.0 then
      Alcotest.failf "grew faster than 2x per RTT (%.0f -> %.0f)" w0 w1
  done

let test_loss_exits_slow_start_only () =
  let cc = make () in
  let w0 = cc.Cca.Cc_types.cwnd_bytes () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ());
  Alcotest.(check (float 0.0)) "window unchanged on fast-retx loss" w0
    (cc.Cca.Cc_types.cwnd_bytes ());
  Alcotest.(check string) "slow start exited" "Steady"
    (cc.Cca.Cc_types.state ())

let test_timeout_collapses () =
  let cc = make () in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~timeout:true ());
  Alcotest.(check (float 0.0)) "collapsed" 3000.0 (cc.Cca.Cc_types.cwnd_bytes ())

let test_paced_once_rtt_known () =
  let cc = make () in
  Alcotest.(check bool) "no pacing before rtt" true
    (Float.is_nan (cc.Cca.Cc_types.pacing_rate ()));
  cc.Cca.Cc_types.on_ack (Cca_driver.ack ~rtt:0.04 ());
  let rate = cc.Cca.Cc_types.pacing_rate () in
  if Float.is_nan rate then Alcotest.fail "expected pacing"
  else Alcotest.(check bool) "positive" true (rate > 0.0)

let tests =
  [
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "queue exits slow start" `Quick
      test_queue_exits_slow_start;
    Alcotest.test_case "shrinks under queue" `Quick
      test_decreases_under_large_queue;
    Alcotest.test_case "window floor" `Quick test_floor;
    Alcotest.test_case "step capped" `Quick test_step_capped_at_acked;
    Alcotest.test_case "loss semantics" `Quick test_loss_exits_slow_start_only;
    Alcotest.test_case "timeout collapse" `Quick test_timeout_collapses;
    Alcotest.test_case "pacing" `Quick test_paced_once_rtt_known;
  ]
