(* The linter's own tests: each fixture under [lint_fixtures/] must trigger
   exactly its rule at the expected lines, the clean and fully-suppressed
   fixtures must stay silent, and unparsable input must surface as a PARSE
   finding rather than a pass. *)

module Lint = Simlint_core.Lint

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rule_lines violations =
  List.map (fun v -> (v.Lint.rule, v.Lint.line)) violations

let fixture name = Filename.concat "lint_fixtures" name

let findings name =
  let path = fixture name in
  rule_lines (Lint.lint_source ~path (read path))

let check_fixture name expected () =
  Alcotest.(check (list (pair string int))) name expected (findings name)

let test_parse_failure () =
  match Lint.lint_source ~path:"broken.ml" "let = (" with
  | [ { Lint.rule = "PARSE"; file = "broken.ml"; _ } ] -> ()
  | vs ->
    Alcotest.failf "expected a single PARSE finding, got %d: %s"
      (List.length vs)
      (String.concat "; " (List.map (fun v -> v.Lint.rule) vs))

let test_lint_file_agrees () =
  (* The on-disk entry point must report exactly what lint_source does. *)
  let path = fixture "r2_marshal.ml" in
  Alcotest.(check (list (pair string int)))
    "lint_file = lint_source"
    (rule_lines (Lint.lint_source ~path (read path)))
    (rule_lines (Lint.lint_file path))

let test_violations_sorted () =
  let vs = Lint.lint_source ~path:(fixture "r4_float_eq.ml") (read (fixture "r4_float_eq.ml")) in
  let lines = List.map (fun v -> v.Lint.line) vs in
  Alcotest.(check (list int)) "ascending lines" (List.sort compare lines) lines

let tests =
  [
    Alcotest.test_case "clean fixture is silent" `Quick
      (check_fixture "ok_clean.ml" []);
    Alcotest.test_case "R1 determinism" `Quick
      (check_fixture "r1_determinism.ml"
         [ ("R1", 3); ("R1", 5); ("R1", 7) ]);
    Alcotest.test_case "R2 marshal" `Quick
      (check_fixture "r2_marshal.ml" [ ("R2", 3) ]);
    Alcotest.test_case "R3 obj.magic" `Quick
      (check_fixture "r3_obj_magic.ml" [ ("R3", 3) ]);
    Alcotest.test_case "R4 float equality" `Quick
      (check_fixture "r4_float_eq.ml" [ ("R4", 3); ("R4", 5); ("R4", 7) ]);
    Alcotest.test_case "R5 raw experiment record" `Quick
      (check_fixture "r5_record.ml" [ ("R5", 6); ("R5", 8) ]);
    Alcotest.test_case "R6 option equality" `Quick
      (check_fixture "r6_option_eq.ml" [ ("R6", 3); ("R6", 5); ("R6", 7) ]);
    Alcotest.test_case "R7 packet capture" `Quick
      (check_fixture "r7_packet_capture.ml"
         [ ("R7", 3); ("R7", 5); ("R7", 7); ("R7", 10) ]);
    Alcotest.test_case "suppression comments" `Quick
      (check_fixture "suppressed.ml" []);
    Alcotest.test_case "parse failure reported" `Quick test_parse_failure;
    Alcotest.test_case "lint_file agrees with lint_source" `Quick
      test_lint_file_agrees;
    Alcotest.test_case "violations sorted by location" `Quick
      test_violations_sorted;
  ]
