(* The linter's own tests: each fixture under [lint_fixtures/] must trigger
   exactly its rule at the expected lines, the clean and fully-suppressed
   fixtures must stay silent, and unparsable input must surface as a PARSE
   finding rather than a pass. *)

module Lint = Simlint_core.Lint

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rule_lines violations =
  List.map (fun v -> (v.Lint.rule, v.Lint.line)) violations

let fixture name = Filename.concat "lint_fixtures" name

let findings name =
  let path = fixture name in
  rule_lines (Lint.lint_source ~path (read path))

let check_fixture name expected () =
  Alcotest.(check (list (pair string int))) name expected (findings name)

let test_parse_failure () =
  match Lint.lint_source ~path:"broken.ml" "let = (" with
  | [ { Lint.rule = "PARSE"; file = "broken.ml"; _ } ] -> ()
  | vs ->
    Alcotest.failf "expected a single PARSE finding, got %d: %s"
      (List.length vs)
      (String.concat "; " (List.map (fun v -> v.Lint.rule) vs))

let test_lint_file_agrees () =
  (* The on-disk entry point must report exactly what lint_source does. *)
  let path = fixture "r2_marshal.ml" in
  Alcotest.(check (list (pair string int)))
    "lint_file = lint_source"
    (rule_lines (Lint.lint_source ~path (read path)))
    (rule_lines (Lint.lint_file path))

let test_violations_sorted () =
  let vs = Lint.lint_source ~path:(fixture "r4_float_eq.ml") (read (fixture "r4_float_eq.ml")) in
  let lines = List.map (fun v -> v.Lint.line) vs in
  Alcotest.(check (list int)) "ascending lines" (List.sort compare lines) lines

(* ---- typedtree passes (A0-A3) ----

   The fixtures under [lint_fixtures/tast/] compile at test run time with
   [ocamlc -bin-annot]; the resulting .cmt files feed the same
   Callgraph/check pipeline the CLI runs, against a synthetic manifest.
   Expected findings are asserted by line, so the fixtures and the lists
   below must move together. *)

module Manifest = Simlint_core.Manifest
module Cmt_load = Simlint_core.Cmt_load
module Callgraph = Simlint_core.Callgraph
module Alloc_check = Simlint_core.Alloc_check
module Domain_check = Simlint_core.Domain_check
module Taint = Simlint_core.Taint
module Report = Simlint_core.Report

let tast_manifest =
  Manifest.of_string
    {|((hot_paths (Event_queue.pop Event_queue.smaller Event_queue.scale
                   Event_queue.pop_opt Event_queue.head_unsafe))
       (spawn_apis (Domain.spawn))
       (domain_safe ((Domain_roots.table
                      "fixture: populated before the spawn, read-only after")))
       (determinism_roots (Taint_chain.run Taint_chain.run_vouched)))|}

let tast_units = [ "event_queue"; "domain_roots"; "taint_chain" ]

let tast_graph =
  lazy
    (let dir = Filename.temp_file "simlint_tast" "" in
     Sys.remove dir;
     Sys.mkdir dir 0o700;
     List.iter
       (fun unit_name ->
         let src = fixture (Filename.concat "tast" (unit_name ^ ".ml")) in
         let oc = open_out_bin (Filename.concat dir (unit_name ^ ".ml")) in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc (read src)))
       tast_units;
     let cmd =
       Printf.sprintf "cd %s && ocamlc -bin-annot -c %s" (Filename.quote dir)
         (String.concat " " (List.map (fun u -> u ^ ".ml") tast_units))
     in
     (match Sys.command cmd with
     | 0 -> ()
     | n -> Alcotest.failf "tast fixture compilation failed (%d): %s" n cmd);
     let units =
       List.filter_map
         (fun u -> Cmt_load.load_file (Filename.concat dir (u ^ ".cmt")))
         tast_units
     in
     Alcotest.(check int)
       "all tast fixture cmts load" (List.length tast_units)
       (List.length units);
     Callgraph.build ~spawn_apis:tast_manifest.Manifest.spawn_apis units)

let tast_check name check expected ~message_has () =
  let vs = check (Lazy.force tast_graph) tast_manifest in
  Alcotest.(check (list (pair string int))) name expected (rule_lines vs);
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun v ->
               let m = v.Lint.message in
               let nl = String.length needle in
               let rec scan i =
                 i + nl <= String.length m
                 && (String.equal (String.sub m i nl) needle || scan (i + 1))
               in
               scan 0)
             vs)
      then
        Alcotest.failf "%s: no finding mentions %S in %s" name needle
          (String.concat "; " (List.map (fun v -> v.Lint.message) vs)))
    message_has

(* The deliberate allocation in the fixture's [pop] (the acceptance case),
   the boxed floats at the accidentally-polymorphic call in [smaller]
   (both arguments), and the per-call closure in [scale]. [pop_opt]'s
   reasoned alloc_ok and the allocation-free [head_unsafe] stay silent. *)
let test_a1 =
  tast_check "A1 zero-alloc hot paths"
    (fun g m -> Alloc_check.check g m)
    [ ("A1", 24); ("A1", 28); ("A1", 28); ("A1", 29) ]
    ~message_has:
      [ "Event_queue.pop"; "Some constructor application";
        "boxes a float"; "closure construction" ]

(* The toplevel ref mutated from the Domain-spawned worker is the one
   finding; the allowlisted Hashtbl and the Atomic counter stay silent. *)
let test_a2 =
  tast_check "A2 domain safety"
    (fun g m -> Domain_check.check g m)
    [ ("A2", 10) ]
    ~message_has:[ "Domain_roots.hits" ]

(* Without the allowlist the Hashtbl is flagged too — the pass (not the
   fixture) is what lets [table] through. *)
let test_a2_no_allowlist =
  tast_check "A2 without allowlist"
    (fun g _ ->
      Domain_check.check g { tast_manifest with Manifest.domain_safe = [] })
    [ ("A2", 10); ("A2", 11) ]
    ~message_has:[ "Domain_roots.table" ]

(* Hashtbl.fold two calls below the determinism root is found at the fold;
   the identical chain through the taint_ok'd helper stays clean. *)
let test_a3 =
  tast_check "A3 interprocedural determinism"
    (fun g m -> Taint.check g m)
    [ ("A3", 8) ]
    ~message_has:[ "Hashtbl.fold"; "Taint_chain.run" ]

let test_a0 =
  tast_check "A0 reasonless suppression"
    (fun g _ -> Report.bad_suppressions g)
    [ ("A0", 39) ]
    ~message_has:[ "Event_queue.bad_suppression" ]

(* The passes are root-driven: an empty manifest reports nothing, i.e. the
   fixtures only "fail" when the pass actually runs over them. *)
let test_empty_manifest () =
  let graph = Lazy.force tast_graph in
  Alcotest.(check (list (pair string int)))
    "A1 silent without hot_paths" []
    (rule_lines (Alloc_check.check graph Manifest.empty));
  Alcotest.(check (list (pair string int)))
    "A3 silent without determinism_roots" []
    (rule_lines (Taint.check graph Manifest.empty))

let tests =
  [
    Alcotest.test_case "clean fixture is silent" `Quick
      (check_fixture "ok_clean.ml" []);
    Alcotest.test_case "R1 determinism" `Quick
      (check_fixture "r1_determinism.ml"
         [ ("R1", 3); ("R1", 5); ("R1", 7) ]);
    Alcotest.test_case "R2 marshal" `Quick
      (check_fixture "r2_marshal.ml" [ ("R2", 3) ]);
    Alcotest.test_case "R3 obj.magic" `Quick
      (check_fixture "r3_obj_magic.ml" [ ("R3", 3) ]);
    Alcotest.test_case "R4 float equality" `Quick
      (check_fixture "r4_float_eq.ml" [ ("R4", 3); ("R4", 5); ("R4", 7) ]);
    Alcotest.test_case "R5 raw experiment record" `Quick
      (check_fixture "r5_record.ml" [ ("R5", 6); ("R5", 8) ]);
    Alcotest.test_case "R6 option equality" `Quick
      (check_fixture "r6_option_eq.ml" [ ("R6", 3); ("R6", 5); ("R6", 7) ]);
    Alcotest.test_case "R7 packet capture" `Quick
      (check_fixture "r7_packet_capture.ml"
         [ ("R7", 3); ("R7", 5); ("R7", 7); ("R7", 10) ]);
    Alcotest.test_case "suppression comments" `Quick
      (check_fixture "suppressed.ml" []);
    Alcotest.test_case "parse failure reported" `Quick test_parse_failure;
    Alcotest.test_case "lint_file agrees with lint_source" `Quick
      test_lint_file_agrees;
    Alcotest.test_case "violations sorted by location" `Quick
      test_violations_sorted;
    Alcotest.test_case "A1 zero-alloc hot paths (tast)" `Quick test_a1;
    Alcotest.test_case "A2 domain safety (tast)" `Quick test_a2;
    Alcotest.test_case "A2 allowlist is load-bearing (tast)" `Quick
      test_a2_no_allowlist;
    Alcotest.test_case "A3 interprocedural determinism (tast)" `Quick test_a3;
    Alcotest.test_case "A0 reasonless suppression (tast)" `Quick test_a0;
    Alcotest.test_case "A passes are manifest-driven (tast)" `Quick
      test_empty_manifest;
  ]
