open Sim_engine

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_split_independent () =
  (* Drawing from the child must not affect the parent's future stream. *)
  let parent1 = Rng.create 7 in
  let child = Rng.split parent1 in
  for _ = 1 to 50 do
    ignore (Rng.int64 child)
  done;
  let next1 = Rng.int64 parent1 in
  let parent2 = Rng.create 7 in
  ignore (Rng.split parent2);
  let next2 = Rng.int64 parent2 in
  Alcotest.(check int64) "parent unaffected by child draws" next2 next1

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 5.0 in
    if x < 0.0 || x >= 5.0 then Alcotest.failf "float out of range: %f" x
  done

let test_int_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_int_covers () =
  let rng = Rng.create 5 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_bool_balanced () =
  let rng = Rng.create 6 in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. 10000.0 in
  Alcotest.(check bool) "roughly balanced" true (frac > 0.45 && frac < 0.55)

let test_exponential_mean () =
  let rng = Rng.create 8 in
  let sum = ref 0.0 in
  let n = 20000 in
  for _ = 1 to n do
    let x = Rng.exponential rng ~mean:3.0 in
    if x < 0.0 then Alcotest.fail "negative exponential draw";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~3 (got %f)" mean)
    true
    (mean > 2.8 && mean < 3.2)

let test_uniform_in () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.uniform_in rng ~lo:(-2.0) ~hi:3.0 in
    if x < -2.0 || x >= 3.0 then Alcotest.failf "uniform out of range: %f" x
  done

let prop_float_mean_half =
  QCheck.Test.make ~name:"uniform float mean ~ bound/2" ~count:20
    (QCheck.int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let sum = ref 0.0 in
      for _ = 1 to 2000 do
        sum := !sum +. Rng.float rng 1.0
      done;
      let mean = !sum /. 2000.0 in
      mean > 0.45 && mean < 0.55)

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int covers all" `Quick test_int_covers;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "uniform_in range" `Quick test_uniform_in;
    QCheck_alcotest.to_alcotest prop_float_mean_half;
  ]
