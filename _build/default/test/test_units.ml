open Sim_engine

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs b)

let check_close ?eps msg expected actual =
  if not (close ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_mbps () =
  check_close "50 Mbps" 50e6 (Units.mbps 50.0);
  check_close "roundtrip" 42.5 (Units.bps_to_mbps (Units.mbps 42.5))

let test_bytes_per_sec () =
  check_close "100 Mbps in bytes/s" 12.5e6
    (Units.bytes_per_sec ~bits_per_sec:(Units.mbps 100.0));
  check_close "roundtrip" 1e8
    (Units.bits_per_sec_of_bytes
       ~bytes_per_sec:(Units.bytes_per_sec ~bits_per_sec:1e8))

let test_ms () =
  check_close "40 ms" 0.040 (Units.ms 40.0);
  check_close "roundtrip" 123.0 (Units.sec_to_ms (Units.ms 123.0))

let test_bdp_bytes () =
  (* 100 Mbps x 40 ms = 4e6 bits = 500 KB *)
  check_close "bdp" 500_000.0
    (Units.bdp_bytes ~rate_bps:(Units.mbps 100.0) ~rtt:0.040)

let test_bdp_packets () =
  check_close "bdp pkts" (500_000.0 /. 1500.0)
    (Units.bdp_packets ~rate_bps:(Units.mbps 100.0) ~rtt:0.040)

let test_transmission_time () =
  (* 1500 B at 12 Mbps = 1 ms *)
  check_close "tx time" 0.001
    (Units.transmission_time ~rate_bps:(Units.mbps 12.0) ~bytes:1500)

let test_mss_positive () = Alcotest.(check bool) "mss" true (Units.mss > 0)

let prop_bdp_linear_in_rtt =
  QCheck.Test.make ~name:"bdp linear in rtt" ~count:200
    QCheck.(pair (float_range 1.0 1000.0) (float_range 0.001 1.0))
    (fun (mbps, rtt) ->
      let rate_bps = Units.mbps mbps in
      close
        (2.0 *. Units.bdp_bytes ~rate_bps ~rtt)
        (Units.bdp_bytes ~rate_bps ~rtt:(2.0 *. rtt)))

let prop_tx_time_additive =
  QCheck.Test.make ~name:"tx time additive in bytes" ~count:200
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let rate_bps = 1e7 in
      close
        (Units.transmission_time ~rate_bps ~bytes:(a + b))
        (Units.transmission_time ~rate_bps ~bytes:a
        +. Units.transmission_time ~rate_bps ~bytes:b))

let tests =
  [
    Alcotest.test_case "mbps conversions" `Quick test_mbps;
    Alcotest.test_case "bytes/s conversions" `Quick test_bytes_per_sec;
    Alcotest.test_case "ms conversions" `Quick test_ms;
    Alcotest.test_case "bdp in bytes" `Quick test_bdp_bytes;
    Alcotest.test_case "bdp in packets" `Quick test_bdp_packets;
    Alcotest.test_case "transmission time" `Quick test_transmission_time;
    Alcotest.test_case "mss positive" `Quick test_mss_positive;
    QCheck_alcotest.to_alcotest prop_bdp_linear_in_rtt;
    QCheck_alcotest.to_alcotest prop_tx_time_additive;
  ]
