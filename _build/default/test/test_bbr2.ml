let mss = 1500

let make () = Cca.Bbr2.make ~mss ~rng:(Sim_engine.Rng.create 1) ()

let to_probe_bw cc =
  let _ =
    Cca_driver.feed_rounds cc ~rounds:10 ~per_round:10 ~rtt:0.04 ~rate:1e6
      ~start_now:0.0 ~start_round:0
  in
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.0 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:11 ())

let test_starts_in_startup () =
  let cc = make () in
  Alcotest.(check string) "startup" "Startup" (cc.Cca.Cc_types.state ())

let test_reaches_probe_bw () =
  let cc = make () in
  to_probe_bw cc;
  Alcotest.(check string) "probe bw" "ProbeBW" (cc.Cca.Cc_types.state ())

let test_cruise_loss_tolerated () =
  (* A small loss outside a probing phase must not collapse the window. *)
  let cc = make () in
  to_probe_bw cc;
  let before = cc.Cca.Cc_types.cwnd_bytes () in
  (* Register the round's delivered bytes, then a tiny loss: < 2%. *)
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.05 ~rtt:0.04 ~rate:1e6 ~inflight:40000 ~round:12
       ~round_start:true ~acked:150000 ());
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:1.06 ~lost:1500 ());
  Alcotest.(check bool) "window kept" true
    (cc.Cca.Cc_types.cwnd_bytes () >= 0.9 *. before)

let test_heavy_loss_cuts_when_probing () =
  let cc = make () in
  (* Startup counts as probing: a >2% lossy round cuts inflight_hi and ends
     Startup. *)
  let _ =
    Cca_driver.feed_rounds cc ~rounds:3 ~per_round:10 ~rtt:0.04 ~rate:1e6
      ~start_now:0.0 ~start_round:0
  in
  cc.Cca.Cc_types.on_loss (Cca_driver.loss ~now:0.2 ~lost:30000 ~inflight:30000 ());
  (* Drive to ProbeBW: cwnd should now be bounded by inflight_hi. *)
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:0.3 ~rtt:0.04 ~rate:1e6 ~inflight:1500 ~round:4 ());
  let cwnd = cc.Cca.Cc_types.cwnd_bytes () in
  (* 0.7 * max(30000, bdp=40000) = 28000; cruise headroom 0.85 -> ~23.8kB;
     in any case well under the unbounded 80 kB. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%.0f)" cwnd)
    true (cwnd < 40_000.0)

let test_hi_recovers_by_probing () =
  let cc = make () in
  to_probe_bw cc;
  (* Cut the bound hard. *)
  cc.Cca.Cc_types.on_ack
    (Cca_driver.ack ~now:1.05 ~rtt:0.04 ~rate:1e6 ~inflight:40000 ~round:12
       ~round_start:true ~acked:1500 ());
  (* Force a probing phase by iterating rounds; eventually pacing_gain>1. *)
  cc.Cca.Cc_types.on_loss
    (Cca_driver.loss ~now:1.06 ~lost:15000 ~inflight:40000 ());
  let low = cc.Cca.Cc_types.cwnd_bytes () in
  let _ =
    Cca_driver.feed_rounds cc ~rounds:60 ~per_round:10 ~rtt:0.045 ~rate:1e6
      ~start_now:1.1 ~start_round:13
  in
  let recovered = cc.Cca.Cc_types.cwnd_bytes () in
  Alcotest.(check bool)
    (Printf.sprintf "recovers upward (%.0f -> %.0f)" low recovered)
    true
    (recovered >= low)

(* Feed rounds one at a time, recording when (if ever) ProbeRTT is entered
   and the smallest cwnd seen while in it. BBRv2 exits ProbeRTT quickly
   (its floor is 0.5 BDP, easily satisfied), so we must observe the state
   during the feed rather than at the end. *)
let scan_for_probe_rtt cc ~rounds ~rtt ~start_now ~start_round =
  let entered = ref false and min_cwnd_seen = ref infinity in
  let now = ref start_now and round = ref start_round in
  for _ = 1 to rounds do
    incr round;
    now := !now +. rtt;
    for i = 0 to 9 do
      cc.Cca.Cc_types.on_ack
        (Cca_driver.ack ~now:!now ~rtt ~rate:1e6 ~round:!round
           ~round_start:(i = 0) ~inflight:15000 ());
      if cc.Cca.Cc_types.state () = "ProbeRTT" then begin
        entered := true;
        min_cwnd_seen := Float.min !min_cwnd_seen (cc.Cca.Cc_types.cwnd_bytes ())
      end
    done
  done;
  (!entered, !min_cwnd_seen)

let test_probe_rtt_interval_5s () =
  let cc = make () in
  to_probe_bw cc;
  (* > 5 s without a new minimum triggers ProbeRTT (vs 10 s for BBRv1). *)
  let entered, _ =
    scan_for_probe_rtt cc ~rounds:130 ~rtt:0.05 ~start_now:1.0 ~start_round:12
  in
  Alcotest.(check bool) "probe rtt entered" true entered

let test_probe_rtt_floor_is_half_bdp () =
  let cc = make () in
  to_probe_bw cc;
  let entered, min_cwnd =
    scan_for_probe_rtt cc ~rounds:130 ~rtt:0.05 ~start_now:1.0 ~start_round:12
  in
  Alcotest.(check bool) "entered" true entered;
  (* 0.5 x BDP with btlbw ~1e6 and rtprop ~0.04: ~20 kB, well above BBRv1's
     4-packet (6 kB) floor. *)
  Alcotest.(check bool)
    (Printf.sprintf "gentler ProbeRTT (%.0f)" min_cwnd)
    true (min_cwnd >= 10_000.0)

let test_name () =
  let cc = make () in
  Alcotest.(check string) "name" "bbr2" cc.Cca.Cc_types.name

let tests =
  [
    Alcotest.test_case "starts in Startup" `Quick test_starts_in_startup;
    Alcotest.test_case "reaches ProbeBW" `Quick test_reaches_probe_bw;
    Alcotest.test_case "cruise loss tolerated" `Quick test_cruise_loss_tolerated;
    Alcotest.test_case "heavy probing loss cuts" `Quick
      test_heavy_loss_cuts_when_probing;
    Alcotest.test_case "hi recovers" `Quick test_hi_recovers_by_probing;
    Alcotest.test_case "ProbeRTT at 5s" `Quick test_probe_rtt_interval_5s;
    Alcotest.test_case "ProbeRTT floor 0.5 BDP" `Quick
      test_probe_rtt_floor_is_half_bdp;
    Alcotest.test_case "name" `Quick test_name;
  ]
