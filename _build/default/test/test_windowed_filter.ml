open Cca.Windowed_filter

let test_max_basic () =
  let f = Max_rounds.create ~window:3 in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Max_rounds.get f);
  Max_rounds.update f ~round:0 5.0;
  Alcotest.(check (float 0.0)) "first" 5.0 (Max_rounds.get f);
  Max_rounds.update f ~round:1 3.0;
  Alcotest.(check (float 0.0)) "max kept" 5.0 (Max_rounds.get f);
  Max_rounds.update f ~round:2 7.0;
  Alcotest.(check (float 0.0)) "new max" 7.0 (Max_rounds.get f)

let test_max_expiry () =
  let f = Max_rounds.create ~window:3 in
  Max_rounds.update f ~round:0 10.0;
  Max_rounds.update f ~round:1 2.0;
  Max_rounds.update f ~round:5 3.0;
  (* round 0's sample is 5 rounds old: outside a 3-round window *)
  Alcotest.(check (float 0.0)) "expired max" 3.0 (Max_rounds.get f)

let test_max_decreasing_round_rejected () =
  let f = Max_rounds.create ~window:3 in
  Max_rounds.update f ~round:5 1.0;
  match Max_rounds.update f ~round:4 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_min_basic () =
  let f = Min_time.create ~window:10.0 in
  Alcotest.(check bool) "initial" true (Min_time.get f = infinity);
  Min_time.update f ~time:0.0 0.050;
  Min_time.update f ~time:1.0 0.080;
  Alcotest.(check (float 0.0)) "min kept" 0.050 (Min_time.get f);
  Min_time.update f ~time:2.0 0.040;
  Alcotest.(check (float 0.0)) "new min" 0.040 (Min_time.get f)

let test_min_expiry_flag () =
  let f = Min_time.create ~window:10.0 in
  Min_time.update f ~time:0.0 0.040;
  Alcotest.(check bool) "fresh" false (Min_time.expired f ~now:5.0);
  Alcotest.(check bool) "expired" true (Min_time.expired f ~now:10.5);
  Alcotest.(check (float 1e-9)) "age" 10.5 (Min_time.age f ~now:10.5)

let test_min_window_slide () =
  let f = Min_time.create ~window:2.0 in
  Min_time.update f ~time:0.0 0.010;
  Min_time.update f ~time:1.0 0.050;
  Min_time.update f ~time:3.0 0.030;
  (* the 0.010 sample at t=0 is outside the 2 s window at t=3 *)
  Alcotest.(check (float 0.0)) "slid window" 0.030 (Min_time.get f)

let brute_max samples window round =
  List.fold_left
    (fun acc (r, v) ->
      if round - r <= window then Float.max acc v else acc)
    0.0 samples

let prop_max_matches_brute_force =
  QCheck.Test.make ~name:"max filter matches brute force" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (float_range 0.0 100.0))
    (fun values ->
      let window = 5 in
      let f = Max_rounds.create ~window in
      let samples = List.mapi (fun round v -> (round, v)) values in
      List.for_all
        (fun (round, v) ->
          Max_rounds.update f ~round v;
          let seen = List.filter (fun (r, _) -> r <= round) samples in
          Float.abs (Max_rounds.get f -. brute_max seen window round) < 1e-12)
        samples)

let prop_min_le_all_recent =
  QCheck.Test.make ~name:"min filter <= every in-window sample" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range 0.001 1.0))
    (fun values ->
      let f = Min_time.create ~window:5.0 in
      let result = ref true in
      List.iteri
        (fun i v ->
          let time = float_of_int i in
          Min_time.update f ~time v;
          if Min_time.get f > v then result := false)
        values;
      !result)

let tests =
  [
    Alcotest.test_case "max basic" `Quick test_max_basic;
    Alcotest.test_case "max expiry" `Quick test_max_expiry;
    Alcotest.test_case "max decreasing round" `Quick
      test_max_decreasing_round_rejected;
    Alcotest.test_case "min basic" `Quick test_min_basic;
    Alcotest.test_case "min expiry flag" `Quick test_min_expiry_flag;
    Alcotest.test_case "min window slide" `Quick test_min_window_slide;
    QCheck_alcotest.to_alcotest prop_max_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_min_le_all_recent;
  ]
