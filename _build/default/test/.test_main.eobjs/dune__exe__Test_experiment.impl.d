test/test_experiment.ml: Alcotest Float List Printf Sim_engine Tcpflow
