test/test_extensions.ml: Alcotest Cca Experiments List Netsim Sim_engine Tcpflow
