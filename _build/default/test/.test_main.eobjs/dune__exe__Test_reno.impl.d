test/test_reno.ml: Alcotest Cca Cca_driver Printf
