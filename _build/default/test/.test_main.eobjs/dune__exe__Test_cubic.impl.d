test/test_cubic.ml: Alcotest Cca Cca_driver Float Printf QCheck QCheck_alcotest
