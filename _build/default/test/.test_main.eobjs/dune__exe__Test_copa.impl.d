test/test_copa.ml: Alcotest Cca Cca_driver
