test/test_netsim.ml: Alcotest Droptail_queue Dumbbell Gen Link List Netsim Packet Pipe QCheck QCheck_alcotest Sim_engine
