test/test_bbr.ml: Alcotest Cca Cca_driver Printf Sim_engine
