test/test_units.ml: Alcotest Float QCheck QCheck_alcotest Sim_engine Units
