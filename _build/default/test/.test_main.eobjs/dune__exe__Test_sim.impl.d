test/test_sim.ml: Alcotest List Rng Sim Sim_engine
