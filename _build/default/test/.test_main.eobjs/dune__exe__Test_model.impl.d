test/test_model.ml: Alcotest Ccmodel Float Format List Multi_flow Ne Notation Params Printf QCheck QCheck_alcotest Sim_engine Solver String Two_flow Ware
