test/test_vegas.ml: Alcotest Cca Cca_driver Printf Sim_engine Tcpflow
