test/test_timeseries.ml: Alcotest Float List QCheck QCheck_alcotest Sim_engine Timeseries
