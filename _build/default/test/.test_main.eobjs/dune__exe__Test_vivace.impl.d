test/test_vivace.ml: Alcotest Cca Cca_driver Float Printf Sim_engine
