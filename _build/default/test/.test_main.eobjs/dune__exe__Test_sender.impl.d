test/test_sender.ml: Alcotest Cca List Netsim Printf Sim_engine Tcpflow
