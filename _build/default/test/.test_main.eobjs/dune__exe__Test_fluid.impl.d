test/test_fluid.ml: Alcotest Array Float Fluidsim List Printf Sim_engine
