test/test_bbr2.ml: Alcotest Cca Cca_driver Float Printf Sim_engine
