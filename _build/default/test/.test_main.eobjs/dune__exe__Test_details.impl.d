test/test_details.ml: Alcotest Array Cca Cca_driver Ccgame Ccmodel Float Fluidsim Hashtbl List Printf Sim_engine Tcpflow
