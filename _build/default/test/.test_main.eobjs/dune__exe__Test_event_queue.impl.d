test/test_event_queue.ml: Alcotest Event_queue Gen List QCheck QCheck_alcotest Sim_engine
