test/cca_driver.ml: Cca
