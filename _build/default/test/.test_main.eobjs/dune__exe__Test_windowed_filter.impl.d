test/test_windowed_filter.ml: Alcotest Cca Float Gen List Max_rounds Min_time QCheck QCheck_alcotest
