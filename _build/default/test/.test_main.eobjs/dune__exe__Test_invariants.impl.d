test/test_invariants.ml: Float List Printf QCheck QCheck_alcotest Sim_engine String Tcpflow
