test/test_flow_trace.ml: Alcotest Cca List Netsim Printf Sim_engine String Tcpflow
