test/test_game.ml: Alcotest Array Ccgame Grouped_game List Normal_form QCheck QCheck_alcotest Symmetric_game
