test/test_experiments.ml: Alcotest Catalog Ccmodel Common Experiments Fig06 Fig09 Fig10 Fig12 Filename Float Fluidsim Format List Ne_search Printf Runs Sim_engine String Sys Table1 Tcpflow
