test/test_registry.ml: Alcotest Cca List Sim_engine String
