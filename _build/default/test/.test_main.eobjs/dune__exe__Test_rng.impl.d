test/test_rng.ml: Alcotest Array Fun Printf QCheck QCheck_alcotest Rng Sim_engine
