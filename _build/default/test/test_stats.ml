open Sim_engine

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s))

let test_known_values () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  (* sample variance of this classic set is 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Stats.max s)

let test_single_sample () =
  let s = Stats.of_list [ 3.0 ] in
  Alcotest.(check (float 0.0)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.variance s))

let test_percentile_median () =
  Alcotest.(check (float 1e-9)) "median odd" 2.0
    (Stats.percentile [ 1.0; 2.0; 3.0 ] ~p:50.0);
  Alcotest.(check (float 1e-9)) "median even interp" 2.5
    (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:50.0)

let test_percentile_bounds () =
  let xs = [ 5.0; 1.0; 3.0 ] in
  Alcotest.(check (float 0.0)) "p0" 1.0 (Stats.percentile xs ~p:0.0);
  Alcotest.(check (float 0.0)) "p100" 5.0 (Stats.percentile xs ~p:100.0)

let test_percentile_errors () =
  (match Stats.percentile [] ~p:50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty should raise");
  match Stats.percentile [ 1.0 ] ~p:101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range p should raise"

let test_confidence_interval () =
  let lo, hi = Stats.confidence_interval95 [ 10.0; 10.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "degenerate lo" 10.0 lo;
  Alcotest.(check (float 1e-9)) "degenerate hi" 10.0 hi;
  let lo, hi = Stats.confidence_interval95 [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check bool) "contains mean" true (lo < 3.0 && 3.0 < hi);
  Alcotest.(check bool) "symmetric" true
    (Float.abs (3.0 -. lo -. (hi -. 3.0)) < 1e-9)

let test_relative_error () =
  Alcotest.(check (float 1e-9)) "10% error" 0.1
    (Stats.relative_error ~predicted:11.0 ~actual:10.0);
  Alcotest.(check (float 0.0)) "both zero" 0.0
    (Stats.relative_error ~predicted:0.0 ~actual:0.0);
  Alcotest.(check bool) "inf when actual zero" true
    (Stats.relative_error ~predicted:1.0 ~actual:0.0 = infinity)

let naive_variance xs =
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0.0 xs /. n in
  List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford variance matches two-pass" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 100) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = Stats.of_list xs in
      let naive = naive_variance xs in
      Float.abs (Stats.variance s -. naive)
      <= 1e-6 *. Float.max 1.0 (Float.abs naive))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50) (float_range (-10.0) 10.0))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-12)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.of_list xs in
      Stats.mean s >= Stats.min s -. 1e-6 && Stats.mean s <= Stats.max s +. 1e-6)

let tests =
  [
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "median" `Quick test_percentile_median;
    Alcotest.test_case "percentile bounds" `Quick test_percentile_bounds;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
    Alcotest.test_case "relative error" `Quick test_relative_error;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
  ]
