open Sim_engine

let series points =
  let ts = Timeseries.create () in
  List.iter (fun (t, v) -> Timeseries.record ts ~time:t v) points;
  ts

let test_empty () =
  let ts = Timeseries.create () in
  Alcotest.(check bool) "empty" true (Timeseries.is_empty ts);
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Timeseries.mean ts));
  Alcotest.(check bool) "nan twm" true
    (Float.is_nan (Timeseries.time_weighted_mean ts ~from_:0.0 ~until:1.0))

let test_record_and_last () =
  let ts = series [ (1.0, 10.0); (2.0, 20.0) ] in
  Alcotest.(check int) "length" 2 (Timeseries.length ts);
  match Timeseries.last ts with
  | Some (t, v) ->
    Alcotest.(check (float 0.0)) "last t" 2.0 t;
    Alcotest.(check (float 0.0)) "last v" 20.0 v
  | None -> Alcotest.fail "expected last"

let test_decreasing_time_rejected () =
  let ts = series [ (2.0, 1.0) ] in
  Alcotest.check_raises "decreasing"
    (Invalid_argument "Timeseries.record: decreasing timestamp") (fun () ->
      Timeseries.record ts ~time:1.0 0.0)

let test_time_weighted_mean_step () =
  (* value 10 on [0,1), 20 on [1,2): mean over [0,2] = 15. *)
  let ts = series [ (0.0, 10.0); (1.0, 20.0) ] in
  Alcotest.(check (float 1e-9)) "step mean" 15.0
    (Timeseries.time_weighted_mean ts ~from_:0.0 ~until:2.0)

let test_time_weighted_mean_partial_window () =
  let ts = series [ (0.0, 10.0); (1.0, 20.0) ] in
  (* window [0.5, 1.5]: 0.5s of 10 and 0.5s of 20 *)
  Alcotest.(check (float 1e-9)) "partial window" 15.0
    (Timeseries.time_weighted_mean ts ~from_:0.5 ~until:1.5)

let test_time_weighted_mean_before_first () =
  (* Value before the first sample is the first sample's value. *)
  let ts = series [ (1.0, 4.0) ] in
  Alcotest.(check (float 1e-9)) "extends left" 4.0
    (Timeseries.time_weighted_mean ts ~from_:0.0 ~until:2.0)

let test_unweighted_mean () =
  let ts = series [ (0.0, 1.0); (1.0, 2.0); (2.0, 6.0) ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Timeseries.mean ts)

let test_min_max () =
  let ts = series [ (0.0, 5.0); (1.0, 1.0); (2.0, 9.0) ] in
  Alcotest.(check (float 0.0)) "min" 1.0 (Timeseries.min_value ts ());
  Alcotest.(check (float 0.0)) "max" 9.0 (Timeseries.max_value ts ());
  Alcotest.(check (float 0.0)) "min from 1.5" 9.0
    (Timeseries.min_value ts ~from_:1.5 ());
  Alcotest.(check bool) "empty window nan" true
    (Float.is_nan (Timeseries.min_value ts ~from_:3.0 ()))

let test_fold_and_to_list () =
  let points = [ (0.0, 1.0); (1.0, 2.0) ] in
  let ts = series points in
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "to_list" points
    (Timeseries.to_list ts);
  let sum =
    Timeseries.fold ts ~init:0.0 ~f:(fun acc ~time:_ ~value -> acc +. value)
  in
  Alcotest.(check (float 0.0)) "fold" 3.0 sum

let test_growth () =
  let ts = Timeseries.create () in
  for i = 0 to 9999 do
    Timeseries.record ts ~time:(float_of_int i) 1.0
  done;
  Alcotest.(check int) "10k samples" 10000 (Timeseries.length ts)

let prop_constant_series_mean =
  QCheck.Test.make ~name:"constant series has constant twm" ~count:100
    QCheck.(pair (float_range (-5.0) 5.0) (int_range 1 50))
    (fun (v, n) ->
      let ts = Timeseries.create () in
      for i = 0 to n - 1 do
        Timeseries.record ts ~time:(float_of_int i) v
      done;
      let m =
        Timeseries.time_weighted_mean ts ~from_:0.0 ~until:(float_of_int n)
      in
      Float.abs (m -. v) < 1e-9)

let tests =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "record and last" `Quick test_record_and_last;
    Alcotest.test_case "decreasing time" `Quick test_decreasing_time_rejected;
    Alcotest.test_case "time-weighted mean" `Quick test_time_weighted_mean_step;
    Alcotest.test_case "partial window" `Quick
      test_time_weighted_mean_partial_window;
    Alcotest.test_case "before first sample" `Quick
      test_time_weighted_mean_before_first;
    Alcotest.test_case "unweighted mean" `Quick test_unweighted_mean;
    Alcotest.test_case "min/max with from" `Quick test_min_max;
    Alcotest.test_case "fold and to_list" `Quick test_fold_and_to_list;
    Alcotest.test_case "array growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest prop_constant_series_mean;
  ]
