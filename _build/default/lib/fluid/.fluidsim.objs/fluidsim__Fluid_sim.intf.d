lib/fluid/fluid_sim.mli:
