lib/fluid/fluid_sim.ml: Array Float List Option Sim_engine
