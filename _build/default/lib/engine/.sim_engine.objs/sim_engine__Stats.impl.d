lib/engine/stats.ml: Array Float List Stdlib
