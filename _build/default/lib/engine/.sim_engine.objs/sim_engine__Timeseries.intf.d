lib/engine/timeseries.mli:
