lib/engine/rng.mli:
