lib/engine/units.mli:
