lib/engine/units.ml:
