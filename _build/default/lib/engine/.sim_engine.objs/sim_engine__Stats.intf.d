lib/engine/stats.mli:
