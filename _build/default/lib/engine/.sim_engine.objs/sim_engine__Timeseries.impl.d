lib/engine/timeseries.ml: Array Float List
