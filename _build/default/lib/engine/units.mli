(** Unit conversions used throughout the simulator and models.

    Conventions:
    - time is in seconds (float),
    - data volumes are in bytes (float where fractional amounts arise in the
      fluid models, int for packet counts),
    - rates are in bits per second unless a function name says otherwise. *)

val mss : int
(** Default maximum segment size in bytes (payload granularity of the
    packet-level simulator). *)

val bits_per_byte : float

val mbps : float -> float
(** [mbps x] is [x] megabits per second expressed in bits per second. *)

val bps_to_mbps : float -> float
(** Inverse of {!mbps}. *)

val bytes_per_sec : bits_per_sec:float -> float
(** Convert a rate in bits/s to bytes/s. *)

val bits_per_sec_of_bytes : bytes_per_sec:float -> float
(** Convert a rate in bytes/s to bits/s. *)

val ms : float -> float
(** [ms x] is [x] milliseconds in seconds. *)

val sec_to_ms : float -> float

val bdp_bytes : rate_bps:float -> rtt:float -> float
(** Bandwidth-delay product in bytes for a link of [rate_bps] bits/s and a
    round-trip time of [rtt] seconds. *)

val bdp_packets : rate_bps:float -> rtt:float -> float
(** {!bdp_bytes} expressed in MSS-sized packets (fractional). *)

val transmission_time : rate_bps:float -> bytes:int -> float
(** Serialization delay of [bytes] on a link of [rate_bps] bits/s. *)
