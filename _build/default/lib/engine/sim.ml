type t = { mutable now : float; queue : Event_queue.t; root_rng : Rng.t }
type handle = Event_queue.handle

let create ?(seed = 42) () =
  { now = 0.0; queue = Event_queue.create (); root_rng = Rng.create seed }

let now t = t.now
let rng t = t.root_rng

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.now);
  Event_queue.add t.queue ~time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) f

let cancel = Event_queue.cancel

let run ?until t =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time -> (
      match until with
      | Some limit when time > limit ->
        t.now <- limit;
        continue := false
      | _ -> (
        match Event_queue.pop t.queue with
        | None -> continue := false
        | Some (time, action) ->
          t.now <- time;
          action ()))
  done;
  match until with Some limit when t.now < limit -> t.now <- limit | _ -> ()

let pending_events t = Event_queue.size t.queue
