let mss = 1500
let bits_per_byte = 8.0
let mbps x = x *. 1e6
let bps_to_mbps x = x /. 1e6
let bytes_per_sec ~bits_per_sec = bits_per_sec /. bits_per_byte
let bits_per_sec_of_bytes ~bytes_per_sec = bytes_per_sec *. bits_per_byte
let ms x = x /. 1e3
let sec_to_ms x = x *. 1e3
let bdp_bytes ~rate_bps ~rtt = rate_bps *. rtt /. bits_per_byte
let bdp_packets ~rate_bps ~rtt = bdp_bytes ~rate_bps ~rtt /. float_of_int mss

let transmission_time ~rate_bps ~bytes =
  float_of_int bytes *. bits_per_byte /. rate_bps
