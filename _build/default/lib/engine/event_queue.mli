(** A binary-heap priority queue of timestamped events.

    Events with equal timestamps fire in insertion order, which makes
    simulation runs fully deterministic. Cancellation is O(1) (lazy removal:
    cancelled events are skipped at pop time). *)

type t

type handle
(** Identifies a scheduled event so that it can be cancelled. *)

val create : unit -> t

val add : t -> time:float -> (unit -> unit) -> handle
(** [add t ~time f] schedules [f] to fire at [time]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val pop : t -> (float * (unit -> unit)) option
(** Remove and return the earliest live event, or [None] if empty. *)

val peek_time : t -> float option
(** Timestamp of the earliest live event without removing it. *)

val size : t -> int
(** Number of live (non-cancelled) events currently queued. *)

val is_empty : t -> bool
