(** Discrete-event simulation driver.

    A [t] owns the virtual clock and the event queue. Components schedule
    callbacks; {!run} executes them in timestamp order, advancing the clock.
    Time never flows backwards: scheduling in the past raises
    [Invalid_argument]. *)

type t

type handle = Event_queue.handle

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes a simulator whose root RNG is seeded with [seed]
    (default 42). *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** Root RNG; components should {!Rng.split} it rather than share it. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay]. [delay] must be
    non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule}. [time] must be [>= now t]. *)

val cancel : handle -> unit

val run : ?until:float -> t -> unit
(** Execute events in order until the queue is empty, or until the first
    event strictly after [until] (the clock is then left at [until]). *)

val pending_events : t -> int
