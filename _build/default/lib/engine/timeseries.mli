(** Append-only time series of [(time, value)] samples with time-weighted
    aggregation, used for queue occupancy and delay traces. *)

type t

val create : unit -> t

val record : t -> time:float -> float -> unit
(** Samples must be recorded with non-decreasing timestamps. *)

val length : t -> int
val is_empty : t -> bool

val last : t -> (float * float) option

val time_weighted_mean : t -> from_:float -> until:float -> float
(** Mean of the step function defined by the samples over [\[from_, until\]].
    The value before the first sample is taken as the first sample's value.
    Returns [nan] when the series is empty or the window is empty. *)

val mean : t -> float
(** Unweighted mean of the sample values ([nan] if empty). *)

val min_value : t -> ?from_:float -> unit -> float
(** Minimum sampled value at or after [from_] (default: whole series).
    [nan] if no samples qualify. *)

val max_value : t -> ?from_:float -> unit -> float

val fold : t -> init:'a -> f:('a -> time:float -> value:float -> 'a) -> 'a

val to_list : t -> (float * float) list
