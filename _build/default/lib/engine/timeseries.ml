type t = {
  mutable times : float array;
  mutable values : float array;
  mutable length : int;
}

let create () =
  { times = Array.make 256 0.0; values = Array.make 256 0.0; length = 0 }

let grow t =
  let n = Array.length t.times in
  let times = Array.make (2 * n) 0.0 and values = Array.make (2 * n) 0.0 in
  Array.blit t.times 0 times 0 t.length;
  Array.blit t.values 0 values 0 t.length;
  t.times <- times;
  t.values <- values

let record t ~time v =
  if t.length > 0 && time < t.times.(t.length - 1) then
    invalid_arg "Timeseries.record: decreasing timestamp";
  if t.length = Array.length t.times then grow t;
  t.times.(t.length) <- time;
  t.values.(t.length) <- v;
  t.length <- t.length + 1

let length t = t.length
let is_empty t = t.length = 0

let last t =
  if t.length = 0 then None
  else Some (t.times.(t.length - 1), t.values.(t.length - 1))

let time_weighted_mean t ~from_ ~until =
  if t.length = 0 || until <= from_ then nan
  else begin
    (* Treat the series as a right-continuous step function. *)
    let total = ref 0.0 in
    let value_at_start = ref t.values.(0) in
    for i = 0 to t.length - 1 do
      if t.times.(i) <= from_ then value_at_start := t.values.(i)
    done;
    let prev_t = ref from_ and prev_v = ref !value_at_start in
    for i = 0 to t.length - 1 do
      let ti = t.times.(i) in
      if ti > from_ && ti <= until then begin
        total := !total +. (!prev_v *. (ti -. !prev_t));
        prev_t := ti;
        prev_v := t.values.(i)
      end
      else if ti > until then ()
    done;
    total := !total +. (!prev_v *. (until -. !prev_t));
    !total /. (until -. from_)
  end

let mean t =
  if t.length = 0 then nan
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.length - 1 do
      sum := !sum +. t.values.(i)
    done;
    !sum /. float_of_int t.length
  end

let extremum t ~from_ ~better =
  let best = ref nan in
  for i = 0 to t.length - 1 do
    if t.times.(i) >= from_ then
      if Float.is_nan !best || better t.values.(i) !best then
        best := t.values.(i)
  done;
  !best

let min_value t ?(from_ = neg_infinity) () = extremum t ~from_ ~better:( < )
let max_value t ?(from_ = neg_infinity) () = extremum t ~from_ ~better:( > )

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.length - 1 do
    acc := f !acc ~time:t.times.(i) ~value:t.values.(i)
  done;
  !acc

let to_list t =
  List.init t.length (fun i -> (t.times.(i), t.values.(i)))
