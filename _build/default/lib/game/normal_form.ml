type t = {
  n_players : int;
  n_strategies : int;
  payoff_fn : int array -> int -> float;
  cache : (int list, float array) Hashtbl.t;
}

let create ~n_players ~n_strategies ~payoff =
  if n_players <= 0 || n_strategies <= 0 then
    invalid_arg "Normal_form.create: sizes must be positive";
  { n_players; n_strategies; payoff_fn = payoff; cache = Hashtbl.create 64 }

let n_players t = t.n_players
let n_strategies t = t.n_strategies

let payoffs t profile =
  let key = Array.to_list profile in
  match Hashtbl.find_opt t.cache key with
  | Some p -> p
  | None ->
    let p = Array.init t.n_players (t.payoff_fn profile) in
    Hashtbl.replace t.cache key p;
    p

let payoff t profile i = (payoffs t profile).(i)

let deviate profile ~player ~strategy =
  let copy = Array.copy profile in
  copy.(player) <- strategy;
  copy

let best_response t profile ~player =
  let best = ref 0 and best_payoff = ref neg_infinity in
  for s = 0 to t.n_strategies - 1 do
    let u = payoff t (deviate profile ~player ~strategy:s) player in
    if u > !best_payoff then begin
      best := s;
      best_payoff := u
    end
  done;
  !best

let is_nash t profile =
  let profitable_deviation player =
    let current = payoff t profile player in
    let rec try_strategy s =
      if s >= t.n_strategies then false
      else if
        s <> profile.(player)
        && payoff t (deviate profile ~player ~strategy:s) player > current
      then true
      else try_strategy (s + 1)
    in
    try_strategy 0
  in
  let rec check player =
    if player >= t.n_players then true
    else if profitable_deviation player then false
    else check (player + 1)
  in
  check 0

let pure_equilibria t =
  let profile = Array.make t.n_players 0 in
  let found = ref [] in
  let rec enumerate player =
    if player = t.n_players then begin
      if is_nash t profile then found := Array.copy profile :: !found
    end
    else
      for s = 0 to t.n_strategies - 1 do
        profile.(player) <- s;
        enumerate (player + 1)
      done
  in
  enumerate 0;
  List.rev !found
