lib/game/grouped_game.ml: Array Fun List
