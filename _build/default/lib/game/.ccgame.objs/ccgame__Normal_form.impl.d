lib/game/normal_form.ml: Array Hashtbl List
