lib/game/symmetric_game.mli:
