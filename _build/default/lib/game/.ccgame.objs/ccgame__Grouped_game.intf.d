lib/game/grouped_game.mli:
