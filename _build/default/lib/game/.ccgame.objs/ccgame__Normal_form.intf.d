lib/game/normal_form.mli:
