lib/game/symmetric_game.ml: Array Fun List
