(** Finite normal-form games with pure-strategy Nash Equilibrium enumeration.

    This is the general formulation of the paper's §4 game: players are
    websites/flows, strategies are congestion-control algorithms, utilities
    are throughputs. Exhaustive best-response checking is exponential in the
    number of players, so this module is for small games (the 2-flow games of
    the authors' earlier APNet work, tests, and pedagogy); the symmetric
    count-based game used for the paper's large experiments lives in
    {!Symmetric_game}. *)

type t

val create : n_players:int -> n_strategies:int -> payoff:(int array -> int -> float) -> t
(** [create ~n_players ~n_strategies ~payoff] — [payoff profile i] is player
    [i]'s utility under strategy [profile] (an array of strategy indices,
    one per player). The payoff function is memoized per profile. *)

val n_players : t -> int
val n_strategies : t -> int

val payoff : t -> int array -> int -> float

val is_nash : t -> int array -> bool
(** No player can strictly gain by a unilateral deviation. *)

val pure_equilibria : t -> int array list
(** All pure NE profiles, in lexicographic order. O(strategies^players ×
    players × strategies): keep the game small. *)

val best_response : t -> int array -> player:int -> int
(** A strategy maximizing [player]'s payoff with the others fixed (smallest
    index on ties). *)
