type entry = { symbol : string; meaning : string }

let table =
  [
    { symbol = "C"; meaning = "Bottleneck link capacity" };
    { symbol = "B"; meaning = "Bottleneck buffer size" };
    { symbol = "RTT"; meaning = "Base RTT (propagation delay)" };
    { symbol = "RTT+"; meaning = "BBR's over-estimate of the RTT" };
    { symbol = "b_c"; meaning = "CUBIC's average buffer occupancy" };
    { symbol = "b_b"; meaning = "BBR's average buffer occupancy" };
    { symbol = "Q_d"; meaning = "Queuing delay" };
    { symbol = "b_cmin"; meaning = "CUBIC's minimum buffer occupancy" };
    { symbol = "b_cmax"; meaning = "CUBIC's maximum buffer occupancy" };
    { symbol = "lambda_b"; meaning = "BBR flow's bandwidth" };
    { symbol = "lambda_c"; meaning = "CUBIC flow's bandwidth" };
    { symbol = "lambda_cmin"; meaning = "CUBIC's smallest bandwidth share" };
    { symbol = "lambda_cmax"; meaning = "CUBIC's largest bandwidth share" };
    { symbol = "W_max"; meaning = "CUBIC's largest cwnd" };
  ]

let pp_table ppf () =
  Format.fprintf ppf "%-12s %s@." "Symbol" "Meaning";
  List.iter
    (fun { symbol; meaning } ->
      Format.fprintf ppf "%-12s %s@." symbol meaning)
    table
