(** The paper's basic 2-flow model (§2.3): one CUBIC flow competing with one
    BBR flow at a drop-tail bottleneck with buffer ≥ 1 BDP.

    Pipeline (paper equations in parentheses):

    + b_cmin = (B − C·RTT)/2 — CUBIC's occupancy during BBR's ProbeRTT,
      from the in-flight cap relation b_b + b_c = 2 b_cmin + C·RTT (10)
      and the full-buffer approximation b_b + b_c ≈ B;
    + solve (18) for BBR's buffer share b_b:
      b_cmin + b_cmin/(b_cmin + b_b) · C·RTT
        = γ (B − b_b + (B − b_b)/B · C·RTT)
      where γ = 0.7 is CUBIC's post-loss fraction — generalized here so the
      multi-flow model (§2.4) can reuse the solver with its sync/de-sync γ;
    + λ_c (RTT + 2 b_cmin/C) = 2 b_cmin + C·RTT − b_b (19), λ_b = C − λ_c
      (20).

    Validity: the paper's assumptions hold for 1 BDP ≤ B ≲ 100 BDP (BBR
    cwnd-limited). {!solve} reports the regime so callers can flag
    out-of-scope points (Fig. 12). *)

type regime =
  | Shallow  (** B < 1 BDP: b_cmin would be negative; prediction clamped. *)
  | Valid
  | Ultra_deep
      (** B > 100 BDP: BBR is no longer cwnd-limited; the model is known to
          over-estimate BBR (paper §5, Fig. 12). *)

type solution = {
  bbr_buffer_bytes : float;  (** b_b. *)
  cubic_min_buffer_bytes : float;  (** b_cmin. *)
  cubic_bandwidth_bps : float;  (** λ_c in bits/s. *)
  bbr_bandwidth_bps : float;  (** λ_b in bits/s. *)
  regime : regime;
}

val solve : ?gamma:float -> Params.t -> solution
(** [gamma] is CUBIC's aggregate post-back-off fraction (default 0.7). *)

val bbr_share : ?gamma:float -> Params.t -> float
(** λ_b / C ∈ [0, 1]. *)

val predicted_queuing_delay : ?gamma:float -> Params.t -> float
(** The shared bottleneck queuing delay implied by Eq. (10):
    Qd = RTT + 2 b_cmin/C, capped at the buffer's drain time B/C (seconds).
    This is the model-side counterpart of the paper's Fig. 8(b). *)
