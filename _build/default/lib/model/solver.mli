(** Scalar root finding. The paper's Eq. (18) reduces to a one-dimensional
    root; the numerical ecosystem being out of scope, we implement a robust
    bracketing bisection ourselves. *)

val bisect :
  ?tolerance:float ->
  ?max_iterations:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [bisect ~f ~lo ~hi ()] returns an [x] in [\[lo, hi\]] with
    [f x ≈ 0], assuming [f lo] and [f hi] have opposite signs (else
    [Invalid_argument]). Default tolerance [1e-9 × (hi - lo)], 200
    iterations. *)

val find_crossing :
  f:(int -> float) -> lo:int -> hi:int -> (int * int) option
(** Smallest [k] in [\[lo, hi)] such that [f k] and [f (k+1)] have opposite
    (or zero) signs, returned as [(k, k+1)]; [None] when [f] never changes
    sign. Used to locate the Nash Equilibrium on the discrete
    flow-count axis. *)
