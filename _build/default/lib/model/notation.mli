(** The paper's Table 1 (model notation), exposed programmatically so the
    [table1] experiment can regenerate it and tests can sanity-check the
    glossary stays in sync with {!Params}. *)

type entry = { symbol : string; meaning : string }

val table : entry list
(** In the paper's order. *)

val pp_table : Format.formatter -> unit -> unit
