(** The paper's Nash-Equilibrium predictor (§4.1, Eq. 25).

    With n symmetric flows, the NE sits where the BBR per-flow bandwidth
    λ̄_b / N_b crosses the fair share C/n. The model gives one crossing per
    synchronization mode; the pair forms the "Nash region" plotted in
    Fig. 9 (expressed, as in the paper, as the number of {e CUBIC} flows at
    the NE). *)

type region = {
  cubic_at_ne_sync : float;
      (** # CUBIC flows at the NE under the synchronized bound. *)
  cubic_at_ne_desync : float;
      (** # CUBIC flows at the NE under the de-synchronized bound. *)
}

val bbr_per_flow_advantage :
  Params.t -> n:int -> n_bbr:int -> sync:Multi_flow.sync_mode -> float
(** λ̄_b/N_b − C/n in bits/s: positive when a CUBIC flow gains by switching
    to BBR (the network state moves right along the paper's Fig. 6). *)

val equilibrium_bbr_flows :
  Params.t -> n:int -> sync:Multi_flow.sync_mode -> float
(** The (fractional) number of BBR flows N_b* solving Eq. (25), found by
    scanning the integer axis for the advantage sign change and
    interpolating. Clamped to [\[0, n\]]: [n] when BBR keeps its advantage at
    every mix (paper's Case 1, NE = all-BBR). *)

val nash_region : Params.t -> n:int -> region
(** Both bounds, in CUBIC-flow counts: [n − equilibrium_bbr_flows]. *)
