(** The paper's multi-flow model (§2.4): N_c CUBIC flows aggregated into one
    CUBIC super-flow and N_b BBR flows into one BBR super-flow, reusing the
    2-flow machinery with two boundary values for CUBIC's back-off depth:

    - {b Synchronized} (Eq. 21): every CUBIC flow backs off together, so the
      aggregate falls to γ = 0.7 of its peak — the deepest trough, the lower
      bound for b̄_cmin, and hence the least-bloated BBR RTprop estimate:
      the {e lower} bound for BBR bandwidth;
    - {b De-synchronized} (Eq. 22): only one of N_c flows backs off at a
      time, so γ = (N_c − 0.3)/N_c — the upper bound for b̄_cmin and the
      {e upper} bound for BBR bandwidth (a fuller buffer during ProbeRTT
      bloats BBR's RTprop more, letting it keep more data in flight).

    Per-flow averages are Eqs. (23)–(24): λ̄_c/N_c and λ̄_b/N_b. *)

type sync_mode = Synchronized | Desynchronized

val gamma : sync_mode -> n_cubic:int -> float
(** The aggregate back-off fraction: 0.7 or (N_c − 0.3)/N_c. *)

type prediction = {
  aggregate_cubic_bps : float;  (** λ̄_c. *)
  aggregate_bbr_bps : float;  (** λ̄_b. *)
  per_flow_cubic_bps : float;  (** λ̄_c / N_c ([nan] if N_c = 0). *)
  per_flow_bbr_bps : float;  (** λ̄_b / N_b ([nan] if N_b = 0). *)
  regime : Two_flow.regime;
}

val predict :
  Params.t -> n_cubic:int -> n_bbr:int -> sync:sync_mode -> prediction
(** Degenerate mixes are handled directly: all-BBR (N_c = 0) and all-CUBIC
    (N_b = 0) saturate the link and split it evenly among their flows. *)

type interval = {
  lower_bbr_per_flow_bps : float;  (** Synchronized bound. *)
  upper_bbr_per_flow_bps : float;  (** De-synchronized bound. *)
}

val per_flow_bbr_interval : Params.t -> n_cubic:int -> n_bbr:int -> interval
(** The paper's "predicted region" (Figs. 4, 5) for the average per-flow BBR
    throughput. *)
