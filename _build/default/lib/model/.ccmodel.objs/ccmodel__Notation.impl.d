lib/model/notation.ml: Format List
