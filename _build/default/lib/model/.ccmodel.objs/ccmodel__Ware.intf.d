lib/model/ware.mli: Params
