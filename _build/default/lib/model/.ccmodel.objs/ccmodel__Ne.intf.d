lib/model/ne.mli: Multi_flow Params
