lib/model/notation.mli: Format
