lib/model/solver.mli:
