lib/model/params.mli: Format
