lib/model/ne.ml: Multi_flow Params Sim_engine Solver
