lib/model/two_flow.ml: Float Params Sim_engine Solver
