lib/model/multi_flow.ml: Params Sim_engine Two_flow
