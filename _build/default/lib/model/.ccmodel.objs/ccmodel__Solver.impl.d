lib/model/solver.ml:
