lib/model/ware.ml: Float Params Sim_engine
