lib/model/two_flow.mli: Params
