lib/model/multi_flow.mli: Params Two_flow
