lib/model/params.ml: Format Sim_engine
