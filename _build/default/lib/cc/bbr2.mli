(** A BBRv2-style congestion controller (Cardwell et al., IETF 104 draft).

    The paper (§4.6) relies on two qualitative properties of BBRv2 relative
    to BBRv1, both of which this implementation provides:

    - it keeps BBR's model-based probing structure (so it still claims a
      disproportionate share at low flow counts — Fig. 7), and
    - it reacts to packet loss by bounding its in-flight data
      ([inflight_hi], multiplicatively reduced by β = 0.7 on lossy rounds
      and probed back up gradually), making it less aggressive against
      CUBIC (Fig. 11: NE with more CUBIC flows than BBRv1).

    Simplifications versus the draft: no ECN response, no loss-rate
    threshold in Startup, bandwidth probing is time-based (reusing the v1
    gain cycle) rather than the full REFILL/UP/DOWN/CRUISE machine; the
    ProbeRTT interval is 5 s with cwnd floor 0.5×BDP per the draft. *)

type params = {
  beta : float;  (** Multiplicative inflight_hi decrease on loss (0.7). *)
  probe_rtt_interval : float;  (** Seconds between ProbeRTT episodes (5). *)
  probe_rtt_cwnd_gain : float;  (** cwnd gain during ProbeRTT (0.5). *)
  headroom_growth : float;
      (** Per-probe multiplicative inflight_hi growth when probing finds
          headroom (1.25). *)
}

val default_params : params

val make :
  ?params:params -> mss:int -> rng:Sim_engine.Rng.t -> unit -> Cc_types.t
