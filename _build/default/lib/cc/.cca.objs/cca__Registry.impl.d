lib/cc/registry.ml: Bbr Bbr2 Cc_types Copa Cubic Hashtbl List Printf Reno Sim_engine String Vegas Vivace
