lib/cc/windowed_filter.ml: List
