lib/cc/registry.mli: Cc_types Sim_engine
