lib/cc/bbr2.ml: Array Cc_types Float Sim_engine Windowed_filter
