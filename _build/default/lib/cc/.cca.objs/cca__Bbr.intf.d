lib/cc/bbr.mli: Cc_types Sim_engine
