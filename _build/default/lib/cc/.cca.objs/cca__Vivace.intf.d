lib/cc/vivace.mli: Cc_types Sim_engine
