lib/cc/bbr2.mli: Cc_types Sim_engine
