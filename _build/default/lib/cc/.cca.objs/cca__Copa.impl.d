lib/cc/copa.ml: Cc_types Float List Windowed_filter
