lib/cc/bbr.ml: Array Cc_types Float Sim_engine Windowed_filter
