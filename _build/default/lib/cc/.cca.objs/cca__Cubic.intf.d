lib/cc/cubic.mli: Cc_types
