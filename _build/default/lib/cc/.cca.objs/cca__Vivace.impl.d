lib/cc/vivace.ml: Cc_types Float
