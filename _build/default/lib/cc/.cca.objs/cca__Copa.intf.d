lib/cc/copa.mli: Cc_types
