lib/cc/windowed_filter.mli:
