(** A name-indexed registry of congestion-control constructors so that
    experiments (and user code) can select algorithms by string, and the
    [custom_cca] example can register new ones at run time. *)

type constructor = mss:int -> rng:Sim_engine.Rng.t -> Cc_types.t

val register : string -> constructor -> unit
(** Replaces any previous binding of the same name. *)

val find : string -> constructor option

val create : string -> mss:int -> rng:Sim_engine.Rng.t -> Cc_types.t
(** Like {!find} but raises [Invalid_argument] with the list of known names
    when the algorithm is unknown. *)

val names : unit -> string list
(** Registered names, sorted. The built-ins ["reno"], ["cubic"], ["bbr"],
    ["bbr2"], ["copa"], ["vegas"], ["vivace"] are pre-registered. *)
