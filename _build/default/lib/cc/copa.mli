(** Copa (Arun & Balakrishnan, NSDI 2018), default mode.

    Copa targets a sending rate of 1/(δ·d_q) packets per RTT of queuing
    delay d_q, adjusting cwnd by ±v/(δ·cwnd) per ACK with a velocity
    parameter v that doubles when the window keeps moving in one direction.

    Only the default mode (δ = 0.5) is implemented — no TCP-competitive mode
    switching. This matches the paper's empirical finding (§4.2, Fig. 7)
    that Copa obtains a below-fair-share throughput at every CUBIC/Copa
    mix: default-mode Copa refuses to sustain standing queues that
    buffer-filling CUBIC flows create. *)

type params = {
  delta : float;  (** Queue-sensitivity; default 0.5. *)
  initial_cwnd_mss : int;
}

val default_params : params

val make : ?params:params -> mss:int -> unit -> Cc_types.t
