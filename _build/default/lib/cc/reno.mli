(** TCP NewReno congestion control (RFC 5681 congestion windows): slow start,
    additive increase of one MSS per RTT, multiplicative decrease to half on
    loss. Included as the historic baseline the paper contrasts with CUBIC's
    take-over of the Internet (§1, §5). *)

val make : ?initial_cwnd_mss:int -> mss:int -> unit -> Cc_types.t
