(** PCC Vivace (Dong et al., NSDI 2018), latency flavour — an
    online-learning, rate-based controller.

    Time is split into monitor intervals (MIs) of one smoothed RTT. The
    sender alternates paired rate experiments at r(1±ε), measures the
    utility

    U(r) = (r_Mbps)^0.9 − b · r_Mbps · max(0, dRTT/dt) − c · r_Mbps · L

    (L = loss fraction) over each MI, and moves the rate along the utility
    gradient with a confidence-amplified step, clamped by a dynamic change
    bound. A slow-start-like doubling phase runs until utility first drops.

    The paper (§4.2, Fig. 7) only needs Vivace's qualitative behaviour —
    claiming a disproportionately large share against CUBIC at small flow
    counts — which emerges from the throughput-dominant utility exponent. *)

type params = {
  epsilon : float;  (** Probe amplitude (default 0.05). *)
  exponent : float;  (** Throughput utility exponent (default 0.9). *)
  latency_coeff : float;  (** b, RTT-gradient penalty (default 900). *)
  loss_coeff : float;  (** c, loss penalty (default 11.35). *)
  step_base : float;  (** θ₀, base gradient step in Mbps (default 1). *)
  max_step_frac : float;  (** Dynamic boundary: max |Δr|/r (default 0.25). *)
}

val default_params : params

val make :
  ?params:params -> mss:int -> rng:Sim_engine.Rng.t -> unit -> Cc_types.t
