(** TCP CUBIC (Ha, Rhee, Xu 2008) as implemented in the Linux kernel and as
    modelled in the paper (§2.1, Eq. 1):

    cwnd(t) = C (t - K)^3 + W_max,  K = cbrt(W_max β / C)

    with C = 0.4, β = 0.3 (so the window shrinks to 0.7 W_max on loss).
    Slow start and the TCP-friendly (Reno-tracking) region are included;
    HyStart is omitted (slow-start overshoot is bounded by the first loss,
    which is the behaviour the paper's model assumes). *)

type params = {
  c : float;  (** Cubic scaling constant (MSS/s³); Linux default 0.4. *)
  beta : float;  (** Back-off fraction removed on loss; Linux default 0.3. *)
  tcp_friendly : bool;  (** Enable the Reno-tracking lower bound. *)
  initial_cwnd_mss : int;
}

val default_params : params

val make : ?params:params -> mss:int -> unit -> Cc_types.t

val multiplicative_decrease : params -> float
(** The factor the window is multiplied by on loss: [1 - beta] (0.7 by
    default) — the quantity the paper's model depends on. *)
