(** Sliding-window extremum filters, as used by BBR.

    {!Max_rounds} keeps the maximum over the last [window] delivery rounds
    (BBR's bottleneck-bandwidth filter); {!Min_time} keeps the minimum over
    the last [window] seconds (BBR's RTprop filter). Both are O(1) amortized
    via a monotone deque. *)

module Max_rounds : sig
  type t

  val create : window:int -> t
  (** [window] is in rounds and must be positive. *)

  val update : t -> round:int -> float -> unit
  (** Insert a sample observed at [round]. Rounds must be non-decreasing. *)

  val get : t -> float
  (** Current windowed maximum; [0.] before any sample. *)
end

module Min_time : sig
  type t

  val create : window:float -> t
  (** [window] is in seconds and must be positive. *)

  val update : t -> time:float -> float -> unit

  val get : t -> float
  (** Current windowed minimum; [infinity] before any sample. *)

  val expired : t -> now:float -> bool
  (** True when the current minimum is older than the window — i.e. BBR's
      condition for entering ProbeRTT. *)

  val age : t -> now:float -> float
  (** Seconds since the current minimum was recorded ([infinity] if none). *)
end
