(* Monotone-deque sliding extremum. Entries are (position, value); the deque
   is kept sorted so the front holds the current extremum. *)

type entry = { pos : float; value : float }

type deque = {
  mutable entries : entry list;  (* front = extremum, back = newest *)
  window : float;
  keep : float -> float -> bool;  (* [keep old new_] : old still dominates *)
}

let deque_update d ~pos value =
  (* Drop dominated entries from the back. *)
  let rec drop = function
    | e :: rest when not (d.keep e.value value) -> drop rest
    | l -> l
  in
  let back_trimmed = drop (List.rev d.entries) in
  let entries = List.rev ({ pos; value } :: back_trimmed) in
  (* Expire entries older than the window from the front. *)
  let rec expire = function
    | e :: (_ :: _ as rest) when e.pos < pos -. d.window -> expire rest
    | l -> l
  in
  d.entries <- expire entries

let deque_front d = match d.entries with [] -> None | e :: _ -> Some e

module Max_rounds = struct
  type t = { d : deque; mutable last_round : int }

  let create ~window =
    if window <= 0 then invalid_arg "Max_rounds.create: window";
    {
      d = { entries = []; window = float_of_int window; keep = ( > ) };
      last_round = min_int;
    }

  let update t ~round value =
    if round < t.last_round then
      invalid_arg "Max_rounds.update: decreasing round";
    t.last_round <- round;
    deque_update t.d ~pos:(float_of_int round) value

  let get t = match deque_front t.d with None -> 0.0 | Some e -> e.value
end

module Min_time = struct
  type t = { d : deque }

  let create ~window =
    if window <= 0.0 then invalid_arg "Min_time.create: window";
    { d = { entries = []; window; keep = ( < ) } }

  let update t ~time value = deque_update t.d ~pos:time value

  let get t = match deque_front t.d with None -> infinity | Some e -> e.value

  let age t ~now =
    match deque_front t.d with None -> infinity | Some e -> now -. e.pos

  let expired t ~now =
    match deque_front t.d with
    | None -> true
    | Some e -> now -. e.pos > t.d.window
end
