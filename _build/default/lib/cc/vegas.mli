(** TCP Vegas (Brakmo & Peterson 1994) — the classic delay-based algorithm.

    Vegas estimates the number of its own packets queued at the bottleneck,
    diff = (cwnd/base_rtt − cwnd/rtt) × base_rtt, and nudges the window by
    ±1 MSS per RTT to keep diff within [α, β] (defaults 2 and 4 packets).

    Included because the paper's related work (§6, refs [1] and [28])
    builds its game-theoretic lineage on Reno/Vegas interactions; Vegas is
    also the canonical example of a delay-based CCA that loses to
    buffer-fillers, making it a useful contrast to Copa and BBR in
    experiments built on this library. *)

type params = {
  alpha : float;  (** Lower diff target, packets (default 2). *)
  beta : float;  (** Upper diff target, packets (default 4). *)
  initial_cwnd_mss : int;
}

val default_params : params

val make : ?params:params -> mss:int -> unit -> Cc_types.t
