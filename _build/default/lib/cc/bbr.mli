(** BBR v1 (Cardwell et al., 2016) — the paper's protagonist.

    Faithful to the published design at the level the paper's model depends
    on:

    - Startup: pacing/cwnd gain 2/ln 2 ≈ 2.885, exits when the bandwidth
      estimate plateaus (< 25% growth for 3 rounds);
    - Drain: inverse Startup gain until in-flight ≤ 1 estimated BDP;
    - ProbeBW: the 8-phase gain cycle [1.25, 0.75, 1 × 6], one phase per
      RTprop;
    - ProbeRTT: every 10 s, cwnd clamped to 4 MSS for 200 ms so the RTprop
      estimate can refresh (the mechanism behind the paper's Eq. 9);
    - bandwidth filter: windowed max over 10 rounds of delivery-rate samples;
    - RTprop: running minimum with the Linux rule that an expired estimate
      adopts the next sample unconditionally;
    - in-flight cap: cwnd = cwnd_gain × BDP with cwnd_gain = 2 in ProbeBW —
      the 2×BDP cap at the heart of the paper's model (§2.3, assumption 2);
    - loss-agnostic: packet loss does not change the window (§2.3,
      assumption 4).

    Omitted (documented simplifications): long-term bandwidth sampling for
    policers, packet conservation during recovery, delayed-ACK compensation. *)

type params = {
  bw_window_rounds : int;  (** Bandwidth max-filter window (default 10). *)
  rtprop_window : float;  (** RTprop expiry (default 10 s). *)
  probe_rtt_duration : float;  (** ProbeRTT hold time (default 0.2 s). *)
  probe_bw_cwnd_gain : float;  (** cwnd gain in ProbeBW (default 2.0). *)
  high_gain : float;  (** Startup gain (default 2/ln 2). *)
}

val default_params : params

val make :
  ?params:params -> mss:int -> rng:Sim_engine.Rng.t -> unit -> Cc_types.t

val mode_of : Cc_types.t -> string
(** Convenience alias for [t.state ()] (one of "Startup", "Drain", "ProbeBW",
    "ProbeRTT"). *)
