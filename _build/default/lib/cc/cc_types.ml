type ack_info = {
  now : float;
  rtt_sample : float;
  acked_bytes : int;
  delivered : float;
  delivery_rate : float;
  rate_app_limited : bool;
  inflight_bytes : int;
  round : int;
  round_start : bool;
}

type loss_info = {
  now : float;
  lost_bytes : int;
  inflight_bytes : int;
  via_timeout : bool;
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : loss_info -> unit;
  on_send : now:float -> inflight_bytes:int -> unit;
  cwnd_bytes : unit -> float;
  pacing_rate : unit -> float option;
  state : unit -> string;
}

let min_cwnd_bytes ~mss = float_of_int (2 * mss)
