lib/tcpflow/sender.ml: Cca Float Hashtbl Netsim Queue Sim_engine
