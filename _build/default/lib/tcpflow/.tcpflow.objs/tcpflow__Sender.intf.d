lib/tcpflow/sender.mli: Cca Netsim
