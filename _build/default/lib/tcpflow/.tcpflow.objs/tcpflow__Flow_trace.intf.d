lib/tcpflow/flow_trace.mli: Sender Sim_engine
