lib/tcpflow/flow_trace.ml: Cca Hashtbl List Option Printf Sender Sim_engine String
