lib/tcpflow/experiment.mli:
