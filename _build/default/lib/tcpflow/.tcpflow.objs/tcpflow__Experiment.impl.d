lib/tcpflow/experiment.ml: Array Cca Float List Netsim Sender Sim_engine
