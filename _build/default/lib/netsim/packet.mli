(** Data packets traversing the forward path of the simulated network.

    Only data packets are modelled as queue-occupying objects; ACKs travel on
    the uncongested reverse path and are represented as scheduled callbacks
    (see {!Tcpflow.Receiver}), matching the paper's single-bottleneck setup
    where the ACK path is never the bottleneck.

    The [delivered]/[delivered_time]/[app_limited] fields snapshot the
    sender's delivery state at transmission time; they implement the delivery
    rate estimator that BBR's bandwidth filter consumes. *)

type t = {
  flow : int;  (** Flow identifier, unique within an experiment. *)
  seq : int;  (** Segment sequence number (in MSS units). *)
  size : int;  (** Wire size in bytes. *)
  retransmit : bool;  (** True when this is a retransmission. *)
  sent_time : float;  (** Time this (re)transmission left the sender. *)
  delivered : float;
      (** Bytes the sender had cumulatively delivered when this packet was
          sent. *)
  delivered_time : float;
      (** Time of the most recent delivery when this packet was sent. *)
  app_limited : bool;
      (** Whether the sender was application-limited at send time. *)
}

val make :
  flow:int ->
  seq:int ->
  size:int ->
  retransmit:bool ->
  sent_time:float ->
  delivered:float ->
  delivered_time:float ->
  app_limited:bool ->
  t

val pp : Format.formatter -> t -> unit
