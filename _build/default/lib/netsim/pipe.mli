(** A pure propagation-delay element: delivers each packet to the next hop
    after a per-flow one-way delay (supporting the paper's multi-RTT
    experiments, §4.5). *)

type t

val create :
  sim:Sim_engine.Sim.t ->
  delay_of:(Packet.t -> float) ->
  deliver:(Packet.t -> unit) ->
  t

val send : t -> Packet.t -> unit

val in_flight : t -> int
(** Packets currently propagating. *)
