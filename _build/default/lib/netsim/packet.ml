type t = {
  flow : int;
  seq : int;
  size : int;
  retransmit : bool;
  sent_time : float;
  delivered : float;
  delivered_time : float;
  app_limited : bool;
}

let make ~flow ~seq ~size ~retransmit ~sent_time ~delivered ~delivered_time
    ~app_limited =
  { flow; seq; size; retransmit; sent_time; delivered; delivered_time;
    app_limited }

let pp ppf p =
  Format.fprintf ppf "flow=%d seq=%d size=%d%s t=%.6f" p.flow p.seq p.size
    (if p.retransmit then " retx" else "")
    p.sent_time
