lib/netsim/pipe.ml: Packet Sim_engine
