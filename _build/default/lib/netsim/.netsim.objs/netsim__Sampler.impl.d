lib/netsim/sampler.ml: Droptail_queue List Sim_engine
