lib/netsim/dumbbell.mli: Droptail_queue Link Packet Sim_engine
