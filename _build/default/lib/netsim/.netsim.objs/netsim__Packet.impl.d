lib/netsim/packet.ml: Format
