lib/netsim/droptail_queue.ml: Float Hashtbl Option Packet Queue Sim_engine
