lib/netsim/link.ml: Droptail_queue Packet Sim_engine
