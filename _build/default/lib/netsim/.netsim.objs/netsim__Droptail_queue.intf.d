lib/netsim/droptail_queue.mli: Packet Sim_engine
