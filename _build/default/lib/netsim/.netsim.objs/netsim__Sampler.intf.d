lib/netsim/sampler.mli: Droptail_queue Sim_engine
