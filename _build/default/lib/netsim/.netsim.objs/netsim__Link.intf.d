lib/netsim/link.mli: Droptail_queue Packet Sim_engine
