lib/netsim/dumbbell.ml: Droptail_queue Hashtbl Link List Packet Pipe Sim_engine
