lib/netsim/pipe.mli: Packet Sim_engine
