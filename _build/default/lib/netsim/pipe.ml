type t = {
  sim : Sim_engine.Sim.t;
  delay_of : Packet.t -> float;
  deliver : Packet.t -> unit;
  mutable in_flight : int;
}

let create ~sim ~delay_of ~deliver = { sim; delay_of; deliver; in_flight = 0 }

let send t p =
  let delay = t.delay_of p in
  if delay < 0.0 then invalid_arg "Pipe.send: negative delay";
  t.in_flight <- t.in_flight + 1;
  ignore
    (Sim_engine.Sim.schedule t.sim ~delay (fun () ->
         t.in_flight <- t.in_flight - 1;
         t.deliver p))

let in_flight t = t.in_flight
