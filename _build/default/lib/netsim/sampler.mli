(** Periodic polling of queue state into {!Sim_engine.Timeseries} traces.

    Experiments use these traces to measure the model's buffer-occupancy
    quantities (b_c, b_b, b_cmin, b_cmax) and the shared queuing delay. *)

type t

val create :
  sim:Sim_engine.Sim.t ->
  queue:Droptail_queue.t ->
  period:float ->
  ?flow_classes:(string * (int -> bool)) list ->
  unit ->
  t
(** Starts sampling immediately and then every [period] seconds. Each sample
    records total occupancy plus one series per named flow class. *)

val stop : t -> unit

val total : t -> Sim_engine.Timeseries.t
(** Total queue occupancy in bytes over time. *)

val class_series : t -> string -> Sim_engine.Timeseries.t
(** Occupancy series of a named flow class. Raises [Not_found] if the class
    was not registered. *)

val queuing_delay : t -> rate_bps:float -> from_:float -> until:float -> float
(** Time-weighted mean queuing delay over the window: mean occupancy divided
    by drain rate. *)
