(** Convenience wrappers around {!Tcpflow.Experiment} used by several
    figures: homogeneous-RTT mixes of CUBIC and one other CCA, averaged over
    trials. *)

type summary = {
  per_flow_cubic_bps : float;  (** Mean per-flow CUBIC goodput; nan if none. *)
  per_flow_other_bps : float;  (** Same for the non-CUBIC CCA. *)
  aggregate_other_bps : float;
  queuing_delay : float;  (** Seconds, averaged over trials. *)
  utilization : float;
}

val mix :
  ?duration:float ->
  ?warmup:float ->
  ?aqm:Tcpflow.Experiment.aqm ->
  mode:Common.mode ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  n_cubic:int ->
  other:string ->
  n_other:int ->
  ?base_seed:int ->
  unit ->
  summary
(** Runs [trials mode] packet-level simulations of [n_cubic] CUBIC flows vs
    [n_other] flows of CCA [other] and averages the results. *)

val config :
  ?duration:float ->
  ?warmup:float ->
  ?aqm:Tcpflow.Experiment.aqm ->
  mode:Common.mode ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  flows:Tcpflow.Experiment.flow_config list ->
  seed:int ->
  unit ->
  Tcpflow.Experiment.config
(** The underlying config builder (exposed for bespoke experiments such as
    the multi-RTT runs). [duration]/[warmup] default to the mode's values. *)
