lib/experiments/fig11.ml: Ccmodel Common Fig09 Float List Printf
