lib/experiments/catalog.mli: Common
