lib/experiments/ext_short_flows.ml: Array Cca Ccmodel Common List Netsim Sim_engine Tcpflow
