lib/experiments/ext_two_flow_game.ml: Array Ccgame Common Hashtbl List Printf Runs Sim_engine Tcpflow
