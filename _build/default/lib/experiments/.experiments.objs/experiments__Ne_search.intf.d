lib/experiments/ne_search.mli: Common Fluidsim
