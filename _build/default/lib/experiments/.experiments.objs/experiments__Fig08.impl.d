lib/experiments/fig08.ml: Common Float List Printf Runs Sim_engine
