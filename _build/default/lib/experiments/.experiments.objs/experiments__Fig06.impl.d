lib/experiments/fig06.ml: Ccmodel Common List Printf Sim_engine
