lib/experiments/fig07.ml: Common List Printf Runs Sim_engine
