lib/experiments/ext_utility.ml: Ccgame Common Hashtbl List Printf Runs Sim_engine String
