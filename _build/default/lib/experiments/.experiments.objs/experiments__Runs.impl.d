lib/experiments/runs.ml: Common List Option Sim_engine Tcpflow
