lib/experiments/ne_search.ml: Ccgame Fluidsim Hashtbl List Runs
