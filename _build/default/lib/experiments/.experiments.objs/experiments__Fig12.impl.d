lib/experiments/fig12.ml: Ccmodel Common List Printf Runs
