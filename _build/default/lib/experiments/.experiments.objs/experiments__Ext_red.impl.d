lib/experiments/ext_red.ml: Common List Printf Runs Sim_engine Tcpflow
