lib/experiments/ext_internals.ml: Ccmodel Common List Printf Sim_engine Tcpflow
