lib/experiments/fig05.ml: Ccmodel Common List Runs Sim_engine
