lib/experiments/fig09.ml: Ccmodel Common Float List Ne_search Printf Sim_engine String
