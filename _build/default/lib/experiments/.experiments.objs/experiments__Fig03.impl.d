lib/experiments/fig03.ml: Ccmodel Common List Printf Runs Sim_engine
