lib/experiments/common.ml: Filename Float Format Fun List Printf Sim_engine String Sys
