lib/experiments/runs.mli: Common Tcpflow
