lib/experiments/fig01.ml: Ccmodel Common List Printf Runs
