lib/experiments/table1.ml: Ccmodel Common List
