lib/experiments/fig04.ml: Ccmodel Common Float List Printf Runs
