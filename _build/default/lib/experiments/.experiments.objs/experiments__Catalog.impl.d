lib/experiments/catalog.ml: Common Ext_internals Ext_red Ext_short_flows Ext_two_flow_game Ext_utility Fig01 Fig03 Fig04 Fig05 Fig06 Fig07 Fig08 Fig09 Fig10 Fig11 Fig12 List Table1
