lib/experiments/fig10.ml: Array Ccgame Ccmodel Common Float Hashtbl List Printf Runs Sim_engine String Tcpflow
