(** Extension (beyond the paper's evaluation; motivated by its §1/§6
    discussion of in-network mechanisms): how does an AQM change the
    CUBIC/BBR balance?

    The paper's model assumes a drop-tail bottleneck; its related work notes
    that Nash Equilibria between loss-based flows can flip from efficient to
    inefficient under RED (Chien & Sinclair). Here we re-run the fig03-style
    1v1 sweep and a 5v5 mix under RED (classic gentle parameterization) and
    compare against drop-tail. Expectation: RED's early drops keep the
    average queue near min_threshold, shrinking b_cmin and with it BBR's
    RTprop inflation — so BBR's advantage over CUBIC should {e grow} in deep
    buffers relative to drop-tail, while the shared queuing delay falls. *)

let mbps = 50.0
let rtt_ms = 40.0

type point = {
  buffer_bdp : float;
  n_each : int;
  droptail_bbr_bps : float;
  red_bbr_bps : float;
  droptail_qdelay : float;
  red_qdelay : float;
}

let points mode =
  List.concat_map
    (fun n_each ->
      List.map
        (fun buffer_bdp ->
          let run aqm =
            Runs.mix ~aqm ~mode ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:n_each
              ~other:"bbr" ~n_other:n_each ()
          in
          let droptail = run Tcpflow.Experiment.Tail_drop in
          let red = run Tcpflow.Experiment.Red_default in
          {
            buffer_bdp;
            n_each;
            droptail_bbr_bps = droptail.per_flow_other_bps;
            red_bbr_bps = red.per_flow_other_bps;
            droptail_qdelay = droptail.queuing_delay;
            red_qdelay = red.queuing_delay;
          })
        (match mode with
        | Common.Quick -> [ 2.0; 5.0; 10.0; 20.0 ]
        | Common.Full -> [ 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0; 30.0 ]))
    [ 1; 5 ]

let run mode : Common.table =
  let points = points mode in
  let delay_reduced =
    List.for_all
      (fun p -> p.buffer_bdp < 3.0 || p.red_qdelay <= p.droptail_qdelay)
      points
  in
  {
    Common.id = "ext-red";
    title = "Extension: CUBIC vs BBR under RED AQM vs drop-tail";
    header =
      [ "flows"; "buffer(BDP)"; "bbr_droptail"; "bbr_red"; "qdelay_dt(ms)";
        "qdelay_red(ms)" ];
    rows =
      List.map
        (fun p ->
          [
            Printf.sprintf "%dv%d" p.n_each p.n_each;
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.droptail_bbr_bps);
            Common.cell (Common.mbps p.red_bbr_bps);
            Common.cell (Sim_engine.Units.sec_to_ms p.droptail_qdelay);
            Common.cell (Sim_engine.Units.sec_to_ms p.red_qdelay);
          ])
        points;
    notes =
      [
        Printf.sprintf
          "RED keeps queuing delay at/below drop-tail levels in deeper \
           buffers: %b"
          delay_reduced;
        "implication for the paper's NE analysis: AQMs decouple the buffer \
         size from b_cmin, so the Nash region's buffer-dependence (Fig. 9) \
         is a drop-tail phenomenon";
      ];
  }
