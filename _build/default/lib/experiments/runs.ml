module E = Tcpflow.Experiment

type summary = {
  per_flow_cubic_bps : float;
  per_flow_other_bps : float;
  aggregate_other_bps : float;
  queuing_delay : float;
  utilization : float;
}

let config ?duration ?warmup ?(aqm = E.Tail_drop) ~mode ~mbps ~rtt_ms
    ~buffer_bdp ~flows ~seed () =
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  {
    E.rate_bps;
    buffer_bytes = E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp;
    flows;
    duration = Option.value duration ~default:(Common.duration mode);
    warmup = Option.value warmup ~default:(Common.warmup mode);
    seed;
    sample_period = 0.001;
    aqm;
  }

let mix ?duration ?warmup ?aqm ~mode ~mbps ~rtt_ms ~buffer_bdp ~n_cubic
    ~other ~n_other ?(base_seed = 1) () =
  if n_cubic + n_other = 0 then invalid_arg "Runs.mix: no flows";
  let rtt = Sim_engine.Units.ms rtt_ms in
  let flows =
    List.init n_cubic (fun _ -> E.flow_config ~base_rtt:rtt "cubic")
    @ List.init n_other (fun _ -> E.flow_config ~base_rtt:rtt other)
  in
  let results =
    List.init (Common.trials mode) (fun trial ->
        E.run
          (config ?duration ?warmup ?aqm ~mode ~mbps ~rtt_ms ~buffer_bdp
             ~flows ~seed:(base_seed + (1000 * trial)) ()))
  in
  let avg f = Common.mean (List.map f results) in
  {
    per_flow_cubic_bps =
      (if n_cubic = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r "cubic"));
    per_flow_other_bps =
      (if n_other = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r other));
    aggregate_other_bps = avg (fun r -> E.aggregate_throughput_of_cca r other);
    queuing_delay = avg (fun r -> r.E.queuing_delay);
    utilization = avg (fun r -> r.E.utilization);
  }
