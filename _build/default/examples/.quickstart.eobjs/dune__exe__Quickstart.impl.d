examples/quickstart.ml: Ccmodel Printf Sim_engine Tcpflow
