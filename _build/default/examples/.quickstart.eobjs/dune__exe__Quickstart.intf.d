examples/quickstart.mli:
