examples/custom_cca.mli:
