examples/trace_dynamics.ml: Cca Filename List Netsim Printf Sim_engine Tcpflow
