examples/ne_prediction.mli:
