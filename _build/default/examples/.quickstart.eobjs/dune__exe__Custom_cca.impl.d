examples/custom_cca.ml: Cca Float List Printf Sim_engine Tcpflow
