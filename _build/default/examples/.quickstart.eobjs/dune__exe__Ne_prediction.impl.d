examples/ne_prediction.ml: Ccmodel Experiments List Printf Sim_engine String
