examples/buffer_sizing.ml: List Printf Sim_engine Tcpflow
