examples/trace_dynamics.mli:
