let check_alloc x =
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0.0 then
        invalid_arg "Fairness: allocation entries must be finite and >= 0")
    x

let jain x =
  check_alloc x;
  let n = Array.length x in
  if n = 0 then 1.0
  else begin
    let sum = ref 0.0 and sumsq = ref 0.0 in
    Array.iter
      (fun v ->
        sum := !sum +. v;
        sumsq := !sumsq +. (v *. v))
      x;
    if !sumsq = 0.0 then 1.0 (* simlint: allow R4 *)
    else !sum *. !sum /. (float_of_int n *. !sumsq)
  end

let check_trajectory times series =
  let k = Array.length times in
  if k = 0 then invalid_arg "Fairness: empty trajectory";
  if Array.length series <> k then
    invalid_arg "Fairness: times/series length mismatch"

(* Index of the first sample inside the trailing [frac] of the time span. *)
let tail_start ~frac times =
  let k = Array.length times in
  let t0 = times.(0) and t1 = times.(k - 1) in
  let cut = t1 -. (frac *. (t1 -. t0)) in
  let i = ref (k - 1) in
  while !i > 0 && times.(!i - 1) >= cut do
    decr i
  done;
  !i

let tail_mean ~frac ~times ~series =
  check_trajectory times series;
  if not (frac > 0.0 && frac <= 1.0) then
    invalid_arg "Fairness.tail_mean: frac must be in (0, 1]";
  let start = tail_start ~frac times in
  let k = Array.length times in
  let n = Array.length series.(0) in
  let acc = Array.make n 0.0 in
  for j = start to k - 1 do
    let row = series.(j) in
    for i = 0 to n - 1 do
      acc.(i) <- acc.(i) +. row.(i)
    done
  done;
  let count = float_of_int (k - start) in
  Array.map (fun s -> s /. count) acc

let convergence_time ~times ~series ~final ~rel_band ~abs_band =
  check_trajectory times series;
  let k = Array.length times in
  let n = Array.length final in
  let inside row =
    let ok = ref true in
    for i = 0 to n - 1 do
      let band = Float.max (rel_band *. Float.abs final.(i)) abs_band in
      if Float.abs (row.(i) -. final.(i)) > band then ok := false
    done;
    !ok
  in
  (* Walk backwards: the convergence point is just after the last sample
     that escapes its band. *)
  let j = ref (k - 1) in
  let stop = ref false in
  while not !stop && !j >= 0 do
    if inside series.(!j) then decr j else stop := true
  done;
  if !j = k - 1 then infinity else times.(!j + 1)

(* ---------- flow-completion-time metrics ---------- *)

let ideal_fct ~rtt_s ~rate_bps ~size_bytes =
  if not (rtt_s >= 0.0 && Float.is_finite rtt_s) then
    invalid_arg "Fairness.ideal_fct: rtt_s must be finite and >= 0";
  if not (rate_bps > 0.0 && Float.is_finite rate_bps) then
    invalid_arg "Fairness.ideal_fct: rate_bps must be finite and > 0";
  if size_bytes <= 0 then invalid_arg "Fairness.ideal_fct: size_bytes must be > 0";
  rtt_s +. (8.0 *. float_of_int size_bytes /. rate_bps)

let slowdown ~ideal_s ~fct_s =
  if not (ideal_s > 0.0 && Float.is_finite ideal_s) then
    invalid_arg "Fairness.slowdown: ideal_s must be finite and > 0";
  if not (fct_s > 0.0 && Float.is_finite fct_s) then
    invalid_arg "Fairness.slowdown: fct_s must be finite and > 0";
  fct_s /. ideal_s

let fct_percentiles ?(ps = [ 50.0; 95.0; 99.0 ]) fcts =
  match fcts with
  | [] -> List.map (fun p -> (p, nan)) ps
  | _ -> List.map (fun p -> (p, Sim_engine.Stats.percentile fcts ~p)) ps

let default_size_bounds = [| 100_000; 1_000_000 |]

let bin_of_size ~bounds size_bytes =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && size_bytes >= bounds.(!i) do
    incr i
  done;
  !i

let binned_mean_slowdown ?(bounds = default_size_bounds) ~ideal completions =
  let n = Array.length bounds + 1 in
  let sums = Array.make n 0.0 and counts = Array.make n 0 in
  List.iter
    (fun (size_bytes, fct_s) ->
      let b = bin_of_size ~bounds size_bytes in
      sums.(b) <- sums.(b) +. slowdown ~ideal_s:(ideal size_bytes) ~fct_s;
      counts.(b) <- counts.(b) + 1)
    completions;
  Array.init n (fun b ->
      if counts.(b) = 0 then nan else sums.(b) /. float_of_int counts.(b))

let oscillation_amplitude ~tail_frac ~times ~series =
  check_trajectory times series;
  if not (tail_frac > 0.0 && tail_frac <= 1.0) then
    invalid_arg "Fairness.oscillation_amplitude: tail_frac must be in (0, 1]";
  let start = tail_start ~frac:tail_frac times in
  let k = Array.length times in
  let n = Array.length series.(0) in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let lo = ref series.(start).(i) and hi = ref series.(start).(i) in
    for j = start + 1 to k - 1 do
      let v = series.(j).(i) in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    if !hi -. !lo > !worst then worst := !hi -. !lo
  done;
  !worst
