let check_alloc x =
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0.0 then
        invalid_arg "Fairness: allocation entries must be finite and >= 0")
    x

let jain x =
  check_alloc x;
  let n = Array.length x in
  if n = 0 then 1.0
  else begin
    let sum = ref 0.0 and sumsq = ref 0.0 in
    Array.iter
      (fun v ->
        sum := !sum +. v;
        sumsq := !sumsq +. (v *. v))
      x;
    if !sumsq = 0.0 then 1.0 (* simlint: allow R4 *)
    else !sum *. !sum /. (float_of_int n *. !sumsq)
  end

let check_trajectory times series =
  let k = Array.length times in
  if k = 0 then invalid_arg "Fairness: empty trajectory";
  if Array.length series <> k then
    invalid_arg "Fairness: times/series length mismatch"

(* Index of the first sample inside the trailing [frac] of the time span. *)
let tail_start ~frac times =
  let k = Array.length times in
  let t0 = times.(0) and t1 = times.(k - 1) in
  let cut = t1 -. (frac *. (t1 -. t0)) in
  let i = ref (k - 1) in
  while !i > 0 && times.(!i - 1) >= cut do
    decr i
  done;
  !i

let tail_mean ~frac ~times ~series =
  check_trajectory times series;
  if not (frac > 0.0 && frac <= 1.0) then
    invalid_arg "Fairness.tail_mean: frac must be in (0, 1]";
  let start = tail_start ~frac times in
  let k = Array.length times in
  let n = Array.length series.(0) in
  let acc = Array.make n 0.0 in
  for j = start to k - 1 do
    let row = series.(j) in
    for i = 0 to n - 1 do
      acc.(i) <- acc.(i) +. row.(i)
    done
  done;
  let count = float_of_int (k - start) in
  Array.map (fun s -> s /. count) acc

let convergence_time ~times ~series ~final ~rel_band ~abs_band =
  check_trajectory times series;
  let k = Array.length times in
  let n = Array.length final in
  let inside row =
    let ok = ref true in
    for i = 0 to n - 1 do
      let band = Float.max (rel_band *. Float.abs final.(i)) abs_band in
      if Float.abs (row.(i) -. final.(i)) > band then ok := false
    done;
    !ok
  in
  (* Walk backwards: the convergence point is just after the last sample
     that escapes its band. *)
  let j = ref (k - 1) in
  let stop = ref false in
  while not !stop && !j >= 0 do
    if inside series.(!j) then decr j else stop := true
  done;
  if !j = k - 1 then infinity else times.(!j + 1)

let oscillation_amplitude ~tail_frac ~times ~series =
  check_trajectory times series;
  if not (tail_frac > 0.0 && tail_frac <= 1.0) then
    invalid_arg "Fairness.oscillation_amplitude: tail_frac must be in (0, 1]";
  let start = tail_start ~frac:tail_frac times in
  let k = Array.length times in
  let n = Array.length series.(0) in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let lo = ref series.(start).(i) and hi = ref series.(start).(i) in
    for j = start + 1 to k - 1 do
      let v = series.(j).(i) in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    if !hi -. !lo > !worst then worst := !hi -. !lo
  done;
  !worst
