type regime = Shallow | Valid | Ultra_deep

type solution = {
  bbr_buffer_bytes : float;
  cubic_min_buffer_bytes : float;
  cubic_bandwidth_bps : float;
  bbr_bandwidth_bps : float;
  regime : regime;
}

let regime_of params =
  let x = Params.buffer_in_bdp params in
  if x < 1.0 then Shallow else if x > 100.0 then Ultra_deep else Valid

(* Residual of Eq. (18) as a function of BBR's buffer share b_b. *)
let residual ~(params : Params.t) ~gamma ~b_cmin b_b =
  let c = params.capacity and b = params.buffer and rtt = params.rtt in
  let bdp = c *. rtt in
  let lhs = b_cmin +. (b_cmin /. (b_cmin +. b_b) *. bdp) in
  let rhs = gamma *. (b -. b_b +. ((b -. b_b) /. b *. bdp)) in
  lhs -. rhs

let solve ?(gamma = 0.7) (params : Params.t) =
  if gamma <= 0.0 || gamma >= 1.0 then invalid_arg "Two_flow.solve: gamma";
  let c = params.capacity and b = params.buffer and rtt = params.rtt in
  let bdp = c *. rtt in
  let regime = regime_of params in
  let b_cmin = Float.max 0.0 ((b -. bdp) /. 2.0) in
  let b_b =
    if Sim_engine.Stats.is_zero b_cmin then
      (* Sub-BDP buffers violate assumption 1; the model degenerates. We
         clamp to the paper's (and Hock et al.'s) empirical observation for
         shallow buffers: BBR's 2xBDP in-flight overwhelms the buffer and
         starves CUBIC, i.e. b_b = B and lambda_c ~ 0. *)
      b
    else begin
      let f = residual ~params ~gamma ~b_cmin in
      (* f(0) < 0 < f(B) whenever B > 1 BDP (see the interface docs);
         bracket defensively anyway. *)
      let lo = 0.0 and hi = b in
      if f lo *. f hi > 0.0 then if f lo > 0.0 then lo else hi
      else Solver.bisect ~f ~lo ~hi ()
    end
  in
  (* Eq. (19): λ_c (RTT + 2 b_cmin / C) = 2 b_cmin + C RTT − b_b. In the
     shallow clamp above b_cmin = 0 and b_b = B; feeding Eq. (19) would
     hand CUBIC the whole wire, which inverts the observed behaviour, so
     the clamp sets λ_c = 0 directly. *)
  let lambda_c =
    if regime = Shallow then 0.0
    else ((2.0 *. b_cmin) +. bdp -. b_b) /. (rtt +. (2.0 *. b_cmin /. c))
  in
  let lambda_c = Float.max 0.0 (Float.min c lambda_c) in
  let lambda_b = c -. lambda_c in
  {
    bbr_buffer_bytes = b_b;
    cubic_min_buffer_bytes = b_cmin;
    cubic_bandwidth_bps =
      (Sim_engine.Units.bits_per_sec_of_bytes ~bytes_per_sec:lambda_c
        :> float);
    bbr_bandwidth_bps =
      (Sim_engine.Units.bits_per_sec_of_bytes ~bytes_per_sec:lambda_b
        :> float);
    regime;
  }

(* Eq. (10): the average queue holds 2 b_cmin + C RTT bytes minus the wire
   component, i.e. queuing delay Qd = RTT + 2 b_cmin / C minus nothing —
   Qd here is the bottleneck queuing delay seen by both flows. *)
let predicted_queuing_delay ?gamma params =
  let solution = solve ?gamma params in
  let c = params.Params.capacity in
  if solution.regime = Shallow then params.Params.buffer /. c
  else begin
    let qd =
      params.Params.rtt +. (2.0 *. solution.cubic_min_buffer_bytes /. c)
    in
    (* The queue cannot exceed the physical buffer. *)
    Float.min qd (params.Params.buffer /. c)
  end

let bbr_share ?gamma params =
  let solution = solve ?gamma params in
  solution.bbr_bandwidth_bps
  /. (Sim_engine.Units.bits_per_sec_of_bytes
        ~bytes_per_sec:params.Params.capacity
      :> float)
