(** The state-of-the-art baseline the paper argues against: the model of
    Ware, Mukerjee, Seshan & Sherry, "Modeling BBR's Interactions with
    Loss-Based Congestion Control" (IMC 2019), as restated in the paper's
    Eqs. (2)–(4):

    BBR_frac = (1 − p) (d − Probe_time)/d
    p          = 1/2 − 1/(2X) − 4N/q
    Probe_time = (q/c + 0.2 + l)(d/10)

    where X is the buffer in BDP, N the number of BBR flows, q the buffer
    size (packets), c the capacity (packets/s), l the base RTT and d the
    experiment duration. The 4N/q term is the 4 packets per BBR flow left
    in flight during ProbeRTT; Probe_time charges one queue-drain +
    200 ms + one RTT per 10-second ProbeRTT cycle.

    Key property (the one the paper refutes): the prediction is independent
    of the number of competing CUBIC flows and assumes a permanently full
    buffer. *)

val bbr_fraction :
  params:Params.t -> n_bbr:int -> duration:Sim_engine.Units.seconds -> float
(** Predicted aggregate fraction of capacity taken by [n_bbr] BBR flows,
    clamped to [\[0, 1\]]. *)

val bbr_bandwidth_bps :
  params:Params.t -> n_bbr:int -> duration:Sim_engine.Units.seconds -> float
(** {!bbr_fraction} × capacity, in bits/s. *)
