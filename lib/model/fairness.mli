(** Fairness and stability metrics over per-flow allocations and sampled
    rate trajectories.

    Used by the ODE competition backend ({!Fluidsim.Ode_model}) to report
    the Scherrer-style stability/fairness summary (Jain index, convergence
    time, oscillation amplitude), and by tests that assert those properties
    of any backend's outcome.

    A trajectory is a pair of a sample-time array and a per-sample array of
    per-flow values: [series.(k).(i)] is flow [i]'s value at
    [times.(k)]. *)

val jain : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over an allocation. By
    convention 1.0 for the degenerate all-zero allocation (and for the
    empty one), so the index always lies in (0, 1]. Raises
    [Invalid_argument] on negative or non-finite entries. *)

val tail_mean : frac:float -> times:float array -> series:float array array
  -> float array
(** Per-flow mean over the trailing [frac] (by time span) of the samples —
    the "final value" estimate used by {!convergence_time}. Raises
    [Invalid_argument] when the trajectory is empty or
    [frac] is outside (0, 1]. *)

val convergence_time :
  times:float array ->
  series:float array array ->
  final:float array ->
  rel_band:float ->
  abs_band:float ->
  float
(** The earliest sample time [t*] such that from [t*] on, every flow stays
    within [max (rel_band·|finalᵢ|) abs_band] of [finalᵢ]; [infinity] when
    even the last sample is outside its band. *)

val oscillation_amplitude :
  tail_frac:float -> times:float array -> series:float array array -> float
(** Max over flows of the peak-to-peak excursion over the trailing
    [tail_frac] (by time span) of the samples: the residual limit-cycle
    amplitude once transients have died out. 0. for a single sample. *)

(** {1 Flow-completion-time metrics}

    Over the completion records of an open-loop short-flow population
    ({!Tcpflow.Experiment.completion}): FCT percentiles and the
    size-normalised slowdown the datacenter-transport literature reports. *)

val ideal_fct : rtt_s:float -> rate_bps:float -> size_bytes:int -> float
(** The loss- and queue-free lower bound on a transfer's completion time:
    one base RTT plus the serialization time of [size_bytes] at the link
    rate. Raises [Invalid_argument] on non-positive rate or size. *)

val slowdown : ideal_s:float -> fct_s:float -> float
(** [fct_s / ideal_s], the standard FCT normalisation; >= 1 up to
    measurement noise. Raises [Invalid_argument] unless both are finite
    and positive. *)

val fct_percentiles : ?ps:float list -> float list -> (float * float) list
(** [(p, percentile p)] pairs over a list of FCTs (default p50/p95/p99,
    via {!Sim_engine.Stats.percentile}); all [nan] when the list is
    empty. *)

val default_size_bounds : int array
(** Bin boundaries (bytes) separating short / medium / long transfers:
    [[| 100_000; 1_000_000 |]]. *)

val bin_of_size : bounds:int array -> int -> int
(** Index of the size bin for a transfer: bin [i] holds sizes in
    [[bounds.(i-1), bounds.(i))], with the open-ended last bin above the
    final bound. [bounds] must be sorted ascending. *)

val binned_mean_slowdown :
  ?bounds:int array ->
  ideal:(int -> float) ->
  (int * float) list ->
  float array
(** Mean {!slowdown} per size bin over [(size_bytes, fct_s)] completion
    pairs, where [ideal size_bytes] supplies the per-size ideal FCT;
    [nan] for bins with no completions. *)
