(** Fairness and stability metrics over per-flow allocations and sampled
    rate trajectories.

    Used by the ODE competition backend ({!Fluidsim.Ode_model}) to report
    the Scherrer-style stability/fairness summary (Jain index, convergence
    time, oscillation amplitude), and by tests that assert those properties
    of any backend's outcome.

    A trajectory is a pair of a sample-time array and a per-sample array of
    per-flow values: [series.(k).(i)] is flow [i]'s value at
    [times.(k)]. *)

val jain : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over an allocation. By
    convention 1.0 for the degenerate all-zero allocation (and for the
    empty one), so the index always lies in (0, 1]. Raises
    [Invalid_argument] on negative or non-finite entries. *)

val tail_mean : frac:float -> times:float array -> series:float array array
  -> float array
(** Per-flow mean over the trailing [frac] (by time span) of the samples —
    the "final value" estimate used by {!convergence_time}. Raises
    [Invalid_argument] when the trajectory is empty or
    [frac] is outside (0, 1]. *)

val convergence_time :
  times:float array ->
  series:float array array ->
  final:float array ->
  rel_band:float ->
  abs_band:float ->
  float
(** The earliest sample time [t*] such that from [t*] on, every flow stays
    within [max (rel_band·|finalᵢ|) abs_band] of [finalᵢ]; [infinity] when
    even the last sample is outside its band. *)

val oscillation_amplitude :
  tail_frac:float -> times:float array -> series:float array array -> float
(** Max over flows of the peak-to-peak excursion over the trailing
    [tail_frac] (by time span) of the samples: the residual limit-cycle
    amplitude once transients have died out. 0. for a single sample. *)
