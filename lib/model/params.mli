(** Network parameters shared by all the analytical models (the paper's
    Table 1 inputs: capacity C, buffer B, base RTT).

    Internal units: bytes, bytes/second, seconds. Constructors accept the
    paper's units (Mbps, BDP multiples, milliseconds) and convert. *)

type t = private {
  capacity : float;  (** C, bytes per second. *)
  buffer : float;  (** B, bytes. *)
  rtt : float;  (** Base (propagation) RTT, seconds. *)
}

val make :
  capacity_bps:Sim_engine.Units.rate_bps ->
  buffer_bytes:Sim_engine.Units.byte_count ->
  rtt:Sim_engine.Units.seconds ->
  t
(** All values must be positive (converted to the internal units above). *)

val of_paper_units : mbps:float -> buffer_bdp:float -> rtt_ms:float -> t
(** The units used throughout the paper's figures. *)

val bdp_bytes : t -> float
(** C × RTT in bytes. *)

val buffer_in_bdp : t -> float
(** B / (C × RTT) — the x-axis of most of the paper's figures. *)

val capacity_mbps : t -> float

val pp : Format.formatter -> t -> unit
