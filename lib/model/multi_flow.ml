type sync_mode = Synchronized | Desynchronized

let gamma mode ~n_cubic =
  match mode with
  | Synchronized -> 0.7
  | Desynchronized ->
    if n_cubic <= 0 then 0.7
    else (float_of_int n_cubic -. 0.3) /. float_of_int n_cubic

type prediction = {
  aggregate_cubic_bps : float;
  aggregate_bbr_bps : float;
  per_flow_cubic_bps : float;
  per_flow_bbr_bps : float;
  regime : Two_flow.regime;
}

let capacity_bps (params : Params.t) =
  (Sim_engine.Units.bits_per_sec_of_bytes ~bytes_per_sec:params.capacity
    :> float)

let predict params ~n_cubic ~n_bbr ~sync =
  if n_cubic < 0 || n_bbr < 0 || n_cubic + n_bbr = 0 then
    invalid_arg "Multi_flow.predict: flow counts";
  let c = capacity_bps params in
  if n_bbr = 0 then
    {
      aggregate_cubic_bps = c;
      aggregate_bbr_bps = 0.0;
      per_flow_cubic_bps = c /. float_of_int n_cubic;
      per_flow_bbr_bps = nan;
      regime = Two_flow.Valid;
    }
  else if n_cubic = 0 then
    {
      aggregate_cubic_bps = 0.0;
      aggregate_bbr_bps = c;
      per_flow_cubic_bps = nan;
      per_flow_bbr_bps = c /. float_of_int n_bbr;
      regime = Two_flow.Valid;
    }
  else begin
    let solution = Two_flow.solve ~gamma:(gamma sync ~n_cubic) params in
    {
      aggregate_cubic_bps = solution.cubic_bandwidth_bps;
      aggregate_bbr_bps = solution.bbr_bandwidth_bps;
      per_flow_cubic_bps =
        solution.cubic_bandwidth_bps /. float_of_int n_cubic;
      per_flow_bbr_bps = solution.bbr_bandwidth_bps /. float_of_int n_bbr;
      regime = solution.regime;
    }
  end

type interval = {
  lower_bbr_per_flow_bps : float;
  upper_bbr_per_flow_bps : float;
}

let per_flow_bbr_interval params ~n_cubic ~n_bbr =
  let synced = predict params ~n_cubic ~n_bbr ~sync:Synchronized in
  let desynced = predict params ~n_cubic ~n_bbr ~sync:Desynchronized in
  {
    lower_bbr_per_flow_bps = synced.per_flow_bbr_bps;
    upper_bbr_per_flow_bps = desynced.per_flow_bbr_bps;
  }
