type region = { cubic_at_ne_sync : float; cubic_at_ne_desync : float }

let capacity_bps (params : Params.t) =
  (Sim_engine.Units.bits_per_sec_of_bytes ~bytes_per_sec:params.capacity
    :> float)

let bbr_per_flow_advantage params ~n ~n_bbr ~sync =
  if n <= 0 then invalid_arg "Ne.bbr_per_flow_advantage: n";
  if n_bbr <= 0 || n_bbr > n then
    invalid_arg "Ne.bbr_per_flow_advantage: n_bbr";
  let fair_share = capacity_bps params /. float_of_int n in
  let prediction =
    Multi_flow.predict params ~n_cubic:(n - n_bbr) ~n_bbr ~sync
  in
  prediction.per_flow_bbr_bps -. fair_share

let equilibrium_bbr_flows params ~n ~sync =
  if n <= 0 then invalid_arg "Ne.equilibrium_bbr_flows: n";
  let advantage k = bbr_per_flow_advantage params ~n ~n_bbr:k ~sync in
  if advantage 1 <= 0.0 then 1.0
  else begin
    match Solver.find_crossing ~f:advantage ~lo:1 ~hi:n with
    | None -> float_of_int n
    | Some (k, k1) ->
      let a = advantage k and b = advantage k1 in
      if a = b then float_of_int k
      else float_of_int k +. (a /. (a -. b))
  end

let nash_region params ~n =
  let ne sync = float_of_int n -. equilibrium_bbr_flows params ~n ~sync in
  {
    cubic_at_ne_sync = ne Multi_flow.Synchronized;
    cubic_at_ne_desync = ne Multi_flow.Desynchronized;
  }
