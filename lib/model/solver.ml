let bisect ?tolerance ?(max_iterations = 200) ~f ~lo ~hi () =
  if hi <= lo then invalid_arg "Solver.bisect: empty interval";
  let tolerance =
    match tolerance with Some t -> t | None -> 1e-9 *. (hi -. lo)
  in
  let flo = f lo and fhi = f hi in
  if Sim_engine.Stats.is_zero flo then lo
  else if Sim_engine.Stats.is_zero fhi then hi
  else if flo *. fhi > 0.0 then
    invalid_arg "Solver.bisect: f(lo) and f(hi) have the same sign"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iterations = ref 0 in
    while !hi -. !lo > tolerance && !iterations < max_iterations do
      incr iterations;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if Sim_engine.Stats.is_zero fmid then begin
        lo := mid;
        hi := mid
      end
      else if fmid *. !flo < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end

let find_crossing ~f ~lo ~hi =
  if hi <= lo then None
  else begin
    let rec scan k prev =
      if k > hi then None
      else begin
        let v = f k in
        if Sim_engine.Stats.is_zero prev || prev *. v <= 0.0 then
          Some (k - 1, k)
        else scan (k + 1) v
      end
    in
    scan (lo + 1) (f lo)
  end
