type t = { capacity : float; buffer : float; rtt : float }

let make ~(capacity_bps : Sim_engine.Units.rate_bps)
    ~(buffer_bytes : Sim_engine.Units.byte_count)
    ~(rtt : Sim_engine.Units.seconds) =
  if
    (capacity_bps :> float) <= 0.0
    || (buffer_bytes :> float) <= 0.0
    || (rtt :> float) <= 0.0
  then invalid_arg "Params.make: all parameters must be positive";
  {
    capacity = Sim_engine.Units.bytes_per_sec capacity_bps;
    buffer = (buffer_bytes :> float);
    rtt = (rtt :> float);
  }

let bdp_bytes t = t.capacity *. t.rtt

let of_paper_units ~mbps ~buffer_bdp ~rtt_ms =
  let capacity_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  let bdp = Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt in
  make ~capacity_bps ~buffer_bytes:(Sim_engine.Units.scale buffer_bdp bdp) ~rtt

let buffer_in_bdp t = t.buffer /. bdp_bytes t

let capacity_mbps t =
  Sim_engine.Units.bps_to_mbps
    (Sim_engine.Units.bits_per_sec_of_bytes ~bytes_per_sec:t.capacity)

let pp ppf t =
  Format.fprintf ppf "C=%.1f Mbps, B=%.1f BDP, RTT=%.0f ms" (capacity_mbps t)
    (buffer_in_bdp t)
    (t.rtt *. 1e3)
