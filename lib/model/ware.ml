let mss = float_of_int Sim_engine.Units.mss

let bbr_fraction ~(params : Params.t) ~n_bbr
    ~(duration : Sim_engine.Units.seconds) =
  let duration = (duration :> float) in
  if n_bbr <= 0 then invalid_arg "Ware.bbr_fraction: n_bbr";
  if duration <= 0.0 then invalid_arg "Ware.bbr_fraction: duration";
  let x = Params.buffer_in_bdp params in
  let q_packets = params.buffer /. mss in
  let c_packets = params.capacity /. mss in
  let p =
    0.5 -. (1.0 /. (2.0 *. x)) -. (4.0 *. float_of_int n_bbr /. q_packets)
  in
  let p = Float.max 0.0 (Float.min 1.0 p) in
  let probe_time =
    ((q_packets /. c_packets) +. 0.2 +. params.rtt) *. (duration /. 10.0)
  in
  let probe_time = Float.min duration probe_time in
  let frac = (1.0 -. p) *. ((duration -. probe_time) /. duration) in
  Float.max 0.0 (Float.min 1.0 frac)

let bbr_bandwidth_bps ~params ~n_bbr ~duration =
  bbr_fraction ~params ~n_bbr ~duration
  *. (Sim_engine.Units.bits_per_sec_of_bytes
        ~bytes_per_sec:params.Params.capacity
      :> float)
