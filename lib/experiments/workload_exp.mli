(** Workload-layer experiment (id ["workload"]): two long flows (CUBIC vs
    BBR) under open-loop web-object churn at offered loads 0-80%, reporting
    FCT percentiles, size-binned slowdown, and the long-flow split. The
    first-class exercise of {!Tcpflow.Experiment}'s [workload] config field
    and the {!Tcpflow.Churn} lifecycle layer, batched through {!Runs.eval}
    so results cache and are byte-identical across [--jobs]. *)

val run : Common.ctx -> Common.table
