(** Figure 1: Ware et al.'s prediction vs BBR's actual bandwidth share.
    1 CUBIC vs 1 BBR, 50 Mbps, 40 ms, buffers up to 50 BDP. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
