(** Figure 9(a-f): predicted vs observed Nash Equilibria over {50,100} Mbps
    x {20,40,80} ms, buffers up to 50 BDP.

    Predicted: the model's Nash region (Eq. 25 under both sync bounds).
    Observed: NE of packet-simulator payoffs, located by bisection on the
    fair-share crossing plus an exact neighbourhood check (the paper's §4.4
    methodology under the §4.1 symmetry reduction). Quick mode uses 20
    flows and a coarse buffer grid so the whole suite stays fast; full mode
    uses the paper's 50 flows. Both are normalized by n in the summary
    notes, since the paper shows the region is scale-free in BDP units. *)

let flows_of_mode = function Common.Quick -> 20 | Common.Full -> 50

type point = {
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;
  n : int;
  predicted_sync : float;  (** # CUBIC at NE, synchronized bound. *)
  predicted_desync : float;
  observed : int list;  (** # CUBIC at observed NE(s). *)
}

let settings mode =
  match mode with
  | Common.Quick ->
    [ (50.0, 40.0); (50.0, 80.0); (100.0, 20.0); (100.0, 40.0) ]
  | Common.Full ->
    [ (50.0, 20.0); (50.0, 40.0); (50.0, 80.0);
      (100.0, 20.0); (100.0, 40.0); (100.0, 80.0) ]

let buffers mode =
  match mode with
  | Common.Quick -> [ 2.0; 10.0; 40.0 ]
  | Common.Full -> [ 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 18.0; 25.0; 35.0; 50.0 ]

(* NE of the packet-simulated game, as BBR counts. Quick mode trims the
   per-payoff run to 60 s (25 s warm-up) to keep the sweep tractable.
   The bisection is adaptive, so the ctx should be sequential: callers
   parallelise across grid points instead (see [points]). *)
let observed_ne ~(ctx : Common.ctx) ~mbps ~rtt_ms ~buffer_bdp ~other ~n =
  let duration, warmup =
    match ctx.mode with
    | Common.Quick -> (Sim_engine.Units.seconds 60.0, Sim_engine.Units.seconds 25.0)
    | Common.Full -> (Sim_engine.Units.seconds 120.0, Sim_engine.Units.seconds 40.0)
  in
  let payoff =
    Ne_search.packet_payoff ~duration ~warmup ~ctx ~mbps ~rtt_ms ~buffer_bdp
      ~other ~n ()
  in
  let fair_bps = (Sim_engine.Units.mbps mbps :> float) /. float_of_int n in
  Ne_search.observed_equilibria ~epsilon:0.02 ~n ~fair_bps ~payoff ~window:2
    ()

(* Each grid point's NE search is adaptive (bisection on the previous
   probe), so the parallelism lives one level up: one worker per grid
   point, each running its probes sequentially. *)
let points ?(other = "bbr") (ctx : Common.ctx) =
  let n = flows_of_mode ctx.mode in
  let grid =
    List.concat_map
      (fun (mbps, rtt_ms) ->
        List.map (fun buffer_bdp -> (mbps, rtt_ms, buffer_bdp)) (buffers ctx.mode))
      (settings ctx.mode)
  in
  let point_ctx = Common.sequential ctx in
  Sim_engine.Exec.map_list ~jobs:ctx.jobs
    (fun (mbps, rtt_ms, buffer_bdp) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let region = Ccmodel.Ne.nash_region params ~n in
      let observed =
        List.map
          (fun k -> n - k)
          (observed_ne ~ctx:point_ctx ~mbps ~rtt_ms ~buffer_bdp ~other ~n)
      in
      {
        mbps;
        rtt_ms;
        buffer_bdp;
        n;
        predicted_sync = region.cubic_at_ne_sync;
        predicted_desync = region.cubic_at_ne_desync;
        observed;
      })
    grid

let string_of_observed = function
  | [] -> "-"
  | ks -> String.concat "/" (List.map string_of_int ks)

let in_region ?(slack = 0.15) p =
  let lo =
    Float.min p.predicted_sync p.predicted_desync
    -. (slack *. float_of_int p.n)
  in
  let hi =
    Float.max p.predicted_sync p.predicted_desync
    +. (slack *. float_of_int p.n)
  in
  List.exists
    (fun k -> float_of_int k >= lo && float_of_int k <= hi)
    p.observed

let run (ctx : Common.ctx) : Common.table =
  let points = points ctx in
  let n = flows_of_mode ctx.mode in
  {
    Common.id = "fig09";
    title =
      Printf.sprintf "Predicted Nash region vs observed NE (%d flows)" n;
    header =
      [ "link(Mbps)"; "rtt(ms)"; "buffer(BDP)"; "pred_synch(#cubic)";
        "pred_desynch(#cubic)"; "observed(#cubic)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.mbps;
            Common.cell p.rtt_ms;
            Common.cell p.buffer_bdp;
            Common.cell p.predicted_sync;
            Common.cell p.predicted_desync;
            string_of_observed p.observed;
          ])
        points;
    notes =
      [
        Printf.sprintf
          "NE found at every grid point: %b; observed NE inside the \
           predicted region (+/-15%% of n): %d/%d"
          (List.for_all (fun p -> p.observed <> []) points)
          (List.length (List.filter (fun p -> in_region p) points))
          (List.length points);
        "regions are identical across link speeds and RTTs when the buffer \
         is in BDP units (paper's normalization claim); deeper buffers -> \
         more CUBIC flows at the NE";
      ];
  }
