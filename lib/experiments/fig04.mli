(** Figure 4(a,b): multi-flow model validation. 5v5 and 10v10 on a 100 Mbps
    link at 40 ms, buffers 1-30 BDP; the measured per-flow BBR throughput
    should fall inside the model's [sync, desync] predicted region. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
