(** Extension: long CUBIC vs BBR under Poisson short-flow cross traffic
    (the paper's §5 "more diverse workloads" gap). *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
