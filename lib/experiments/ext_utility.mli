(** Extension: Nash Equilibria under throughput-minus-delay utilities (the
    paper's §4.3 "complex utility functions" conjecture). *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
