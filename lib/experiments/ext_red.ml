(** Extension (beyond the paper's evaluation; motivated by its §1/§6
    discussion of in-network mechanisms): how does an AQM change the
    CUBIC/BBR balance?

    The paper's model assumes a drop-tail bottleneck; its related work notes
    that Nash Equilibria between loss-based flows can flip from efficient to
    inefficient under RED (Chien & Sinclair). Here we re-run the fig03-style
    1v1 sweep and a 5v5 mix under RED (classic gentle parameterization) and
    compare against drop-tail. Expectation: RED's early drops keep the
    average queue near min_threshold, shrinking b_cmin and with it BBR's
    RTprop inflation — so BBR's advantage over CUBIC should {e grow} in deep
    buffers relative to drop-tail, while the shared queuing delay falls. *)

let mbps = 50.0
let rtt_ms = 40.0

type point = {
  buffer_bdp : float;
  n_each : int;
  droptail_bbr_bps : float;
  red_bbr_bps : float;
  droptail_qdelay : float;
  red_qdelay : float;
}

let points (ctx : Common.ctx) =
  let grid =
    List.concat_map
      (fun n_each ->
        List.map
          (fun buffer_bdp -> (n_each, buffer_bdp))
          (match ctx.mode with
          | Common.Quick -> [ 2.0; 5.0; 10.0; 20.0 ]
          | Common.Full -> [ 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0; 30.0 ]))
      [ 1; 5 ]
  in
  (* One batch holding both AQM variants of every grid point: drop-tail
     specs first, then the RED twins, split back apart below. *)
  let spec aqm (n_each, buffer_bdp) =
    Runs.spec ~aqm ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:n_each ~other:"bbr"
      ~n_other:n_each ()
  in
  let summaries =
    Runs.mix_many ctx
      (List.map (spec Tcpflow.Experiment.Tail_drop) grid
      @ List.map (spec Tcpflow.Experiment.Red_default) grid)
  in
  let rec split n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | x :: rest ->
        let a, b = split (n - 1) rest in
        (x :: a, b)
      | [] -> assert false
  in
  let droptails, reds = split (List.length grid) summaries in
  List.map2
    (fun (n_each, buffer_bdp) ((droptail : Runs.summary), (red : Runs.summary)) ->
      {
        buffer_bdp;
        n_each;
        droptail_bbr_bps = droptail.per_flow_other_bps;
        red_bbr_bps = red.per_flow_other_bps;
        droptail_qdelay = droptail.queuing_delay;
        red_qdelay = red.queuing_delay;
      })
    grid
    (List.combine droptails reds)

let run ctx : Common.table =
  let points = points ctx in
  let delay_reduced =
    List.for_all
      (fun p -> p.buffer_bdp < 3.0 || p.red_qdelay <= p.droptail_qdelay)
      points
  in
  {
    Common.id = "ext-red";
    title = "Extension: CUBIC vs BBR under RED AQM vs drop-tail";
    header =
      [ "flows"; "buffer(BDP)"; "bbr_droptail"; "bbr_red"; "qdelay_dt(ms)";
        "qdelay_red(ms)" ];
    rows =
      List.map
        (fun p ->
          [
            Printf.sprintf "%dv%d" p.n_each p.n_each;
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.droptail_bbr_bps);
            Common.cell (Common.mbps p.red_bbr_bps);
            Common.cell (Sim_engine.Units.sec_to_ms (Sim_engine.Units.seconds p.droptail_qdelay));
            Common.cell (Sim_engine.Units.sec_to_ms (Sim_engine.Units.seconds p.red_qdelay));
          ])
        points;
    notes =
      [
        Printf.sprintf
          "RED keeps queuing delay at/below drop-tail levels in deeper \
           buffers: %b"
          delay_reduced;
        "implication for the paper's NE analysis: AQMs decouple the buffer \
         size from b_cmin, so the Nash region's buffer-dependence (Fig. 9) \
         is a drop-tail phenomenon";
      ];
  }
