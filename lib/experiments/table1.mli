(** Table 1: the model's notation glossary, rendered as a table. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
