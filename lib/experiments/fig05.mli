(** Figure 5: diminishing returns for BBR as its share of the flow mix
    grows (10- and 20-flow panels at 3 and 10 BDP). *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
