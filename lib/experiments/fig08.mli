(** Figure 8: throughput and queuing delay across the CUBIC/BBR
    distribution (10 flows, shallow buffer). *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
