(** Figure 12: model performance in ultra-deep buffers (1-250 BDP); beyond
    ~100 BDP BBR stops being cwnd-limited and the model over-estimates. *)

val regime_name : Ccmodel.Two_flow.regime -> string
(** Human-readable label for the model's buffer regime. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
