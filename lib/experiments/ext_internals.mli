(** Extension: BBR state-machine internals (state occupancy, rtprop/btlbw
    estimates) across buffer depths. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
