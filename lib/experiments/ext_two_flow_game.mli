(** Extension: the full 2x2 strategy game between two flows (CUBIC/BBR
    each), solved from simulator-measured payoffs. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
