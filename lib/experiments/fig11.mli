(** Figure 11(a,b): Nash Equilibria between CUBIC and BBRv2; the model's
    BBR(v1) Nash region is shown alongside. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
