(** Figure 6: the Nash-Equilibrium geometry (the paper's schematic,
    realized with the model) for a 10-flow network. *)

type point = {
  n_bbr : int;
  bbr_per_flow_sync_bps : float;
  bbr_per_flow_desync_bps : float;
  fair_share_bps : float;
}

val points : unit -> point list
(** The model's BBR per-flow bandwidth at every mix, against fair share. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
