(** The [evolve] experiment: population-scale CCA adoption dynamics.

    The static experiments ask where the Nash equilibria are; this one asks
    whether a population of users actually gets there. Each scenario cell
    (link rate x buffer depth) holds a population partitioned into RTT
    classes; the state is one BBR share per class, evolved by
    {!Ccgame.Evolve} dynamics (replicator / smoothed best response / logit)
    against tagged-flow deviation payoffs measured by a {!Sim_backend}
    backend through {!Runs.run_specs_memo} — every profile simulated at
    most once per unit of work, content-addressed in the on-disk cache.

    Each (cell x dynamics) pair is an independent, sequential unit of work;
    the units shard across [ctx.jobs] domains (the fig10 pattern), so the
    emitted trajectories are byte-identical for any [--jobs]. Terminal
    states are checked against {!Ccgame.Grouped_game.is_equilibrium} on the
    rounded counts, and packet-level spot checks re-simulate the profile
    nearest each share crossing to confirm the analytic backend got the
    advantage signs right. *)

module Units = Sim_engine.Units

let[@simlint.domain_ok "read-only RTT class table; workers never write it"]
    class_rtts_ms =
  [| 20.0; 40.0; 80.0 |]

type cell = {
  label : string;
  cell_mbps : float;
  buffer_bdp : float;  (** In BDPs of the shortest-RTT class. *)
}

let cells = function
  | Common.Quick ->
    [
      { label = "50M-4bdp"; cell_mbps = 50.0; buffer_bdp = 4.0 };
      { label = "100M-16bdp"; cell_mbps = 100.0; buffer_bdp = 16.0 };
    ]
  | Common.Full ->
    [
      { label = "50M-1bdp"; cell_mbps = 50.0; buffer_bdp = 1.0 };
      { label = "50M-4bdp"; cell_mbps = 50.0; buffer_bdp = 4.0 };
      { label = "100M-4bdp"; cell_mbps = 100.0; buffer_bdp = 4.0 };
      { label = "100M-16bdp"; cell_mbps = 100.0; buffer_bdp = 16.0 };
    ]

let class_size = function Common.Quick -> 5 | Common.Full -> 10
let class_sizes mode = Array.map (fun _ -> class_size mode) class_rtts_ms

(* Simulated horizons. The adoption loop runs tens of generations x up to
   seven profiles per state, so its specs are shorter than the figure
   experiments'; the analytic backends settle well within these windows.
   Spot checks use a shorter shared horizon because the packet simulator
   pays real time for every simulated second. *)
let horizon = function
  | Common.Quick -> (30.0, 10.0)
  | Common.Full -> (60.0, 20.0)

let spot_horizon = (20.0, 5.0)

(* One profile = one BBR count per class. Flow order is class-major with
   the BBR flows first inside each class, which is what [group_mean]
   assumes when slicing the outcome arrays. *)
let spec_of_counts ~mode ~cell ~seed ~sizes ~duration ~warmup counts =
  let rate_bps = Units.mbps cell.cell_mbps in
  let rtt0 = Units.ms class_rtts_ms.(0) in
  let buffer_bytes =
    Units.scale cell.buffer_bdp (Units.bdp_bytes ~rate_bps ~rtt:rtt0)
  in
  ignore (mode : Common.mode);
  let flows =
    List.concat
      (List.mapi
         (fun g rtt_ms ->
           let rtt = Units.ms rtt_ms in
           List.init sizes.(g) (fun i ->
               {
                 Sim_backend.cca = (if i < counts.(g) then "bbr" else "cubic");
                 rtt;
               }))
         (Array.to_list class_rtts_ms))
  in
  Sim_backend.spec ~rate_bps ~buffer_bytes
    ~duration:(Units.seconds duration)
    ~warmup:(Units.seconds warmup)
    ~seed flows

let group_mean (o : Sim_backend.outcome) ~sizes ~group ~cca =
  let offset = ref 0 in
  for g = 0 to group - 1 do
    offset := !offset + sizes.(g)
  done;
  let sum = ref 0.0 and n = ref 0 in
  for i = !offset to !offset + sizes.(group) - 1 do
    if String.equal o.Sim_backend.per_flow_cca.(i) cca then begin
      sum := !sum +. o.Sim_backend.per_flow_bps.(i);
      incr n
    end
  done;
  if !n = 0 then nan else !sum /. float_of_int !n

(* All profiles the dynamics can query at one state: the rounded base
   profile plus every one-flow deviation — the same neighbourhood
   [Grouped_game.is_equilibrium] probes, so the terminal NE check is
   answered from the memo too. *)
let neighbourhood ~sizes counts =
  let bump g delta =
    let next = Array.copy counts in
    next.(g) <- next.(g) + delta;
    next
  in
  counts
  :: List.concat
       (List.init (Array.length counts) (fun g ->
            (if counts.(g) < sizes.(g) then [ bump g 1 ] else [])
            @ if counts.(g) > 0 then [ bump g (-1) ] else []))

(* Tagged-flow payoffs over the quantized profile, batched per state: the
   first query at a new state prefetches the whole deviation neighbourhood
   through [run_specs_memo] in one submission, so a generation costs one
   batch rather than up to 2G sequential runs. *)
let tagged_payoffs ~ctx ~backend ~memo ~cell ~seed ~sizes =
  let duration, warmup = horizon ctx.Common.mode in
  let spec_of counts =
    spec_of_counts ~mode:ctx.Common.mode ~cell ~seed ~sizes ~duration ~warmup
      counts
  in
  let outcome_of counts =
    match Runs.run_specs_memo ~memo ctx backend [ spec_of counts ] with
    | [ o ] -> o
    | _ -> assert false
  in
  let last = ref [||] in
  let prepare shares =
    if !last <> shares then begin
      let counts = Ccgame.Evolve.counts_of_shares ~sizes shares in
      ignore
        (Runs.run_specs_memo ~memo ctx backend
           (List.map spec_of (neighbourhood ~sizes counts))
        : Sim_backend.outcome list);
      last := Array.copy shares
    end
  in
  let tagged ~cca ~boundary ~delta ~cls ~shares =
    prepare shares;
    let counts = Ccgame.Evolve.counts_of_shares ~sizes shares in
    (* The tagged flow must exist in the profile it is paid under: at the
       boundary where its class holds none of its strategy, it deviates
       into the profile one flow over. *)
    if counts.(cls) = boundary cls then counts.(cls) <- counts.(cls) + delta;
    group_mean (outcome_of counts) ~sizes ~group:cls ~cca
  in
  ( {
      Ccgame.Evolve.u_cubic =
        (fun ~cls ~shares ->
          tagged ~cca:"cubic" ~boundary:(fun c -> sizes.(c)) ~delta:(-1) ~cls
            ~shares);
      u_bbr =
        (fun ~cls ~shares ->
          tagged ~cca:"bbr" ~boundary:(fun _ -> 0) ~delta:1 ~cls ~shares);
    },
    outcome_of )

let grouped_payoffs ~sizes outcome_of =
  {
    Ccgame.Grouped_game.u_cubic =
      (fun ~group ~counts ->
        group_mean (outcome_of counts) ~sizes ~group ~cca:"cubic");
    u_bbr =
      (fun ~group ~counts ->
        group_mean (outcome_of counts) ~sizes ~group ~cca:"bbr");
  }

(* Dimensionless step size per dynamics: full-strength replicator (its
   s(1-s) factor already damps the step), gentler smoothed best-response
   and logit so a coarse payoff landscape cannot make them ring. *)
let rate_of = function
  | Ccgame.Evolve.Replicator -> 1.0
  | Ccgame.Evolve.Best_response -> 0.4
  | Ccgame.Evolve.Logit _ -> 0.4

let default_dynamics =
  [
    Ccgame.Evolve.Replicator;
    Ccgame.Evolve.Best_response;
    Ccgame.Evolve.Logit Ccgame.Evolve.default_logit_temperature;
  ]

(* Generations whose update crossed the 50% mark in some class — the
   interesting states: that is where the advantage changes sign and where
   an analytic backend getting the sign wrong would send the population
   the wrong way. *)
let crossing_generations (traj : Ccgame.Evolve.trajectory) =
  let crossings = ref [] in
  Array.iteri
    (fun gen state ->
      if gen > 0 then
        let prev = traj.Ccgame.Evolve.states.(gen - 1) in
        let crossed = ref false in
        Array.iteri
          (fun c s ->
            if (prev.(c) -. 0.5) *. (s -. 0.5) < 0.0 then crossed := true)
          state;
        if !crossed then crossings := gen :: !crossings)
    traj.Ccgame.Evolve.states;
  List.rev !crossings

(* Re-simulate the profile at up to [limit] crossing states (terminal
   state when the trajectory never crosses) on the packet backend and
   compare per-class advantage signs against the analytic backend: a
   disagreement means the dynamics were steered by an artifact of the
   analytic model. Near-indifferent classes (|normalized advantage| below
   [slack] on either backend) never count as disagreement — crossings are
   exactly where advantages pass through zero. *)
let spot_check ~ctx ~backend ~memo ~cell ~seed ~sizes ~limit traj =
  if limit = 0 || String.equal (Sim_backend.name backend) "packet" then None
  else begin
    let duration, warmup = spot_horizon in
    let spec_of counts =
      spec_of_counts ~mode:ctx.Common.mode ~cell ~seed ~sizes ~duration ~warmup
        counts
    in
    let states = traj.Ccgame.Evolve.states in
    let gens =
      match crossing_generations traj with
      | [] -> [ Array.length states - 1 ]
      | gens -> List.filteri (fun i _ -> i < limit) gens
    in
    let slack = 0.15 in
    let agree = ref 0 and total = ref 0 in
    List.iter
      (fun gen ->
        let counts = Ccgame.Evolve.counts_of_shares ~sizes states.(gen) in
        let run b =
          match Runs.run_specs_memo ~memo ctx b [ spec_of counts ] with
          | [ o ] -> o
          | _ -> assert false
        in
        let packet = run Sim_backend.packet and analytic = run backend in
        let ok = ref true in
        Array.iteri
          (fun g k ->
            (* Only classes holding both CCAs have a measurable sign. *)
            if k > 0 && k < sizes.(g) then begin
              let adv o =
                let ub = group_mean o ~sizes ~group:g ~cca:"bbr" in
                let uc = group_mean o ~sizes ~group:g ~cca:"cubic" in
                Ccgame.Evolve.advantage_of ~ub ~uc
              in
              let dp = adv packet and da = adv analytic in
              if
                dp *. da < 0.0
                && Float.min (Float.abs dp) (Float.abs da) > slack
              then ok := false
            end)
          counts;
        incr total;
        if !ok then incr agree)
      gens;
    Some (!agree, !total)
  end

type unit_result = {
  u_cell : cell;
  u_dyn : Ccgame.Evolve.dynamics;
  u_traj : Ccgame.Evolve.trajectory;
  u_eps_nash : bool;
  u_spot : (int * int) option;  (** (sign-agreeing checks, checks run). *)
}

let run_unit ~ctx ~backend ~seed ~max_generations ~spot_checks
    (cell, init, dyn) =
  let ictx = Common.sequential ctx in
  let sizes = class_sizes ctx.Common.mode in
  let memo = Runs.memo () in
  let payoffs, outcome_of =
    tagged_payoffs ~ctx:ictx ~backend ~memo ~cell ~seed ~sizes
  in
  let traj =
    Ccgame.Evolve.run ~tol:1e-3 dyn ~rate:(rate_of dyn) ~max_generations
      payoffs ~init
  in
  let terminal =
    traj.Ccgame.Evolve.states.(Array.length traj.Ccgame.Evolve.states - 1)
  in
  let u_eps_nash =
    Ccgame.Grouped_game.is_equilibrium ~epsilon:0.05 ~sizes
      (grouped_payoffs ~sizes outcome_of)
      (Ccgame.Evolve.counts_of_shares ~sizes terminal)
  in
  let u_spot =
    spot_check ~ctx:ictx ~backend ~memo ~cell ~seed ~sizes ~limit:spot_checks
      traj
  in
  { u_cell = cell; u_dyn = dyn; u_traj = traj; u_eps_nash; u_spot }

let share_cell s = Printf.sprintf "%.4f" s

let rows_of_unit ~weights u =
  let traj = u.u_traj in
  let last = Array.length traj.Ccgame.Evolve.states - 1 in
  let gen_opt = function None -> "-" | Some g -> string_of_int g in
  List.init (last + 1) (fun gen ->
      let state = traj.Ccgame.Evolve.states.(gen) in
      let terminal = gen = last in
      [
        u.u_cell.label;
        Ccgame.Evolve.dynamics_name u.u_dyn;
        string_of_int gen;
        share_cell (Ccgame.Evolve.mean_share ~weights state);
        String.concat "/" (Array.to_list (Array.map share_cell state));
        Printf.sprintf "%.4f" traj.Ccgame.Evolve.residuals.(gen);
        (if terminal then gen_opt traj.Ccgame.Evolve.converged_at else "-");
        (if terminal then gen_opt traj.Ccgame.Evolve.fixated_at else "-");
        (if terminal then string_of_bool u.u_eps_nash else "-");
        (if terminal then
           match u.u_spot with
           | None -> "skip"
           | Some (agree, total) -> Printf.sprintf "%d/%d" agree total
         else "-");
      ])

let run_with ?(dynamics = default_dynamics) ?(backend = Sim_backend.fluid)
    ?(seed = 1) ?max_generations ?spot_checks (ctx : Common.ctx) :
    Common.table =
  if dynamics = [] then invalid_arg "Adoption.run_with: no dynamics";
  let max_generations =
    match max_generations with
    | Some g -> g
    | None -> ( match ctx.mode with Common.Quick -> 60 | Common.Full -> 150)
  in
  let spot_checks =
    match spot_checks with
    | Some n -> n
    | None -> ( match ctx.mode with Common.Quick -> 1 | Common.Full -> 2)
  in
  let cells = cells ctx.mode in
  (* Seeded initial shares, drawn per cell up front (shared by every
     dynamics on that cell so their trajectories are comparable) and away
     from the absorbing boundaries so replicator dynamics can move. *)
  let inits =
    List.mapi
      (fun i _ ->
        let rng = Sim_engine.Rng.create (seed + (1009 * i)) in
        Array.map
          (fun _ -> Sim_engine.Rng.uniform_in rng ~lo:0.2 ~hi:0.8)
          class_rtts_ms)
      cells
  in
  let units =
    List.concat_map
      (fun (cell, init) -> List.map (fun dyn -> (cell, init, dyn)) dynamics)
      (List.combine cells inits)
  in
  (* The adoption loop is adaptive, so each unit runs sequentially and the
     (cell x dynamics) grid is what parallelises; Exec.map_list preserves
     order, so the table is independent of ctx.jobs. *)
  let results =
    Sim_engine.Exec.map_list ~jobs:ctx.jobs
      (run_unit ~ctx ~backend ~seed ~max_generations ~spot_checks)
      units
  in
  let weights =
    Array.map float_of_int (class_sizes ctx.mode)
  in
  let all_nash = List.for_all (fun u -> u.u_eps_nash) results in
  let spots_ran, spots_agreed =
    List.fold_left
      (fun (ran, ok) u ->
        match u.u_spot with
        | None -> (ran, ok)
        | Some (agree, total) -> (ran + total, ok + agree))
      (0, 0) results
  in
  {
    Common.id = "evolve";
    title =
      Printf.sprintf
        "CCA adoption dynamics (%s backend; classes %s ms, %d flows each)"
        (Sim_backend.name backend)
        (String.concat "/"
           (List.map
              (fun r -> Printf.sprintf "%g" r)
              (Array.to_list class_rtts_ms)))
        (class_size ctx.mode);
    header =
      [
        "cell"; "dynamics"; "gen"; "bbr_share"; "shares_by_class";
        "ne_residual"; "converged_gen"; "fixation_gen"; "eps_nash";
        "spot_check";
      ];
    rows = List.concat_map (rows_of_unit ~weights) results;
    notes =
      [
        Printf.sprintf "terminal populations epsilon-Nash (eps=0.05): %b"
          all_nash;
        (if spots_ran = 0 then
           "packet spot-checks: skipped (packet backend or disabled)"
         else
           Printf.sprintf
             "packet spot-checks: %d/%d sign-agree near share crossings"
             spots_agreed spots_ran);
        "payoffs are tagged-flow deviation goodputs on the rounded profile; \
         dynamics rates: replicator 1.0, best-response 0.4, logit 0.4";
        "ne_residual is measured on the continuous shares (an asymptotic \
         straggler fraction keeps it positive near absorption); eps_nash \
         judges the rounded integer profile";
      ];
  }

let run ctx = run_with ctx
