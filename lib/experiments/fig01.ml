(** Figure 1: Ware et al.'s prediction vs BBR's actual bandwidth share.
    1 CUBIC vs 1 BBR, 50 Mbps, 40 ms, buffers up to 50 BDP. *)

let mbps = 50.0
let rtt_ms = 40.0

type point = { buffer_bdp : float; ware_bps : float; actual_bps : float }

let points (ctx : Common.ctx) =
  let buffers = Common.buffer_grid ctx.mode ~max:50.0 in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun buffer_bdp ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:1 ~other:"bbr"
             ~n_other:1 ())
         buffers)
  in
  List.map2
    (fun buffer_bdp (summary : Runs.summary) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let ware_bps =
        Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
          ~duration:(Common.duration ctx.mode)
      in
      { buffer_bdp; ware_bps; actual_bps = summary.per_flow_other_bps })
    buffers summaries

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "fig01";
    title =
      Printf.sprintf
        "BBR bandwidth share, Ware et al. vs simulated (%g Mbps, %g ms)" mbps
        rtt_ms;
    header = [ "buffer(BDP)"; "ware(Mbps)"; "actual_bbr(Mbps)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.ware_bps);
            Common.cell (Common.mbps p.actual_bps);
          ])
        points;
    notes =
      [
        "Paper finding: Ware et al. over-predicts BBR's share by >=30% in \
         shallow-to-moderate buffers.";
      ];
  }
