(** Extension: validating the model's {e internals}, not just its outputs.

    The paper validates λ_b against the testbed; the model's machinery also
    makes two intermediate claims we can measure directly in the simulator:

    - b_cmin ≈ (B − C·RTT)/2 — CUBIC's minimum buffer occupancy
      (Eq. 10 + the full-buffer approximation);
    - b_b from Eq. 18 — BBR's average buffer occupancy.

    We run 1 CUBIC vs 1 BBR and read both quantities from the per-class
    queue-occupancy series the sampler records. Mechanism-level agreement
    here is stronger evidence than output agreement alone. *)

let mbps = 50.0
let rtt_ms = 40.0

type point = {
  buffer_bdp : float;
  measured_bcmin : float;
  model_bcmin : float;
  measured_bb_mean : float;
  model_bb : float;
}

let points (ctx : Common.ctx) =
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  let buffers =
    match ctx.mode with
    | Common.Quick -> [ 3.0; 5.0; 10.0; 20.0 ]
    | Common.Full -> [ 2.0; 3.0; 5.0; 8.0; 12.0; 16.0; 20.0; 30.0 ]
  in
  let configs =
    List.map
      (fun buffer_bdp ->
        Tcpflow.Experiment.config ~warmup:(Common.warmup ctx.mode) ~rate_bps
          ~buffer_bytes:
            (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt
               ~bdp:buffer_bdp)
          ~duration:(Common.duration ctx.mode)
          [
            Tcpflow.Experiment.flow_config ~base_rtt:rtt "cubic";
            Tcpflow.Experiment.flow_config ~base_rtt:rtt "bbr";
          ])
      buffers
  in
  List.map2
    (fun buffer_bdp result ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let solution = Ccmodel.Two_flow.solve params in
      {
        buffer_bdp;
        measured_bcmin =
          List.assoc "cubic" result.Tcpflow.Experiment.class_min_bytes;
        model_bcmin = solution.cubic_min_buffer_bytes;
        measured_bb_mean =
          List.assoc "bbr" result.Tcpflow.Experiment.class_mean_bytes;
        model_bb = solution.bbr_buffer_bytes;
      })
    buffers (Runs.eval ctx configs)

let run ctx : Common.table =
  let points = points ctx in
  let kb v = v /. 1e3 in
  (* b_b is the model's real workhorse; compare it where defined. The
     measured b_cmin dips to zero in shallow buffers (transient full
     drains the model averages over), so only report its error where the
     measured minimum is substantial. *)
  let bb_errors =
    List.map
      (fun p ->
        Sim_engine.Stats.relative_error ~predicted:p.model_bb
          ~actual:p.measured_bb_mean)
      points
  in
  let bcmin_points =
    List.filter (fun p -> p.measured_bcmin > 0.05 *. p.model_bcmin) points
  in
  {
    Common.id = "ext-internals";
    title =
      "Extension: the model's internal quantities vs measured buffer \
       occupancies (1v1, 50 Mbps, 40 ms)";
    header =
      [ "buffer(BDP)"; "bcmin_meas(kB)"; "bcmin_model(kB)"; "bb_meas(kB)";
        "bb_model(kB)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.buffer_bdp;
            Common.cell (kb p.measured_bcmin);
            Common.cell (kb p.model_bcmin);
            Common.cell (kb p.measured_bb_mean);
            Common.cell (kb p.model_bb);
          ])
        points;
    notes =
      [
        Printf.sprintf
          "mean |model-measured|/measured for BBR's buffer share b_b: \
           %.0f%% (Eq. 18's solution, validated at mechanism level)"
          (100.0 *. Common.mean bb_errors);
        Printf.sprintf
          "measured b_cmin reaches zero in shallow buffers (%d/%d points) \
           where transient full back-offs drain CUBIC entirely — the \
           model's Eq. 12 b_cmin is a steady-state trough, not an absolute \
           minimum"
          (List.length points - List.length bcmin_points)
          (List.length points);
      ];
  }
