type payoff_fn = int -> float * float

let memoize f =
  let cache = Hashtbl.create 32 in
  fun k ->
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
      let v = f k in
      Hashtbl.replace cache k v;
      v

let observed_equilibria ?epsilon ~n ~fair_bps ~payoff ~window () =
  let u_bbr k = snd (payoff k) in
  let u_cubic k = fst (payoff k) in
  let advantage k = u_bbr k -. fair_bps in
  (* Bisect for the crossing of the (noisily decreasing) advantage. *)
  let crossing =
    if advantage 1 <= 0.0 then 1
    else if advantage n > 0.0 then n
    else begin
      let lo = ref 1 and hi = ref n in
      (* invariant: advantage lo > 0 >= advantage hi *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if advantage mid > 0.0 then lo := mid else hi := mid
      done;
      !hi
    end
  in
  let candidates =
    List.sort_uniq compare
      (0 :: n
      :: List.filter
           (fun k -> k >= 0 && k <= n)
           (List.init ((2 * window) + 1) (fun i -> crossing - window + i)))
  in
  let game = { Ccgame.Symmetric_game.u_cubic; u_bbr } in
  match
    List.filter (Ccgame.Symmetric_game.is_equilibrium ?epsilon ~n game)
      candidates
  with
  | [] ->
    (* Noise around the crossing can break the strict check even though the
       crossing is where the paper's Eq. (25) places the NE; report it. *)
    [ crossing ]
  | ne -> ne

let backend_payoff ?ctx ~backend ~spec ~other ~rtt ~n () =
  memoize (fun k ->
      if k < 0 || k > n then invalid_arg "backend_payoff: k out of range";
      let flows =
        List.init (n - k) (fun _ -> { Sim_backend.cca = "cubic"; rtt })
        @ List.init k (fun _ -> { Sim_backend.cca = other; rtt })
      in
      let spec = { spec with Sim_backend.flows } in
      let outcome =
        match ctx with
        | Some ctx -> (
          match Runs.run_specs ctx backend [ spec ] with
          | [ o ] -> o
          | _ -> assert false)
        | None -> Sim_backend.run_exn backend spec
      in
      ( Sim_backend.mean_bps_of_cca outcome "cubic",
        Sim_backend.mean_bps_of_cca outcome other ))

let packet_payoff ?duration ?warmup ~ctx ~mbps ~rtt_ms ~buffer_bdp ~other ~n
    () =
  memoize (fun k ->
      if k < 0 || k > n then invalid_arg "packet_payoff: k out of range";
      let summary =
        Runs.mix ?duration ?warmup ~ctx ~mbps ~rtt_ms ~buffer_bdp
          ~n_cubic:(n - k) ~other ~n_other:k ()
      in
      (summary.Runs.per_flow_cubic_bps, summary.Runs.per_flow_other_bps))
