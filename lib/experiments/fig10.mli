(** Figure 10: Nash Equilibria when flows have different RTTs. 30 flows in
    three RTT groups share a 100 Mbps bottleneck; the NE search runs over
    per-group BBR counts with simulator-measured payoffs. *)

val threshold_profile : int -> int array
(** [threshold_profile m] assigns [m] CUBIC flows to RTT groups
    shortest-RTT-first and returns the per-group {e BBR} counts — the
    model-informed starting profile for the NE search. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
