(** Figure 10: Nash Equilibria when flows have different RTTs. 30 flows in
    three RTT groups share a 100 Mbps bottleneck; the NE search runs over
    per-group BBR counts with simulator-measured payoffs. *)

val threshold_profile : int -> int array
(** [threshold_profile m] assigns [m] CUBIC flows to RTT groups
    shortest-RTT-first and returns the per-group {e BBR} counts — the
    model-informed starting profile for the NE search. *)

val best_response_fixpoint :
  ?max_steps:int ->
  sizes:int array ->
  payoffs:Ccgame.Grouped_game.payoffs ->
  start:int array ->
  unit ->
  int array * bool
(** One-flow-at-a-time best-response dynamics from [start] over groups of
    the given [sizes]: each step the single most profitable deviation (one
    flow switching CCA) is applied, until no deviation gains or [max_steps]
    (default 60) steps elapse. Returns the terminal BBR counts and whether
    a genuine fixpoint was reached — [false] means the cap fired, which
    with cycling payoffs (e.g. matching-pennies-like tables) leaves the
    counts at an arbitrary point of the cycle, so callers must not treat
    an unconverged terminal as an approximate equilibrium. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
