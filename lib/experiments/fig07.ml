(** Figure 7: do other congestion-control algorithms also claim a
    disproportionate bandwidth share against CUBIC? 10 flows, 100 Mbps,
    2 BDP buffer; X in {BBR, BBRv2, Copa, PCC Vivace}, varying the number of
    X flows from 0 to 10. *)

let mbps = 100.0
let rtt_ms = 40.0
let buffer_bdp = 2.0
let n = 10
let algorithms = [ "bbr"; "bbr2"; "copa"; "vivace" ]

type point = {
  algo : string;
  n_other : int;
  other_per_flow_bps : float;
  cubic_per_flow_bps : float;
  fair_share_bps : float;
}

let points (ctx : Common.ctx) =
  let fair_share_bps = (Sim_engine.Units.mbps mbps :> float) /. float_of_int n in
  let grid =
    List.concat_map
      (fun algo ->
        List.filter_map
          (fun n_other -> if n_other = 0 then None else Some (algo, n_other))
          (Common.count_grid ctx.mode ~n))
      algorithms
  in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun (algo, n_other) ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:(n - n_other)
             ~other:algo ~n_other ())
         grid)
  in
  List.map2
    (fun (algo, n_other) (summary : Runs.summary) ->
      {
        algo;
        n_other;
        other_per_flow_bps = summary.per_flow_other_bps;
        cubic_per_flow_bps = summary.per_flow_cubic_bps;
        fair_share_bps;
      })
    grid summaries

let disproportionate points algo =
  (* The paper's criterion for a NE to exist (property (i) of 4.2): some
     mix where the per-flow X throughput exceeds the fair share. *)
  List.exists
    (fun p ->
      p.algo = algo
      && p.n_other < n
      && p.other_per_flow_bps > p.fair_share_bps *. 1.05)
    points

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "fig07";
    title =
      "Per-flow throughput of BBR/BBRv2/Copa/Vivace vs CUBIC (10 flows, 2 \
       BDP)";
    header =
      [ "algo"; "#algo"; "algo_perflow"; "cubic_perflow"; "fair_share" ];
    rows =
      List.map
        (fun p ->
          [
            p.algo;
            Common.cell_int p.n_other;
            Common.cell (Common.mbps p.other_per_flow_bps);
            Common.cell (Common.mbps p.cubic_per_flow_bps);
            Common.cell (Common.mbps p.fair_share_bps);
          ])
        points;
    notes =
      List.map
        (fun algo ->
          Printf.sprintf "%s: takes a disproportionate share at some mix: %b%s"
            algo
            (disproportionate points algo)
            (match algo with
            | "copa" -> " (paper expects false: no NE incentive to adopt)"
            | _ -> " (paper expects true: an NE distribution exists)"))
        algorithms;
  }
