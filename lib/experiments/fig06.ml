(** Figure 6: the Nash-Equilibrium geometry (the paper's schematic, realized
    with the model). For a 10-flow network we tabulate the model's BBR
    per-flow bandwidth against the fair-share line and report the predicted
    crossing point (the NE). *)

let mbps = 100.0
let rtt_ms = 40.0
let buffer_bdp = 5.0
let n = 10

type point = {
  n_bbr : int;
  bbr_per_flow_sync_bps : float;
  bbr_per_flow_desync_bps : float;
  fair_share_bps : float;
}

let points () =
  let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
  let fair_share_bps = (Sim_engine.Units.mbps mbps :> float) /. float_of_int n in
  List.map
    (fun n_bbr ->
      let p sync =
        (Ccmodel.Multi_flow.predict params ~n_cubic:(n - n_bbr) ~n_bbr ~sync)
          .per_flow_bbr_bps
      in
      {
        n_bbr;
        bbr_per_flow_sync_bps = p Ccmodel.Multi_flow.Synchronized;
        bbr_per_flow_desync_bps = p Ccmodel.Multi_flow.Desynchronized;
        fair_share_bps;
      })
    (List.init n (fun i -> i + 1))

let run (_ctx : Common.ctx) : Common.table =
  let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
  let region = Ccmodel.Ne.nash_region params ~n in
  {
    Common.id = "fig06";
    title =
      Printf.sprintf
        "NE geometry: model BBR per-flow bandwidth vs fair share (%d flows, \
         %g Mbps, %g BDP)"
        n mbps buffer_bdp;
    header = [ "#bbr"; "bbr_perflow_synch"; "bbr_perflow_desynch"; "fair_share" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell_int p.n_bbr;
            Common.cell (Common.mbps p.bbr_per_flow_sync_bps);
            Common.cell (Common.mbps p.bbr_per_flow_desync_bps);
            Common.cell (Common.mbps p.fair_share_bps);
          ])
        (points ());
    notes =
      [
        Printf.sprintf
          "predicted NE (point C of the paper's Fig. 6): %.1f CUBIC flows \
           (synch bound) to %.1f (desynch bound)"
          region.cubic_at_ne_sync region.cubic_at_ne_desync;
      ];
  }
