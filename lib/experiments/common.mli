(** Shared infrastructure for the per-figure experiment drivers.

    Every driver produces a {!table} — the textual equivalent of one paper
    figure/table — and can run in two modes: {!Quick} (coarser grids,
    shorter simulated durations, fewer trials; minutes for the whole suite)
    and {!Full} (paper-scale grids and 2-minute runs). *)

type mode = Quick | Full

type ctx = {
  mode : mode;
  jobs : int;  (** Worker domains for batched simulation runs. *)
  batch : int;
      (** Specs per {!Sim_backend.run_batch} call when {!Runs.run_specs}
          dispatches analytic-backend cache misses: same-shape specs are
          chunked this many at a time through one batched integrator
          pass. [1] disables batching (every spec runs alone). Outcomes
          are byte-identical for every value — this is purely a
          throughput/parallelism trade-off. *)
  cache_dir : string option;
      (** When set, completed runs are stored here (content-addressed by
          config digest) and replayed on re-runs instead of re-simulating. *)
  trace_dir : string option;
      (** When set, every simulated config writes a structured event trace
          to [<trace_dir>/<digest>.jsonl] plus a [.metrics] rollup sidecar.
          Traced runs bypass the result cache: a cache hit would skip the
          simulation and produce no trace. *)
}
(** Everything a driver needs to execute its plan: the grid scale ([mode])
    plus the execution policy ([jobs], [cache_dir], [trace_dir]) threaded
    through to {!Runs.eval}. *)

val ctx :
  ?jobs:int ->
  ?batch:int ->
  ?cache_dir:string ->
  ?trace_dir:string ->
  mode ->
  ctx
(** [jobs] defaults to 1 (sequential); pass
    [Sim_engine.Exec.domain_count ()] to use every core. [batch]
    defaults to 8 specs per analytic-backend batch. Raises
    [Invalid_argument] when [jobs < 1] or [batch < 1]. *)

val quick : ctx
(** [ctx Quick]: sequential, uncached — the tests' and benches' default. *)

val sequential : ctx -> ctx
(** The same ctx with [jobs = 1]; used by drivers that parallelise at a
    coarser granularity (one domain per grid point) to keep the inner
    per-trial batches from spawning nested worker pools. *)

type table = {
  id : string;  (** e.g. ["fig03"]. *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** Caveats/observations appended when printing. *)
}

val print_table : Format.formatter -> table -> unit

val csv_of_table : table -> string

val write_csv : dir:string -> table -> string
(** Writes [<dir>/<id>.csv] (creating [dir] if needed); returns the path. *)

val cell : float -> string
(** Format a float for a table cell ("-" for [nan]). *)

val cell_int : int -> string

val mbps : float -> float
(** bits/s → Mbps, for presentation. *)

val mean : float list -> float

val duration : mode -> Sim_engine.Units.seconds
(** Simulated time per run: 90 s (quick) / 120 s (full, as in the paper).
    Shorter runs systematically under-measure BBR, whose bandwidth filter
    needs tens of seconds to recover from CUBIC's slow-start overshoot. *)

val warmup : mode -> Sim_engine.Units.seconds

val trials : mode -> int
(** Seeds per configuration: 1 (quick) / 3 (full). *)

val buffer_grid : mode -> max:float -> float list
(** Buffer sizes in BDP for sweeps up to [max]: coarse in quick mode. *)

val count_grid : mode -> n:int -> int list
(** BBR-count grids 0..n: every value in full mode, strided in quick mode. *)
