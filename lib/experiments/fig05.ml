(** Figure 5(a-d): diminishing returns for BBR. 10 and 20 flows on a
    100 Mbps link (40 ms), buffers of 3 and 10 BDP; the share of BBR flows
    varies from 0 to all, and BBR's average per-flow throughput should fall
    inside the model's region and decrease as BBR flows multiply. *)

let mbps = 100.0
let rtt_ms = 40.0

type point = {
  n_total : int;
  buffer_bdp : float;
  n_bbr : int;
  actual_bbr_bps : float;
  actual_cubic_bps : float;
  sync_bound_bps : float;
  desync_bound_bps : float;
  fair_share_bps : float;
}

let panels = [ (10, 3.0); (20, 3.0); (10, 10.0); (20, 10.0) ]

let points (ctx : Common.ctx) =
  let grid =
    List.concat_map
      (fun (n_total, buffer_bdp) ->
        List.filter_map
          (fun n_bbr ->
            if n_bbr = 0 then None else Some (n_total, buffer_bdp, n_bbr))
          (Common.count_grid ctx.mode ~n:n_total))
      panels
  in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun (n_total, buffer_bdp, n_bbr) ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:(n_total - n_bbr)
             ~other:"bbr" ~n_other:n_bbr ())
         grid)
  in
  List.map2
    (fun (n_total, buffer_bdp, n_bbr) (summary : Runs.summary) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let fair_share_bps = (Sim_engine.Units.mbps mbps :> float) /. float_of_int n_total in
      let interval =
        Ccmodel.Multi_flow.per_flow_bbr_interval params
          ~n_cubic:(n_total - n_bbr) ~n_bbr
      in
      {
        n_total;
        buffer_bdp;
        n_bbr;
        actual_bbr_bps = summary.per_flow_other_bps;
        actual_cubic_bps = summary.per_flow_cubic_bps;
        sync_bound_bps = interval.lower_bbr_per_flow_bps;
        desync_bound_bps = interval.upper_bbr_per_flow_bps;
        fair_share_bps;
      })
    grid summaries

let run ctx : Common.table =
  let points = points ctx in
  (* Diminishing returns: within each panel, BBR's per-flow throughput at
     the largest BBR count should not exceed that at the smallest. *)
  let diminishing =
    List.for_all
      (fun (n_total, buffer_bdp) ->
        let panel =
          List.filter
            (fun p -> p.n_total = n_total && p.buffer_bdp = buffer_bdp)
            points
        in
        match (panel, List.rev panel) with
        | first :: _, last :: _ -> last.actual_bbr_bps <= first.actual_bbr_bps
        | _ -> true)
      panels
  in
  {
    Common.id = "fig05";
    title = "Diminishing returns for BBR as its share of flows grows";
    header =
      [ "flows"; "buffer(BDP)"; "#bbr"; "bbr_perflow"; "cubic_perflow";
        "synch_bound"; "desynch_bound"; "fair_share" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell_int p.n_total;
            Common.cell p.buffer_bdp;
            Common.cell_int p.n_bbr;
            Common.cell (Common.mbps p.actual_bbr_bps);
            Common.cell (Common.mbps p.actual_cubic_bps);
            Common.cell (Common.mbps p.sync_bound_bps);
            Common.cell (Common.mbps p.desync_bound_bps);
            Common.cell (Common.mbps p.fair_share_bps);
          ])
        points;
    notes =
      [
        (if diminishing then
           "BBR per-flow throughput decreases from the smallest to the \
            largest BBR share in every panel (the paper's key takeaway)"
         else
           "WARNING: diminishing-returns trend violated in some panel");
      ];
  }
