(** Figure 9(a,b): empirical Nash Equilibria vs the model's Nash region,
    sweeping buffer depth (20 flows quick / 50 flows full). *)

val flows_of_mode : Common.mode -> int
(** Total flow count used at each fidelity mode. *)

val string_of_observed : int list -> string
(** Render the observed equilibrium CUBIC-counts ("3/5", or "-" if none). *)

val observed_ne :
  ctx:Common.ctx ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  other:string ->
  n:int ->
  int list
(** Empirical equilibria (as BBR-flow counts) of the symmetric game whose
    payoffs are measured with the packet-level simulator. Shared with
    {!Fig11}, which swaps in the ["bbr2"] CCA. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
