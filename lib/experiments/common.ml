type mode = Quick | Full

type ctx = {
  mode : mode;
  jobs : int;
  batch : int;
  cache_dir : string option;
  trace_dir : string option;
}

let ctx ?(jobs = 1) ?(batch = 8) ?cache_dir ?trace_dir mode =
  if jobs < 1 then invalid_arg "Common.ctx: jobs must be >= 1";
  if batch < 1 then invalid_arg "Common.ctx: batch must be >= 1";
  { mode; jobs; batch; cache_dir; trace_dir }

let quick = ctx Quick

let sequential ctx = { ctx with jobs = 1 }

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let print_table ppf table =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let current = try List.nth acc i with _ -> 0 in
            max current (String.length cell))
          row)
      (List.map String.length table.header)
      table.rows
  in
  let print_row row =
    List.iteri
      (fun i cell ->
        let width = try List.nth widths i with _ -> String.length cell in
        Format.fprintf ppf "%*s  " width cell)
      row;
    Format.fprintf ppf "@."
  in
  Format.fprintf ppf "== %s: %s ==@." table.id table.title;
  print_row table.header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row table.rows;
  List.iter (fun note -> Format.fprintf ppf "note: %s@." note) table.notes;
  Format.fprintf ppf "@."

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_table table =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line table.header :: List.map line table.rows) ^ "\n"

let write_csv ~dir table =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (table.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (csv_of_table table);
  close_out oc;
  path

let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v
let cell_int = string_of_int
let mbps bits_per_sec =
  Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps bits_per_sec)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let duration = function
  | Quick -> Sim_engine.Units.seconds 90.0
  | Full -> Sim_engine.Units.seconds 120.0

let warmup = function
  | Quick -> Sim_engine.Units.seconds 30.0
  | Full -> Sim_engine.Units.seconds 40.0
let trials = function Quick -> 1 | Full -> 3

let buffer_grid mode ~max:max_bdp =
  let grid =
    match mode with
    | Quick -> [ 1.0; 2.0; 3.0; 5.0; 10.0; 20.0; 30.0; 50.0 ]
    | Full ->
      [ 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 8.0; 10.0; 12.0; 15.0; 18.0;
        21.0; 24.0; 27.0; 30.0; 35.0; 40.0; 45.0; 50.0 ]
  in
  List.filter (fun b -> b <= max_bdp) grid

let count_grid mode ~n =
  match mode with
  | Full -> List.init (n + 1) Fun.id
  | Quick ->
    let step = max 1 (n / 5) in
    let rec build k acc = if k > n then acc else build (k + step) (k :: acc) in
    let ks = build 0 [] in
    let ks = if List.mem n ks then ks else n :: ks in
    List.sort compare ks
