(** Extension: Nash Equilibria under the paper's §4.3 "complex utility
    functions" conjecture.

    §4.3 argues that for utilities that mix throughput and delay, the NE
    distribution should barely move, because the shared queuing delay is
    almost flat across CUBIC/BBR mixes while throughput is asymmetric. We
    test this directly: utility U_i(k) = throughput_i(k) − w · C · d(k)/d_max
    where d(k) is the shared queuing delay at k BBR flows, d_max the buffer's
    maximal delay, and w sweeps from 0 (pure throughput, the paper's §4.1
    game) to 1 (delay penalty comparable to the whole link capacity). *)

let mbps = 100.0
let rtt_ms = 40.0
let buffer_bdp = 2.0
let n = 10

type point = { weight : float; ne_cubic : int list }

(* Measured (throughput_cubic, throughput_bbr, qdelay) per BBR count. The
   NE check probes every k anyway, so measure all of 0..n as one batch. *)
let samples ctx =
  let counts = List.init (n + 1) Fun.id in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun k ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:(n - k) ~other:"bbr"
             ~n_other:k ())
         counts)
  in
  let table =
    Array.of_list
      (List.map
         (fun (summary : Runs.summary) ->
           ( summary.Runs.per_flow_cubic_bps,
             summary.Runs.per_flow_other_bps,
             summary.Runs.queuing_delay ))
         summaries)
  in
  fun k -> table.(k)

let points (ctx : Common.ctx) =
  let sample = samples ctx in
  let capacity_bps = Sim_engine.Units.mbps mbps in
  let d_max =
    buffer_bdp
    *. (Sim_engine.Units.ms rtt_ms :> float) (* B/C = bdp multiples of rtt *)
  in
  let weights =
    match ctx.mode with
    | Common.Quick -> [ 0.0; 0.5; 1.0 ]
    | Common.Full -> [ 0.0; 0.1; 0.25; 0.5; 1.0; 2.0 ]
  in
  List.map
    (fun weight ->
      let penalty k =
        let _, _, qdelay = sample k in
        weight *. (capacity_bps :> float) *. (qdelay /. d_max)
      in
      let game =
        {
          Ccgame.Symmetric_game.u_cubic =
            (fun k ->
              let u, _, _ = sample k in
              u -. penalty k);
          u_bbr =
            (fun k ->
              let _, u, _ = sample k in
              u -. penalty k);
        }
      in
      let ne_cubic =
        Ccgame.Symmetric_game.equilibria_cubic_counts ~epsilon:0.02 ~n game
      in
      { weight; ne_cubic })
    weights

let run ctx : Common.table =
  let points = points ctx in
  let all_mixed =
    List.for_all
      (fun p -> List.exists (fun c -> c > 0 && c < n) p.ne_cubic)
      points
  in
  {
    Common.id = "ext-utility";
    title =
      Printf.sprintf
        "Extension: NE under throughput-minus-delay utilities (%d flows, %g \
         BDP)"
        n buffer_bdp;
    header = [ "delay_weight"; "NE (#cubic)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.weight;
            (match p.ne_cubic with
            | [] -> "-"
            | ks -> String.concat "/" (List.map string_of_int ks));
          ])
        points;
    notes =
      [
        Printf.sprintf
          "mixed NE persists across delay weights: %b (the paper's §4.3 \
           conjecture: the shared, nearly-flat queuing delay cannot undo \
           the throughput asymmetry)"
          all_mixed;
      ];
  }
