(** Figure 10: Nash Equilibria when flows have different RTTs. 30 flows in
    three groups of 10 (10, 30, 50 ms) share a 100 Mbps bottleneck; buffers
    are multiples of the shortest-RTT flow's BDP. The NE search runs over
    per-group BBR counts (the paper's 2^30 profiles collapse to 11^3
    distributions); payoffs come from the packet-level simulator, memoized
    per distribution, and the search uses best-response dynamics from
    several starts followed by an exact neighbourhood check. *)

let mbps = 100.0

let[@simlint.domain_ok "read-only RTT config table; workers never write it"]
    group_rtts_ms =
  [| 10.0; 30.0; 50.0 |]

let group_size = 10

type point = {
  buffer_bdp : float;  (** In BDPs of the 10 ms flow. *)
  ne : int array list;  (** BBR counts per group at each NE found. *)
  cubic_at_ne : int list;
  shortest_rtt_mostly_cubic : bool;
  br_converged : bool;
      (** Every best-response run reached a fixpoint before the step cap. *)
}

let[@simlint.domain_ok "read-only group-size table; workers never write it"]
    sizes =
  Array.map (fun _ -> group_size) group_rtts_ms

let payoff_tables ~(ctx : Common.ctx) ~buffer_bdp ~seed =
  let shortest_rtt_ms = group_rtts_ms.(0) in
  let cache = Hashtbl.create 64 in
  let run_counts counts =
    let key = Array.to_list counts in
    match Hashtbl.find_opt cache key with
    | Some result -> result
    | None ->
      (* Flow order: group-major; within a group, BBR flows first. *)
      let flows =
        List.concat
          (List.mapi
             (fun g rtt_ms ->
               let rtt = Sim_engine.Units.ms rtt_ms in
               List.init group_size (fun i ->
                   Tcpflow.Experiment.flow_config ~base_rtt:rtt
                     (if i < counts.(g) then "bbr" else "cubic")))
             (Array.to_list group_rtts_ms))
      in
      let duration, warmup =
        match ctx.mode with
        | Common.Quick -> (Sim_engine.Units.seconds 50.0, Sim_engine.Units.seconds 20.0)
        | Common.Full -> (Sim_engine.Units.seconds 120.0, Sim_engine.Units.seconds 40.0)
      in
      let result =
        match
          Runs.eval ctx
            [
              Runs.config ~duration ~warmup ~mode:ctx.mode ~mbps
                ~rtt_ms:shortest_rtt_ms ~buffer_bdp ~flows ~seed ();
            ]
        with
        | [ r ] -> r
        | _ -> assert false
      in
      Hashtbl.replace cache key result;
      result
  in
  let group_mean counts ~group ~cca =
    let result = run_counts counts in
    let values =
      List.filter_map
        (fun (f : Tcpflow.Experiment.flow_result) ->
          if f.flow_id / group_size = group && f.flow_cca = cca then
            Some f.throughput_bps
          else None)
        result.Tcpflow.Experiment.per_flow
    in
    Common.mean values
  in
  {
    Ccgame.Grouped_game.u_cubic =
      (fun ~group ~counts -> group_mean counts ~group ~cca:"cubic");
    u_bbr = (fun ~group ~counts -> group_mean counts ~group ~cca:"bbr");
  }

(* Best-response dynamics: from a starting distribution, repeatedly let the
   group with the largest switching gain move one flow, until no group
   gains. Converges quickly in practice, but pure best response can cycle
   (two groups endlessly swapping a flow), so the result carries a
   converged flag: [true] means a genuine fixpoint, [false] means the step
   cap fired and the terminal profile is an arbitrary cycle member. *)
let best_response_fixpoint ?(max_steps = 60) ~sizes ~payoffs ~start () =
  if max_steps <= 0 then
    invalid_arg "Fig10.best_response_fixpoint: max_steps";
  if Array.length start <> Array.length sizes then
    invalid_arg "Fig10.best_response_fixpoint: start/sizes length mismatch";
  let counts = Array.copy start in
  let steps = ref 0 in
  let improved = ref true in
  while !improved && !steps < max_steps do
    incr steps;
    improved := false;
    let best_gain = ref 0.0 and best_move = ref None in
    Array.iteri
      (fun g k ->
        let current_cubic =
          if k < sizes.(g) then payoffs.Ccgame.Grouped_game.u_cubic ~group:g ~counts
          else nan
        in
        let current_bbr =
          if k > 0 then payoffs.Ccgame.Grouped_game.u_bbr ~group:g ~counts
          else nan
        in
        (* CUBIC flow in group g considers switching to BBR. *)
        if k < sizes.(g) then begin
          let next = Array.copy counts in
          next.(g) <- k + 1;
          let gain =
            payoffs.Ccgame.Grouped_game.u_bbr ~group:g ~counts:next
            -. current_cubic
          in
          if gain > !best_gain then begin
            best_gain := gain;
            best_move := Some (g, 1)
          end
        end;
        (* BBR flow considers switching back to CUBIC. *)
        if k > 0 then begin
          let next = Array.copy counts in
          next.(g) <- k - 1;
          let gain =
            payoffs.Ccgame.Grouped_game.u_cubic ~group:g ~counts:next
            -. current_bbr
          in
          if gain > !best_gain then begin
            best_gain := gain;
            best_move := Some (g, -1)
          end
        end)
      counts;
    match !best_move with
    | Some (g, delta) when !best_gain > 0.0 ->
      counts.(g) <- counts.(g) + delta;
      improved := true
    | _ -> ()
  done;
  (* [improved] still set means the loop was cut off mid-flight by the
     step cap, not by reaching a rest point. *)
  (counts, not !improved)

(* The paper observes NE to be threshold profiles: the CUBIC flows are
   exactly the shortest-RTT flows. [threshold_profile m] places m CUBIC
   flows starting from the shortest-RTT group; the BBR counts are the
   complement. *)
let threshold_profile m =
  let counts = Array.make (Array.length sizes) 0 in
  let remaining = ref m in
  Array.iteri
    (fun g size ->
      let cubic_here = min size !remaining in
      remaining := !remaining - cubic_here;
      counts.(g) <- size - cubic_here)
    sizes;
  counts

let find_ne ~buffer_bdp ~payoffs =
  (* Model-informed starting points: the homogeneous-RTT NE prediction at
     the middle RTT locates the neighbourhood; best-response dynamics then
     refine against the measured multi-RTT payoffs. *)
  let n_total = Array.fold_left ( + ) 0 sizes in
  let params =
    Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp:(Float.max 1.0 buffer_bdp)
      ~rtt_ms:group_rtts_ms.(1)
  in
  let region = Ccmodel.Ne.nash_region params ~n:n_total in
  let m0 =
    int_of_float
      (Float.round
         ((region.cubic_at_ne_sync +. region.cubic_at_ne_desync) /. 2.0))
  in
  let clamp m = max 0 (min n_total m) in
  let starts =
    List.map threshold_profile
      (List.sort_uniq compare [ clamp (m0 - 5); clamp m0; clamp (m0 + 5) ])
  in
  let results =
    List.map
      (fun start -> best_response_fixpoint ~sizes ~payoffs ~start ())
      starts
  in
  let br_converged = List.for_all snd results in
  let terminals = List.sort_uniq compare (List.map fst results) in
  let ne =
    match
      List.filter
        (Ccgame.Grouped_game.is_equilibrium ~epsilon:0.02 ~sizes payoffs)
        terminals
    with
    | [] ->
      (* Measurement noise can break the strict check at the best-response
         fixpoints; report the {e converged} ones as the approximate NE
         (the paper likewise reports several neighbouring NE across
         trials). Capped runs are excluded: their terminal profile is
         wherever the cycle happened to be cut off, not a rest point. *)
      List.sort_uniq compare
        (List.filter_map (fun (c, ok) -> if ok then Some c else None) results)
    | ne -> ne
  in
  (ne, br_converged)

(* Best-response dynamics are adaptive, so each buffer point runs its
   probes sequentially and the buffer sweep is what parallelises. *)
let points (ctx : Common.ctx) =
  let buffers =
    match ctx.mode with
    | Common.Quick -> [ 5.0; 15.0; 30.0 ]
    | Common.Full -> [ 2.0; 5.0; 10.0; 15.0; 20.0; 30.0; 40.0; 50.0 ]
  in
  let point_ctx = Common.sequential ctx in
  Sim_engine.Exec.map_list ~jobs:ctx.jobs
    (fun buffer_bdp ->
      let payoffs = payoff_tables ~ctx:point_ctx ~buffer_bdp ~seed:1 in
      let ne, br_converged = find_ne ~buffer_bdp ~payoffs in
      let cubic_at_ne =
        List.map (Ccgame.Grouped_game.total_cubic ~sizes) ne
      in
      (* The paper's second trend: CUBIC flows at the NE are concentrated in
         the shortest-RTT group. *)
      let shortest_rtt_mostly_cubic =
        List.for_all
          (fun counts ->
            (* BBR count in group 0 should be the smallest. *)
            counts.(0) <= counts.(1) && counts.(1) <= counts.(2))
          ne
      in
      { buffer_bdp; ne; cubic_at_ne; shortest_rtt_mostly_cubic; br_converged })
    buffers

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "fig10";
    title =
      "NE with different RTTs (30 flows: 10 each at 10/30/50 ms, 100 Mbps)";
    header =
      [ "buffer(BDP_10ms)"; "NE bbr counts (10/30/50ms)"; "#cubic_at_NE";
        "short-RTT flows prefer CUBIC"; "BR converged" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.buffer_bdp;
            String.concat " "
              (List.map
                 (fun c ->
                   Printf.sprintf "%d-%d-%d" c.(0) c.(1) c.(2))
                 p.ne);
            String.concat "/" (List.map string_of_int p.cubic_at_ne);
            string_of_bool p.shortest_rtt_mostly_cubic;
            string_of_bool p.br_converged;
          ])
        points;
    notes =
      [
        Printf.sprintf "NE found at every buffer size: %b"
          (List.for_all (fun p -> p.ne <> []) points);
        Printf.sprintf "best-response dynamics converged at every buffer: %b"
          (List.for_all (fun p -> p.br_converged) points);
        "paper trends: (1) NE exist in multi-RTT networks; (2) at the NE \
         the CUBIC flows are the shortest-RTT flows";
      ];
  }
