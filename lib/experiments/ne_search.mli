(** Empirical Nash-Equilibrium search over simulated payoffs, reproducing
    the paper's §4.4 methodology with the §4.1 symmetry reduction: payoffs
    depend only on the BBR-flow count k, the per-flow BBR advantage is
    monotone (decreasing) in k, so the NE neighbourhood can be located by
    bisection and then verified exactly with {!Ccgame.Symmetric_game}. *)

type payoff_fn = int -> float * float
(** [k ↦ (per-flow CUBIC utility, per-flow BBR utility)] for k BBR flows out
    of n. Conventions: the CUBIC component may be [nan] at k = n and the
    BBR component [nan] at k = 0. Implementations should memoize — the
    search calls it O(log n + window) times. *)

val memoize : payoff_fn -> payoff_fn

val observed_equilibria :
  ?epsilon:float ->
  n:int ->
  fair_bps:float ->
  payoff:payoff_fn ->
  window:int ->
  unit ->
  int list
(** BBR counts k that are Nash Equilibria. Bisects on
    [u_bbr k - fair_bps] and exhaustively NE-checks the ±[window]
    neighbourhood of the crossing (plus the endpoints 0 and n), with
    relative no-gain tolerance [epsilon]. When noise leaves no candidate
    passing the check, the fair-share crossing itself is reported (the
    paper's Eq. 25 locator). *)

val backend_payoff :
  ?ctx:Common.ctx ->
  backend:Sim_backend.t ->
  spec:Sim_backend.spec ->
  other:string ->
  rtt:Sim_engine.Units.seconds ->
  n:int ->
  unit ->
  payoff_fn
(** Payoffs measured by any {!Sim_backend}: k flows of [other] vs n−k
    CUBIC flows, all at [rtt], on [spec]'s bottleneck (its [flows] field
    is replaced each probe). With [ctx], runs go through
    {!Runs.run_specs} and hit the ctx's on-disk cache. Memoized.
    Supersedes the old fluid-only [fluid_payoff]: pass
    [backend:Sim_backend.fluid] for the historical behavior, or the ODE
    backend for a deterministic search. *)

val packet_payoff :
  ?duration:Sim_engine.Units.seconds ->
  ?warmup:Sim_engine.Units.seconds ->
  ctx:Common.ctx ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  other:string ->
  n:int ->
  unit ->
  payoff_fn
(** Payoffs measured by the packet-level simulator (slower; used for spot
    checks and full mode). Memoized, and cached on disk when the ctx has a
    cache dir. The search is adaptive (each probe depends on the last), so
    callers that want parallelism should fan out at a coarser granularity —
    one grid point per worker with a {!Common.sequential} ctx — as the
    fig09/fig11 drivers do. *)
