(** The fluid-vs-ODE differential grid: every calibrated cell of the
    analytic-backend cross-validation, run through {!Runs.run_specs} on
    both backends and reported side by side.

    The cells mirror the grid recorded in [test/test_packet_vs_fluid.ml];
    both backends are deterministic for a fixed seed, so the quick-mode
    table is byte-stable and gated as a golden CSV by [make check]. *)

let mbps = 100.0
let rtt_ms = 40.0

type cell = { label : string; ccas : string list; buffer_bdp : float }

let cells =
  [
    { label = "cubic-alone"; ccas = [ "cubic" ]; buffer_bdp = 1.0 };
    { label = "bbr-alone"; ccas = [ "bbr" ]; buffer_bdp = 1.0 };
    { label = "bbr2-alone"; ccas = [ "bbr2" ]; buffer_bdp = 1.0 };
    { label = "cubic-v-bbr"; ccas = [ "cubic"; "bbr" ]; buffer_bdp = 1.0 };
    { label = "cubic-v-bbr"; ccas = [ "cubic"; "bbr" ]; buffer_bdp = 2.0 };
    { label = "cubic-v-bbr"; ccas = [ "cubic"; "bbr" ]; buffer_bdp = 10.0 };
    { label = "cubic-v-bbr"; ccas = [ "cubic"; "bbr" ]; buffer_bdp = 25.0 };
    { label = "cubic-v-bbr2"; ccas = [ "cubic"; "bbr2" ]; buffer_bdp = 0.5 };
    { label = "cubic-v-bbr2"; ccas = [ "cubic"; "bbr2" ]; buffer_bdp = 1.0 };
    { label = "cubic-v-cubic"; ccas = [ "cubic"; "cubic" ]; buffer_bdp = 10.0 };
    { label = "bbr-v-bbr"; ccas = [ "bbr"; "bbr" ]; buffer_bdp = 10.0 };
  ]

let spec_of_cell ~mode c =
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  (* The horizon is mode-independent: it is the window the calibration
     targets. Shorter (30 s) and the deep-buffer cells are still
     mid-transient (CUBIC takes tens of seconds to fill a 25-BDP buffer);
     longer (120 s) and the BBRv2 cells drift apart again as the smoothed
     inflight_hi dynamics diverge from the fluid model's event-driven
     duty cycle. Both backends are analytic — the whole grid runs in well
     under a second — so there is no quick/full cost to trade. *)
  ignore (mode : Common.mode);
  let duration, warmup = (60.0, 20.0) in
  Sim_backend.spec ~rate_bps
    ~buffer_bytes:
      (Sim_engine.Units.scale c.buffer_bdp
         (Sim_engine.Units.bdp_bytes ~rate_bps ~rtt))
    ~duration:(Sim_engine.Units.seconds duration)
    ~warmup:(Sim_engine.Units.seconds warmup)
    (List.map (fun cca -> { Sim_backend.cca; rtt }) c.ccas)

(* Per-kind mean shares: the grid compares kind aggregates because the
   fluid backend jitters per-flow RTTs from its seed while the ODE is
   deterministic at the nominal RTT. *)
let kind_means (o : Sim_backend.outcome) ccas =
  List.map (fun cca -> Sim_backend.mean_bps_of_cca o cca)
    (List.sort_uniq compare ccas)

let run (ctx : Common.ctx) : Common.table =
  let specs = List.map (spec_of_cell ~mode:ctx.mode) cells in
  let fluid = Runs.run_specs ctx Sim_backend.fluid specs in
  let ode = Runs.run_specs ctx Sim_backend.ode specs in
  let rows =
    List.map2
      (fun c (f, o) ->
        let fm = kind_means f c.ccas and om = kind_means o c.ccas in
        let delta =
          List.fold_left2
            (fun acc a b -> Float.max acc (Float.abs (a -. b)))
            0.0 fm om
        in
        [
          c.label;
          Common.cell c.buffer_bdp;
          String.concat "/" (List.map (fun v -> Common.cell (Common.mbps v)) fm);
          String.concat "/" (List.map (fun v -> Common.cell (Common.mbps v)) om);
          Common.cell (Common.mbps delta);
          Common.cell f.Sim_backend.utilization;
          Common.cell o.Sim_backend.utilization;
        ])
      cells
      (List.combine fluid ode)
  in
  {
    Common.id = "fluidgrid";
    title =
      Printf.sprintf
        "Fluid vs ODE backend differential grid (%g Mbps, %g ms)" mbps rtt_ms;
    header =
      [
        "cell";
        "buffer(BDP)";
        "fluid(Mbps)";
        "ode(Mbps)";
        "max|delta|(Mbps)";
        "fluid_util";
        "ode_util";
      ];
    rows;
    notes =
      [
        "Kind-mean shares; the calibration bound is max|delta| <= 5% of \
         capacity on every cell.";
        "Deep-buffer cubic-v-bbr2 cells are excluded: smoothed loss cannot \
         reproduce the event-driven inflight_hi suppression (see DESIGN.md).";
      ];
  }
