(** Figure 3(a-d): 2-flow model validation. 1 CUBIC vs 1 BBR over
    {50,100} Mbps x {40,80} ms, buffers 1-30 BDP; compares the simulated BBR
    share against our model (Eq. 18-20) and Ware et al. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
