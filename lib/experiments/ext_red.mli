(** Extension: does RED at the bottleneck change the CUBIC/BBR split and
    its Nash Equilibrium? *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
