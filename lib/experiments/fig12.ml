(** Figure 12: model performance in ultra-deep buffers. 1 CUBIC vs 1 BBR at
    50 Mbps, 40 ms, buffers from 1 up to 250 BDP; beyond ~100 BDP BBR stops
    being cwnd-limited and the model over-estimates its throughput. *)

let mbps = 50.0
let rtt_ms = 40.0

type point = {
  buffer_bdp : float;
  actual_bps : float;
  model_bps : float;
  ware_bps : float;
  regime : Ccmodel.Two_flow.regime;
}

let buffers mode =
  match mode with
  | Common.Quick -> [ 1.0; 10.0; 30.0; 60.0; 100.0; 150.0; 250.0 ]
  | Common.Full ->
    [ 1.0; 5.0; 10.0; 20.0; 30.0; 40.0; 60.0; 80.0; 100.0; 125.0; 150.0;
      175.0; 200.0; 225.0; 250.0 ]

let points (ctx : Common.ctx) =
  let grid = buffers ctx.mode in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun buffer_bdp ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:1 ~other:"bbr"
             ~n_other:1 ())
         grid)
  in
  List.map2
    (fun buffer_bdp (summary : Runs.summary) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let solution = Ccmodel.Two_flow.solve params in
      let ware_bps =
        Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
          ~duration:(Common.duration ctx.mode)
      in
      {
        buffer_bdp;
        actual_bps = summary.per_flow_other_bps;
        model_bps = solution.bbr_bandwidth_bps;
        ware_bps;
        regime = solution.regime;
      })
    grid summaries

let regime_name = function
  | Ccmodel.Two_flow.Shallow -> "shallow"
  | Ccmodel.Two_flow.Valid -> "cwnd-limited"
  | Ccmodel.Two_flow.Ultra_deep -> "not-cwnd-limited"

let run ctx : Common.table =
  let points = points ctx in
  let overestimates =
    List.filter
      (fun p ->
        p.regime = Ccmodel.Two_flow.Ultra_deep
        && p.model_bps > p.actual_bps)
      points
  in
  let deep =
    List.filter (fun p -> p.regime = Ccmodel.Two_flow.Ultra_deep) points
  in
  {
    Common.id = "fig12";
    title = "Ultra-deep buffers: where the model stops applying";
    header =
      [ "buffer(BDP)"; "actual_bbr"; "our_model"; "ware"; "regime" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.actual_bps);
            Common.cell (Common.mbps p.model_bps);
            Common.cell (Common.mbps p.ware_bps);
            regime_name p.regime;
          ])
        points;
    notes =
      [
        Printf.sprintf
          "model over-estimates BBR beyond 100 BDP at %d/%d ultra-deep \
           points (paper: the actual throughput dips below the prediction \
           in >100 BDP buffers)"
          (List.length overestimates) (List.length deep);
      ];
  }
