(** The experiment registry: every paper artifact (table/figure) mapped to
    its driver, for the CLI and the bench harness. *)

type entry = {
  id : string;
  summary : string;
  run : Common.ctx -> Common.table;
      (** Drivers receive the full execution context: grid scale
          ([ctx.mode]) plus the worker count and result-cache directory
          threaded down to {!Runs.eval}. *)
}

val all : entry list
(** In paper order: table1, fig01, fig03..fig12, then the repo's own
    artifacts ([evolve], [fluidgrid]) and the extensions (ext-red,
    ext-utility, ext-short, ext-internals, ext-2flow) motivated by the
    paper's discussion sections and its ref [21]. *)

val find : string -> entry option
val ids : unit -> string list
