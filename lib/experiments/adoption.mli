(** The [evolve] experiment: population-scale CCA adoption dynamics.

    Evolves per-RTT-class BBR shares under {!Ccgame.Evolve} dynamics with
    simulator-measured tagged-flow payoffs, one trajectory per
    (scenario cell x dynamics), and reports the adoption trajectory rows:
    population BBR share per generation, epsilon-Nash residual,
    convergence and fixation generations, the terminal
    {!Ccgame.Grouped_game.is_equilibrium} verdict, and packet-backend
    sign spot-checks near share crossings. Deterministic for fixed
    arguments and independent of [ctx.jobs]. *)

val default_dynamics : Ccgame.Evolve.dynamics list
(** Replicator, smoothed best response, and logit at the default
    temperature — the dynamics [run] evolves. *)

val run_with :
  ?dynamics:Ccgame.Evolve.dynamics list ->
  ?backend:Sim_backend.t ->
  ?seed:int ->
  ?max_generations:int ->
  ?spot_checks:int ->
  Common.ctx ->
  Common.table
(** The parameterized driver behind [repro evolve]. [dynamics] defaults to
    {!default_dynamics} (must be non-empty), [backend] to the fluid model,
    [seed] (initial-share draws and simulation seeds) to 1,
    [max_generations] to 60 (quick) / 150 (full), [spot_checks] — the
    per-trajectory cap on packet-level sign checks — to 1 (quick) /
    2 (full); spot checks are skipped when [backend] is the packet
    simulator itself. *)

val run : Common.ctx -> Common.table
(** [run_with] with every default — the catalog entry. *)
