(** Planning and execution of batched packet-level runs.

    Drivers no longer call {!Tcpflow.Experiment.run} inline: they build
    {!mix_spec}s (or raw configs) for every grid point up front, submit the
    whole batch through {!eval} — which consults the ctx's on-disk cache
    and fans the misses out over [ctx.jobs] domains — and reduce the
    results afterwards. *)

type summary = {
  per_flow_cubic_bps : float;  (** Mean per-flow CUBIC goodput; nan if none. *)
  per_flow_other_bps : float;  (** Same for the non-CUBIC CCA. *)
  aggregate_other_bps : float;
  queuing_delay : float;  (** Seconds, averaged over trials. *)
  utilization : float;
}

val eval :
  Common.ctx ->
  Tcpflow.Experiment.config list ->
  Tcpflow.Experiment.result list
(** Run every config, in order. With [ctx.cache_dir] set, cached results
    are returned without simulating and fresh results are persisted;
    duplicate configs within one batch are simulated once. Misses run on
    [ctx.jobs] worker domains; results are independent of [jobs] because
    each run derives all randomness from its config's seed.

    With [ctx.trace_dir] set, every distinct config is simulated with a
    trace hub attached and writes [<trace_dir>/<digest>.jsonl] (the full
    event stream) plus [<digest>.metrics] (a one-line
    {!Sim_engine.Trace.Metrics.summary_line} rollup). Traced batches bypass
    the result cache entirely — a hit would skip the simulation and leave
    no trace — and the files are byte-identical across invocations and
    [jobs] settings for a given config. *)

val run_specs :
  Common.ctx ->
  Sim_backend.t ->
  Sim_backend.spec list ->
  Sim_backend.outcome list
(** {!eval}'s backend-neutral sibling: run every spec on the given backend,
    in order, with the same cache discipline — outcomes are keyed by
    {!Sim_backend.digest} (which includes the backend's version token), so
    the packet, fluid and ODE backends never share entries. Misses are
    grouped by shape (flow count × duration), cut into [ctx.batch]-sized
    chunks, and dispatched through {!Sim_backend.run_batch} with one
    chunk per worker-pool job — the analytic backends advance each chunk
    through one batched integrator pass. Outcomes are byte-identical
    across [ctx.jobs] and [ctx.batch] settings (batched evaluation is
    exact, see DESIGN.md §15). [ctx.trace_dir] does not apply: analytic
    backends emit no event stream. Raises [Invalid_argument] when the
    backend rejects a spec (unsupported CCA, malformed spec). *)

type memo
(** An in-memory outcome store keyed by {!Sim_backend.digest}, layered in
    front of {!run_specs}'s disk cache for adaptive drivers whose payoff
    queries revisit the same profile many times per process (the evolve
    generation loop: late generations are quantized onto a few profiles).
    Bounded: at most [cap] entries, evicting least-recently-used (each
    eviction bumps {!Sim_engine.Exec.counters}' [memo_evictions]);
    results never depend on the cap, only the hit rate does. One memo
    per driver unit of work — memos are not domain-safe, so keep each
    inside the worker that owns it. *)

val memo : ?cap:int -> unit -> memo
(** [cap] defaults to 4096 outcomes. Raises [Invalid_argument] when
    [cap < 1]. *)

val run_specs_memo :
  memo:memo ->
  Common.ctx ->
  Sim_backend.t ->
  Sim_backend.spec list ->
  Sim_backend.outcome list
(** {!run_specs} with memoization: specs whose digest is already in the
    memo are answered without touching the cache or the worker pool;
    distinct misses run once (batched, so a generation's whole payoff
    batch shares one {!eval}-style fan-out) and are recorded. Results are
    independent of [ctx.jobs], like {!run_specs}. *)

type mix_spec
(** One homogeneous-RTT CUBIC-vs-other mix — one grid point of a figure,
    before seed expansion. *)

val spec :
  ?duration:Sim_engine.Units.seconds ->
  ?warmup:Sim_engine.Units.seconds ->
  ?aqm:Tcpflow.Experiment.aqm ->
  ?base_seed:int ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  n_cubic:int ->
  other:string ->
  n_other:int ->
  unit ->
  mix_spec
(** Raises [Invalid_argument] when the spec has no flows. *)

val mix_many : Common.ctx -> mix_spec list -> summary list
(** The batched workhorse: expands every spec into [Common.trials
    ctx.mode] seeded configs, submits the whole batch to {!eval} at once
    (so a figure's entire grid shares one worker pool), and averages each
    spec's trials into its summary. *)

val mix :
  ?duration:Sim_engine.Units.seconds ->
  ?warmup:Sim_engine.Units.seconds ->
  ?aqm:Tcpflow.Experiment.aqm ->
  ctx:Common.ctx ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  n_cubic:int ->
  other:string ->
  n_other:int ->
  ?base_seed:int ->
  unit ->
  summary
(** [mix_many] of a single spec — for adaptive callers (NE searches) whose
    next grid point depends on the previous result. *)

val config :
  ?duration:Sim_engine.Units.seconds ->
  ?warmup:Sim_engine.Units.seconds ->
  ?aqm:Tcpflow.Experiment.aqm ->
  mode:Common.mode ->
  mbps:float ->
  rtt_ms:float ->
  buffer_bdp:float ->
  flows:Tcpflow.Experiment.flow_config list ->
  seed:int ->
  unit ->
  Tcpflow.Experiment.config
(** The underlying config builder (exposed for bespoke experiments such as
    the multi-RTT runs). [duration]/[warmup] default to the mode's values. *)
