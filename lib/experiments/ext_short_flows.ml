(** Extension: the paper's §5 "more diverse workloads" gap.

    The model assumes long, backlogged flows. Here two long flows (1 CUBIC
    vs 1 BBR) share the bottleneck with Poisson arrivals of short CUBIC
    transfers (web-object-sized, 100–500 kB), and we measure how the
    long-flow split and the model's accuracy degrade as the short-flow load
    grows. Expectation: short flows spend their lives in slow start, acting
    as bursty uncontrolled cross-traffic that (a) takes a roughly
    load-proportional capacity share and (b) pushes the long-CUBIC/BBR
    split around without destroying its shape. *)

let mbps = 50.0
let rtt = Sim_engine.Units.ms 40.0
let mean_size_bytes = 300_000.0

type point = {
  offered_load : float;  (** Short-flow offered load as a capacity fraction. *)
  buffer_bdp : float;
  long_cubic_bps : float;
  long_bbr_bps : float;
  short_goodput_bps : float;
  model_bbr_bps : float;  (** 2-flow model, which ignores the churn. *)
  completed_short_flows : int;
}

let run_point ~mode ~offered_load ~buffer_bdp ~seed =
  let module Sim = Sim_engine.Sim in
  let rate_bps = Sim_engine.Units.mbps mbps in
  let duration = (Common.duration mode :> float)
  and warmup = (Common.warmup mode :> float) in
  let sim = Sim.create ~seed () in
  let arrival_rng = Sim_engine.Rng.split (Sim.rng sim) in
  (* Pre-draw the short-flow schedule so the dumbbell knows every flow id's
     RTT up front. [generate_shared] keeps the original single-stream
     gap/size draw interleaving, so the numbers match the pre-workload-layer
     runs exactly. *)
  let schedule =
    if offered_load <= 0.0 then [||]
    else
      Workload.Schedule.generate_shared
        ~arrival:
          (Workload.Arrival.poisson_of_load ~load:offered_load
             ~rate_bps:(rate_bps :> float)
             ~mean_size_bytes)
        ~sizes:(Workload.Dist.Uniform { lo_bytes = 100_000; hi_bytes = 500_000 })
        ~horizon_s:duration ~rng:arrival_rng ()
  in
  let arrivals =
    Array.to_list
      (Array.map
         (fun it ->
           (it.Workload.Schedule.arrival_s, it.Workload.Schedule.size_bytes))
         schedule)
  in
  let n_short = List.length arrivals in
  let specs =
    List.init (2 + n_short) (fun i -> { Netsim.Dumbbell.flow = i; base_rtt = rtt })
  in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps
      ~buffer_bytes:
        (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
      ~flows:specs ()
  in
  let mk_sender ~flow ~cca ?start_time ?data_limit_bytes () =
    let rng = Sim_engine.Rng.split (Sim.rng sim) in
    let cc = Cca.Registry.create cca ~mss:Sim_engine.Units.mss ~rng in
    Tcpflow.Sender.create ~net ~flow ~cc ?start_time ?data_limit_bytes ()
  in
  let long_cubic = mk_sender ~flow:0 ~cca:"cubic" () in
  let long_bbr = mk_sender ~flow:1 ~cca:"bbr" () in
  let shorts =
    List.mapi
      (fun i (start_time, size) ->
        mk_sender ~flow:(2 + i) ~cca:"cubic"
          ~start_time:(Sim_engine.Units.seconds start_time)
          ~data_limit_bytes:size ())
      arrivals
  in
  let at_warmup = [| 0.0; 0.0 |] in
  ignore
    (Sim.schedule sim ~delay:warmup (fun () ->
         at_warmup.(0) <- Tcpflow.Sender.delivered_bytes long_cubic;
         at_warmup.(1) <- Tcpflow.Sender.delivered_bytes long_bbr));
  Sim.run ~until:duration sim;
  let window = duration -. warmup in
  let goodput sender offset =
    (Sim_engine.Units.bits_per_sec_of_bytes
       ~bytes_per_sec:((Tcpflow.Sender.delivered_bytes sender -. offset) /. window)
      :> float)
  in
  let short_delivered =
    List.fold_left
      (fun acc s -> acc +. Tcpflow.Sender.delivered_bytes s)
      0.0 shorts
  in
  ( goodput long_cubic at_warmup.(0),
    goodput long_bbr at_warmup.(1),
    (Sim_engine.Units.bits_per_sec_of_bytes
       ~bytes_per_sec:(short_delivered /. duration)
      :> float),
    List.length (List.filter Tcpflow.Sender.completed shorts) )

(* Each point drives its own bespoke simulation (Poisson churn is not an
   [Experiment.config]), so the result cache does not apply; the grid
   still fans out over the ctx's workers. *)
let points (ctx : Common.ctx) =
  let loads =
    match ctx.mode with
    | Common.Quick -> [ 0.0; 0.1; 0.3 ]
    | Common.Full -> [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ]
  in
  let grid =
    List.concat_map
      (fun buffer_bdp ->
        List.map (fun offered_load -> (buffer_bdp, offered_load)) loads)
      [ 3.0; 10.0 ]
  in
  Sim_engine.Exec.map_list ~jobs:ctx.jobs
    (fun (buffer_bdp, offered_load) ->
      let params =
        Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms:(Sim_engine.Units.sec_to_ms rtt)
      in
      let model_bbr_bps = (Ccmodel.Two_flow.solve params).bbr_bandwidth_bps in
      let long_cubic_bps, long_bbr_bps, short_goodput_bps, completed =
        run_point ~mode:ctx.mode ~offered_load ~buffer_bdp ~seed:5
      in
      {
        offered_load;
        buffer_bdp;
        long_cubic_bps;
        long_bbr_bps;
        short_goodput_bps;
        model_bbr_bps;
        completed_short_flows = completed;
      })
    grid

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "ext-short";
    title =
      "Extension: long CUBIC vs BBR with short-flow (Poisson) cross traffic";
    header =
      [ "buffer(BDP)"; "short_load"; "long_cubic"; "long_bbr"; "short_goodput";
        "model_bbr(no churn)"; "#short_done" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.buffer_bdp;
            Common.cell p.offered_load;
            Common.cell (Common.mbps p.long_cubic_bps);
            Common.cell (Common.mbps p.long_bbr_bps);
            Common.cell (Common.mbps p.short_goodput_bps);
            Common.cell (Common.mbps p.model_bbr_bps);
            Common.cell_int p.completed_short_flows;
          ])
        points;
    notes =
      [
        "the steady-state model ignores churn; its BBR prediction degrades \
         as the short-flow load grows (the paper's §5 caveat about diverse \
         workloads)";
      ];
  }
