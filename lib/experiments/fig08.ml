(** Figure 8(a,b): throughput and queuing delay as a function of the
    CUBIC/BBR distribution. 10 flows, 100 Mbps, 2 BDP buffer, 40 ms;
    illustrates the paper's §4.3 argument that throughput (not delay) is the
    asymmetric metric that drives switching. *)

let mbps = 100.0
let rtt_ms = 40.0
let buffer_bdp = 2.0
let n = 10

type point = {
  n_bbr : int;
  bbr_per_flow_bps : float;
  cubic_per_flow_bps : float;
  queuing_delay : float;
}

let points (ctx : Common.ctx) =
  let counts = Common.count_grid ctx.mode ~n in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun n_bbr ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:(n - n_bbr)
             ~other:"bbr" ~n_other:n_bbr ())
         counts)
  in
  List.map2
    (fun n_bbr (summary : Runs.summary) ->
      {
        n_bbr;
        bbr_per_flow_bps = summary.per_flow_other_bps;
        cubic_per_flow_bps = summary.per_flow_cubic_bps;
        queuing_delay = summary.queuing_delay;
      })
    counts summaries

let run ctx : Common.table =
  let points = points ctx in
  (* Delay asymmetry check: queuing delay varies little until all flows are
     BBR (paper Fig. 8b). *)
  let mixed_delays =
    List.filter_map
      (fun p ->
        if p.n_bbr < n then Some (Sim_engine.Units.sec_to_ms (Sim_engine.Units.seconds p.queuing_delay))
        else None)
      points
  in
  let spread =
    match mixed_delays with
    | [] -> nan
    | xs ->
      List.fold_left Float.max neg_infinity xs
      -. List.fold_left Float.min infinity xs
  in
  {
    Common.id = "fig08";
    title = "Throughput and queuing delay vs CUBIC/BBR distribution";
    header =
      [ "#bbr"; "bbr_perflow(Mbps)"; "cubic_perflow(Mbps)"; "qdelay(ms)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell_int p.n_bbr;
            Common.cell (Common.mbps p.bbr_per_flow_bps);
            Common.cell (Common.mbps p.cubic_per_flow_bps);
            Common.cell (Sim_engine.Units.sec_to_ms (Sim_engine.Units.seconds p.queuing_delay));
          ])
        points;
    notes =
      [
        Printf.sprintf
          "queuing-delay spread across mixed distributions: %.1f ms (paper: \
           nearly flat until all flows are BBR, so throughput, which is \
           asymmetric, drives switching)"
          spread;
      ];
  }
