(** Extension: the authors' earlier APNet'21 result (paper's ref [21]) as an
    executable artifact — the 2-flow CUBIC/BBR normal-form game.

    Two players each choose CUBIC or BBR; payoffs are the measured goodputs
    of the four resulting profiles. The paper's §6 recalls that a NE exists
    in all such 2-flow games; we regenerate the payoff matrix and enumerate
    the pure equilibria with {!Ccgame.Normal_form} at several buffer
    depths. *)

let mbps = 50.0
let rtt_ms = 40.0
let strategies = [| "cubic"; "bbr" |]

type point = {
  buffer_bdp : float;
  payoffs : (int array * float * float) list;  (** profile, u0, u1 (Mbps). *)
  equilibria : int array list;
}

let profiles = [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]

let config ~mode ~buffer_bdp profile =
  let rtt = Sim_engine.Units.ms rtt_ms in
  let flows =
    Array.to_list
      (Array.map
         (fun s -> Tcpflow.Experiment.flow_config ~base_rtt:rtt strategies.(s))
         profile)
  in
  Runs.config ~mode ~mbps ~rtt_ms ~buffer_bdp ~flows ~seed:2 ()

let point ~buffer_bdp payoff_of_profile =
  let payoff profile player =
    let u0, u1 = payoff_of_profile profile in
    if player = 0 then u0 else u1
  in
  let game = Ccgame.Normal_form.create ~n_players:2 ~n_strategies:2 ~payoff in
  let equilibria = Ccgame.Normal_form.pure_equilibria game in
  let payoffs =
    List.map
      (fun profile ->
        ( profile,
          Common.mbps (Ccgame.Normal_form.payoff game profile 0),
          Common.mbps (Ccgame.Normal_form.payoff game profile 1) ))
      profiles
  in
  { buffer_bdp; payoffs; equilibria }

(* All four profiles of every buffer depth go through [Runs.eval] as one
   batch; the games are then assembled from the measured payoff table. *)
let points (ctx : Common.ctx) =
  let buffers =
    match ctx.mode with
    | Common.Quick -> [ 2.0; 10.0; 30.0 ]
    | Common.Full -> [ 1.0; 2.0; 5.0; 10.0; 20.0; 30.0; 50.0 ]
  in
  let grid =
    List.concat_map
      (fun buffer_bdp -> List.map (fun p -> (buffer_bdp, p)) profiles)
      buffers
  in
  let results =
    Runs.eval ctx
      (List.map
         (fun (buffer_bdp, profile) -> config ~mode:ctx.mode ~buffer_bdp profile)
         grid)
  in
  let table = Hashtbl.create 32 in
  List.iter2
    (fun (buffer_bdp, profile) result ->
      let u =
        match result.Tcpflow.Experiment.per_flow with
        | [ a; b ] ->
          ( a.Tcpflow.Experiment.throughput_bps,
            b.Tcpflow.Experiment.throughput_bps )
        | _ -> assert false
      in
      Hashtbl.replace table (buffer_bdp, Array.to_list profile) u)
    grid results;
  List.map
    (fun buffer_bdp ->
      point ~buffer_bdp (fun profile ->
          Hashtbl.find table (buffer_bdp, Array.to_list profile)))
    buffers

let name_of profile =
  Printf.sprintf "%s/%s" strategies.(profile.(0)) strategies.(profile.(1))

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "ext-2flow";
    title = "Extension: the 2-flow CUBIC/BBR game (APNet'21, paper ref [21])";
    header =
      [ "buffer(BDP)"; "profile"; "u_flow0(Mbps)"; "u_flow1(Mbps)"; "NE?" ];
    rows =
      List.concat_map
        (fun p ->
          List.map
            (fun (profile, u0, u1) ->
              [
                Common.cell p.buffer_bdp;
                name_of profile;
                Common.cell u0;
                Common.cell u1;
                (if List.exists (fun ne -> ne = profile) p.equilibria then
                   "yes"
                 else "");
              ])
            p.payoffs)
        points;
    notes =
      [
        Printf.sprintf "a pure NE exists at every buffer size: %b"
          (List.for_all (fun p -> p.equilibria <> []) points);
        "shallow buffers: bbr/bbr is the equilibrium (BBR dominant \
         strategy); deep buffers: the equilibrium gains CUBIC — the 2-flow \
         seed of the paper's Fig. 9 trend";
      ];
  }
