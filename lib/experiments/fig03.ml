(** Figure 3(a-d): 2-flow model validation. 1 CUBIC vs 1 BBR over
    {50,100} Mbps x {40,80} ms, buffers 1-30 BDP; compares the simulated BBR
    share against our model (Eq. 18-20) and Ware et al. *)

type point = {
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;
  actual_bps : float;
  model_bps : float;
  ware_bps : float;
}

let settings = [ (50.0, 40.0); (50.0, 80.0); (100.0, 40.0); (100.0, 80.0) ]

let points (ctx : Common.ctx) =
  let grid =
    List.concat_map
      (fun (mbps, rtt_ms) ->
        List.map
          (fun buffer_bdp -> (mbps, rtt_ms, buffer_bdp))
          (Common.buffer_grid ctx.mode ~max:30.0))
      settings
  in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun (mbps, rtt_ms, buffer_bdp) ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:1 ~other:"bbr"
             ~n_other:1 ())
         grid)
  in
  List.map2
    (fun (mbps, rtt_ms, buffer_bdp) (summary : Runs.summary) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let model_bps = (Ccmodel.Two_flow.solve params).bbr_bandwidth_bps in
      let ware_bps =
        Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
          ~duration:(Common.duration ctx.mode)
      in
      {
        mbps;
        rtt_ms;
        buffer_bdp;
        actual_bps = summary.per_flow_other_bps;
        model_bps;
        ware_bps;
      })
    grid summaries

let run ctx : Common.table =
  let points = points ctx in
  let errors =
    List.filter_map
      (fun p ->
        if p.buffer_bdp >= 2.0 then
          Some
            (Sim_engine.Stats.relative_error ~predicted:p.model_bps
               ~actual:p.actual_bps)
        else None)
      points
  in
  {
    Common.id = "fig03";
    title = "2-flow model validation (CUBIC vs BBR)";
    header =
      [ "link(Mbps)"; "rtt(ms)"; "buffer(BDP)"; "actual_bbr"; "our_model";
        "ware" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.mbps;
            Common.cell p.rtt_ms;
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.actual_bps);
            Common.cell (Common.mbps p.model_bps);
            Common.cell (Common.mbps p.ware_bps);
          ])
        points;
    notes =
      [
        Printf.sprintf
          "mean |model-sim|/sim over buffers >= 2 BDP: %.1f%% (paper: <5%% \
           on their testbed; shape agreement is the reproduction target)"
          (100.0 *. Common.mean errors);
      ];
  }
