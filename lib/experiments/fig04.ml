(** Figure 4(a,b): multi-flow model validation. 5v5 and 10v10 on a 100 Mbps
    link at 40 ms, buffers 1-30 BDP; the measured per-flow BBR throughput
    should fall inside the model's [sync, desync] predicted region. *)

let mbps = 100.0
let rtt_ms = 40.0

type point = {
  n_each : int;
  buffer_bdp : float;
  actual_bbr_bps : float;
  sync_bound_bps : float;
  desync_bound_bps : float;
  ware_bps : float;
}

let points (ctx : Common.ctx) =
  let grid =
    List.concat_map
      (fun n_each ->
        List.map
          (fun buffer_bdp -> (n_each, buffer_bdp))
          (Common.buffer_grid ctx.mode ~max:30.0))
      [ 5; 10 ]
  in
  let summaries =
    Runs.mix_many ctx
      (List.map
         (fun (n_each, buffer_bdp) ->
           Runs.spec ~mbps ~rtt_ms ~buffer_bdp ~n_cubic:n_each ~other:"bbr"
             ~n_other:n_each ())
         grid)
  in
  List.map2
    (fun (n_each, buffer_bdp) (summary : Runs.summary) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let interval =
        Ccmodel.Multi_flow.per_flow_bbr_interval params ~n_cubic:n_each
          ~n_bbr:n_each
      in
      let ware_bps =
        Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:n_each
          ~duration:(Common.duration ctx.mode)
        /. float_of_int n_each
      in
      {
        n_each;
        buffer_bdp;
        actual_bbr_bps = summary.per_flow_other_bps;
        sync_bound_bps = interval.lower_bbr_per_flow_bps;
        desync_bound_bps = interval.upper_bbr_per_flow_bps;
        ware_bps;
      })
    grid summaries

let in_region ?(slack = 0.15) p =
  let lo = Float.min p.sync_bound_bps p.desync_bound_bps in
  let hi = Float.max p.sync_bound_bps p.desync_bound_bps in
  p.actual_bbr_bps >= lo *. (1.0 -. slack)
  && p.actual_bbr_bps <= hi *. (1.0 +. slack)

let run ctx : Common.table =
  let points = points ctx in
  let inside = List.length (List.filter (fun p -> in_region p) points) in
  {
    Common.id = "fig04";
    title = "Multi-flow validation: per-flow BBR throughput vs predicted region";
    header =
      [ "flows"; "buffer(BDP)"; "actual_bbr"; "synch_bound"; "desynch_bound";
        "ware" ];
    rows =
      List.map
        (fun p ->
          [
            Printf.sprintf "%dv%d" p.n_each p.n_each;
            Common.cell p.buffer_bdp;
            Common.cell (Common.mbps p.actual_bbr_bps);
            Common.cell (Common.mbps p.sync_bound_bps);
            Common.cell (Common.mbps p.desync_bound_bps);
            Common.cell (Common.mbps p.ware_bps);
          ])
        points;
    notes =
      [
        Printf.sprintf
          "%d/%d points inside the predicted region (15%% slack); paper \
           reports measured values hugging the de-synch bound"
          inside (List.length points);
      ];
  }
