module E = Tcpflow.Experiment

type summary = {
  per_flow_cubic_bps : float;
  per_flow_other_bps : float;
  aggregate_other_bps : float;
  queuing_delay : float;
  utilization : float;
}

let config ?duration ?warmup ?(aqm = E.Tail_drop) ~mode ~mbps ~rtt_ms
    ~buffer_bdp ~flows ~seed () =
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  E.config ~aqm
    ~warmup:(Option.value warmup ~default:(Common.warmup mode))
    ~seed ~rate_bps
    ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
    ~duration:(Option.value duration ~default:(Common.duration mode))
    flows

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Run one config with a trace hub feeding a JSONL file and a metrics
   rollup, both named by the config digest. Each file is written wholly
   inside the worker domain that simulates its config, and the writers are
   byte-deterministic, so the trace directory's contents do not depend on
   [jobs] or scheduling. *)
let run_traced ~dir (key, config) =
  let hub = Sim_engine.Trace.create () in
  let metrics =
    Sim_engine.Trace.Metrics.create ~rate_bps:(config.E.rate_bps :> float) ()
  in
  Sim_engine.Trace.subscribe hub (Sim_engine.Trace.Metrics.observe metrics);
  let oc = open_out (Filename.concat dir (key ^ ".jsonl")) in
  Sim_engine.Trace.subscribe hub (Sim_engine.Trace.jsonl_sink oc);
  let result =
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        E.run ~trace:hub config)
  in
  let mc = open_out (Filename.concat dir (key ^ ".metrics")) in
  output_string mc
    (Sim_engine.Trace.Metrics.summary_line
       (Sim_engine.Trace.Metrics.summary metrics));
  output_char mc '\n';
  close_out mc;
  result

(* The central choke point every simulation in the experiment suite goes
   through: consult the cache, farm the misses out to the ctx's worker
   pool, persist what was computed, and return results in config order.
   Tracing bypasses the cache — a cache hit skips the simulation and would
   produce no trace — but still dedupes repeated configs, so one file pair
   per distinct digest. *)
let eval (ctx : Common.ctx) configs =
  match ctx.trace_dir with
  | Some dir ->
    mkdir_p dir;
    let keyed = List.map (fun c -> (E.digest c, c)) configs in
    let seen = Hashtbl.create 16 in
    let distinct =
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        keyed
    in
    let computed =
      Sim_engine.Exec.map_list ~jobs:ctx.jobs (run_traced ~dir) distinct
    in
    let results : (string, E.result) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun (key, _) result -> Hashtbl.replace results key result)
      distinct computed;
    List.map (fun (key, _) -> Hashtbl.find results key) keyed
  | None -> (
    match ctx.cache_dir with
    | None -> Sim_engine.Exec.map_list ~jobs:ctx.jobs (fun c -> E.run c) configs
    | Some dir ->
    let cache = Sim_engine.Exec.Cache.create dir in
    let keyed = List.map (fun c -> (E.digest c, c)) configs in
    let known : (string, E.result) Hashtbl.t = Hashtbl.create 16 in
    let pending = Hashtbl.create 16 in
    let to_run =
      (* One lookup (and at most one run) per distinct config, even when a
         batch repeats a grid point. *)
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem known key || Hashtbl.mem pending key then false
          else
            match Sim_engine.Exec.Cache.find cache ~key with
            | Some (result : E.result) ->
              Hashtbl.add known key result;
              false
            | None ->
              Hashtbl.add pending key ();
              true)
        keyed
    in
    let computed =
      Sim_engine.Exec.map_list ~jobs:ctx.jobs (fun (_, c) -> E.run c) to_run
    in
    List.iter2
      (fun (key, _) result ->
        Sim_engine.Exec.Cache.store cache ~key result;
        Hashtbl.replace known key result)
      to_run computed;
    List.map (fun (key, _) -> Hashtbl.find known key) keyed)

(* Batched dispatch of backend specs: group by shape (flow count ×
   horizon — specs a backend's SoA stepper advances over the same step
   grid), cut each group into [ctx.batch]-sized chunks, and evaluate
   chunks across the worker pool through {!Sim_backend.run_batch}. The
   shard unit is the chunk, so parallelism composes with batching.

   Grouping and chunking are a pure scheduling choice: [run_batch] is
   byte-identical to sequential evaluation per spec, so outcomes do not
   depend on [ctx.batch], [ctx.jobs], or which specs share a chunk.
   Groups keep first-appearance order and chunks preserve input order
   within a group, so chunk composition itself is deterministic too. *)
let dispatch_specs (ctx : Common.ctx) backend (specs : Sim_backend.spec array)
    =
  let n = Array.length specs in
  let shape_order = ref [] in
  let groups : (int * float, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i (s : Sim_backend.spec) ->
      let shape =
        ( List.length s.flows,
          Sim_engine.Units.Raw.to_float s.duration )
      in
      match Hashtbl.find_opt groups shape with
      | Some members -> members := i :: !members
      | None ->
        Hashtbl.add groups shape (ref [ i ]);
        shape_order := shape :: !shape_order)
    specs;
  let chunk_size = max 1 ctx.batch in
  let rec chunks = function
    | [] -> []
    | idxs ->
      let rec take k = function
        | rest when k = 0 -> ([], rest)
        | [] -> ([], [])
        | i :: rest ->
          let taken, dropped = take (k - 1) rest in
          (i :: taken, dropped)
      in
      let c, rest = take chunk_size idxs in
      c :: chunks rest
  in
  let work =
    List.concat_map
      (fun shape -> chunks (List.rev !(Hashtbl.find groups shape)))
      (List.rev !shape_order)
  in
  let computed =
    Sim_engine.Exec.map_list ~jobs:ctx.jobs
      (fun idxs ->
        Sim_backend.run_batch_exn backend
          (Array.of_list (List.map (fun i -> specs.(i)) idxs)))
      work
  in
  let results = Array.make n None in
  List.iter2
    (fun idxs outcomes ->
      List.iteri (fun k i -> results.(i) <- Some outcomes.(k)) idxs)
    work computed;
  Array.map
    (function Some o -> o | None -> assert false (* every index chunked *))
    results

(* [eval]'s cache discipline for the backend-neutral API: one lookup and
   at most one run per distinct (backend, spec) digest, misses grouped by
   shape and dispatched through the backend's batched entry point over
   the ctx's worker pool. Analytic backends have no event stream, so
   [trace_dir] does not apply here. *)
let run_specs (ctx : Common.ctx) backend specs =
  match ctx.cache_dir with
  | None ->
    Array.to_list (dispatch_specs ctx backend (Array.of_list specs))
  | Some dir ->
    let cache = Sim_engine.Exec.Cache.create dir in
    let keyed = List.map (fun s -> (Sim_backend.digest backend s, s)) specs in
    let known : (string, Sim_backend.outcome) Hashtbl.t = Hashtbl.create 16 in
    let pending = Hashtbl.create 16 in
    let to_run =
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem known key || Hashtbl.mem pending key then false
          else
            match Sim_engine.Exec.Cache.find cache ~key with
            | Some (outcome : Sim_backend.outcome) ->
              Hashtbl.add known key outcome;
              false
            | None ->
              Hashtbl.add pending key ();
              true)
        keyed
    in
    let computed =
      dispatch_specs ctx backend (Array.of_list (List.map snd to_run))
    in
    List.iteri
      (fun i (key, _) ->
        let outcome = computed.(i) in
        Sim_engine.Exec.Cache.store cache ~key outcome;
        Hashtbl.replace known key outcome)
      to_run;
    List.map (fun (key, _) -> Hashtbl.find known key) keyed

(* A capped memo: outcomes keyed by digest, stamped with a logical access
   tick. When full, the least-recently-used entry is evicted (an O(cap)
   scan — vanishingly cheap next to the simulation run an insertion just
   paid for) and counted via {!Sim_engine.Exec.note_memo_eviction}.
   Eviction order is deterministic: ticks are unique, so the minimum is
   unambiguous; and since a re-run of an evicted digest reproduces the
   same outcome, results never depend on the cap at all. *)
type memo = {
  table : (string, Sim_backend.outcome * int ref) Hashtbl.t;
  cap : int;
  tick : int ref;
}

let memo ?(cap = 4096) () : memo =
  if cap < 1 then invalid_arg "Runs.memo: cap must be >= 1";
  { table = Hashtbl.create 64; cap; tick = ref 0 }

let memo_find memo key =
  match Hashtbl.find_opt memo.table key with
  | None -> None
  | Some (outcome, stamp) ->
    incr memo.tick;
    stamp := !(memo.tick);
    Some outcome

let memo_add memo key outcome =
  if Hashtbl.length memo.table >= memo.cap then begin
    let victim = ref None in
    (* Stamps are unique (one monotonic tick per touch), so the min-stamp
       victim is order-independent. *)
    Hashtbl.iter (* simlint: allow R1 *)
      (fun k (_, stamp) ->
        match !victim with
        | Some (_, best) when best <= !stamp -> ()
        | _ -> victim := Some (k, !stamp))
      memo.table;
    match !victim with
    | Some (k, _) ->
      Hashtbl.remove memo.table k;
      Sim_engine.Exec.note_memo_eviction ()
    | None -> ()
  end;
  incr memo.tick;
  Hashtbl.replace memo.table key (outcome, ref !(memo.tick))

(* An in-memory layer over [run_specs] for adaptive drivers (the evolve
   loop) that revisit the same profile across generations: one digest
   lookup per spec, one run per distinct miss, order preserved. The memo
   only ever sees find/replace, so no hash-order dependence can leak into
   results. *)
let run_specs_memo ~memo (ctx : Common.ctx) backend specs =
  let keyed = List.map (fun s -> (Sim_backend.digest backend s, s)) specs in
  let found = Hashtbl.create 16 in
  let pending = Hashtbl.create 16 in
  let to_run =
    List.filter
      (fun (key, _) ->
        if Hashtbl.mem found key || Hashtbl.mem pending key then false
        else
          match memo_find memo key with
          | Some outcome ->
            Hashtbl.add found key outcome;
            false
          | None ->
            Hashtbl.add pending key ();
            true)
      keyed
  in
  let computed = run_specs ctx backend (List.map snd to_run) in
  List.iter2
    (fun (key, _) outcome ->
      memo_add memo key outcome;
      Hashtbl.replace found key outcome)
    to_run computed;
  List.map (fun (key, _) -> Hashtbl.find found key) keyed

type mix_spec = {
  spec_duration : Sim_engine.Units.seconds option;
  spec_warmup : Sim_engine.Units.seconds option;
  spec_aqm : E.aqm;
  spec_mbps : float;
  spec_rtt_ms : float;
  spec_buffer_bdp : float;
  spec_n_cubic : int;
  spec_other : string;
  spec_n_other : int;
  spec_base_seed : int;
}

let spec ?duration ?warmup ?(aqm = E.Tail_drop) ?(base_seed = 1) ~mbps ~rtt_ms
    ~buffer_bdp ~n_cubic ~other ~n_other () =
  if n_cubic + n_other = 0 then invalid_arg "Runs.spec: no flows";
  {
    spec_duration = duration;
    spec_warmup = warmup;
    spec_aqm = aqm;
    spec_mbps = mbps;
    spec_rtt_ms = rtt_ms;
    spec_buffer_bdp = buffer_bdp;
    spec_n_cubic = n_cubic;
    spec_other = other;
    spec_n_other = n_other;
    spec_base_seed = base_seed;
  }

(* One config per trial seed: mode's trial count, seeds spaced so distinct
   trials never collide across base seeds in practice. *)
let plan ~mode s =
  let rtt = Sim_engine.Units.ms s.spec_rtt_ms in
  let flows =
    List.init s.spec_n_cubic (fun _ -> E.flow_config ~base_rtt:rtt "cubic")
    @ List.init s.spec_n_other (fun _ ->
          E.flow_config ~base_rtt:rtt s.spec_other)
  in
  List.init (Common.trials mode) (fun trial ->
      config ?duration:s.spec_duration ?warmup:s.spec_warmup ~aqm:s.spec_aqm
        ~mode ~mbps:s.spec_mbps ~rtt_ms:s.spec_rtt_ms
        ~buffer_bdp:s.spec_buffer_bdp ~flows
        ~seed:(s.spec_base_seed + (1000 * trial))
        ())

let summarize s results =
  let avg f = Common.mean (List.map f results) in
  {
    per_flow_cubic_bps =
      (if s.spec_n_cubic = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r "cubic"));
    per_flow_other_bps =
      (if s.spec_n_other = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r s.spec_other));
    aggregate_other_bps =
      avg (fun r -> E.aggregate_throughput_of_cca r s.spec_other);
    queuing_delay = avg (fun r -> r.E.queuing_delay);
    utilization = avg (fun r -> r.E.utilization);
  }

let mix_many (ctx : Common.ctx) specs =
  let plans = List.map (plan ~mode:ctx.mode) specs in
  let results = eval ctx (List.concat plans) in
  (* Hand each spec back its own slice, in order. *)
  let remaining = ref results in
  List.map2
    (fun s configs ->
      let rec take n xs =
        if n = 0 then ([], xs)
        else
          match xs with
          | [] -> invalid_arg "Runs.mix_many: result underflow"
          | x :: rest ->
            let taken, dropped = take (n - 1) rest in
            (x :: taken, dropped)
      in
      let mine, rest = take (List.length configs) !remaining in
      remaining := rest;
      summarize s mine)
    specs plans

let mix ?duration ?warmup ?aqm ~ctx ~mbps ~rtt_ms ~buffer_bdp ~n_cubic ~other
    ~n_other ?(base_seed = 1) () =
  match
    mix_many ctx
      [
        spec ?duration ?warmup ?aqm ~base_seed ~mbps ~rtt_ms ~buffer_bdp
          ~n_cubic ~other ~n_other ();
      ]
  with
  | [ summary ] -> summary
  | _ -> assert false
