module E = Tcpflow.Experiment

type summary = {
  per_flow_cubic_bps : float;
  per_flow_other_bps : float;
  aggregate_other_bps : float;
  queuing_delay : float;
  utilization : float;
}

let config ?duration ?warmup ?(aqm = E.Tail_drop) ~mode ~mbps ~rtt_ms
    ~buffer_bdp ~flows ~seed () =
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  E.config ~aqm
    ~warmup:(Option.value warmup ~default:(Common.warmup mode))
    ~seed ~rate_bps
    ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
    ~duration:(Option.value duration ~default:(Common.duration mode))
    flows

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Run one config with a trace hub feeding a JSONL file and a metrics
   rollup, both named by the config digest. Each file is written wholly
   inside the worker domain that simulates its config, and the writers are
   byte-deterministic, so the trace directory's contents do not depend on
   [jobs] or scheduling. *)
let run_traced ~dir (key, config) =
  let hub = Sim_engine.Trace.create () in
  let metrics =
    Sim_engine.Trace.Metrics.create ~rate_bps:(config.E.rate_bps :> float) ()
  in
  Sim_engine.Trace.subscribe hub (Sim_engine.Trace.Metrics.observe metrics);
  let oc = open_out (Filename.concat dir (key ^ ".jsonl")) in
  Sim_engine.Trace.subscribe hub (Sim_engine.Trace.jsonl_sink oc);
  let result =
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        E.run ~trace:hub config)
  in
  let mc = open_out (Filename.concat dir (key ^ ".metrics")) in
  output_string mc
    (Sim_engine.Trace.Metrics.summary_line
       (Sim_engine.Trace.Metrics.summary metrics));
  output_char mc '\n';
  close_out mc;
  result

(* The central choke point every simulation in the experiment suite goes
   through: consult the cache, farm the misses out to the ctx's worker
   pool, persist what was computed, and return results in config order.
   Tracing bypasses the cache — a cache hit skips the simulation and would
   produce no trace — but still dedupes repeated configs, so one file pair
   per distinct digest. *)
let eval (ctx : Common.ctx) configs =
  match ctx.trace_dir with
  | Some dir ->
    mkdir_p dir;
    let keyed = List.map (fun c -> (E.digest c, c)) configs in
    let seen = Hashtbl.create 16 in
    let distinct =
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        keyed
    in
    let computed =
      Sim_engine.Exec.map_list ~jobs:ctx.jobs (run_traced ~dir) distinct
    in
    let results : (string, E.result) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun (key, _) result -> Hashtbl.replace results key result)
      distinct computed;
    List.map (fun (key, _) -> Hashtbl.find results key) keyed
  | None -> (
    match ctx.cache_dir with
    | None -> Sim_engine.Exec.map_list ~jobs:ctx.jobs (fun c -> E.run c) configs
    | Some dir ->
    let cache = Sim_engine.Exec.Cache.create dir in
    let keyed = List.map (fun c -> (E.digest c, c)) configs in
    let known : (string, E.result) Hashtbl.t = Hashtbl.create 16 in
    let pending = Hashtbl.create 16 in
    let to_run =
      (* One lookup (and at most one run) per distinct config, even when a
         batch repeats a grid point. *)
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem known key || Hashtbl.mem pending key then false
          else
            match Sim_engine.Exec.Cache.find cache ~key with
            | Some (result : E.result) ->
              Hashtbl.add known key result;
              false
            | None ->
              Hashtbl.add pending key ();
              true)
        keyed
    in
    let computed =
      Sim_engine.Exec.map_list ~jobs:ctx.jobs (fun (_, c) -> E.run c) to_run
    in
    List.iter2
      (fun (key, _) result ->
        Sim_engine.Exec.Cache.store cache ~key result;
        Hashtbl.replace known key result)
      to_run computed;
    List.map (fun (key, _) -> Hashtbl.find known key) keyed)

(* [eval]'s cache discipline for the backend-neutral API: one lookup and
   at most one run per distinct (backend, spec) digest, misses fanned out
   over the ctx's worker pool. Analytic backends have no event stream, so
   [trace_dir] does not apply here. *)
let run_specs (ctx : Common.ctx) backend specs =
  let run_one s = Sim_backend.run_exn backend s in
  match ctx.cache_dir with
  | None -> Sim_engine.Exec.map_list ~jobs:ctx.jobs run_one specs
  | Some dir ->
    let cache = Sim_engine.Exec.Cache.create dir in
    let keyed = List.map (fun s -> (Sim_backend.digest backend s, s)) specs in
    let known : (string, Sim_backend.outcome) Hashtbl.t = Hashtbl.create 16 in
    let pending = Hashtbl.create 16 in
    let to_run =
      List.filter
        (fun (key, _) ->
          if Hashtbl.mem known key || Hashtbl.mem pending key then false
          else
            match Sim_engine.Exec.Cache.find cache ~key with
            | Some (outcome : Sim_backend.outcome) ->
              Hashtbl.add known key outcome;
              false
            | None ->
              Hashtbl.add pending key ();
              true)
        keyed
    in
    let computed =
      Sim_engine.Exec.map_list ~jobs:ctx.jobs (fun (_, s) -> run_one s) to_run
    in
    List.iter2
      (fun (key, _) outcome ->
        Sim_engine.Exec.Cache.store cache ~key outcome;
        Hashtbl.replace known key outcome)
      to_run computed;
    List.map (fun (key, _) -> Hashtbl.find known key) keyed

type memo = (string, Sim_backend.outcome) Hashtbl.t

let memo () : memo = Hashtbl.create 64

(* An in-memory layer over [run_specs] for adaptive drivers (the evolve
   loop) that revisit the same profile across generations: one digest
   lookup per spec, one run per distinct miss, order preserved. The memo
   only ever sees find/replace, so no hash-order dependence can leak into
   results. *)
let run_specs_memo ~memo (ctx : Common.ctx) backend specs =
  let keyed = List.map (fun s -> (Sim_backend.digest backend s, s)) specs in
  let pending = Hashtbl.create 16 in
  let to_run =
    List.filter
      (fun (key, _) ->
        if Hashtbl.mem memo key || Hashtbl.mem pending key then false
        else begin
          Hashtbl.add pending key ();
          true
        end)
      keyed
  in
  let computed = run_specs ctx backend (List.map snd to_run) in
  List.iter2
    (fun (key, _) outcome -> Hashtbl.replace memo key outcome)
    to_run computed;
  List.map (fun (key, _) -> Hashtbl.find memo key) keyed

type mix_spec = {
  spec_duration : Sim_engine.Units.seconds option;
  spec_warmup : Sim_engine.Units.seconds option;
  spec_aqm : E.aqm;
  spec_mbps : float;
  spec_rtt_ms : float;
  spec_buffer_bdp : float;
  spec_n_cubic : int;
  spec_other : string;
  spec_n_other : int;
  spec_base_seed : int;
}

let spec ?duration ?warmup ?(aqm = E.Tail_drop) ?(base_seed = 1) ~mbps ~rtt_ms
    ~buffer_bdp ~n_cubic ~other ~n_other () =
  if n_cubic + n_other = 0 then invalid_arg "Runs.spec: no flows";
  {
    spec_duration = duration;
    spec_warmup = warmup;
    spec_aqm = aqm;
    spec_mbps = mbps;
    spec_rtt_ms = rtt_ms;
    spec_buffer_bdp = buffer_bdp;
    spec_n_cubic = n_cubic;
    spec_other = other;
    spec_n_other = n_other;
    spec_base_seed = base_seed;
  }

(* One config per trial seed: mode's trial count, seeds spaced so distinct
   trials never collide across base seeds in practice. *)
let plan ~mode s =
  let rtt = Sim_engine.Units.ms s.spec_rtt_ms in
  let flows =
    List.init s.spec_n_cubic (fun _ -> E.flow_config ~base_rtt:rtt "cubic")
    @ List.init s.spec_n_other (fun _ ->
          E.flow_config ~base_rtt:rtt s.spec_other)
  in
  List.init (Common.trials mode) (fun trial ->
      config ?duration:s.spec_duration ?warmup:s.spec_warmup ~aqm:s.spec_aqm
        ~mode ~mbps:s.spec_mbps ~rtt_ms:s.spec_rtt_ms
        ~buffer_bdp:s.spec_buffer_bdp ~flows
        ~seed:(s.spec_base_seed + (1000 * trial))
        ())

let summarize s results =
  let avg f = Common.mean (List.map f results) in
  {
    per_flow_cubic_bps =
      (if s.spec_n_cubic = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r "cubic"));
    per_flow_other_bps =
      (if s.spec_n_other = 0 then nan
       else avg (fun r -> E.mean_throughput_of_cca r s.spec_other));
    aggregate_other_bps =
      avg (fun r -> E.aggregate_throughput_of_cca r s.spec_other);
    queuing_delay = avg (fun r -> r.E.queuing_delay);
    utilization = avg (fun r -> r.E.utilization);
  }

let mix_many (ctx : Common.ctx) specs =
  let plans = List.map (plan ~mode:ctx.mode) specs in
  let results = eval ctx (List.concat plans) in
  (* Hand each spec back its own slice, in order. *)
  let remaining = ref results in
  List.map2
    (fun s configs ->
      let rec take n xs =
        if n = 0 then ([], xs)
        else
          match xs with
          | [] -> invalid_arg "Runs.mix_many: result underflow"
          | x :: rest ->
            let taken, dropped = take (n - 1) rest in
            (x :: taken, dropped)
      in
      let mine, rest = take (List.length configs) !remaining in
      remaining := rest;
      summarize s mine)
    specs plans

let mix ?duration ?warmup ?aqm ~ctx ~mbps ~rtt_ms ~buffer_bdp ~n_cubic ~other
    ~n_other ?(base_seed = 1) () =
  match
    mix_many ctx
      [
        spec ?duration ?warmup ?aqm ~base_seed ~mbps ~rtt_ms ~buffer_bdp
          ~n_cubic ~other ~n_other ();
      ]
  with
  | [ summary ] -> summary
  | _ -> assert false
