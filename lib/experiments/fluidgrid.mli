(** The fluid-vs-ODE differential grid as a catalog entry ([fluidgrid]):
    runs every calibrated cross-validation cell on both analytic backends
    through {!Runs.run_specs} and tabulates per-kind mean shares side by
    side with their worst absolute deviation. Deterministic — quick mode is
    golden-CSV gated. See EXPERIMENTS.md, "Reproducing the differential
    grid". *)

val run : Common.ctx -> Common.table
