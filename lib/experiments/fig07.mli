(** Figure 7: per-flow throughput of CUBIC vs {{!val:run} each modern CCA}
    (BBR, BBRv2, Copa, Vivace) across mixes, in shallow buffers. *)

val run : Common.ctx -> Common.table
(** Drive the experiment and render its result table. *)
