type entry = {
  id : string;
  summary : string;
  run : Common.ctx -> Common.table;
}

let all =
  [
    { id = "table1"; summary = "Model notation glossary"; run = Table1.run };
    {
      id = "fig01";
      summary = "Ware et al. vs actual BBR share (1v1, 50 Mbps)";
      run = Fig01.run;
    };
    {
      id = "fig03";
      summary = "2-flow model validation over 4 link/RTT settings";
      run = Fig03.run;
    };
    {
      id = "fig04";
      summary = "Multi-flow validation (5v5, 10v10)";
      run = Fig04.run;
    };
    {
      id = "fig05";
      summary = "Diminishing returns as BBR's flow share grows";
      run = Fig05.run;
    };
    {
      id = "fig06";
      summary = "NE geometry from the model (schematic realized)";
      run = Fig06.run;
    };
    {
      id = "fig07";
      summary = "BBR/BBRv2/Copa/Vivace vs CUBIC bandwidth shares";
      run = Fig07.run;
    };
    {
      id = "fig08";
      summary = "Throughput and queuing delay vs CCA distribution";
      run = Fig08.run;
    };
    {
      id = "fig09";
      summary = "Predicted vs observed NE, 50 flows, 6 settings";
      run = Fig09.run;
    };
    {
      id = "fig10";
      summary = "NE with heterogeneous RTTs (30 flows)";
      run = Fig10.run;
    };
    {
      id = "fig11";
      summary = "NE between CUBIC and BBRv2 (50 flows)";
      run = Fig11.run;
    };
    {
      id = "fig12";
      summary = "Ultra-deep buffers: model validity limit";
      run = Fig12.run;
    };
    {
      id = "evolve";
      summary = "Population-scale CCA adoption dynamics";
      run = Adoption.run;
    };
    {
      id = "fluidgrid";
      summary = "Fluid vs ODE analytic-backend differential grid";
      run = Fluidgrid.run;
    };
    {
      id = "workload";
      summary = "Long flows under open-loop web-object churn (FCTs)";
      run = Workload_exp.run;
    };
    {
      id = "ext-red";
      summary = "Extension: CUBIC vs BBR under a RED AQM";
      run = Ext_red.run;
    };
    {
      id = "ext-utility";
      summary = "Extension: NE under throughput-minus-delay utilities";
      run = Ext_utility.run;
    };
    {
      id = "ext-short";
      summary = "Extension: short-flow cross traffic vs the model";
      run = Ext_short_flows.run;
    };
    {
      id = "ext-internals";
      summary = "Extension: model's internal quantities vs measured";
      run = Ext_internals.run;
    };
    {
      id = "ext-2flow";
      summary = "Extension: the 2-flow CUBIC/BBR game (APNet'21)";
      run = Ext_two_flow_game.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
