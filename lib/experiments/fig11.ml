(** Figure 11(a,b): Nash Equilibria between CUBIC and BBRv2 at 50 and
    100 Mbps, RTT in {20,40,80} ms. Reuses fig09's machinery with the
    ["bbr2"] CCA; the model's Nash region for BBR(v1) is shown alongside,
    since the paper observes BBRv2's NE have at least as many CUBIC flows
    for the same buffer. *)

type point = {
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;
  n : int;
  region_sync : float;
  region_desync : float;
  observed_bbr2 : int list;  (** # CUBIC at the observed BBRv2 NE(s). *)
}

let buffers mode =
  match mode with
  | Common.Quick -> [ 2.0; 10.0; 30.0 ]
  | Common.Full -> [ 1.0; 2.0; 5.0; 10.0; 18.0; 30.0; 50.0 ]

let settings mode =
  match mode with
  | Common.Quick -> [ (50.0, 40.0); (100.0, 20.0); (100.0, 80.0) ]
  | Common.Full ->
    [ (50.0, 20.0); (50.0, 40.0); (50.0, 80.0);
      (100.0, 20.0); (100.0, 40.0); (100.0, 80.0) ]

(* Same coarse-grained parallelism as fig09: the NE search per grid point
   is adaptive, so one worker per grid point. *)
let points (ctx : Common.ctx) =
  let n = Fig09.flows_of_mode ctx.mode in
  let grid =
    List.concat_map
      (fun (mbps, rtt_ms) ->
        List.map (fun buffer_bdp -> (mbps, rtt_ms, buffer_bdp)) (buffers ctx.mode))
      (settings ctx.mode)
  in
  let point_ctx = Common.sequential ctx in
  Sim_engine.Exec.map_list ~jobs:ctx.jobs
    (fun (mbps, rtt_ms, buffer_bdp) ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let region = Ccmodel.Ne.nash_region params ~n in
      let observed =
        List.map
          (fun k -> n - k)
          (Fig09.observed_ne ~ctx:point_ctx ~mbps ~rtt_ms ~buffer_bdp
             ~other:"bbr2" ~n)
      in
      {
        mbps;
        rtt_ms;
        buffer_bdp;
        n;
        region_sync = region.cubic_at_ne_sync;
        region_desync = region.cubic_at_ne_desync;
        observed_bbr2 = observed;
      })
    grid

let run (ctx : Common.ctx) : Common.table =
  let points = points ctx in
  let n = Fig09.flows_of_mode ctx.mode in
  (* The paper's comparison: BBRv2's NE should not have fewer CUBIC flows
     than the BBR region's lower bound. *)
  let at_least_as_cubic =
    List.filter
      (fun p ->
        List.exists
          (fun k ->
            float_of_int k
            >= Float.min p.region_sync p.region_desync
               -. (0.15 *. float_of_int p.n))
          p.observed_bbr2)
      points
  in
  {
    Common.id = "fig11";
    title = Printf.sprintf "NE between CUBIC and BBRv2 (%d flows)" n;
    header =
      [ "link(Mbps)"; "rtt(ms)"; "buffer(BDP)"; "bbr_region_synch";
        "bbr_region_desynch"; "bbr2_observed(#cubic)" ];
    rows =
      List.map
        (fun p ->
          [
            Common.cell p.mbps;
            Common.cell p.rtt_ms;
            Common.cell p.buffer_bdp;
            Common.cell p.region_sync;
            Common.cell p.region_desync;
            Fig09.string_of_observed p.observed_bbr2;
          ])
        points;
    notes =
      [
        Printf.sprintf
          "points whose BBRv2 NE has at least as many CUBIC flows as the \
           BBR region's lower bound (-15%% n): %d/%d (paper: BBRv2 is less \
           aggressive, so its NE favour CUBIC)"
          (List.length at_least_as_cubic)
          (List.length points);
      ];
  }
