(** Table 1: the model's notation glossary. *)

let run (_ctx : Common.ctx) : Common.table =
  {
    Common.id = "table1";
    title = "Model notation (paper Table 1)";
    header = [ "Symbol"; "Meaning" ];
    rows =
      List.map
        (fun { Ccmodel.Notation.symbol; meaning } -> [ symbol; meaning ])
        Ccmodel.Notation.table;
    notes = [];
  }
