(** The workload-layer experiment: two long flows (1 CUBIC vs 1 BBR) under
    an open-loop population of web-object-sized short flows at offered
    loads from 0 to 80% of capacity.

    Unlike [Ext_short_flows] (which drives a bespoke simulation and exists
    to validate the model's no-churn caveat), this experiment exercises the
    first-class workload path — [Tcpflow.Experiment.config] with a
    [workload] field, [Tcpflow.Churn] slot reuse, FCT completion records —
    and reports the flow-completion-time distribution the datacenter
    literature reports: FCT percentiles, size-binned mean slowdown, and the
    long-flow split under churn. Runs go through {!Runs.eval}, so results
    are cached and byte-identical across [--jobs]. *)

module E = Tcpflow.Experiment
module Units = Sim_engine.Units

let mbps = 50.0
let rtt = Units.ms 40.0
let sizes = Workload.Dist.web_objects
let seed = 7

let loads mode =
  match mode with
  | Common.Quick -> [ 0.0; 0.2; 0.5; 0.8 ]
  | Common.Full -> [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]

let buffers = [ 3.0; 10.0 ]

let config ~mode ~load ~buffer_bdp =
  let rate_bps = Units.mbps mbps in
  let workload =
    if load <= 0.0 then None
    else
      Some
        {
          E.wl_arrival =
            Workload.Arrival.poisson_of_load ~load
              ~rate_bps:(rate_bps :> float)
              ~mean_size_bytes:(Workload.Dist.mean_bytes sizes);
          wl_sizes = sizes;
          wl_cca = "cubic";
          wl_rtt = rtt;
        }
  in
  E.config ~seed ~warmup:(Common.warmup mode) ?workload ~rate_bps
    ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
    ~duration:(Common.duration mode)
    [ E.flow_config "cubic"; E.flow_config "bbr" ]

type point = {
  buffer_bdp : float;
  load : float;
  long_cubic_bps : float;
  long_bbr_bps : float;
  arrived : int;
  completed : int;
  fct_p : (float * float) list;  (** (percentile, seconds) *)
  slowdown_bins : float array;  (** per {!Ccmodel.Fairness.default_size_bounds} *)
  utilization : float;
}

let point_of_result ~buffer_bdp ~load (r : E.result) =
  let fcts = List.map (fun c -> c.E.cp_fct) r.completions in
  let ideal size_bytes =
    Ccmodel.Fairness.ideal_fct ~rtt_s:(rtt :> float)
      ~rate_bps:(Units.mbps mbps :> float)
      ~size_bytes
  in
  {
    buffer_bdp;
    load;
    long_cubic_bps = E.mean_throughput_of_cca r "cubic";
    long_bbr_bps = E.mean_throughput_of_cca r "bbr";
    arrived = r.workload_arrived;
    completed = r.workload_completed;
    fct_p = Ccmodel.Fairness.fct_percentiles fcts;
    slowdown_bins =
      Ccmodel.Fairness.binned_mean_slowdown ~ideal
        (List.map (fun c -> (c.E.cp_size, c.E.cp_fct)) r.completions);
    utilization = r.utilization;
  }

let points (ctx : Common.ctx) =
  let grid =
    List.concat_map
      (fun buffer_bdp ->
        List.map (fun load -> (buffer_bdp, load)) (loads ctx.mode))
      buffers
  in
  let results =
    Runs.eval ctx
      (List.map
         (fun (buffer_bdp, load) -> config ~mode:ctx.mode ~load ~buffer_bdp)
         grid)
  in
  List.map2
    (fun (buffer_bdp, load) r -> point_of_result ~buffer_bdp ~load r)
    grid results

let run ctx : Common.table =
  let points = points ctx in
  {
    Common.id = "workload";
    title = "Long CUBIC vs BBR under open-loop web-object churn (FCTs)";
    header =
      [ "buffer(BDP)"; "load"; "long_cubic"; "long_bbr"; "#arrived"; "#done";
        "p50_fct(s)"; "p95_fct(s)"; "p99_fct(s)"; "sd_small"; "sd_mid";
        "sd_large"; "util" ];
    rows =
      List.map
        (fun p ->
          List.concat
            [
              [
                Common.cell p.buffer_bdp;
                Common.cell p.load;
                Common.cell (Common.mbps p.long_cubic_bps);
                Common.cell (Common.mbps p.long_bbr_bps);
                Common.cell_int p.arrived;
                Common.cell_int p.completed;
              ];
              List.map (fun (_, v) -> Common.cell v) p.fct_p;
              Array.to_list (Array.map Common.cell p.slowdown_bins);
              [ Common.cell p.utilization ];
            ])
        points;
    notes =
      [
        "slowdown = FCT / (RTT + size/rate), mean per size bin (<100 kB, \
         100 kB-1 MB, >=1 MB); short flows run CUBIC and arrive as an \
         open-loop Poisson process over the web-object size mixture";
      ];
  }
