(** The unified simulation-backend API.

    The repo has three ways to answer "what happens when these flows share
    this bottleneck": the packet-level simulator ({!Tcpflow.Experiment}),
    the fluid round/Heun model ({!Fluidsim.Fluid_sim}) and the
    control-theoretic ODE model ({!Fluidsim.Ode_model}). This module fronts
    all three behind one backend-neutral {!spec} so that experiment
    drivers, differential tests, the fuzzer and [repro --backend] select a
    backend by name instead of hard-coding one engine's config type.

    The spec speaks the same vocabulary as {!Tcpflow.Experiment.config}:
    registry CCA names ({!Cca.Registry}), base RTTs, a drop-tail bottleneck
    described by rate and buffer. Backends that model only a subset of
    CCAs reject the others with a typed {!error} rather than a string.

    Each backend exposes a {!S.digest} of a spec that includes a
    backend-version token, so {!Sim_engine.Exec.Cache} entries are keyed by
    backend identity and invalidated when a backend's internals change
    behavior. *)

type flow = { cca : string; rtt : Sim_engine.Units.seconds }

type spec = {
  rate_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow list;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  seed : int;  (** Ignored by the deterministic ODE backend. *)
}

val spec :
  ?warmup:Sim_engine.Units.seconds ->
  ?seed:int ->
  rate_bps:Sim_engine.Units.rate_bps ->
  buffer_bytes:Sim_engine.Units.byte_count ->
  duration:Sim_engine.Units.seconds ->
  flow list ->
  spec
(** Labelled builder. Defaults: no warm-up, seed 1. *)

type outcome = {
  per_flow_bps : float array;  (** Goodput over the window, flow order. *)
  per_flow_cca : string array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
      (** Backend-relative: packet drops, fluid loss rounds, or the
          rounded expected back-off count of the ODE model. *)
  utilization : float;  (** Σ goodput / capacity over the window. *)
}

type error =
  | Unknown_backend of { name : string; known : string list }
  | Unsupported_cca of {
      backend : string;
      cca : string;
      supported : string list;
    }
  | Invalid_spec of string

val pp_error : Format.formatter -> error -> unit

(** Interface every backend implements. *)
module type S = sig
  val name : string

  val supports : string -> bool
  (** Does this backend model the named CCA? *)

  val validate : spec -> (unit, error) result
  (** Cheap static check (CCA support, positive durations) without
      running anything. *)

  val digest : spec -> string
  (** Content address of [run]'s outcome: a hex digest over the full spec
      and a backend-version token. Two equal digests — same backend, same
      spec — denote the same outcome. *)

  val run : spec -> (outcome, error) result

  val run_batch : spec array -> (outcome, error) result array
  (** Evaluate many specs in one call, preserving order: slot [i] holds
      exactly what [run specs.(i)] would return. The analytic backends
      (fluid, ode) dispatch every valid spec through their batched
      struct-of-arrays steppers — amortizing allocation and keeping
      state compact — while invalid specs come back as their [Error]
      without perturbing the rest. The packet backend falls back to
      sequential [run]. Results are byte-identical to sequential
      evaluation regardless of batch composition or order. *)
end

type t = (module S)

val packet : t
(** The packet-level simulator. Supports every {!Cca.Registry} name. *)

val fluid : t
(** {!Fluidsim.Fluid_sim} with the historical {!Fluidsim.Fluid_sim.Rounds}
    stepper, synchronized loss, dt 2 ms. Supports cubic/bbr/bbr2. *)

val ode : t
(** {!Fluidsim.Ode_model} with the adaptive integrator. Deterministic;
    supports cubic/bbr/bbr2. *)

val all : t list
(** [[packet; fluid; ode]]. *)

val names : unit -> string list

val find : string -> (t, error) result

val find_exn : string -> t
(** Raises [Invalid_argument] listing the known backends. *)

val name : t -> string
val supports : t -> string -> bool
val run : t -> spec -> (outcome, error) result
val digest : t -> spec -> string
val validate : t -> spec -> (unit, error) result

val run_batch : t -> spec array -> (outcome, error) result array
(** See {!S.run_batch}. *)

val run_exn : t -> spec -> outcome
(** Raises [Invalid_argument] with the formatted {!error}. *)

val run_batch_exn : t -> spec array -> outcome array
(** Raises [Invalid_argument] on the first [Error] slot. *)

val mean_bps_of_cca : outcome -> string -> float
(** Mean per-flow goodput over flows running the named CCA; [nan] if
    none. *)

val aggregate_bps_of_cca : outcome -> string -> float
