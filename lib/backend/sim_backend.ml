type flow = { cca : string; rtt : Sim_engine.Units.seconds }

type spec = {
  rate_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow list;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  seed : int;
}

let spec ?(warmup = Sim_engine.Units.seconds 0.0) ?(seed = 1) ~rate_bps
    ~buffer_bytes ~duration flows =
  (* simlint: allow R5 — this IS the labelled builder for [spec]. *)
  { rate_bps; buffer_bytes; flows; duration; warmup; seed }

type outcome = {
  per_flow_bps : float array;
  per_flow_cca : string array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
  utilization : float;
}

type error =
  | Unknown_backend of { name : string; known : string list }
  | Unsupported_cca of {
      backend : string;
      cca : string;
      supported : string list;
    }
  | Invalid_spec of string

let pp_error ppf = function
  | Unknown_backend { name; known } ->
    Format.fprintf ppf "unknown backend %S (known: %s)" name
      (String.concat ", " known)
  | Unsupported_cca { backend; cca; supported } ->
    Format.fprintf ppf "backend %s does not model CCA %S (supported: %s)"
      backend cca
      (String.concat ", " supported)
  | Invalid_spec msg -> Format.fprintf ppf "invalid spec: %s" msg

module type S = sig
  val name : string
  val supports : string -> bool
  val validate : spec -> (unit, error) result
  val digest : spec -> string
  val run : spec -> (outcome, error) result
  val run_batch : spec array -> (outcome, error) result array
end

type t = (module S)

let ( let* ) = Result.bind

(* Shared batched-dispatch shape for backends with a native batch
   entry point: validate every spec, run the valid ones through one
   [run_valid] call, and scatter outcomes back into spec order. The
   per-spec results are position-independent — an invalid spec never
   perturbs its neighbours. *)
let batch_via ~validate ~run_valid specs =
  let n = Array.length specs in
  let checked = Array.map validate specs in
  let ok = ref [] in
  for i = n - 1 downto 0 do
    if Result.is_ok checked.(i) then ok := i :: !ok
  done;
  let ok = Array.of_list !ok in
  let outcomes = run_valid (Array.map (fun i -> specs.(i)) ok) in
  let results =
    Array.map
      (function
        | Ok () -> Error (Invalid_spec "unreachable: overwritten below")
        | Error e -> Error e)
      checked
  in
  Array.iteri (fun k i -> results.(i) <- Ok outcomes.(k)) ok;
  results

(* Backend-independent sanity of a spec. *)
let validate_shape s =
  let module Raw = Sim_engine.Units.Raw in
  if s.flows = [] then Error (Invalid_spec "no flows")
  else if Raw.to_float s.duration <= 0.0 then
    Error (Invalid_spec "duration must be > 0")
  else if
    Raw.to_float s.warmup < 0.0
    || Raw.to_float s.warmup >= Raw.to_float s.duration
  then Error (Invalid_spec "need 0 <= warmup < duration")
  else if Raw.to_float s.rate_bps <= 0.0 then
    Error (Invalid_spec "rate must be > 0")
  else if Raw.to_float s.buffer_bytes <= 0.0 then
    Error (Invalid_spec "buffer must be > 0")
  else if List.exists (fun f -> Raw.to_float f.rtt <= 0.0) s.flows then
    Error (Invalid_spec "flow rtt must be > 0")
  else Ok ()

let validate_ccas ~backend ~supports ~supported s =
  List.fold_left
    (fun acc f ->
      let* () = acc in
      if supports f.cca then Ok ()
      else Error (Unsupported_cca { backend; cca = f.cca; supported }))
    (Ok ()) s.flows

(* Canonical spec string shared by the analytic backends' digests. The
   version token goes first so bumping a backend's internals invalidates
   every cached outcome of that backend and nothing else. *)
let canonical ~version s =
  let module Raw = Sim_engine.Units.Raw in
  let b = Buffer.create 128 in
  Buffer.add_string b version;
  Printf.bprintf b "|rate=%.17g|buf=%.17g|dur=%.17g|warm=%.17g|seed=%d"
    (Raw.to_float s.rate_bps)
    (Raw.to_float s.buffer_bytes)
    (Raw.to_float s.duration) (Raw.to_float s.warmup) s.seed;
  List.iter
    (fun f -> Printf.bprintf b "|%s@%.17g" f.cca (Raw.to_float f.rtt))
    s.flows;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- Packet backend ------------------------------------------------- *)

module Packet = struct
  module E = Tcpflow.Experiment

  let name = "packet"
  let supports cca = Option.is_some (Cca.Registry.find cca)

  let to_config s =
    E.config ~warmup:s.warmup ~seed:s.seed ~rate_bps:s.rate_bps
      ~buffer_bytes:(Sim_engine.Units.bytes_to_int s.buffer_bytes)
      ~duration:s.duration
      (List.map (fun f -> E.flow_config ~base_rtt:f.rtt f.cca) s.flows)

  let validate s =
    let* () = validate_shape s in
    validate_ccas ~backend:name ~supports
      ~supported:(Cca.Registry.names ()) s

  let digest s = "packet-1:" ^ E.digest (to_config s)

  let run s =
    let* () = validate s in
    let r = E.run (to_config s) in
    let per_flow =
      List.sort
        (fun (a : E.flow_result) b -> compare a.flow_id b.flow_id)
        r.E.per_flow
    in
    Ok
      {
        per_flow_bps =
          Array.of_list
            (List.map (fun (fr : E.flow_result) -> fr.throughput_bps) per_flow);
        per_flow_cca =
          Array.of_list
            (List.map (fun (fr : E.flow_result) -> fr.flow_cca) per_flow);
        mean_queue_bytes = r.E.queue_mean_bytes;
        mean_queuing_delay = r.E.queuing_delay;
        loss_events = r.E.drops;
        utilization = r.E.utilization;
      }

  (* The packet engine has no batched stepper (each run is one event
     loop over mutable per-connection state); the sequential fallback
     keeps the API uniform. *)
  let run_batch specs = Array.map run specs
end

(* --- Fluid backend -------------------------------------------------- *)

module Fluid = struct
  module F = Fluidsim.Fluid_sim

  let name = "fluid"
  let supports cca = Result.is_ok (F.kind_of_cca cca)

  let to_config s =
    {
      F.default_config with
      F.capacity_bps = s.rate_bps;
      buffer_bytes = s.buffer_bytes;
      flows =
        List.map
          (fun f -> { F.kind = F.kind_of_cca_exn f.cca; rtt = f.rtt })
          s.flows;
      duration = s.duration;
      warmup = s.warmup;
      seed = s.seed;
    }

  let validate s =
    let* () = validate_shape s in
    validate_ccas ~backend:name ~supports ~supported:F.supported_ccas s

  (* "-soa-2": the batched SoA kernel (DESIGN.md §15) folded the step
     loop into one fused pass; queue-time and estimator sampling moved
     by at most one step, shifting outcomes in the last ulp. *)
  let digest s = canonical ~version:"fluid-soa-2" s

  let outcome_of s (r : F.result) =
    let total = Array.fold_left ( +. ) 0.0 r.F.per_flow_bps in
    {
      per_flow_bps = r.F.per_flow_bps;
      per_flow_cca = Array.map F.cca_of_kind r.F.flow_kinds;
      mean_queue_bytes = r.F.mean_queue_bytes;
      mean_queuing_delay = r.F.mean_queuing_delay;
      loss_events = r.F.loss_events;
      utilization = total /. Sim_engine.Units.Raw.to_float s.rate_bps;
    }

  let run_batch specs =
    batch_via ~validate
      ~run_valid:(fun valid ->
        Array.map2 outcome_of valid (F.run_batch (Array.map to_config valid)))
      specs

  let run s = (run_batch [| s |]).(0)
end

(* --- ODE backend ---------------------------------------------------- *)

module Ode = struct
  module F = Fluidsim.Fluid_sim
  module O = Fluidsim.Ode_model

  let name = "ode"
  let supports cca = Result.is_ok (F.kind_of_cca cca)

  let to_config s =
    {
      O.default_config with
      O.capacity_bps = s.rate_bps;
      buffer_bytes = s.buffer_bytes;
      flows =
        List.map
          (fun f -> { F.kind = F.kind_of_cca_exn f.cca; rtt = f.rtt })
          s.flows;
      duration = s.duration;
      warmup = s.warmup;
    }

  let validate s =
    let* () = validate_shape s in
    validate_ccas ~backend:name ~supports ~supported:F.supported_ccas s

  (* The ODE model is deterministic: the seed deliberately does not
     participate, so runs differing only by seed share a cache entry.
     "-rk4-2": the batched stepper (DESIGN.md §15) caches the shared
     stage-1 derivative and evaluates CUBIC's x^(2/3) as a squared cube
     root, shifting trajectories in the last ulp. *)
  let digest s = canonical ~version:"ode-rk4-2" { s with seed = 0 }

  let outcome_of s (r : O.result) =
    let total = Array.fold_left ( +. ) 0.0 r.O.per_flow_bps in
    {
      per_flow_bps = r.O.per_flow_bps;
      per_flow_cca = Array.map F.cca_of_kind r.O.flow_kinds;
      mean_queue_bytes = r.O.mean_queue_bytes;
      mean_queuing_delay = r.O.mean_queuing_delay;
      loss_events = int_of_float (Float.round r.O.expected_backoffs);
      utilization = total /. Sim_engine.Units.Raw.to_float s.rate_bps;
    }

  let run_batch specs =
    batch_via ~validate
      ~run_valid:(fun valid ->
        Array.map2 outcome_of valid (O.run_batch (Array.map to_config valid)))
      specs

  let run s = (run_batch [| s |]).(0)
end

let packet : t = (module Packet)
let fluid : t = (module Fluid)
let ode : t = (module Ode)
let all = [ packet; fluid; ode ]

let name (b : t) =
  let module B = (val b) in
  B.name

let supports (b : t) cca =
  let module B = (val b) in
  B.supports cca

let names () = List.map name all

let find n =
  match List.find_opt (fun b -> name b = n) all with
  | Some b -> Ok b
  | None -> Error (Unknown_backend { name = n; known = names () })

let find_exn n =
  match find n with
  | Ok b -> b
  | Error e -> invalid_arg (Format.asprintf "Sim_backend: %a" pp_error e)

let run (b : t) s =
  let module B = (val b) in
  B.run s

let digest (b : t) s =
  let module B = (val b) in
  B.digest s

let validate (b : t) s =
  let module B = (val b) in
  B.validate s

let run_batch (b : t) specs =
  let module B = (val b) in
  B.run_batch specs

let run_exn b s =
  match run b s with
  | Ok o -> o
  | Error e ->
    invalid_arg (Format.asprintf "Sim_backend %s: %a" (name b) pp_error e)

let run_batch_exn b specs =
  Array.map
    (function
      | Ok o -> o
      | Error e ->
        invalid_arg
          (Format.asprintf "Sim_backend %s: %a" (name b) pp_error e))
    (run_batch b specs)

let mean_bps_of_cca o cca =
  let sum = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i c ->
      if String.equal c cca then begin
        sum := !sum +. o.per_flow_bps.(i);
        incr count
      end)
    o.per_flow_cca;
  if !count = 0 then nan else !sum /. float_of_int !count

let aggregate_bps_of_cca o cca =
  let sum = ref 0.0 in
  Array.iteri
    (fun i c -> if String.equal c cca then sum := !sum +. o.per_flow_bps.(i))
    o.per_flow_cca;
  !sum
