module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Units = Sim_engine.Units
module Dumbbell = Netsim.Dumbbell
module Schedule = Workload.Schedule

(* One pooled sender slot. The slot's sender is created on first use and
   then rebound for every later tenant, so steady-state churn reuses all
   transport containers; [item] remembers which schedule entry the current
   tenant serves so the completion callback (allocated once per slot) can
   file its FCT. *)
type slot = { sender : Sender.t; mutable item : int }

type t = {
  sim : Sim.t;
  net : Dumbbell.t;
  base_flow : int;
  cca : string;
  mss : int;
  base_rtt : Units.seconds;
  schedule : Schedule.t;
  trace : Sim_engine.Trace.t option;
  (* Completion records, indexed by schedule position. [fcts.(i)] is nan
     until (unless) transfer [i] completes. *)
  fcts : float array;
  mutable completed : int;
  mutable arrived : int;
  mutable delivered_bytes : float;
  (* Slot pool: a LIFO stack of idle slots. LIFO keeps the hottest slot's
     tables in cache and makes reuse order deterministic. [all] tracks every
     slot ever created so teardown can reach the still-active ones. *)
  mutable free : slot list;
  mutable all : slot list;
  mutable slots_created : int;
  (* Self-scheduling arrival callback: one closure for the whole run. *)
  mutable next_item : int;
  mutable arrive_cb : unit -> unit;
}

let schedule t = t.schedule
let completed t = t.completed
let arrived t = t.arrived
let active t = t.arrived - t.completed
let slots_created t = t.slots_created
let delivered_bytes t = t.delivered_bytes
let fcts t = t.fcts
let flow_of_item t i = t.base_flow + i
let item_of_flow t ~flow = flow - t.base_flow

let is_churn_flow t ~flow =
  flow >= t.base_flow && flow < t.base_flow + Array.length t.fcts

let on_slot_complete t slot =
  let i = slot.item in
  t.fcts.(i) <- Sender.fct slot.sender;
  t.completed <- t.completed + 1;
  t.delivered_bytes <- t.delivered_bytes +. Sender.delivered_bytes slot.sender;
  Dumbbell.remove_flow t.net ~flow:(Sender.flow slot.sender);
  slot.item <- -1;
  (t.free <- slot :: t.free)
  [@simlint.alloc_ok "one pool-stack cell per completion; the slot is reused"]

let acquire_slot t ~flow ~cc ~size_bytes =
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    Sender.rebind slot.sender ~flow ~cc ~data_limit_bytes:size_bytes ();
    slot
  | [] ->
    (* Pool empty: grow by one slot. Growth happens only while concurrency
       is still climbing toward its steady-state level. *)
    t.slots_created <- t.slots_created + 1;
    let sender =
      Sender.create ~net:t.net ~flow ~cc ~mss:t.mss
        ~data_limit_bytes:size_bytes ?trace:t.trace ()
    in
    let slot = { sender; item = -1 } in
    Sender.set_on_complete sender (fun () -> on_slot_complete t slot);
    t.all <- slot :: t.all;
    slot

let arrive t =
  let i = t.next_item in
  if i < Array.length t.fcts then begin
    let it = t.schedule.(i) in
    let flow = t.base_flow + i in
    Dumbbell.add_flow t.net ~flow ~base_rtt:t.base_rtt;
    (* Per-tenant CC state draws its stream at arrival time, in event
       order: deterministic for a fixed seed regardless of pool shape. *)
    let cc =
      Cca.Registry.create t.cca ~mss:t.mss ~rng:(Rng.split (Sim.rng t.sim))
    in
    let slot = acquire_slot t ~flow ~cc ~size_bytes:it.Schedule.size_bytes in
    slot.item <- i;
    t.arrived <- t.arrived + 1;
    (* Chain to the next arrival from here: one pending arrival event at a
       time, no per-item closures. *)
    t.next_item <- i + 1;
    if t.next_item < Array.length t.fcts then begin
      let gap =
        t.schedule.(t.next_item).Schedule.arrival_s -. it.Schedule.arrival_s
      in
      ignore (Sim.schedule t.sim ~delay:gap t.arrive_cb)
    end
  end

let create ?trace ?(mss = Units.mss) ~net ~base_flow ~cca ~base_rtt ~schedule
    () =
  let sim = Dumbbell.sim net in
  let t =
    {
      sim;
      net;
      base_flow;
      cca;
      mss;
      base_rtt;
      schedule;
      trace;
      fcts = Array.make (Array.length schedule) nan;
      completed = 0;
      arrived = 0;
      delivered_bytes = 0.0;
      free = [];
      all = [];
      slots_created = 0;
      next_item = 0;
      arrive_cb = ignore;
    }
  in
  t.arrive_cb <- (fun () -> arrive t);
  if Array.length schedule > 0 then
    ignore
      (Sim.schedule sim ~delay:schedule.(0).Schedule.arrival_s t.arrive_cb);
  t

let teardown t =
  (* End-of-run cleanup for flows the horizon cut off: silence their timers
     and unregister their paths so a post-horizon drain cannot fire them.
     Completion records for these flows stay nan. *)
  List.iter
    (fun slot ->
      if not (Sender.finished slot.sender) then begin
        Sender.deactivate slot.sender;
        Dumbbell.remove_flow t.net ~flow:(Sender.flow slot.sender)
      end)
    t.all
