(** Periodic sampling of a sender's congestion state into time series —
    the in-simulator equivalent of the kernel's tcp_probe / ss traces that
    papers plot cwnd dynamics from.

    A trace samples cwnd, bytes in flight, pacing rate, delivered bytes and
    the CCA's state string every [period] seconds until stopped.

    The tracer is seated on the telemetry event stream: each tick emits a
    [Sim_engine.Trace.Cc_sample] event into its hub (a caller-supplied one,
    or a private hub), and the tracer's own sample list fills in through a
    hub subscription — so a JSONL writer or metrics rollup subscribed to
    the same hub sees exactly the samples recorded here. *)

type t

type sample = {
  time : float;
  cwnd_bytes : float;
  inflight_bytes : int;
  pacing_rate : float option;  (** Bytes/s; [None] for ACK-clocked CCAs. *)
  delivered_bytes : float;
  cc_state : string;
}

val attach :
  ?trace:Sim_engine.Trace.t ->
  sim:Sim_engine.Sim.t ->
  sender:Sender.t ->
  period:float ->
  unit ->
  t
(** Starts sampling immediately, then every [period] seconds. [trace] is
    the hub the samples flow through (sharing one hub across flows is fine:
    each tracer filters on its sender's flow id); omitted, a private hub is
    created — reachable via {!trace}. *)

val stop : t -> unit

val trace : t -> Sim_engine.Trace.t
(** The hub this tracer emits into. *)

val samples : t -> sample list
(** In chronological order. *)

val cwnd_series : t -> Sim_engine.Timeseries.t
(** The cwnd samples as a time series (for aggregation helpers). *)

val throughput_between : t -> from_:float -> until:float -> float
(** Goodput in bits/s computed from the delivered-bytes samples nearest the
    window edges; [nan] when the window has fewer than two samples. *)

val to_csv : t -> string
(** Header + one line per sample. *)

val state_occupancy : t -> (string * float) list
(** Fraction of samples spent in each CCA state (e.g. how long BBR spent in
    ProbeBW vs ProbeRTT), sorted by descending share. *)
