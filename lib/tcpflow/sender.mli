(** A bulk-data TCP sender.

    The sender owns the transport machinery the CCAs plug into:

    - sequence/ACK bookkeeping with SACK-like per-segment state,
    - RACK-style loss detection (a segment still unacknowledged when a
      later-sent segment has been cumulatively or selectively acknowledged
      is declared lost — exact on our reorder-free FIFO path),
    - NewReno-style single CC notification per loss round, with an RTO
      backstop,
    - BBR-style delivery-rate sampling (per-packet [delivered] snapshots),
    - pacing for rate-based CCAs and pure ACK clocking otherwise.

    Flows are backlogged by default (the paper studies long flows); pass
    [data_limit_bytes] to model the short flows of the §5 "more diverse
    workloads" discussion — the sender stops after delivering that much and
    {!completed} turns true.

    A [t] is a {e slot}, not just a flow: after its tenant completes,
    {!rebind} resets the per-flow state and activates a new flow in place,
    reusing every allocated container (segment table, rings, packet pool,
    timer callbacks, ACK lane) so open-loop churn stays allocation-free in
    steady state. All tenants of one slot must share a reverse-path delay:
    the slot's ACK lane is a FIFO calendar and a different delay would let a
    later flow's ACKs overtake an earlier one's ([rebind] enforces this). *)

type t

val create :
  net:Netsim.Dumbbell.t ->
  flow:int ->
  cc:Cca.Cc_types.t ->
  ?mss:int ->
  ?start_time:Sim_engine.Units.seconds ->
  ?data_limit_bytes:int ->
  ?on_complete:(unit -> unit) ->
  ?trace:Sim_engine.Trace.t ->
  unit ->
  t
(** Wires a sender and its receiver into [net] for flow id [flow]. The
    sender begins transmitting at [start_time] (default 0) and, when
    [data_limit_bytes] is given, stops once that much data is delivered, at
    which point [on_complete] (if any) runs — after all per-ACK state
    updates, so the callback may tear the flow down and release the slot.

    When [trace] is given, the sender emits [Send]/[Ack]/[Seg_lost]/
    [Rto_fire]/[Recovery_enter]/[Recovery_exit]/[Cc_state_change] events
    into it, plus [Flow_start] at activation and [Flow_complete] (carrying
    the FCT) at completion; without one, every instrumentation site is a
    single [match] on [None] — no allocation, no behavioural change. *)

val rebind :
  t -> flow:int -> cc:Cca.Cc_types.t -> ?data_limit_bytes:int -> unit -> unit
(** [rebind t ~flow ~cc ?data_limit_bytes ()] points the (finished) slot at
    a new flow id, installs its receiver on the slot's network, resets all
    per-flow transport state and activates the flow at the current sim time
    (emitting [Flow_start] when traced). Raises [Invalid_argument] if the
    current tenant has not finished, or if the new flow's reverse delay
    differs from the slot's. The caller must have registered [flow]'s path
    via {!Netsim.Dumbbell.add_flow} first. *)

val deactivate : t -> unit
(** Cancel the slot's pending start/RTO/pacing timers and mark it finished
    without a completion event — teardown for flows cut off by the end of a
    simulation. Idempotent; no-op on an already-finished slot. *)

val completed : t -> bool
(** True once a data-limited flow has delivered everything (always false
    for bulk flows). *)

val finished : t -> bool
(** True once the slot's tenant completed or was {!deactivate}d: ACK
    processing is gated off and the slot is eligible for {!rebind}. *)

val activation_time : t -> float
(** Sim time at which the current tenant started sending; [nan] before. *)

val completion_time : t -> float
(** Sim time at which the current tenant completed; [nan] before. *)

val fct : t -> float
(** [completion_time - activation_time]; [nan] until completed. *)

val size_limit_bytes : t -> int
(** The tenant's transfer size; -1 for bulk (unlimited) flows. *)

val set_on_complete : t -> (unit -> unit) -> unit
(** Replace the completion callback (e.g. when a pooled slot changes
    owner). *)

val flow : t -> int
val cc : t -> Cca.Cc_types.t

val mss : t -> int

val next_seq : t -> int
(** The next fresh sequence number: segments [0 .. next_seq - 1] have been
    transmitted at least once. *)

val cum_ack : t -> int
(** The cumulative-ACK point: every segment below it has been delivered.
    Exposed (with {!next_seq} and {!inflight_bytes}) so the runtime
    invariant auditor can cross-check its event-stream reconstruction
    against the transport's own accounting. *)

val delivered_bytes : t -> float
(** Cumulative bytes delivered (first-time ACKed), the basis for goodput
    measurements. *)

val inflight_bytes : t -> int
val lost_segments : t -> int
val retransmitted_segments : t -> int
val rounds : t -> int
val srtt : t -> float
(** Smoothed RTT; [nan] before the first sample. *)

val min_rtt_observed : t -> float
(** Smallest RTT sample seen; [infinity] before the first sample. *)

val snapshot_delivered : t -> float * float
(** [(now, delivered_bytes)] — convenience for windowed goodput. *)

val rto_backoff : t -> int
(** Consecutive unanswered RTO firings: 0 normally; each firing doubles
    the next interval (capped at 60 s) until a valid ACK resets it. *)

val check_inflight_invariant : t -> unit
(** Fails (with a diagnostic) unless the tracked in-flight byte total
    equals the sum of per-segment outstanding contributions. Cheap enough
    for tests to call at every sample point. *)
