(** A bulk-data TCP sender.

    The sender owns the transport machinery the CCAs plug into:

    - sequence/ACK bookkeeping with SACK-like per-segment state,
    - RACK-style loss detection (a segment still unacknowledged when a
      later-sent segment has been cumulatively or selectively acknowledged
      is declared lost — exact on our reorder-free FIFO path),
    - NewReno-style single CC notification per loss round, with an RTO
      backstop,
    - BBR-style delivery-rate sampling (per-packet [delivered] snapshots),
    - pacing for rate-based CCAs and pure ACK clocking otherwise.

    Flows are backlogged by default (the paper studies long flows); pass
    [data_limit_bytes] to model the short flows of the §5 "more diverse
    workloads" discussion — the sender stops after delivering that much and
    {!completed} turns true. *)

type t

val create :
  net:Netsim.Dumbbell.t ->
  flow:int ->
  cc:Cca.Cc_types.t ->
  ?mss:int ->
  ?start_time:Sim_engine.Units.seconds ->
  ?data_limit_bytes:int ->
  unit ->
  t
(** Wires a sender and its receiver into [net] for flow id [flow]. The
    sender begins transmitting at [start_time] (default 0) and, when
    [data_limit_bytes] is given, stops once that much data is delivered. *)

val completed : t -> bool
(** True once a data-limited flow has delivered everything (always false
    for bulk flows). *)

val flow : t -> int
val cc : t -> Cca.Cc_types.t

val delivered_bytes : t -> float
(** Cumulative bytes delivered (first-time ACKed), the basis for goodput
    measurements. *)

val inflight_bytes : t -> int
val lost_segments : t -> int
val retransmitted_segments : t -> int
val rounds : t -> int
val srtt : t -> float
(** Smoothed RTT; [nan] before the first sample. *)

val min_rtt_observed : t -> float
(** Smallest RTT sample seen; [infinity] before the first sample. *)

val snapshot_delivered : t -> float * float
(** [(now, delivered_bytes)] — convenience for windowed goodput. *)
