module Sim = Sim_engine.Sim
module Units = Sim_engine.Units

type flow_config = {
  cca : string;
  base_rtt : Units.seconds;
  start_time : Units.seconds;
}

let flow_config ?(start_time = Units.seconds 0.0) ?(base_rtt = Units.ms 40.0)
    cca =
  { cca; base_rtt; start_time }

type aqm = Tail_drop | Red_default

(* Pure data (like the rest of [config]) so the open-loop population
   participates in the Marshal digest. *)
type workload = {
  wl_arrival : Workload.Arrival.t;
  wl_sizes : Workload.Dist.t;
  wl_cca : string;
  wl_rtt : Units.seconds;
}

type config = {
  rate_bps : Units.rate_bps;
  buffer_bytes : int;
  flows : flow_config list;
  duration : Units.seconds;
  warmup : Units.seconds;
  seed : int;
  sample_period : Units.seconds;
  aqm : aqm;
  workload : workload option;
}

let buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp =
  let bytes = Units.bytes_to_int (Units.scale bdp (Units.bdp_bytes ~rate_bps ~rtt)) in
  max bytes Units.mss

let config ?(aqm = Tail_drop) ?(warmup = Units.seconds 0.0)
    ?(sample_period = Units.ms 1.0) ?(seed = 1) ?workload ~rate_bps
    ~buffer_bytes ~duration flows =
  if flows = [] && Option.is_none workload then
    invalid_arg "Experiment.config: no flows";
  {
    rate_bps;
    buffer_bytes;
    flows;
    duration;
    warmup;
    seed;
    sample_period;
    aqm;
    workload;
  }

(* The key under which Exec.Cache stores a run's result. Marshalling the
   whole record means every field — including seed, aqm and the flow list —
   participates in the digest. *)
let digest config =
  (* simlint: allow R2 *)
  Digest.to_hex (Digest.string (Marshal.to_string config []))

let default_config =
  let rate_bps = Units.mbps 100.0 and rtt = Units.ms 40.0 in
  {
    rate_bps;
    buffer_bytes = buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:10.0;
    flows = [ flow_config "cubic"; flow_config "bbr" ];
    duration = Units.seconds 40.0;
    warmup = Units.seconds 10.0;
    seed = 1;
    sample_period = Units.ms 1.0;
    aqm = Tail_drop;
    workload = None;
  }

type flow_result = {
  flow_id : int;
  flow_cca : string;
  flow_rtt : float;
  throughput_bps : float;
  flow_lost_segments : int;
  flow_retransmitted : int;
  flow_min_rtt : float;
}

(* One completed open-loop transfer: schedule position, arrival instant,
   transfer size and flow-completion time. *)
type completion = {
  cp_item : int;
  cp_arrival : float;
  cp_size : int;
  cp_fct : float;
}

type result = {
  config : config;
  per_flow : flow_result list;
  queuing_delay : float;
  queue_mean_bytes : float;
  class_mean_bytes : (string * float) list;
  class_min_bytes : (string * float) list;
  class_max_bytes : (string * float) list;
  drops : int;
  utilization : float;
  workload_arrived : int;
  workload_completed : int;
  workload_delivered_bytes : float;
  completions : completion list;
}

let distinct_ccas flows =
  List.sort_uniq compare (List.map (fun f -> f.cca) flows)

type live = {
  live_config : config;
  sim : Sim.t;
  net : Netsim.Dumbbell.t;
  senders : Sender.t array;
  sampler : Netsim.Sampler.t;
  flow_tracers : Flow_trace.t array;
  delivered_at_warmup : float array;
  flow_classes : (string * (int -> bool)) list;
  churn : Churn.t option;
}

let setup ?trace config =
  if (config.warmup :> float) >= (config.duration :> float) then
    invalid_arg "Experiment.run: warmup must precede duration";
  let sim = Sim.create ~seed:config.seed () in
  (* The workload stream is split first, before the AQM policy and the
     per-sender streams, so a schedule is a function of (seed, workload
     parameters) alone — adding or reordering static flows cannot move an
     arrival. Configs without a workload split nothing here and keep their
     historical streams bit-for-bit. *)
  let workload_rng =
    match config.workload with
    | None -> None
    | Some _ -> Some (Sim_engine.Rng.split (Sim.rng sim))
  in
  let flows = Array.of_list config.flows in
  let specs =
    Array.to_list
      (Array.mapi
         (fun i f -> { Netsim.Dumbbell.flow = i; base_rtt = f.base_rtt })
         flows)
  in
  let policy =
    match config.aqm with
    | Tail_drop -> Netsim.Droptail_queue.Tail_drop
    | Red_default ->
      Netsim.Droptail_queue.red_defaults
        ~rng:(Sim_engine.Rng.split (Sim.rng sim))
        ~capacity_bytes:config.buffer_bytes
  in
  let net =
    Netsim.Dumbbell.create ~policy ?trace ~sim ~rate_bps:config.rate_bps
      ~buffer_bytes:config.buffer_bytes ~flows:specs ()
  in
  let cca_of_flow = Array.map (fun f -> f.cca) flows in
  let flow_classes =
    (* The bound guard keeps the predicate total once churn flows (ids at
       and above the static population) share the queue: class series
       measure the long-lived flows only. *)
    List.map
      (fun name ->
        ( name,
          fun id -> id < Array.length cca_of_flow && cca_of_flow.(id) = name ))
      (distinct_ccas config.flows)
  in
  let sampler =
    Netsim.Sampler.create ~sim ~queue:(Netsim.Dumbbell.queue net)
      ~period:(config.sample_period :> float) ~flow_classes ()
  in
  let senders =
    Array.mapi
      (fun i f ->
        let rng = Sim_engine.Rng.split (Sim.rng sim) in
        let cc = Cca.Registry.create f.cca ~mss:Units.mss ~rng in
        Sender.create ~net ~flow:i ~cc ~start_time:f.start_time ?trace ())
      flows
  in
  (* When traced, every sender also gets a Flow_trace on the shared hub so
     the event stream carries the same Cc_sample records the ad-hoc tracer
     would have collected. Untraced runs skip this entirely. *)
  let flow_tracers =
    match trace with
    | None -> [||]
    | Some hub ->
      Array.map
        (fun sender ->
          Flow_trace.attach ~trace:hub ~sim ~sender
            ~period:(config.sample_period :> float) ())
        senders
  in
  (* Snapshot delivered bytes at the start of the measurement window. *)
  let delivered_at_warmup = Array.make (Array.length senders) 0.0 in
  ignore
    (Sim.schedule sim ~delay:(config.warmup :> float) (fun () ->
         Array.iteri
           (fun i sender ->
             delivered_at_warmup.(i) <- Sender.delivered_bytes sender)
           senders));
  let churn =
    match (config.workload, workload_rng) with
    | Some w, Some rng ->
      let schedule =
        Workload.Schedule.generate ~arrival:w.wl_arrival ~sizes:w.wl_sizes
          ~horizon_s:(config.duration :> float) ~rng ()
      in
      Some
        (Churn.create ?trace ~net ~base_flow:(Array.length flows)
           ~cca:w.wl_cca ~base_rtt:w.wl_rtt ~schedule ())
    | _ -> None
  in
  {
    live_config = config;
    sim;
    net;
    senders;
    sampler;
    flow_tracers;
    delivered_at_warmup;
    flow_classes;
    churn;
  }

let live_sim l = l.sim
let live_net l = l.net
let live_senders l = l.senders
let live_churn l = l.churn

let finish l =
  let config = l.live_config in
  let sim = l.sim
  and net = l.net
  and senders = l.senders
  and sampler = l.sampler
  and flow_classes = l.flow_classes
  and delivered_at_warmup = l.delivered_at_warmup in
  let flows = Array.of_list config.flows in
  Sim.run ~until:(config.duration :> float) sim;
  Option.iter Churn.teardown l.churn;
  let window = (config.duration :> float) -. (config.warmup :> float) in
  let per_flow =
    Array.to_list
      (Array.mapi
         (fun i sender ->
           let delivered =
             Sender.delivered_bytes sender -. delivered_at_warmup.(i)
           in
           {
             flow_id = i;
             flow_cca = flows.(i).cca;
             flow_rtt = (flows.(i).base_rtt :> float);
             throughput_bps =
               (Units.bits_per_sec_of_bytes
                  ~bytes_per_sec:(delivered /. window)
                 :> float);
             flow_lost_segments = Sender.lost_segments sender;
             flow_retransmitted = Sender.retransmitted_segments sender;
             flow_min_rtt = Sender.min_rtt_observed sender;
           })
         senders)
  in
  let from_ = (config.warmup :> float)
  and until = (config.duration :> float) in
  let class_stat f =
    List.map
      (fun (name, _) -> (name, f (Netsim.Sampler.class_series sampler name)))
      flow_classes
  in
  let result =
    {
      config;
      per_flow;
      queuing_delay =
        Netsim.Sampler.queuing_delay sampler
          ~rate_bps:(config.rate_bps :> float)
          ~from_ ~until;
      queue_mean_bytes =
        Sim_engine.Timeseries.time_weighted_mean
          (Netsim.Sampler.total sampler) ~from_ ~until;
      class_mean_bytes =
        class_stat (fun series ->
            Sim_engine.Timeseries.time_weighted_mean series ~from_ ~until);
      class_min_bytes =
        class_stat (fun series ->
            Sim_engine.Timeseries.min_value series ~from_ ());
      class_max_bytes =
        class_stat (fun series ->
            Sim_engine.Timeseries.max_value series ~from_ ());
      drops = Netsim.Droptail_queue.drops (Netsim.Dumbbell.queue net);
      utilization =
        (* busy_seconds accrues at transmission start, so a packet in
           flight at the end of the run can push the ratio marginally
           past 1. *)
        Float.min 1.0
          ((Netsim.Link.busy_seconds (Netsim.Dumbbell.link net) :> float)
          /. (config.duration :> float));
      workload_arrived =
        (match l.churn with None -> 0 | Some c -> Churn.arrived c);
      workload_completed =
        (match l.churn with None -> 0 | Some c -> Churn.completed c);
      workload_delivered_bytes =
        (match l.churn with None -> 0.0 | Some c -> Churn.delivered_bytes c);
      completions =
        (match l.churn with
        | None -> []
        | Some c ->
          let sched = Churn.schedule c in
          let fcts = Churn.fcts c in
          let acc = ref [] in
          for i = Array.length fcts - 1 downto 0 do
            if not (Float.is_nan fcts.(i)) then
              acc :=
                {
                  cp_item = i;
                  cp_arrival = sched.(i).Workload.Schedule.arrival_s;
                  cp_size = sched.(i).Workload.Schedule.size_bytes;
                  cp_fct = fcts.(i);
                }
                :: !acc
          done;
          !acc);
    }
  in
  Netsim.Sampler.stop sampler;
  Array.iter Flow_trace.stop l.flow_tracers;
  result

let run ?trace config = finish (setup ?trace config)

let throughput_of_cca result name =
  List.filter_map
    (fun f -> if f.flow_cca = name then Some f.throughput_bps else None)
    result.per_flow

let mean_throughput_of_cca result name =
  match throughput_of_cca result name with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let aggregate_throughput_of_cca result name =
  List.fold_left ( +. ) 0.0 (throughput_of_cca result name)
