module Sim = Sim_engine.Sim
module Tr = Sim_engine.Trace
module Packet = Netsim.Packet
module Dumbbell = Netsim.Dumbbell
module Cc = Cca.Cc_types

(* Per-segment transmission state. Entries are garbage-collected once the
   segment is acknowledged and has left the send-order queue. *)
type seg_state = {
  mutable acked : bool;
  mutable lost : bool;  (* declared lost, awaiting retransmission or ack *)
  mutable retx_count : int;
  mutable last_sent_time : float;
  mutable counted_bytes : int;
      (* Bytes of this segment currently counted in [t.inflight_bytes]
         (0, mss, or a multiple when several copies are outstanding).
         Decrements consult this instead of assuming one MSS, so in-flight
         accounting stays exact across RTOs and late ACKs. *)
}

(* Send-order queue entry; stale when the segment was acked or has been
   retransmitted after this transmission. *)
type order_entry = { o_seq : int; o_sent_time : float }

type t = {
  sim : Sim.t;
  net : Dumbbell.t;
  flow : int;
  mss : int;
  cc : Cc.t;
  seg_limit : int;  (* max_int = unlimited (bulk flow) *)
  trace : Tr.t option;
  mutable next_seq : int;
  mutable cum_ack : int;  (* all segments below this are acked *)
  segs : (int, seg_state) Hashtbl.t;
  order : order_entry Queue.t;
  retx_queue : int Queue.t;
  mutable inflight_bytes : int;
  (* Delivery accounting (BBR-style). *)
  mutable delivered : float;
  mutable delivered_time : float;
  mutable round : int;
  mutable next_round_delivered : float;
  (* RTT estimation. *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable min_rtt : float;
  (* Recovery state. *)
  mutable in_recovery : bool;
  mutable recovery_high : int;
  (* RTO. *)
  mutable rto_handle : Sim.handle option;
  mutable rto_backoff : int;  (* consecutive unanswered RTO firings *)
  (* Pacing. *)
  mutable pacing_handle : Sim.handle option;
  mutable next_send_time : float;
  (* Telemetry. *)
  mutable last_cc_state : string;
  (* Counters. *)
  mutable lost_segments : int;
  mutable retransmitted_segments : int;
}

let flow t = t.flow
let cc t = t.cc
let delivered_bytes t = t.delivered
let inflight_bytes t = t.inflight_bytes
let lost_segments t = t.lost_segments
let retransmitted_segments t = t.retransmitted_segments
let rounds t = t.round
let srtt t = t.srtt
let min_rtt_observed t = t.min_rtt
let rto_backoff t = t.rto_backoff
let snapshot_delivered t = (Sim.now t.sim, t.delivered)
let completed t = t.seg_limit < max_int && t.cum_ack >= t.seg_limit

let seg t seq =
  match Hashtbl.find_opt t.segs seq with
  | Some s -> s
  | None ->
    (* Unknown segment: already acked and collected. *)
    { acked = true; lost = false; retx_count = 0; last_sent_time = 0.0;
      counted_bytes = 0 }

(* The tracked in-flight total must equal the per-segment contributions at
   all times; [on_rto] asserts this after its sweep and tests probe it
   mid-run. *)
let check_inflight_invariant t =
  let sum = ref 0 in
  for seq = t.cum_ack to t.next_seq - 1 do
    match Hashtbl.find_opt t.segs seq with
    | Some s ->
      if s.counted_bytes < 0 then
        failwith
          (Printf.sprintf "Sender: segment %d counts %d in-flight bytes" seq
             s.counted_bytes);
      sum := !sum + s.counted_bytes
    | None -> ()
  done;
  if !sum <> t.inflight_bytes then
    failwith
      (Printf.sprintf
         "Sender: in-flight drift: tracked %d bytes, per-segment sum %d"
         t.inflight_bytes !sum)

(* CC-state transitions surface as trace events; the comparison runs only
   when a trace is attached. *)
let note_cc_state t =
  match t.trace with
  | None -> ()
  | Some tr ->
    let state = t.cc.Cc.state () in
    if not (String.equal state t.last_cc_state) then begin
      Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
        (Tr.Cc_state_change { from_state = t.last_cc_state; to_state = state });
      t.last_cc_state <- state
    end

let rto_base t =
  if Float.is_nan t.srtt then 1.0
  else Float.max 0.2 (t.srtt +. (4.0 *. t.rttvar))

(* Exponential backoff: each unanswered RTO doubles the interval, capped at
   60 s; a valid ACK resets the backoff. *)
let rto_interval t = Float.min 60.0 (Float.ldexp (rto_base t) (min t.rto_backoff 16))

let rec arm_rto t =
  (match t.rto_handle with Some h -> Sim.cancel h | None -> ());
  let handle =
    Sim.schedule t.sim ~delay:(rto_interval t) (fun () -> on_rto t)
  in
  t.rto_handle <- Some handle

and on_rto t =
  t.rto_handle <- None;
  if t.inflight_bytes > 0 then begin
    (* Declare everything in flight lost and restart. *)
    let fired_interval = rto_interval t in
    let newly_lost = ref 0 in
    (* Walk the live sequence range in order rather than iterating the
       hashtable: retransmissions must be queued lowest-sequence first,
       independent of hash layout. *)
    for seq = t.cum_ack to t.next_seq - 1 do
      match Hashtbl.find_opt t.segs seq with
      | Some s ->
        if (not s.acked) && not s.lost then begin
          s.lost <- true;
          incr newly_lost;
          Queue.push seq t.retx_queue;
          match t.trace with
          | None -> ()
          | Some tr ->
            Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
              (Tr.Seg_lost { seq; via_timeout = true })
        end;
        (* Nothing survives the timeout: every outstanding copy stops
           counting, whether or not the segment was already marked lost. *)
        t.inflight_bytes <- t.inflight_bytes - s.counted_bytes;
        s.counted_bytes <- 0
      | None -> ()
    done;
    assert (t.inflight_bytes = 0);
    t.lost_segments <- t.lost_segments + !newly_lost;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
        (Tr.Rto_fire
           {
             interval = fired_interval;
             backoff = t.rto_backoff;
             lost_segments = !newly_lost;
           });
      if not t.in_recovery then
        Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
          (Tr.Recovery_enter
             { via_timeout = true; lost_bytes = !newly_lost * t.mss }));
    t.rto_backoff <- t.rto_backoff + 1;
    t.in_recovery <- true;
    t.recovery_high <- t.next_seq;
    t.cc.Cc.on_loss
      {
        Cc.now = Sim.now t.sim;
        lost_bytes = !newly_lost * t.mss;
        inflight_bytes = 0;
        via_timeout = true;
      };
    note_cc_state t;
    arm_rto t;
    try_send t
  end

and transmit t ~seq ~retransmit =
  let now = Sim.now t.sim in
  let s =
    match Hashtbl.find_opt t.segs seq with
    | Some s -> s
    | None ->
      let s = { acked = false; lost = false; retx_count = 0;
                last_sent_time = now; counted_bytes = 0 } in
      Hashtbl.replace t.segs seq s;
      s
  in
  s.last_sent_time <- now;
  s.lost <- false;
  if retransmit then begin
    s.retx_count <- s.retx_count + 1;
    t.retransmitted_segments <- t.retransmitted_segments + 1
  end;
  Queue.push { o_seq = seq; o_sent_time = now } t.order;
  s.counted_bytes <- s.counted_bytes + t.mss;
  t.inflight_bytes <- t.inflight_bytes + t.mss;
  let packet =
    Packet.make ~flow:t.flow ~seq ~size:t.mss ~retransmit ~sent_time:now
      ~delivered:t.delivered ~delivered_time:t.delivered_time
      ~app_limited:false
  in
  t.cc.Cc.on_send ~now ~inflight_bytes:t.inflight_bytes;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Send { seq; size = t.mss; retransmit }));
  (* Drops surface later through RACK/RTO, exactly as on a real path. *)
  ignore (Dumbbell.send t.net packet);
  match t.rto_handle with None -> arm_rto t | Some _ -> ()

and try_send t =
  let now = Sim.now t.sim in
  let cwnd = t.cc.Cc.cwnd_bytes () in
  let can_send () = float_of_int (t.inflight_bytes + t.mss) <= cwnd in
  match t.cc.Cc.pacing_rate () with
  | None ->
    (* ACK-clocked: fill the window. *)
    let continue = ref true in
    while !continue && can_send () do
      continue := send_one t
    done
  | Some rate when rate <= 0.0 -> ()
  | Some rate ->
    if can_send () then begin
      if now >= t.next_send_time then begin
        if send_one t then begin
          t.next_send_time <-
            Float.max t.next_send_time now +. (float_of_int t.mss /. rate);
          schedule_pacer t
        end
      end
      else schedule_pacer t
    end

(* Returns false when there is nothing (left) to send. *)
and send_one t =
  match Queue.take_opt t.retx_queue with
  | Some seq ->
    let s = seg t seq in
    (* Skip stale retransmit requests (acked meanwhile). *)
    if s.acked then send_one t
    else begin
      transmit t ~seq ~retransmit:true;
      true
    end
  | None ->
    if t.next_seq >= t.seg_limit then false
    else begin
      let seq = t.next_seq in
      t.next_seq <- t.next_seq + 1;
      transmit t ~seq ~retransmit:false;
      true
    end

and schedule_pacer t =
  match t.pacing_handle with
  | Some _ -> ()
  | None ->
    let now = Sim.now t.sim in
    let delay = Float.max 0.0 (t.next_send_time -. now) in
    let handle =
      Sim.schedule t.sim ~delay (fun () ->
          t.pacing_handle <- None;
          try_send t)
    in
    t.pacing_handle <- Some handle

(* Process the arrival of the ACK generated by the (unique) reception of
   [trig]. *)
let on_ack_packet t (trig : Packet.t) =
  let now = Sim.now t.sim in
  let s = seg t trig.seq in
  (* Any ACK for an unacked segment means the receiver holds the data,
     whichever transmission got through — and that the path delivers, so
     the RTO backoff resets. *)
  t.rto_backoff <- 0;
  let first_delivery = not s.acked in
  let rtt_valid = s.retx_count = 0 in
  if first_delivery then begin
    s.acked <- true;
    t.delivered <- t.delivered +. float_of_int t.mss;
    t.delivered_time <- now;
    (* Acked data stops counting in flight, however many copies of it were
       outstanding and whichever of them got through. *)
    t.inflight_bytes <- t.inflight_bytes - s.counted_bytes;
    s.counted_bytes <- 0
  end;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Ack
         {
           seq = trig.seq;
           rtt_sample = now -. trig.sent_time;
           delivered_bytes = t.delivered;
           inflight_bytes = t.inflight_bytes;
         }));
  (* Advance the cumulative ACK point, collecting old state. *)
  let rec advance () =
    match Hashtbl.find_opt t.segs t.cum_ack with
    | Some s when s.acked ->
      Hashtbl.remove t.segs t.cum_ack;
      t.cum_ack <- t.cum_ack + 1;
      advance ()
    | _ -> ()
  in
  advance ();
  (* RACK: every segment sent before [trig] and still unacked is lost. *)
  let newly_lost = ref 0 in
  let rec reap () =
    match Queue.peek_opt t.order with
    | None -> ()
    | Some e ->
      let es = seg t e.o_seq in
      if es.acked || es.last_sent_time <> e.o_sent_time then begin
        (* Stale entry: segment acked, or retransmitted more recently. *)
        ignore (Queue.pop t.order);
        if es.acked && e.o_seq < t.cum_ack then Hashtbl.remove t.segs e.o_seq;
        reap ()
      end
      else if e.o_sent_time < trig.sent_time then begin
        ignore (Queue.pop t.order);
        if not es.lost then begin
          es.lost <- true;
          t.lost_segments <- t.lost_segments + 1;
          incr newly_lost;
          Queue.push e.o_seq t.retx_queue;
          (* This entry is the segment's latest transmission; that one copy
             stops counting (earlier copies already stopped when the entry
             they belonged to went stale). *)
          let dec = min es.counted_bytes t.mss in
          es.counted_bytes <- es.counted_bytes - dec;
          t.inflight_bytes <- t.inflight_bytes - dec;
          match t.trace with
          | None -> ()
          | Some tr ->
            Tr.emit tr ~time:now ~flow:t.flow
              (Tr.Seg_lost { seq = e.o_seq; via_timeout = false })
        end;
        reap ()
      end
  in
  reap ();
  (* RTT estimators (Karn's rule: skip retransmitted segments). *)
  let rtt_sample = now -. trig.sent_time in
  if rtt_valid then begin
    if Float.is_nan t.srtt then begin
      t.srtt <- rtt_sample;
      t.rttvar <- rtt_sample /. 2.0
    end
    else begin
      t.rttvar <-
        (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt_sample));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt_sample)
    end;
    if rtt_sample < t.min_rtt then t.min_rtt <- rtt_sample
  end;
  (* Loss-round bookkeeping: one CC notification per recovery episode. *)
  if !newly_lost > 0 then begin
    if not t.in_recovery then begin
      t.in_recovery <- true;
      t.recovery_high <- t.next_seq;
      (match t.trace with
      | None -> ()
      | Some tr ->
        Tr.emit tr ~time:now ~flow:t.flow
          (Tr.Recovery_enter
             { via_timeout = false; lost_bytes = !newly_lost * t.mss }));
      t.cc.Cc.on_loss
        {
          Cc.now = now;
          lost_bytes = !newly_lost * t.mss;
          inflight_bytes = t.inflight_bytes;
          via_timeout = false;
        }
    end
  end;
  if t.in_recovery && t.cum_ack >= t.recovery_high then begin
    t.in_recovery <- false;
    match t.trace with
    | None -> ()
    | Some tr -> Tr.emit tr ~time:now ~flow:t.flow Tr.Recovery_exit
  end;
  (* Round accounting and CC ACK notification for first-time deliveries. *)
  if first_delivery then begin
    let round_start = trig.delivered >= t.next_round_delivered in
    if round_start then begin
      t.round <- t.round + 1;
      t.next_round_delivered <- t.delivered
    end;
    let interval = now -. trig.delivered_time in
    let delivery_rate =
      if interval > 0.0 then (t.delivered -. trig.delivered) /. interval
      else 0.0
    in
    let rtt_for_cc =
      if rtt_valid then rtt_sample
      else if Float.is_nan t.srtt then rtt_sample
      else t.srtt
    in
    t.cc.Cc.on_ack
      {
        Cc.now;
        rtt_sample = rtt_for_cc;
        acked_bytes = t.mss;
        delivered = t.delivered;
        delivery_rate;
        rate_app_limited = trig.app_limited;
        inflight_bytes = t.inflight_bytes;
        round = t.round;
        round_start;
      }
  end;
  note_cc_state t;
  if completed t then begin
    (match t.rto_handle with Some h -> Sim.cancel h | None -> ());
    t.rto_handle <- None
  end
  else begin
    arm_rto t;
    try_send t
  end

let create ~net ~flow ~cc ?(mss = Sim_engine.Units.mss)
    ?(start_time = Sim_engine.Units.seconds 0.0)
    ?data_limit_bytes ?trace () =
  let sim = Dumbbell.sim net in
  let seg_limit =
    match data_limit_bytes with
    | None -> max_int
    | Some bytes ->
      if bytes <= 0 then invalid_arg "Sender.create: data_limit_bytes";
      (bytes + mss - 1) / mss
  in
  let t =
    {
      sim;
      net;
      flow;
      mss;
      cc;
      seg_limit;
      trace;
      next_seq = 0;
      cum_ack = 0;
      segs = Hashtbl.create 1024;
      order = Queue.create ();
      retx_queue = Queue.create ();
      inflight_bytes = 0;
      delivered = 0.0;
      delivered_time = 0.0;
      round = 0;
      next_round_delivered = 0.0;
      srtt = nan;
      rttvar = 0.0;
      min_rtt = infinity;
      in_recovery = false;
      recovery_high = 0;
      rto_handle = None;
      rto_backoff = 0;
      pacing_handle = None;
      next_send_time = 0.0;
      last_cc_state = cc.Cc.state ();
      lost_segments = 0;
      retransmitted_segments = 0;
    }
  in
  (* Receiver: each arriving data packet generates one ACK that reaches the
     sender after the flow's reverse-path delay. *)
  let reverse = (Dumbbell.reverse_delay net ~flow :> float) in
  Dumbbell.set_receiver net ~flow (fun packet ->
      ignore
        (Sim.schedule sim ~delay:reverse (fun () -> on_ack_packet t packet)));
  ignore
    (Sim.schedule sim ~delay:(start_time :> float) (fun () ->
         t.delivered_time <- Sim.now sim;
         try_send t));
  t
