module Sim = Sim_engine.Sim
module Tr = Sim_engine.Trace
module Packet = Netsim.Packet
module Dumbbell = Netsim.Dumbbell
module Cc = Cca.Cc_types

(* Per-segment transmission state. Entries are garbage-collected once the
   segment is acknowledged and has left the send-order queue. *)
type seg_state = {
  mutable acked : bool;
  mutable lost : bool;  (* declared lost, awaiting retransmission or ack *)
  mutable retx_count : int;
  mutable last_sent_time : float;
  mutable counted_bytes : int;
      (* Bytes of this segment currently counted in [t.inflight_bytes]
         (0, mss, or a multiple when several copies are outstanding).
         Decrements consult this instead of assuming one MSS, so in-flight
         accounting stays exact across RTOs and late ACKs. *)
}

(* Hot mutable floats live in their own all-float record: OCaml stores such
   records flat, so the per-ACK updates below write unboxed doubles instead
   of allocating a box per store (which they would in the mixed record). *)
type float_state = {
  mutable delivered : float;
  mutable delivered_time : float;
  mutable next_round_delivered : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable min_rtt : float;
  mutable next_send_time : float;
}

type t = {
  sim : Sim.t;
  net : Dumbbell.t;
  mutable flow : int;
  mss : int;
  mutable cc : Cc.t;
  mutable seg_limit : int;  (* max_int = unlimited (bulk flow) *)
  mutable size_limit_bytes : int;  (* -1 = unlimited; for lifecycle events *)
  trace : Tr.t option;
  mutable next_seq : int;
  mutable cum_ack : int;  (* all segments below this are acked *)
  segs : (int, seg_state) Hashtbl.t;
  (* Send-order ring (parallel arrays, power-of-two capacity): one
     (seq, sent-time) pair per transmission, FIFO. An entry is stale when
     the segment was acked or retransmitted after this transmission.
     Replaces a [Queue] of records — push/pop allocate nothing. *)
  mutable o_seqs : int array;
  mutable o_times : float array;
  mutable o_head : int;
  mutable o_len : int;
  retx_queue : int Queue.t;
  (* Free pool of recycled packets (a bounded stack): a packet comes back
     when its ACK has been fully processed, so no queue, lane or trace still
     references it. Dropped packets simply never return. *)
  pk_pool : Packet.t array;
  mutable pk_pool_len : int;
  mutable inflight_bytes : int;
  (* Delivery accounting (BBR-style), RTT estimation and pacing clock. *)
  fs : float_state;
  mutable round : int;
  (* Recovery state. *)
  mutable in_recovery : bool;
  mutable recovery_high : int;
  (* RTO. [rto_handle] is [Sim.null_handle] when unarmed; [rto_cb] is
     allocated once in [create] so re-arming schedules without closing over
     [t] afresh. *)
  mutable rto_handle : Sim.handle;
  mutable rto_backoff : int;  (* consecutive unanswered RTO firings *)
  mutable rto_cb : unit -> unit;
  (* Pacing. Same single-allocation discipline as the RTO callback. *)
  mutable pacing_handle : Sim.handle;
  mutable pacer_cb : unit -> unit;
  (* One scratch [ack_info], refilled per ACK: the float stores land in the
     flat [ack_floats] sub-record, so notifying the CCA allocates nothing.
     Valid only for the duration of the [on_ack] call. *)
  ack_scratch : Cc.ack_info;
  (* Telemetry. *)
  mutable last_cc_state : string;
  (* Counters. *)
  mutable lost_segments : int;
  mutable retransmitted_segments : int;
  (* Lifecycle. A sender slot is created once and can host a succession of
     flows ([rebind]): [finished] gates ACK processing after completion so a
     late retransmitted copy cannot touch the slot's next tenant, and
     [reverse_delay] is re-read by the single receiver closure so the ACK
     lane is reused across rebinds. The lane's FIFO contract requires every
     tenant of one slot to share the same reverse-path delay. *)
  mutable finished : bool;
  mutable activation_time : float;  (* nan until activated *)
  mutable completion_time : float;  (* nan until completed *)
  mutable on_complete : unit -> unit;
  mutable reverse_delay : float;
  mutable recv_cb : Packet.t -> unit;
  mutable start_handle : Sim.handle;
  mutable start_cb : unit -> unit;
}

let flow t = t.flow
let cc t = t.cc
let mss t = t.mss
let next_seq t = t.next_seq
let cum_ack t = t.cum_ack
let delivered_bytes t = t.fs.delivered
let inflight_bytes t = t.inflight_bytes
let lost_segments t = t.lost_segments
let retransmitted_segments t = t.retransmitted_segments
let rounds t = t.round
let srtt t = t.fs.srtt
let min_rtt_observed t = t.fs.min_rtt
let rto_backoff t = t.rto_backoff
let snapshot_delivered t = (Sim.now t.sim, t.fs.delivered)
let completed t = t.seg_limit < max_int && t.cum_ack >= t.seg_limit
let finished t = t.finished
let activation_time t = t.activation_time
let completion_time t = t.completion_time
let fct t = t.completion_time -. t.activation_time
let size_limit_bytes t = t.size_limit_bytes
let set_on_complete t f = t.on_complete <- f

let[@simlint.alloc_ok "amortized geometric growth; the ring never shrinks"]
    order_grow t =
  let cap = Array.length t.o_seqs in
  let seqs = Array.make (2 * cap) 0 in
  let times = Array.make (2 * cap) 0.0 in
  for i = 0 to t.o_len - 1 do
    let j = (t.o_head + i) land (cap - 1) in
    seqs.(i) <- t.o_seqs.(j);
    times.(i) <- t.o_times.(j)
  done;
  t.o_seqs <- seqs;
  t.o_times <- times;
  t.o_head <- 0

let order_push t ~seq ~time =
  if t.o_len = Array.length t.o_seqs then order_grow t;
  let tail = (t.o_head + t.o_len) land (Array.length t.o_seqs - 1) in
  t.o_seqs.(tail) <- seq;
  t.o_times.(tail) <- time;
  t.o_len <- t.o_len + 1

let order_pop t =
  t.o_head <- (t.o_head + 1) land (Array.length t.o_seqs - 1);
  t.o_len <- t.o_len - 1

let seg t seq =
  try Hashtbl.find t.segs seq
  with Not_found ->
    (* Unknown segment: already acked and collected. *)
    ({ acked = true; lost = false; retx_count = 0; last_sent_time = 0.0;
       counted_bytes = 0 }
    [@simlint.alloc_ok
      "placeholder for a dup-ACKed, already-collected segment: off the \
       steady-state path"])

(* The tracked in-flight total must equal the per-segment contributions at
   all times; [on_rto] asserts this after its sweep and tests probe it
   mid-run. *)
let check_inflight_invariant t =
  let sum = ref 0 in
  for seq = t.cum_ack to t.next_seq - 1 do
    match Hashtbl.find_opt t.segs seq with
    | Some s ->
      if s.counted_bytes < 0 then
        failwith
          (Printf.sprintf "Sender: segment %d counts %d in-flight bytes" seq
             s.counted_bytes);
      sum := !sum + s.counted_bytes
    | None -> ()
  done;
  if !sum <> t.inflight_bytes then
    failwith
      (Printf.sprintf
         "Sender: in-flight drift: tracked %d bytes, per-segment sum %d"
         t.inflight_bytes !sum)

(* Trace emission allocates the event payload (and the record inside
   [Trace.emit]); every site below is gated on a sink being attached, and
   the records are the run's product, so A1 exempts them by name. *)

(* CC-state transitions surface as trace events; the comparison runs only
   when a trace is attached. *)
let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] note_cc_state t =
  match t.trace with
  | None -> ()
  | Some tr ->
    let state = t.cc.Cc.state () in
    if not (String.equal state t.last_cc_state) then begin
      Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
        (Tr.Cc_state_change { from_state = t.last_cc_state; to_state = state });
      t.last_cc_state <- state
    end

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_send t ~now ~seq ~retransmit =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Send { seq; size = t.mss; retransmit })

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_ack t ~now ~seq ~rtt_sample =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Ack
         {
           seq;
           rtt_sample;
           delivered_bytes = t.fs.delivered;
           inflight_bytes = t.inflight_bytes;
         })

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_seg_lost t ~now ~seq ~via_timeout =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow (Tr.Seg_lost { seq; via_timeout })

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_recovery_enter t ~now ~via_timeout ~lost_bytes =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Recovery_enter { via_timeout; lost_bytes })

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_flow_start t ~now =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Flow_start { size_limit_bytes = t.size_limit_bytes })

let[@simlint.alloc_ok
     "trace event: built only with a sink attached; the record is the \
      product"] trace_flow_complete t ~now =
  match t.trace with
  | None -> ()
  | Some tr ->
    Tr.emit tr ~time:now ~flow:t.flow
      (Tr.Flow_complete
         { fct = now -. t.activation_time; size_bytes = t.size_limit_bytes })

(* Advance the cumulative ACK point, collecting old state. Toplevel
   (rather than a local [let rec]) so the per-ACK path builds no
   closure. *)
let rec advance_cum_ack t =
  match Hashtbl.find t.segs t.cum_ack with
  | exception Not_found -> ()
  | s ->
    if s.acked then begin
      Hashtbl.remove t.segs t.cum_ack;
      t.cum_ack <- t.cum_ack + 1;
      advance_cum_ack t
    end

(* RACK sweep: every order-ring entry sent before the triggering
   transmission and still unacked is lost. Returns the count of segments
   newly marked lost. Toplevel for the same no-closure reason. *)
let rec reap_lost t ~now ~trig_sent acc =
  if t.o_len = 0 then acc
  else begin
    let e_seq = t.o_seqs.(t.o_head) in
    let e_sent_time = t.o_times.(t.o_head) in
    let es = seg t e_seq in
    if es.acked || es.last_sent_time <> e_sent_time then begin
      (* Stale entry: segment acked, or retransmitted more recently. *)
      order_pop t;
      if es.acked && e_seq < t.cum_ack then Hashtbl.remove t.segs e_seq;
      reap_lost t ~now ~trig_sent acc
    end
    else if e_sent_time < trig_sent then begin
      order_pop t;
      let acc =
        if not es.lost then begin
          es.lost <- true;
          t.lost_segments <- t.lost_segments + 1;
          (Queue.push e_seq t.retx_queue)
          [@simlint.alloc_ok
            "loss path: one retransmit-queue cell per newly lost segment"];
          (* This entry is the segment's latest transmission; that one copy
             stops counting (earlier copies already stopped when the entry
             they belonged to went stale). *)
          let dec = min es.counted_bytes t.mss in
          es.counted_bytes <- es.counted_bytes - dec;
          t.inflight_bytes <- t.inflight_bytes - dec;
          trace_seg_lost t ~now ~seq:e_seq ~via_timeout:false;
          acc + 1
        end
        else acc
      in
      reap_lost t ~now ~trig_sent acc
    end
    else acc
  end

let rto_base t =
  if Float.is_nan t.fs.srtt then 1.0
  else Float.max 0.2 (t.fs.srtt +. (4.0 *. t.fs.rttvar))

(* Exponential backoff: each unanswered RTO doubles the interval, capped at
   60 s; a valid ACK resets the backoff. *)
let rto_interval t = Float.min 60.0 (Float.ldexp (rto_base t) (min t.rto_backoff 16))

let rec arm_rto t =
  if not (Sim.is_null t.rto_handle) then Sim.cancel t.sim t.rto_handle;
  t.rto_handle <- Sim.schedule t.sim ~delay:(rto_interval t) t.rto_cb

and on_rto t =
  t.rto_handle <- Sim.null_handle;
  if t.inflight_bytes > 0 then begin
    (* Declare everything in flight lost and restart. *)
    let fired_interval = rto_interval t in
    let newly_lost = ref 0 in
    (* Walk the live sequence range in order rather than iterating the
       hashtable: retransmissions must be queued lowest-sequence first,
       independent of hash layout. *)
    for seq = t.cum_ack to t.next_seq - 1 do
      match Hashtbl.find_opt t.segs seq with
      | Some s ->
        if (not s.acked) && not s.lost then begin
          s.lost <- true;
          incr newly_lost;
          Queue.push seq t.retx_queue;
          match t.trace with
          | None -> ()
          | Some tr ->
            Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
              (Tr.Seg_lost { seq; via_timeout = true })
        end;
        (* Nothing survives the timeout: every outstanding copy stops
           counting, whether or not the segment was already marked lost. *)
        t.inflight_bytes <- t.inflight_bytes - s.counted_bytes;
        s.counted_bytes <- 0
      | None -> ()
    done;
    assert (t.inflight_bytes = 0);
    t.lost_segments <- t.lost_segments + !newly_lost;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
        (Tr.Rto_fire
           {
             interval = fired_interval;
             backoff = t.rto_backoff;
             lost_segments = !newly_lost;
           });
      if not t.in_recovery then
        Tr.emit tr ~time:(Sim.now t.sim) ~flow:t.flow
          (Tr.Recovery_enter
             { via_timeout = true; lost_bytes = !newly_lost * t.mss }));
    t.rto_backoff <- t.rto_backoff + 1;
    t.in_recovery <- true;
    t.recovery_high <- t.next_seq;
    t.cc.Cc.on_loss
      {
        Cc.now = Sim.now t.sim;
        lost_bytes = !newly_lost * t.mss;
        inflight_bytes = 0;
        via_timeout = true;
      };
    note_cc_state t;
    arm_rto t;
    try_send t
  end

and transmit t ~seq ~retransmit =
  let now = Sim.now t.sim in
  let s =
    try Hashtbl.find t.segs seq
    with Not_found ->
      ((let s = { acked = false; lost = false; retx_count = 0;
                  last_sent_time = now; counted_bytes = 0 } in
        Hashtbl.add t.segs seq s;
        s)
      [@simlint.alloc_ok
        "first transmission of a segment: its bookkeeping record lives \
         until the cumulative ACK passes it; pooled packets cover the \
         wire path"])
  in
  s.last_sent_time <- now;
  s.lost <- false;
  if retransmit then begin
    s.retx_count <- s.retx_count + 1;
    t.retransmitted_segments <- t.retransmitted_segments + 1
  end;
  order_push t ~seq ~time:now;
  s.counted_bytes <- s.counted_bytes + t.mss;
  t.inflight_bytes <- t.inflight_bytes + t.mss;
  let packet =
    if t.pk_pool_len > 0 then begin
      t.pk_pool_len <- t.pk_pool_len - 1;
      let p = t.pk_pool.(t.pk_pool_len) in
      t.pk_pool.(t.pk_pool_len) <- Packet.dummy;
      (* Restamp the flow id: after [rebind] the pool holds packets
         recycled under the slot's previous tenant (late ACK copies keep
         arriving even after the switch). *)
      p.Packet.flow <- t.flow;
      p.Packet.seq <- seq;
      p.Packet.retransmit <- retransmit;
      p.Packet.sent_time <- now;
      p.Packet.delivered <- t.fs.delivered;
      p.Packet.delivered_time <- t.fs.delivered_time;
      p
    end
    else
      Packet.make ~flow:t.flow ~seq ~size:t.mss ~retransmit ~sent_time:now
        ~delivered:t.fs.delivered ~delivered_time:t.fs.delivered_time
        ~app_limited:false
  in
  t.cc.Cc.on_send ~now ~inflight_bytes:t.inflight_bytes;
  trace_send t ~now ~seq ~retransmit;
  (* Drops surface later through RACK/RTO, exactly as on a real path. *)
  ignore (Dumbbell.send t.net packet);
  if Sim.is_null t.rto_handle then arm_rto t

and try_send t =
  let now = Sim.now t.sim in
  let cwnd = t.cc.Cc.cwnd_bytes () in
  let rate = t.cc.Cc.pacing_rate () in
  if Float.is_nan rate then begin
    (* ACK-clocked: fill the window. *)
    let continue = ref true in
    while !continue && float_of_int (t.inflight_bytes + t.mss) <= cwnd do
      continue := send_one t
    done
  end
  else if rate <= 0.0 then ()
  else if float_of_int (t.inflight_bytes + t.mss) <= cwnd then begin
    if now >= t.fs.next_send_time then begin
      if send_one t then begin
        t.fs.next_send_time <-
          Float.max t.fs.next_send_time now +. (float_of_int t.mss /. rate);
        schedule_pacer t
      end
    end
    else schedule_pacer t
  end

(* Returns false when there is nothing (left) to send. *)
and send_one t =
  if not (Queue.is_empty t.retx_queue) then begin
    let seq = Queue.pop t.retx_queue in
    let s = seg t seq in
    (* Skip stale retransmit requests (acked meanwhile). *)
    if s.acked then send_one t
    else begin
      transmit t ~seq ~retransmit:true;
      true
    end
  end
  else if t.next_seq >= t.seg_limit then false
  else begin
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    transmit t ~seq ~retransmit:false;
    true
  end

and schedule_pacer t =
  if Sim.is_null t.pacing_handle then begin
    let now = Sim.now t.sim in
    let delay = Float.max 0.0 (t.fs.next_send_time -. now) in
    t.pacing_handle <- Sim.schedule t.sim ~delay t.pacer_cb
  end

(* Process the arrival of the ACK generated by the (unique) reception of
   [trig]. *)
let on_ack_packet t (trig : Packet.t) =
  if t.finished then begin
    (* A late copy of an already-delivered segment arriving after the flow
       completed (or was deactivated): the slot may already host another
       flow, so nothing here may be touched — just recycle the packet. *)
    if t.pk_pool_len < Array.length t.pk_pool then begin
      t.pk_pool.(t.pk_pool_len) <- trig;
      t.pk_pool_len <- t.pk_pool_len + 1
    end
  end
  else begin
  let now = Sim.now t.sim in
  let s = seg t trig.seq in
  (* Any ACK for an unacked segment means the receiver holds the data,
     whichever transmission got through — and that the path delivers, so
     the RTO backoff resets. *)
  t.rto_backoff <- 0;
  let first_delivery = not s.acked in
  let rtt_valid = s.retx_count = 0 in
  if first_delivery then begin
    s.acked <- true;
    t.fs.delivered <- t.fs.delivered +. float_of_int t.mss;
    t.fs.delivered_time <- now;
    (* Acked data stops counting in flight, however many copies of it were
       outstanding and whichever of them got through. *)
    t.inflight_bytes <- t.inflight_bytes - s.counted_bytes;
    s.counted_bytes <- 0
  end;
  trace_ack t ~now ~seq:trig.seq ~rtt_sample:(now -. trig.sent_time);
  (* Advance the cumulative ACK point, collecting old state. *)
  advance_cum_ack t;
  (* RACK: every segment sent before [trig] and still unacked is lost. *)
  let newly_lost = reap_lost t ~now ~trig_sent:trig.sent_time 0 in
  (* RTT estimators (Karn's rule: skip retransmitted segments). *)
  let rtt_sample = now -. trig.sent_time in
  if rtt_valid then begin
    if Float.is_nan t.fs.srtt then begin
      t.fs.srtt <- rtt_sample;
      t.fs.rttvar <- rtt_sample /. 2.0
    end
    else begin
      t.fs.rttvar <-
        (0.75 *. t.fs.rttvar) +. (0.25 *. Float.abs (t.fs.srtt -. rtt_sample));
      t.fs.srtt <- (0.875 *. t.fs.srtt) +. (0.125 *. rtt_sample)
    end;
    if rtt_sample < t.fs.min_rtt then t.fs.min_rtt <- rtt_sample
  end;
  (* Loss-round bookkeeping: one CC notification per recovery episode. *)
  if newly_lost > 0 then begin
    if not t.in_recovery then begin
      t.in_recovery <- true;
      t.recovery_high <- t.next_seq;
      trace_recovery_enter t ~now ~via_timeout:false
        ~lost_bytes:(newly_lost * t.mss);
      t.cc.Cc.on_loss
        ({
           Cc.now = now;
           lost_bytes = newly_lost * t.mss;
           inflight_bytes = t.inflight_bytes;
           via_timeout = false;
         }
        [@simlint.alloc_ok "one loss notification record per recovery episode"])
    end
  end;
  if t.in_recovery && t.cum_ack >= t.recovery_high then begin
    t.in_recovery <- false;
    match t.trace with
    | None -> ()
    | Some tr -> Tr.emit tr ~time:now ~flow:t.flow Tr.Recovery_exit
  end;
  (* Round accounting and CC ACK notification for first-time deliveries. *)
  if first_delivery then begin
    let round_start = trig.delivered >= t.fs.next_round_delivered in
    if round_start then begin
      t.round <- t.round + 1;
      t.fs.next_round_delivered <- t.fs.delivered
    end;
    let interval = now -. trig.delivered_time in
    let delivery_rate =
      if interval > 0.0 then (t.fs.delivered -. trig.delivered) /. interval
      else 0.0
    in
    let rtt_for_cc =
      if rtt_valid then rtt_sample
      else if Float.is_nan t.fs.srtt then rtt_sample
      else t.fs.srtt
    in
    let a = t.ack_scratch in
    a.Cc.f.Cc.now <- now;
    a.Cc.f.Cc.rtt_sample <- rtt_for_cc;
    a.Cc.f.Cc.delivered <- t.fs.delivered;
    a.Cc.f.Cc.delivery_rate <- delivery_rate;
    a.Cc.acked_bytes <- t.mss;
    a.Cc.rate_app_limited <- trig.app_limited;
    a.Cc.inflight_bytes <- t.inflight_bytes;
    a.Cc.round <- t.round;
    a.Cc.round_start <- round_start;
    t.cc.Cc.on_ack a
  end;
  note_cc_state t;
  if completed t then begin
    if not (Sim.is_null t.rto_handle) then begin
      Sim.cancel t.sim t.rto_handle;
      t.rto_handle <- Sim.null_handle
    end;
    if not (Sim.is_null t.pacing_handle) then begin
      Sim.cancel t.sim t.pacing_handle;
      t.pacing_handle <- Sim.null_handle
    end;
    (* Transition to [finished] exactly once: the completion event carries
       the FCT, and the owner's callback may tear the flow down and rebind
       this slot, so it runs after all per-ACK state updates. *)
    t.finished <- true;
    t.completion_time <- now;
    trace_flow_complete t ~now;
    t.on_complete ()
  end
  else begin
    arm_rto t;
    try_send t
  end;
  (* [trig] has left the network (its delivery popped it from the ACK lane)
     and every use above copied values out, so it can be recycled. *)
  if t.pk_pool_len < Array.length t.pk_pool then begin
    t.pk_pool.(t.pk_pool_len) <- trig;
    t.pk_pool_len <- t.pk_pool_len + 1
  end
  end

let[@simlint.alloc_ok "one bounds tuple per slot (re)activation"] limits
    ~mss ~data_limit_bytes ~who =
  match data_limit_bytes with
  | None -> (max_int, -1)
  | Some bytes ->
    if bytes <= 0 then invalid_arg (who ^ ": data_limit_bytes");
    ((bytes + mss - 1) / mss, bytes)

let create ~net ~flow ~cc ?(mss = Sim_engine.Units.mss)
    ?(start_time = Sim_engine.Units.seconds 0.0)
    ?data_limit_bytes ?on_complete ?trace () =
  let sim = Dumbbell.sim net in
  let seg_limit, size_limit_bytes =
    limits ~mss ~data_limit_bytes ~who:"Sender.create"
  in
  let t =
    {
      sim;
      net;
      flow;
      mss;
      cc;
      seg_limit;
      size_limit_bytes;
      trace;
      next_seq = 0;
      cum_ack = 0;
      segs = Hashtbl.create 1024;
      o_seqs = Array.make 256 0;
      o_times = Array.make 256 0.0;
      o_head = 0;
      o_len = 0;
      retx_queue = Queue.create ();
      pk_pool = Array.make 512 Packet.dummy;
      pk_pool_len = 0;
      inflight_bytes = 0;
      fs =
        {
          delivered = 0.0;
          delivered_time = 0.0;
          next_round_delivered = 0.0;
          srtt = nan;
          rttvar = 0.0;
          min_rtt = infinity;
          next_send_time = 0.0;
        };
      round = 0;
      in_recovery = false;
      recovery_high = 0;
      ack_scratch =
        {
          Cc.f =
            {
              Cc.now = 0.0;
              rtt_sample = 0.0;
              delivered = 0.0;
              delivery_rate = 0.0;
            };
          acked_bytes = 0;
          rate_app_limited = false;
          inflight_bytes = 0;
          round = 0;
          round_start = false;
        };
      rto_handle = Sim.null_handle;
      rto_backoff = 0;
      rto_cb = ignore;
      pacing_handle = Sim.null_handle;
      pacer_cb = ignore;
      last_cc_state = cc.Cc.state ();
      lost_segments = 0;
      retransmitted_segments = 0;
      finished = false;
      activation_time = nan;
      completion_time = nan;
      on_complete = (match on_complete with None -> ignore | Some f -> f);
      reverse_delay = 0.0;
      recv_cb = ignore;
      start_handle = Sim.null_handle;
      start_cb = ignore;
    }
  in
  t.rto_cb <- (fun () -> on_rto t);
  t.pacer_cb <-
    (fun () ->
      t.pacing_handle <- Sim.null_handle;
      try_send t);
  (* Receiver: each arriving data packet generates one ACK that reaches the
     sender after the flow's reverse-path delay. The reverse delay is a
     per-flow constant (it is re-read per packet only so [rebind] can retune
     it between tenants), so ACK arrivals are FIFO and ride a calendar
     lane. *)
  t.reverse_delay <- (Dumbbell.reverse_delay net ~flow :> float);
  let ack_lane =
    Sim.lane sim ~dummy:Packet.dummy
      ~deliver:(fun packet -> on_ack_packet t packet)
  in
  t.recv_cb <-
    (fun packet ->
      Sim.schedule_packet sim ack_lane ~delay:t.reverse_delay packet);
  Dumbbell.set_receiver net ~flow t.recv_cb;
  t.start_cb <-
    (fun () ->
      t.start_handle <- Sim.null_handle;
      let now = Sim.now sim in
      t.activation_time <- now;
      t.fs.delivered_time <- now;
      trace_flow_start t ~now;
      try_send t);
  t.start_handle <- Sim.schedule sim ~delay:(start_time :> float) t.start_cb;
  t

let deactivate t =
  if not t.finished then begin
    if not (Sim.is_null t.start_handle) then begin
      Sim.cancel t.sim t.start_handle;
      t.start_handle <- Sim.null_handle
    end;
    if not (Sim.is_null t.rto_handle) then begin
      Sim.cancel t.sim t.rto_handle;
      t.rto_handle <- Sim.null_handle
    end;
    if not (Sim.is_null t.pacing_handle) then begin
      Sim.cancel t.sim t.pacing_handle;
      t.pacing_handle <- Sim.null_handle
    end;
    t.finished <- true
  end

(* Reset every piece of per-flow state while keeping the allocated
   containers (segment table, order ring, retransmit queue, packet pool,
   scratch records, timer callbacks, ACK lane): in steady-state churn the
   arrival path allocates only the tenant's CC instance and its segment
   bookkeeping, never the slot machinery. *)
let rebind t ~flow ~cc ?data_limit_bytes () =
  if not t.finished then
    invalid_arg "Sender.rebind: slot still hosts an active flow";
  let seg_limit, size_limit_bytes =
    limits ~mss:t.mss ~data_limit_bytes ~who:"Sender.rebind"
  in
  t.flow <- flow;
  t.cc <- cc;
  t.seg_limit <- seg_limit;
  t.size_limit_bytes <- size_limit_bytes;
  t.next_seq <- 0;
  t.cum_ack <- 0;
  Hashtbl.clear t.segs;
  t.o_head <- 0;
  t.o_len <- 0;
  Queue.clear t.retx_queue;
  t.inflight_bytes <- 0;
  t.fs.delivered <- 0.0;
  t.fs.delivered_time <- 0.0;
  t.fs.next_round_delivered <- 0.0;
  t.fs.srtt <- nan;
  t.fs.rttvar <- 0.0;
  t.fs.min_rtt <- infinity;
  t.fs.next_send_time <- 0.0;
  t.round <- 0;
  t.in_recovery <- false;
  t.recovery_high <- 0;
  t.rto_backoff <- 0;
  t.last_cc_state <- cc.Cc.state ();
  t.lost_segments <- 0;
  t.retransmitted_segments <- 0;
  t.completion_time <- nan;
  (* The slot's ACK lane is FIFO; a tenant with a different reverse delay
     would let a later flow's ACK overtake an earlier one. Enforce, rather
     than document, the homogeneity requirement. *)
  let reverse = (Dumbbell.reverse_delay t.net ~flow :> float) in
  if
    Float.abs (reverse -. t.reverse_delay) > 1e-12
    && not (Float.is_nan t.activation_time) (* slot was used before *)
  then invalid_arg "Sender.rebind: tenants of one slot must share an RTT";
  t.reverse_delay <- reverse;
  Dumbbell.set_receiver t.net ~flow t.recv_cb;
  (* Activate immediately: rebinding happens at the new flow's arrival
     instant. *)
  let now = Sim.now t.sim in
  t.finished <- false;
  t.activation_time <- now;
  t.fs.delivered_time <- now;
  trace_flow_start t ~now;
  try_send t
