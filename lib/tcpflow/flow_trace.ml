module Tr = Sim_engine.Trace

type sample = {
  time : float;
  cwnd_bytes : float;
  inflight_bytes : int;
  pacing_rate : float option;
  delivered_bytes : float;
  cc_state : string;
}

type t = {
  sim : Sim_engine.Sim.t;
  sender : Sender.t;
  period : float;
  trace : Tr.t;
  mutable samples : sample list;  (* newest first *)
  cwnd : Sim_engine.Timeseries.t;
  mutable running : bool;
  mutable tick_cb : unit -> unit;
      (* Allocated once; rescheduling reuses it instead of closing over [t]
         afresh every period. *)
}

(* The tick only *emits* a [Cc_sample] event; the tracer's own sample list
   and cwnd series fill in through its hub subscription, so the event
   stream is the single data path and any other sink on the hub (JSONL
   writer, metrics rollup) sees exactly what the tracer records. *)
let sample t =
  let now = Sim_engine.Sim.now t.sim in
  let cc = Sender.cc t.sender in
  Tr.emit t.trace ~time:now ~flow:(Sender.flow t.sender)
    (Tr.Cc_sample
       {
         cwnd_bytes = cc.Cca.Cc_types.cwnd_bytes ();
         inflight_bytes = Sender.inflight_bytes t.sender;
         pacing_rate =
           (* The CCA API is nan-sentinel (hot path); the trace schema keeps
              the option. *)
           (let r = cc.Cca.Cc_types.pacing_rate () in
            if Float.is_nan r then None else Some r);
         delivered_bytes = Sender.delivered_bytes t.sender;
         cc_state = cc.Cca.Cc_types.state ();
       })

let tick t =
  if t.running then begin
    sample t;
    ignore (Sim_engine.Sim.schedule t.sim ~delay:t.period t.tick_cb)
  end

let attach ?trace ~sim ~sender ~period () =
  if period <= 0.0 then invalid_arg "Flow_trace.attach: period";
  let hub = match trace with Some hub -> hub | None -> Tr.create () in
  let t =
    {
      sim;
      sender;
      period;
      trace = hub;
      samples = [];
      cwnd = Sim_engine.Timeseries.create ();
      running = true;
      tick_cb = ignore;
    }
  in
  t.tick_cb <- (fun () -> tick t);
  let flow = Sender.flow sender in
  Tr.subscribe hub (fun (r : Tr.record) ->
      if r.flow = flow then
        match r.event with
        | Tr.Cc_sample
            { cwnd_bytes; inflight_bytes; pacing_rate; delivered_bytes;
              cc_state } ->
          let s =
            { time = r.time; cwnd_bytes; inflight_bytes; pacing_rate;
              delivered_bytes; cc_state }
          in
          t.samples <- s :: t.samples;
          Sim_engine.Timeseries.record t.cwnd ~time:r.time s.cwnd_bytes
        | _ -> ());
  tick t;
  t

let stop t = t.running <- false
let samples t = List.rev t.samples
let cwnd_series t = t.cwnd
let trace t = t.trace

let throughput_between t ~from_ ~until =
  if until <= from_ then nan
  else begin
    (* Samples are newest first: the first sample at/before an edge is the
       last one taken in that window. One walk finds the [until] edge and
       then continues — over the same suffix — to the [from_] edge, so
       repeated queries stay linear in the sample count. *)
    let rec last_at_or_before edge = function
      | [] -> None
      | s :: older ->
        if s.time <= edge then Some (s, older) else last_at_or_before edge older
    in
    match last_at_or_before until t.samples with
    | None -> nan
    | Some (b, older) -> (
      match last_at_or_before from_ (b :: older) with
      | Some (a, _) when b.time > a.time ->
        (b.delivered_bytes -. a.delivered_bytes)
        /. (b.time -. a.time) *. Sim_engine.Units.bits_per_byte
      | _ -> nan)
  end

let to_csv t =
  let line s =
    Printf.sprintf "%.6f,%.0f,%d,%s,%.0f,%s" s.time s.cwnd_bytes
      s.inflight_bytes
      (match s.pacing_rate with
      | Some r -> Printf.sprintf "%.0f" r
      | None -> "")
      s.delivered_bytes s.cc_state
  in
  String.concat "\n"
    ("time,cwnd_bytes,inflight_bytes,pacing_Bps,delivered_bytes,state"
    :: List.map line (samples t))
  ^ "\n"

let state_occupancy t =
  let total = List.length t.samples in
  if total = 0 then []
  else
    List.fold_left
      (fun counts s ->
        let n = Option.value ~default:0 (List.assoc_opt s.cc_state counts) in
        (s.cc_state, n + 1) :: List.remove_assoc s.cc_state counts)
      [] t.samples
    |> List.map (fun (state, n) ->
           (state, float_of_int n /. float_of_int total))
    |> List.sort (fun (sa, a) (sb, b) ->
           match compare b a with 0 -> compare sa sb | c -> c)
