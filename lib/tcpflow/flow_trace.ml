type sample = {
  time : float;
  cwnd_bytes : float;
  inflight_bytes : int;
  pacing_rate : float option;
  delivered_bytes : float;
  cc_state : string;
}

type t = {
  sim : Sim_engine.Sim.t;
  sender : Sender.t;
  period : float;
  mutable samples : sample list;  (* newest first *)
  cwnd : Sim_engine.Timeseries.t;
  mutable running : bool;
}

let sample t =
  let now = Sim_engine.Sim.now t.sim in
  let cc = Sender.cc t.sender in
  let s =
    {
      time = now;
      cwnd_bytes = cc.Cca.Cc_types.cwnd_bytes ();
      inflight_bytes = Sender.inflight_bytes t.sender;
      pacing_rate = cc.Cca.Cc_types.pacing_rate ();
      delivered_bytes = Sender.delivered_bytes t.sender;
      cc_state = cc.Cca.Cc_types.state ();
    }
  in
  t.samples <- s :: t.samples;
  Sim_engine.Timeseries.record t.cwnd ~time:now s.cwnd_bytes

let rec tick t () =
  if t.running then begin
    sample t;
    ignore (Sim_engine.Sim.schedule t.sim ~delay:t.period (tick t))
  end

let attach ~sim ~sender ~period =
  if period <= 0.0 then invalid_arg "Flow_trace.attach: period";
  let t =
    {
      sim;
      sender;
      period;
      samples = [];
      cwnd = Sim_engine.Timeseries.create ();
      running = true;
    }
  in
  tick t ();
  t

let stop t = t.running <- false
let samples t = List.rev t.samples
let cwnd_series t = t.cwnd

let throughput_between t ~from_ ~until =
  if until <= from_ then nan
  else begin
    (* Last sample at/before each edge. *)
    let at edge =
      List.fold_left
        (fun acc s -> if s.time <= edge then Some s else acc)
        None (samples t)
    in
    match (at from_, at until) with
    | Some a, Some b when b.time > a.time ->
      (b.delivered_bytes -. a.delivered_bytes)
      /. (b.time -. a.time) *. Sim_engine.Units.bits_per_byte
    | _ -> nan
  end

let to_csv t =
  let line s =
    Printf.sprintf "%.6f,%.0f,%d,%s,%.0f,%s" s.time s.cwnd_bytes
      s.inflight_bytes
      (match s.pacing_rate with
      | Some r -> Printf.sprintf "%.0f" r
      | None -> "")
      s.delivered_bytes s.cc_state
  in
  String.concat "\n"
    ("time,cwnd_bytes,inflight_bytes,pacing_Bps,delivered_bytes,state"
    :: List.map line (samples t))
  ^ "\n"

let state_occupancy t =
  let total = List.length t.samples in
  if total = 0 then []
  else
    List.fold_left
      (fun counts s ->
        let n = Option.value ~default:0 (List.assoc_opt s.cc_state counts) in
        (s.cc_state, n + 1) :: List.remove_assoc s.cc_state counts)
      [] t.samples
    |> List.map (fun (state, n) ->
           (state, float_of_int n /. float_of_int total))
    |> List.sort (fun (sa, a) (sb, b) ->
           match compare b a with 0 -> compare sa sb | c -> c)
