(** Open-loop flow churn: drives a {!Workload.Schedule.t} through a pool of
    reusable {!Sender} slots on a shared dumbbell.

    Each schedule item becomes a fresh, monotonically increasing flow id
    ([base_flow + index] — ids are never reused, so traces and audits stay
    unambiguous), attached to the network at its arrival instant and torn
    down when its last byte is acknowledged. Sender slots are pooled: a
    completing flow releases its slot (LIFO), and the next arrival rebinds
    it instead of allocating transport state, so steady-state churn
    allocates only per-tenant CC state. All churn flows share one CCA and
    one base RTT — a requirement of slot reuse (the per-slot ACK lane is
    FIFO) — matching the open-loop short-flow population of the workload
    experiments.

    Determinism: arrivals are chained sim events (one pending arrival at a
    time), per-tenant CC rng streams are split from the sim rng in event
    order, and pool reuse order is a function of completion order — all
    byte-stable for a fixed seed, independent of [--jobs]. *)

type t

val create :
  ?trace:Sim_engine.Trace.t ->
  ?mss:int ->
  net:Netsim.Dumbbell.t ->
  base_flow:int ->
  cca:string ->
  base_rtt:Sim_engine.Units.seconds ->
  schedule:Workload.Schedule.t ->
  unit ->
  t
(** Registers the first arrival with the dumbbell's simulator; nothing
    happens until the sim runs. [base_flow] must leave the static flows'
    ids below it. *)

val schedule : t -> Workload.Schedule.t

val arrived : t -> int
(** Transfers whose arrival instant has passed (flows attached so far). *)

val completed : t -> int
(** Transfers fully acknowledged. *)

val active : t -> int
(** [arrived - completed]: flows currently holding a slot. *)

val slots_created : t -> int
(** Peak concurrency: slots allocated over the run (pool high-water). *)

val delivered_bytes : t -> float
(** Total bytes delivered by completed transfers. *)

val fcts : t -> float array
(** Flow-completion time per schedule item, in schedule order; [nan] for
    transfers the horizon cut off (or that have not yet completed). The
    returned array is live — callers must not mutate it. *)

val flow_of_item : t -> int -> int
val item_of_flow : t -> flow:int -> int
val is_churn_flow : t -> flow:int -> bool

val teardown : t -> unit
(** Deactivate still-running flows (cancelling their timers) and
    unregister them from the dumbbell; their completion records stay
    [nan]. Call after the measurement horizon. *)
