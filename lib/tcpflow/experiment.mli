(** Packet-level experiment runner: the in-simulator equivalent of the
    paper's testbed runs.

    An experiment places a set of flows (each with a CCA name from
    {!Cca.Registry} and a base RTT) on one bottleneck, runs for a simulated
    duration, and reports per-flow goodput plus the queue statistics the
    paper's model reasons about (mean queuing delay, per-class buffer
    occupancy, CUBIC's minimum/maximum occupancy). *)

type flow_config = {
  cca : string;  (** Registry name, e.g. ["cubic"] or ["bbr"]. *)
  base_rtt : Sim_engine.Units.seconds;  (** Two-way propagation delay. *)
  start_time : Sim_engine.Units.seconds;  (** When the flow starts sending. *)
}

val flow_config :
  ?start_time:Sim_engine.Units.seconds ->
  ?base_rtt:Sim_engine.Units.seconds ->
  string ->
  flow_config
(** Convenience constructor; default RTT 40 ms, start 0. *)

type aqm =
  | Tail_drop  (** The paper's drop-tail setting. *)
  | Red_default  (** RED with {!Netsim.Droptail_queue.red_defaults}. *)

type workload = {
  wl_arrival : Workload.Arrival.t;
  wl_sizes : Workload.Dist.t;
  wl_cca : string;  (** CCA every short flow runs. *)
  wl_rtt : Sim_engine.Units.seconds;  (** Base RTT of every short flow. *)
}
(** An open-loop short-flow population sharing the bottleneck with the
    static flows: a {!Workload.Schedule.t} is generated from the config
    seed at setup (workload stream split first, so the schedule is
    independent of the static flow list) and driven by {!Churn}. *)

type config = {
  rate_bps : Sim_engine.Units.rate_bps;  (** Bottleneck capacity. *)
  buffer_bytes : int;  (** Bottleneck buffer size. *)
  flows : flow_config list;
  duration : Sim_engine.Units.seconds;  (** Total simulated time. *)
  warmup : Sim_engine.Units.seconds;
      (** Measurement starts here (excludes slow start). *)
  seed : int;
  sample_period : Sim_engine.Units.seconds;  (** Queue sampling period. *)
  aqm : aqm;  (** Bottleneck drop policy. *)
  workload : workload option;  (** Open-loop churn population, if any. *)
}

val default_config : config
(** 100 Mbps, 40 ms, 10 BDP buffer, 1 CUBIC vs 1 BBR, 40 s run with 10 s
    warm-up, seed 1, 1 ms sampling. *)

val config :
  ?aqm:aqm ->
  ?warmup:Sim_engine.Units.seconds ->
  ?sample_period:Sim_engine.Units.seconds ->
  ?seed:int ->
  ?workload:workload ->
  rate_bps:Sim_engine.Units.rate_bps ->
  buffer_bytes:int ->
  duration:Sim_engine.Units.seconds ->
  flow_config list ->
  config
(** Labelled builder, the preferred way to assemble a config. Defaults:
    drop-tail, no warm-up, 1 ms sampling, seed 1, no workload. Raises
    [Invalid_argument] on an empty flow list unless a workload is given. *)

val digest : config -> string
(** Hex digest of the full config (every field participates): the
    content-address under which {!Sim_engine.Exec.Cache} keys a run's
    {!result}. *)

val buffer_bytes_of_bdp :
  rate_bps:Sim_engine.Units.rate_bps ->
  rtt:Sim_engine.Units.seconds ->
  bdp:float ->
  int
(** Buffer size for a multiple [bdp] of the bandwidth-delay product,
    at least one MSS. *)

type flow_result = {
  flow_id : int;
  flow_cca : string;
  flow_rtt : float;
  throughput_bps : float;  (** Goodput over the measurement window. *)
  flow_lost_segments : int;
  flow_retransmitted : int;
  flow_min_rtt : float;
}

type completion = {
  cp_item : int;  (** Position in the workload schedule. *)
  cp_arrival : float;  (** Arrival instant (sim seconds). *)
  cp_size : int;  (** Transfer size in bytes. *)
  cp_fct : float;  (** Flow-completion time in seconds. *)
}
(** Per-flow completion record for one open-loop transfer. *)

type result = {
  config : config;
  per_flow : flow_result list;
  queuing_delay : float;  (** Time-weighted mean over the window, seconds. *)
  queue_mean_bytes : float;
  class_mean_bytes : (string * float) list;  (** Per-CCA occupancy means. *)
  class_min_bytes : (string * float) list;  (** Per-CCA occupancy minima. *)
  class_max_bytes : (string * float) list;
  drops : int;
  utilization : float;  (** Whole-run link utilization (approximate). *)
  workload_arrived : int;  (** Short flows that arrived before the horizon. *)
  workload_completed : int;  (** Short flows fully acknowledged. *)
  workload_delivered_bytes : float;
      (** Bytes delivered by completed short flows. *)
  completions : completion list;
      (** Completion records in schedule order (cut-off flows omitted);
          empty without a workload. *)
}

val run : ?trace:Sim_engine.Trace.t -> config -> result
(** When [trace] is given, the dumbbell, every sender, and a per-flow
    {!Flow_trace} all emit into it, so a sink subscribed before [run] sees
    the full event stream. [trace] deliberately does not participate in
    {!digest}: tracing must not perturb cache keys or results.

    Equivalent to [finish (setup ?trace config)]. *)

type live
(** A fully wired but not-yet-run experiment: the simulator, network and
    senders of one {!config}, exposed so harnesses (the fuzz driver, the
    invariant auditor) can attach probes and cross-check live component
    state before and during the run. *)

val setup : ?trace:Sim_engine.Trace.t -> config -> live
(** Build the simulator, bottleneck, senders, samplers and (when traced)
    flow tracers for [config] without advancing the clock. Raises
    [Invalid_argument] when [config.warmup >= config.duration]. *)

val live_sim : live -> Sim_engine.Sim.t
val live_net : live -> Netsim.Dumbbell.t
val live_senders : live -> Sender.t array
(** Senders in flow-id order: [live_senders l).(i)] drives flow [i]. *)

val live_churn : live -> Churn.t option
(** The open-loop churn driver, when the config carries a workload. *)

val finish : live -> result
(** Run the simulation to [config.duration] (a no-op if a caller already
    advanced the clock there via {!live_sim}) and compute the {!result},
    stopping the samplers and tracers. Call at most once. *)

val throughput_of_cca : result -> string -> float list
(** Per-flow goodputs (bits/s) of all flows running the named CCA. *)

val mean_throughput_of_cca : result -> string -> float
(** Mean of {!throughput_of_cca}; [nan] when no flow runs that CCA. *)

val aggregate_throughput_of_cca : result -> string -> float
