(** Runtime invariant auditor: a {!Sim_engine.Trace} sink that replays the
    typed event stream against the simulator's conservation laws and flags
    the first record that breaks one.

    The auditor maintains, per flow, a mirror of the transport's in-flight
    accounting reconstructed purely from events ([Send] adds a copy,
    RACK-[Seg_lost] retires one copy, [Rto_fire] retires everything,
    first-time [Ack] retires every copy of the acknowledged segment) and
    compares it against the in-flight total the sender stamps on every
    [Ack] record — any drift between the two is exactly an accounting bug
    in {!Tcpflow.Sender}. Around that core sit the physical-sanity checks:
    timestamps monotone and finite, bottleneck occupancy within capacity,
    per-transmission conservation (acks + drops never exceed sends),
    cumulative delivered bytes monotone, cwnd/pacing positive and below
    configured ceilings, recovery enter/exit strictly alternating, and —
    at {!finalize}, against live component counters — packet conservation
    through the bottleneck queue and the link-busy-time wall-clock bound.

    The catalogue of invariants lives in DESIGN.md §Correctness; tests can
    enumerate it via {!invariant_names}. *)

type violation = {
  invariant : string;  (** Catalogue id, e.g. ["inflight-mismatch"]. *)
  v_time : float;  (** Simulated time of the offending record. *)
  v_flow : int;  (** Flow id, or {!Sim_engine.Trace.link_scope}. *)
  v_index : int;  (** 0-based index of the record in the event stream. *)
  detail : string;  (** Human-readable expected-vs-got diagnostic. *)
}

val violation_to_string : violation -> string
(** One line: [invariant@time flow=N #index: detail] — stable enough to
    compare across a replay. *)

val invariant_names : unit -> string list
(** Every invariant id this auditor can emit, sorted — the machine-readable
    side of the DESIGN.md catalogue (tests assert the two agree). *)

type t

val create :
  ?queue_capacity_bytes:int ->
  ?cwnd_ceiling_bytes:float ->
  ?pacing_ceiling_bps:float ->
  ?max_violations:int ->
  ?lifecycle:bool ->
  unit ->
  t
(** [queue_capacity_bytes] enables the occupancy-bound and tail-drop-cause
    checks; the ceilings (default [infinity]) bound [Cc_sample] cwnd and
    pacing rate; at most [max_violations] (default 16) are retained.

    [lifecycle] (default false) additionally requires every transport event
    to fall inside its flow's activation window: streams from senders that
    emit [Flow_start] must show no [Send]/[Ack]/loss/recovery event before
    it ("lifecycle-event-before-start"). The after-completion half of the
    window check, FCT positivity, one-start-per-flow-id and the
    at-completion conservation check are unconditional — legacy streams
    contain no lifecycle events, so they cannot trip them. *)

val observe : t -> Sim_engine.Trace.record -> unit
(** Feed one record. Violations are recorded, never raised — the auditor
    keeps consuming so one bug cannot hide a later, different one. *)

val attach : t -> Sim_engine.Trace.t -> unit
(** Subscribe {!observe} to a hub ({!Sim_engine.Trace.subscribe_sink});
    closing the hub marks the stream complete. *)

type final = {
  fin_time : float;  (** [Sim.now] when the run stopped. *)
  fin_busy_seconds : float;  (** {!Netsim.Link.busy_seconds}. *)
  fin_queue_bytes : int;
  fin_queue_packets : int;
  fin_link_busy : bool;  (** A packet is mid-serialization. *)
  fin_tx_slack_seconds : float;
      (** Serialization time of one max-size packet at the link rate.
          {!Netsim.Link} accrues busy time at transmission start, so a
          packet in service at shutdown legitimately carries the busy
          counter past wall time by up to this much. *)
  fin_enqueued_packets : int;  (** {!Netsim.Droptail_queue.enqueued_packets}. *)
  fin_dropped_packets : int;  (** {!Netsim.Droptail_queue.drops}. *)
  fin_delivered_packets : int;  (** {!Netsim.Link.delivered_packets}. *)
  fin_inflight_bytes : (int * int) list;
      (** Per flow id, the sender's own in-flight byte count, for the
          event-reconstruction cross-check. *)
  fin_completed_flows : int option;
      (** The lifecycle layer's own completion count ({!Tcpflow.Churn}
          plus any data-limited static flows); when given, it must equal
          the number of [Flow_complete] events ("completion-count"). *)
}

val finalize : t -> final -> unit
(** End-of-run checks against live component state: link busy time within
    wall time, bottleneck packet conservation
    ([sends = enqueued + dropped] and
    [enqueued = delivered + queued + in-service]), drop-event agreement,
    and per-flow reconstructed in-flight equal to the sender's tracker. *)

val records_seen : t -> int

val stream_closed : t -> bool
(** True once the hub this auditor was {!attach}ed to has been closed. *)

val violations : t -> violation list
(** In stream order (the first element is the first violation). *)

val first_violation : t -> violation option
val ok : t -> bool
