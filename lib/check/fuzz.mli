(** The scenario fuzzer: generate → simulate under the invariant auditor →
    shrink failures to minimal scenarios → save byte-for-byte replays.

    Every simulated case runs fully traced with an {!Audit} attached, a
    periodic probe calling {!Tcpflow.Sender.check_inflight_invariant} on
    every sender, and an end-of-run {!Audit.finalize} against the live
    queue/link counters. Cases are pure functions of their scenario, so
    campaigns fan out over {!Sim_engine.Exec} worker domains without
    changing any verdict. *)

type outcome =
  | Pass
  | Violation of Audit.violation
  | Crash of string  (** The simulation raised; the message is the exn. *)

val outcome_to_string : outcome -> string

type fault = {
  fault_name : string;
  fault_apply : Sim_engine.Trace.record -> Sim_engine.Trace.record;
}
(** A deterministic, stateless event-stream corruption, interposed between
    the hub and the auditor. Faults simulate accounting bugs without
    patching the simulator: they validate that the auditor catches a class
    of defect and give the shrinker something real to minimize. *)

val faults : fault list
(** The canonical corruption models: ["inflight"] (skews the in-flight
    count stamped on some ACKs, as an accounting drift would) and
    ["delivered-rewind"] (makes cumulative delivered bytes regress). *)

val fault_named : string -> fault option

val run_scenario : ?fault:fault -> Scenario.t -> outcome
(** Run one scenario under full instrumentation and return its verdict.
    Deterministic: equal scenarios (and fault) yield equal outcomes. *)

val shrink : ?fault:fault -> Scenario.t -> Scenario.t
(** Greedily minimize a failing scenario: repeatedly adopt the first
    {!Scenario.shrink_candidates} variant that still fails (any violation
    or crash counts), until none does or the step budget (64) runs out.
    Returns the input unchanged if it does not fail. *)

type case = {
  case_index : int;  (** Position in the generated batch. *)
  case_scenario : Scenario.t;
  case_outcome : outcome;
}

type campaign = {
  total : int;
  passed : int;
  failures : case list;  (** In batch order; empty on a clean campaign. *)
}

val campaign :
  ?fault:fault -> ?jobs:int -> count:int -> seed:int -> unit -> campaign
(** Generate [count] scenarios from [seed] and run them on [jobs] worker
    domains (default 1). Verdicts are independent of [jobs]. *)

val replay : ?fault:fault -> string -> (Scenario.t * outcome, string) result
(** [replay path] loads a replay file and re-runs it. *)

(** {1 Analytic-backend fuzzing}

    The fluid and ODE backends have no event stream to audit, so their
    campaigns check outcome-level invariants instead: every reported field
    finite, per-flow goodput non-negative and summing to at most capacity
    (1% headroom), the mean queue within the buffer, the outcome exactly
    reproducible on a re-run, and — for single-flow scenarios — fluid/ODE
    parity: both backends re-run with a half-horizon warm-up (excluding
    their differently-modelled startups) must agree on goodput within 10%
    of capacity. Violations are reported as {!Audit.violation}s under the
    [backend-*] invariant ids. *)

val run_scenario_backend : backend:Sim_backend.t -> Scenario.t -> outcome
(** Run one scenario's {!Scenario.to_spec} on the backend and check the
    outcome invariants above. A backend rejection (unsupported CCA in a
    hand-written scenario) is a [Crash]. Deterministic. *)

val shrink_backend : backend:Sim_backend.t -> Scenario.t -> Scenario.t
(** {!shrink} for backend failures; candidate CCA collapse is restricted
    to the backend's supported names. *)

val backend_campaign :
  backend:Sim_backend.t ->
  ?jobs:int ->
  count:int ->
  seed:int ->
  unit ->
  campaign
(** {!campaign} against an analytic backend. Scenario generation is
    restricted to the backend's supported CCAs, so the same seed draws
    different (but still deterministic) batches than the packet
    campaign. *)

val replay_backend :
  backend:Sim_backend.t -> string -> (Scenario.t * outcome, string) result
