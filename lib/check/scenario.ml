module Rng = Sim_engine.Rng
module Units = Sim_engine.Units
module E = Tcpflow.Experiment

type flow = { f_cca : string; f_rtt_ms : float; f_start_s : float }

type aqm = Tail | Red

type arrival_kind = Poisson_arrivals | Pareto_arrivals

type workload = {
  w_kind : arrival_kind;
  w_load : float;
  w_mean_kb : float;
}

type t = {
  seed : int;
  mbps : float;
  buffer_bdp : float;
  base_rtt_ms : float;
  duration_s : float;
  aqm : aqm;
  flows : flow list;
  workload : workload option;
}

(* Quantize to 1e-4: %.4f then prints every float losslessly, so the
   replay-file round-trip is byte-for-byte. *)
let q x = Float.round (x *. 1e4) /. 1e4

(* The short-flow sizes a scenario workload denotes: uniform over
   [mean/2, 3*mean/2), so runtimes stay bounded (no heavy tail) while the
   mean matches the serialized [w_mean_kb]. *)
let workload_sizes w =
  let mean_bytes = int_of_float (w.w_mean_kb *. 1000.0) in
  Workload.Dist.Uniform
    { lo_bytes = max 1 (mean_bytes / 2); hi_bytes = mean_bytes * 3 / 2 }

let to_workload t w =
  let sizes = workload_sizes w in
  let mean_size_bytes = Workload.Dist.mean_bytes sizes in
  let rate_bps = (Units.mbps t.mbps :> float) in
  let arrival =
    match w.w_kind with
    | Poisson_arrivals ->
      Workload.Arrival.poisson_of_load ~load:w.w_load ~rate_bps
        ~mean_size_bytes
    | Pareto_arrivals ->
      (* Same mean arrival rate as the Poisson reading, bursty gaps. *)
      let mean_gap_s = 8.0 *. mean_size_bytes /. (w.w_load *. rate_bps) in
      Workload.Arrival.Pareto_gaps { mean_gap_s; alpha = 1.5 }
  in
  {
    E.wl_arrival = arrival;
    wl_sizes = sizes;
    (* Short flows run the first flow's CCA: keeps the churn population
       homogeneous (one slot pool, one RTT) without a new axis. *)
    wl_cca = (List.hd t.flows).f_cca;
    wl_rtt = Units.ms t.base_rtt_ms;
  }

let to_config t =
  let rate_bps = Units.mbps t.mbps in
  let rtt = Units.ms t.base_rtt_ms in
  let workload = Option.map (to_workload t) t.workload in
  E.config
    ~aqm:(match t.aqm with Tail -> E.Tail_drop | Red -> E.Red_default)
    ~seed:t.seed ~rate_bps
    ~buffer_bytes:(E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:t.buffer_bdp)
    ~duration:(Units.seconds t.duration_s)
    ~sample_period:(Units.ms 5.0) ?workload
    (List.map
       (fun f ->
         E.flow_config
           ~base_rtt:(Units.ms f.f_rtt_ms)
           ~start_time:(Units.seconds f.f_start_s)
           f.f_cca)
       t.flows)

(* The backend-neutral reading of a scenario. Start times and the AQM are
   packet-level refinements with no analytic counterpart: the spec keeps
   every flow's CCA and RTT but has all flows start at 0 on a drop-tail
   bottleneck, which is what the analytic backends model. *)
let to_spec t =
  let rate_bps = Units.mbps t.mbps in
  let rtt = Units.ms t.base_rtt_ms in
  Sim_backend.spec ~seed:t.seed ~rate_bps
    ~buffer_bytes:
      (Units.bytes_of_int (E.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:t.buffer_bdp))
    ~duration:(Units.seconds t.duration_s)
    (List.map
       (fun f -> { Sim_backend.cca = f.f_cca; rtt = Units.ms f.f_rtt_ms })
       t.flows)

let generate ?ccas rng =
  let duration_s = q (Rng.uniform_in rng ~lo:3.0 ~hi:8.0) in
  let n_flows = 1 + Rng.int rng 5 in
  let names =
    match ccas with
    | None -> Cca.Registry.names ()
    | Some [] -> invalid_arg "Scenario.generate: empty cca filter"
    | Some names -> names
  in
  let flows =
    List.init n_flows (fun _ ->
        {
          f_cca = List.nth names (Rng.int rng (List.length names));
          f_rtt_ms = q (Rng.uniform_in rng ~lo:5.0 ~hi:80.0);
          f_start_s = q (Rng.uniform_in rng ~lo:0.0 ~hi:(duration_s /. 3.0));
        })
  in
  (* Roughly a quarter of scenarios carry an open-loop churn population, so
     every campaign also exercises the lifecycle layer (slot reuse,
     mid-sim attach/detach) without doubling the average runtime. *)
  let workload =
    if Rng.int rng 4 = 0 then
      Some
        {
          w_kind =
            (if Rng.int rng 4 = 0 then Pareto_arrivals else Poisson_arrivals);
          w_load = q (Rng.uniform_in rng ~lo:0.05 ~hi:0.5);
          w_mean_kb = q (Rng.uniform_in rng ~lo:30.0 ~hi:300.0);
        }
    else None
  in
  {
    seed = 1 + Rng.int rng 1_000_000_000;
    mbps = q (Rng.uniform_in rng ~lo:5.0 ~hi:50.0);
    buffer_bdp = q (Rng.uniform_in rng ~lo:0.25 ~hi:16.0);
    base_rtt_ms = q (Rng.uniform_in rng ~lo:5.0 ~hi:80.0);
    duration_s;
    aqm = (if Rng.int rng 8 = 0 then Red else Tail);
    flows;
    workload;
  }

let generate_batch ?ccas ~seed ~count () =
  let rng = Rng.create seed in
  List.init count (fun _ -> generate ?ccas (Rng.split rng))

(* ---------- shrinking ---------- *)

let ne a b = Float.compare a b <> 0

let without_flow t i =
  { t with flows = List.filteri (fun j _ -> j <> i) t.flows }

let shrink_candidates ?ccas t =
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  (* Simplest CCA to collapse the mix to: reno when the allowed set (all
     of the registry by default, a backend's supported names when
     shrinking a backend-campaign failure) contains it, cubic otherwise. *)
  let simplest =
    match ccas with
    | None -> Some "reno"
    | Some allowed ->
      List.find_opt (fun c -> List.mem c allowed) [ "reno"; "cubic" ]
  in
  (* Reversed accumulation: add least-aggressive first so the final list
     leads with the biggest reductions. *)
  (match simplest with
  | Some simplest
    when List.exists (fun f -> not (String.equal f.f_cca simplest)) t.flows ->
    add
      {
        t with
        flows = List.map (fun f -> { f with f_cca = simplest }) t.flows;
      }
  | Some _ | None -> ());
  if ne t.base_rtt_ms 20.0 then add { t with base_rtt_ms = 20.0 };
  if ne t.mbps 10.0 then add { t with mbps = 10.0 };
  if ne t.buffer_bdp 1.0 then
    add
      {
        t with
        buffer_bdp = (if t.buffer_bdp > 2.0 then q (t.buffer_bdp /. 2.0) else 1.0);
      };
  (if List.exists (fun f -> ne f.f_rtt_ms t.base_rtt_ms) t.flows then
     add
       {
         t with
         flows = List.map (fun f -> { f with f_rtt_ms = t.base_rtt_ms }) t.flows;
       });
  (match t.aqm with Red -> add { t with aqm = Tail } | Tail -> ());
  (if List.exists (fun f -> ne f.f_start_s 0.0) t.flows then
     add
       { t with flows = List.map (fun f -> { f with f_start_s = 0.0 }) t.flows });
  if t.duration_s > 1.5 then
    add { t with duration_s = q (Float.max 1.0 (t.duration_s /. 2.0)) };
  (* Fewer/shorter churn flows before dropping the population entirely;
     the outright drop is added last so it leads the candidate list. *)
  (match t.workload with
  | Some w ->
    (match w.w_kind with
    | Pareto_arrivals ->
      add { t with workload = Some { w with w_kind = Poisson_arrivals } }
    | Poisson_arrivals -> ());
    if w.w_mean_kb > 30.0 then
      add
        {
          t with
          workload =
            Some { w with w_mean_kb = q (Float.max 30.0 (w.w_mean_kb /. 2.0)) };
        };
    if w.w_load > 0.05 then
      add
        {
          t with
          workload = Some { w with w_load = q (Float.max 0.05 (w.w_load /. 2.0)) };
        }
  | None -> ());
  if List.length t.flows > 1 then
    List.iteri (fun i _ -> add (without_flow t i)) t.flows;
  (match t.workload with
  | Some _ -> add { t with workload = None }
  | None -> ());
  !candidates

(* ---------- serialization ---------- *)

let header = "sim_check scenario v1"

let aqm_to_string = function Tail -> "tail" | Red -> "red"

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Printf.bprintf b "seed %d\n" t.seed;
  Printf.bprintf b "mbps %.4f\n" t.mbps;
  Printf.bprintf b "buffer_bdp %.4f\n" t.buffer_bdp;
  Printf.bprintf b "base_rtt_ms %.4f\n" t.base_rtt_ms;
  Printf.bprintf b "duration_s %.4f\n" t.duration_s;
  Printf.bprintf b "aqm %s\n" (aqm_to_string t.aqm);
  (match t.workload with
  | Some w ->
    Printf.bprintf b "workload %s %.4f %.4f\n"
      (match w.w_kind with
      | Poisson_arrivals -> "poisson"
      | Pareto_arrivals -> "pareto")
      w.w_load w.w_mean_kb
  | None -> ());
  List.iter
    (fun f ->
      Printf.bprintf b "flow %s %.4f %.4f\n" f.f_cca f.f_rtt_ms f.f_start_s)
    t.flows;
  Buffer.contents b

let of_string s =
  let ( let* ) r f = Result.bind r f in
  let float_field name v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "scenario: bad %s %S" name v)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length (String.trim l) > 0)
  in
  match lines with
  | [] -> Error "scenario: empty file"
  | first :: rest ->
    if not (String.equal (String.trim first) header) then
      Error (Printf.sprintf "scenario: unknown header %S" first)
    else
      let init =
        {
          seed = 0;
          mbps = nan;
          buffer_bdp = nan;
          base_rtt_ms = nan;
          duration_s = nan;
          aqm = Tail;
          flows = [];
          workload = None;
        }
      in
      let* parsed =
        List.fold_left
          (fun acc line ->
            let* t = acc in
            match String.split_on_char ' ' (String.trim line) with
            | [ "seed"; v ] -> (
              match int_of_string_opt v with
              | Some seed when seed > 0 -> Ok { t with seed }
              | _ -> Error (Printf.sprintf "scenario: bad seed %S" v))
            | [ "mbps"; v ] ->
              let* mbps = float_field "mbps" v in
              Ok { t with mbps }
            | [ "buffer_bdp"; v ] ->
              let* buffer_bdp = float_field "buffer_bdp" v in
              Ok { t with buffer_bdp }
            | [ "base_rtt_ms"; v ] ->
              let* base_rtt_ms = float_field "base_rtt_ms" v in
              Ok { t with base_rtt_ms }
            | [ "duration_s"; v ] ->
              let* duration_s = float_field "duration_s" v in
              Ok { t with duration_s }
            | [ "aqm"; "tail" ] -> Ok { t with aqm = Tail }
            | [ "aqm"; "red" ] -> Ok { t with aqm = Red }
            | [ "workload"; kind; load; mean_kb ] -> (
              let* w_load = float_field "workload load" load in
              let* w_mean_kb = float_field "workload mean_kb" mean_kb in
              if w_load <= 0.0 then
                Error "scenario: workload load must be > 0"
              else if w_mean_kb <= 0.0 then
                Error "scenario: workload mean_kb must be > 0"
              else
                match kind with
                | "poisson" ->
                  Ok
                    {
                      t with
                      workload =
                        Some { w_kind = Poisson_arrivals; w_load; w_mean_kb };
                    }
                | "pareto" ->
                  Ok
                    {
                      t with
                      workload =
                        Some { w_kind = Pareto_arrivals; w_load; w_mean_kb };
                    }
                | _ ->
                  Error
                    (Printf.sprintf "scenario: unknown workload kind %S" kind))
            | [ "flow"; cca; rtt; start ] ->
              let* f_rtt_ms = float_field "flow rtt" rtt in
              let* f_start_s = float_field "flow start" start in
              Ok
                {
                  t with
                  flows = t.flows @ [ { f_cca = cca; f_rtt_ms; f_start_s } ];
                }
            | _ -> Error (Printf.sprintf "scenario: bad line %S" line))
          (Ok init) rest
      in
      if parsed.seed = 0 then Error "scenario: missing seed"
      else if Float.is_nan parsed.mbps || parsed.mbps <= 0.0 then
        Error "scenario: missing or non-positive mbps"
      else if Float.is_nan parsed.buffer_bdp || parsed.buffer_bdp <= 0.0 then
        Error "scenario: missing or non-positive buffer_bdp"
      else if Float.is_nan parsed.base_rtt_ms || parsed.base_rtt_ms <= 0.0 then
        Error "scenario: missing or non-positive base_rtt_ms"
      else if Float.is_nan parsed.duration_s || parsed.duration_s <= 0.0 then
        Error "scenario: missing or non-positive duration_s"
      else if parsed.flows = [] then Error "scenario: no flows"
      else begin
        match
          List.find_opt
            (fun f -> Option.is_none (Cca.Registry.find f.f_cca))
            parsed.flows
        with
        | Some f ->
          Error (Printf.sprintf "scenario: unknown cca %S" f.f_cca)
        | None -> Ok parsed
      end

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s

let describe t =
  Printf.sprintf
    "seed=%d mbps=%.1f buffer=%.2fbdp rtt=%.1fms dur=%.1fs aqm=%s flows=%s%s"
    t.seed t.mbps t.buffer_bdp t.base_rtt_ms t.duration_s
    (aqm_to_string t.aqm)
    (String.concat ","
       (List.map
          (fun f -> Printf.sprintf "%s@%.1f+%.1f" f.f_cca f.f_rtt_ms f.f_start_s)
          t.flows))
    (match t.workload with
    | None -> ""
    | Some w ->
      Printf.sprintf " wl=%s:%.2f@%.0fkB"
        (match w.w_kind with
        | Poisson_arrivals -> "poisson"
        | Pareto_arrivals -> "pareto")
        w.w_load w.w_mean_kb)
