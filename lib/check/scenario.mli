(** Fuzzable simulation scenarios: a compact, fully serializable description
    of one packet-level run (topology, CCA mix, flow schedule, horizon,
    seed) plus a seeded generator and shrinking.

    Scenarios quantize every float to four decimals so that
    [of_string (to_string s)] round-trips byte-for-byte — a saved replay
    file re-runs the exact simulation that failed, forever. *)

type flow = {
  f_cca : string;  (** A {!Cca.Registry} name. *)
  f_rtt_ms : float;  (** The flow's two-way propagation delay. *)
  f_start_s : float;  (** When the flow starts sending. *)
}

type aqm = Tail | Red

type arrival_kind = Poisson_arrivals | Pareto_arrivals

type workload = {
  w_kind : arrival_kind;  (** Arrival process shape (memoryless or bursty). *)
  w_load : float;  (** Offered short-flow load as a capacity fraction. *)
  w_mean_kb : float;  (** Mean transfer size in kB (uniform, no heavy tail). *)
}
(** The fuzzer's reading of an open-loop churn population: enough to
    reconstruct a {!Tcpflow.Experiment.workload} (short flows run the first
    flow's CCA at the base RTT), small enough to quantize and replay. *)

type t = {
  seed : int;  (** The simulation seed (all randomness derives from it). *)
  mbps : float;  (** Bottleneck capacity. *)
  buffer_bdp : float;  (** Buffer depth in BDPs of [base_rtt_ms]. *)
  base_rtt_ms : float;  (** The RTT defining one BDP. *)
  duration_s : float;  (** Simulated horizon (quick-mode scale). *)
  aqm : aqm;
  flows : flow list;
  workload : workload option;  (** Open-loop churn population, if any. *)
}

val to_config : t -> Tcpflow.Experiment.config
(** The packet-level experiment this scenario denotes (warm-up 0 — the
    auditor cares about the whole run, not a measurement window). *)

val to_spec : t -> Sim_backend.spec
(** The backend-neutral reading of the same scenario, for fuzzing the
    analytic backends. Flow start times, the AQM and the churn workload are
    packet-level refinements the analytic backends do not model: the spec
    starts every flow at 0 on a drop-tail bottleneck with no churn. *)

val generate : ?ccas:string list -> Sim_engine.Rng.t -> t
(** Draw one scenario: 1–5 flows over every registered CCA (or the [ccas]
    subset — pass a backend's supported names when fuzzing it), 5–50 Mbps,
    5–80 ms RTTs, 0.25–16 BDP buffers, 3–8 s horizons, occasional RED, and
    (roughly a quarter of the time) an open-loop churn workload at 5–50%
    load. Raises [Invalid_argument] on an empty [ccas]. *)

val generate_batch : ?ccas:string list -> seed:int -> count:int -> unit -> t list
(** [count] scenarios, deterministically derived from [seed] alone (for a
    fixed [ccas] filter). *)

val shrink_candidates : ?ccas:string list -> t -> t list
(** Strictly-simpler variants, most aggressive first (drop the workload,
    drop a flow, halve the horizon or the workload's load/mean size, zero
    the start times, drop RED, collapse RTTs, canonical buffer/bandwidth,
    simplest CCA). [ccas] restricts the simplest-CCA
    step to an allowed set (reno, else cubic, else skipped) so shrunk
    scenarios stay runnable on the backend that failed. The fuzz driver
    keeps a candidate only when it still fails, so each accepted step
    shrinks the counterexample. *)

val to_string : t -> string
(** The replay-file format: a versioned, line-oriented [key value] text. *)

val of_string : string -> (t, string) result
val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val describe : t -> string
(** One line for logs:
    [seed=8 mbps=10.0 buffer=1.0bdp rtt=40.0ms dur=4.0s aqm=tail
    flows=cubic@40.0+0.0,bbr@20.0+1.5]. *)
