module Sim = Sim_engine.Sim
module Tr = Sim_engine.Trace
module E = Tcpflow.Experiment

type outcome =
  | Pass
  | Violation of Audit.violation
  | Crash of string

let outcome_to_string = function
  | Pass -> "pass"
  | Violation v -> "violation: " ^ Audit.violation_to_string v
  | Crash msg -> "crash: " ^ msg

type fault = {
  fault_name : string;
  fault_apply : Tr.record -> Tr.record;
}

(* Faults must be stateless (decide from the record alone): campaign fans
   cases out over domains that share these closures. *)
let faults =
  [
    {
      fault_name = "inflight";
      fault_apply =
        (fun r ->
          match r.Tr.event with
          | Tr.Ack { seq; rtt_sample; delivered_bytes; inflight_bytes }
            when seq land 31 = 3 ->
            {
              r with
              Tr.event =
                Tr.Ack
                  {
                    seq;
                    rtt_sample;
                    delivered_bytes;
                    inflight_bytes = inflight_bytes + 1;
                  };
            }
          | _ -> r);
    };
    {
      fault_name = "delivered-rewind";
      fault_apply =
        (fun r ->
          match r.Tr.event with
          | Tr.Ack { seq; rtt_sample; delivered_bytes; inflight_bytes }
            when seq land 63 = 7 ->
            {
              r with
              Tr.event =
                Tr.Ack
                  {
                    seq;
                    rtt_sample;
                    delivered_bytes = delivered_bytes /. 2.0;
                    inflight_bytes;
                  };
            }
          | _ -> r);
    };
  ]

let fault_named name =
  List.find_opt (fun f -> String.equal f.fault_name name) faults

(* Ceilings for the Cc_sample checks. These have to be runaway guards, not
   tight physical bounds: rate-based CCAs with multiplicative search (Vivace
   doubles its rate every monitor interval until utility feedback turns it
   around, with no upper clamp) legitimately overshoot the link rate by
   orders of magnitude during startup on deep-buffered paths. NaN/inf and
   non-positive values are caught by the separate positivity checks, so the
   ceilings only need to flag unbounded drift — 1e12 B (~a terabyte window /
   8 Tbps pacing) is absurd for any scenario this generator produces. *)
let ceilings (_cfg : E.config) = (1e12, 1e12)

let run_scenario ?fault scenario =
  let cfg = Scenario.to_config scenario in
  let hub = Tr.create ~ring_capacity:256 () in
  let cwnd_ceiling_bytes, pacing_ceiling_bps = ceilings cfg in
  let audit =
    Audit.create ~queue_capacity_bytes:cfg.E.buffer_bytes ~cwnd_ceiling_bytes
      ~pacing_ceiling_bps ~lifecycle:true ()
  in
  (match fault with
  | None -> Audit.attach audit hub
  | Some f ->
    Tr.subscribe_sink hub
      ~on_record:(fun r -> Audit.observe audit (f.fault_apply r))
      ~on_close:ignore);
  match E.setup ~trace:hub cfg with
  | exception e -> Crash (Printexc.to_string e)
  | live -> (
    let sim = E.live_sim live in
    let net = E.live_net live in
    let senders = E.live_senders live in
    (* Periodic probe: the transport's own O(window) self-check, at ~200
       points per run. A failure is converted into a violation, stamped
       with the probe time. *)
    let sender_failure = ref None in
    let duration = (cfg.E.duration :> float) in
    let period = Float.max 0.010 (duration /. 200.0) in
    let rec probe () =
      Array.iter
        (fun sender ->
          if Option.is_none !sender_failure then
            try Tcpflow.Sender.check_inflight_invariant sender
            with Failure msg ->
              sender_failure :=
                Some
                  {
                    Audit.invariant = "sender-self-check";
                    v_time = Sim.now sim;
                    v_flow = Tcpflow.Sender.flow sender;
                    v_index = Audit.records_seen audit;
                    detail = msg;
                  })
        senders;
      ignore (Sim.schedule sim ~delay:period probe)
    in
    ignore (Sim.schedule sim ~delay:period probe);
    match Sim.run ~until:duration sim with
    | exception e -> Crash (Printexc.to_string e)
    | () ->
      Tr.close hub;
      let queue = Netsim.Dumbbell.queue net in
      let link = Netsim.Dumbbell.link net in
      Audit.finalize audit
        {
          Audit.fin_time = Sim.now sim;
          fin_busy_seconds = (Netsim.Link.busy_seconds link :> float);
          fin_queue_bytes = Netsim.Droptail_queue.occupancy_bytes queue;
          fin_queue_packets = Netsim.Droptail_queue.length queue;
          fin_link_busy = Netsim.Link.busy link;
          fin_tx_slack_seconds =
            1500.0 *. 8.0 /. (cfg.E.rate_bps :> float);
          fin_enqueued_packets = Netsim.Droptail_queue.enqueued_packets queue;
          fin_dropped_packets = Netsim.Droptail_queue.drops queue;
          fin_delivered_packets = Netsim.Link.delivered_packets link;
          fin_inflight_bytes =
            Array.to_list
              (Array.map
                 (fun s ->
                   (Tcpflow.Sender.flow s, Tcpflow.Sender.inflight_bytes s))
                 senders);
          fin_completed_flows =
            Option.map Tcpflow.Churn.completed (E.live_churn live);
        };
      (match !sender_failure with
      | Some v -> Violation v
      | None -> (
        match Audit.first_violation audit with
        | Some v -> Violation v
        | None -> Pass)))

(* ---------- analytic-backend fuzzing ---------- *)

(* The analytic backends have no event stream for the auditor to replay,
   so their invariants are checked on the outcome instead: finiteness,
   conservation (goodput within capacity, queue within the buffer),
   determinism, and — for single-flow scenarios — fluid/ODE parity.
   Violations reuse {!Audit.violation} with the spec horizon as the time
   stamp and record index 0. *)

let outcome_violation ~invariant ~detail (scenario : Scenario.t) =
  {
    Audit.invariant;
    v_time = scenario.Scenario.duration_s;
    v_flow = Sim_engine.Trace.link_scope;
    v_index = 0;
    detail;
  }

let check_outcome ~backend scenario (o : Sim_backend.outcome) =
  let fail invariant detail =
    Some (outcome_violation ~invariant ~detail scenario)
  in
  let capacity = scenario.Scenario.mbps *. 1e6 in
  let spec = Scenario.to_spec scenario in
  let buffer =
    Sim_engine.Units.Raw.to_float spec.Sim_backend.buffer_bytes
  in
  let nonfinite =
    Array.exists (fun v -> not (Float.is_finite v)) o.Sim_backend.per_flow_bps
    || (not (Float.is_finite o.Sim_backend.mean_queue_bytes))
    || (not (Float.is_finite o.Sim_backend.mean_queuing_delay))
    || not (Float.is_finite o.Sim_backend.utilization)
  in
  if nonfinite then fail "backend-finite" "non-finite field in outcome"
  else if Array.exists (fun v -> v < 0.0) o.Sim_backend.per_flow_bps then
    fail "backend-positive" "negative per-flow goodput"
  else begin
    let total = Array.fold_left ( +. ) 0.0 o.Sim_backend.per_flow_bps in
    if total > capacity *. 1.01 then
      fail "backend-capacity"
        (Printf.sprintf "sum goodput %.3e bps exceeds capacity %.3e" total
           capacity)
    else if o.Sim_backend.mean_queue_bytes > (buffer *. 1.001) +. 1.0 then
      fail "backend-buffer"
        (Printf.sprintf "mean queue %.1f B exceeds buffer %.1f B"
           o.Sim_backend.mean_queue_bytes buffer)
    else if o.Sim_backend.mean_queue_bytes < 0.0 then
      fail "backend-buffer" "negative mean queue"
    else begin
      (* Determinism: a spec re-run must reproduce the outcome exactly. *)
      match Sim_backend.run backend spec with
      | Error e ->
        fail "backend-deterministic"
          ("re-run rejected: " ^ Format.asprintf "%a" Sim_backend.pp_error e)
      | Ok o2 ->
        if compare o o2 <> 0 then
          fail "backend-deterministic" "re-run produced a different outcome"
        else if
          (* Single-flow parity: on one flow both analytic backends must
             saturate (or identically under-use) the link; their mean
             goodputs were calibrated to agree within a few percent. *)
          Array.length o.Sim_backend.per_flow_bps = 1
          && List.exists
               (fun b -> String.equal (Sim_backend.name b) (Sim_backend.name backend))
               [ Sim_backend.fluid; Sim_backend.ode ]
        then begin
          let peer =
            if String.equal (Sim_backend.name backend) "fluid" then
              Sim_backend.ode
            else Sim_backend.fluid
          in
          (* Compare tail-window goodput: the backends model startup
             differently (probe schedules, slow-start exit), so the
             whole-run mean on a generated 3–8 s horizon measures mostly
             transient. A half-horizon warm-up on both sides tests the
             quasi-steady agreement the calibration promises. *)
          let tail_spec =
            {
              spec with
              Sim_backend.warmup =
                Sim_engine.Units.seconds (scenario.Scenario.duration_s /. 2.0);
            }
          in
          match (Sim_backend.run backend tail_spec, Sim_backend.run peer tail_spec) with
          | Error _, _ | _, Error _ ->
            None (* peer rejects (e.g. unsupported cca): skip *)
          | Ok so, Ok po ->
            let a = so.Sim_backend.per_flow_bps.(0)
            and b = po.Sim_backend.per_flow_bps.(0) in
            if Float.abs (a -. b) > 0.10 *. capacity then
              fail "backend-parity"
                (Printf.sprintf
                   "single-flow tail goodput %.3e (this) vs %.3e (%s) \
                    differs by more than 10%% of capacity"
                   a b (Sim_backend.name peer))
            else None
        end
        else None
    end
  end

let run_scenario_backend ~backend scenario =
  let spec = Scenario.to_spec scenario in
  match Sim_backend.run backend spec with
  | exception e -> Crash (Printexc.to_string e)
  | Error e -> Crash (Format.asprintf "%a" Sim_backend.pp_error e)
  | Ok o -> (
    match check_outcome ~backend scenario o with
    | Some v -> Violation v
    | None -> Pass)

let backend_ccas backend =
  List.filter
    (Sim_backend.supports backend)
    (Cca.Registry.names ())

let fails_backend ~backend scenario =
  match run_scenario_backend ~backend scenario with
  | Pass -> false
  | Violation _ | Crash _ -> true

let shrink_backend ~backend scenario =
  let ccas = backend_ccas backend in
  let rec go s budget =
    if budget = 0 then s
    else
      match
        List.find_opt (fails_backend ~backend)
          (Scenario.shrink_candidates ~ccas s)
      with
      | None -> s
      | Some simpler -> go simpler (budget - 1)
  in
  if fails_backend ~backend scenario then go scenario 64 else scenario

let fails ?fault scenario =
  match run_scenario ?fault scenario with
  | Pass -> false
  | Violation _ | Crash _ -> true

let shrink ?fault scenario =
  let rec go s budget =
    if budget = 0 then s
    else
      match List.find_opt (fails ?fault) (Scenario.shrink_candidates s) with
      | None -> s
      | Some simpler -> go simpler (budget - 1)
  in
  if fails ?fault scenario then go scenario 64 else scenario

type case = {
  case_index : int;
  case_scenario : Scenario.t;
  case_outcome : outcome;
}

type campaign = {
  total : int;
  passed : int;
  failures : case list;
}

let campaign ?fault ?(jobs = 1) ~count ~seed () =
  if count <= 0 then invalid_arg "Fuzz.campaign: count";
  let scenarios = Array.of_list (Scenario.generate_batch ~seed ~count ()) in
  let outcomes = Sim_engine.Exec.map ~jobs (run_scenario ?fault) scenarios in
  let failures = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Pass -> ()
      | Violation _ | Crash _ ->
        failures :=
          { case_index = i; case_scenario = scenarios.(i); case_outcome = outcome }
          :: !failures)
    outcomes;
  let failures = List.rev !failures in
  {
    total = count;
    passed = count - List.length failures;
    failures;
  }

let backend_campaign ~backend ?(jobs = 1) ~count ~seed () =
  if count <= 0 then invalid_arg "Fuzz.backend_campaign: count";
  let ccas = backend_ccas backend in
  let scenarios =
    Array.of_list (Scenario.generate_batch ~ccas ~seed ~count ())
  in
  let outcomes =
    Sim_engine.Exec.map ~jobs (run_scenario_backend ~backend) scenarios
  in
  let failures = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Pass -> ()
      | Violation _ | Crash _ ->
        failures :=
          {
            case_index = i;
            case_scenario = scenarios.(i);
            case_outcome = outcome;
          }
          :: !failures)
    outcomes;
  let failures = List.rev !failures in
  { total = count; passed = count - List.length failures; failures }

let replay ?fault path =
  match Scenario.load ~path with
  | Error _ as e -> e
  | Ok scenario -> Ok (scenario, run_scenario ?fault scenario)

let replay_backend ~backend path =
  match Scenario.load ~path with
  | Error _ as e -> e
  | Ok scenario -> Ok (scenario, run_scenario_backend ~backend scenario)
