module Sim = Sim_engine.Sim
module Tr = Sim_engine.Trace
module E = Tcpflow.Experiment

type outcome =
  | Pass
  | Violation of Audit.violation
  | Crash of string

let outcome_to_string = function
  | Pass -> "pass"
  | Violation v -> "violation: " ^ Audit.violation_to_string v
  | Crash msg -> "crash: " ^ msg

type fault = {
  fault_name : string;
  fault_apply : Tr.record -> Tr.record;
}

(* Faults must be stateless (decide from the record alone): campaign fans
   cases out over domains that share these closures. *)
let faults =
  [
    {
      fault_name = "inflight";
      fault_apply =
        (fun r ->
          match r.Tr.event with
          | Tr.Ack { seq; rtt_sample; delivered_bytes; inflight_bytes }
            when seq land 31 = 3 ->
            {
              r with
              Tr.event =
                Tr.Ack
                  {
                    seq;
                    rtt_sample;
                    delivered_bytes;
                    inflight_bytes = inflight_bytes + 1;
                  };
            }
          | _ -> r);
    };
    {
      fault_name = "delivered-rewind";
      fault_apply =
        (fun r ->
          match r.Tr.event with
          | Tr.Ack { seq; rtt_sample; delivered_bytes; inflight_bytes }
            when seq land 63 = 7 ->
            {
              r with
              Tr.event =
                Tr.Ack
                  {
                    seq;
                    rtt_sample;
                    delivered_bytes = delivered_bytes /. 2.0;
                    inflight_bytes;
                  };
            }
          | _ -> r);
    };
  ]

let fault_named name =
  List.find_opt (fun f -> String.equal f.fault_name name) faults

(* Ceilings for the Cc_sample checks. These have to be runaway guards, not
   tight physical bounds: rate-based CCAs with multiplicative search (Vivace
   doubles its rate every monitor interval until utility feedback turns it
   around, with no upper clamp) legitimately overshoot the link rate by
   orders of magnitude during startup on deep-buffered paths. NaN/inf and
   non-positive values are caught by the separate positivity checks, so the
   ceilings only need to flag unbounded drift — 1e12 B (~a terabyte window /
   8 Tbps pacing) is absurd for any scenario this generator produces. *)
let ceilings (_cfg : E.config) = (1e12, 1e12)

let run_scenario ?fault scenario =
  let cfg = Scenario.to_config scenario in
  let hub = Tr.create ~ring_capacity:256 () in
  let cwnd_ceiling_bytes, pacing_ceiling_bps = ceilings cfg in
  let audit =
    Audit.create ~queue_capacity_bytes:cfg.E.buffer_bytes ~cwnd_ceiling_bytes
      ~pacing_ceiling_bps ()
  in
  (match fault with
  | None -> Audit.attach audit hub
  | Some f ->
    Tr.subscribe_sink hub
      ~on_record:(fun r -> Audit.observe audit (f.fault_apply r))
      ~on_close:ignore);
  match E.setup ~trace:hub cfg with
  | exception e -> Crash (Printexc.to_string e)
  | live -> (
    let sim = E.live_sim live in
    let net = E.live_net live in
    let senders = E.live_senders live in
    (* Periodic probe: the transport's own O(window) self-check, at ~200
       points per run. A failure is converted into a violation, stamped
       with the probe time. *)
    let sender_failure = ref None in
    let duration = (cfg.E.duration :> float) in
    let period = Float.max 0.010 (duration /. 200.0) in
    let rec probe () =
      Array.iter
        (fun sender ->
          if Option.is_none !sender_failure then
            try Tcpflow.Sender.check_inflight_invariant sender
            with Failure msg ->
              sender_failure :=
                Some
                  {
                    Audit.invariant = "sender-self-check";
                    v_time = Sim.now sim;
                    v_flow = Tcpflow.Sender.flow sender;
                    v_index = Audit.records_seen audit;
                    detail = msg;
                  })
        senders;
      ignore (Sim.schedule sim ~delay:period probe)
    in
    ignore (Sim.schedule sim ~delay:period probe);
    match Sim.run ~until:duration sim with
    | exception e -> Crash (Printexc.to_string e)
    | () ->
      Tr.close hub;
      let queue = Netsim.Dumbbell.queue net in
      let link = Netsim.Dumbbell.link net in
      Audit.finalize audit
        {
          Audit.fin_time = Sim.now sim;
          fin_busy_seconds = (Netsim.Link.busy_seconds link :> float);
          fin_queue_bytes = Netsim.Droptail_queue.occupancy_bytes queue;
          fin_queue_packets = Netsim.Droptail_queue.length queue;
          fin_link_busy = Netsim.Link.busy link;
          fin_tx_slack_seconds =
            1500.0 *. 8.0 /. (cfg.E.rate_bps :> float);
          fin_enqueued_packets = Netsim.Droptail_queue.enqueued_packets queue;
          fin_dropped_packets = Netsim.Droptail_queue.drops queue;
          fin_delivered_packets = Netsim.Link.delivered_packets link;
          fin_inflight_bytes =
            Array.to_list
              (Array.map
                 (fun s ->
                   (Tcpflow.Sender.flow s, Tcpflow.Sender.inflight_bytes s))
                 senders);
        };
      (match !sender_failure with
      | Some v -> Violation v
      | None -> (
        match Audit.first_violation audit with
        | Some v -> Violation v
        | None -> Pass)))

let fails ?fault scenario =
  match run_scenario ?fault scenario with
  | Pass -> false
  | Violation _ | Crash _ -> true

let shrink ?fault scenario =
  let rec go s budget =
    if budget = 0 then s
    else
      match List.find_opt (fails ?fault) (Scenario.shrink_candidates s) with
      | None -> s
      | Some simpler -> go simpler (budget - 1)
  in
  if fails ?fault scenario then go scenario 64 else scenario

type case = {
  case_index : int;
  case_scenario : Scenario.t;
  case_outcome : outcome;
}

type campaign = {
  total : int;
  passed : int;
  failures : case list;
}

let campaign ?fault ?(jobs = 1) ~count ~seed () =
  if count <= 0 then invalid_arg "Fuzz.campaign: count";
  let scenarios = Array.of_list (Scenario.generate_batch ~seed ~count) in
  let outcomes = Sim_engine.Exec.map ~jobs (run_scenario ?fault) scenarios in
  let failures = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Pass -> ()
      | Violation _ | Crash _ ->
        failures :=
          { case_index = i; case_scenario = scenarios.(i); case_outcome = outcome }
          :: !failures)
    outcomes;
  let failures = List.rev !failures in
  {
    total = count;
    passed = count - List.length failures;
    failures;
  }

let replay ?fault path =
  match Scenario.load ~path with
  | Error _ as e -> e
  | Ok scenario -> Ok (scenario, run_scenario ?fault scenario)
