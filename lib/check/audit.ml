module Tr = Sim_engine.Trace

type violation = {
  invariant : string;
  v_time : float;
  v_flow : int;
  v_index : int;
  detail : string;
}

let violation_to_string v =
  Printf.sprintf "%s@%.6f flow=%d #%d: %s" v.invariant v.v_time v.v_flow
    v.v_index v.detail

(* The catalogue. Keep in sync with DESIGN.md §Correctness; the test suite
   asserts every id emitted below appears here. *)
let invariant_names () =
  [
    "ack-unknown-seq";
    "bottleneck-conservation";
    "cc-state-chain";
    "completion-count";
    "conservation";
    "cwnd-ceiling";
    "cwnd-positive";
    "delivered-monotone";
    "drop-below-capacity";
    "drop-event-count";
    "fct-positive";
    "final-inflight";
    "inflight-mismatch";
    "inflight-negative";
    "lifecycle-event-after-complete";
    "lifecycle-event-before-start";
    "lifecycle-restart";
    "link-busy-bound";
    "loss-after-ack";
    "loss-unknown-seq";
    "pacing-ceiling";
    "pacing-positive";
    "queue-conservation";
    "queue-empty-consistency";
    "queue-negative";
    "queue-overflow";
    "recovery-exit-idle";
    "recovery-reenter";
    "rto-interval";
    "rtt-sane";
    "send-after-ack";
    "send-size";
    "sender-self-check";
    "time-monotone";
  ]

(* Per-flow mirror of the transport's accounting, reconstructed from the
   event stream alone. [f_out] maps seq -> outstanding counted bytes (kept
   at 0, not removed, after an RTO so a seq stays distinguishable from one
   never sent); entries leave the table when the segment is acknowledged. *)
type flow_state = {
  mutable f_sends : int;
  mutable f_acks : int;
  mutable f_drops : int;
  mutable f_inflight : int;
  mutable f_delivered : float;
  mutable f_in_recovery : bool;
  mutable f_mss : int;
  mutable f_cc_state : string;  (* "" until the first Cc_state_change *)
  mutable f_started : bool;  (* Flow_start seen *)
  mutable f_completed : bool;  (* Flow_complete seen *)
  f_out : (int, int) Hashtbl.t;
  f_acked : (int, unit) Hashtbl.t;
}

type t = {
  queue_capacity_bytes : int option;
  cwnd_ceiling_bytes : float;
  pacing_ceiling_bps : float;
  max_violations : int;
  lifecycle : bool;
  mutable violations_rev : violation list;
  mutable kept : int;
  mutable index : int;
  mutable last_time : float;
  flows : (int, flow_state) Hashtbl.t;
  mutable total_sends : int;
  mutable total_drop_events : int;
  mutable total_completions : int;
  mutable stream_closed : bool;
}

let create ?queue_capacity_bytes ?(cwnd_ceiling_bytes = infinity)
    ?(pacing_ceiling_bps = infinity) ?(max_violations = 16)
    ?(lifecycle = false) () =
  if max_violations <= 0 then invalid_arg "Audit.create: max_violations";
  {
    queue_capacity_bytes;
    cwnd_ceiling_bytes;
    pacing_ceiling_bps;
    max_violations;
    lifecycle;
    violations_rev = [];
    kept = 0;
    index = 0;
    last_time = 0.0;
    flows = Hashtbl.create 16;
    total_sends = 0;
    total_drop_events = 0;
    total_completions = 0;
    stream_closed = false;
  }

let records_seen t = t.index
let stream_closed t = t.stream_closed
let violations t = List.rev t.violations_rev

let first_violation t =
  match t.violations_rev with
  | [] -> None
  | vs -> Some (List.nth vs (List.length vs - 1))

let ok t = t.kept = 0

let fail t ~time ~flow ~index invariant detail =
  if t.kept < t.max_violations then begin
    t.violations_rev <-
      { invariant; v_time = time; v_flow = flow; v_index = index; detail }
      :: t.violations_rev;
    t.kept <- t.kept + 1
  end

let flow_state t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fs -> fs
  | None ->
    let fs =
      {
        f_sends = 0;
        f_acks = 0;
        f_drops = 0;
        f_inflight = 0;
        f_delivered = 0.0;
        f_in_recovery = false;
        f_mss = 0;
        f_cc_state = "";
        f_started = false;
        f_completed = false;
        f_out = Hashtbl.create 64;
        f_acked = Hashtbl.create 64;
      }
    in
    Hashtbl.add t.flows flow fs;
    fs

(* Per-transmission conservation: every transmitted copy is eventually
   acknowledged, dropped at the bottleneck, or still in the network — so
   acks + drops can never exceed sends. *)
let check_conservation t fs ~time ~flow ~index =
  if fs.f_acks + fs.f_drops > fs.f_sends then
    fail t ~time ~flow ~index "conservation"
      (Printf.sprintf "acks %d + drops %d > sends %d" fs.f_acks fs.f_drops
         fs.f_sends)

let[@simlint.taint_ok
     "the only hash iteration zeroes every entry independently: order-free"]
    observe t (r : Tr.record) =
  let index = t.index in
  t.index <- index + 1;
  let time = r.time and flow = r.flow in
  let fail name detail = fail t ~time ~flow ~index name detail in
  if (not (Float.is_finite time)) || time < 0.0 then
    fail "time-monotone" (Printf.sprintf "non-finite or negative time %g" time)
  else if time < t.last_time then
    fail "time-monotone"
      (Printf.sprintf "time %.9f after %.9f" time t.last_time)
  else t.last_time <- time;
  (* Lifecycle window: sender-side transport events must fall between a
     flow's activation and its completion. Observability events (Cc_sample,
     Cc_state_change) are exempt — periodic tracers legitimately sample a
     flow outside its active window. [Drop] is queue-side: completion is
     decided by the ACK stream while duplicate copies of a completed flow's
     segments can still sit in the bottleneck queue and be dropped, so a
     drop is only checked against the start of the window. The before-start
     half only fires in [lifecycle] mode, since legacy synthetic streams
     carry no Flow_start; the after-complete half is unconditional (any
     stream containing a Flow_complete is lifecycle-aware by
     construction). *)
  (match r.event with
  | Tr.Send _ | Tr.Ack _ | Tr.Seg_lost _ | Tr.Rto_fire _ | Tr.Recovery_enter _
  | Tr.Recovery_exit ->
    let fs = flow_state t flow in
    if fs.f_completed then
      fail "lifecycle-event-after-complete"
        (Printf.sprintf "%s after the flow completed" (Tr.event_name r.event))
    else if t.lifecycle && not fs.f_started then
      fail "lifecycle-event-before-start"
        (Printf.sprintf "%s before the flow's Flow_start"
           (Tr.event_name r.event))
  | Tr.Drop _ ->
    let fs = flow_state t flow in
    if t.lifecycle && not fs.f_started then
      fail "lifecycle-event-before-start"
        (Printf.sprintf "%s before the flow's Flow_start"
           (Tr.event_name r.event))
  | Tr.Cc_state_change _ | Tr.Cc_sample _ | Tr.Queue_sample _ | Tr.Flow_start _
  | Tr.Flow_complete _ -> ());
  match r.event with
  | Tr.Send { seq; size; retransmit = _ } ->
    let fs = flow_state t flow in
    if size <= 0 then fail "send-size" (Printf.sprintf "size %d" size);
    if Hashtbl.mem fs.f_acked seq then
      fail "send-after-ack"
        (Printf.sprintf "seq %d transmitted after its delivery was known" seq);
    fs.f_sends <- fs.f_sends + 1;
    t.total_sends <- t.total_sends + 1;
    fs.f_mss <- size;
    let out =
      match Hashtbl.find_opt fs.f_out seq with Some b -> b | None -> 0
    in
    Hashtbl.replace fs.f_out seq (out + size);
    fs.f_inflight <- fs.f_inflight + size
  | Tr.Ack { seq; rtt_sample; delivered_bytes; inflight_bytes } ->
    let fs = flow_state t flow in
    if (not (Float.is_finite rtt_sample)) || rtt_sample < 0.0 then
      fail "rtt-sane" (Printf.sprintf "rtt sample %g" rtt_sample);
    if
      (not (Float.is_finite delivered_bytes))
      || delivered_bytes < fs.f_delivered
    then
      fail "delivered-monotone"
        (Printf.sprintf "delivered %g after %g" delivered_bytes fs.f_delivered)
    else fs.f_delivered <- delivered_bytes;
    if inflight_bytes < 0 then
      fail "inflight-negative" (Printf.sprintf "reported %d" inflight_bytes);
    (if not (Hashtbl.mem fs.f_acked seq) then
       match Hashtbl.find_opt fs.f_out seq with
       | Some out ->
         Hashtbl.remove fs.f_out seq;
         Hashtbl.replace fs.f_acked seq ();
         fs.f_inflight <- fs.f_inflight - out
       | None ->
         fail "ack-unknown-seq"
           (Printf.sprintf "seq %d acknowledged but never sent" seq));
    fs.f_acks <- fs.f_acks + 1;
    if inflight_bytes <> fs.f_inflight then
      fail "inflight-mismatch"
        (Printf.sprintf
           "sender reports %d bytes in flight, event stream reconstructs %d"
           inflight_bytes fs.f_inflight);
    check_conservation t fs ~time ~flow ~index
  | Tr.Seg_lost { seq; via_timeout } ->
    let fs = flow_state t flow in
    if Hashtbl.mem fs.f_acked seq then
      fail "loss-after-ack"
        (Printf.sprintf "seq %d declared lost after delivery" seq)
    else begin
      match Hashtbl.find_opt fs.f_out seq with
      | None ->
        fail "loss-unknown-seq"
          (Printf.sprintf "seq %d declared lost but never sent" seq)
      | Some out ->
        (* RACK retires the latest copy; the RTO sweep's per-segment events
           are bookkeeping only — Rto_fire retires everything at once. *)
        if not via_timeout then begin
          let dec = min out (max fs.f_mss 0) in
          Hashtbl.replace fs.f_out seq (out - dec);
          fs.f_inflight <- fs.f_inflight - dec
        end
    end
  | Tr.Drop { seq = _; size; early; queue_bytes } ->
    let fs = flow_state t flow in
    fs.f_drops <- fs.f_drops + 1;
    t.total_drop_events <- t.total_drop_events + 1;
    if size <= 0 then fail "send-size" (Printf.sprintf "dropped size %d" size);
    (match t.queue_capacity_bytes with
    | Some cap ->
      if queue_bytes > cap then
        fail "queue-overflow"
          (Printf.sprintf "occupancy %d > capacity %d at drop" queue_bytes cap);
      (* A tail drop must have been forced: the packet cannot have fit. *)
      if (not early) && queue_bytes + size <= cap then
        fail "drop-below-capacity"
          (Printf.sprintf "tail drop with %d + %d <= capacity %d" queue_bytes
             size cap)
    | None -> ());
    check_conservation t fs ~time ~flow ~index
  | Tr.Rto_fire { interval; backoff; lost_segments = _ } ->
    let fs = flow_state t flow in
    if
      (not (Float.is_finite interval))
      || interval <= 0.0
      || interval > 60.0 +. 1e-9
      || backoff < 0
    then
      fail "rto-interval"
        (Printf.sprintf "interval %g backoff %d (want 0 < i <= 60, b >= 0)"
           interval backoff);
    (* Nothing survives a timeout: zero every outstanding copy. Iteration
       order is irrelevant (every entry is set to 0 independently). *)
    Hashtbl.iter (* simlint: allow R1 *)
      (fun seq _ -> Hashtbl.replace fs.f_out seq 0)
      fs.f_out;
    fs.f_inflight <- 0
  | Tr.Recovery_enter { via_timeout = _; lost_bytes = _ } ->
    let fs = flow_state t flow in
    if fs.f_in_recovery then
      fail "recovery-reenter" "Recovery_enter while already in recovery";
    fs.f_in_recovery <- true
  | Tr.Recovery_exit ->
    let fs = flow_state t flow in
    if not fs.f_in_recovery then
      fail "recovery-exit-idle" "Recovery_exit outside recovery";
    fs.f_in_recovery <- false
  | Tr.Cc_state_change { from_state; to_state } ->
    let fs = flow_state t flow in
    if String.length fs.f_cc_state > 0 && not (String.equal fs.f_cc_state from_state)
    then
      fail "cc-state-chain"
        (Printf.sprintf "transition from %S but last known state was %S"
           from_state fs.f_cc_state);
    fs.f_cc_state <- to_state
  | Tr.Cc_sample
      { cwnd_bytes; inflight_bytes; pacing_rate; delivered_bytes; cc_state = _ }
    ->
    let fs = flow_state t flow in
    if (not (Float.is_finite cwnd_bytes)) || cwnd_bytes <= 0.0 then
      fail "cwnd-positive" (Printf.sprintf "cwnd %g" cwnd_bytes)
    else if cwnd_bytes > t.cwnd_ceiling_bytes then
      fail "cwnd-ceiling"
        (Printf.sprintf "cwnd %g > ceiling %g" cwnd_bytes t.cwnd_ceiling_bytes);
    (match pacing_rate with
    | None -> ()
    | Some rate ->
      if (not (Float.is_finite rate)) || rate <= 0.0 then
        fail "pacing-positive" (Printf.sprintf "pacing rate %g" rate)
      else if rate > t.pacing_ceiling_bps then
        fail "pacing-ceiling"
          (Printf.sprintf "pacing rate %g > ceiling %g" rate
             t.pacing_ceiling_bps));
    if inflight_bytes < 0 then
      fail "inflight-negative" (Printf.sprintf "sampled %d" inflight_bytes);
    if
      (not (Float.is_finite delivered_bytes))
      || delivered_bytes < fs.f_delivered
    then
      fail "delivered-monotone"
        (Printf.sprintf "sampled delivered %g after %g" delivered_bytes
           fs.f_delivered)
    else fs.f_delivered <- delivered_bytes
  | Tr.Queue_sample { queue_bytes; queue_packets } ->
    if queue_bytes < 0 || queue_packets < 0 then
      fail "queue-negative"
        (Printf.sprintf "%d bytes in %d packets" queue_bytes queue_packets);
    if (queue_bytes = 0) <> (queue_packets = 0) then
      fail "queue-empty-consistency"
        (Printf.sprintf "%d bytes in %d packets" queue_bytes queue_packets);
    (match t.queue_capacity_bytes with
    | Some cap ->
      if queue_bytes > cap then
        fail "queue-overflow"
          (Printf.sprintf "occupancy %d > capacity %d" queue_bytes cap)
    | None -> ())
  | Tr.Flow_start { size_limit_bytes } ->
    let fs = flow_state t flow in
    if fs.f_started then
      fail "lifecycle-restart"
        "second Flow_start for a flow id (ids are never reused)";
    if size_limit_bytes <> -1 && size_limit_bytes <= 0 then
      fail "send-size" (Printf.sprintf "size limit %d" size_limit_bytes);
    fs.f_started <- true
  | Tr.Flow_complete { fct; size_bytes } ->
    let fs = flow_state t flow in
    if not fs.f_started then
      fail "lifecycle-event-before-start" "Flow_complete without Flow_start";
    if fs.f_completed then
      fail "lifecycle-event-after-complete" "second Flow_complete for a flow";
    if (not (Float.is_finite fct)) || fct <= 0.0 then
      fail "fct-positive" (Printf.sprintf "fct %g (size %d)" fct size_bytes);
    fs.f_completed <- true;
    t.total_completions <- t.total_completions + 1;
    (* At completion the flow's ledger must balance: every delivered or
       dropped copy traces back to a send. *)
    check_conservation t fs ~time ~flow ~index

let attach t hub =
  Tr.subscribe_sink hub ~on_record:(observe t)
    ~on_close:(fun () -> t.stream_closed <- true)

type final = {
  fin_time : float;
  fin_busy_seconds : float;
  fin_queue_bytes : int;
  fin_queue_packets : int;
  fin_link_busy : bool;
  fin_tx_slack_seconds : float;
  fin_enqueued_packets : int;
  fin_dropped_packets : int;
  fin_delivered_packets : int;
  fin_inflight_bytes : (int * int) list;
  fin_completed_flows : int option;
}

let finalize t final =
  let index = t.index in
  let fail ~flow name detail =
    fail t ~time:final.fin_time ~flow ~index name detail
  in
  let link = Tr.link_scope in
  (* Link.busy_time accrues a packet's full serialization time when its
     transmission starts, so a packet mid-service at shutdown pushes the
     counter past wall time by up to one serialization time — that is the
     only legitimate overshoot, hence slack only while the link is busy. *)
  let busy_slack =
    if final.fin_link_busy then final.fin_tx_slack_seconds else 0.0
  in
  if final.fin_busy_seconds > final.fin_time +. busy_slack +. 1e-9 then
    fail ~flow:link "link-busy-bound"
      (Printf.sprintf "busy %.9f s > elapsed %.9f s (+%.9f s slack)"
         final.fin_busy_seconds final.fin_time busy_slack);
  if t.total_sends <> final.fin_enqueued_packets + final.fin_dropped_packets
  then
    fail ~flow:link "bottleneck-conservation"
      (Printf.sprintf "%d sends but %d enqueued + %d dropped" t.total_sends
         final.fin_enqueued_packets final.fin_dropped_packets);
  if t.total_drop_events <> final.fin_dropped_packets then
    fail ~flow:link "drop-event-count"
      (Printf.sprintf "%d Drop events but the queue counted %d"
         t.total_drop_events final.fin_dropped_packets);
  let in_service = if final.fin_link_busy then 1 else 0 in
  if
    final.fin_enqueued_packets
    <> final.fin_delivered_packets + final.fin_queue_packets + in_service
  then
    fail ~flow:link "queue-conservation"
      (Printf.sprintf "%d enqueued but %d delivered + %d queued + %d in service"
         final.fin_enqueued_packets final.fin_delivered_packets
         final.fin_queue_packets in_service);
  (match t.queue_capacity_bytes with
  | Some cap ->
    if final.fin_queue_bytes > cap then
      fail ~flow:link "queue-overflow"
        (Printf.sprintf "final occupancy %d > capacity %d" final.fin_queue_bytes
           cap)
  | None -> ());
  (match final.fin_completed_flows with
  | Some expected ->
    if t.total_completions <> expected then
      fail ~flow:link "completion-count"
        (Printf.sprintf
           "%d Flow_complete events but the lifecycle layer reports %d \
            completions"
           t.total_completions expected)
  | None -> ());
  List.iter
    (fun (flow, sender_inflight) ->
      let reconstructed =
        match Hashtbl.find_opt t.flows flow with
        | Some fs -> fs.f_inflight
        | None -> 0
      in
      if reconstructed <> sender_inflight then
        fail ~flow "final-inflight"
          (Printf.sprintf
             "sender tracks %d bytes in flight, event stream reconstructs %d"
             sender_inflight reconstructed))
    final.fin_inflight_bytes
