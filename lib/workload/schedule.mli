(** Typed flow schedules: the output of an arrival process x size
    distribution x traffic pattern, and the shared representation consumed by
    the lifecycle layer ([Tcpflow.Churn]), the fuzzer and the workload
    experiments.

    Generation is deterministic: the same parameters and the same RNG state
    produce a byte-identical schedule ({!to_string}), independently of
    [--jobs] or host. *)

type item = { arrival_s : float; size_bytes : int }
type t = item array

type pattern =
  | Single  (** one transfer per arrival *)
  | Request_response of { request_bytes : int; think_s : float }
      (** a fixed-size request at the arrival instant, then a size-drawn
          response [think_s] later *)
  | Dash of { segments : int; gap_s : float }
      (** a DASH-style session: [segments] size-drawn transfers spaced
          [gap_s] apart *)

val generate :
  ?pattern:pattern ->
  arrival:Arrival.t ->
  sizes:Dist.t ->
  horizon_s:float ->
  rng:Sim_engine.Rng.t ->
  unit ->
  t
(** Seed-split mode (the default for experiments): two independent
    sub-streams are split off [rng], one for arrival gaps and one for sizes,
    so changing the size distribution cannot move an arrival instant and vice
    versa. Transfers starting at or after [horizon_s] are dropped. *)

val generate_seeded :
  ?pattern:pattern ->
  arrival:Arrival.t ->
  sizes:Dist.t ->
  horizon_s:float ->
  seed:int ->
  unit ->
  t
(** [generate] with a fresh generator from [seed]. *)

val generate_shared :
  ?pattern:pattern ->
  arrival:Arrival.t ->
  sizes:Dist.t ->
  horizon_s:float ->
  rng:Sim_engine.Rng.t ->
  unit ->
  t
(** Single-stream compatibility mode: gap and size draws interleave on [rng]
    in generation order — the draw order of the original hand-rolled
    ext_short_flows loop, kept so its numbers reproduce exactly. *)

val count : t -> int
val total_bytes : t -> int

val offered_load : t -> rate_bps:float -> horizon_s:float -> float
(** Realised offered load: scheduled bits / horizon / capacity. *)

val to_string : t -> string
(** Canonical text form ("workload schedule v1" header, one
    ["%.9f size"] line per transfer) used by byte-identity tests. *)
