(** Flow-size distributions for open-loop workloads.

    Values are pure data (no closures) so a distribution can sit inside an
    [Experiment.config] and participate in its Marshal digest. Sampling takes
    an explicit {!Sim_engine.Rng.t}; every variant consumes a fixed number of
    draws per sample (Web_objects consumes one branch draw plus one body
    draw), so stream positions are reproducible. *)

type t =
  | Fixed of int  (** every transfer is exactly this many bytes *)
  | Uniform of { lo_bytes : int; hi_bytes : int }
      (** uniform over the integers [\[lo, hi)] *)
  | Lognormal of { mu : float; sigma : float }
      (** log-space parameters; mean is [exp (mu + sigma^2/2)] *)
  | Pareto of { xm_bytes : float; alpha : float }
      (** scale [xm] and tail index [alpha > 1] (finite mean) *)
  | Web_objects of {
      mu : float;
      sigma : float;
      tail_frac : float;
      xm_bytes : float;
      alpha : float;
    }
      (** lognormal body mixed with a Pareto tail taken with probability
          [tail_frac] — the classic web-object shape *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (non-positive sizes,
    [alpha <= 1], [tail_frac] outside [\[0,1\]]). *)

val mean_bytes : t -> float
(** Analytic mean of the distribution, used to convert offered load into an
    arrival rate. *)

val sample : t -> Sim_engine.Rng.t -> int
(** Draw one flow size in bytes (clamped to [\[1, 1e12\]]). *)

val web_objects : t
(** Preset mix: lognormal body (median ~30 kB) with a 5% Pareto tail
    (alpha 1.3) from 300 kB; mean ~146 kB. *)

val to_string : t -> string
(** One-line form used by scenario replay files; [of_string] inverts it. *)

val of_string : string -> t option
