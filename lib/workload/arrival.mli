(** Open-loop arrival processes: the clock that decides when new flows are
    born. Pure data, like {!Dist.t}, so an arrival process can live inside a
    marshalled experiment config. *)

type t =
  | Poisson of { rate_per_s : float }
      (** memoryless arrivals; inter-arrival gaps are exponential *)
  | Pareto_gaps of { mean_gap_s : float; alpha : float }
      (** heavy-tailed (bursty) inter-arrival gaps with tail index
          [alpha > 1], scaled so the mean gap is [mean_gap_s] *)

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive rates/means or [alpha <= 1]. *)

val mean_gap_s : t -> float
(** Analytic mean inter-arrival gap in seconds. *)

val next_gap : t -> Sim_engine.Rng.t -> float
(** Draw the next inter-arrival gap (one uniform consumed per call). *)

val poisson_of_load : load:float -> rate_bps:float -> mean_size_bytes:float -> t
(** [poisson_of_load ~load ~rate_bps ~mean_size_bytes] is the Poisson process
    whose offered byte rate is [load] times the link capacity:
    rate = load * rate_bps / (8 * mean_size). *)

val to_string : t -> string
(** One-line form used by scenario replay files; [of_string] inverts it. *)

val of_string : string -> t option
