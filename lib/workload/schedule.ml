module Rng = Sim_engine.Rng

type item = { arrival_s : float; size_bytes : int }
type t = item array

type pattern =
  | Single
  | Request_response of { request_bytes : int; think_s : float }
  | Dash of { segments : int; gap_s : float }

let validate_pattern = function
  | Single -> ()
  | Request_response { request_bytes; think_s } ->
    if request_bytes <= 0 || think_s < 0.0 then
      invalid_arg "Schedule.Request_response: need request > 0 and think >= 0"
  | Dash { segments; gap_s } ->
    if segments <= 0 || gap_s < 0.0 then
      invalid_arg "Schedule.Dash: need segments > 0 and gap >= 0"

(* One arrival-process event expands into the transfers of a session. Sizes
   are drawn in session order, and only for transfers that start inside the
   horizon, so the size-stream position never depends on anything but the
   kept transfers. *)
let expand_session ~pattern ~sizes ~horizon_s ~size_rng ~at acc =
  match pattern with
  | Single ->
    if at < horizon_s then
      { arrival_s = at; size_bytes = Dist.sample sizes size_rng } :: acc
    else acc
  | Request_response { request_bytes; think_s } ->
    let acc =
      if at < horizon_s then { arrival_s = at; size_bytes = request_bytes } :: acc
      else acc
    in
    let rt = at +. think_s in
    if rt < horizon_s then
      { arrival_s = rt; size_bytes = Dist.sample sizes size_rng } :: acc
    else acc
  | Dash { segments; gap_s } ->
    let acc = ref acc in
    for i = 0 to segments - 1 do
      let st = at +. (float_of_int i *. gap_s) in
      if st < horizon_s then
        acc :=
          { arrival_s = st; size_bytes = Dist.sample sizes size_rng } :: !acc
    done;
    !acc

let finalize items =
  let a = Array.of_list (List.rev items) in
  (* Sessions can overlap (a DASH session outlives the next arrival), so
     impose global arrival order. The sort is stable: simultaneous transfers
     keep their generation order, which keeps schedules byte-identical for a
     fixed seed. *)
  let idx = Array.mapi (fun i it -> (i, it)) a in
  Array.sort
    (fun (i, x) (j, y) ->
      let c = compare x.arrival_s y.arrival_s in
      if c <> 0 then c else compare i j)
    idx;
  Array.map snd idx

let generate_with ~arrival_rng ~size_rng ?(pattern = Single) ~arrival ~sizes
    ~horizon_s () =
  Arrival.validate arrival;
  Dist.validate sizes;
  validate_pattern pattern;
  if horizon_s <= 0.0 then invalid_arg "Schedule.generate: horizon must be > 0";
  let acc = ref [] in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Arrival.next_gap arrival arrival_rng;
    if !t >= horizon_s then continue := false
    else
      acc := expand_session ~pattern ~sizes ~horizon_s ~size_rng ~at:!t !acc
  done;
  finalize !acc

let generate ?pattern ~arrival ~sizes ~horizon_s ~rng () =
  (* Two independent sub-streams: changing the size distribution must not
     move a single arrival instant, and vice versa. *)
  let arrival_rng = Rng.split rng in
  let size_rng = Rng.split rng in
  generate_with ~arrival_rng ~size_rng ?pattern ~arrival ~sizes ~horizon_s ()

let generate_seeded ?pattern ~arrival ~sizes ~horizon_s ~seed () =
  generate ?pattern ~arrival ~sizes ~horizon_s ~rng:(Rng.create seed) ()

let generate_shared ?pattern ~arrival ~sizes ~horizon_s ~rng () =
  (* Compatibility mode: gap and size draws interleave on one stream, which
     is the draw order of the original ext_short_flows arrival loop. *)
  generate_with ~arrival_rng:rng ~size_rng:rng ?pattern ~arrival ~sizes
    ~horizon_s ()

let count = Array.length
let total_bytes t = Array.fold_left (fun s it -> s + it.size_bytes) 0 t

let offered_load t ~rate_bps ~horizon_s =
  if rate_bps <= 0.0 || horizon_s <= 0.0 then 0.0
  else 8.0 *. float_of_int (total_bytes t) /. horizon_s /. rate_bps

let to_string t =
  let buf = Buffer.create (64 + (32 * Array.length t)) in
  Buffer.add_string buf "workload schedule v1\n";
  Array.iter
    (fun it ->
      Buffer.add_string buf (Printf.sprintf "%.9f %d\n" it.arrival_s it.size_bytes))
    t;
  Buffer.contents buf
