module Rng = Sim_engine.Rng

type t =
  | Poisson of { rate_per_s : float }
  | Pareto_gaps of { mean_gap_s : float; alpha : float }

let validate = function
  | Poisson { rate_per_s } ->
    if rate_per_s <= 0.0 then invalid_arg "Arrival.Poisson: rate must be > 0"
  | Pareto_gaps { mean_gap_s; alpha } ->
    if mean_gap_s <= 0.0 || alpha <= 1.0 then
      invalid_arg "Arrival.Pareto_gaps: need mean > 0 and alpha > 1"

let mean_gap_s = function
  | Poisson { rate_per_s } -> 1.0 /. rate_per_s
  | Pareto_gaps { mean_gap_s; _ } -> mean_gap_s

let next_gap t rng =
  match t with
  | Poisson { rate_per_s } -> Rng.exponential rng ~mean:(1.0 /. rate_per_s)
  | Pareto_gaps { mean_gap_s; alpha } ->
    (* Scale chosen so the analytic mean is [mean_gap_s]:
       E[gap] = xm * alpha / (alpha - 1). *)
    let xm = mean_gap_s *. (alpha -. 1.0) /. alpha in
    let u = 1.0 -. Rng.float rng 1.0 in
    xm *. (u ** (-1.0 /. alpha))

let poisson_of_load ~load ~rate_bps ~mean_size_bytes =
  if load <= 0.0 then invalid_arg "Arrival.poisson_of_load: load must be > 0";
  if rate_bps <= 0.0 || mean_size_bytes <= 0.0 then
    invalid_arg "Arrival.poisson_of_load: rate and mean size must be > 0";
  Poisson { rate_per_s = load *. rate_bps /. (8.0 *. mean_size_bytes) }

let to_string = function
  | Poisson { rate_per_s } -> Printf.sprintf "poisson %.6g" rate_per_s
  | Pareto_gaps { mean_gap_s; alpha } ->
    Printf.sprintf "paretogaps %.6g %.6g" mean_gap_s alpha

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "poisson"; r ] ->
    Option.map (fun rate_per_s -> Poisson { rate_per_s }) (float_of_string_opt r)
  | [ "paretogaps"; m; a ] -> (
    match (float_of_string_opt m, float_of_string_opt a) with
    | Some mean_gap_s, Some alpha -> Some (Pareto_gaps { mean_gap_s; alpha })
    | _ -> None)
  | _ -> None
