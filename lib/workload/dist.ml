module Rng = Sim_engine.Rng

type t =
  | Fixed of int
  | Uniform of { lo_bytes : int; hi_bytes : int }
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { xm_bytes : float; alpha : float }
  | Web_objects of {
      mu : float;
      sigma : float;
      tail_frac : float;
      xm_bytes : float;
      alpha : float;
    }

let validate = function
  | Fixed bytes ->
    if bytes <= 0 then invalid_arg "Dist.Fixed: bytes must be positive"
  | Uniform { lo_bytes; hi_bytes } ->
    if lo_bytes <= 0 || hi_bytes <= lo_bytes then
      invalid_arg "Dist.Uniform: need 0 < lo < hi"
  | Lognormal { sigma; _ } ->
    if sigma < 0.0 then invalid_arg "Dist.Lognormal: sigma must be >= 0"
  | Pareto { xm_bytes; alpha } ->
    if xm_bytes <= 0.0 || alpha <= 1.0 then
      invalid_arg "Dist.Pareto: need xm > 0 and alpha > 1"
  | Web_objects { sigma; tail_frac; xm_bytes; alpha; _ } ->
    if sigma < 0.0 then invalid_arg "Dist.Web_objects: sigma must be >= 0";
    if tail_frac < 0.0 || tail_frac > 1.0 then
      invalid_arg "Dist.Web_objects: tail_frac must be in [0, 1]";
    if xm_bytes <= 0.0 || alpha <= 1.0 then
      invalid_arg "Dist.Web_objects: need xm > 0 and alpha > 1"

let mean_bytes = function
  | Fixed bytes -> float_of_int bytes
  | Uniform { lo_bytes; hi_bytes } ->
    (* [sample] draws uniformly over the integers [lo, hi). *)
    (float_of_int lo_bytes +. float_of_int (hi_bytes - 1)) /. 2.0
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto { xm_bytes; alpha } -> alpha *. xm_bytes /. (alpha -. 1.0)
  | Web_objects { mu; sigma; tail_frac; xm_bytes; alpha } ->
    ((1.0 -. tail_frac) *. exp (mu +. (sigma *. sigma /. 2.0)))
    +. (tail_frac *. (alpha *. xm_bytes /. (alpha -. 1.0)))

let clamp_bytes x =
  if x < 1.0 then 1 else if x > 1e12 then 1_000_000_000_000 else int_of_float x

(* u in (0, 1] so the Pareto inverse-CDF never divides by zero. *)
let unit_open_low rng = 1.0 -. Rng.float rng 1.0

let pareto_draw rng ~xm ~alpha =
  xm *. ((unit_open_low rng) ** (-1.0 /. alpha))

let sample t rng =
  match t with
  | Fixed bytes -> bytes
  | Uniform { lo_bytes; hi_bytes } -> lo_bytes + Rng.int rng (hi_bytes - lo_bytes)
  | Lognormal { mu; sigma } ->
    clamp_bytes (exp (mu +. (sigma *. Rng.gaussian rng)))
  | Pareto { xm_bytes; alpha } ->
    clamp_bytes (pareto_draw rng ~xm:xm_bytes ~alpha)
  | Web_objects { mu; sigma; tail_frac; xm_bytes; alpha } ->
    (* Branch draw first, then exactly one body draw: a fixed number of
       uniforms per branch keeps replay stable under parameter tweaks that
       do not change which branch is taken. *)
    if Rng.float rng 1.0 < tail_frac then
      clamp_bytes (pareto_draw rng ~xm:xm_bytes ~alpha)
    else clamp_bytes (exp (mu +. (sigma *. Rng.gaussian rng)))

(* A web-object mix in the spirit of the classic HTTP-response fits: a
   lognormal body with median ~30 kB and a 5% Pareto tail (alpha 1.3)
   starting at 300 kB. Mean is ~146 kB; the tail carries ~45% of bytes. *)
let web_objects =
  Web_objects
    {
      mu = log 30_000.0;
      sigma = 1.0;
      tail_frac = 0.05;
      xm_bytes = 300_000.0;
      alpha = 1.3;
    }

let to_string = function
  | Fixed bytes -> Printf.sprintf "fixed %d" bytes
  | Uniform { lo_bytes; hi_bytes } ->
    Printf.sprintf "uniform %d %d" lo_bytes hi_bytes
  | Lognormal { mu; sigma } -> Printf.sprintf "lognormal %.6g %.6g" mu sigma
  | Pareto { xm_bytes; alpha } ->
    Printf.sprintf "pareto %.6g %.6g" xm_bytes alpha
  | Web_objects { mu; sigma; tail_frac; xm_bytes; alpha } ->
    Printf.sprintf "web %.6g %.6g %.6g %.6g %.6g" mu sigma tail_frac xm_bytes
      alpha

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "fixed"; b ] -> Option.map (fun b -> Fixed b) (int_of_string_opt b)
  | [ "uniform"; lo; hi ] -> (
    match (int_of_string_opt lo, int_of_string_opt hi) with
    | Some lo_bytes, Some hi_bytes -> Some (Uniform { lo_bytes; hi_bytes })
    | _ -> None)
  | [ "lognormal"; mu; sigma ] -> (
    match (float_of_string_opt mu, float_of_string_opt sigma) with
    | Some mu, Some sigma -> Some (Lognormal { mu; sigma })
    | _ -> None)
  | [ "pareto"; xm; alpha ] -> (
    match (float_of_string_opt xm, float_of_string_opt alpha) with
    | Some xm_bytes, Some alpha -> Some (Pareto { xm_bytes; alpha })
    | _ -> None)
  | [ "web"; mu; sigma; tf; xm; alpha ] -> (
    match
      ( float_of_string_opt mu,
        float_of_string_opt sigma,
        float_of_string_opt tf,
        float_of_string_opt xm,
        float_of_string_opt alpha )
    with
    | Some mu, Some sigma, Some tail_frac, Some xm_bytes, Some alpha ->
      Some (Web_objects { mu; sigma; tail_frac; xm_bytes; alpha })
    | _ -> None)
  | _ -> None
