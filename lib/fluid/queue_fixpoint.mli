(** The shared fluid-queue fixed point, as a zero-allocation kernel.

    Both fluid-style backends ({!Fluid_sim}'s round stepper and
    {!Ode_model}'s integrator) model the bottleneck queue as the algebraic
    fixed point of

    {v  Σᵢ wᵢ / (rttᵢ + q/C)  =  C  v}

    (or [q = 0] when the link is under-utilized): every flow's in-flight
    data [wᵢ] is spread over its inflated round trip, and the queue length
    is whatever makes the arrival rate match the capacity. This module
    solves that equation over bare float arrays so the per-step inner loops
    of both backends allocate nothing.

    The [base] offset lets batched callers, whose per-flow arrays
    concatenate many specs' flows, solve the slice
    [w.(base) .. w.(base + n - 1)] in place; single-spec callers pass
    [~base:0]. [base] is a required (not optional) argument so no call
    site boxes a [Some] per solve on the per-step hot path. *)

val offered :
  base:int ->
  capacity:float -> w:float array -> rtt:float array -> n:int -> q:float ->
  float
(** [offered ~base ~capacity ~w ~rtt ~n ~q] is [Σᵢ wᵢ/(rttᵢ + q/capacity)]
    over the [n] entries starting at [base] — the aggregate arrival rate
    (bytes/s) at queue length [q] (bytes). *)

val solve :
  base:int ->
  capacity:float -> w:float array -> rtt:float array -> n:int ->
  init:float ->
  float
(** The unconstrained fixed point [q* >= 0] (bytes). [init] is a warm-start
    guess (pass the previous step's solution, or [0.]); the solver is a
    safeguarded Newton iteration on the convex decreasing residual
    [offered q - capacity], so a warm start from a nearby solution
    converges in a couple of iterations. Allocation-free.

    When every [rtt.(i)] in the slice is equal the fixed point is
    closed-form ([Σ w - C·rtt]) and [init] is ignored. *)
