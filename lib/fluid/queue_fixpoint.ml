(* The residual f(q) = offered(q) - C is strictly decreasing and convex in
   q >= 0 (each term w/(rtt + q/C) is), so Newton iterates from any point
   left of the root increase monotonically to it, and an iterate that
   overshoots lands back on the left on the next step. No bracketing is
   needed; the iteration cap is a safety net, not a convergence crutch.

   Every entry point takes an optional [base] offset so batched callers
   (the SoA fluid/ODE kernels concatenate all specs' flows into one
   array) can solve one spec's slice without copying it out. *)

let offered ~base ~capacity ~w ~rtt ~n ~q =
  let inv_c = 1.0 /. capacity in
  let acc = ref 0.0 in
  for i = base to base + n - 1 do
    acc := !acc +. (w.(i) /. (rtt.(i) +. (q *. inv_c)))
  done;
  !acc

(* Derivative of [offered] w.r.t. q: -(1/C) Σ wᵢ/(rttᵢ + q/C)². *)
let offered' ~base ~capacity ~w ~rtt ~n ~q =
  let inv_c = 1.0 /. capacity in
  let acc = ref 0.0 in
  for i = base to base + n - 1 do
    let d = rtt.(i) +. (q *. inv_c) in
    acc := !acc +. (w.(i) /. (d *. d))
  done;
  -.(!acc *. inv_c)

let uniform_rtt ~base rtt n =
  let r0 = rtt.(base) in
  let ok = ref true in
  for i = base + 1 to base + n - 1 do
    if rtt.(i) <> r0 then ok := false (* simlint: allow R4 *)
  done;
  !ok

let solve ~base ~capacity ~w ~rtt ~n ~init =
  if n = 0 then 0.0
  else if offered ~base ~capacity ~w ~rtt ~n ~q:0.0 <= capacity then 0.0
  else if uniform_rtt ~base rtt n then begin
    (* Σ w/(rtt + q/C) = C  ⇔  q = Σ w − C·rtt, exactly. *)
    let sum = ref 0.0 in
    for i = base to base + n - 1 do
      sum := !sum +. w.(i)
    done;
    Float.max 0.0 (!sum -. (capacity *. rtt.(base)))
  end
  else begin
    let q = ref (Float.max 0.0 init) in
    let continue = ref true in
    let iters = ref 0 in
    while !continue && !iters < 40 do
      incr iters;
      let f = offered ~base ~capacity ~w ~rtt ~n ~q:!q -. capacity in
      let f' = offered' ~base ~capacity ~w ~rtt ~n ~q:!q in
      let step = f /. f' in
      let next = Float.max 0.0 (!q -. step) in
      if Float.abs (next -. !q) <= 1e-9 *. (1.0 +. !q) then begin
        q := next;
        continue := false
      end
      else q := next
    done;
    !q
  end
