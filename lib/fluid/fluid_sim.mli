(** A fast fluid/round-level simulator of competing CUBIC and BBR flows.

    Purpose: the paper's Nash-Equilibrium experiments (Figs. 9–11) enumerate
    thousands of multi-flow runs; packet-level simulation of all of them is
    needlessly slow. This model keeps the mechanisms the paper's analysis
    depends on and abstracts everything else:

    - CUBIC windows follow Eq. (1) exactly between loss epochs;
    - the shared queue is the fluid fixed point of
      Σᵢ wᵢ/(rttᵢ + q/C) = C (or q = 0 when the link is under-utilized),
      solved by the shared {!Queue_fixpoint} kernel;
    - buffer overflow triggers a back-off event whose victim set is the
      synchronization mode: all CUBIC flows ({!Synchronized}), the largest
      window only ({!Desynchronized}), or each independently with
      probability p ({!Stochastic});
    - BBR keeps cwnd-limited in-flight data 2·btlbw·rtprop, with btlbw a
      windowed max of its achieved rate and rtprop refreshed by periodic
      ProbeRTT episodes during which its in-flight drops to ≈0 and it
      samples the residual queue — the paper's Eq. (9) mechanism;
    - the BBRv2 variant adds a loss-clamped in-flight bound (β = 0.7) with
      multiplicative recovery.

    The implementation is struct-of-arrays with a zero-allocation step loop
    (preallocated scratch, flat-ring bandwidth filters, no per-step
    records/closures/lists): see DESIGN.md "Analytic backends".

    Most callers should not build a {!config} by hand: {!Sim_backend.fluid}
    runs this simulator behind the backend-neutral spec, selecting kinds by
    registry CCA name via {!kind_of_cca}. Cross-validation against the
    packet-level simulator and the ODE backend is part of the test suite
    and EXPERIMENTS.md. *)

type kind = Cubic | Bbr | Bbr2

type flow_spec = { kind : kind; rtt : Sim_engine.Units.seconds }

type sync_mode =
  | Synchronized
  | Desynchronized
  | Stochastic of float  (** Per-flow back-off probability on overflow. *)

type stepper =
  | Rounds
      (** The event-driven round stepping: one explicit step per [dt], loss
          rounds applied at buffer overflow. The historical path — golden
          CSVs and the differential grid are blessed against it. *)
  | Heun
      (** A fixed-step two-stage (predictor/corrector) integrator of the
          same dynamics: each step is re-taken under the midpoint queuing
          delay, damping the one-[dt] feedback lag of {!Rounds} at coarse
          [dt]. Loss rounds are still discrete. *)

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow_spec list;
  sync : sync_mode;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  dt : Sim_engine.Units.seconds;  (** Integration step (default 2 ms). *)
  seed : int;
  trace_period : Sim_engine.Units.seconds;
      (** Record a {!trace_sample} this often; 0 = off. *)
  stepper : stepper;
}

val default_config : config
(** 100 Mbps, 10 BDP at 40 ms, 1 CUBIC vs 1 BBR, synchronized, 60 s with
    20 s warm-up, dt 2 ms, seed 1, {!Rounds} stepping. *)

(** {1 Registry-name mapping}

    The one place where {!Cca.Registry} name strings meet fluid kinds;
    everything above the fluid layer (the backend API, tests, drivers)
    selects kinds through these instead of matching strings itself. *)

type unsupported_cca = { cca : string; supported : string list }
(** A CCA name with no fluid counterpart, plus the names that do have one. *)

val supported_ccas : string list
(** [["cubic"; "bbr"; "bbr2"]]. *)

val kind_of_cca : string -> (kind, unsupported_cca) result

val kind_of_cca_exn : string -> kind
(** Raises [Invalid_argument] listing the supported names. *)

val cca_of_kind : kind -> string

type trace_sample = {
  t_time : float;
  t_queue : float;  (** Queue length, bytes. *)
  t_w : float array;  (** Per-flow in-flight targets, bytes. *)
  t_btlbw : float array;  (** Per-flow BBR bandwidth estimates, bytes/s. *)
  t_rtprop : float array;  (** Per-flow BBR RTprop estimates, seconds. *)
}

type result = {
  per_flow_bps : float array;  (** Mean goodput over the window. *)
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
  flow_kinds : kind array;
  trace : trace_sample list;  (** Populated when [trace_period > 0]. *)
}

val run : config -> result

val run_batch : config array -> result array
(** Advance all configs, spec-major, over one contiguous
    struct-of-arrays arena: each config owns a disjoint slice of the
    batch state and its own RNG and is stepped through its full horizon
    before the next starts, so [run_batch configs] returns exactly
    [Array.map run configs] — byte-identical to sequential evaluation
    regardless of batch composition or order — while amortizing arena
    allocation and validation across the batch. [run] itself is the
    batch of one. Validation errors ([Invalid_argument]) are raised for
    the first offending config, before any stepping. *)

val mean_bps_of_kind : result -> kind -> float
(** Mean per-flow goodput over flows of the given kind; [nan] if none. *)

val aggregate_bps_of_kind : result -> kind -> float
