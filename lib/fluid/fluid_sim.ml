type kind = Cubic | Bbr | Bbr2

type flow_spec = { kind : kind; rtt : Sim_engine.Units.seconds }

type sync_mode = Synchronized | Desynchronized | Stochastic of float

type stepper = Rounds | Heun

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow_spec list;
  sync : sync_mode;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  dt : Sim_engine.Units.seconds;
  seed : int;
  trace_period : Sim_engine.Units.seconds;  (* 0. = no trace *)
  stepper : stepper;
}

let mss = float_of_int Sim_engine.Units.mss
let inv_mss = 1.0 /. mss

let default_config =
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  {
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale 10.0
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows = [ { kind = Cubic; rtt }; { kind = Bbr; rtt } ];
    sync = Synchronized;
    duration = Sim_engine.Units.seconds 60.0;
    warmup = Sim_engine.Units.seconds 20.0;
    dt = Sim_engine.Units.ms 2.0;
    seed = 1;
    trace_period = Sim_engine.Units.seconds 0.0;
    stepper = Rounds;
  }

(* --- CCA-name mapping (the one place registry names meet fluid kinds) --- *)

type unsupported_cca = { cca : string; supported : string list }

let supported_ccas = [ "cubic"; "bbr"; "bbr2" ]

let kind_of_cca = function
  | "cubic" -> Ok Cubic
  | "bbr" -> Ok Bbr
  | "bbr2" -> Ok Bbr2
  | cca -> Error { cca; supported = supported_ccas }

let cca_of_kind = function Cubic -> "cubic" | Bbr -> "bbr" | Bbr2 -> "bbr2"

let kind_of_cca_exn cca =
  match kind_of_cca cca with
  | Ok k -> k
  | Error { cca; supported } ->
    invalid_arg
      (Printf.sprintf "Fluid_sim: no fluid model for CCA %S (supported: %s)"
         cca
         (String.concat ", " supported))

type trace_sample = {
  t_time : float;
  t_queue : float;
  t_w : float array;
  t_btlbw : float array;
  t_rtprop : float array;
}

type result = {
  per_flow_bps : float array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
  flow_kinds : kind array;
  trace : trace_sample list;
}

let cubic_c = 0.4 (* MSS/s^3 *)
let cubic_beta = 0.3
let probe_rtt_interval = 10.0
let probe_rtt_duration = 0.2

(* Float min/max without [Float.min]/[Float.max]'s NaN handling: the step
   kernel never produces NaNs, and the plain comparisons compile to a
   single branch each instead of three. *)
let[@inline] fmin (a : float) (b : float) = if a <= b then a else b
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Batched struct-of-arrays state: the per-flow state of every spec in the
   batch lives in one set of contiguous arrays, spec [s] owning the slice
   [off.(s) .. off.(s+1) - 1] (the BBR bandwidth rings use the same global
   flow index, [i * bw_cap]). Per-spec parameters and accumulators are
   plain arrays indexed by [s]. One float array per field (plus int/bool
   arrays for discrete state) keeps the integrator's inner loop free of
   per-step allocation; the hot functions below additionally take only
   [int] arguments and communicate transient floats through scratch
   slots ([srate], [prev_qdelay]) so no float is boxed at a call
   boundary.

   There is no cross-spec state anywhere in the kernel: each spec reads
   and writes only its own slice and draws only from its own RNG, which is
   what makes batched results byte-identical to one-spec-at-a-time runs
   regardless of batch composition or order (see DESIGN.md §15). *)

let bw_cap = 64 (* per-flow deque slots; ~11 live entries at 10-RTT windows *)

type batch = {
  off : int array;  (* length nspecs+1: spec s owns flows off.(s)..off.(s+1)-1 *)
  (* per-spec parameters *)
  capacity : float array;  (* bytes/s *)
  inv_capacity : float array;
  buffer : float array;  (* bytes *)
  fair : float array;  (* capacity / n *)
  sdt : float array;  (* step width, seconds *)
  swarmup : float array;
  swindow : float array;  (* duration - warmup *)
  nsteps : int array;
  heun : bool array;
  sync : sync_mode array;
  uniform : bool array;  (* all flow RTTs equal: closed-form queue solve *)
  all_cubic : bool array;  (* no BBR flows: skip the estimator pass *)
  cap_rtt0 : float array;  (* capacity * rtt, valid when uniform *)
  rngs : Sim_engine.Rng.t array;
  (* per-spec accumulators and scratch *)
  srate : float array;  (* staging slot for [update_btlbw]'s rate sample *)
  prev_qdelay : float array;  (* clamped queuing delay of the last step *)
  q_prev : float array;  (* unclamped q*, warm start for the Newton solve *)
  last_q : float array;  (* clamped queue of the last step (for traces) *)
  queue_integral : float array;
  queue_time : float array;
  loss_events : int array;
  (* per-flow state, concatenated across specs *)
  kinds : kind array;
  rtt : float array;  (* seconds *)
  w : float array;  (* current window / in-flight target, bytes *)
  (* CUBIC *)
  slow_start : bool array;
  w_max : float array;  (* bytes *)
  epoch : float array;  (* time of last back-off *)
  ck : float array;  (* cubic K, seconds *)
  (* BBR *)
  btlbw : float array;  (* bytes/s, windowed max *)
  bw_time : float array;  (* ring of sample times, flow i at [i*bw_cap ..] *)
  bw_rate : float array;  (* ring of sampled rates *)
  bw_head : int array;  (* oldest live slot, relative to the flow's base *)
  bw_len : int array;
  last_bw_update : float array;
  w_cur : float array;  (* BBR's actual in-flight (ramps at pacing rate) *)
  rtprop : float array;
  rtprop_stamp : float array;
  probing_until : float array;  (* > now while in ProbeRTT *)
  probe_min_rtt : float array;  (* min RTT sampled during current probe *)
  (* BBRv2 *)
  inflight_hi : float array;
  last_loss_time : float array;
  last_hi_growth : float array;
  last_backoff : float array;  (* for at-most-one back-off per RTT *)
  (* accounting *)
  delivered : float array;  (* bytes in measurement window *)
  rate : float array;  (* this step's per-flow throughput, bytes/s *)
  w_save : float array;  (* Heun predictor snapshots of w / w_cur *)
  w_cur_save : float array;
}

let make_batch configs =
  let module Raw = Sim_engine.Units.Raw in
  let nspecs = Array.length configs in
  let off = Array.make (nspecs + 1) 0 in
  Array.iteri
    (fun s (c : config) -> off.(s + 1) <- off.(s) + List.length c.flows)
    configs;
  let total = off.(nspecs) in
  let bt =
    {
      off;
      capacity = Array.make nspecs 0.0;
      inv_capacity = Array.make nspecs 0.0;
      buffer = Array.make nspecs 0.0;
      fair = Array.make nspecs 0.0;
      sdt = Array.make nspecs 0.0;
      swarmup = Array.make nspecs 0.0;
      swindow = Array.make nspecs 0.0;
      nsteps = Array.make nspecs 0;
      heun = Array.make nspecs false;
      sync = Array.make nspecs Synchronized;
      uniform = Array.make nspecs true;
      all_cubic = Array.make nspecs true;
      cap_rtt0 = Array.make nspecs 0.0;
      rngs = Array.make nspecs (Sim_engine.Rng.create 0);
      srate = Array.make nspecs 0.0;
      prev_qdelay = Array.make nspecs 0.0;
      q_prev = Array.make nspecs 0.0;
      last_q = Array.make nspecs 0.0;
      queue_integral = Array.make nspecs 0.0;
      queue_time = Array.make nspecs 0.0;
      loss_events = Array.make nspecs 0;
      kinds = Array.make total Cubic;
      rtt = Array.make total 0.0;
      w = Array.make total 0.0;
      slow_start = Array.make total true;
      w_max = Array.make total 0.0;
      epoch = Array.make total 0.0;
      ck = Array.make total 0.0;
      btlbw = Array.make total 0.0;
      bw_time = Array.make (total * bw_cap) 0.0;
      bw_rate = Array.make (total * bw_cap) 0.0;
      bw_head = Array.make total 0;
      bw_len = Array.make total 0;
      last_bw_update = Array.make total neg_infinity;
      w_cur = Array.make total 0.0;
      rtprop = Array.make total 0.0;
      rtprop_stamp = Array.make total 0.0;
      probing_until = Array.make total 0.0;
      probe_min_rtt = Array.make total infinity;
      inflight_hi = Array.make total infinity;
      last_loss_time = Array.make total neg_infinity;
      last_hi_growth = Array.make total 0.0;
      last_backoff = Array.make total neg_infinity;
      delivered = Array.make total 0.0;
      rate = Array.make total 0.0;
      w_save = Array.make total 0.0;
      w_cur_save = Array.make total 0.0;
    }
  in
  Array.iteri
    (fun s (c : config) ->
      let dt = Raw.to_float c.dt in
      let duration = Raw.to_float c.duration in
      let warmup = Raw.to_float c.warmup in
      if dt <= 0.0 then invalid_arg "Fluid_sim.run: dt";
      if warmup >= duration then
        invalid_arg "Fluid_sim.run: warmup must precede duration";
      if c.flows = [] then invalid_arg "Fluid_sim.run: no flows";
      let capacity = Sim_engine.Units.bytes_per_sec c.capacity_bps in
      let lo = off.(s) in
      let n = off.(s + 1) - lo in
      let rng = Sim_engine.Rng.create c.seed in
      bt.capacity.(s) <- capacity;
      bt.inv_capacity.(s) <- 1.0 /. capacity;
      bt.buffer.(s) <- Raw.to_float c.buffer_bytes;
      bt.fair.(s) <- capacity /. float_of_int n;
      bt.sdt.(s) <- dt;
      bt.swarmup.(s) <- warmup;
      bt.swindow.(s) <- duration -. warmup;
      bt.nsteps.(s) <- int_of_float (Float.round (duration /. dt));
      bt.heun.(s) <- (match c.stepper with Heun -> true | Rounds -> false);
      bt.sync.(s) <- c.sync;
      bt.rngs.(s) <- rng;
      List.iteri
        (fun k (f : flow_spec) ->
          let i = lo + k in
          let s_rtt = Raw.to_float f.rtt in
          (* All flows start together, as in the paper's experiments; the
             jitter only desynchronizes slow-start exits slightly. *)
          let jitter = Sim_engine.Rng.uniform_in rng ~lo:0.8 ~hi:1.2 in
          let w0 = 10.0 *. mss *. jitter in
          bt.kinds.(i) <- f.kind;
          bt.rtt.(i) <- s_rtt;
          bt.w.(i) <- w0;
          bt.w_max.(i) <- w0;
          bt.epoch.(i) <- -.Sim_engine.Rng.float rng 1.0;
          bt.btlbw.(i) <- w0 /. s_rtt;
          bt.w_cur.(i) <- w0;
          bt.rtprop.(i) <- s_rtt;
          bt.rtprop_stamp.(i) <- Sim_engine.Rng.float rng 2.0)
        c.flows;
      let uniform = ref true in
      for i = lo + 1 to off.(s + 1) - 1 do
        if bt.rtt.(i) <> bt.rtt.(lo) then uniform := false
        (* simlint: allow R4 *)
      done;
      bt.uniform.(s) <- !uniform;
      let all_cubic = ref true in
      for i = lo to off.(s + 1) - 1 do
        match bt.kinds.(i) with
        | Cubic -> ()
        | Bbr | Bbr2 -> all_cubic := false
      done;
      bt.all_cubic.(s) <- !all_cubic;
      bt.cap_rtt0.(s) <- capacity *. bt.rtt.(lo))
    configs;
  bt

let[@inline] cubic_window bt i ~now =
  let t = now -. bt.epoch.(i) in
  let t3 = t -. bt.ck.(i) in
  let w_mss = (cubic_c *. (t3 *. t3 *. t3)) +. (bt.w_max.(i) *. inv_mss) in
  fmax (2.0 *. mss) (w_mss *. mss)

let cubic_backoff bt i ~now =
  bt.slow_start.(i) <- false;
  bt.w_max.(i) <- bt.w.(i);
  bt.ck.(i) <- Float.cbrt (bt.w_max.(i) *. inv_mss *. cubic_beta /. cubic_c);
  bt.epoch.(i) <- now;
  bt.w.(i) <- fmax (2.0 *. mss) (0.7 *. bt.w.(i));
  bt.last_backoff.(i) <- now

(* Windowed max of the achieved rate over roughly 10 (inflated) RTTs: a
   monotone deque (decreasing rates front→back, increasing times) in the
   flat ring. Expired entries leave at the front, dominated ones at the
   back, and the front is the max. Called once per inflated RTT per BBR
   flow; takes only ints and reads the rate sample and queuing delay from
   the batch scratch ([srate], [prev_qdelay]) so the amortized call boxes
   nothing. *)
let update_btlbw bt ~s ~i ~step =
  let now = float_of_int step *. bt.sdt.(s) in
  let rate = bt.srate.(s) in
  let window = 10.0 *. (bt.rtt.(i) +. bt.prev_qdelay.(s)) in
  let base = i * bw_cap in
  (* Expire from the front (times increase front→back). *)
  while
    bt.bw_len.(i) > 0
    && now -. bt.bw_time.(base + bt.bw_head.(i)) > window
  do
    bt.bw_head.(i) <- (bt.bw_head.(i) + 1) mod bw_cap;
    bt.bw_len.(i) <- bt.bw_len.(i) - 1
  done;
  (* Drop dominated entries from the back. *)
  while
    bt.bw_len.(i) > 0
    &&
    let back = (bt.bw_head.(i) + bt.bw_len.(i) - 1) mod bw_cap in
    bt.bw_rate.(base + back) <= rate
  do
    bt.bw_len.(i) <- bt.bw_len.(i) - 1
  done;
  (* Push (now, rate); on a full ring drop the oldest (cannot happen at
     one sample per RTT and 10-RTT windows, but stay safe). *)
  if bt.bw_len.(i) = bw_cap then begin
    bt.bw_head.(i) <- (bt.bw_head.(i) + 1) mod bw_cap;
    bt.bw_len.(i) <- bt.bw_len.(i) - 1
  end;
  let slot = (bt.bw_head.(i) + bt.bw_len.(i)) mod bw_cap in
  bt.bw_time.(base + slot) <- now;
  bt.bw_rate.(base + slot) <- rate;
  bt.bw_len.(i) <- bt.bw_len.(i) + 1;
  bt.btlbw.(i) <- bt.bw_rate.(base + bt.bw_head.(i))


(* Buffer overflow: the queue saturates at B, excess is dropped, and
   eligible flows register one loss event per (inflated) RTT. The CUBIC
   victim set is the synchronization mode; BBRv2 clamps inflight_hi.
   Reads the clamped queuing delay from [prev_qdelay] (already updated for
   this step). *)
let apply_losses bt s ~step =
  let lo = bt.off.(s) in
  let hi = bt.off.(s + 1) in
  let now = float_of_int step *. bt.sdt.(s) in
  let qdelay = bt.prev_qdelay.(s) in
  (* Eligibility (one backoff per inflated RTT) is tested inline in each
     loop: a local [eligible i] helper would close over [now]/[qdelay]
     and allocate on every overflow call (A1). *)
  (match bt.sync.(s) with
  | Synchronized ->
    for i = lo to hi - 1 do
      match bt.kinds.(i) with
      | Cubic when now -. bt.last_backoff.(i) > bt.rtt.(i) +. qdelay ->
        cubic_backoff bt i ~now
      | Cubic | Bbr | Bbr2 -> ()
    done
  | Desynchronized ->
    (* The largest eligible window backs off (first max wins ties). *)
    let victim = ref (-1) in
    for i = lo to hi - 1 do
      match bt.kinds.(i) with
      | Cubic
        when now -. bt.last_backoff.(i) > bt.rtt.(i) +. qdelay
             && (!victim < 0 || bt.w.(i) > bt.w.(!victim)) ->
        victim := i
      | Cubic | Bbr | Bbr2 -> ()
    done;
    if !victim >= 0 then cubic_backoff bt !victim ~now
  | Stochastic p ->
    let rng = bt.rngs.(s) in
    let any = ref false in
    let victim = ref (-1) in
    for i = lo to hi - 1 do
      match bt.kinds.(i) with
      | Cubic when now -. bt.last_backoff.(i) > bt.rtt.(i) +. qdelay ->
        if !victim < 0 || bt.w.(i) > bt.w.(!victim) then victim := i;
        if Sim_engine.Rng.float rng 1.0 < p then begin
          any := true;
          cubic_backoff bt i ~now
        end
      | Cubic | Bbr | Bbr2 -> ()
    done;
    if (not !any) && !victim >= 0 then cubic_backoff bt !victim ~now);
  (* BBRv2 reacts to the shared loss round. *)
  for i = lo to hi - 1 do
    match bt.kinds.(i) with
    | Bbr2 when now -. bt.last_backoff.(i) > bt.rtt.(i) +. qdelay ->
      bt.inflight_hi.(i) <-
        fmax (4.0 *. mss) (0.7 *. fmin bt.w.(i) bt.inflight_hi.(i));
      bt.last_loss_time.(i) <- now;
      bt.last_backoff.(i) <- now
    | Cubic | Bbr | Bbr2 -> ()
  done

(* The fused per-spec integrator: advances spec [s] through steps
   [from, until) of its time grid. One call per spec is the whole batch
   pass — spec-major order keeps the spec's slice of the arena L1-hot
   for its entire run, and every per-spec invariant (capacity, dt, flow
   range, uniformity, Heun flag) and accumulator lives in a local across
   all steps instead of being re-read per step. Each step runs two
   passes over the spec's flows: windows (with the queue fixed point
   solved between passes — closed-form for the uniform-RTT shape,
   warm-started Newton otherwise) and fused rates/accounting; all-CUBIC
   specs skip the estimator machinery entirely.

   With the Heun stepper the predictor's stage is discarded and re-taken
   under the midpoint of the old and predicted delays, damping the
   dt-sized lag of the explicit round step.

   Zero-alloc: registered under the A1 verifier in hotpaths.sexp; traced
   runs are driven in per-step segments by [run_batch] so the sample
   consing stays out of this kernel. *)
let run_spec bt s ~from ~until =
  let lo = bt.off.(s) in
  let hi = bt.off.(s + 1) in
  let n = hi - lo in
  let dt = bt.sdt.(s) in
  let capacity = bt.capacity.(s) in
  let inv_capacity = bt.inv_capacity.(s) in
  let buffer = bt.buffer.(s) in
  let swarmup = bt.swarmup.(s) in
  let fair = bt.fair.(s) in
  let heun = bt.heun.(s) in
  let uniform = bt.uniform.(s) in
  let all_cubic = bt.all_cubic.(s) in
  let cap_rtt0 = bt.cap_rtt0.(s) in
  let kinds = bt.kinds in
  let w = bt.w in
  let rtt = bt.rtt in
  let slow_start = bt.slow_start in
  let delivered = bt.delivered in
  let rate_a = bt.rate in
  let nstages = if heun then 2 else 1 in
  let prev_qdelay = ref bt.prev_qdelay.(s) in
  let q_prev = ref bt.q_prev.(s) in
  let queue_integral = ref bt.queue_integral.(s) in
  let last_q = ref bt.last_q.(s) in
  for step = from to until - 1 do
    let now = float_of_int step *. dt in
    (* 1. Desired in-flight per flow from the effective queuing delay,
       and the queue fixed point at those windows. *)
    if heun then begin
      Array.blit w lo bt.w_save lo n;
      Array.blit bt.w_cur lo bt.w_cur_save lo n
    end;
    let q_star = ref 0.0 in
    for stage = 1 to nstages do
      let qdelay =
        if stage = 1 then !prev_qdelay
        else begin
          (* Heun corrector: rewind and re-take the step under the
             midpoint of the old and predicted delays. *)
          Array.blit bt.w_save lo w lo n;
          Array.blit bt.w_cur_save lo bt.w_cur lo n;
          0.5 *. (!prev_qdelay +. (fmin !q_star buffer *. inv_capacity))
        end
      in
      let sum = ref 0.0 in
      for i = lo to hi - 1 do
        (match kinds.(i) with
        | Cubic ->
          if slow_start.(i) then
            (* Doubling per (inflated) RTT until the first loss. *)
            w.(i) <- w.(i) *. Float.exp2 (dt /. (rtt.(i) +. qdelay))
          else w.(i) <- cubic_window bt i ~now
        | Bbr | Bbr2 ->
          if now < bt.probing_until.(i) then w.(i) <- 4.0 *. mss
          else begin
            let btlbw = bt.btlbw.(i) in
            let cap = 2.0 *. btlbw *. bt.rtprop.(i) in
            let cap =
              match kinds.(i) with
              | Bbr2 -> fmin cap bt.inflight_hi.(i)
              | Cubic | Bbr -> cap
            in
            (* The in-flight cap applies immediately (it is a cwnd
               bound); growth toward a raised cap is limited by the
               pacing surplus of the ProbeBW up-phases (~0.25·btlbw). *)
            let wc = bt.w_cur.(i) in
            let wc =
              if wc > cap then cap
              else fmin cap (wc +. (0.25 *. btlbw *. dt))
            in
            bt.w_cur.(i) <- wc;
            w.(i) <- fmax (4.0 *. mss) wc
          end);
        sum := !sum +. w.(i)
      done;
      q_star :=
        (if uniform then fmax 0.0 (!sum -. cap_rtt0)
         else
           Queue_fixpoint.solve ~base:lo ~capacity ~w ~rtt ~n ~init:!q_prev)
    done;
    let q_star = !q_star in
    q_prev := q_star;
    let overflowing = q_star > buffer in
    let q = if overflowing then buffer else q_star in
    let qdelay = q *. inv_capacity in
    prev_qdelay := qdelay;
    (* 2. Overflow: the excess is dropped and eligible flows back off.
       The cold helpers read the queuing delay from the [prev_qdelay]
       slot, so it is written back only on the paths that call them. *)
    if overflowing then begin
      bt.prev_qdelay.(s) <- qdelay;
      bt.loss_events.(s) <- bt.loss_events.(s) + 1;
      apply_losses bt s ~step
    end;
    queue_integral := !queue_integral +. (q *. dt);
    last_q := q;
    (* 3. Per-flow throughput (fluid shares at the solved queue, or
       drop-tail shares of the saturated buffer) fused with delivery
       accounting, the BBR bandwidth/RTT estimators, and the BBRv2
       inflight_hi recovery. *)
    (if overflowing then begin
       let total = ref 0.0 in
       for i = lo to hi - 1 do
         let d = w.(i) /. (rtt.(i) +. qdelay) in
         rate_a.(i) <- d;
         total := !total +. d
       done;
       let scale = capacity /. !total in
       for i = lo to hi - 1 do
         rate_a.(i) <- rate_a.(i) *. scale
       done
     end);
    let measuring = now >= swarmup in
    if all_cubic then begin
      (* No estimator state to maintain: the whole pass reduces to
         delivery accounting, and to nothing at all during warm-up. *)
      if measuring then
        if overflowing then
          for i = lo to hi - 1 do
            delivered.(i) <- delivered.(i) +. (rate_a.(i) *. dt)
          done
        else if uniform then begin
          (* One reciprocal for the whole spec instead of one per flow. *)
          let inv_rtt = dt /. (rtt.(lo) +. qdelay) in
          for i = lo to hi - 1 do
            delivered.(i) <- delivered.(i) +. (w.(i) *. inv_rtt)
          done
        end
        else
          for i = lo to hi - 1 do
            delivered.(i) <-
              delivered.(i) +. (w.(i) /. (rtt.(i) +. qdelay) *. dt)
          done
    end
    else begin
      let inv_rtt0 =
        if uniform && not overflowing then 1.0 /. (rtt.(lo) +. qdelay)
        else 0.0
      in
      for i = lo to hi - 1 do
        let rate =
          if overflowing then rate_a.(i)
          else if uniform then w.(i) *. inv_rtt0
          else w.(i) /. (rtt.(i) +. qdelay)
        in
        if measuring then delivered.(i) <- delivered.(i) +. (rate *. dt);
        match kinds.(i) with
        | Cubic -> ()
        | Bbr | Bbr2 ->
          let inflated_rtt = rtt.(i) +. qdelay in
          (* Bandwidth samples arrive once per (inflated) round trip,
             as in the real delivery-rate estimator; the in-flight ramp
             in the windows pass is what bounds the feedback loop to
             physical timescales. *)
          if now -. bt.last_bw_update.(i) >= inflated_rtt then begin
            bt.last_bw_update.(i) <- now;
            bt.srate.(s) <- rate;
            bt.prev_qdelay.(s) <- qdelay;
            update_btlbw bt ~s ~i ~step
          end;
          (* ProbeRTT state machine. *)
          if now < bt.probing_until.(i) then begin
            bt.probe_min_rtt.(i) <- fmin bt.probe_min_rtt.(i) inflated_rtt;
            if now +. dt >= bt.probing_until.(i) then begin
              bt.rtprop.(i) <- bt.probe_min_rtt.(i);
              bt.rtprop_stamp.(i) <- now
            end
          end
          else if inflated_rtt < bt.rtprop.(i) then begin
            bt.rtprop.(i) <- inflated_rtt;
            bt.rtprop_stamp.(i) <- now
          end
          else if now -. bt.rtprop_stamp.(i) > probe_rtt_interval then begin
            bt.probing_until.(i) <- now +. probe_rtt_duration;
            bt.probe_min_rtt.(i) <- infinity;
            bt.rtprop_stamp.(i) <- now
          end;
          (* BBRv2 inflight_hi recovery: multiplicative growth every
             2 s of loss-free cruising. *)
          (match kinds.(i) with
          | Bbr2
            when bt.inflight_hi.(i) < infinity
                 && now -. bt.last_loss_time.(i) > 2.0
                 && now -. bt.last_hi_growth.(i) > 2.0 ->
            bt.inflight_hi.(i) <-
              fmin
                (bt.inflight_hi.(i) *. 1.25)
                (2.0 *. fmax bt.btlbw.(i) fair *. bt.rtprop.(i));
            bt.last_hi_growth.(i) <- now
          | Cubic | Bbr | Bbr2 -> ())
      done
    end
  done;
  bt.prev_qdelay.(s) <- !prev_qdelay;
  bt.q_prev.(s) <- !q_prev;
  bt.queue_integral.(s) <- !queue_integral;
  bt.last_q.(s) <- !last_q;
  bt.queue_time.(s) <-
    bt.queue_time.(s) +. (float_of_int (until - from) *. dt)

(* One trace sample of spec [s]'s state after [step] (driver-side: the
   sample consing must stay out of the zero-alloc kernel). *)
let sample_trace bt s ~step =
  let lo = bt.off.(s) in
  let n = bt.off.(s + 1) - lo in
  {
    t_time = float_of_int step *. bt.sdt.(s);
    t_queue = bt.last_q.(s);
    t_w = Array.sub bt.w lo n;
    t_btlbw = Array.sub bt.btlbw lo n;
    t_rtprop = Array.sub bt.rtprop lo n;
  }

let run_batch configs =
  let module Raw = Sim_engine.Units.Raw in
  let nspecs = Array.length configs in
  if nspecs = 0 then [||]
  else begin
    let bt = make_batch configs in
    let traces = Array.make nspecs [] in
    for s = 0 to nspecs - 1 do
      let nsteps = bt.nsteps.(s) in
      let trace_period = Raw.to_float configs.(s).trace_period in
      if trace_period <= 0.0 then run_spec bt s ~from:0 ~until:nsteps
      else begin
        (* Traced runs advance one step per kernel call so the sampling
           decision (first step whose time crosses the next sample
           point, post-accounting state) stays exact. *)
        let next_trace = ref 0.0 in
        for step = 0 to nsteps - 1 do
          run_spec bt s ~from:step ~until:(step + 1);
          let now = float_of_int step *. bt.sdt.(s) in
          if now >= !next_trace then begin
            next_trace := now +. trace_period;
            traces.(s) <- sample_trace bt s ~step :: traces.(s)
          end
        done
      end
    done;
    Array.init nspecs (fun s ->
        let lo = bt.off.(s) in
        let n = bt.off.(s + 1) - lo in
        let window = bt.swindow.(s) in
        let qtime = bt.queue_time.(s) in
        {
          per_flow_bps =
            Array.init n (fun k -> bt.delivered.(lo + k) /. window *. 8.0);
          mean_queue_bytes = bt.queue_integral.(s) /. qtime;
          mean_queuing_delay =
            bt.queue_integral.(s) /. qtime /. bt.capacity.(s);
          loss_events = bt.loss_events.(s);
          flow_kinds = Array.sub bt.kinds lo n;
          trace = List.rev traces.(s);
        })
  end


(* The single-spec entry point is the batch of one, so sequential and
   batched evaluation share every instruction: batched results are
   byte-identical to sequential ones by construction. *)
let run config = (run_batch [| config |]).(0)

let mean_bps_of_kind result kind =
  let total = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i k ->
      if k = kind then begin
        total := !total +. result.per_flow_bps.(i);
        incr count
      end)
    result.flow_kinds;
  if !count = 0 then nan else !total /. float_of_int !count

let aggregate_bps_of_kind result kind =
  let total = ref 0.0 in
  Array.iteri
    (fun i k -> if k = kind then total := !total +. result.per_flow_bps.(i))
    result.flow_kinds;
  !total
