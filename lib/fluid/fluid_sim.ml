type kind = Cubic | Bbr | Bbr2

type flow_spec = { kind : kind; rtt : Sim_engine.Units.seconds }

type sync_mode = Synchronized | Desynchronized | Stochastic of float

type stepper = Rounds | Heun

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow_spec list;
  sync : sync_mode;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  dt : Sim_engine.Units.seconds;
  seed : int;
  trace_period : Sim_engine.Units.seconds;  (* 0. = no trace *)
  stepper : stepper;
}

let mss = float_of_int Sim_engine.Units.mss

let default_config =
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  {
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale 10.0
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows = [ { kind = Cubic; rtt }; { kind = Bbr; rtt } ];
    sync = Synchronized;
    duration = Sim_engine.Units.seconds 60.0;
    warmup = Sim_engine.Units.seconds 20.0;
    dt = Sim_engine.Units.ms 2.0;
    seed = 1;
    trace_period = Sim_engine.Units.seconds 0.0;
    stepper = Rounds;
  }

(* --- CCA-name mapping (the one place registry names meet fluid kinds) --- *)

type unsupported_cca = { cca : string; supported : string list }

let supported_ccas = [ "cubic"; "bbr"; "bbr2" ]

let kind_of_cca = function
  | "cubic" -> Ok Cubic
  | "bbr" -> Ok Bbr
  | "bbr2" -> Ok Bbr2
  | cca -> Error { cca; supported = supported_ccas }

let cca_of_kind = function Cubic -> "cubic" | Bbr -> "bbr" | Bbr2 -> "bbr2"

let kind_of_cca_exn cca =
  match kind_of_cca cca with
  | Ok k -> k
  | Error { cca; supported } ->
    invalid_arg
      (Printf.sprintf "Fluid_sim: no fluid model for CCA %S (supported: %s)"
         cca
         (String.concat ", " supported))

type trace_sample = {
  t_time : float;
  t_queue : float;
  t_w : float array;
  t_btlbw : float array;
  t_rtprop : float array;
}

type result = {
  per_flow_bps : float array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
  flow_kinds : kind array;
  trace : trace_sample list;
}

let cubic_c = 0.4 (* MSS/s^3 *)
let cubic_beta = 0.3
let probe_rtt_interval = 10.0
let probe_rtt_duration = 0.2

(* Struct-of-arrays flow state. One float array per field (plus int/bool
   arrays for discrete state) keeps the integrator's inner loop free of
   per-step allocation: every read/write is an unboxed array access, and
   all transient accumulators live in the [acc] scratch slots below. The
   BBR bandwidth filter — a windowed max previously kept as a (time, rate)
   list — is a flat ring holding each flow's monotone deque. *)

let bw_cap = 64 (* per-flow deque slots; ~11 live entries at 10-RTT windows *)

(* [acc] scratch-slot indices. *)
let a_prev_qdelay = 0
let a_q_prev = 1
let a_queue_integral = 2
let a_queue_time = 3
let acc_slots = 4

type soa = {
  n : int;
  kinds : kind array;
  rtt : float array;  (* seconds; the [Queue_fixpoint] view of the flows *)
  w : float array;  (* current window / in-flight target, bytes *)
  (* CUBIC *)
  slow_start : bool array;
  w_max : float array;  (* bytes *)
  epoch : float array;  (* time of last back-off *)
  ck : float array;  (* cubic K, seconds *)
  (* BBR *)
  btlbw : float array;  (* bytes/s, windowed max *)
  bw_time : float array;  (* ring of sample times, flow i at [i*bw_cap ..] *)
  bw_rate : float array;  (* ring of sampled rates *)
  bw_head : int array;  (* oldest live slot, relative to the flow's base *)
  bw_len : int array;
  last_bw_update : float array;
  w_cur : float array;  (* BBR's actual in-flight (ramps at pacing rate) *)
  rtprop : float array;
  rtprop_stamp : float array;
  probing_until : float array;  (* > now while in ProbeRTT *)
  probe_min_rtt : float array;  (* min RTT sampled during current probe *)
  (* BBRv2 *)
  inflight_hi : float array;
  last_loss_time : float array;
  last_hi_growth : float array;
  last_backoff : float array;  (* for at-most-one back-off per RTT *)
  (* accounting *)
  delivered : float array;  (* bytes in measurement window *)
  rate : float array;  (* this step's per-flow throughput, bytes/s *)
  w_save : float array;  (* Heun predictor snapshots of w / w_cur *)
  w_cur_save : float array;
  acc : float array;  (* scratch accumulators, see [a_*] above *)
}

let make_soa flows rng =
  let n = Array.length flows in
  let st =
    {
      n;
      kinds = Array.map (fun f -> f.kind) flows;
      rtt = Array.make n 0.0;
      w = Array.make n 0.0;
      slow_start = Array.make n true;
      w_max = Array.make n 0.0;
      epoch = Array.make n 0.0;
      ck = Array.make n 0.0;
      btlbw = Array.make n 0.0;
      bw_time = Array.make (n * bw_cap) 0.0;
      bw_rate = Array.make (n * bw_cap) 0.0;
      bw_head = Array.make n 0;
      bw_len = Array.make n 0;
      last_bw_update = Array.make n neg_infinity;
      w_cur = Array.make n 0.0;
      rtprop = Array.make n 0.0;
      rtprop_stamp = Array.make n 0.0;
      probing_until = Array.make n 0.0;
      probe_min_rtt = Array.make n infinity;
      inflight_hi = Array.make n infinity;
      last_loss_time = Array.make n neg_infinity;
      last_hi_growth = Array.make n 0.0;
      last_backoff = Array.make n neg_infinity;
      delivered = Array.make n 0.0;
      rate = Array.make n 0.0;
      w_save = Array.make n 0.0;
      w_cur_save = Array.make n 0.0;
      acc = Array.make acc_slots 0.0;
    }
  in
  Array.iteri
    (fun i (f : flow_spec) ->
      let s_rtt = Sim_engine.Units.Raw.to_float f.rtt in
      (* All flows start together, as in the paper's experiments; the
         jitter only desynchronizes slow-start exits slightly. *)
      let jitter = Sim_engine.Rng.uniform_in rng ~lo:0.8 ~hi:1.2 in
      let w0 = 10.0 *. mss *. jitter in
      st.rtt.(i) <- s_rtt;
      st.w.(i) <- w0;
      st.w_max.(i) <- w0;
      st.epoch.(i) <- -.Sim_engine.Rng.float rng 1.0;
      st.btlbw.(i) <- w0 /. s_rtt;
      st.w_cur.(i) <- w0;
      st.rtprop.(i) <- s_rtt;
      st.rtprop_stamp.(i) <- Sim_engine.Rng.float rng 2.0)
    flows;
  st

let cubic_window st i ~now =
  let t = now -. st.epoch.(i) in
  let w_mss =
    (cubic_c *. ((t -. st.ck.(i)) ** 3.0)) +. (st.w_max.(i) /. mss)
  in
  Float.max (2.0 *. mss) (w_mss *. mss)

let cubic_backoff st i ~now =
  st.slow_start.(i) <- false;
  st.w_max.(i) <- st.w.(i);
  st.ck.(i) <- Float.cbrt (st.w_max.(i) /. mss *. cubic_beta /. cubic_c);
  st.epoch.(i) <- now;
  st.w.(i) <- Float.max (2.0 *. mss) (0.7 *. st.w.(i));
  st.last_backoff.(i) <- now

(* Windowed max of the achieved rate over roughly 10 (inflated) RTTs: a
   monotone deque (decreasing rates front→back, increasing times) in the
   flat ring. Expired entries leave at the front, dominated ones at the
   back, and the front is the max. *)
let update_btlbw st i ~now ~rate ~window =
  let base = i * bw_cap in
  (* Expire from the front (times increase front→back). *)
  while
    st.bw_len.(i) > 0
    && now -. st.bw_time.(base + st.bw_head.(i)) > window
  do
    st.bw_head.(i) <- (st.bw_head.(i) + 1) mod bw_cap;
    st.bw_len.(i) <- st.bw_len.(i) - 1
  done;
  (* Drop dominated entries from the back. *)
  while
    st.bw_len.(i) > 0
    &&
    let back = (st.bw_head.(i) + st.bw_len.(i) - 1) mod bw_cap in
    st.bw_rate.(base + back) <= rate
  do
    st.bw_len.(i) <- st.bw_len.(i) - 1
  done;
  (* Push (now, rate); on a full ring drop the oldest (cannot happen at
     one sample per RTT and 10-RTT windows, but stay safe). *)
  if st.bw_len.(i) = bw_cap then begin
    st.bw_head.(i) <- (st.bw_head.(i) + 1) mod bw_cap;
    st.bw_len.(i) <- st.bw_len.(i) - 1
  end;
  let slot = (st.bw_head.(i) + st.bw_len.(i)) mod bw_cap in
  st.bw_time.(base + slot) <- now;
  st.bw_rate.(base + slot) <- rate;
  st.bw_len.(i) <- st.bw_len.(i) + 1;
  st.btlbw.(i) <- st.bw_rate.(base + st.bw_head.(i))

(* Desired in-flight per flow for one step. [qdelay] is the previous step's
   queuing delay (slow start doubles per inflated RTT). *)
let update_windows st ~now ~dt ~qdelay =
  for i = 0 to st.n - 1 do
    match st.kinds.(i) with
    | Cubic ->
      if st.slow_start.(i) then
        (* Doubling per (inflated) RTT until the first loss. *)
        st.w.(i) <- st.w.(i) *. Float.exp2 (dt /. (st.rtt.(i) +. qdelay))
      else st.w.(i) <- cubic_window st i ~now
    | Bbr | Bbr2 ->
      if now < st.probing_until.(i) then st.w.(i) <- 4.0 *. mss
      else begin
        let cap = 2.0 *. st.btlbw.(i) *. st.rtprop.(i) in
        let cap =
          if st.kinds.(i) = Bbr2 then Float.min cap st.inflight_hi.(i)
          else cap
        in
        (* The in-flight cap applies immediately (it is a cwnd bound);
           growth toward a raised cap is limited by the pacing surplus
           of the ProbeBW up-phases (~0.25 x btlbw). *)
        if st.w_cur.(i) > cap then st.w_cur.(i) <- cap
        else
          st.w_cur.(i) <-
            Float.min cap (st.w_cur.(i) +. (0.25 *. st.btlbw.(i) *. dt));
        st.w.(i) <- Float.max (4.0 *. mss) st.w_cur.(i)
      end
  done

(* Loss eligibility, hoisted from [apply_losses] so the per-step loss scan
   builds no closures. *)
let loss_eligible st ~now ~qdelay i =
  now -. st.last_backoff.(i) > st.rtt.(i) +. qdelay

let loss_eligible_cubic st ~now ~qdelay i =
  st.kinds.(i) = Cubic && loss_eligible st ~now ~qdelay i

(* Buffer overflow: the queue saturates at B, excess is dropped, and
   eligible flows register one loss event per (inflated) RTT. The CUBIC
   victim set is the synchronization mode; BBRv2 clamps inflight_hi. *)
let apply_losses st rng sync ~now ~qdelay =
  (match sync with
  | Synchronized ->
    for i = 0 to st.n - 1 do
      if loss_eligible_cubic st ~now ~qdelay i then cubic_backoff st i ~now
    done
  | Desynchronized ->
    (* The largest eligible window backs off (first max wins ties). *)
    let victim = ref (-1) in
    for i = 0 to st.n - 1 do
      if loss_eligible_cubic st ~now ~qdelay i && (!victim < 0 || st.w.(i) > st.w.(!victim)) then
        victim := i
    done;
    if !victim >= 0 then cubic_backoff st !victim ~now
  | Stochastic p ->
    let any = ref false in
    let victim = ref (-1) in
    for i = 0 to st.n - 1 do
      if loss_eligible_cubic st ~now ~qdelay i then begin
        if !victim < 0 || st.w.(i) > st.w.(!victim) then victim := i;
        if Sim_engine.Rng.float rng 1.0 < p then begin
          any := true;
          cubic_backoff st i ~now
        end
      end
    done;
    if (not !any) && !victim >= 0 then cubic_backoff st !victim ~now);
  (* BBRv2 reacts to the shared loss round. *)
  for i = 0 to st.n - 1 do
    if st.kinds.(i) = Bbr2 && loss_eligible st ~now ~qdelay i then begin
      st.inflight_hi.(i) <-
        Float.max (4.0 *. mss)
          (0.7 *. Float.min st.w.(i) st.inflight_hi.(i));
      st.last_loss_time.(i) <- now;
      st.last_backoff.(i) <- now
    end
  done

(* Per-flow throughput for this step into [st.rate]: fluid shares at the
   solved queue, or drop-tail shares of the saturated buffer. *)
let compute_rates st ~capacity ~qdelay ~overflowing =
  if overflowing then begin
    let total = ref 0.0 in
    for i = 0 to st.n - 1 do
      let d = st.w.(i) /. (st.rtt.(i) +. qdelay) in
      st.rate.(i) <- d;
      total := !total +. d
    done;
    let scale = capacity /. !total in
    for i = 0 to st.n - 1 do
      st.rate.(i) <- st.rate.(i) *. scale
    done
  end
  else
    for i = 0 to st.n - 1 do
      st.rate.(i) <- st.w.(i) /. (st.rtt.(i) +. qdelay)
    done

(* Delivery accounting, the BBR bandwidth/RTT estimators, and the BBRv2
   inflight_hi recovery, for one step of width [dt]. *)
let account st ~now ~dt ~warmup ~qdelay ~fair =
  for i = 0 to st.n - 1 do
    let rate = st.rate.(i) in
    if now >= warmup then st.delivered.(i) <- st.delivered.(i) +. (rate *. dt);
    match st.kinds.(i) with
    | Cubic -> ()
    | Bbr | Bbr2 ->
      let inflated_rtt = st.rtt.(i) +. qdelay in
      (* Bandwidth samples arrive once per (inflated) round trip, as in
         the real delivery-rate estimator; the in-flight ramp above is
         what bounds the feedback loop to physical timescales. *)
      if now -. st.last_bw_update.(i) >= inflated_rtt then begin
        st.last_bw_update.(i) <- now;
        update_btlbw st i ~now ~rate ~window:(10.0 *. inflated_rtt)
      end;
      (* ProbeRTT state machine. *)
      if now < st.probing_until.(i) then begin
        st.probe_min_rtt.(i) <- Float.min st.probe_min_rtt.(i) inflated_rtt;
        if now +. dt >= st.probing_until.(i) then begin
          st.rtprop.(i) <- st.probe_min_rtt.(i);
          st.rtprop_stamp.(i) <- now
        end
      end
      else if inflated_rtt < st.rtprop.(i) then begin
        st.rtprop.(i) <- inflated_rtt;
        st.rtprop_stamp.(i) <- now
      end
      else if now -. st.rtprop_stamp.(i) > probe_rtt_interval then begin
        st.probing_until.(i) <- now +. probe_rtt_duration;
        st.probe_min_rtt.(i) <- infinity;
        st.rtprop_stamp.(i) <- now
      end;
      (* BBRv2 inflight_hi recovery: multiplicative growth every 2 s of
         loss-free cruising. *)
      if
        st.kinds.(i) = Bbr2
        && st.inflight_hi.(i) < infinity
        && now -. st.last_loss_time.(i) > 2.0
        && now -. st.last_hi_growth.(i) > 2.0
      then begin
        st.inflight_hi.(i) <-
          Float.min
            (st.inflight_hi.(i) *. 1.25)
            (2.0 *. Float.max st.btlbw.(i) fair *. st.rtprop.(i));
        st.last_hi_growth.(i) <- now
      end
  done

let solve_step st ~capacity =
  Queue_fixpoint.solve ~capacity ~w:st.w ~rtt:st.rtt ~n:st.n
    ~init:st.acc.(a_q_prev)

let run config =
  let module Raw = Sim_engine.Units.Raw in
  let dt = Raw.to_float config.dt in
  let duration = Raw.to_float config.duration in
  let warmup = Raw.to_float config.warmup in
  let trace_period = Raw.to_float config.trace_period in
  let buffer_bytes = Raw.to_float config.buffer_bytes in
  if dt <= 0.0 then invalid_arg "Fluid_sim.run: dt";
  if warmup >= duration then
    invalid_arg "Fluid_sim.run: warmup must precede duration";
  let rng = Sim_engine.Rng.create config.seed in
  let capacity = Sim_engine.Units.bytes_per_sec config.capacity_bps in
  let n = List.length config.flows in
  if n = 0 then invalid_arg "Fluid_sim.run: no flows";
  let fair = capacity /. float_of_int n in
  let st = make_soa (Array.of_list config.flows) rng in
  let heun = config.stepper = Heun in
  let loss_events = ref 0 in
  let trace = ref [] in
  let next_trace = ref 0.0 in
  let steps = int_of_float (Float.round (duration /. dt)) in
  for step = 0 to steps - 1 do
    let now = float_of_int step *. dt in
    (* 1. Desired in-flight per flow, from the previous queuing delay. *)
    let prev_qdelay = st.acc.(a_prev_qdelay) in
    if heun then begin
      Array.blit st.w 0 st.w_save 0 st.n;
      Array.blit st.w_cur 0 st.w_cur_save 0 st.n
    end;
    update_windows st ~now ~dt ~qdelay:prev_qdelay;
    (* 2. Queue fixed point (warm-started from the last solution). With
       the Heun stepper, the predictor's step is discarded and re-taken
       under the midpoint of the old and predicted delays, damping the
       dt-sized lag of the explicit round step. *)
    let q_star = solve_step st ~capacity in
    let q_star =
      if heun then begin
        let mid_qdelay =
          0.5 *. (prev_qdelay +. (Float.min q_star buffer_bytes /. capacity))
        in
        Array.blit st.w_save 0 st.w 0 st.n;
        Array.blit st.w_cur_save 0 st.w_cur 0 st.n;
        update_windows st ~now ~dt ~qdelay:mid_qdelay;
        solve_step st ~capacity
      end
      else q_star
    in
    st.acc.(a_q_prev) <- q_star;
    let overflowing = q_star > buffer_bytes in
    let q = if overflowing then buffer_bytes else q_star in
    let qdelay = q /. capacity in
    st.acc.(a_prev_qdelay) <- qdelay;
    (* 3. Overflow: the excess is dropped and eligible flows back off. *)
    if overflowing then begin
      incr loss_events;
      apply_losses st rng config.sync ~now ~qdelay
    end;
    st.acc.(a_queue_integral) <- st.acc.(a_queue_integral) +. (q *. dt);
    st.acc.(a_queue_time) <- st.acc.(a_queue_time) +. dt;
    compute_rates st ~capacity ~qdelay ~overflowing;
    if trace_period > 0.0 && now >= !next_trace then begin
      next_trace := now +. trace_period;
      trace :=
        {
          t_time = now;
          t_queue = q;
          t_w = Array.copy st.w;
          t_btlbw = Array.copy st.btlbw;
          t_rtprop = Array.copy st.rtprop;
        }
        :: !trace
    end;
    (* 4. Per-flow throughput and estimator accounting. *)
    account st ~now ~dt ~warmup ~qdelay ~fair
  done;
  let window = duration -. warmup in
  {
    per_flow_bps = Array.map (fun d -> d /. window *. 8.0) st.delivered;
    mean_queue_bytes = st.acc.(a_queue_integral) /. st.acc.(a_queue_time);
    mean_queuing_delay =
      st.acc.(a_queue_integral) /. st.acc.(a_queue_time) /. capacity;
    loss_events = !loss_events;
    flow_kinds = st.kinds;
    trace = List.rev !trace;
  }

let mean_bps_of_kind result kind =
  let total = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i k ->
      if k = kind then begin
        total := !total +. result.per_flow_bps.(i);
        incr count
      end)
    result.flow_kinds;
  if !count = 0 then nan else !total /. float_of_int !count

let aggregate_bps_of_kind result kind =
  let total = ref 0.0 in
  Array.iteri
    (fun i k -> if k = kind then total := !total +. result.per_flow_bps.(i))
    result.flow_kinds;
  !total
