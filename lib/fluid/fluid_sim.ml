type kind = Cubic | Bbr | Bbr2

type flow_spec = { kind : kind; rtt : Sim_engine.Units.seconds }

type sync_mode = Synchronized | Desynchronized | Stochastic of float

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : flow_spec list;
  sync : sync_mode;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  dt : Sim_engine.Units.seconds;
  seed : int;
  trace_period : Sim_engine.Units.seconds;  (* 0. = no trace *)
}

let mss = float_of_int Sim_engine.Units.mss

let default_config =
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  {
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale 10.0
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows = [ { kind = Cubic; rtt }; { kind = Bbr; rtt } ];
    sync = Synchronized;
    duration = Sim_engine.Units.seconds 60.0;
    warmup = Sim_engine.Units.seconds 20.0;
    dt = Sim_engine.Units.ms 2.0;
    seed = 1;
    trace_period = Sim_engine.Units.seconds 0.0;
  }

type trace_sample = {
  t_time : float;
  t_queue : float;
  t_w : float array;
  t_btlbw : float array;
  t_rtprop : float array;
}

type result = {
  per_flow_bps : float array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  loss_events : int;
  flow_kinds : kind array;
  trace : trace_sample list;
}

(* The integrator's inner loop crunches bare floats: the typed config is
   unwrapped once, here, through the [Units.Raw] escape hatch. *)
type ispec = { s_kind : kind; s_rtt : float (* seconds *) }

(* Per-flow mutable state. CUBIC fields are unused for BBR flows and vice
   versa; a single record keeps the hot loop allocation-free. *)
type flow_state = {
  spec : ispec;
  mutable w : float;  (* current window / in-flight target, bytes *)
  (* CUBIC *)
  mutable in_slow_start : bool;
  mutable w_max : float;  (* bytes *)
  mutable epoch : float;  (* time of last back-off *)
  mutable k : float;  (* cubic K, seconds *)
  (* BBR *)
  mutable btlbw : float;  (* bytes/s, windowed max *)
  mutable btlbw_entries : (float * float) list;  (* (time, rate) deque *)
  mutable last_bw_update : float;
  mutable w_cur : float;  (* BBR's actual in-flight (ramps at pacing rate) *)
  mutable rtprop : float;
  mutable rtprop_stamp : float;
  mutable probing_until : float;  (* > now while in ProbeRTT *)
  mutable probe_min_rtt : float;  (* min RTT sampled during current probe *)
  (* BBRv2 *)
  mutable inflight_hi : float;
  mutable last_loss_time : float;
  mutable last_hi_growth : float;
  mutable last_backoff : float;  (* for at-most-one back-off per RTT *)
  (* accounting *)
  mutable delivered : float;  (* bytes in measurement window *)
}

let cubic_c = 0.4 (* MSS/s^3 *)
let cubic_beta = 0.3
let probe_rtt_interval = 10.0
let probe_rtt_duration = 0.2

let cubic_window state ~now =
  let t = now -. state.epoch in
  let w_mss =
    (cubic_c *. ((t -. state.k) ** 3.0)) +. (state.w_max /. mss)
  in
  Float.max (2.0 *. mss) (w_mss *. mss)

let cubic_backoff state ~now =
  state.in_slow_start <- false;
  state.w_max <- state.w;
  state.k <- Float.cbrt (state.w_max /. mss *. cubic_beta /. cubic_c);
  state.epoch <- now;
  state.w <- Float.max (2.0 *. mss) (0.7 *. state.w)

(* Windowed max of the achieved rate over roughly 10 (inflated) RTTs,
   implemented as a monotone deque on time. *)
let update_btlbw state ~now ~rate ~window =
  let entries =
    List.filter (fun (t, v) -> now -. t <= window && v > rate)
      state.btlbw_entries
  in
  state.btlbw_entries <- entries @ [ (now, rate) ];
  state.btlbw <-
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0
      state.btlbw_entries

(* Fluid queue fixed point: find q >= 0 with sum_i w_i/(rtt_i + q/C) = C,
   or q = 0 when the link is under-utilized. *)
let solve_queue ~capacity flows =
  let offered q =
    Array.fold_left
      (fun acc f -> acc +. (f.w /. (f.spec.s_rtt +. (q /. capacity))))
      0.0 flows
  in
  if offered 0.0 <= capacity then 0.0
  else begin
    let lo = ref 0.0 and hi = ref (mss *. 16.0) in
    while offered !hi > capacity do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 50 do
      let mid = 0.5 *. (!lo +. !hi) in
      if offered mid > capacity then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let is_cubic f = f.spec.s_kind = Cubic
let is_bbr_like f = f.spec.s_kind = Bbr || f.spec.s_kind = Bbr2

let run config =
  let module Raw = Sim_engine.Units.Raw in
  let dt = Raw.to_float config.dt in
  let duration = Raw.to_float config.duration in
  let warmup = Raw.to_float config.warmup in
  let trace_period = Raw.to_float config.trace_period in
  let buffer_bytes = Raw.to_float config.buffer_bytes in
  if dt <= 0.0 then invalid_arg "Fluid_sim.run: dt";
  if warmup >= duration then
    invalid_arg "Fluid_sim.run: warmup must precede duration";
  let rng = Sim_engine.Rng.create config.seed in
  let capacity = Sim_engine.Units.bytes_per_sec config.capacity_bps in
  let n = List.length config.flows in
  if n = 0 then invalid_arg "Fluid_sim.run: no flows";
  let fair = capacity /. float_of_int n in
  let flows =
    Array.of_list
      (List.map
         (fun { kind; rtt } ->
           let spec = { s_kind = kind; s_rtt = Raw.to_float rtt } in
           (* All flows start together, as in the paper's experiments; the
              jitter only desynchronizes slow-start exits slightly. *)
           let jitter = Sim_engine.Rng.uniform_in rng ~lo:0.8 ~hi:1.2 in
           let w0 = 10.0 *. mss *. jitter in
           {
             spec;
             w = w0;
             in_slow_start = true;
             w_max = w0;
             epoch = -.Sim_engine.Rng.float rng 1.0;
             k = 0.0;
             btlbw = w0 /. spec.s_rtt;
             btlbw_entries = [];
             last_bw_update = neg_infinity;
             w_cur = w0;
             rtprop = spec.s_rtt;
             rtprop_stamp = Sim_engine.Rng.float rng 2.0;
             probing_until = 0.0;
             probe_min_rtt = infinity;
             inflight_hi = infinity;
             last_loss_time = neg_infinity;
             last_hi_growth = 0.0;
             last_backoff = neg_infinity;
             delivered = 0.0;
           })
         config.flows)
  in
  let loss_events = ref 0 in
  let queue_integral = ref 0.0 and queue_time = ref 0.0 in
  let prev_qdelay = ref 0.0 in
  let trace = ref [] in
  let next_trace = ref 0.0 in
  let steps = int_of_float (Float.round (duration /. dt)) in
  for step = 0 to steps - 1 do
    let now = float_of_int step *. dt in
    (* 1. Desired in-flight per flow. *)
    Array.iter
      (fun f ->
        match f.spec.s_kind with
        | Cubic ->
          if f.in_slow_start then
            (* Doubling per (inflated) RTT until the first loss. *)
            f.w <-
              f.w
              *. Float.exp2 (dt /. (f.spec.s_rtt +. !prev_qdelay))
          else f.w <- cubic_window f ~now
        | Bbr | Bbr2 ->
          if now < f.probing_until then f.w <- 4.0 *. mss
          else begin
            let cap = 2.0 *. f.btlbw *. f.rtprop in
            let cap =
              if f.spec.s_kind = Bbr2 then Float.min cap f.inflight_hi else cap
            in
            (* The in-flight cap applies immediately (it is a cwnd bound);
               growth toward a raised cap is limited by the pacing surplus
               of the ProbeBW up-phases (~0.25 x btlbw). *)
            if f.w_cur > cap then f.w_cur <- cap
            else
              f.w_cur <-
                Float.min cap (f.w_cur +. (0.25 *. f.btlbw *. dt));
            f.w <- Float.max (4.0 *. mss) f.w_cur
          end)
      flows;
    (* 2. Queue fixed point. When the fixed point exceeds the buffer, the
       queue physically saturates at B and the excess is dropped: rates are
       the drop-tail shares at q = B, and eligible flows register one loss
       event per (inflated) RTT. *)
    let q_star = solve_queue ~capacity flows in
    let overflowing = q_star > buffer_bytes in
    let q = if overflowing then buffer_bytes else q_star in
    let qdelay = q /. capacity in
    prev_qdelay := qdelay;
    let rate_of =
      if overflowing then begin
        let demand f = f.w /. (f.spec.s_rtt +. qdelay) in
        let total = Array.fold_left (fun acc f -> acc +. demand f) 0.0 flows in
        fun f -> capacity *. demand f /. total
      end
      else fun f -> f.w /. (f.spec.s_rtt +. qdelay)
    in
    if overflowing then begin
      incr loss_events;
      let eligible f =
        now -. f.last_backoff > f.spec.s_rtt +. qdelay
      in
      let cubics =
        Array.of_list
          (List.filter (fun f -> is_cubic f && eligible f)
             (Array.to_list flows))
      in
      let backoff f =
        cubic_backoff f ~now;
        f.last_backoff <- now
      in
      (match config.sync with
      | Synchronized -> Array.iter backoff cubics
      | Desynchronized ->
        let victim =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if f.w > b.w then Some f else best)
            None cubics
        in
        Option.iter backoff victim
      | Stochastic p ->
        let any = ref false in
        Array.iter
          (fun f ->
            if Sim_engine.Rng.float rng 1.0 < p then begin
              any := true;
              backoff f
            end)
          cubics;
        if (not !any) && Array.length cubics > 0 then begin
          let victim =
            Array.fold_left
              (fun best f ->
                match best with
                | None -> Some f
                | Some b -> if f.w > b.w then Some f else best)
              None cubics
          in
          Option.iter backoff victim
        end);
      (* BBRv2 reacts to the shared loss round. *)
      Array.iter
        (fun f ->
          if f.spec.s_kind = Bbr2 && eligible f then begin
            f.inflight_hi <-
              Float.max (4.0 *. mss) (0.7 *. Float.min f.w f.inflight_hi);
            f.last_loss_time <- now;
            f.last_backoff <- now
          end)
        flows
    end;
    queue_integral := !queue_integral +. (q *. dt);
    queue_time := !queue_time +. dt;
    if trace_period > 0.0 && now >= !next_trace then begin
      next_trace := now +. trace_period;
      trace :=
        {
          t_time = now;
          t_queue = q;
          t_w = Array.map (fun f -> f.w) flows;
          t_btlbw = Array.map (fun f -> f.btlbw) flows;
          t_rtprop = Array.map (fun f -> f.rtprop) flows;
        }
        :: !trace
    end;
    (* 4. Per-flow throughput and accounting. *)
    Array.iter
      (fun f ->
        let rate = rate_of f in
        if now >= warmup then f.delivered <- f.delivered +. (rate *. dt);
        if is_bbr_like f then begin
          let inflated_rtt = f.spec.s_rtt +. qdelay in
          (* Bandwidth samples arrive once per (inflated) round trip, as in
             the real delivery-rate estimator; the in-flight ramp above is
             what bounds the feedback loop to physical timescales. *)
          if now -. f.last_bw_update >= inflated_rtt then begin
            f.last_bw_update <- now;
            update_btlbw f ~now ~rate ~window:(10.0 *. inflated_rtt)
          end;
          (* ProbeRTT state machine. *)
          if now < f.probing_until then begin
            f.probe_min_rtt <- Float.min f.probe_min_rtt inflated_rtt;
            if now +. dt >= f.probing_until then begin
              f.rtprop <- f.probe_min_rtt;
              f.rtprop_stamp <- now
            end
          end
          else if inflated_rtt < f.rtprop then begin
            f.rtprop <- inflated_rtt;
            f.rtprop_stamp <- now
          end
          else if now -. f.rtprop_stamp > probe_rtt_interval then begin
            f.probing_until <- now +. probe_rtt_duration;
            f.probe_min_rtt <- infinity;
            f.rtprop_stamp <- now
          end;
          (* BBRv2 inflight_hi recovery: multiplicative growth every 2 s of
             loss-free cruising. *)
          if
            f.spec.s_kind = Bbr2
            && f.inflight_hi < infinity
            && now -. f.last_loss_time > 2.0
            && now -. f.last_hi_growth > 2.0
          then begin
            f.inflight_hi <-
              Float.min
                (f.inflight_hi *. 1.25)
                (2.0 *. Float.max f.btlbw fair *. f.rtprop);
            f.last_hi_growth <- now
          end
        end)
      flows
  done;
  let window = duration -. warmup in
  {
    per_flow_bps =
      Array.map (fun f -> f.delivered /. window *. 8.0) flows;
    mean_queue_bytes = !queue_integral /. !queue_time;
    mean_queuing_delay = !queue_integral /. !queue_time /. capacity;
    loss_events = !loss_events;
    flow_kinds = Array.map (fun f -> f.spec.s_kind) flows;
    trace = List.rev !trace;
  }

let mean_bps_of_kind result kind =
  let values = ref [] and count = ref 0 in
  Array.iteri
    (fun i k ->
      if k = kind then begin
        values := result.per_flow_bps.(i) :: !values;
        incr count
      end)
    result.flow_kinds;
  if !count = 0 then nan
  else List.fold_left ( +. ) 0.0 !values /. float_of_int !count

let aggregate_bps_of_kind result kind =
  let total = ref 0.0 in
  Array.iteri
    (fun i k -> if k = kind then total := !total +. result.per_flow_bps.(i))
    result.flow_kinds;
  !total
