(** Control-theoretic ODE model of BBR/CUBIC competition.

    Where {!Fluid_sim} keeps the discrete mechanisms (loss rounds, ProbeRTT
    episodes, windowed max filters) and steps them in time, this backend
    follows the Scherrer-style control-theoretic formulation: all of those
    mechanisms are smoothed into a coupled ODE system over per-flow state,
    and the trajectory is integrated with RK4 (fixed-step or step-doubling
    adaptive). Loss back-off becomes a continuous decay proportional to the
    overflow drop rate, the BBR bandwidth max-filter becomes asymmetric
    first-order tracking (fast rise over ~1 RTT, slow decay over ~10 RTTs),
    and ProbeRTT's residual-queue sampling becomes an RTprop estimate of
    [base rtt + queue_delay·(1 − share)].

    Because the dynamics are smooth, the model converges to fixed points
    instead of sawtoothing, which makes it the natural backend for
    stability and fairness questions: the result carries Jain's index,
    convergence time, and residual oscillation amplitude (via
    {!Ccmodel.Fairness}).

    Steady-state shares are calibrated against {!Fluid_sim} on the
    differential grid (see [test/test_packet_vs_fluid.ml]); the two agree
    within 5% there. Like the fluid backend, most callers should reach
    this through {!Sim_backend.ode}. The model is deterministic — no RNG
    is consumed. *)

type integrator =
  | Rk4 of Sim_engine.Units.seconds  (** Fixed-step RK4 with this [dt]. *)
  | Adaptive of {
      tol : float;  (** Relative local-error tolerance (e.g. 1e-4). *)
      dt_init : Sim_engine.Units.seconds;
      dt_max : Sim_engine.Units.seconds;
    }
      (** Step-doubling RK4: each step is compared against two half steps,
          accepted with Richardson extrapolation when the scaled error is
          below [tol], and the step size adapts by the usual fifth-order
          rule. *)

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : Fluid_sim.flow_spec list;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
      (** Goodput/queue means are taken over [warmup, duration]. *)
  integrator : integrator;
  sample_period : Sim_engine.Units.seconds;
      (** Rate-trajectory sampling period for the stability metrics. *)
}

val default_config : config
(** 100 Mbps, 10 BDP at 40 ms, 1 CUBIC vs 1 BBR, 60 s with 20 s warm-up,
    adaptive integrator (tol 1e-4), 50 ms sampling. *)

type metrics = {
  jain_index : float;
      (** Jain's index over the per-flow mean goodputs; in (0, 1]. *)
  convergence_time : float;
      (** Earliest time (s, from sim start) after which every flow's
          sampled rate stays within 10% (rel) / 2% of capacity (abs) of
          its final value; [infinity] if the trajectory never settles. *)
  oscillation_bps : float;
      (** Max over flows of the peak-to-peak rate excursion over the
          trailing 30% of the samples. *)
}

type result = {
  per_flow_bps : float array;
  flow_kinds : Fluid_sim.kind array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  expected_backoffs : float;
      (** Time-integral of the smoothed loss-event rate over the
          loss-responsive flows — the ODE analogue of
          {!Fluid_sim.result.loss_events}. *)
  metrics : metrics;
  steps : int;  (** Accepted integrator steps. *)
  rejected_steps : int;  (** Adaptive rejections (0 under {!Rk4}). *)
}

val run : config -> result
(** Integrates the system from a cold (slow-start-sized) initial state.
    Raises [Invalid_argument] on an empty flow list, non-positive
    durations/steps, or [warmup >= duration]. *)

val run_batch : config array -> result array
(** Integrate all configs over one contiguous struct-of-arrays arena.
    [run_batch configs] returns exactly [Array.map run configs] — each
    job owns a disjoint slice of the concatenated per-flow state and
    scratch arrays, so results are byte-identical to sequential
    evaluation regardless of batch composition or order ([run] itself is
    the batch of one) — but shares allocation and keeps the integrator
    state compact across the batch. Validation errors
    ([Invalid_argument]) are raised for the first offending config,
    before any stepping. *)

val mean_bps_of_kind : result -> Fluid_sim.kind -> float
(** Mean per-flow goodput over flows of the given kind; [nan] if none. *)
