type integrator =
  | Rk4 of Sim_engine.Units.seconds
  | Adaptive of {
      tol : float;
      dt_init : Sim_engine.Units.seconds;
      dt_max : Sim_engine.Units.seconds;
    }

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : Fluid_sim.flow_spec list;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  integrator : integrator;
  sample_period : Sim_engine.Units.seconds;
}

let default_config =
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  {
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale 10.0
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows =
      [
        { Fluid_sim.kind = Fluid_sim.Cubic; rtt };
        { Fluid_sim.kind = Fluid_sim.Bbr; rtt };
      ];
    duration = Sim_engine.Units.seconds 60.0;
    warmup = Sim_engine.Units.seconds 20.0;
    integrator =
      Adaptive
        {
          tol = 1e-4;
          dt_init = Sim_engine.Units.ms 2.0;
          dt_max = Sim_engine.Units.ms 100.0;
        };
    sample_period = Sim_engine.Units.ms 50.0;
  }

type metrics = {
  jain_index : float;
  convergence_time : float;
  oscillation_bps : float;
}

type result = {
  per_flow_bps : float array;
  flow_kinds : Fluid_sim.kind array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  expected_backoffs : float;
  metrics : metrics;
  steps : int;
  rejected_steps : int;
}

let mss = float_of_int Sim_engine.Units.mss
let ln2 = Float.log 2.0

let[@inline] fmin (a : float) b = if a <= b then a else b
let[@inline] fmax (a : float) b = if a >= b then a else b
let[@inline] fclamp lo hi v = fmax lo (fmin hi v)

(* --- Model constants ------------------------------------------------ *)

(* CUBIC's dw/dt between losses is 3c(t−K)², i.e. 3·c^(1/3)·|w−w_max|^(2/3)
   in MSS/s when expressed in window terms (same c as the fluid sim). *)
let cubic_c = 0.4
let cubic_gain = 3.0 *. Float.cbrt cubic_c
let cubic_beta = 0.3

(* Probing floor (MSS per RTT): the cubic curve has zero slope exactly at
   the plateau w = w_max, which in the autonomous reduction would be an
   asymptote the window never crosses; real CUBIC crosses it because time
   keeps advancing. A small constant probing term restores that. *)
let cubic_floor_mss = 0.3

(* Loss-event saturation: the overflow drop fraction p maps to a back-off
   rate of p/(p+p0) events per RTT, approaching once-per-RTT as the
   overflow deepens. *)
let p0 = 0.02

(* BBR bandwidth tracking: fast rise (the max filter latches a new peak in
   one RTT), slow decay (a stale peak persists for the ~10-RTT window). *)
let bw_tc_up = 1.0
let bw_tc_down = 10.0

(* RTprop residual: ProbeRTT drains this flow's own contribution, so the
   estimate settles at base + γ·qdelay·(1 − share). γ < 1 accounts for the
   sawtoothing queue of the round-based sim averaging below its cap; the
   value is calibrated against {!Fluid_sim} on the differential grid. *)
let residual_gamma = 0.84

(* BBRv2 inflight_hi multiplicative recovery (×1.25 every 2 s, as in the
   fluid sim), as a continuous rate. *)
let hi_recovery_rate = Float.log 1.25 /. 2.0

(* --- Preallocated batch state --------------------------------------- *)

(* State vector layout: 3 slots per flow.
   [3i]   window / in-flight target w, bytes
   [3i+1] CUBIC: w_max (bytes); BBR/BBRv2: btlbw estimate (bytes/s)
   [3i+2] BBRv2: inflight_hi (bytes); otherwise unused (zero derivative)

   A batch concatenates every job's flows into shared arrays: job [j]
   owns flow slots [off.(j) .. off.(j+1) - 1] and state-vector slots
   [3·off.(j) .. 3·off.(j+1) - 1]. Jobs share no state — each advances
   over its own slice with its own scratch slots — so batched evaluation
   is byte-identical to sequential evaluation (see [run_batch]). *)

(* [acc] scratch-slot indices (per job, [acc_slots] apiece). *)
let a_q = 0 (* buffer-clamped queue, bytes *)
let a_p = 1 (* overflow drop fraction *)
let a_warm = 2 (* warm start for the fixed-point solve *)
let acc_slots = 3

type bt = {
  off : int array; (* njobs + 1: flow base offset per job *)
  (* Per flow, concatenated across jobs. *)
  kinds : Fluid_sim.kind array;
  rtt : float array;
  w_floor : float array;
  w_ceil : float array;
  w : float array; (* clamped windows for the queue solve *)
  x : float array; (* per-flow rates, bytes/s *)
  startup : bool array;
      (* CUBIC slow start — exponential growth until the first overflow,
         mirroring the fluid model's doubling phase. BBR's window-tracking
         dynamics are already exponential from a cold start, so only CUBIC
         flows begin [true]. *)
  (* Per state slot (3 per flow), concatenated across jobs. *)
  y : float array;
  k1y : float array; (* deriv at the accepted state, cached across retries *)
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
  y_full : float array; (* step-doubling scratch *)
  y_mid : float array;
  y_half : float array;
  (* Per job. *)
  capacity : float array; (* bytes/s *)
  buffer : float array; (* bytes *)
  fair : float array; (* capacity / n *)
  acc : float array; (* acc_slots per job *)
}

let validate (config : config) =
  let module Raw = Sim_engine.Units.Raw in
  let duration = Raw.to_float config.duration in
  let warmup = Raw.to_float config.warmup in
  let sample_period = Raw.to_float config.sample_period in
  let buffer = Raw.to_float config.buffer_bytes in
  let capacity = Sim_engine.Units.bytes_per_sec config.capacity_bps in
  if duration <= 0.0 then invalid_arg "Ode_model: duration must be > 0";
  if warmup < 0.0 || warmup >= duration then
    invalid_arg "Ode_model: need 0 <= warmup < duration";
  if sample_period <= 0.0 then
    invalid_arg "Ode_model: sample_period must be > 0";
  if config.flows = [] then invalid_arg "Ode_model: no flows";
  if capacity <= 0.0 then invalid_arg "Ode_model: capacity must be > 0";
  if buffer <= 0.0 then invalid_arg "Ode_model: buffer must be > 0";
  (match config.integrator with
  | Rk4 dt ->
    if Raw.to_float dt <= 0.0 then invalid_arg "Ode_model: Rk4 dt must be > 0"
  | Adaptive { tol; dt_init; dt_max } ->
    if tol <= 0.0 then invalid_arg "Ode_model: Adaptive tol must be > 0";
    if Raw.to_float dt_init <= 0.0 || Raw.to_float dt_max <= 0.0 then
      invalid_arg "Ode_model: Adaptive steps must be > 0");
  List.iter
    (fun (f : Fluid_sim.flow_spec) ->
      if Raw.to_float f.rtt <= 0.0 then
        invalid_arg "Ode_model: flow rtt must be > 0")
    config.flows

(* Build the concatenated arena; [validate] has already run on every
   config, so no exception can escape mid-build. *)
let make_bt (configs : config array) =
  let njobs = Array.length configs in
  let off = Array.make (njobs + 1) 0 in
  for j = 0 to njobs - 1 do
    off.(j + 1) <- off.(j) + List.length configs.(j).flows
  done;
  let total = off.(njobs) in
  let kinds = Array.make total Fluid_sim.Cubic in
  let rtt = Array.make total 0.0 in
  let w_floor = Array.make total 0.0 in
  let w_ceil = Array.make total 0.0 in
  let startup = Array.make total false in
  let y = Array.make (3 * total) 0.0 in
  let capacity = Array.make njobs 0.0 in
  let buffer = Array.make njobs 0.0 in
  let fair = Array.make njobs 0.0 in
  for j = 0 to njobs - 1 do
    let c = configs.(j) in
    let cap = Sim_engine.Units.bytes_per_sec c.capacity_bps in
    let buf = Sim_engine.Units.Raw.to_float c.buffer_bytes in
    capacity.(j) <- cap;
    buffer.(j) <- buf;
    fair.(j) <- cap /. float_of_int (off.(j + 1) - off.(j));
    List.iteri
      (fun k (f : Fluid_sim.flow_spec) ->
        let i = off.(j) + k in
        kinds.(i) <- f.kind;
        rtt.(i) <- Sim_engine.Units.Raw.to_float f.rtt;
        w_floor.(i) <-
          (match f.kind with
          | Fluid_sim.Cubic -> 2.0 *. mss
          | Fluid_sim.Bbr | Fluid_sim.Bbr2 -> 4.0 *. mss);
        w_ceil.(i) <-
          (4.0 *. cap *. (rtt.(i) +. (buf /. cap))) +. (16.0 *. mss);
        startup.(i) <- f.kind = Fluid_sim.Cubic;
        let w0 = 10.0 *. mss in
        y.(3 * i) <- w0;
        (match f.kind with
        | Fluid_sim.Cubic -> y.((3 * i) + 1) <- w0
        | Fluid_sim.Bbr | Fluid_sim.Bbr2 -> y.((3 * i) + 1) <- w0 /. rtt.(i));
        y.((3 * i) + 2) <-
          (match f.kind with
          | Fluid_sim.Bbr2 -> 2.0 *. cap *. (rtt.(i) +. (buf /. cap))
          | Fluid_sim.Cubic | Fluid_sim.Bbr -> 0.0))
      c.flows
  done;
  {
    off;
    kinds;
    rtt;
    w_floor;
    w_ceil;
    w = Array.make total 0.0;
    x = Array.make total 0.0;
    startup;
    y;
    k1y = Array.make (3 * total) 0.0;
    k1 = Array.make (3 * total) 0.0;
    k2 = Array.make (3 * total) 0.0;
    k3 = Array.make (3 * total) 0.0;
    k4 = Array.make (3 * total) 0.0;
    ytmp = Array.make (3 * total) 0.0;
    y_full = Array.make (3 * total) 0.0;
    y_mid = Array.make (3 * total) 0.0;
    y_half = Array.make (3 * total) 0.0;
    capacity;
    buffer;
    fair;
    acc = Array.make (acc_slots * njobs) 0.0;
  }

(* Queue fixed point and per-flow rates of job [j] at state [y]; leaves
   the clamped queue in acc slot [a_q] and the overflow drop fraction in
   [a_p]. *)
let compute_rates bt j y =
  let lo = bt.off.(j) and hi = bt.off.(j + 1) in
  let capacity = bt.capacity.(j) in
  let w = bt.w and rtt = bt.rtt and x = bt.x in
  for i = lo to hi - 1 do
    let wi = y.(3 * i) in
    w.(i) <-
      (if wi < bt.w_floor.(i) then bt.w_floor.(i)
       else if wi > bt.w_ceil.(i) then bt.w_ceil.(i)
       else wi)
  done;
  let ja = acc_slots * j in
  let qstar =
    Queue_fixpoint.solve ~base:lo ~capacity ~w ~rtt ~n:(hi - lo)
      ~init:bt.acc.(ja + a_warm)
  in
  bt.acc.(ja + a_warm) <- qstar;
  let buffer = bt.buffer.(j) in
  let q = fmin qstar buffer in
  let qdelay = q /. capacity in
  if qstar > buffer then begin
    (* Drop-tail: demands scaled so the served rates sum to capacity. *)
    let sumd = ref 0.0 in
    for i = lo to hi - 1 do
      let d = w.(i) /. (rtt.(i) +. qdelay) in
      x.(i) <- d;
      sumd := !sumd +. d
    done;
    let scale = capacity /. !sumd in
    for i = lo to hi - 1 do
      x.(i) <- x.(i) *. scale
    done;
    bt.acc.(ja + a_p) <- (!sumd -. capacity) /. !sumd
  end
  else begin
    for i = lo to hi - 1 do
      x.(i) <- w.(i) /. (rtt.(i) +. qdelay)
    done;
    bt.acc.(ja + a_p) <- 0.0
  end;
  bt.acc.(ja + a_q) <- q

let deriv bt j y dy =
  compute_rates bt j y;
  let lo = bt.off.(j) and hi = bt.off.(j + 1) in
  let ja = acc_slots * j in
  let capacity = bt.capacity.(j) in
  let qdelay = bt.acc.(ja + a_q) /. capacity in
  let p = bt.acc.(ja + a_p) in
  let nu_rtt = p /. (p +. p0) in
  (* back-off events per RTT *)
  for i = lo to hi - 1 do
    let rtt_eff = bt.rtt.(i) +. qdelay in
    let nu = nu_rtt /. rtt_eff in
    (* events/s *)
    match bt.kinds.(i) with
    | Fluid_sim.Cubic ->
      let w = y.(3 * i) in
      if bt.startup.(i) then begin
        (* Slow start: double per (inflated) RTT until the first
           overflow ends the phase (see [account]). *)
        dy.(3 * i) <- ln2 *. w /. rtt_eff;
        dy.((3 * i) + 1) <- 0.0;
        dy.((3 * i) + 2) <- 0.0
      end
      else begin
        let m = y.((3 * i) + 1) in
        let dmss = Float.abs (w -. m) /. mss in
        (* dmss^(2/3) as a squared cube root: [Float.cbrt] is several
           times cheaper than the general [( ** )] on this hot path. *)
        let cb = Float.cbrt dmss in
        let grow_mss =
          (cubic_gain *. (cb *. cb)) +. (cubic_floor_mss /. rtt_eff)
        in
        dy.(3 * i) <- (grow_mss *. mss) -. (cubic_beta *. w *. nu);
        dy.((3 * i) + 1) <- (w -. m) *. nu;
        dy.((3 * i) + 2) <- 0.0
      end
    | Fluid_sim.Bbr | Fluid_sim.Bbr2 ->
      let w = y.(3 * i) in
      let b = fmax y.((3 * i) + 1) (mss /. bt.rtt.(i)) in
      let x = bt.x.(i) in
      let share = fmin 1.0 (x /. capacity) in
      let rtprop =
        bt.rtt.(i) +. (residual_gamma *. qdelay *. (1.0 -. share))
      in
      let target =
        match bt.kinds.(i) with
        | Fluid_sim.Bbr2 ->
          let h = fmax y.((3 * i) + 2) (4.0 *. mss) in
          fmin (2.0 *. b *. rtprop) h
        | Fluid_sim.Bbr | Fluid_sim.Cubic -> 2.0 *. b *. rtprop
      in
      dy.(3 * i) <- (target -. w) /. rtt_eff;
      dy.((3 * i) + 1) <-
        (x -. b) /. (rtt_eff *. if x > b then bw_tc_up else bw_tc_down);
      (match bt.kinds.(i) with
      | Fluid_sim.Bbr2 ->
        let h = fmax y.((3 * i) + 2) (4.0 *. mss) in
        let h_cap = 2.0 *. fmax b bt.fair.(j) *. rtprop in
        let recover =
          if nu_rtt < 1e-3 && h < h_cap then hi_recovery_rate *. h else 0.0
        in
        dy.((3 * i) + 2) <- recover -. (cubic_beta *. fmin w h *. nu)
      | Fluid_sim.Bbr | Fluid_sim.Cubic -> dy.((3 * i) + 2) <- 0.0)
  done

(* One classical RK4 step of job [j] from [y] into [out], with the first
   stage derivative [k1] precomputed by the caller ([deriv bt j y k1]):
   the adaptive loop shares one stage-1 evaluation between the full step
   and the first half step, and keeps it across rejected retries.
   out == y is allowed: [y] is only read while building the stage
   states. *)
let rk4_step bt j ~dt ~y ~k1 ~out =
  let s3 = 3 * bt.off.(j) and e3 = (3 * bt.off.(j + 1)) - 1 in
  let ytmp = bt.ytmp in
  for s = s3 to e3 do
    ytmp.(s) <- y.(s) +. (0.5 *. dt *. k1.(s))
  done;
  deriv bt j ytmp bt.k2;
  let k2 = bt.k2 in
  for s = s3 to e3 do
    ytmp.(s) <- y.(s) +. (0.5 *. dt *. k2.(s))
  done;
  deriv bt j ytmp bt.k3;
  let k3 = bt.k3 in
  for s = s3 to e3 do
    ytmp.(s) <- y.(s) +. (dt *. k3.(s))
  done;
  deriv bt j ytmp bt.k4;
  let k4 = bt.k4 in
  let c = dt /. 6.0 in
  for s = s3 to e3 do
    out.(s) <-
      y.(s)
      +. (c *. (k1.(s) +. (2.0 *. k2.(s)) +. (2.0 *. k3.(s)) +. k4.(s)))
  done

(* Projection after an accepted step: keep every component in its
   physically meaningful box so the smoothed dynamics stay well-posed. *)
let clamp_state bt j =
  let lo = bt.off.(j) and hi = bt.off.(j + 1) in
  let y = bt.y in
  for i = lo to hi - 1 do
    y.(3 * i) <- fclamp bt.w_floor.(i) bt.w_ceil.(i) y.(3 * i);
    (match bt.kinds.(i) with
    | Fluid_sim.Cubic ->
      y.((3 * i) + 1) <- fclamp (2.0 *. mss) bt.w_ceil.(i) y.((3 * i) + 1)
    | Fluid_sim.Bbr | Fluid_sim.Bbr2 ->
      y.((3 * i) + 1) <-
        fclamp (mss /. bt.rtt.(i)) (2.0 *. bt.capacity.(j)) y.((3 * i) + 1));
    match bt.kinds.(i) with
    | Fluid_sim.Bbr2 ->
      y.((3 * i) + 2) <- fclamp (4.0 *. mss) bt.w_ceil.(i) y.((3 * i) + 2)
    | Fluid_sim.Cubic | Fluid_sim.Bbr -> ()
  done

(* Scaled max-norm distance between the full-step and half-step results. *)
let step_error bt j =
  let s3 = 3 * bt.off.(j) and e3 = (3 * bt.off.(j + 1)) - 1 in
  let err = ref 0.0 in
  for s = s3 to e3 do
    let scale = fmax (Float.abs bt.y_half.(s)) mss in
    let e = Float.abs (bt.y_full.(s) -. bt.y_half.(s)) /. scale in
    if e > !err then err := e
  done;
  !err

let dt_min = 1e-5

(* Advance job [j] from its cold initial state to [duration]; every array
   access stays inside the job's slice, so jobs are independent. *)
let run_job bt j (config : config) =
  let module Raw = Sim_engine.Units.Raw in
  let duration = Raw.to_float config.duration in
  let warmup = Raw.to_float config.warmup in
  let sample_period = Raw.to_float config.sample_period in
  let lo = bt.off.(j) in
  let n = bt.off.(j + 1) - lo in
  let ja = acc_slots * j in
  let capacity = bt.capacity.(j) in
  let capacity_bps = capacity *. Sim_engine.Units.bits_per_byte in
  (* Sampled per-flow rate trajectory (bps) for the stability metrics. *)
  let max_samples = int_of_float (duration /. sample_period) + 2 in
  let s_times = Array.make max_samples 0.0 in
  let s_rows = Array.make max_samples [||] in
  let n_samples = ref 0 in
  let record t =
    if !n_samples < max_samples then begin
      s_times.(!n_samples) <- t;
      s_rows.(!n_samples) <-
        Array.init n (fun i ->
            bt.x.(lo + i) *. Sim_engine.Units.bits_per_byte);
      incr n_samples
    end
  in
  let delivered = Array.make n 0.0 in
  let queue_integral = ref 0.0 in
  let measured = ref 0.0 in
  let backoffs = ref 0.0 in
  let steps = ref 0 in
  let rejected = ref 0 in
  let next_sample = ref 0.0 in
  (* Goodput/queue accounting over [t, t+dt] at the just-accepted state. *)
  let account t_new dt =
    compute_rates bt j bt.y;
    let overlap = fmin dt (fmax 0.0 (t_new -. warmup)) in
    if overlap > 0.0 then begin
      for i = 0 to n - 1 do
        delivered.(i) <- delivered.(i) +. (bt.x.(lo + i) *. overlap)
      done;
      queue_integral := !queue_integral +. (bt.acc.(ja + a_q) *. overlap);
      measured := !measured +. overlap
    end;
    let nu_rtt = bt.acc.(ja + a_p) /. (bt.acc.(ja + a_p) +. p0) in
    if nu_rtt > 0.0 then begin
      let qdelay = bt.acc.(ja + a_q) /. capacity in
      for i = lo to lo + n - 1 do
        match bt.kinds.(i) with
        | Fluid_sim.Cubic | Fluid_sim.Bbr2 ->
          backoffs := !backoffs +. (nu_rtt /. (bt.rtt.(i) +. qdelay) *. dt)
        | Fluid_sim.Bbr -> ()
      done
    end;
    while !next_sample <= t_new +. 1e-12 do
      record !next_sample;
      next_sample := !next_sample +. sample_period
    done;
    (* Slow-start exit: the first overflow ends every CUBIC startup phase
       with the fluid model's backoff (w_max := w, then w := 0.7 w). A
       discrete event, like the clamping projection: from here the
       continuous loss term takes over. *)
    if bt.acc.(ja + a_p) > 0.0 then
      for i = lo to lo + n - 1 do
        if bt.startup.(i) then begin
          bt.startup.(i) <- false;
          bt.y.((3 * i) + 1) <- bt.y.(3 * i);
          bt.y.(3 * i) <- fmax (2.0 *. mss) (0.7 *. bt.y.(3 * i))
        end
      done
  in
  (* Initial sample at t = 0. *)
  compute_rates bt j bt.y;
  account 0.0 0.0;
  let t = ref 0.0 in
  (match config.integrator with
  | Rk4 dt_u ->
    let dt0 = Raw.to_float dt_u in
    while !t < duration -. 1e-12 do
      let dt = fmin dt0 (duration -. !t) in
      deriv bt j bt.y bt.k1y;
      rk4_step bt j ~dt ~y:bt.y ~k1:bt.k1y ~out:bt.y;
      clamp_state bt j;
      t := !t +. dt;
      incr steps;
      account !t dt
    done
  | Adaptive { tol; dt_init; dt_max } ->
    let dt = ref (Raw.to_float dt_init) in
    let dt_max = Raw.to_float dt_max in
    (* [k1y] caches deriv at the accepted state: the full step and the
       first half step share it, and a rejected attempt reuses it. *)
    let k1_valid = ref false in
    while !t < duration -. 1e-12 do
      let h = fmin (fmin !dt dt_max) (duration -. !t) in
      let h = fmax h dt_min in
      if not !k1_valid then begin
        deriv bt j bt.y bt.k1y;
        k1_valid := true
      end;
      rk4_step bt j ~dt:h ~y:bt.y ~k1:bt.k1y ~out:bt.y_full;
      rk4_step bt j ~dt:(0.5 *. h) ~y:bt.y ~k1:bt.k1y ~out:bt.y_mid;
      deriv bt j bt.y_mid bt.k1;
      rk4_step bt j ~dt:(0.5 *. h) ~y:bt.y_mid ~k1:bt.k1 ~out:bt.y_half;
      let err = step_error bt j in
      if err <= tol || h <= dt_min then begin
        (* Accept, with Richardson extrapolation of the half-step pair. *)
        for s = 3 * lo to (3 * (lo + n)) - 1 do
          bt.y.(s) <-
            bt.y_half.(s) +. ((bt.y_half.(s) -. bt.y_full.(s)) /. 15.0)
        done;
        clamp_state bt j;
        k1_valid := false;
        t := !t +. h;
        incr steps;
        account !t h;
        let grow =
          if err <= 0.0 then 2.0
          else fmin 2.0 (0.9 *. ((tol /. err) ** 0.2))
        in
        dt := fmin dt_max (h *. fmax 0.3 grow)
      end
      else begin
        incr rejected;
        dt := fmax dt_min (h *. fmax 0.3 (0.9 *. ((tol /. err) ** 0.2)))
      end
    done);
  let window = fmax !measured 1e-9 in
  let per_flow_bps =
    Array.map
      (fun d -> d /. window *. Sim_engine.Units.bits_per_byte)
      delivered
  in
  let times = Array.sub s_times 0 !n_samples in
  let series = Array.sub s_rows 0 !n_samples in
  let final = Ccmodel.Fairness.tail_mean ~frac:0.2 ~times ~series in
  let metrics =
    {
      jain_index = Ccmodel.Fairness.jain per_flow_bps;
      convergence_time =
        Ccmodel.Fairness.convergence_time ~times ~series ~final ~rel_band:0.1
          ~abs_band:(0.02 *. capacity_bps);
      oscillation_bps =
        Ccmodel.Fairness.oscillation_amplitude ~tail_frac:0.3 ~times ~series;
    }
  in
  {
    per_flow_bps;
    flow_kinds = Array.sub bt.kinds lo n;
    mean_queue_bytes = !queue_integral /. window;
    mean_queuing_delay = !queue_integral /. window /. capacity;
    expected_backoffs = !backoffs;
    metrics;
    steps = !steps;
    rejected_steps = !rejected;
  }

let run_batch configs =
  if Array.length configs = 0 then [||]
  else begin
    Array.iter validate configs;
    let bt = make_bt configs in
    Array.mapi (fun j config -> run_job bt j config) configs
  end

(* The batch of one: same arena layout, same code path, so [run config]
   is byte-identical to the corresponding slot of any batched call. *)
let run config = (run_batch [| config |]).(0)

let mean_bps_of_kind res kind =
  let sum = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i k ->
      if k = kind then begin
        sum := !sum +. res.per_flow_bps.(i);
        incr count
      end)
    res.flow_kinds;
  if !count = 0 then nan else !sum /. float_of_int !count
