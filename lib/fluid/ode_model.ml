type integrator =
  | Rk4 of Sim_engine.Units.seconds
  | Adaptive of {
      tol : float;
      dt_init : Sim_engine.Units.seconds;
      dt_max : Sim_engine.Units.seconds;
    }

type config = {
  capacity_bps : Sim_engine.Units.rate_bps;
  buffer_bytes : Sim_engine.Units.byte_count;
  flows : Fluid_sim.flow_spec list;
  duration : Sim_engine.Units.seconds;
  warmup : Sim_engine.Units.seconds;
  integrator : integrator;
  sample_period : Sim_engine.Units.seconds;
}

let default_config =
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  {
    capacity_bps;
    buffer_bytes =
      Sim_engine.Units.scale 10.0
        (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
    flows =
      [
        { Fluid_sim.kind = Fluid_sim.Cubic; rtt };
        { Fluid_sim.kind = Fluid_sim.Bbr; rtt };
      ];
    duration = Sim_engine.Units.seconds 60.0;
    warmup = Sim_engine.Units.seconds 20.0;
    integrator =
      Adaptive
        {
          tol = 1e-4;
          dt_init = Sim_engine.Units.ms 2.0;
          dt_max = Sim_engine.Units.ms 100.0;
        };
    sample_period = Sim_engine.Units.ms 50.0;
  }

type metrics = {
  jain_index : float;
  convergence_time : float;
  oscillation_bps : float;
}

type result = {
  per_flow_bps : float array;
  flow_kinds : Fluid_sim.kind array;
  mean_queue_bytes : float;
  mean_queuing_delay : float;
  expected_backoffs : float;
  metrics : metrics;
  steps : int;
  rejected_steps : int;
}

let mss = float_of_int Sim_engine.Units.mss

(* --- Model constants ------------------------------------------------ *)

(* CUBIC's dw/dt between losses is 3c(t−K)², i.e. 3·c^(1/3)·|w−w_max|^(2/3)
   in MSS/s when expressed in window terms (same c as the fluid sim). *)
let cubic_c = 0.4
let cubic_gain = 3.0 *. Float.cbrt cubic_c
let cubic_beta = 0.3

(* Probing floor (MSS per RTT): the cubic curve has zero slope exactly at
   the plateau w = w_max, which in the autonomous reduction would be an
   asymptote the window never crosses; real CUBIC crosses it because time
   keeps advancing. A small constant probing term restores that. *)
let cubic_floor_mss = 0.3

(* Loss-event saturation: the overflow drop fraction p maps to a back-off
   rate of p/(p+p0) events per RTT, approaching once-per-RTT as the
   overflow deepens. *)
let p0 = 0.02

(* BBR bandwidth tracking: fast rise (the max filter latches a new peak in
   one RTT), slow decay (a stale peak persists for the ~10-RTT window). *)
let bw_tc_up = 1.0
let bw_tc_down = 10.0

(* RTprop residual: ProbeRTT drains this flow's own contribution, so the
   estimate settles at base + γ·qdelay·(1 − share). γ < 1 accounts for the
   sawtoothing queue of the round-based sim averaging below its cap; the
   value is calibrated against {!Fluid_sim} on the differential grid. *)
let residual_gamma = 0.84

(* BBRv2 inflight_hi multiplicative recovery (×1.25 every 2 s, as in the
   fluid sim), as a continuous rate. *)
let hi_recovery_rate = Float.log 1.25 /. 2.0

(* --- Preallocated integrator state --------------------------------- *)

(* State vector layout: 3 slots per flow.
   [3i]   window / in-flight target w, bytes
   [3i+1] CUBIC: w_max (bytes); BBR/BBRv2: btlbw estimate (bytes/s)
   [3i+2] BBRv2: inflight_hi (bytes); otherwise unused (zero derivative) *)

(* [acc] scratch-slot indices. *)
let a_q = 0 (* buffer-clamped queue, bytes *)
let a_p = 1 (* overflow drop fraction *)
let a_warm = 2 (* warm start for the fixed-point solve *)
let acc_slots = 3

type st = {
  n : int;
  kinds : Fluid_sim.kind array;
  rtt : float array;
  capacity : float; (* bytes/s *)
  buffer : float; (* bytes *)
  w_floor : float array;
  w_ceil : float array;
  y : float array; (* 3n *)
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
  y_full : float array; (* step-doubling scratch *)
  y_mid : float array;
  y_half : float array;
  w : float array; (* n: clamped windows for the queue solve *)
  x : float array; (* n: per-flow rates, bytes/s *)
  acc : float array;
  startup : bool array;
      (* n: CUBIC slow start — exponential growth until the first
         overflow, mirroring the fluid model's doubling phase. BBR's
         window-tracking dynamics are already exponential from a cold
         start, so only CUBIC flows begin [true]. *)
}

let make_st ~capacity ~buffer flows =
  let n = List.length flows in
  let kinds = Array.make n Fluid_sim.Cubic in
  let rtt = Array.make n 0.0 in
  List.iteri
    (fun i (f : Fluid_sim.flow_spec) ->
      kinds.(i) <- f.kind;
      rtt.(i) <- Sim_engine.Units.Raw.to_float f.rtt;
      if rtt.(i) <= 0.0 then invalid_arg "Ode_model: flow rtt must be > 0")
    flows;
  let w_floor =
    Array.init n (fun i ->
        match kinds.(i) with
        | Fluid_sim.Cubic -> 2.0 *. mss
        | Fluid_sim.Bbr | Fluid_sim.Bbr2 -> 4.0 *. mss)
  in
  let w_ceil =
    Array.init n (fun i ->
        (4.0 *. capacity *. (rtt.(i) +. (buffer /. capacity))) +. (16.0 *. mss))
  in
  let y = Array.make (3 * n) 0.0 in
  for i = 0 to n - 1 do
    let w0 = 10.0 *. mss in
    y.(3 * i) <- w0;
    (match kinds.(i) with
    | Fluid_sim.Cubic -> y.((3 * i) + 1) <- w0
    | Fluid_sim.Bbr | Fluid_sim.Bbr2 -> y.((3 * i) + 1) <- w0 /. rtt.(i));
    y.((3 * i) + 2) <-
      (match kinds.(i) with
      | Fluid_sim.Bbr2 ->
        2.0 *. capacity *. (rtt.(i) +. (buffer /. capacity))
      | Fluid_sim.Cubic | Fluid_sim.Bbr -> 0.0)
  done;
  {
    n;
    kinds;
    rtt;
    capacity;
    buffer;
    w_floor;
    w_ceil;
    y;
    k1 = Array.make (3 * n) 0.0;
    k2 = Array.make (3 * n) 0.0;
    k3 = Array.make (3 * n) 0.0;
    k4 = Array.make (3 * n) 0.0;
    ytmp = Array.make (3 * n) 0.0;
    y_full = Array.make (3 * n) 0.0;
    y_mid = Array.make (3 * n) 0.0;
    y_half = Array.make (3 * n) 0.0;
    w = Array.make n 0.0;
    x = Array.make n 0.0;
    acc = Array.make acc_slots 0.0;
    startup = Array.init n (fun i -> kinds.(i) = Fluid_sim.Cubic);
  }

(* Queue fixed point and per-flow rates at state [y]; leaves the clamped
   queue in acc.(a_q) and the overflow drop fraction in acc.(a_p). *)
let compute_rates st y =
  let n = st.n in
  for i = 0 to n - 1 do
    let w = y.(3 * i) in
    st.w.(i) <-
      (if w < st.w_floor.(i) then st.w_floor.(i)
       else if w > st.w_ceil.(i) then st.w_ceil.(i)
       else w)
  done;
  let qstar =
    Queue_fixpoint.solve ~capacity:st.capacity ~w:st.w ~rtt:st.rtt ~n
      ~init:st.acc.(a_warm)
  in
  st.acc.(a_warm) <- qstar;
  let q = Float.min qstar st.buffer in
  let qdelay = q /. st.capacity in
  if qstar > st.buffer then begin
    (* Drop-tail: demands scaled so the served rates sum to capacity. *)
    let sumd = ref 0.0 in
    for i = 0 to n - 1 do
      let d = st.w.(i) /. (st.rtt.(i) +. qdelay) in
      st.x.(i) <- d;
      sumd := !sumd +. d
    done;
    let scale = st.capacity /. !sumd in
    for i = 0 to n - 1 do
      st.x.(i) <- st.x.(i) *. scale
    done;
    st.acc.(a_p) <- (!sumd -. st.capacity) /. !sumd
  end
  else begin
    for i = 0 to n - 1 do
      st.x.(i) <- st.w.(i) /. (st.rtt.(i) +. qdelay)
    done;
    st.acc.(a_p) <- 0.0
  end;
  st.acc.(a_q) <- q

let deriv st y dy =
  compute_rates st y;
  let qdelay = st.acc.(a_q) /. st.capacity in
  let p = st.acc.(a_p) in
  let nu_rtt = p /. (p +. p0) in
  (* back-off events per RTT *)
  for i = 0 to st.n - 1 do
    let rtt_eff = st.rtt.(i) +. qdelay in
    let nu = nu_rtt /. rtt_eff in
    (* events/s *)
    match st.kinds.(i) with
    | Fluid_sim.Cubic ->
      let w = y.(3 * i) in
      if st.startup.(i) then begin
        (* Slow start: double per (inflated) RTT until the first
           overflow ends the phase (see [account]). *)
        dy.(3 * i) <- Float.log 2.0 *. w /. rtt_eff;
        dy.((3 * i) + 1) <- 0.0;
        dy.((3 * i) + 2) <- 0.0
      end
      else begin
        let m = y.((3 * i) + 1) in
        let dmss = Float.abs (w -. m) /. mss in
        let grow_mss =
          (cubic_gain *. (dmss ** (2.0 /. 3.0)))
          +. (cubic_floor_mss /. rtt_eff)
        in
        dy.(3 * i) <- (grow_mss *. mss) -. (cubic_beta *. w *. nu);
        dy.((3 * i) + 1) <- (w -. m) *. nu;
        dy.((3 * i) + 2) <- 0.0
      end
    | Fluid_sim.Bbr | Fluid_sim.Bbr2 ->
      let w = y.(3 * i) in
      let b = Float.max y.((3 * i) + 1) (mss /. st.rtt.(i)) in
      let x = st.x.(i) in
      let share = Float.min 1.0 (x /. st.capacity) in
      let rtprop =
        st.rtt.(i) +. (residual_gamma *. qdelay *. (1.0 -. share))
      in
      let target =
        match st.kinds.(i) with
        | Fluid_sim.Bbr2 ->
          let h = Float.max y.((3 * i) + 2) (4.0 *. mss) in
          Float.min (2.0 *. b *. rtprop) h
        | Fluid_sim.Bbr | Fluid_sim.Cubic -> 2.0 *. b *. rtprop
      in
      dy.(3 * i) <- (target -. w) /. rtt_eff;
      dy.((3 * i) + 1) <-
        (x -. b)
        /. (rtt_eff *. if x > b then bw_tc_up else bw_tc_down);
      (match st.kinds.(i) with
      | Fluid_sim.Bbr2 ->
        let h = Float.max y.((3 * i) + 2) (4.0 *. mss) in
        let fair = st.capacity /. float_of_int st.n in
        let h_cap = 2.0 *. Float.max b fair *. rtprop in
        let recover =
          if nu_rtt < 1e-3 && h < h_cap then hi_recovery_rate *. h else 0.0
        in
        dy.((3 * i) + 2) <-
          recover -. (cubic_beta *. Float.min w h *. nu)
      | Fluid_sim.Bbr | Fluid_sim.Cubic -> dy.((3 * i) + 2) <- 0.0)
  done

(* One classical RK4 step from [y] into [out] (out == y is allowed: [y] is
   only read while building the stage states). *)
let rk4_step st ~dt ~y ~out =
  let m = 3 * st.n in
  deriv st y st.k1;
  for j = 0 to m - 1 do
    st.ytmp.(j) <- y.(j) +. (0.5 *. dt *. st.k1.(j))
  done;
  deriv st st.ytmp st.k2;
  for j = 0 to m - 1 do
    st.ytmp.(j) <- y.(j) +. (0.5 *. dt *. st.k2.(j))
  done;
  deriv st st.ytmp st.k3;
  for j = 0 to m - 1 do
    st.ytmp.(j) <- y.(j) +. (dt *. st.k3.(j))
  done;
  deriv st st.ytmp st.k4;
  let c = dt /. 6.0 in
  for j = 0 to m - 1 do
    out.(j) <-
      y.(j)
      +. (c
          *. (st.k1.(j)
              +. (2.0 *. st.k2.(j))
              +. (2.0 *. st.k3.(j))
              +. st.k4.(j)))
  done

(* Projection after an accepted step: keep every component in its
   physically meaningful box so the smoothed dynamics stay well-posed. *)
let clamp_state st =
  for i = 0 to st.n - 1 do
    let clamp lo hi v = Float.max lo (Float.min hi v) in
    st.y.(3 * i) <- clamp st.w_floor.(i) st.w_ceil.(i) st.y.(3 * i);
    (match st.kinds.(i) with
    | Fluid_sim.Cubic ->
      st.y.((3 * i) + 1) <-
        clamp (2.0 *. mss) st.w_ceil.(i) st.y.((3 * i) + 1)
    | Fluid_sim.Bbr | Fluid_sim.Bbr2 ->
      st.y.((3 * i) + 1) <-
        clamp (mss /. st.rtt.(i)) (2.0 *. st.capacity) st.y.((3 * i) + 1));
    match st.kinds.(i) with
    | Fluid_sim.Bbr2 ->
      st.y.((3 * i) + 2) <-
        clamp (4.0 *. mss) st.w_ceil.(i) st.y.((3 * i) + 2)
    | Fluid_sim.Cubic | Fluid_sim.Bbr -> ()
  done

(* Scaled max-norm distance between the full-step and half-step results. *)
let step_error st =
  let m = 3 * st.n in
  let err = ref 0.0 in
  for j = 0 to m - 1 do
    let scale = Float.max (Float.abs st.y_half.(j)) mss in
    let e = Float.abs (st.y_full.(j) -. st.y_half.(j)) /. scale in
    if e > !err then err := e
  done;
  !err

let dt_min = 1e-5

let run config =
  let module Raw = Sim_engine.Units.Raw in
  let duration = Raw.to_float config.duration in
  let warmup = Raw.to_float config.warmup in
  let sample_period = Raw.to_float config.sample_period in
  let buffer = Raw.to_float config.buffer_bytes in
  let capacity = Sim_engine.Units.bytes_per_sec config.capacity_bps in
  if duration <= 0.0 then invalid_arg "Ode_model: duration must be > 0";
  if warmup < 0.0 || warmup >= duration then
    invalid_arg "Ode_model: need 0 <= warmup < duration";
  if sample_period <= 0.0 then
    invalid_arg "Ode_model: sample_period must be > 0";
  if config.flows = [] then invalid_arg "Ode_model: no flows";
  if capacity <= 0.0 then invalid_arg "Ode_model: capacity must be > 0";
  if buffer <= 0.0 then invalid_arg "Ode_model: buffer must be > 0";
  (match config.integrator with
  | Rk4 dt ->
    if Raw.to_float dt <= 0.0 then invalid_arg "Ode_model: Rk4 dt must be > 0"
  | Adaptive { tol; dt_init; dt_max } ->
    if tol <= 0.0 then invalid_arg "Ode_model: Adaptive tol must be > 0";
    if Raw.to_float dt_init <= 0.0 || Raw.to_float dt_max <= 0.0 then
      invalid_arg "Ode_model: Adaptive steps must be > 0");
  let st = make_st ~capacity ~buffer config.flows in
  let n = st.n in
  let capacity_bps = capacity *. Sim_engine.Units.bits_per_byte in
  (* Sampled per-flow rate trajectory (bps) for the stability metrics. *)
  let max_samples = int_of_float (duration /. sample_period) + 2 in
  let s_times = Array.make max_samples 0.0 in
  let s_rows = Array.make max_samples [||] in
  let n_samples = ref 0 in
  let record t =
    if !n_samples < max_samples then begin
      s_times.(!n_samples) <- t;
      s_rows.(!n_samples) <-
        Array.init n (fun i -> st.x.(i) *. Sim_engine.Units.bits_per_byte);
      incr n_samples
    end
  in
  let delivered = Array.make n 0.0 in
  let queue_integral = ref 0.0 in
  let measured = ref 0.0 in
  let backoffs = ref 0.0 in
  let steps = ref 0 in
  let rejected = ref 0 in
  let next_sample = ref 0.0 in
  (* Goodput/queue accounting over [t, t+dt] at the just-accepted state. *)
  let account t_new dt =
    compute_rates st st.y;
    let overlap = Float.min dt (Float.max 0.0 (t_new -. warmup)) in
    if overlap > 0.0 then begin
      for i = 0 to n - 1 do
        delivered.(i) <- delivered.(i) +. (st.x.(i) *. overlap)
      done;
      queue_integral := !queue_integral +. (st.acc.(a_q) *. overlap);
      measured := !measured +. overlap
    end;
    let nu_rtt = st.acc.(a_p) /. (st.acc.(a_p) +. p0) in
    if nu_rtt > 0.0 then begin
      let qdelay = st.acc.(a_q) /. st.capacity in
      for i = 0 to n - 1 do
        match st.kinds.(i) with
        | Fluid_sim.Cubic | Fluid_sim.Bbr2 ->
          backoffs := !backoffs +. (nu_rtt /. (st.rtt.(i) +. qdelay) *. dt)
        | Fluid_sim.Bbr -> ()
      done
    end;
    while !next_sample <= t_new +. 1e-12 do
      record !next_sample;
      next_sample := !next_sample +. sample_period
    done;
    (* Slow-start exit: the first overflow ends every CUBIC startup phase
       with the fluid model's backoff (w_max := w, then w := 0.7 w). A
       discrete event, like the clamping projection: from here the
       continuous loss term takes over. *)
    if st.acc.(a_p) > 0.0 then
      for i = 0 to n - 1 do
        if st.startup.(i) then begin
          st.startup.(i) <- false;
          st.y.((3 * i) + 1) <- st.y.(3 * i);
          st.y.(3 * i) <- Float.max (2.0 *. mss) (0.7 *. st.y.(3 * i))
        end
      done
  in
  (* Initial sample at t = 0. *)
  compute_rates st st.y;
  account 0.0 0.0;
  let t = ref 0.0 in
  (match config.integrator with
  | Rk4 dt_u ->
    let dt0 = Raw.to_float dt_u in
    while !t < duration -. 1e-12 do
      let dt = Float.min dt0 (duration -. !t) in
      rk4_step st ~dt ~y:st.y ~out:st.y;
      clamp_state st;
      t := !t +. dt;
      incr steps;
      account !t dt
    done
  | Adaptive { tol; dt_init; dt_max } ->
    let dt = ref (Raw.to_float dt_init) in
    let dt_max = Raw.to_float dt_max in
    while !t < duration -. 1e-12 do
      let h = Float.min (Float.min !dt dt_max) (duration -. !t) in
      let h = Float.max h dt_min in
      rk4_step st ~dt:h ~y:st.y ~out:st.y_full;
      rk4_step st ~dt:(0.5 *. h) ~y:st.y ~out:st.y_mid;
      rk4_step st ~dt:(0.5 *. h) ~y:st.y_mid ~out:st.y_half;
      let err = step_error st in
      if err <= tol || h <= dt_min then begin
        (* Accept, with Richardson extrapolation of the half-step pair. *)
        for j = 0 to (3 * n) - 1 do
          st.y.(j) <-
            st.y_half.(j) +. ((st.y_half.(j) -. st.y_full.(j)) /. 15.0)
        done;
        clamp_state st;
        t := !t +. h;
        incr steps;
        account !t h;
        let grow =
          if err <= 0.0 then 2.0
          else Float.min 2.0 (0.9 *. ((tol /. err) ** 0.2))
        in
        dt := Float.min dt_max (h *. Float.max 0.3 grow)
      end
      else begin
        incr rejected;
        dt := Float.max dt_min (h *. Float.max 0.3 (0.9 *. ((tol /. err) ** 0.2)))
      end
    done);
  let window = Float.max !measured 1e-9 in
  let per_flow_bps =
    Array.map
      (fun d -> d /. window *. Sim_engine.Units.bits_per_byte)
      delivered
  in
  let times = Array.sub s_times 0 !n_samples in
  let series = Array.sub s_rows 0 !n_samples in
  let final = Ccmodel.Fairness.tail_mean ~frac:0.2 ~times ~series in
  let metrics =
    {
      jain_index = Ccmodel.Fairness.jain per_flow_bps;
      convergence_time =
        Ccmodel.Fairness.convergence_time ~times ~series ~final ~rel_band:0.1
          ~abs_band:(0.02 *. capacity_bps);
      oscillation_bps =
        Ccmodel.Fairness.oscillation_amplitude ~tail_frac:0.3 ~times ~series;
    }
  in
  {
    per_flow_bps;
    flow_kinds = Array.copy st.kinds;
    mean_queue_bytes = !queue_integral /. window;
    mean_queuing_delay = !queue_integral /. window /. capacity;
    expected_backoffs = !backoffs;
    metrics;
    steps = !steps;
    rejected_steps = !rejected;
  }

let mean_bps_of_kind res kind =
  let sum = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i k ->
      if k = kind then begin
        sum := !sum +. res.per_flow_bps.(i);
        incr count
      end)
    res.flow_kinds;
  if !count = 0 then nan else !sum /. float_of_int !count
