(** A fixed-capacity transmission link that drains a {!Droptail_queue}.

    The link serializes one packet at a time at [rate_bps]; when a
    transmission completes, the packet is handed to [deliver] and the next
    packet (if any) starts. Senders must call {!kick} after enqueuing so an
    idle link wakes up. *)

type t

val create :
  sim:Sim_engine.Sim.t ->
  rate_bps:Sim_engine.Units.rate_bps ->
  queue:Droptail_queue.t ->
  deliver:(Packet.t -> unit) ->
  t

val rate_bps : t -> Sim_engine.Units.rate_bps

val kick : t -> unit
(** Start transmitting if idle and the queue is non-empty. Safe to call at
    any time. *)

val busy : t -> bool

val delivered_packets : t -> int
val delivered_bytes : t -> int

val busy_seconds : t -> Sim_engine.Units.seconds
(** Cumulative transmission time since creation. Callers compute utilization
    over a window by differencing two snapshots. *)
