type verdict = Enqueued | Dropped

type policy =
  | Tail_drop
  | Red of {
      min_threshold : float;
      max_threshold : float;
      max_p : float;
      weight : float;
      rng : Sim_engine.Rng.t;
    }

type t = {
  capacity_bytes : int;
  policy : policy;
  fifo : Packet.t Queue.t;
  mutable bytes : int;
  mutable avg_bytes : float;  (* RED EWMA; tracks [bytes] under Tail_drop *)
  per_flow : (int, int) Hashtbl.t;
  mutable drops : int;
  mutable early_drops : int;
  mutable dropped_bytes : int;
  mutable drop_hook : early:bool -> Packet.t -> unit;
}

let red_defaults ~rng ~capacity_bytes =
  let b = float_of_int capacity_bytes in
  Red
    {
      min_threshold = 0.25 *. b;
      max_threshold = 0.75 *. b;
      max_p = 0.1;
      weight = 0.002;
      rng;
    }

let create ?(policy = Tail_drop) ~capacity_bytes () =
  if capacity_bytes <= 0 then invalid_arg "Droptail_queue.create: capacity";
  (match policy with
  | Tail_drop -> ()
  | Red { min_threshold; max_threshold; max_p; weight; _ } ->
    if
      min_threshold < 0.0
      || max_threshold <= min_threshold
      || max_p <= 0.0 || max_p > 1.0
      || weight <= 0.0 || weight > 1.0
    then invalid_arg "Droptail_queue.create: RED parameters");
  {
    capacity_bytes;
    policy;
    fifo = Queue.create ();
    bytes = 0;
    avg_bytes = 0.0;
    per_flow = Hashtbl.create 16;
    drops = 0;
    early_drops = 0;
    dropped_bytes = 0;
    drop_hook = (fun ~early:_ _ -> ());
  }

let capacity_bytes t = t.capacity_bytes

let adjust_flow t flow delta =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.per_flow flow) in
  Hashtbl.replace t.per_flow flow (current + delta)

(* RED early-drop decision on arrival (gentle variant, byte mode). *)
let red_early_drop t =
  match t.policy with
  | Tail_drop -> false
  | Red { min_threshold; max_threshold; max_p; weight; rng } ->
    t.avg_bytes <-
      ((1.0 -. weight) *. t.avg_bytes) +. (weight *. float_of_int t.bytes);
    if t.avg_bytes <= min_threshold then false
    else begin
      let p =
        if t.avg_bytes < max_threshold then
          max_p
          *. (t.avg_bytes -. min_threshold)
          /. (max_threshold -. min_threshold)
        else
          (* gentle RED: ramp from max_p to 1 between max_th and 2 max_th *)
          Float.min 1.0
            (max_p
            +. ((1.0 -. max_p)
               *. (t.avg_bytes -. max_threshold)
               /. max_threshold))
      in
      Sim_engine.Rng.float rng 1.0 < p
    end

let record_drop t (p : Packet.t) ~early =
  t.drops <- t.drops + 1;
  if early then t.early_drops <- t.early_drops + 1;
  t.dropped_bytes <- t.dropped_bytes + p.size;
  t.drop_hook ~early p;
  Dropped

let enqueue t (p : Packet.t) =
  if t.bytes + p.size > t.capacity_bytes then record_drop t p ~early:false
  else if red_early_drop t then record_drop t p ~early:true
  else begin
    Queue.push p t.fifo;
    t.bytes <- t.bytes + p.size;
    adjust_flow t p.flow p.size;
    Enqueued
  end

let dequeue t =
  match Queue.take_opt t.fifo with
  | None -> None
  | Some p ->
    t.bytes <- t.bytes - p.size;
    adjust_flow t p.flow (-p.size);
    Some p

let occupancy_bytes t = t.bytes

let occupancy_of_flow t flow =
  Option.value ~default:0 (Hashtbl.find_opt t.per_flow flow)

let occupancy_of_flows t pred =
  (* Hash order is harmless: integer addition is commutative. *)
  Hashtbl.fold (* simlint: allow R1 *)
    (fun flow bytes acc -> if pred flow then acc + bytes else acc)
    t.per_flow 0

let length t = Queue.length t.fifo
let is_empty t = Queue.is_empty t.fifo
let drops t = t.drops
let early_drops t = t.early_drops

let average_queue_bytes t =
  match t.policy with
  | Tail_drop -> float_of_int t.bytes
  | Red _ -> t.avg_bytes

let dropped_bytes t = t.dropped_bytes
let set_drop_hook t f = t.drop_hook <- f
let drop_hook t = t.drop_hook
