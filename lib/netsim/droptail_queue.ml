type verdict = Enqueued | Dropped

type policy =
  | Tail_drop
  | Red of {
      min_threshold : float;
      max_threshold : float;
      max_p : float;
      weight : float;
      rng : Sim_engine.Rng.t;
    }

type t = {
  capacity_bytes : int;
  policy : policy;
  (* Packet FIFO as a ring buffer: push/pop allocate nothing, unlike
     [Queue.t] (a cons cell per push, an option per [take_opt]). *)
  mutable ring : Packet.t array;
  mutable head : int;
  mutable len : int;
  mutable bytes : int;
  mutable avg_bytes : float;  (* RED EWMA; tracks [bytes] under Tail_drop *)
  per_flow : (int, int) Hashtbl.t;
  mutable drops : int;
  mutable early_drops : int;
  mutable dropped_bytes : int;
  mutable enqueued_packets : int;
  mutable enqueued_bytes : int;
  mutable drop_hook : early:bool -> Packet.t -> unit;
}

let red_defaults ~rng ~capacity_bytes =
  let b = float_of_int capacity_bytes in
  Red
    {
      min_threshold = 0.25 *. b;
      max_threshold = 0.75 *. b;
      max_p = 0.1;
      weight = 0.002;
      rng;
    }

let create ?(policy = Tail_drop) ~capacity_bytes () =
  if capacity_bytes <= 0 then invalid_arg "Droptail_queue.create: capacity";
  (match policy with
  | Tail_drop -> ()
  | Red { min_threshold; max_threshold; max_p; weight; _ } ->
    if
      min_threshold < 0.0
      || max_threshold <= min_threshold
      || max_p <= 0.0 || max_p > 1.0
      || weight <= 0.0 || weight > 1.0
    then invalid_arg "Droptail_queue.create: RED parameters");
  {
    capacity_bytes;
    policy;
    ring = Array.make 16 Packet.dummy;
    head = 0;
    len = 0;
    bytes = 0;
    avg_bytes = 0.0;
    per_flow = Hashtbl.create 16;
    drops = 0;
    early_drops = 0;
    dropped_bytes = 0;
    enqueued_packets = 0;
    enqueued_bytes = 0;
    drop_hook = (fun ~early:_ _ -> ());
  }

let capacity_bytes t = t.capacity_bytes

let[@simlint.alloc_ok
     "Hashtbl.replace mutates an existing bucket in place; a cons is only \
      built the first time a flow appears"] adjust_flow t flow delta =
  let current = try Hashtbl.find t.per_flow flow with Not_found -> 0 in
  Hashtbl.replace t.per_flow flow (current + delta)

let[@simlint.alloc_ok "amortized geometric growth; the ring never shrinks"]
    grow t =
  let cap = Array.length t.ring in
  let ring = Array.make (2 * cap) Packet.dummy in
  for i = 0 to t.len - 1 do
    ring.(i) <- t.ring.((t.head + i) land (cap - 1))
  done;
  t.ring <- ring;
  t.head <- 0

(* RED early-drop decision on arrival (gentle variant, byte mode). *)
let red_early_drop t =
  match t.policy with
  | Tail_drop -> false
  | Red { min_threshold; max_threshold; max_p; weight; rng } ->
    t.avg_bytes <-
      ((1.0 -. weight) *. t.avg_bytes) +. (weight *. float_of_int t.bytes);
    if t.avg_bytes <= min_threshold then false
    else begin
      let p =
        if t.avg_bytes < max_threshold then
          max_p
          *. (t.avg_bytes -. min_threshold)
          /. (max_threshold -. min_threshold)
        else
          (* gentle RED: ramp from max_p to 1 between max_th and 2 max_th *)
          Float.min 1.0
            (max_p
            +. ((1.0 -. max_p)
               *. (t.avg_bytes -. max_threshold)
               /. max_threshold))
      in
      Sim_engine.Rng.float rng 1.0 < p
    end

let record_drop t (p : Packet.t) ~early =
  t.drops <- t.drops + 1;
  if early then t.early_drops <- t.early_drops + 1;
  t.dropped_bytes <- t.dropped_bytes + p.size;
  t.drop_hook ~early p;
  Dropped

let enqueue t (p : Packet.t) =
  if t.bytes + p.size > t.capacity_bytes then record_drop t p ~early:false
  else if red_early_drop t then record_drop t p ~early:true
  else begin
    if t.len = Array.length t.ring then grow t;
    t.ring.((t.head + t.len) land (Array.length t.ring - 1)) <- p;
    t.len <- t.len + 1;
    t.bytes <- t.bytes + p.size;
    t.enqueued_packets <- t.enqueued_packets + 1;
    t.enqueued_bytes <- t.enqueued_bytes + p.size;
    adjust_flow t p.flow p.size;
    Enqueued
  end

exception Empty

let dequeue_exn t =
  if t.len = 0 then raise Empty;
  let h = t.head in
  let p = t.ring.(h) in
  t.ring.(h) <- Packet.dummy;
  t.head <- (h + 1) land (Array.length t.ring - 1);
  t.len <- t.len - 1;
  t.bytes <- t.bytes - p.size;
  adjust_flow t p.flow (-p.size);
  p

let dequeue t = if t.len = 0 then None else Some (dequeue_exn t)

let occupancy_bytes t = t.bytes

let occupancy_of_flow t flow =
  try Hashtbl.find t.per_flow flow with Not_found -> 0

let[@simlint.taint_ok "integer sum over a fold: commutative, order-free"]
    occupancy_of_flows t pred =
  (* Hash order is harmless: integer addition is commutative. *)
  Hashtbl.fold (* simlint: allow R1 *)
    (fun flow bytes acc -> if pred flow then acc + bytes else acc)
    t.per_flow 0

let length t = t.len
let is_empty t = t.len = 0
let drops t = t.drops
let early_drops t = t.early_drops

let average_queue_bytes t =
  match t.policy with
  | Tail_drop -> float_of_int t.bytes
  | Red _ -> t.avg_bytes

let dropped_bytes t = t.dropped_bytes
let enqueued_packets t = t.enqueued_packets
let enqueued_bytes t = t.enqueued_bytes
let set_drop_hook t f = t.drop_hook <- f
let drop_hook t = t.drop_hook
