type t = {
  sim : Sim_engine.Sim.t;
  queue : Droptail_queue.t;
  period : float;
  total : Sim_engine.Timeseries.t;
  classes : (string * (int -> bool) * Sim_engine.Timeseries.t) list;
  mutable running : bool;
  mutable tick_cb : unit -> unit;
      (* Allocated once; rescheduling a periodic tick reuses it instead of
         closing over [t] afresh every period. *)
}

let rec record_classes t now = function
  | [] -> ()
  | (_, pred, series) :: rest ->
    Sim_engine.Timeseries.record series ~time:now
      (float_of_int (Droptail_queue.occupancy_of_flows t.queue pred));
    record_classes t now rest

let sample t =
  let now = Sim_engine.Sim.now t.sim in
  Sim_engine.Timeseries.record t.total ~time:now
    (float_of_int (Droptail_queue.occupancy_bytes t.queue));
  record_classes t now t.classes

let tick t =
  if t.running then begin
    sample t;
    ignore (Sim_engine.Sim.schedule t.sim ~delay:t.period t.tick_cb)
  end

let create ~sim ~queue ~period ?(flow_classes = []) () =
  if period <= 0.0 then invalid_arg "Sampler.create: period";
  let classes =
    List.map
      (fun (name, pred) -> (name, pred, Sim_engine.Timeseries.create ()))
      flow_classes
  in
  let t =
    { sim; queue; period; total = Sim_engine.Timeseries.create (); classes;
      running = true; tick_cb = ignore }
  in
  t.tick_cb <- (fun () -> tick t);
  tick t;
  t

let stop t = t.running <- false
let total t = t.total

let class_series t name =
  match List.find_opt (fun (n, _, _) -> n = name) t.classes with
  | Some (_, _, series) -> series
  | None -> raise Not_found

let queuing_delay t ~rate_bps ~from_ ~until =
  let mean_bytes = Sim_engine.Timeseries.time_weighted_mean t.total ~from_ ~until in
  mean_bytes *. Sim_engine.Units.bits_per_byte /. rate_bps
