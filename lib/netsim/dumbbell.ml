type flow_spec = { flow : int; base_rtt : Sim_engine.Units.seconds }

type t = {
  sim : Sim_engine.Sim.t;
  rate_bps : Sim_engine.Units.rate_bps;
  queue : Droptail_queue.t;
  link : Link.t;
  rtts : (int, float) Hashtbl.t;
  receivers : (int, Packet.t -> unit) Hashtbl.t;
  trace : Sim_engine.Trace.t option;
  mutable orphaned : int;
}

let create ?policy ?trace ~sim ~rate_bps ~buffer_bytes ~flows () =
  let queue = Droptail_queue.create ?policy ~capacity_bytes:buffer_bytes () in
  (* Drops surface on the telemetry stream through the queue's drop hook
     (chained onto whatever hook a later [set_drop_hook] caller installs
     would replace — instrumentation is installed first, at creation). *)
  (match trace with
  | None -> ()
  | Some tr ->
    let inner = Droptail_queue.drop_hook queue in
    Droptail_queue.set_drop_hook queue (fun ~early (p : Packet.t) ->
        Sim_engine.Trace.emit tr ~time:(Sim_engine.Sim.now sim) ~flow:p.flow
          (Sim_engine.Trace.Drop
             {
               seq = p.seq;
               size = p.size;
               early;
               queue_bytes = Droptail_queue.occupancy_bytes queue;
             });
        inner ~early p));
  let rtts = Hashtbl.create 16 in
  List.iter
    (fun { flow; base_rtt } -> Hashtbl.replace rtts flow (base_rtt :> float))
    flows;
  let receivers = Hashtbl.create 16 in
  let t_ref = ref None in
  let deliver_to_receiver p =
    match !t_ref with
    | None -> ()
    | Some t -> (
      (* [try Hashtbl.find], not [find_opt]: this runs per delivered
         packet and the option would allocate. *)
      match Hashtbl.find receivers p.Packet.flow with
      | receive -> receive p
      | exception Not_found -> t.orphaned <- t.orphaned + 1)
  in
  let delay_of (p : Packet.t) =
    match Hashtbl.find rtts p.flow with
    | rtt -> rtt /. 2.0
    | exception Not_found -> 0.0
  in
  let pipe = Pipe.create ~sim ~delay_of ~deliver:deliver_to_receiver in
  let link = Link.create ~sim ~rate_bps ~queue ~deliver:(Pipe.send pipe) in
  let t =
    { sim; rate_bps; queue; link; rtts; receivers; trace; orphaned = 0 }
  in
  t_ref := Some t;
  t

let sim t = t.sim
let queue t = t.queue
let link t = t.link
let rate_bps t = t.rate_bps

let base_rtt_of t flow =
  match Hashtbl.find_opt t.rtts flow with
  | Some rtt -> Sim_engine.Units.seconds rtt
  | None -> raise Not_found

let[@simlint.alloc_ok "one receiver-table bucket per flow (re)attach"]
    set_receiver t ~flow receive =
  Hashtbl.replace t.receivers flow receive
let receiver t ~flow = Hashtbl.find_opt t.receivers flow

let add_flow t ~flow ~base_rtt =
  Hashtbl.replace t.rtts flow ((base_rtt : Sim_engine.Units.seconds) :> float)

let remove_flow t ~flow =
  Hashtbl.remove t.rtts flow;
  Hashtbl.remove t.receivers flow

let known_flow t ~flow = Hashtbl.mem t.rtts flow

let send t p =
  let verdict = Droptail_queue.enqueue t.queue p in
  (match verdict with
  | Droptail_queue.Enqueued ->
    (match t.trace with
    | None -> ()
    | Some tr ->
      Sim_engine.Trace.emit tr
        ~time:(Sim_engine.Sim.now t.sim)
        ~flow:Sim_engine.Trace.link_scope
        (Sim_engine.Trace.Queue_sample
           {
             queue_bytes = Droptail_queue.occupancy_bytes t.queue;
             queue_packets = Droptail_queue.length t.queue;
           }))
    [@simlint.alloc_ok
      "trace event: built only with a sink attached; the record is the \
       product"];
    Link.kick t.link
  | Droptail_queue.Dropped -> ());
  verdict

let reverse_delay t ~flow = Sim_engine.Units.scale 0.5 (base_rtt_of t flow)
let orphaned t = t.orphaned
