type flow_spec = { flow : int; base_rtt : Sim_engine.Units.seconds }

type t = {
  sim : Sim_engine.Sim.t;
  rate_bps : Sim_engine.Units.rate_bps;
  queue : Droptail_queue.t;
  link : Link.t;
  rtts : (int, float) Hashtbl.t;
  receivers : (int, Packet.t -> unit) Hashtbl.t;
  mutable orphaned : int;
}

let create ?policy ~sim ~rate_bps ~buffer_bytes ~flows () =
  let queue = Droptail_queue.create ?policy ~capacity_bytes:buffer_bytes () in
  let rtts = Hashtbl.create 16 in
  List.iter
    (fun { flow; base_rtt } -> Hashtbl.replace rtts flow (base_rtt :> float))
    flows;
  let receivers = Hashtbl.create 16 in
  let t_ref = ref None in
  let deliver_to_receiver p =
    match !t_ref with
    | None -> ()
    | Some t -> (
      match Hashtbl.find_opt receivers p.Packet.flow with
      | Some receive -> receive p
      | None -> t.orphaned <- t.orphaned + 1)
  in
  let delay_of (p : Packet.t) =
    match Hashtbl.find_opt rtts p.flow with
    | Some rtt -> rtt /. 2.0
    | None -> 0.0
  in
  let pipe = Pipe.create ~sim ~delay_of ~deliver:deliver_to_receiver in
  let link = Link.create ~sim ~rate_bps ~queue ~deliver:(Pipe.send pipe) in
  let t =
    { sim; rate_bps; queue; link; rtts; receivers; orphaned = 0 }
  in
  t_ref := Some t;
  t

let sim t = t.sim
let queue t = t.queue
let link t = t.link
let rate_bps t = t.rate_bps

let base_rtt_of t flow =
  match Hashtbl.find_opt t.rtts flow with
  | Some rtt -> Sim_engine.Units.seconds rtt
  | None -> raise Not_found

let set_receiver t ~flow receive = Hashtbl.replace t.receivers flow receive

let send t p =
  let verdict = Droptail_queue.enqueue t.queue p in
  (match verdict with
  | Droptail_queue.Enqueued -> Link.kick t.link
  | Droptail_queue.Dropped -> ());
  verdict

let reverse_delay t ~flow = Sim_engine.Units.scale 0.5 (base_rtt_of t flow)
let orphaned t = t.orphaned
