(** A byte-bounded FIFO bottleneck queue with per-flow occupancy accounting
    and a pluggable drop policy.

    The default policy is drop-tail — the paper's model setting: packets that
    arrive when fewer than their size in bytes remain are dropped. A RED
    (Random Early Detection) policy is provided for the §1/§6 discussion of
    AQMs: arrivals are dropped probabilistically once the EWMA queue length
    exceeds [min_threshold] (gentle variant, byte mode).

    Per-flow byte occupancy is tracked so experiments can measure the model
    quantities [b_c], [b_b], [b_cmin], and [b_cmax] directly. *)

type t

type verdict = Enqueued | Dropped

type policy =
  | Tail_drop
  | Red of {
      min_threshold : float;  (** Bytes; EWMA queue below this never drops. *)
      max_threshold : float;  (** Bytes; drop probability reaches [max_p]. *)
      max_p : float;  (** Drop probability at [max_threshold]. *)
      weight : float;  (** EWMA weight for the average queue (e.g. 0.002). *)
      rng : Sim_engine.Rng.t;
    }

val red_defaults : rng:Sim_engine.Rng.t -> capacity_bytes:int -> policy
(** Classic RED parameterization: min = B/4, max = 3B/4, max_p = 0.1,
    weight = 0.002. *)

val create : ?policy:policy -> capacity_bytes:int -> unit -> t

val capacity_bytes : t -> int

val enqueue : t -> Packet.t -> verdict

val dequeue : t -> Packet.t option

exception Empty

val dequeue_exn : t -> Packet.t
(** Like {!dequeue} but raises {!Empty} instead of allocating an option —
    for the link's transmit loop, which checks {!is_empty} first. *)

val occupancy_bytes : t -> int
(** Total bytes currently queued. *)

val occupancy_of_flow : t -> int -> int
(** Bytes currently queued belonging to the given flow id. *)

val occupancy_of_flows : t -> (int -> bool) -> int
(** Total bytes queued over flows whose id satisfies the predicate. *)

val length : t -> int
(** Number of queued packets. *)

val is_empty : t -> bool

val drops : t -> int
(** Cumulative count of dropped packets (tail and early drops). *)

val early_drops : t -> int
(** Drops decided by the RED policy (0 under [Tail_drop]). *)

val average_queue_bytes : t -> float
(** The RED EWMA average (equals instantaneous occupancy under
    [Tail_drop]). *)

val dropped_bytes : t -> int

val enqueued_packets : t -> int
(** Cumulative count of packets accepted into the queue since creation.
    Together with {!drops} this closes the bottleneck's conservation law:
    every arrival is either enqueued or dropped, so
    [arrivals = enqueued_packets + drops] — the relation the runtime
    invariant auditor ({!Sim_check.Audit}) cross-checks against the event
    stream. *)

val enqueued_bytes : t -> int
(** Cumulative bytes accepted into the queue since creation. *)

val set_drop_hook : t -> (early:bool -> Packet.t -> unit) -> unit
(** Invoked synchronously on every drop (after counters update); [early] is
    true for RED's probabilistic drops, false for tail drops. *)

val drop_hook : t -> early:bool -> Packet.t -> unit
(** The currently installed hook — lets instrumentation chain onto an
    existing hook instead of silently replacing it. *)
