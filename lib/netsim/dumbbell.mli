(** The paper's topology: N senders share one drop-tail bottleneck; after the
    bottleneck link, packets propagate to per-flow receivers, whose ACKs
    return over an uncongested reverse path.

    Delay budget per flow: the flow's base RTT is split evenly between the
    forward pipe (after the bottleneck) and the reverse (ACK) path, so a
    packet that never queues experiences exactly [base_rtt] between send and
    ACK, plus its own serialization time. *)

type t

type flow_spec = { flow : int; base_rtt : Sim_engine.Units.seconds }

val create :
  ?policy:Droptail_queue.policy ->
  ?trace:Sim_engine.Trace.t ->
  sim:Sim_engine.Sim.t ->
  rate_bps:Sim_engine.Units.rate_bps ->
  buffer_bytes:int ->
  flows:flow_spec list ->
  unit ->
  t
(** [policy] defaults to drop-tail (the paper's setting). When [trace] is
    given, every bottleneck drop emits a [Trace.Drop] event (through the
    queue's drop hook, installed at creation) and every successful arrival
    a link-scoped [Trace.Queue_sample] of the resulting occupancy. *)

val sim : t -> Sim_engine.Sim.t
val queue : t -> Droptail_queue.t
val link : t -> Link.t
val rate_bps : t -> Sim_engine.Units.rate_bps

val base_rtt_of : t -> int -> Sim_engine.Units.seconds
(** Base RTT of the given flow id. Raises [Not_found] for unknown flows. *)

val set_receiver : t -> flow:int -> (Packet.t -> unit) -> unit
(** Install the receive callback for a flow. Packets of flows without a
    receiver are counted in {!orphaned} and discarded. *)

val receiver : t -> flow:int -> (Packet.t -> unit) option
(** The currently installed receive callback (tests use this to detach a
    flow's receiver — black-holing its ACKs — and restore it later). *)

val add_flow : t -> flow:int -> base_rtt:Sim_engine.Units.seconds -> unit
(** Register a flow's path mid-simulation (the open-loop workload layer
    attaches each arriving short flow this way). Idempotent per id: a
    re-registration just updates the RTT. *)

val remove_flow : t -> flow:int -> unit
(** Tear a flow down: forget its RTT and receiver. Packets of the flow
    still inside the queue or pipe are counted in {!orphaned} on arrival
    and discarded — the lifecycle analogue of a closed port. *)

val known_flow : t -> flow:int -> bool
(** Whether the flow id currently has a registered path. *)

val send : t -> Packet.t -> Droptail_queue.verdict
(** Inject a packet at the bottleneck; on [Enqueued], it will eventually be
    delivered to the flow's receiver. The caller learns of drops only through
    ACK feedback, as in a real network (but the verdict is returned for
    instrumentation). *)

val reverse_delay : t -> flow:int -> Sim_engine.Units.seconds
(** One-way delay of the flow's ACK path. *)

val orphaned : t -> int
