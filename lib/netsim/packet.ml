(* Fields are mutable so a sender can recycle acknowledged packets
   through a free pool instead of allocating ~15 words per transmission
   (record + three float boxes). A packet object must only be mutated by
   its owning sender, and only once no queue or lane holds it. *)
type t = {
  mutable flow : int;
  mutable seq : int;
  mutable size : int;
  mutable retransmit : bool;
  mutable sent_time : float;
  mutable delivered : float;
  mutable delivered_time : float;
  mutable app_limited : bool;
}

let[@simlint.alloc_ok
     "pool growth only: senders recycle packets through a free pool and \
      call make when it runs dry"] make ~flow ~seq ~size ~retransmit
    ~sent_time ~delivered ~delivered_time ~app_limited =
  { flow; seq; size; retransmit; sent_time; delivered; delivered_time;
    app_limited }

let dummy =
  { flow = -1; seq = -1; size = 0; retransmit = false; sent_time = 0.0;
    delivered = 0.0; delivered_time = 0.0; app_limited = false }

let pp ppf p =
  Format.fprintf ppf "flow=%d seq=%d size=%d%s t=%.6f" p.flow p.seq p.size
    (if p.retransmit then " retx" else "")
    p.sent_time
