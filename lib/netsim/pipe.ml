module Sim = Sim_engine.Sim

type t = {
  sim : Sim.t;
  delay_of : Packet.t -> float;
  deliver : Packet.t -> unit;
  mutable in_flight : int;
  (* One calendar lane per flow: [delay_of] is constant per flow in every
     topology we build (per-flow one-way delay), so each flow's deliveries
     are FIFO and bypass the heap. A per-packet-varying delay still works —
     Sim.schedule_packet falls back to the heap on FIFO violations. *)
  lanes : (int, Packet.t Sim.lane) Hashtbl.t;
}

let create ~sim ~delay_of ~deliver =
  { sim; delay_of; deliver; in_flight = 0; lanes = Hashtbl.create 8 }

let lane_for t flow =
  try Hashtbl.find t.lanes flow
  with Not_found ->
    let lane =
      Sim.lane t.sim ~dummy:Packet.dummy ~deliver:(fun p ->
          t.in_flight <- t.in_flight - 1;
          t.deliver p)
    in
    Hashtbl.replace t.lanes flow lane;
    lane

let send t p =
  let delay = t.delay_of p in
  if delay < 0.0 then invalid_arg "Pipe.send: negative delay";
  t.in_flight <- t.in_flight + 1;
  Sim.schedule_packet t.sim (lane_for t p.Packet.flow) ~delay p

let in_flight t = t.in_flight
