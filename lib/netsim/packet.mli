(** Data packets traversing the forward path of the simulated network.

    Only data packets are modelled as queue-occupying objects; ACKs travel on
    the uncongested reverse path and are represented as scheduled callbacks
    (see {!Tcpflow.Receiver}), matching the paper's single-bottleneck setup
    where the ACK path is never the bottleneck.

    The [delivered]/[delivered_time]/[app_limited] fields snapshot the
    sender's delivery state at transmission time; they implement the delivery
    rate estimator that BBR's bandwidth filter consumes. *)

(** Fields are mutable so the transport can recycle acknowledged packets
    through a free pool (see {!Tcpflow.Sender}); only the owning sender may
    mutate a packet, and only once no queue or lane references it. *)
type t = {
  mutable flow : int;  (** Flow identifier, unique within an experiment. *)
  mutable seq : int;  (** Segment sequence number (in MSS units). *)
  mutable size : int;  (** Wire size in bytes. *)
  mutable retransmit : bool;  (** True when this is a retransmission. *)
  mutable sent_time : float;
      (** Time this (re)transmission left the sender. *)
  mutable delivered : float;
      (** Bytes the sender had cumulatively delivered when this packet was
          sent. *)
  mutable delivered_time : float;
      (** Time of the most recent delivery when this packet was sent. *)
  mutable app_limited : bool;
      (** Whether the sender was application-limited at send time. *)
}

val make :
  flow:int ->
  seq:int ->
  size:int ->
  retransmit:bool ->
  sent_time:float ->
  delivered:float ->
  delivered_time:float ->
  app_limited:bool ->
  t

val dummy : t
(** Placeholder packet ([flow = -1]) filling empty calendar-lane ring
    cells; it never enters the network. *)

val pp : Format.formatter -> t -> unit
