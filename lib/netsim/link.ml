module Sim = Sim_engine.Sim

type t = {
  sim : Sim.t;
  rate_bps : Sim_engine.Units.rate_bps;
  queue : Droptail_queue.t;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable delivered_packets : int;
  mutable delivered_bytes : int;
  busy_time : float array;
      (* Singleton cell: accumulated per transmission, and a float array
         write does not box. *)
  (* Transmission completions are strictly FIFO (one packet serializes at
     a time), so they ride a calendar lane instead of the heap. *)
  mutable lane : Packet.t Sim.lane option;
}

let start_next t =
  if Droptail_queue.is_empty t.queue then t.busy <- false
  else begin
    let p = Droptail_queue.dequeue_exn t.queue in
    t.busy <- true;
    let tx =
      (Sim_engine.Units.transmission_time ~rate_bps:t.rate_bps ~bytes:p.size
        :> float)
    in
    t.busy_time.(0) <- t.busy_time.(0) +. tx;
    match t.lane with
    | Some lane -> Sim.schedule_packet t.sim lane ~delay:tx p
    | None -> assert false
  end

let create ~sim ~(rate_bps : Sim_engine.Units.rate_bps) ~queue ~deliver =
  if (rate_bps :> float) <= 0.0 then invalid_arg "Link.create: rate";
  let t =
    {
      sim;
      rate_bps;
      queue;
      deliver;
      busy = false;
      delivered_packets = 0;
      delivered_bytes = 0;
      busy_time = [| 0.0 |];
      lane = None;
    }
  in
  t.lane <-
    Some
      (Sim.lane sim ~dummy:Packet.dummy ~deliver:(fun p ->
           t.delivered_packets <- t.delivered_packets + 1;
           t.delivered_bytes <- t.delivered_bytes + p.Packet.size;
           t.deliver p;
           start_next t));
  t

let rate_bps t = t.rate_bps
let kick t = if not t.busy then start_next t
let busy t = t.busy
let delivered_packets t = t.delivered_packets
let delivered_bytes t = t.delivered_bytes
let busy_seconds t = Sim_engine.Units.seconds t.busy_time.(0)
