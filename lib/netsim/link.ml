type t = {
  sim : Sim_engine.Sim.t;
  rate_bps : Sim_engine.Units.rate_bps;
  queue : Droptail_queue.t;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable delivered_packets : int;
  mutable delivered_bytes : int;
  mutable busy_time : float;
}

let create ~sim ~(rate_bps : Sim_engine.Units.rate_bps) ~queue ~deliver =
  if (rate_bps :> float) <= 0.0 then invalid_arg "Link.create: rate";
  {
    sim;
    rate_bps;
    queue;
    deliver;
    busy = false;
    delivered_packets = 0;
    delivered_bytes = 0;
    busy_time = 0.0;
  }

let rate_bps t = t.rate_bps

let rec start_next t =
  match Droptail_queue.dequeue t.queue with
  | None -> t.busy <- false
  | Some p ->
    t.busy <- true;
    let tx =
      (Sim_engine.Units.transmission_time ~rate_bps:t.rate_bps ~bytes:p.size
        :> float)
    in
    t.busy_time <- t.busy_time +. tx;
    ignore
      (Sim_engine.Sim.schedule t.sim ~delay:tx (fun () ->
           t.delivered_packets <- t.delivered_packets + 1;
           t.delivered_bytes <- t.delivered_bytes + p.size;
           t.deliver p;
           start_next t))

let kick t = if not t.busy then start_next t

let busy t = t.busy
let delivered_packets t = t.delivered_packets
let delivered_bytes t = t.delivered_bytes

let busy_seconds t = Sim_engine.Units.seconds t.busy_time
