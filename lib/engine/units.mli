(** Unit-safe quantities used throughout the simulator and models.

    Each physical dimension gets its own phantom-typed quantity, so passing
    a time where a rate is expected (or bytes where bits/s are expected) is
    a compile error rather than a silently wrong figure:

    - {!seconds} — time,
    - {!byte_count} — data volume in bytes (float: the fluid models produce
      fractional byte counts),
    - {!rate_bps} — rates in bits per second.

    Values are constructed through the named constructors below ([seconds],
    [ms], [mbps], ...), combined with the dimension-aware helpers ([scale],
    [bdp_bytes], ...), and read out for presentation via the [to_*]
    accessors. A quantity is [private float], so reading the underlying
    float with [(x :> float)] is always possible; {e making} one from a
    bare float without saying its unit is only possible through {!Raw},
    the single escape hatch (used by the fluid integrator's inner loop). *)

type time
type volume
type rate

type 'dim qty = private float
(** A float carrying the phantom dimension ['dim]. *)

type seconds = time qty
type byte_count = volume qty
type rate_bps = rate qty

val mss : int
(** Default maximum segment size in bytes (payload granularity of the
    packet-level simulator). *)

val bits_per_byte : float

(** {1 Constructors} *)

val seconds : float -> seconds
val ms : float -> seconds
(** [ms x] is [x] milliseconds. *)

val bytes : float -> byte_count
val bytes_of_int : int -> byte_count

val bps : float -> rate_bps
val mbps : float -> rate_bps
(** [mbps x] is [x] megabits per second. *)

(** {1 Presentation accessors} *)

val sec_to_ms : seconds -> float
val bps_to_mbps : rate_bps -> float
val bytes_to_int : byte_count -> int
(** Rounds toward zero. *)

(** {1 Dimension-preserving arithmetic} *)

val scale : float -> 'dim qty -> 'dim qty
val add : 'dim qty -> 'dim qty -> 'dim qty
val sub : 'dim qty -> 'dim qty -> 'dim qty

val ratio : 'dim qty -> 'dim qty -> float
(** Same-dimension quotient: a dimensionless float. *)

(** {1 Derived quantities} *)

val bytes_per_sec : rate_bps -> float
(** A rate in bytes/s, for code that accounts volume in bytes. *)

val bits_per_sec_of_bytes : bytes_per_sec:float -> rate_bps

val bdp_bytes : rate_bps:rate_bps -> rtt:seconds -> byte_count
(** Bandwidth-delay product of a link of [rate_bps] and round-trip [rtt]. *)

val bdp_packets : rate_bps:rate_bps -> rtt:seconds -> float
(** {!bdp_bytes} expressed in MSS-sized packets (fractional). *)

val transmission_time : rate_bps:rate_bps -> bytes:int -> seconds
(** Serialization delay of [bytes] on a link of [rate_bps]. *)

(** {1 The escape hatch}

    Bulk numeric kernels (the fluid integrator) unwrap their typed inputs
    once at the boundary, crunch bare floats, and re-wrap results here.
    Every use of [Raw.of_float] is an unchecked unit assertion — keep them
    at module boundaries where the intended unit is written down. *)
module Raw : sig
  val to_float : 'dim qty -> float
  val of_float : float -> 'dim qty
end
