(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator draws from an explicit [t] so
    that experiments are reproducible from a single integer seed, and
    independent flows can be given independent streams via {!split}. *)

type t

val create : int -> t
(** [create seed] builds a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of subsequent draws from [t]. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val uniform_in : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). Every call consumes exactly two
    uniforms, so the stream position is a pure function of the call count. *)
