type event =
  | Send of { seq : int; size : int; retransmit : bool }
  | Ack of {
      seq : int;
      rtt_sample : float;
      delivered_bytes : float;
      inflight_bytes : int;
    }
  | Seg_lost of { seq : int; via_timeout : bool }
  | Drop of { seq : int; size : int; early : bool; queue_bytes : int }
  | Rto_fire of { interval : float; backoff : int; lost_segments : int }
  | Recovery_enter of { via_timeout : bool; lost_bytes : int }
  | Recovery_exit
  | Cc_state_change of { from_state : string; to_state : string }
  | Cc_sample of {
      cwnd_bytes : float;
      inflight_bytes : int;
      pacing_rate : float option;
      delivered_bytes : float;
      cc_state : string;
    }
  | Queue_sample of { queue_bytes : int; queue_packets : int }
  | Flow_start of { size_limit_bytes : int }
      (* -1 when the flow is a long-lived backlogged sender *)
  | Flow_complete of { fct : float; size_bytes : int }

type record = { time : float; flow : int; event : event }

let link_scope = -1

type t = {
  ring : record option array;
  mutable next : int;  (* ring slot for the next record *)
  mutable emitted : int;
  mutable sinks : (record -> unit) list;  (* reversed subscription order *)
  mutable closers : (unit -> unit) list;  (* reversed subscription order *)
  mutable closed : bool;
}

let create ?(ring_capacity = 65536) () =
  if ring_capacity <= 0 then invalid_arg "Trace.create: ring_capacity";
  {
    ring = Array.make ring_capacity None;
    next = 0;
    emitted = 0;
    sinks = [];
    closers = [];
    closed = false;
  }

let subscribe t sink = t.sinks <- sink :: t.sinks

let subscribe_sink t ~on_record ~on_close =
  t.sinks <- on_record :: t.sinks;
  t.closers <- on_close :: t.closers

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Subscription order, like [emit]. *)
    let rec fire = function
      | [] -> ()
      | f :: rest ->
        fire rest;
        f ()
    in
    fire t.closers
  end

let closed t = t.closed

(* Subscription order: the sink list is kept reversed, so walk it
   backwards. Toplevel so [emit] builds no closure per record. *)
let rec fire_sinks sinks r =
  match sinks with
  | [] -> ()
  | sink :: rest ->
    fire_sinks rest r;
    sink r

let[@simlint.alloc_ok
     "the record is the product: senders only call emit when a trace is \
      attached"] emit t ~time ~flow event =
  let r = { time; flow; event } in
  t.ring.(t.next) <- Some r;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.emitted <- t.emitted + 1;
  fire_sinks t.sinks r

let emitted t = t.emitted
let overwritten t = max 0 (t.emitted - Array.length t.ring)

let records t =
  let n = Array.length t.ring in
  let collect from count =
    List.filter_map (fun i -> t.ring.((from + i) mod n)) (List.init count Fun.id)
  in
  if t.emitted < n then collect 0 t.next else collect t.next n

(* ---------- serialization ---------- *)

let event_name = function
  | Send _ -> "send"
  | Ack _ -> "ack"
  | Seg_lost _ -> "seg_lost"
  | Drop _ -> "drop"
  | Rto_fire _ -> "rto_fire"
  | Recovery_enter _ -> "recovery_enter"
  | Recovery_exit -> "recovery_exit"
  | Cc_state_change _ -> "cc_state_change"
  | Cc_sample _ -> "cc_sample"
  | Queue_sample _ -> "queue_sample"
  | Flow_start _ -> "flow_start"
  | Flow_complete _ -> "flow_complete"

(* Deterministic float rendering: enough digits to round-trip, no locale
   dependence. *)
let fl x = Printf.sprintf "%.9g" x

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* The event's payload as an ordered field list; shared by both writers. *)
let fields = function
  | Send { seq; size; retransmit } ->
    [ ("seq", string_of_int seq); ("size", string_of_int size);
      ("retx", string_of_bool retransmit) ]
  | Ack { seq; rtt_sample; delivered_bytes; inflight_bytes } ->
    [ ("seq", string_of_int seq); ("rtt", fl rtt_sample);
      ("delivered", fl delivered_bytes);
      ("inflight", string_of_int inflight_bytes) ]
  | Seg_lost { seq; via_timeout } ->
    [ ("seq", string_of_int seq); ("via_timeout", string_of_bool via_timeout) ]
  | Drop { seq; size; early; queue_bytes } ->
    [ ("seq", string_of_int seq); ("size", string_of_int size);
      ("early", string_of_bool early);
      ("queue_bytes", string_of_int queue_bytes) ]
  | Rto_fire { interval; backoff; lost_segments } ->
    [ ("interval", fl interval); ("backoff", string_of_int backoff);
      ("lost_segments", string_of_int lost_segments) ]
  | Recovery_enter { via_timeout; lost_bytes } ->
    [ ("via_timeout", string_of_bool via_timeout);
      ("lost_bytes", string_of_int lost_bytes) ]
  | Recovery_exit -> []
  | Cc_state_change { from_state; to_state } ->
    [ ("from", from_state); ("to", to_state) ]
  | Cc_sample { cwnd_bytes; inflight_bytes; pacing_rate; delivered_bytes;
                cc_state } ->
    [ ("cwnd", fl cwnd_bytes); ("inflight", string_of_int inflight_bytes);
      ("pacing", (match pacing_rate with None -> "" | Some r -> fl r));
      ("delivered", fl delivered_bytes); ("state", cc_state) ]
  | Queue_sample { queue_bytes; queue_packets } ->
    [ ("queue_bytes", string_of_int queue_bytes);
      ("queue_packets", string_of_int queue_packets) ]
  | Flow_start { size_limit_bytes } ->
    [ ("limit", string_of_int size_limit_bytes) ]
  | Flow_complete { fct; size_bytes } ->
    [ ("fct", fl fct); ("size", string_of_int size_bytes) ]

(* Fields whose values must be JSON strings rather than bare literals. *)
let json_value key v =
  match key with
  | "from" | "to" | "state" -> json_string v
  | "pacing" when v = "" -> "null"
  | _ -> v

let to_jsonl r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"t\":%s,\"flow\":%d,\"ev\":%s" (fl r.time) r.flow
       (json_string (event_name r.event)));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",%s:%s" (json_string k) (json_value k v)))
    (fields r.event);
  Buffer.add_char buf '}';
  Buffer.contents buf

let csv_header = "time,flow,event,detail"

let to_csv_row r =
  Printf.sprintf "%s,%d,%s,%s" (fl r.time) r.flow (event_name r.event)
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) (fields r.event)))

let jsonl_sink oc r =
  output_string oc (to_jsonl r);
  output_char oc '\n'

let csv_sink oc r =
  output_string oc (to_csv_row r);
  output_char oc '\n'

(* ---------- rollups ---------- *)

module Metrics = struct
  type t = {
    rate_bps : float option;
    mutable events : int;
    mutable sends : int;
    mutable retransmits : int;
    mutable acks : int;
    mutable seg_losts : int;
    mutable drops : int;
    mutable rto_fires : int;
    mutable recovery_entries : int;
    mutable states : (string * int) list;  (* Cc_sample counts per state *)
    mutable queue_delays : float list;  (* seconds, newest first *)
    mutable flow_starts : int;
    mutable flow_completes : int;
    mutable fcts : float list;  (* seconds, newest first *)
  }

  let create ?rate_bps () =
    {
      rate_bps;
      events = 0;
      sends = 0;
      retransmits = 0;
      acks = 0;
      seg_losts = 0;
      drops = 0;
      rto_fires = 0;
      recovery_entries = 0;
      states = [];
      queue_delays = [];
      flow_starts = 0;
      flow_completes = 0;
      fcts = [];
    }

  let observe t r =
    t.events <- t.events + 1;
    match r.event with
    | Send { retransmit; _ } ->
      t.sends <- t.sends + 1;
      if retransmit then t.retransmits <- t.retransmits + 1
    | Ack _ -> t.acks <- t.acks + 1
    | Seg_lost _ -> t.seg_losts <- t.seg_losts + 1
    | Drop _ -> t.drops <- t.drops + 1
    | Rto_fire _ -> t.rto_fires <- t.rto_fires + 1
    | Recovery_enter _ -> t.recovery_entries <- t.recovery_entries + 1
    | Recovery_exit | Cc_state_change _ -> ()
    | Cc_sample { cc_state; _ } ->
      let n = Option.value ~default:0 (List.assoc_opt cc_state t.states) in
      t.states <- (cc_state, n + 1) :: List.remove_assoc cc_state t.states
    | Queue_sample { queue_bytes; _ } -> (
      match t.rate_bps with
      | Some rate when rate > 0.0 ->
        t.queue_delays <-
          (float_of_int queue_bytes *. Units.bits_per_byte /. rate)
          :: t.queue_delays
      | _ -> ())
    | Flow_start _ -> t.flow_starts <- t.flow_starts + 1
    | Flow_complete { fct; _ } ->
      t.flow_completes <- t.flow_completes + 1;
      t.fcts <- fct :: t.fcts

  type summary = {
    events : int;
    sends : int;
    retransmits : int;
    acks : int;
    seg_losts : int;
    drops : int;
    rto_fires : int;
    recovery_entries : int;
    retransmit_rate : float;
    drop_rate : float;
    state_occupancy : (string * float) list;
    queue_delay_quantiles : (float * float) list;
    flow_starts : int;
    flow_completes : int;
    fct_quantiles : (float * float) list;
  }

  let summary t =
    let rate num den = if den = 0 then nan else float_of_int num /. float_of_int den in
    let total_samples = List.fold_left (fun acc (_, n) -> acc + n) 0 t.states in
    let occupancy =
      List.map
        (fun (state, n) -> (state, float_of_int n /. float_of_int total_samples))
        t.states
      |> List.sort (fun (sa, a) (sb, b) ->
             match compare b a with 0 -> compare sa sb | c -> c)
    in
    let quantiles =
      match t.queue_delays with
      | [] -> []
      | delays ->
        List.map (fun p -> (p, Stats.percentile delays ~p)) [ 50.0; 90.0; 99.0 ]
    in
    {
      events = t.events;
      sends = t.sends;
      retransmits = t.retransmits;
      acks = t.acks;
      seg_losts = t.seg_losts;
      drops = t.drops;
      rto_fires = t.rto_fires;
      recovery_entries = t.recovery_entries;
      retransmit_rate = rate t.retransmits t.sends;
      drop_rate = rate t.drops t.sends;
      state_occupancy = (if total_samples = 0 then [] else occupancy);
      queue_delay_quantiles = quantiles;
      flow_starts = t.flow_starts;
      flow_completes = t.flow_completes;
      fct_quantiles =
        (match t.fcts with
        | [] -> []
        | fcts ->
          List.map (fun p -> (p, Stats.percentile fcts ~p)) [ 50.0; 95.0; 99.0 ]);
    }

  let of_records ?rate_bps records =
    let t = create ?rate_bps () in
    List.iter (observe t) records;
    summary t

  let summary_line (s : summary) =
    let b = Buffer.create 160 in
    let add k v = Buffer.add_string b (Printf.sprintf "%s=%s " k v) in
    add "events" (string_of_int s.events);
    add "sends" (string_of_int s.sends);
    add "retransmits" (string_of_int s.retransmits);
    add "acks" (string_of_int s.acks);
    add "seg_losts" (string_of_int s.seg_losts);
    add "drops" (string_of_int s.drops);
    add "rto_fires" (string_of_int s.rto_fires);
    add "recovery_entries" (string_of_int s.recovery_entries);
    add "retransmit_rate" (fl s.retransmit_rate);
    add "drop_rate" (fl s.drop_rate);
    List.iter
      (fun (p, d) -> add (Printf.sprintf "p%.0f_queue_delay" p) (fl d))
      s.queue_delay_quantiles;
    add "flow_starts" (string_of_int s.flow_starts);
    add "flow_completes" (string_of_int s.flow_completes);
    List.iter
      (fun (p, d) -> add (Printf.sprintf "p%.0f_fct" p) (fl d))
      s.fct_quantiles;
    (match s.state_occupancy with
    | [] -> ()
    | occ ->
      add "occupancy"
        (String.concat ","
           (List.map (fun (state, f) -> state ^ ":" ^ fl f) occ)));
    String.trim (Buffer.contents b)
end
