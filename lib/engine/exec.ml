(* Domain-based parallel executor and content-addressed result cache.

   Simulation runs are pure functions of their config (every run builds its
   own [Sim.t] and derives all randomness from the config's seed), so a
   batch of runs can be farmed out to domains in any order and the results
   keyed on disk by a digest of the config. *)

type counters = {
  jobs_executed : int;
  cache_hits : int;
  cache_misses : int;
  memo_evictions : int;
}

let jobs_executed = Atomic.make 0
let hits = Atomic.make 0
let misses = Atomic.make 0
let memo_evictions = Atomic.make 0

let counters () =
  {
    jobs_executed = Atomic.get jobs_executed;
    cache_hits = Atomic.get hits;
    cache_misses = Atomic.get misses;
    memo_evictions = Atomic.get memo_evictions;
  }

let note_memo_eviction () = Atomic.incr memo_evictions

let domain_count () = Domain.recommended_domain_count ()

(* Each worker claims indices off a shared atomic counter, so an expensive
   job does not stall the jobs behind it the way static chunking would.
   Per-index writes into [results] are disjoint, hence race-free. *)
let map ?(jobs = 1) f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    Array.map
      (fun x ->
        Atomic.incr jobs_executed;
        f x)
      xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Atomic.incr jobs_executed;
          (results.(i) <-
             (try Some (Ok (f xs.(i)))
              with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

module Cache = struct
  type t = { dir : string }

  let magic = "bbr-equilibrium-cache-v1"

  let create dir =
    if not (Sys.file_exists dir) then begin
      (* Create parents too; races with concurrent creators are benign. *)
      let rec mkdir_p d =
        if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
          mkdir_p (Filename.dirname d);
          try Sys.mkdir d 0o755 with Sys_error _ -> ()
        end
      in
      mkdir_p dir
    end;
    { dir }

  let dir t = t.dir
  let path t ~key = Filename.concat t.dir (Digest.to_hex (Digest.string key))

  (* The payload is [(magic, key, value)]: the magic rejects files from
     incompatible cache layouts, the stored key guards against the
     (astronomically unlikely) digest collision, and any exception while
     reading — truncation, garbage, a stale partial write — degrades to a
     miss so the caller just re-simulates. *)
  let find (type a) t ~key : a option =
    let path = path t ~key in
    if not (Sys.file_exists path) then begin
      Atomic.incr misses;
      None
    end
    else
      let loaded =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match (Marshal.from_channel ic : string * string * a) with
              | m, k, v when m = magic && k = key -> Some v
              | _ -> None)
        with _ -> None
      in
      (match loaded with
      | Some _ -> Atomic.incr hits
      | None -> Atomic.incr misses);
      loaded

  (* Write-to-temp + rename keeps concurrent writers of the same key from
     ever exposing a half-written file. *)
  let store t ~key value =
    let path = path t ~key in
    let tmp = Filename.temp_file ~temp_dir:t.dir "partial" ".tmp" in
    let oc = open_out_bin tmp in
    (try
       Marshal.to_channel oc (magic, key, value) [];
       close_out oc;
       Sys.rename tmp path
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)
end
