(* A calendar lane: a ring-buffered FIFO of timestamped deliveries.

   Network elements with per-packet constant delay (a propagation pipe, a
   serializing link, a fixed reverse path) deliver in send order, so their
   events don't need a heap at all: the lane keeps them in a ring and the
   simulator merges only the lane *head* with the heap. This shrinks the
   heap from O(packets in flight) to O(lanes + timers), and a push/pop
   cycle allocates nothing — the payload is stored in the ring, not
   captured in a closure.

   Every entry still carries the global (time, seq) pair, so the merged
   schedule is bit-for-bit the order a single heap would have produced. *)

type view = {
  head_time : float array;
      (* Singleton cell (a float array write does not box); [infinity]
         when the lane is empty. *)
  mutable head_seq : int;
  mutable queued : int;
  mutable fire : unit -> unit;
}

type 'a t = {
  deliver : 'a -> unit;
  dummy : 'a;
  mutable times : float array;
  mutable seqs : int array;
  mutable items : 'a array;
  mutable head : int;
  mutable len : int;
  view : view;
}

let initial = 16

let refresh_view t =
  let v = t.view in
  v.queued <- t.len;
  if t.len = 0 then begin
    v.head_time.(0) <- infinity;
    v.head_seq <- max_int
  end
  else begin
    v.head_time.(0) <- t.times.(t.head);
    v.head_seq <- t.seqs.(t.head)
  end

let fire_head t =
  let cap = Array.length t.times in
  let h = t.head in
  let x = t.items.(h) in
  t.items.(h) <- t.dummy;
  t.head <- (if h + 1 = cap then 0 else h + 1);
  t.len <- t.len - 1;
  refresh_view t;
  (* Deliver after the pop so the callback can push new entries. *)
  t.deliver x

let create ~dummy ~deliver =
  let view =
    { head_time = [| infinity |]; head_seq = max_int; queued = 0;
      fire = ignore }
  in
  let t =
    {
      deliver;
      dummy;
      times = Array.make initial infinity;
      seqs = Array.make initial 0;
      items = Array.make initial dummy;
      head = 0;
      len = 0;
      view;
    }
  in
  view.fire <- (fun () -> fire_head t);
  t

let view t = t.view
let length t = t.len

let[@simlint.alloc_ok "amortized geometric growth; lanes never shrink"]
    grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' infinity in
  let seqs = Array.make cap' 0 in
  let items = Array.make cap' t.dummy in
  for i = 0 to t.len - 1 do
    let j = (t.head + i) mod cap in
    times.(i) <- t.times.(j);
    seqs.(i) <- t.seqs.(j);
    items.(i) <- t.items.(j)
  done;
  t.times <- times;
  t.seqs <- seqs;
  t.items <- items;
  t.head <- 0

let tail_time t =
  let cap = Array.length t.times in
  let last = t.head + t.len - 1 in
  t.times.(if last >= cap then last - cap else last)

let can_accept t ~time = t.len = 0 || time >= tail_time t

let push t ~time ~seq x =
  if Float.is_nan time then invalid_arg "Lane.push: NaN time";
  if t.len > 0 && time < tail_time t then
    invalid_arg "Lane.push: time before lane tail (FIFO violation)";
  if t.len = Array.length t.times then grow t;
  let cap = Array.length t.times in
  let tail = t.head + t.len in
  let tail = if tail >= cap then tail - cap else tail in
  t.times.(tail) <- time;
  t.seqs.(tail) <- seq;
  t.items.(tail) <- x;
  t.len <- t.len + 1;
  let v = t.view in
  v.queued <- t.len;
  if t.len = 1 then begin
    v.head_time.(0) <- time;
    v.head_seq <- seq
  end

let apply t x = t.deliver x
