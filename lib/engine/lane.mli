(** A calendar lane: a ring-buffered FIFO of timestamped deliveries.

    Network elements whose deliveries happen in send order (constant
    per-packet delay) append here instead of the heap; {!Sim} merges only
    each lane's head with the heap, shrinking the heap to O(lanes +
    timers). Entries carry the global (time, seq) pair, so the merged
    schedule is identical to a single heap's. A push/fire cycle allocates
    nothing: the payload is stored in the ring, not captured in a closure.

    Create lanes through {!Sim.lane}, which registers them with the
    simulator; push through {!Sim.schedule_packet}, which assigns the seq
    and falls back to the heap on FIFO violations. *)

type 'a t

type view = {
  head_time : float array;
      (** Singleton cell: time of the head entry, [infinity] when empty. *)
  mutable head_seq : int;  (** Seq of the head entry, [max_int] when empty. *)
  mutable queued : int;  (** Entries currently in the lane. *)
  mutable fire : unit -> unit;
      (** Pop the head entry and deliver its payload. *)
}
(** The simulator-facing face of a lane: what the merge loop needs, as
    mutable immediates kept current by [push]/[fire]. *)

val create : dummy:'a -> deliver:('a -> unit) -> 'a t
(** [dummy] fills empty ring cells so popped payloads don't linger. *)

val view : 'a t -> view

val length : 'a t -> int

val can_accept : 'a t -> time:float -> bool
(** Whether [time] respects the lane's FIFO invariant (it is at or after
    the last queued entry). *)

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Append a delivery. Raises [Invalid_argument] if [time] violates FIFO
    order or is NaN. *)

val apply : 'a t -> 'a -> unit
(** Call the lane's deliver function directly (heap-fallback path). *)
