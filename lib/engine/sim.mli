(** Discrete-event simulation driver.

    A [t] owns the virtual clock, the timer heap and the calendar lanes.
    Components schedule callbacks; {!run} executes them in (time, seq)
    order — earliest time first, insertion order on ties — advancing the
    clock. Time never flows backwards: scheduling in the past raises
    [Invalid_argument].

    Two scheduling substrates share one global ordering:
    - the {e heap}, for timers and anything cancellable ({!schedule} /
      {!schedule_at});
    - {e lanes} ({!lane} / {!schedule_packet}), ring-buffered FIFOs for
      elements that deliver in send order (pipes, links, fixed reverse
      paths). Lane scheduling passes the payload as an immediate argument
      to a callback registered once at lane creation, so the steady-state
      packet path allocates nothing.

    Event times must be finite; an event scheduled at [infinity] never
    fires. *)

type t

type handle
(** Identifies a heap-scheduled event so it can be cancelled. Handles are
    immediate ints and become inert once the event fires or is
    cancelled. *)

type 'a lane
(** A FIFO delivery lane carrying payloads of type ['a]. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes a simulator whose root RNG is seeded with [seed]
    (default 42). *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** Root RNG; components should {!Rng.split} it rather than share it. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay]. [delay] must be
    non-negative (NaN rejected). *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule}. [time] must be [>= now t]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val null_handle : handle
(** A handle referring to no event; {!cancel} on it is a no-op. Use as the
    rest state of a [mutable handle] field instead of boxing handles in an
    option. *)

val is_null : handle -> bool

val lane : t -> dummy:'a -> deliver:('a -> unit) -> 'a lane
(** Register a delivery lane. [deliver] is the pre-registered callback
    every payload on this lane is handed to; [dummy] fills empty ring
    cells. Registration is O(1) amortized and should happen once per
    network element, not per packet. *)

val schedule_packet : t -> 'a lane -> delay:float -> 'a -> unit
(** [schedule_packet t lane ~delay p] delivers [p] to the lane's callback
    at [now t +. delay], allocation-free. Deliveries on a lane must be
    FIFO: if [delay] would put this delivery before an already-queued one,
    the event transparently falls back to the heap (allocating a closure)
    — global (time, seq) ordering is preserved either way. *)

val run : ?until:float -> t -> unit
(** Execute events in order until the queue is empty, or until the first
    event strictly after [until] (the clock is then left at [until]). *)

val pending_events : t -> int
(** Live scheduled events: heap timers plus queued lane deliveries. *)
