type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable heap : event array;
  mutable length : int;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = -1; action = ignore; cancelled = true }
let create () = { heap = Array.make 64 dummy; length = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.length && earlier t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.length && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.length;
  t.heap <- heap

let add t ~time action =
  if t.length = Array.length t.heap then grow t;
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.length) <- ev;
  t.length <- t.length + 1;
  sift_up t (t.length - 1);
  ev

let cancel (ev : handle) =
  if not ev.cancelled then ev.cancelled <- true

let is_cancelled (ev : handle) = ev.cancelled

let pop_raw t =
  if t.length = 0 then None
  else begin
    let ev = t.heap.(0) in
    t.length <- t.length - 1;
    t.heap.(0) <- t.heap.(t.length);
    t.heap.(t.length) <- dummy;
    if t.length > 0 then sift_down t 0;
    Some ev
  end

let rec pop t =
  match pop_raw t with
  | None -> None
  | Some ev when ev.cancelled -> pop t
  | Some ev -> Some (ev.time, ev.action)

let rec peek_time t =
  if t.length = 0 then None
  else begin
    let ev = t.heap.(0) in
    if ev.cancelled then begin
      ignore (pop_raw t);
      peek_time t
    end
    else Some ev.time
  end

let size t =
  let cancelled_in_heap = ref 0 in
  for i = 0 to t.length - 1 do
    if t.heap.(i).cancelled then incr cancelled_in_heap
  done;
  t.length - !cancelled_in_heap

let is_empty t = Option.is_none (peek_time t)
