(* Pooled struct-of-arrays binary heap.

   The heap itself is three parallel arrays (time, seq, slot) so pushing
   and popping move immediates only; callbacks live in a slot pool with a
   free-list, so steady-state scheduling allocates nothing. A handle is an
   immediate int packing (stamp, slot): the stamp is bumped every time a
   slot is recycled, which makes stale handles (events that already fired)
   inert — cancelling one is a no-op, exactly like the previous
   record-based representation.

   Lazy deletion is bounded: a cancelled-entry count is maintained
   incrementally (making [size] O(1)) and the heap compacts in place when
   cancelled entries outnumber live ones. *)

type t = {
  (* Heap entries: parallel arrays indexed by heap position. *)
  mutable times : float array;
  mutable seqs : int array;
  mutable slots : int array;
  mutable length : int;
  mutable next_seq : int;
  mutable cancelled : int;  (* cancelled entries still inside the heap *)
  (* Callback pool: parallel arrays indexed by slot id. *)
  mutable cbs : (unit -> unit) array;
  mutable stamps : int array;
  mutable states : int array;
  mutable free : int array;  (* stack of free slot ids *)
  mutable free_len : int;
}

type handle = int

let none : handle = -1
let is_none (h : handle) = h < 0

let st_free = 0
let st_queued = 1
let st_cancelled = 2

(* Handle layout: slot in the low 32 bits, recycle stamp above it. The
   stamp wraps at 2^30, so a stale handle could only alias a live event
   after a slot is recycled ~10^9 times while the handle is retained. *)
let slot_bits = 32
let slot_mask = (1 lsl slot_bits) - 1
let stamp_mask = (1 lsl 30) - 1

let nop () = ()
let initial = 64

let create () =
  {
    times = Array.make initial 0.0;
    seqs = Array.make initial 0;
    slots = Array.make initial 0;
    length = 0;
    next_seq = 0;
    cancelled = 0;
    cbs = Array.make initial nop;
    stamps = Array.make initial 0;
    states = Array.make initial st_free;
    (* Popped top-down so low slot ids are handed out first. *)
    free = Array.init initial (fun i -> initial - 1 - i);
    free_len = initial;
  }

(* ---------- slot pool ---------- *)

let[@simlint.alloc_ok "amortized geometric growth; the pool never shrinks"]
    grow_pool t =
  let old = Array.length t.cbs in
  let cap = 2 * old in
  let cbs = Array.make cap nop in
  Array.blit t.cbs 0 cbs 0 old;
  t.cbs <- cbs;
  let stamps = Array.make cap 0 in
  Array.blit t.stamps 0 stamps 0 old;
  t.stamps <- stamps;
  let states = Array.make cap st_free in
  Array.blit t.states 0 states 0 old;
  t.states <- states;
  let free = Array.make cap 0 in
  Array.blit t.free 0 free 0 t.free_len;
  t.free <- free;
  for slot = cap - 1 downto old do
    t.free.(t.free_len) <- slot;
    t.free_len <- t.free_len + 1
  done

let alloc_slot t =
  if t.free_len = 0 then grow_pool t;
  t.free_len <- t.free_len - 1;
  t.free.(t.free_len)

let release_slot t slot =
  t.states.(slot) <- st_free;
  t.stamps.(slot) <- (t.stamps.(slot) + 1) land stamp_mask;
  t.cbs.(slot) <- nop;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1

(* ---------- heap ---------- *)

let earlier t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let slot = t.slots.(i) in
  t.slots.(i) <- t.slots.(j);
  t.slots.(j) <- slot

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.length && earlier t left !smallest then smallest := left;
  if right < t.length && earlier t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let[@simlint.alloc_ok "amortized geometric growth; the heap never shrinks"]
    grow_heap t =
  let old = Array.length t.times in
  let cap = 2 * old in
  let times = Array.make cap 0.0 in
  Array.blit t.times 0 times 0 old;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 old;
  t.seqs <- seqs;
  let slots = Array.make cap 0 in
  Array.blit t.slots 0 slots 0 old;
  t.slots <- slots

let remove_root t =
  let last = t.length - 1 in
  t.times.(0) <- t.times.(last);
  t.seqs.(0) <- t.seqs.(last);
  t.slots.(0) <- t.slots.(last);
  t.length <- last;
  if last > 0 then sift_down t 0

(* Compaction: drop every cancelled entry in one pass and re-heapify
   bottom-up, bounding lazy-delete bloat at 2x the live size. Relative
   (time, seq) order of live events is untouched. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.length - 1 do
    let slot = t.slots.(i) in
    if t.states.(slot) = st_cancelled then release_slot t slot
    else begin
      t.times.(!j) <- t.times.(i);
      t.seqs.(!j) <- t.seqs.(i);
      t.slots.(!j) <- t.slots.(i);
      incr j
    end
  done;
  t.length <- !j;
  t.cancelled <- 0;
  for i = (t.length / 2) - 1 downto 0 do
    sift_down t i
  done

(* ---------- public API ---------- *)

let take_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let add t ~time action =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if t.length = Array.length t.times then grow_heap t;
  let slot = alloc_slot t in
  t.cbs.(slot) <- action;
  t.states.(slot) <- st_queued;
  let i = t.length in
  t.times.(i) <- time;
  t.seqs.(i) <- take_seq t;
  t.slots.(i) <- slot;
  t.length <- i + 1;
  sift_up t i;
  (t.stamps.(slot) lsl slot_bits) lor slot

let cancel t (h : handle) =
  if h >= 0 then begin
    let slot = h land slot_mask in
    if
      slot < Array.length t.stamps
      && t.stamps.(slot) = h lsr slot_bits
      && t.states.(slot) = st_queued
    then begin
      t.states.(slot) <- st_cancelled;
      t.cancelled <- t.cancelled + 1;
      if t.cancelled > t.length / 2 && t.length >= initial then compact t
    end
  end

let is_cancelled t (h : handle) =
  h < 0
  ||
  let slot = h land slot_mask in
  slot >= Array.length t.stamps
  || t.stamps.(slot) <> h lsr slot_bits
  || t.states.(slot) = st_cancelled

(* Drop cancelled entries from the top so the head is live. *)
let rec settle t =
  if t.length > 0 then begin
    let slot = t.slots.(0) in
    if t.states.(slot) = st_cancelled then begin
      t.cancelled <- t.cancelled - 1;
      release_slot t slot;
      remove_root t;
      settle t
    end
  end

let heap_length t = t.length
let head_time_unsafe t = t.times.(0)
let head_seq_unsafe t = t.seqs.(0)

let take_head t =
  let slot = t.slots.(0) in
  let action = t.cbs.(slot) in
  release_slot t slot;
  remove_root t;
  action

let[@simlint.alloc_ok
     "option-returning convenience API; the zero-alloc drive loop uses \
      settle/head_time_unsafe/take_head"] pop t =
  settle t;
  if t.length = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, take_head t)
  end

let peek_time t =
  settle t;
  if t.length = 0 then None else Some t.times.(0)

let size t = t.length - t.cancelled
let is_empty t = size t = 0
